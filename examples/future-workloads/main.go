// Future-workloads explores the deployment modes the paper's Discussion
// (Sections 6.4 and 8.1) flags as the next frontier: DNN co-habitation
// (several models resident on one device), cloud offloading as the
// device-independent alternative, and the A16W8 hybrid quantisation scheme
// shipped hardware already supports but no in-the-wild model uses.
package main

import (
	"context"
	"fmt"
	"log"
	"os/signal"
	"syscall"

	"github.com/gaugenn/gaugenn/internal/bench"
	"github.com/gaugenn/gaugenn/internal/cloudml"
	"github.com/gaugenn/gaugenn/internal/core"
	"github.com/gaugenn/gaugenn/internal/mlrt"
	"github.com/gaugenn/gaugenn/internal/nn/graph"
	"github.com/gaugenn/gaugenn/internal/nn/zoo"
	"github.com/gaugenn/gaugenn/internal/soc"
)

func main() {
	// v2: long-running explorations share one signal-cancellable context.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	// --- DNN co-habitation (Section 8.1) -------------------------------
	face, err := zoo.Build(zoo.Spec{Task: zoo.TaskFaceDetection, Seed: 1, Hinted: true})
	if err != nil {
		log.Fatal(err)
	}
	segm, err := zoo.Build(zoo.Spec{Task: zoo.TaskSemanticSegmentation, Seed: 2, Hinted: true})
	if err != nil {
		log.Fatal(err)
	}
	co, err := bench.RunCohabitation(ctx, "S21", []*graph.Graph{face, segm}, "cpu", 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== DNN co-habitation on the S21 ===")
	for i, name := range co.Models {
		fmt.Printf("%-32s solo %7.1f inf/s | cohabited %7.1f inf/s | %.2fx interference\n",
			name, co.SoloInfPerSec[i], co.CohabInfPerSec[i], co.InterferenceFactor[i])
	}

	// --- Cloud offloading (Section 6.4) --------------------------------
	srv := cloudml.NewInferenceServer()
	base, shutdown, err := srv.Listen()
	if err != nil {
		log.Fatal(err)
	}
	defer shutdown()
	det, err := zoo.Build(zoo.Spec{Task: zoo.TaskObjectDetection, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	data, err := core.EncodeTFLite(det)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n=== On-device vs cloud (one detection frame) ===")
	for _, devModel := range []string{"A20", "A70", "S21"} {
		dev, err := soc.NewDevice(devModel)
		if err != nil {
			log.Fatal(err)
		}
		agent := bench.NewAgent(dev, nil, nil)
		r := agent.ExecuteJob(bench.Job{ID: devModel, Model: data, Backend: "cpu", Threads: 4, Warmup: 2, Runs: 5})
		if r.Error != "" {
			log.Fatal(r.Error)
		}
		fmt.Printf("on-device %-4s: %v\n", devModel, r.MeanLatency())
	}
	for _, network := range []cloudml.NetworkProfile{cloudml.NetworkWiFi, cloudml.Network4G, cloudml.Network3G} {
		client := cloudml.NewOffloadClient(base, network)
		lat, err := client.Infer("Vision/Object Detection", 120*1024)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("offloaded %-4s: %v (same for every device tier)\n", network.Name, lat)
	}

	// --- A16W8 hybrid quantisation (Section 6.1) -----------------------
	fmt.Println("\n=== Quantisation schemes on the Q888 DSP ===")
	variants := []struct {
		name  string
		apply func(*graph.Graph) error
	}{
		{"fp32 source (SNPE quantises internally)", func(*graph.Graph) error { return nil }},
		{"int8 (the wild's 10-20% adoption)", func(g *graph.Graph) error { return zoo.QuantizeModel(g, 0.01) }},
		{"A16W8 hybrid (0% adoption in the wild)", func(g *graph.Graph) error { return zoo.HybridQuantizeA16W8(g, 0.01) }},
	}
	for _, v := range variants {
		g, err := zoo.Build(zoo.Spec{Task: zoo.TaskImageClassification, Seed: 4})
		if err != nil {
			log.Fatal(err)
		}
		if err := v.apply(g); err != nil {
			log.Fatal(err)
		}
		dev, err := soc.NewDevice("Q888")
		if err != nil {
			log.Fatal(err)
		}
		eng, err := mlrt.NewEngine(dev, "snpe-dsp")
		if err != nil {
			log.Fatal(err)
		}
		sess, err := eng.Load(g, mlrt.Options{Threads: 4})
		if err != nil {
			log.Fatal(err)
		}
		sess.Infer(nil) // warmup
		r, err := sess.Infer(nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-42s %v, %.2f mJ\n", v.name, r.Latency, r.EnergymJ())
	}
}
