// Energy-study reproduces Table 4: scenario-driven battery discharge for
// three use cases — sound recognition over 1 hour of audio, keyboard
// auto-completion over a day's 275 words, and 15 FPS person segmentation
// through a 1-hour video call — across the three Snapdragon HDK
// generations, plus the Figure 10 energy/power/efficiency distributions.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"os/signal"
	"syscall"

	"github.com/gaugenn/gaugenn/internal/bench"
	"github.com/gaugenn/gaugenn/internal/core"
	"github.com/gaugenn/gaugenn/internal/nn/graph"
	"github.com/gaugenn/gaugenn/internal/nn/zoo"
	"github.com/gaugenn/gaugenn/internal/report"
	"github.com/gaugenn/gaugenn/internal/soc"
)

func main() {
	// v2: scenarios, the study and the distribution sweeps all share one
	// signal-cancellable context.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	// Build scenario model populations straight from the zoo (several
	// independent deployments per task, as found in the wild).
	rng := rand.New(rand.NewSource(99))
	modelsFor := func(task zoo.Task, n int) []*graph.Graph {
		var out []*graph.Graph
		for i := 0; i < n; i++ {
			g, err := zoo.Build(zoo.Spec{Task: task, Seed: int64(i + 1), Opts: zoo.DefaultOptsFor(task, rng)})
			if err != nil {
				log.Fatal(err)
			}
			out = append(out, g)
		}
		return out
	}
	scenarios := []struct {
		sc     bench.Scenario
		models []*graph.Graph
	}{
		{bench.SoundRecognitionScenario(), modelsFor(zoo.TaskSoundRecognition, 6)},
		{bench.TypingScenario(), modelsFor(zoo.TaskAutoComplete, 5)},
		{bench.SegmentationScenario(), modelsFor(zoo.TaskSemanticSegmentation, 6)},
	}

	fmt.Println("Table 4: scenario-driven battery discharge (mAh)")
	rows := [][]string{}
	for _, device := range soc.HDKModels() {
		for _, s := range scenarios {
			st, err := bench.RunScenario(ctx, device, s.sc, s.models, "cpu")
			if err != nil {
				log.Fatal(err)
			}
			rows = append(rows, []string{
				device, st.Scenario,
				fmt.Sprintf("%.4f ± %.4f", st.Avg, st.Std),
				fmt.Sprintf("%.4f", st.Median),
				fmt.Sprintf("%.4f", st.Min),
				fmt.Sprintf("%.4f", st.Max),
			})
		}
	}
	fmt.Print(report.Table("", []string{"device", "use-case", "avg", "median", "min", "max"}, rows))

	// An hour of segmentation against a 4000 mAh battery (the paper's
	// 26.6-30.5% average discharge observation).
	segm := scenarios[2]
	st, err := bench.RunScenario(ctx, "Q845", segm.sc, segm.models, "cpu")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n1h segmentation on Q845 = %.0f mAh avg -> %.1f%% of a 4000 mAh battery (paper: 26.6-30.5%%)\n",
		st.Avg, 100*st.Avg/4000)

	// Figure 10: distributions over a broader model population.
	fmt.Println("\nFigure 10: inference energy / power / efficiency (CPU, 4 threads)")
	study, err := core.Run(ctx, core.Config{Seed: 5, Scale: 0.04, KeepGraphs: true, MaxPerCategory: 500})
	if err != nil {
		log.Fatal(err)
	}
	models, err := core.SelectBenchModels(study.Corpus21, 40)
	if err != nil {
		log.Fatal(err)
	}
	for _, device := range soc.HDKModels() {
		results, err := core.Bench(ctx, core.RunSpec{
			Device: device, Backend: "cpu", Threads: 4, Batch: 1, Runs: 3,
		}, models)
		if err != nil {
			log.Fatal(err)
		}
		var energies, effs []float64
		for _, r := range results {
			if r.Error != "" {
				continue
			}
			energies = append(energies, r.MeanEnergymJ())
			effs = append(effs, r.EfficiencyMFLOPsW())
		}
		fmt.Print(report.ECDFSummary(device+" energy", energies, "mJ/inf"))
		fmt.Print(report.ECDFSummary(device+" efficiency", effs, "MFLOP/sW"))
	}
}
