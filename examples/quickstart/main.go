// Quickstart: run a small end-to-end gaugeNN study through the v2
// context-first API — compose a Study from options, run it under a
// signal-cancellable context (Ctrl-C stops the pipeline cleanly), and
// print the headline numbers of the paper's Tables 2 and 3, then
// benchmark a handful of the extracted models on two device tiers.
package main

import (
	"context"
	"fmt"
	"log"
	"os/signal"
	"syscall"

	"github.com/gaugenn/gaugenn"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	// 5% of the paper's store size keeps this to a few seconds; add
	// gaugenn.WithHTTPCrawl(true) for the realistic store-API path.
	study := gaugenn.NewStudy(
		gaugenn.WithSeed(42),
		gaugenn.WithScale(0.05),
	)
	res, err := study.Run(ctx)
	if err != nil {
		log.Fatal(err)
	}

	d20, d21 := res.Corpus20.Dataset(), res.Corpus21.Dataset()
	fmt.Println("=== Dataset (Table 2 shape) ===")
	fmt.Printf("%-22s %10s %10s\n", "", "2020", "2021")
	fmt.Printf("%-22s %10d %10d\n", "total apps", d20.TotalApps, d21.TotalApps)
	fmt.Printf("%-22s %10d %10d\n", "apps w/ frameworks", d20.AppsWithFw, d21.AppsWithFw)
	fmt.Printf("%-22s %10d %10d\n", "apps w/ models", d20.AppsWithModels, d21.AppsWithModels)
	fmt.Printf("%-22s %10d %10d\n", "total models", d20.TotalModels, d21.TotalModels)
	fmt.Printf("%-22s %10d %10d\n", "unique models", d20.UniqueModels, d21.UniqueModels)
	fmt.Printf("model growth 2020->2021: %.2fx (paper: 2.03x)\n\n",
		float64(d21.TotalModels)/float64(d20.TotalModels))

	rows, identified := res.Corpus21.TaskBreakdown(true)
	fmt.Println("=== Top tasks (Table 3 shape) ===")
	for i, r := range rows {
		if i >= 5 {
			break
		}
		fmt.Printf("%-24s %4d models\n", r.Task, r.Count)
	}
	fmt.Printf("identified: %d/%d (paper: 91.9%%)\n\n", identified, d21.TotalModels)

	// Benchmark a few extracted models on a low-tier and high-tier device
	// — the v2 Bench call: a context plus a RunSpec instead of six
	// positional parameters.
	models, err := gaugenn.SelectBenchModels(res.Corpus21, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== On-device latency (CPU, 4 threads) ===")
	for _, device := range []string{"A20", "S21"} {
		results, err := gaugenn.Bench(ctx, gaugenn.RunSpec{
			Device: device, Backend: "cpu", Threads: 4, Batch: 1, Runs: 5,
		}, models)
		if err != nil {
			log.Fatal(err)
		}
		for _, r := range results {
			if r.Error != "" {
				fmt.Printf("%-4s %-36s error: %s\n", device, r.ModelName, r.Error)
				continue
			}
			fmt.Printf("%-4s %-36s %10v  %8.2f mJ\n",
				device, r.ModelName, r.MeanLatency(), r.MeanEnergymJ())
		}
	}
}
