// Delegate-sweep reproduces Figures 13 and 14 on the Q845 HDK: CPU
// runtimes (plain vs XNNPACK vs NNAPI) and SNPE hardware targets (CPU,
// GPU, DSP) over a model population. The sweep is expressed as a fleet
// benchmark matrix — 18 models x 1 device x 7 backends — dispatched
// across a pool of Q845 rigs, each job driven through the full TCP
// master-slave harness, USB power cycling and Monsoon-style energy
// capture, exactly as Figure 3 choreographs it. The fleet's thermal
// pacing cools the device between jobs, so every backend sees the same
// cold-start conditions and the aggregated output is byte-identical for
// any pool size.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"os/signal"
	"syscall"

	"github.com/gaugenn/gaugenn/internal/fleet"
	"github.com/gaugenn/gaugenn/internal/nn/zoo"
	"github.com/gaugenn/gaugenn/internal/report"
	"github.com/gaugenn/gaugenn/internal/stats"
)

func main() {
	// v2: the sweep runs under a signal-cancellable context; Ctrl-C
	// drains the per-device queues and aborts in-flight rig choreography.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	// Model population: vision-heavy, like the commonly-compatible subset
	// the paper sweeps.
	rng := rand.New(rand.NewSource(2024))
	tasks := []zoo.Task{
		zoo.TaskObjectDetection, zoo.TaskFaceDetection, zoo.TaskImageClassification,
		zoo.TaskSemanticSegmentation, zoo.TaskContourDetection, zoo.TaskPhotoBeauty,
	}
	var models []fleet.ModelSpec
	for i := 0; i < 18; i++ {
		task := tasks[i%len(tasks)]
		ms, err := fleet.ZooModel(zoo.Spec{Task: task, Seed: int64(i + 1), Opts: zoo.DefaultOptsFor(task, rng)})
		if err != nil {
			log.Fatal(err)
		}
		models = append(models, ms)
	}

	sweep := []string{"cpu", "xnnpack", "nnapi", "gpu", "snpe-cpu", "snpe-gpu", "snpe-dsp"}
	matrix := fleet.Matrix{
		Models:   models,
		Devices:  []string{"Q845"},
		Backends: sweep,
		Threads:  4,
		Warmup:   2,
		Runs:     5,
	}

	// Device pool: two Q845 rigs (agent + USB switch + monitor, driven by
	// a master over TCP — the real harness path) halve the sweep's
	// wall-clock without changing a byte of the output.
	pool, err := fleet.NewLocalPool(matrix.Devices, 2)
	if err != nil {
		log.Fatal(err)
	}
	defer pool.Close()
	agg, err := pool.Run(ctx, matrix, fleet.Config{})
	if err != nil {
		log.Fatal(err)
	}

	meanLat := map[string]float64{}
	meanEng := map[string]float64{}
	perLat := map[string][]float64{}
	perEng := map[string][]float64{}
	for _, ur := range agg.Units() {
		if ur.Unit.Skip != "" || ur.Result.Error != "" {
			continue
		}
		b := ur.Unit.Backend
		perLat[b] = append(perLat[b], ur.Result.MeanLatency().Seconds()*1000)
		perEng[b] = append(perEng[b], ur.Result.MeanEnergymJ())
	}
	for _, backend := range sweep {
		meanLat[backend] = stats.Mean(perLat[backend])
		meanEng[backend] = stats.Mean(perEng[backend])
		fmt.Print(report.ECDFSummary("latency "+backend, perLat[backend], "ms"))
	}

	fmt.Println()
	fmt.Print(agg.LatencyTable())
	fmt.Println()
	fmt.Print(report.Comparisons("Figure 13/14 speedups vs plain CPU (Q845)", []report.Comparison{
		{Metric: "XNNPACK speedup", Paper: 1.03, Measured: meanLat["cpu"] / meanLat["xnnpack"], Unit: "x"},
		{Metric: "NNAPI relative speed", Paper: 0.49, Measured: meanLat["cpu"] / meanLat["nnapi"], Unit: "x"},
		{Metric: "SNPE DSP speedup", Paper: 5.72, Measured: meanLat["cpu"] / meanLat["snpe-dsp"], Unit: "x"},
		{Metric: "SNPE GPU speedup", Paper: 2.28, Measured: meanLat["cpu"] / meanLat["snpe-gpu"], Unit: "x"},
		{Metric: "SNPE GPU vs GPU delegate", Paper: 1.19, Measured: meanLat["gpu"] / meanLat["snpe-gpu"], Unit: "x"},
		{Metric: "DSP energy advantage", Paper: 20.3, Measured: meanEng["cpu"] / meanEng["snpe-dsp"], Unit: "x"},
	}))
}
