// Delegate-sweep reproduces Figures 13 and 14 on the Q845 HDK: CPU
// runtimes (plain vs XNNPACK vs NNAPI) and SNPE hardware targets (CPU,
// GPU, DSP) over a model population — driven through the full TCP
// master-slave harness, USB power cycling and Monsoon-style energy
// capture, exactly as Figure 3 choreographs it.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"github.com/gaugenn/gaugenn/internal/bench"
	"github.com/gaugenn/gaugenn/internal/core"
	"github.com/gaugenn/gaugenn/internal/nn/zoo"
	"github.com/gaugenn/gaugenn/internal/power"
	"github.com/gaugenn/gaugenn/internal/report"
	"github.com/gaugenn/gaugenn/internal/soc"
	"github.com/gaugenn/gaugenn/internal/stats"
)

func main() {
	// Model population: vision-heavy, like the commonly-compatible subset
	// the paper sweeps.
	rng := rand.New(rand.NewSource(2024))
	tasks := []zoo.Task{
		zoo.TaskObjectDetection, zoo.TaskFaceDetection, zoo.TaskImageClassification,
		zoo.TaskSemanticSegmentation, zoo.TaskContourDetection, zoo.TaskPhotoBeauty,
	}
	var jobs []bench.Job
	for i := 0; i < 18; i++ {
		task := tasks[i%len(tasks)]
		g, err := zoo.Build(zoo.Spec{Task: task, Seed: int64(i + 1), Opts: zoo.DefaultOptsFor(task, rng)})
		if err != nil {
			log.Fatal(err)
		}
		data, err := core.EncodeTFLite(g)
		if err != nil {
			log.Fatal(err)
		}
		jobs = append(jobs, bench.Job{ModelName: g.Name, Model: data, Threads: 4, Warmup: 2, Runs: 5})
	}

	// Device rig: agent + USB switch + monitor, driven by a master over
	// TCP (the real harness path).
	dev, err := soc.NewDevice("Q845")
	if err != nil {
		log.Fatal(err)
	}
	usb := power.NewUSBSwitch()
	mon := power.NewMonitor()
	agent := bench.NewAgent(dev, usb, mon)
	addr, err := agent.Start()
	if err != nil {
		log.Fatal(err)
	}
	defer agent.Close()
	master := bench.NewMaster(addr, usb)

	sweep := []string{"cpu", "xnnpack", "nnapi", "gpu", "snpe-cpu", "snpe-gpu", "snpe-dsp"}
	meanLat := map[string]float64{}
	meanEng := map[string]float64{}
	for _, backend := range sweep {
		var lats, engs []float64
		batch := make([]bench.Job, len(jobs))
		for i, j := range jobs {
			j.ID = fmt.Sprintf("%s-%d", backend, i)
			j.Backend = backend
			batch[i] = j
		}
		dev.Reset()
		results, err := master.RunJobs(batch)
		if err != nil {
			log.Fatal(err)
		}
		for _, r := range results {
			if r.Error != "" {
				continue
			}
			lats = append(lats, r.MeanLatency().Seconds()*1000)
			engs = append(engs, r.MeanEnergymJ())
		}
		meanLat[backend] = stats.Mean(lats)
		meanEng[backend] = stats.Mean(engs)
		fmt.Print(report.ECDFSummary("latency "+backend, lats, "ms"))
	}

	fmt.Println()
	fmt.Print(report.Comparisons("Figure 13/14 speedups vs plain CPU (Q845)", []report.Comparison{
		{Metric: "XNNPACK speedup", Paper: 1.03, Measured: meanLat["cpu"] / meanLat["xnnpack"], Unit: "x"},
		{Metric: "NNAPI relative speed", Paper: 0.49, Measured: meanLat["cpu"] / meanLat["nnapi"], Unit: "x"},
		{Metric: "SNPE DSP speedup", Paper: 5.72, Measured: meanLat["cpu"] / meanLat["snpe-dsp"], Unit: "x"},
		{Metric: "SNPE GPU speedup", Paper: 2.28, Measured: meanLat["cpu"] / meanLat["snpe-gpu"], Unit: "x"},
		{Metric: "SNPE GPU vs GPU delegate", Paper: 1.19, Measured: meanLat["gpu"] / meanLat["snpe-gpu"], Unit: "x"},
		{Metric: "DSP energy advantage", Paper: 20.3, Measured: meanEng["cpu"] / meanEng["snpe-dsp"], Unit: "x"},
	}))
}
