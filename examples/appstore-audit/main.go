// Appstore-audit reproduces the offline analysis chapters (Sections 4 and
// 6.1) over both snapshots: framework mix per category (Figure 4), model
// churn between years (Figure 5), uniqueness and fine-tuning (Section
// 4.5), layer composition per modality (Figure 6), optimisation adoption
// (Section 6.1), cloud API usage (Figure 15), and the device-specific
// delivery probe of Section 4.2.
package main

import (
	"context"
	"fmt"
	"log"
	"os/signal"
	"syscall"

	"github.com/gaugenn/gaugenn/internal/core"
	"github.com/gaugenn/gaugenn/internal/nn/graph"
	"github.com/gaugenn/gaugenn/internal/report"
)

func main() {
	// v2: the audit runs under a signal-cancellable context — Ctrl-C
	// drains the crawl instead of killing it mid-extraction.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	cfg := core.DefaultConfig(1337, 0.06)
	cfg.UseHTTP = true // audit through the store API, like gaugeNN
	res, err := core.Run(ctx, cfg)
	if err != nil {
		log.Fatal(err)
	}
	c21 := res.Corpus21

	// Figure 4: frameworks per category.
	fwTotals := c21.FrameworkTotals()
	fmt.Print(report.CountBars("Figure 4 (totals): model instances per framework", fwTotals))
	fmt.Println()

	// Figure 5: churn.
	rows := core.TemporalDiffRows(res)
	churnRows := make([][]string, 0, len(rows))
	for _, r := range rows {
		churnRows = append(churnRows, []string{r.Category, fmt.Sprint(r.Added), fmt.Sprint(r.Removed), fmt.Sprint(r.Added - r.Removed)})
	}
	fmt.Print(report.Table("Figure 5: per-category model churn 2020 -> 2021",
		[]string{"category", "added", "removed", "net"}, churnRows))
	fmt.Println()

	// Section 4.5: architecture popularity.
	archRows := [][]string{}
	for i, r := range c21.ArchitectureBreakdown() {
		if i >= 8 {
			break
		}
		archRows = append(archRows, []string{r.Arch.String(), fmt.Sprint(r.Uniques), fmt.Sprint(r.Instances)})
	}
	fmt.Print(report.Table("Architecture popularity (paper: FSSD top detector, BlazeFace for faces, MobileNet spanning tasks)",
		[]string{"architecture", "uniques", "instances"}, archRows))
	fmt.Println()

	// Section 4.5: uniqueness and fine-tuning.
	fmt.Printf("unique models: %d of %d (%.1f%%; paper: 19.1%%)\n",
		c21.UniqueModels(), c21.TotalModels(),
		100*float64(c21.UniqueModels())/float64(c21.TotalModels()))
	fmt.Printf("instances shared across >=2 apps: %.1f%% (paper: ~80.9%%)\n",
		100*c21.InstancesSharedAcrossApps())
	ft := c21.FineTuning()
	fmt.Printf("uniques sharing >=20%% of layers: %.2f%% (paper: 9.02%%)\n", 100*ft.SharingFrac)
	fmt.Printf("uniques differing in <=3 layers:  %.2f%% (paper: 4.2%%)\n\n", 100*ft.SmallDeltaFrac)

	// Figure 6: layer composition per modality.
	comp := c21.LayerComposition()
	for _, m := range []graph.Modality{graph.ModalityImage, graph.ModalityText, graph.ModalityAudio} {
		if classes, ok := comp[m]; ok {
			fmt.Printf("layer mix (%s): conv %.0f%%, depth_conv %.0f%%, dense %.0f%%, activation %.0f%%\n",
				m, 100*classes[graph.ClassConv], 100*classes[graph.ClassDepthConv],
				100*classes[graph.ClassDense], 100*classes[graph.ClassActivation])
		}
	}
	fmt.Println()

	// Section 6.1: optimisation adoption.
	opt := c21.Optimisations()
	fmt.Printf("clustered models: %d (paper: 0), pruned: %d (paper: 0)\n", opt.ClusteredModels, opt.PrunedModels)
	fmt.Printf("dequantize layers: %.1f%% (paper: 10.3%%), int8 weights: %.1f%% (paper: 20.27%%), int8 activations: %.1f%% (paper: 10.31%%)\n",
		100*opt.DequantizeFrac, 100*opt.Int8WeightFrac, 100*opt.Int8ActivationFrac)
	fmt.Printf("near-zero weights: %.2f%% (paper: 3.15%%)\n\n", 100*opt.MeanWeightSparsity)

	// Figure 15: cloud APIs.
	perAPI, g, a, total := c21.CloudAPIUsage()
	fmt.Print(report.CountBars(
		fmt.Sprintf("Figure 15: cloud ML APIs (%d apps: %d Google, %d AWS)", total, g, a), perAPI))
	fmt.Println()

	// Section 4.2: device-specific delivery probe.
	probePkg := res.Store.Snap21.Apps[0].Package
	for _, app := range res.Store.Snap21.Apps {
		if len(app.Models) > 0 {
			probePkg = app.Package
			break
		}
	}
	same, err := core.DeliveryProbe(ctx, res.Store, probePkg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Section 4.2 delivery probe (%s): old-device APK identical = %v (paper: no device-specific delivery found)\n",
		probePkg, same)
}
