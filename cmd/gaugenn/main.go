// Command gaugenn drives the full measurement study from the terminal:
//
//	gaugenn study   -seed 42 -scale 0.05 [-http] [-workers N] [-out DIR] [-cache-dir DIR] [-v]
//	gaugenn serve   -cache-dir DIR [-addr :8077] [-run-workers N]
//	gaugenn load    -addr http://HOST:8077 [-clients N] [-submissions N] [-chaos]
//	gaugenn bench   -device Q845 -backend cpu -model m.tflite [-threads 4] [-execute]
//	gaugenn exec    -demo TASK | -model FILE | -cache-dir DIR -checksum KEY [-runs N] [-workers N]
//	gaugenn fleet   -devices A70,Q845,Q888 -backends cpu,xnnpack,gpu -models 3 [-mode executed] [-replicas N] [-agents addr,...]
//	gaugenn fsck    -cache-dir DIR [-fix]
//	gaugenn devices
//
// "study" runs crawl -> extract -> analyse for both snapshots and prints
// the Table 2/3 and Figure 4/5/6/7/15 summaries; with -cache-dir it also
// persists every derived artifact so the next run is warm. "serve"
// answers report, model-lookup and diff queries over HTTP from a
// persisted cache dir; with -run-workers it additionally executes
// submitted studies through the multi-tenant scheduler (admission
// control, quotas, priorities, resumable SSE streams — docs/serve.md).
// "load" replays a chaos client swarm against a live serve instance and
// reports latency quantiles plus protocol-invariant counters. "bench"
// measures one model file on one simulated device (-execute switches to
// the measured interpreter backend); "exec" runs a model for real through
// the interpreter and prints its determinism digest and per-class
// roofline; "fleet" sweeps a benchmark matrix across a pool of device
// rigs (-mode executed measures instead of simulating); "fsck" audits
// (and with -fix repairs) a study store; "devices" lists Table 1
// profiles.
package main

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"time"

	"github.com/gaugenn/gaugenn/internal/bench"
	"github.com/gaugenn/gaugenn/internal/core"
	"github.com/gaugenn/gaugenn/internal/errs"
	"github.com/gaugenn/gaugenn/internal/event"
	"github.com/gaugenn/gaugenn/internal/exec"
	"github.com/gaugenn/gaugenn/internal/faults"
	"github.com/gaugenn/gaugenn/internal/fleet"
	"github.com/gaugenn/gaugenn/internal/fsck"
	"github.com/gaugenn/gaugenn/internal/loadgen"
	"github.com/gaugenn/gaugenn/internal/nn/formats"
	"github.com/gaugenn/gaugenn/internal/nn/graph"
	"github.com/gaugenn/gaugenn/internal/nn/zoo"
	"github.com/gaugenn/gaugenn/internal/obs"
	"github.com/gaugenn/gaugenn/internal/power"
	"github.com/gaugenn/gaugenn/internal/report"
	"github.com/gaugenn/gaugenn/internal/sched"
	"github.com/gaugenn/gaugenn/internal/serve"
	"github.com/gaugenn/gaugenn/internal/soc"
	"github.com/gaugenn/gaugenn/internal/store"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	// Long-running subcommands run under a signal-cancelled context: the
	// first SIGINT/SIGTERM cancels gracefully (pipelines drain, a cache
	// dir is left consistent and resumable), a second force-exits.
	ctx, cancel := signalContext(context.Background())
	defer cancel()
	var err error
	switch os.Args[1] {
	case "study":
		err = runStudy(ctx, os.Args[2:])
	case "serve":
		err = runServe(ctx, os.Args[2:])
	case "load":
		err = runLoad(ctx, os.Args[2:])
	case "bench":
		err = runBench(os.Args[2:])
	case "exec":
		err = runExec(os.Args[2:])
	case "fleet":
		err = runFleet(ctx, os.Args[2:])
	case "fsck":
		err = runFsck(os.Args[2:])
	case "devices":
		err = runDevices()
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		if errors.Is(err, errs.ErrCancelled) {
			fmt.Fprintln(os.Stderr, "gaugenn: interrupted:", err)
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, "gaugenn:", err)
		os.Exit(1)
	}
}

// signalContext derives a context cancelled by the first SIGINT/SIGTERM.
// A second signal force-exits immediately — the escape hatch when a
// graceful drain is itself stuck.
func signalContext(parent context.Context) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(parent)
	ch := make(chan os.Signal, 2)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-ch
		fmt.Fprintln(os.Stderr, "\ngaugenn: signal received — cancelling (again to force exit)")
		cancel()
		<-ch
		fmt.Fprintln(os.Stderr, "gaugenn: forced exit")
		os.Exit(130)
	}()
	return ctx, cancel
}

// startDebug exposes the observability surface when -debug-addr is set;
// the returned stop func is a no-op for the empty address.
func startDebug(addr string) (func(), error) {
	if addr == "" {
		return func() {}, nil
	}
	ds, err := obs.StartDebug(addr, obs.Default())
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "debug: metrics and pprof on http://%s (/metrics, /healthz, /debug/pprof)\n", ds.Addr)
	return func() { ds.Close() }, nil
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  gaugenn study   -seed N -scale F [-http] [-workers N] [-out DIR]
                  [-cache-dir DIR] [-resume=false] [-deadline 30s] [-v]
                  [-trace FILE] [-debug-addr :6060 [-linger 30s]]
  gaugenn serve   -cache-dir DIR [-addr :8077] [-debug-addr :6060]
                  [-run-workers N [-max-queue N] [-tenant-share N] [-tenant-inflight N]
                   [-run-timeout D] [-retry-after D] [-sse-write-timeout D]]
  gaugenn load    -addr http://HOST:8077 [-clients N] [-submissions N] [-tenants N]
                  [-seed N] [-study-seed N] [-scale F] [-rude F] [-stall F] [-cancel F]
                  [-chaos [-chaos-seed N]] [-json FILE]
  gaugenn bench   -device MODEL -backend NAME -model FILE [-threads N] [-batch N] [-runs N]
                  [-execute]
  gaugenn exec    -demo TASK | -model FILE | -cache-dir DIR -checksum KEY
                  [-runs N] [-workers N]
  gaugenn fleet   -devices A,B,... -backends a,b,... -models N [-seed N] [-replicas N]
                  [-agents host:port,...] [-runs N] [-mode simulated|executed]
                  [-scenarios=false] [-json FILE] [-out DIR] [-debug-addr :6060]
  gaugenn fsck    -cache-dir DIR [-fix]
  gaugenn devices`)
}

func runStudy(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("study", flag.ExitOnError)
	seed := fs.Int64("seed", 42, "store generation seed")
	scale := fs.Float64("scale", 0.05, "store scale (1.0 = paper scale)")
	useHTTP := fs.Bool("http", false, "crawl through the store HTTP API")
	workers := fs.Int("workers", 0, "pipeline worker count per snapshot (0 = GOMAXPROCS)")
	out := fs.String("out", "", "directory for report files (stdout if empty)")
	cacheDir := fs.String("cache-dir", "", "persistent study store directory (warm re-runs, `gaugenn serve` input)")
	resume := fs.Bool("resume", true, "consult existing cache entries (false: recompute but still persist)")
	failureBudget := fs.Float64("failure-budget", 0, "per-snapshot fraction of apps allowed to fail before the study aborts (0 = 5% default, negative = zero tolerance)")
	deadline := fs.Duration("deadline", 0, "abort the run after this long (0 = none); an interrupted -cache-dir run resumes warm")
	verbose := fs.Bool("v", false, "report analyse/persist stage progress and cache statistics")
	tracePath := fs.String("trace", "", "write a Chrome trace-event JSON timeline of the run here (load in chrome://tracing or Perfetto)")
	debugAddr := fs.String("debug-addr", "", "serve /metrics, /healthz and /debug/pprof on this address for the run's duration")
	linger := fs.Duration("linger", 0, "keep the -debug-addr server up this long after the run finishes (scrape window for short runs)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopDebug, err := startDebug(*debugAddr)
	if err != nil {
		return err
	}
	defer stopDebug()
	// Validate up front, before any store generation starts.
	if *scale <= 0 {
		return fmt.Errorf("study: -scale must be positive (got %g)", *scale)
	}
	if *deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *deadline)
		defer cancel()
	}
	cfg := core.DefaultConfig(*seed, *scale)
	cfg.UseHTTP = *useHTTP
	cfg.Workers = *workers
	cfg.CacheDir = *cacheDir
	cfg.Resume = *resume
	cfg.FailureBudget = *failureBudget
	start := time.Now()
	// Both snapshot pipelines emit events concurrently; throttle first,
	// serialise the writes, and let each stage's completion line end in a
	// newline so the two interleaved stages stay legible. The
	// analyse/persist stages are -v only; by default the crawl line is
	// the run's single progress stream.
	var progressMu sync.Mutex
	line := func(stage, snapshot string, done, total int) {
		if !*verbose && stage != "crawl" {
			return
		}
		if done != total && done%500 != 0 {
			return
		}
		progressMu.Lock()
		defer progressMu.Unlock()
		// \x1b[K clears to end-of-line: interleaved stages overwrite each
		// other and a shorter line must not leave the longer one's tail.
		fmt.Fprintf(os.Stderr, "\r\x1b[K%s: %d/%d apps", event.StageName(stage, snapshot), done, total)
		if done == total {
			fmt.Fprintln(os.Stderr)
		}
	}
	var tracer *obs.Tracer
	if *tracePath != "" {
		tracer = obs.NewTracer("study " + core.StudyID(cfg))
	}
	var cacheLine string
	cfg.OnEvent = func(ev event.Event) {
		if tracer != nil {
			tracer.Observe(ev)
		}
		switch v := ev.(type) {
		case event.StageStart:
			line(v.Stage, v.Snapshot, 0, v.Total)
		case event.StageProgress:
			line(v.Stage, v.Snapshot, v.Done, v.Total)
		case event.CacheStats:
			progressMu.Lock()
			cacheLine = fmt.Sprintf("cache: decodes=%d profiles=%d extracted=%d warm-reports=%d warm-analyses=%d warm-payloads=%d",
				v.Stats.Decodes, v.Stats.Profiles, v.ExtractedReports,
				v.WarmReports, v.Stats.WarmAnalysisHits, v.Stats.WarmPayloadHits)
			progressMu.Unlock()
		}
	}
	res, err := core.Run(ctx, cfg)
	// The trace and the linger window survive a failed or cancelled run:
	// a partial timeline is exactly what a hung-run investigation needs.
	defer func() {
		if *debugAddr != "" && *linger > 0 {
			fmt.Fprintf(os.Stderr, "study: debug server lingering %v on %s\n", *linger, *debugAddr)
			lingerCtx, cancel := context.WithTimeout(context.Background(), *linger)
			defer cancel()
			<-lingerCtx.Done()
		}
	}()
	if tracer != nil {
		if js, terr := tracer.ChromeTrace(); terr != nil {
			fmt.Fprintf(os.Stderr, "study: rendering trace: %v\n", terr)
		} else if werr := os.WriteFile(*tracePath, js, 0o644); werr != nil {
			fmt.Fprintf(os.Stderr, "study: writing trace: %v\n", werr)
		} else {
			fmt.Fprintf(os.Stderr, "study: trace written to %s\n", *tracePath)
		}
	}
	if err != nil {
		if errors.Is(err, errs.ErrCancelled) && *cacheDir != "" {
			fmt.Fprintf(os.Stderr, "\nstudy interrupted; %s holds every finished artifact — rerun with -cache-dir %s to resume warm\n",
				*cacheDir, *cacheDir)
		}
		if errors.Is(err, errs.ErrBudgetExceeded) {
			fmt.Fprintln(os.Stderr, "\nstudy aborted: too many apps failed — raise -failure-budget to tolerate more, or fix the store/network fault")
		}
		return err
	}
	fmt.Fprintf(os.Stderr, "\nstudy complete in %v\n", time.Since(start).Round(time.Millisecond))
	if n := len(res.Quarantine); n > 0 {
		fmt.Fprintf(os.Stderr, "study degraded gracefully: %d app(s) quarantined (within failure budget)\n", n)
		for _, qe := range res.Quarantine {
			fmt.Fprintf(os.Stderr, "  %s/%s [%s]: %v\n", qe.Snapshot, qe.Package, qe.Stage, qe.Err)
		}
	}
	if ps := res.Persist; ps != nil {
		fmt.Fprintf(os.Stderr, "study %s persisted to %s (snapshots %s=%s... %s=%s...)\n",
			ps.StudyID, *cacheDir, "2020", ps.CorpusKeys["2020"][:12], "2021", ps.CorpusKeys["2021"][:12])
		if *verbose && cacheLine != "" {
			fmt.Fprintln(os.Stderr, cacheLine)
		}
	}

	emit := func(name, content string) error {
		if *out == "" {
			fmt.Println(content)
			return nil
		}
		if err := os.MkdirAll(*out, 0o755); err != nil {
			return err
		}
		return os.WriteFile(filepath.Join(*out, name), []byte(content), 0o644)
	}
	tables := core.StudyTables(res.Corpus20, res.Corpus21)
	for _, name := range core.TableNames() {
		if err := emit(name, tables[name]); err != nil {
			return err
		}
	}
	return nil
}

func runServe(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	cacheDir := fs.String("cache-dir", "", "persistent study store directory to serve")
	addr := fs.String("addr", ":8077", "HTTP listen address")
	grace := fs.Duration("grace", 10*time.Second, "shutdown grace period for in-flight requests and running studies")
	debugAddr := fs.String("debug-addr", "", "serve /metrics, /healthz and /debug/pprof on this address")
	runWorkers := fs.Int("run-workers", 0, "study execution worker slots (0 = read-only service, no POST /api/studies)")
	maxQueue := fs.Int("max-queue", 0, "bound on queued studies before submissions shed with 503 (0 = default 16)")
	tenantShare := fs.Int("tenant-share", 0, "one tenant's queue share before its submissions shed with 429 (0 = max-queue/4)")
	tenantInflight := fs.Int("tenant-inflight", 0, "one tenant's concurrently running studies (0 = run-workers/2)")
	runTimeout := fs.Duration("run-timeout", 0, "per-study execution timeout (0 = none)")
	retryAfter := fs.Duration("retry-after", 0, "Retry-After pacing attached to shed submissions (0 = default 2s)")
	sseWriteTimeout := fs.Duration("sse-write-timeout", 0, "per-write deadline on SSE streams; a reader stalled past it is cut (0 = default 15s)")
	censusTTL := fs.Duration("census-ttl", 0, "how long /healthz reuses its memoised store census (0 = default 2s)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopDebug, err := startDebug(*debugAddr)
	if err != nil {
		return err
	}
	defer stopDebug()
	if *cacheDir == "" {
		return fmt.Errorf("serve: -cache-dir is required (populate one with `gaugenn study -cache-dir DIR`)")
	}
	if fi, err := os.Stat(*cacheDir); err != nil || !fi.IsDir() {
		// Read-only serve must point at an existing store instead of
		// silently answering from an empty one; with a scheduler attached
		// the service legitimately starts cold and fills its own store.
		if *runWorkers <= 0 {
			return fmt.Errorf("serve: cache dir %s does not exist (populate it with `gaugenn study -cache-dir %s`, or start with -run-workers to let the service fill it)", *cacheDir, *cacheDir)
		}
		if err := os.MkdirAll(*cacheDir, 0o755); err != nil {
			return fmt.Errorf("serve: creating cache dir: %w", err)
		}
	}
	st, err := store.Open(*cacheDir)
	if err != nil {
		return err
	}
	studies, err := st.Studies()
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "serve: %d studies in %s, listening on %s\n", len(studies), *cacheDir, *addr)
	for _, e := range studies {
		fmt.Fprintf(os.Stderr, "serve:   %s (models 2020=%d 2021=%d)\n", e.ID, e.Models["2020"], e.Models["2021"])
	}
	opts := []serve.Option{serve.WithSSEWriteTimeout(*sseWriteTimeout), serve.WithCensusTTL(*censusTTL)}
	var sch *sched.Scheduler
	if *runWorkers > 0 {
		sch = sched.New(sched.Config{
			CacheDir:          *cacheDir,
			MaxWorkers:        *runWorkers,
			MaxQueue:          *maxQueue,
			TenantQueueShare:  *tenantShare,
			TenantMaxInFlight: *tenantInflight,
			RunTimeout:        *runTimeout,
			RetryAfter:        *retryAfter,
		})
		opts = append(opts, serve.WithScheduler(sch))
		fmt.Fprintf(os.Stderr, "serve: study scheduler on (%d workers); POST /api/studies accepted\n", *runWorkers)
	}
	// An http.Server (not the bare ListenAndServe helper) so the signal
	// context can drain it gracefully: in-flight requests get the grace
	// period, new connections are refused immediately, and — because
	// every request context derives from the signal context via
	// BaseContext — in-flight corpus loads abort on the first signal
	// instead of pinning Shutdown for the full grace period.
	srv := &http.Server{
		Addr:        *addr,
		Handler:     serve.New(st, opts...).Handler(),
		BaseContext: func(net.Listener) context.Context { return ctx },
	}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
		shutCtx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		// Drain order matters: the scheduler first — admission stops
		// (late submissions shed with 503), running studies cancel through
		// the pipeline's warm-safe unwind, and every event ring closes,
		// which ends the SSE streams that would otherwise pin Shutdown —
		// then the HTTP server's own connection drain.
		if sch != nil {
			fmt.Fprintln(os.Stderr, "serve: draining scheduler (admission stopped)")
			if err := sch.Drain(shutCtx); err != nil {
				fmt.Fprintf(os.Stderr, "serve: %v\n", err)
			}
		}
		fmt.Fprintln(os.Stderr, "serve: draining connections")
		if err := srv.Shutdown(shutCtx); err != nil {
			// Grace expired with requests still in flight: cut them.
			srv.Close()
			return fmt.Errorf("serve: shutdown: %w", err)
		}
		<-errCh // reap the ErrServerClosed from ListenAndServe
		fmt.Fprintln(os.Stderr, "serve: stopped")
		return nil
	}
}

// runLoad drives the chaos load harness against a live serve instance
// and prints (and optionally persists) the aggregated summary. The exit
// status is the protocol verdict: non-zero when a hard invariant failed
// (resume gaps, non-shed 5xx, unresolved studies).
func runLoad(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("load", flag.ExitOnError)
	addr := fs.String("addr", "http://127.0.0.1:8077", "base URL of the serve instance under load")
	clients := fs.Int("clients", 16, "concurrent clients")
	submissions := fs.Int("submissions", 64, "total studies offered")
	tenants := fs.Int("tenants", 4, "distinct tenant identities")
	distinct := fs.Int("distinct", 4, "distinct study specs (repeats exercise warm dedup)")
	seed := fs.Int64("seed", 1, "behaviour-mix seed (who is rude, who stalls, who cancels)")
	studySeed := fs.Int64("study-seed", 42, "base store-generation seed for submitted specs")
	scale := fs.Float64("scale", 0.01, "submitted study scale")
	workers := fs.Int("workers", 0, "per-study pipeline workers submitted in each spec")
	maxPriority := fs.Int("max-priority", 3, "submissions spread across priorities 0..N (exercises preemption)")
	rude := fs.Float64("rude", 0.25, "fraction of clients that hang up mid-SSE and resume by cursor")
	stall := fs.Float64("stall", 0.15, "fraction of clients that stop reading mid-stream")
	cancelFrac := fs.Float64("cancel", 0.15, "fraction of clients that cancel their study mid-run")
	stallFor := fs.Duration("stall-for", 300*time.Millisecond, "how long a stalled reader stops consuming")
	jobTimeout := fs.Duration("job-timeout", 2*time.Minute, "end-to-end bound per submission")
	maxShedWait := fs.Duration("max-shed-wait", 2*time.Second, "cap on honouring a shed's Retry-After")
	chaos := fs.Bool("chaos", false, "inject transport faults (synthetic 503/429, truncation, stalls) into the client side")
	chaosSeed := fs.Int64("chaos-seed", 99, "fault schedule seed for -chaos")
	jsonPath := fs.String("json", "", "write the summary JSON here")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := loadgen.Config{
		BaseURL:         *addr,
		Clients:         *clients,
		Submissions:     *submissions,
		Tenants:         *tenants,
		DistinctStudies: *distinct,
		Seed:            *seed,
		StudySeed:       *studySeed,
		Scale:           *scale,
		Workers:         *workers,
		MaxPriority:     *maxPriority,
		RudeFrac:        *rude,
		StallFrac:       *stall,
		CancelFrac:      *cancelFrac,
		StallFor:        *stallFor,
		JobTimeout:      *jobTimeout,
		MaxShedWait:     *maxShedWait,
	}
	if *chaos {
		// Client-side fault injection: the swarm itself sees synthetic
		// 503/429s, truncated bodies and stalled reads on top of whatever
		// the server does — the retry/resume paths must absorb both.
		plan := faults.NewSchedule(*chaosSeed).
			Set(faults.ClassHTTP500, faults.Rule{Rate: 0.05}).
			Set(faults.ClassHTTP429, faults.Rule{Rate: 0.05}).
			Set(faults.ClassTruncate, faults.Rule{Rate: 0.02}).
			Set(faults.ClassStall, faults.Rule{Rate: 0.02})
		cfg.Transport = faults.Transport(plan, "load:", nil)
	}
	start := time.Now()
	sum, err := loadgen.Run(ctx, cfg)
	if sum != nil {
		fmt.Fprintf(os.Stderr, "load: %d offered, %d accepted, %d shed (%d honored), %d reconnects in %v\n",
			sum.Submissions, sum.Accepted, sum.Shed, sum.ShedHonored, sum.Reconnects, time.Since(start).Round(time.Millisecond))
		fmt.Fprintf(os.Stderr, "load: terminal: %d done, %d cancelled, %d failed, %d unresolved; %d preempted-and-recovered\n",
			sum.Completed, sum.Cancelled, sum.Failed, sum.Unresolved, sum.Preempted)
		fmt.Fprintf(os.Stderr, "load: chaos: %d rude disconnects, %d stalled readers, %d cancels issued\n",
			sum.RudeDisconnects, sum.StalledReaders, sum.CancelsIssued)
		fmt.Fprintf(os.Stderr, "load: stream: %d events, %d gaps, %d truncations, %d non-shed 5xx\n",
			sum.Events, sum.Gaps, sum.Truncations, sum.NonShed5xx)
		fmt.Fprintf(os.Stderr, "load: submit->first-event p50=%.1fms p99=%.1fms; queue-wait p50=%.1fms p99=%.1fms\n",
			sum.SubmitToFirstEvent.P50, sum.SubmitToFirstEvent.P99, sum.QueueWait.P50, sum.QueueWait.P99)
		if *jsonPath != "" {
			js, jerr := json.MarshalIndent(sum, "", "  ")
			if jerr != nil {
				return jerr
			}
			js = append(js, '\n')
			if werr := os.WriteFile(*jsonPath, js, 0o644); werr != nil {
				return werr
			}
			fmt.Fprintf(os.Stderr, "load: summary written to %s\n", *jsonPath)
		}
	}
	return err
}

func runBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	device := fs.String("device", "Q845", "device model (see `gaugenn devices`)")
	backend := fs.String("backend", "cpu", "runtime backend")
	model := fs.String("model", "", "model file (tflite/dlc/onnx/tf bytes)")
	threads := fs.Int("threads", 4, "CPU threads")
	batch := fs.Int("batch", 1, "batch size")
	runs := fs.Int("runs", 10, "measured inferences")
	execute := fs.Bool("execute", false, "measured backend: run inference for real through the interpreter (see docs/exec.md)")
	demo := fs.String("demo", "", "benchmark a built-in demo model (task name, e.g. 'face detection') instead of -model")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var data []byte
	name := *model
	if *demo != "" {
		task := zoo.TaskUnknown
		for _, t := range zoo.AllTasks() {
			if t.String() == *demo {
				task = t
			}
		}
		if task == zoo.TaskUnknown {
			return fmt.Errorf("unknown demo task %q", *demo)
		}
		bm, err := demoModel(task)
		if err != nil {
			return err
		}
		data, name = bm, *demo
	} else {
		if *model == "" {
			return fmt.Errorf("need -model FILE or -demo TASK")
		}
		var err error
		data, err = os.ReadFile(*model)
		if err != nil {
			return err
		}
	}
	dev, err := soc.NewDevice(*device)
	if err != nil {
		return err
	}
	mon := power.NewMonitor()
	agent := bench.NewAgent(dev, nil, mon)
	res := agent.ExecuteJob(bench.Job{
		ID: "cli", ModelName: name, Model: data,
		Backend: *backend, Threads: *threads, Batch: *batch,
		Warmup: 2, Runs: *runs, Execute: *execute,
	})
	if res.Error != "" {
		return fmt.Errorf("%s", res.Error)
	}
	fmt.Printf("device=%s backend=%s model=%s\n", res.Device, res.Backend, res.ModelName)
	fmt.Printf("mean latency : %v\n", res.MeanLatency().Round(time.Microsecond))
	fmt.Printf("mean energy  : %.3f mJ/inference\n", res.MeanEnergymJ())
	fmt.Printf("efficiency   : %.1f MFLOP/sW\n", res.EfficiencyMFLOPsW())
	fmt.Printf("avg power    : %.3f W (monitor: %.1f mJ total)\n", res.AvgPowerW, res.MonitorEnergyMJ)
	fmt.Printf("flops        : %d, fallback ops: %d, throttled: %v\n", res.FLOPs, res.FallbackOps, res.Throttled)
	if res.OutputDigest != "" {
		fmt.Printf("output digest: sha256:%s\n", res.OutputDigest)
	}
	return nil
}

// runExec runs a model for real through the internal/exec interpreter —
// the measured backend behind `-execute`/`-mode executed` — and prints the
// determinism digest plus the per-class roofline. The model comes from a
// study store's graph CAS (-cache-dir + -checksum, the artifact `gaugenn
// study` persisted), a model file, or a built-in demo task.
func runExec(args []string) error {
	fs := flag.NewFlagSet("exec", flag.ExitOnError)
	cacheDir := fs.String("cache-dir", "", "study store holding the model graph (with -checksum)")
	checksum := fs.String("checksum", "", "graph checksum key in the store's CAS (see `gaugenn fsck`)")
	model := fs.String("model", "", "model file (tflite/dlc/onnx/tf bytes)")
	demo := fs.String("demo", "", "execute a built-in demo model (task name, e.g. 'face detection')")
	runs := fs.Int("runs", 8, "measured runs (seeds 0..runs-1)")
	workers := fs.Int("workers", 0, "pool workers (0 = GOMAXPROCS); results are identical for any count")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var g *graph.Graph
	var name string
	switch {
	case *demo != "":
		task := zoo.TaskUnknown
		for _, t := range zoo.AllTasks() {
			if t.String() == *demo {
				task = t
			}
		}
		if task == zoo.TaskUnknown {
			return fmt.Errorf("unknown demo task %q", *demo)
		}
		built, err := zoo.Build(zoo.Spec{Task: task, Seed: 1, Hinted: true})
		if err != nil {
			return err
		}
		g, name = built, *demo
	case *checksum != "":
		if *cacheDir == "" {
			return fmt.Errorf("-checksum needs -cache-dir DIR to read the graph from")
		}
		st, err := store.Open(*cacheDir)
		if err != nil {
			return err
		}
		data, ok, err := st.Get(store.KindGraph, *checksum)
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("no graph %s in %s (persisted by `gaugenn study -cache-dir`)", *checksum, *cacheDir)
		}
		g, err = graph.DecodeBinary(data)
		if err != nil {
			return err
		}
		name = *checksum
	case *model != "":
		data, err := os.ReadFile(*model)
		if err != nil {
			return err
		}
		for _, f := range formats.All() {
			if f.Sniff(data) {
				g, err = f.Decode(formats.FileSet{"model" + f.Extensions()[0]: data})
				if err != nil {
					return err
				}
				break
			}
		}
		if g == nil {
			return fmt.Errorf("%s matches no registered model format", *model)
		}
		name = *model
	default:
		return fmt.Errorf("need -demo TASK, -model FILE, or -cache-dir DIR -checksum KEY")
	}
	prog, err := exec.Compile(g)
	if err != nil {
		var ue *errs.UnsupportedOpsError
		if errors.As(err, &ue) {
			return fmt.Errorf("model %s cannot run on the measured backend (unsupported operators: %s)",
				ue.Model, strings.Join(ue.Ops, ", "))
		}
		return err
	}
	if *runs <= 0 {
		return fmt.Errorf("-runs must be positive, not %d", *runs)
	}
	seeds := make([]uint64, *runs)
	for i := range seeds {
		seeds[i] = uint64(i)
	}
	pool := exec.NewPool(prog, *workers)
	results := pool.Run(seeds)
	var total time.Duration
	h := sha256.New()
	for _, r := range results {
		total += r.Latency
		h.Write(r.Digest[:])
	}
	fmt.Printf("model=%s ops=%d arena=%d bytes workers=%d\n",
		name, len(g.Layers), prog.ArenaBytes(), pool.Workers())
	fmt.Printf("mean latency : %v over %d runs\n", (total / time.Duration(len(results))).Round(time.Microsecond), len(results))
	fmt.Printf("output digest: sha256:%x\n", h.Sum(nil))

	// The roofline rows come from a fresh single-threaded instance (the
	// pool does not expose its workers' accumulators).
	inst := prog.NewInstance()
	inst.Run(0)
	fmt.Println()
	fmt.Print(report.RooflineTable("Per-class roofline (one measured run)", inst.Stats()))
	return nil
}

// fleetTasks is the vision-leaning task cycle fleet matrices draw models
// from (the commonly-compatible subset the paper sweeps across backends).
var fleetTasks = []zoo.Task{
	zoo.TaskImageClassification, zoo.TaskFaceDetection, zoo.TaskObjectDetection,
	zoo.TaskSemanticSegmentation, zoo.TaskKeywordDetection, zoo.TaskPhotoBeauty,
}

func runFleet(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("fleet", flag.ExitOnError)
	devices := fs.String("devices", "A70,Q845,Q888", "comma-separated device models")
	backends := fs.String("backends", "cpu,xnnpack,gpu", "comma-separated runtime backends")
	nModels := fs.Int("models", 3, "number of zoo models in the matrix")
	seed := fs.Int64("seed", 42, "model generation seed")
	replicas := fs.Int("replicas", 1, "in-process rigs per device model (0 = none: pool is -agents only)")
	agents := fs.String("agents", "", "comma-separated remote benchd endpoints to add to the pool")
	threads := fs.Int("threads", 4, "CPU threads per job")
	warmup := fs.Int("warmup", 2, "warmup inferences per job")
	runs := fs.Int("runs", 5, "measured inferences per job")
	mode := fs.String("mode", "simulated", "inference backend: 'simulated' (device model) or 'executed' (measured via the interpreter, docs/exec.md)")
	scenarios := fs.Bool("scenarios", true, "project Table 4 usage scenarios from measured energy")
	jsonPath := fs.String("json", "", "write the machine-readable results file here")
	out := fs.String("out", "", "directory for report tables (stdout if empty)")
	debugAddr := fs.String("debug-addr", "", "serve /metrics, /healthz and /debug/pprof on this address")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *mode != "simulated" && *mode != "executed" {
		return fmt.Errorf("fleet: -mode must be 'simulated' or 'executed', not %q", *mode)
	}
	stopDebug, err := startDebug(*debugAddr)
	if err != nil {
		return err
	}
	defer stopDebug()
	split := func(s string) []string {
		var outS []string
		for _, p := range strings.Split(s, ",") {
			if p = strings.TrimSpace(p); p != "" {
				outS = append(outS, p)
			}
		}
		return outS
	}

	// The matrix is a pure function of (seed, models, devices, backends):
	// the aggregated output is byte-identical for any pool size.
	rng := rand.New(rand.NewSource(*seed))
	var models []fleet.ModelSpec
	for i := 0; i < *nModels; i++ {
		task := fleetTasks[i%len(fleetTasks)]
		ms, err := fleet.ZooModel(zoo.Spec{
			Task: task, Seed: *seed + int64(i), Opts: zoo.DefaultOptsFor(task, rng),
		})
		if err != nil {
			return err
		}
		models = append(models, ms)
	}
	matrix := fleet.Matrix{
		Models:   models,
		Devices:  split(*devices),
		Backends: split(*backends),
		Threads:  *threads,
		Warmup:   *warmup,
		Runs:     *runs,
		Execute:  *mode == "executed",
	}
	if *scenarios {
		matrix.Scenarios = bench.AllScenarios()
	}
	feasible, total, err := matrix.FeasibleCells()
	if err != nil {
		// Executed mode validates every model against the interpreter's op
		// vocabulary up front; name the offending operators rather than
		// dumping the wrapped chain.
		var ue *errs.UnsupportedOpsError
		if errors.As(err, &ue) {
			return fmt.Errorf("fleet: model %s cannot run in executed mode (unsupported operators: %s); rerun with -mode simulated",
				ue.Model, strings.Join(ue.Ops, ", "))
		}
		return err
	}

	var runners []fleet.Runner
	if *replicas > 0 {
		pool, err := fleet.NewLocalPool(matrix.Devices, *replicas)
		if err != nil {
			return err
		}
		defer pool.Close()
		runners = append(runners, pool.Runners()...)
	}
	seenAgents := map[string]bool{}
	for i, addr := range split(*agents) {
		// One runner per agent: two runners sharing one benchd would race
		// for the same physical device.
		if seenAgents[addr] {
			return fmt.Errorf("agent %s listed twice", addr)
		}
		seenAgents[addr] = true
		r, err := fleet.NewRemoteRunner(ctx, fmt.Sprintf("remote#%d", i), addr, 5*time.Second, 0)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "fleet: attached %s (%s)\n", addr, r.DeviceModel())
		runners = append(runners, r)
	}
	full, err := fleet.NewPool(runners...)
	if err != nil {
		return err
	}

	fmt.Fprintf(os.Stderr, "fleet: %d models x %d devices x %d backends = %d cells (%d feasible) on %d rigs\n",
		len(matrix.Models), len(matrix.Devices), len(matrix.Backends), total, feasible, len(runners))
	start := time.Now()
	// Progress renders from the typed event stream (the same variants
	// `gaugenn study -v` consumes); cancellation leaves the line open and
	// the partial aggregate still renders below.
	var progressMu sync.Mutex
	agg, runErr := full.Run(ctx, matrix, fleet.Config{OnEvent: func(ev event.Event) {
		if p, ok := ev.(event.StageProgress); ok {
			progressMu.Lock()
			fmt.Fprintf(os.Stderr, "\r\x1b[Kfleet: %d/%d cells", p.Done, p.Total)
			if p.Done == p.Total {
				fmt.Fprintln(os.Stderr)
			}
			progressMu.Unlock()
		}
	}})
	if agg == nil {
		return runErr
	}
	if runErr != nil && errors.Is(runErr, errs.ErrCancelled) {
		// An interrupted sweep writes nothing: partial tables/JSON would
		// silently clobber a previous complete run's artifacts while being
		// indistinguishable from them on disk.
		fmt.Fprintf(os.Stderr, "\nfleet: interrupted after %v — partial results discarded: %v\n",
			time.Since(start).Round(time.Millisecond), runErr)
		return runErr
	}
	if runErr != nil {
		fmt.Fprintf(os.Stderr, "fleet: partial failure: %v\n", runErr)
	}
	fmt.Fprintf(os.Stderr, "fleet: matrix complete in %v\n", time.Since(start).Round(time.Millisecond))

	emit := func(name, content string) error {
		if content == "" {
			return nil
		}
		if *out == "" {
			fmt.Println(content)
			return nil
		}
		if err := os.MkdirAll(*out, 0o755); err != nil {
			return err
		}
		return os.WriteFile(filepath.Join(*out, name), []byte(content), 0o644)
	}
	if err := emit("fleet_latency.txt", agg.LatencyTable()); err != nil {
		return err
	}
	if err := emit("fleet_energy.txt", agg.EnergyTable()); err != nil {
		return err
	}
	scTable, err := agg.ScenarioTable()
	if err != nil {
		return err
	}
	if err := emit("fleet_table4.txt", scTable); err != nil {
		return err
	}
	if *jsonPath != "" {
		js, err := agg.ResultsJSON()
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonPath, js, 0o644); err != nil {
			return err
		}
	}
	sum, err := agg.Checksum()
	if err != nil {
		return err
	}
	fmt.Printf("results checksum: sha256:%s\n", sum)
	if matrix.Execute {
		// Executed-mode latencies are wall-clock, so the full checksum
		// varies run to run; the output checksum (matrix identity + output
		// digests) is the repeatable determinism witness.
		osum, err := agg.OutputChecksum()
		if err != nil {
			return err
		}
		fmt.Printf("output checksum : sha256:%s\n", osum)
	}
	return runErr
}

// runFsck audits a study store for corruption (torn writes, bit rot,
// truncation) and with -fix quarantines corrupt derived records so the
// next warm run recomputes them. Exit status: 0 clean, 1 issues found
// (audit mode) or unfixable issues remain (fix mode).
func runFsck(args []string) error {
	fs := flag.NewFlagSet("fsck", flag.ExitOnError)
	cacheDir := fs.String("cache-dir", "", "persistent study store directory to audit")
	fix := fs.Bool("fix", false, "quarantine corrupt blobs and repair the manifest")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cacheDir == "" {
		return fmt.Errorf("fsck: -cache-dir is required")
	}
	res, err := fsck.Run(*cacheDir, fsck.Options{Fix: *fix})
	if err != nil {
		return err
	}
	var scanned int
	for _, kind := range []string{store.KindCorpus, store.KindReport, store.KindGraph, store.KindAnalysis, store.KindPayload, store.KindIndex} {
		fmt.Fprintf(os.Stderr, "fsck: %s: %d blob(s)\n", kind, res.Scanned[kind])
		scanned += res.Scanned[kind]
	}
	fmt.Fprintf(os.Stderr, "fsck: manifest: %d entries\n", res.ManifestEntries)
	if res.Clean() {
		fmt.Fprintf(os.Stderr, "fsck: %s clean (%d blobs verified)\n", *cacheDir, scanned)
		return nil
	}
	unfixed := 0
	for _, is := range res.Issues {
		fmt.Fprintln(os.Stderr, "fsck:", is.String())
		if !is.Fixed {
			unfixed++
		}
	}
	if *fix && unfixed == 0 {
		fmt.Fprintf(os.Stderr, "fsck: repaired %d issue(s); warm runs will recompute quarantined records\n", len(res.Issues))
		return nil
	}
	if *fix {
		return fmt.Errorf("fsck: %d issue(s) could not be repaired automatically", unfixed)
	}
	return fmt.Errorf("fsck: %d issue(s) found (rerun with -fix to repair)", len(res.Issues))
}

func demoModel(task zoo.Task) ([]byte, error) {
	g, err := zoo.Build(zoo.Spec{Task: task, Seed: 1, Hinted: true})
	if err != nil {
		return nil, err
	}
	return core.EncodeTFLite(g)
}

func runDevices() error {
	rows := [][]string{}
	for _, m := range soc.AllDeviceModels() {
		d, err := soc.NewDevice(m)
		if err != nil {
			return err
		}
		bat := "N/A"
		if d.BatterymAh > 0 {
			bat = fmt.Sprintf("%d mAh", d.BatterymAh)
		}
		kind := "phone"
		if d.OpenDeck {
			kind = "open-deck HDK"
		}
		rows = append(rows, []string{d.Model, d.SoC.Name, fmt.Sprintf("%d GB", d.RAMGB), bat, kind})
	}
	fmt.Print(report.Table("Table 1: device specifications",
		[]string{"model", "SoC", "RAM", "battery", "form"}, rows))
	return nil
}
