// Command storegen generates a synthetic Play Store snapshot and serves it
// over the device-facing HTTP API, for driving the crawler interactively:
//
//	storegen -seed 42 -scale 0.05 -listen 127.0.0.1:8443 [-year 2021]
//
// Point a crawler at the printed base URL; requests must carry User-Agent
// and X-DFE-Locale headers, as the real store's do.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"

	"github.com/gaugenn/gaugenn/internal/playstore"
)

func main() {
	seed := flag.Int64("seed", 42, "generation seed")
	scale := flag.Float64("scale", 0.05, "store scale (1.0 = paper scale)")
	listen := flag.String("listen", "127.0.0.1:0", "listen address")
	year := flag.Int("year", 2021, "snapshot year (2020 or 2021)")
	flag.Parse()

	study, err := playstore.GenerateStudy(playstore.DefaultConfig(*seed, *scale))
	if err != nil {
		fmt.Fprintln(os.Stderr, "storegen:", err)
		os.Exit(1)
	}
	snap := study.Snap21
	if *year == 2020 {
		snap = study.Snap20
	} else if *year != 2021 {
		fmt.Fprintln(os.Stderr, "storegen: -year must be 2020 or 2021")
		os.Exit(2)
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "storegen:", err)
		os.Exit(1)
	}
	models := 0
	mlApps := 0
	for _, a := range snap.Apps {
		models += len(a.Models)
		if a.HasML() {
			mlApps++
		}
	}
	fmt.Printf("serving %s (%d apps, %d ML apps, %d model instances) on http://%s\n",
		snap.Label, len(snap.Apps), mlApps, models, ln.Addr())
	srv := &http.Server{Handler: playstore.NewServer(snap)}
	if err := srv.Serve(ln); err != nil {
		fmt.Fprintln(os.Stderr, "storegen:", err)
		os.Exit(1)
	}
}
