// Command benchd runs the device-side benchmark agent (the "slave" of the
// paper's Figure 2 master-slave rig) for one simulated device:
//
//	benchd -device Q845
//
// It prints the adb endpoint a bench master connects to. The agent wires a
// Monsoon-style power monitor to the device's supply rail and keeps the
// screen on with the black-background app, per the measurement
// methodology. Remote masters — a `gaugenn fleet -agents` pool — discover
// the device and its supported backends over the QUERY message and pace it
// thermally over COOL; the agent self-cycles its USB switch around each
// headless run, since no remote process can reach the device-side switch.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/gaugenn/gaugenn/internal/bench"
	"github.com/gaugenn/gaugenn/internal/mlrt"
	"github.com/gaugenn/gaugenn/internal/obs"
	"github.com/gaugenn/gaugenn/internal/power"
	"github.com/gaugenn/gaugenn/internal/soc"
)

func main() {
	device := flag.String("device", "Q845", "device model (A20, A70, S21, Q845, Q855, Q888)")
	workers := flag.Int("workers", 0, "max concurrent control connections (0 = unlimited)")
	selfPower := flag.Bool("self-power", true, "agent cycles its own USB switch around headless runs (required for remote masters; disable only when an in-process master shares the switch)")
	readTimeout := flag.Duration("read-timeout", 5*time.Minute, "per-frame read deadline on master connections; a silent master is dropped after this long (0 = wait forever)")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /healthz and /debug/pprof on this address")
	flag.Parse()

	if *debugAddr != "" {
		ds, err := obs.StartDebug(*debugAddr, obs.Default())
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchd:", err)
			os.Exit(1)
		}
		defer ds.Close()
		fmt.Printf("benchd: metrics and pprof on http://%s\n", ds.Addr)
	}

	dev, err := soc.NewDevice(*device)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchd:", err)
		os.Exit(1)
	}
	usb := power.NewUSBSwitch()
	mon := power.NewMonitor()
	agent := bench.NewAgent(dev, usb, mon)
	agent.MaxConns = *workers
	agent.SelfPower = *selfPower
	// The read deadline reaps connections whose master dialled and went
	// silent, so a bounded MaxConns pool cannot be pinned by dead peers.
	agent.ReadTimeout = *readTimeout
	addr, err := agent.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchd:", err)
		os.Exit(1)
	}
	defer agent.Close()
	fmt.Printf("benchd: %s (%s) agent listening on %s\n", dev.Model, dev.SoC.Name, addr)
	fmt.Printf("benchd: backends: %s\n", strings.Join(mlrt.SupportedBackends(dev), " "))
	if *selfPower {
		fmt.Println("benchd: self-power on — join a pool with `gaugenn fleet -agents " + addr + "`")
	} else {
		fmt.Println("benchd: note — this process owns the USB switch; in-process masters must share it")
	}

	// First signal closes the agent gracefully (the listener stops, the
	// deferred Close is the single cleanup path); a second force-exits in
	// case a wedged control connection keeps the process alive.
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Println("benchd: shutting down (signal again to force exit)")
	go func() {
		<-sig
		fmt.Println("benchd: forced exit")
		os.Exit(130)
	}()
}
