package gaugenn_test

import (
	"testing"

	"github.com/gaugenn/gaugenn"
)

func TestFacadeEndToEnd(t *testing.T) {
	cfg := gaugenn.DefaultConfig(11, 0.02)
	cfg.UseHTTP = false
	res, err := gaugenn.RunStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Corpus21.TotalModels() == 0 {
		t.Fatal("no models")
	}
	models, err := gaugenn.SelectBenchModels(res.Corpus21, 2)
	if err != nil {
		t.Fatal(err)
	}
	out, err := gaugenn.DeviceRun("S21", "cpu", models, 4, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(models) {
		t.Fatalf("results = %d", len(out))
	}
	if len(gaugenn.Devices()) != 6 || len(gaugenn.HDKs()) != 3 {
		t.Fatal("device lists")
	}
}
