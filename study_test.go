package gaugenn_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/gaugenn/gaugenn"
)

// TestStudyV2EndToEnd drives the whole v2 surface: options, the typed
// event stream, a cancellable run, and the RunSpec bench path.
func TestStudyV2EndToEnd(t *testing.T) {
	study := gaugenn.NewStudy(
		gaugenn.WithSeed(11),
		gaugenn.WithScale(0.02),
		gaugenn.WithWorkers(4),
	)
	events := study.Events()
	collected := make(chan []gaugenn.Event, 1)
	go func() {
		var evs []gaugenn.Event
		for ev := range events {
			evs = append(evs, ev)
		}
		collected <- evs
	}()
	res, err := study.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Corpus21.TotalModels() == 0 {
		t.Fatal("no models")
	}

	// The stream closed (Run returned) and carries a coherent per-stage
	// narrative: every StageStart eventually matched by a StageDone, and
	// per-stage progress monotonic.
	var evs []gaugenn.Event
	select {
	case evs = <-collected:
	case <-time.After(10 * time.Second):
		t.Fatal("event stream never closed")
	}
	type stageKey struct{ stage, snapshot string }
	started := map[stageKey]int{}
	doneTotals := map[stageKey]int{}
	lastDone := map[stageKey]int{}
	for _, ev := range evs {
		switch v := ev.(type) {
		case gaugenn.StageStart:
			started[stageKey{v.Stage, v.Snapshot}] = v.Total
		case gaugenn.StageProgress:
			k := stageKey{v.Stage, v.Snapshot}
			if _, ok := started[k]; !ok {
				t.Fatalf("progress before start for %v", k)
			}
			if v.Done < lastDone[k] {
				t.Fatalf("stage %v went backwards: %d after %d", k, v.Done, lastDone[k])
			}
			lastDone[k] = v.Done
		case gaugenn.StageDone:
			doneTotals[stageKey{v.Stage, v.Snapshot}] = v.Total
		}
	}
	for _, snap := range []string{"2020", "2021"} {
		for _, stage := range []string{"crawl", "analyse"} {
			k := stageKey{stage, snap}
			if started[k] == 0 {
				t.Fatalf("stage %v never started (events: %d)", k, len(evs))
			}
			if doneTotals[k] != started[k] {
				t.Fatalf("stage %v: done total %d != start total %d", k, doneTotals[k], started[k])
			}
			if lastDone[k] != started[k] {
				t.Fatalf("stage %v: final done %d != total %d", k, lastDone[k], started[k])
			}
		}
	}

	// Second Run on the same Study is a usage error.
	if _, err := study.Run(context.Background()); err == nil {
		t.Fatal("second Run must fail")
	}

	// RunSpec bench over the result.
	models, err := gaugenn.SelectBenchModels(res.Corpus21, 2)
	if err != nil {
		t.Fatal(err)
	}
	out, err := gaugenn.Bench(context.Background(), gaugenn.RunSpec{
		Device: "S21", Backend: "cpu", Threads: 4, Runs: 2,
	}, models)
	if err != nil || len(out) != len(models) {
		t.Fatalf("Bench: err=%v results=%d", err, len(out))
	}
}

// TestStudyV2Cancellation checks the public cancellation contract end to
// end: typed sentinel, stage attribution, closed event stream.
func TestStudyV2Cancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	study := gaugenn.NewStudy(
		gaugenn.WithSeed(12),
		gaugenn.WithScale(0.05),
		gaugenn.WithEventHandler(func(ev gaugenn.Event) {
			if p, ok := ev.(gaugenn.StageProgress); ok && p.Done >= 2 {
				cancel()
			}
		}),
	)
	events := study.Events()
	_, err := study.Run(ctx)
	if err == nil {
		t.Fatal("cancelled study returned nil error")
	}
	if !errors.Is(err, gaugenn.ErrCancelled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("cancellation not typed: %v", err)
	}
	var se *gaugenn.StageError
	if !errors.As(err, &se) || se.Stage == "" {
		t.Fatalf("no stage attribution: %v", err)
	}
	// The stream still closes after a cancelled run.
	deadline := time.After(10 * time.Second)
	for {
		select {
		case _, ok := <-events:
			if !ok {
				return
			}
		case <-deadline:
			t.Fatal("event stream not closed after cancellation")
		}
	}
}

// TestV1ShimsMatchV2 pins the compatibility contract: the deprecated
// RunStudy/Config surface produces the same corpora as the v2 Study.
func TestV1ShimsMatchV2(t *testing.T) {
	cfg := gaugenn.DefaultConfig(13, 0.02)
	cfg.UseHTTP = false
	v1, err := gaugenn.RunStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := gaugenn.NewStudy(gaugenn.WithSeed(13), gaugenn.WithScale(0.02)).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for label, pair := range map[string][2]interface{ TotalModels() int }{
		"2020": {v1.Corpus20, v2.Corpus20},
		"2021": {v1.Corpus21, v2.Corpus21},
	} {
		if pair[0].TotalModels() != pair[1].TotalModels() {
			t.Fatalf("snapshot %s: v1 %d models, v2 %d", label, pair[0].TotalModels(), pair[1].TotalModels())
		}
	}
	if v1.Corpus21.Dataset() != v2.Corpus21.Dataset() {
		t.Fatalf("datasets diverge: %+v vs %+v", v1.Corpus21.Dataset(), v2.Corpus21.Dataset())
	}
}

// TestStudyV2FailureBudgetSurface exercises the graceful-degradation
// surface from the public API: a healthy run under zero tolerance must
// complete with an empty quarantine, and the re-exported types must
// compose with the errors package.
func TestStudyV2FailureBudgetSurface(t *testing.T) {
	var warns int
	study := gaugenn.NewStudy(
		gaugenn.WithSeed(11),
		gaugenn.WithScale(0.02),
		gaugenn.WithFailureBudget(-1),
		gaugenn.WithEventHandler(func(ev gaugenn.Event) {
			if _, ok := ev.(gaugenn.StageWarning); ok {
				warns++
			}
		}),
	)
	res, err := study.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Quarantine) != 0 || warns != 0 {
		t.Fatalf("healthy zero-tolerance run quarantined: %d apps, %d warnings", len(res.Quarantine), warns)
	}
	// Compile-time: the typed-error surface is reachable from the root.
	var be *gaugenn.BudgetError
	var ae *gaugenn.AppError
	if errors.As(error(nil), &be) || errors.As(error(nil), &ae) || errors.Is(nil, gaugenn.ErrBudgetExceeded) {
		t.Fatal("nil error must match nothing")
	}
}
