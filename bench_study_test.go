// Pipeline throughput benchmarks: the end-to-end study (generate ->
// crawl/package -> extract -> analyse, both snapshots) at a fixed 10%
// scale under increasing worker counts. BENCH_baseline.json records the
// trajectory; the acceptance bar is >= 2x at workers=4 vs workers=1 on a
// 4+-core runner, with byte-identical corpora across worker counts
// (asserted by TestRunStudyDeterministicAcrossWorkerCounts).
//
//	go test -bench RunStudy -benchtime 3x -timeout 0
package gaugenn_test

import (
	"fmt"
	"testing"

	"github.com/gaugenn/gaugenn/internal/core"
)

func BenchmarkRunStudy(b *testing.B) {
	const benchScale = 0.1
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cfg := core.DefaultConfig(studySeed, benchScale)
				cfg.UseHTTP = false // packaging+extraction dominate; HTTP adds server noise
				cfg.Workers = workers
				res, err := core.RunStudy(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if res.Corpus21.TotalModels() == 0 {
					b.Fatal("degenerate study")
				}
			}
		})
	}
}
