// Pipeline throughput benchmarks: the end-to-end study (generate ->
// crawl/package -> extract -> analyse, both snapshots) at a fixed 10%
// scale under increasing worker counts. BENCH_baseline.json records the
// trajectory; the acceptance bar is >= 2x at workers=4 vs workers=1 on a
// 4+-core runner, with byte-identical corpora across worker counts
// (asserted by TestRunStudyDeterministicAcrossWorkerCounts).
//
// The "warm" case re-runs an identical study against a populated cache
// dir (the persistent content-addressed store): extraction, graph decode
// and profiling are all served from disk, with corpora byte-identical to
// the cold run (asserted by TestRunStudyWarmRerunZeroDecodesByteIdentical;
// BENCH_resume.json records the numbers).
//
//	go test -bench RunStudy -benchtime 3x -timeout 0
package gaugenn_test

import (
	"fmt"
	"testing"

	"github.com/gaugenn/gaugenn/internal/core"
)

func BenchmarkRunStudy(b *testing.B) {
	const benchScale = 0.1
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cfg := core.DefaultConfig(studySeed, benchScale)
				cfg.UseHTTP = false // packaging+extraction dominate; HTTP adds server noise
				cfg.Workers = workers
				res, err := core.RunStudy(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if res.Corpus21.TotalModels() == 0 {
					b.Fatal("degenerate study")
				}
			}
		})
	}
	b.Run("warm", func(b *testing.B) {
		cfg := core.DefaultConfig(studySeed, benchScale)
		cfg.UseHTTP = false
		cfg.CacheDir = b.TempDir()
		cfg.Resume = true
		// Populate the store outside the timer; the measured iterations
		// are pure warm re-runs.
		if _, err := core.RunStudy(cfg); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := core.RunStudy(cfg)
			if err != nil {
				b.Fatal(err)
			}
			if res.Persist.Cache.Decodes != 0 || res.Persist.ExtractedReports != 0 {
				b.Fatalf("warm benchmark recomputed: %+v", res.Persist)
			}
		}
	})
}
