module github.com/gaugenn/gaugenn

go 1.24
