// Benchmark harness regenerating every table and figure of the paper's
// evaluation (Sections 4-6). Each Benchmark* target rebuilds one artifact
// and prints the rows/series the paper reports, alongside the paper's own
// numbers where the comparison is meaningful. Absolute values come from
// the simulated substrates; the asserted property is the *shape* — who
// wins, by roughly what factor, where crossovers fall (EXPERIMENTS.md
// records a full paper-vs-measured ledger).
//
// The synthetic store scale defaults to 5% of the paper's 16.6k-app crawl;
// set GAUGENN_SCALE=1.0 for a full-scale regeneration:
//
//	GAUGENN_SCALE=1.0 go test -bench=. -benchmem -timeout 0
package gaugenn_test

import (
	"context"
	"fmt"
	"os"
	"sort"
	"strconv"
	"sync"
	"testing"

	"github.com/gaugenn/gaugenn/internal/analysis"
	"github.com/gaugenn/gaugenn/internal/core"
	"github.com/gaugenn/gaugenn/internal/nn/graph"
	"github.com/gaugenn/gaugenn/internal/nn/zoo"
	"github.com/gaugenn/gaugenn/internal/report"
	"github.com/gaugenn/gaugenn/internal/stats"
)

// ---------------------------------------------------------------------------
// Shared fixtures
// ---------------------------------------------------------------------------

const studySeed = 20210404 // the 2021 snapshot date

func studyScale() float64 {
	if v := os.Getenv("GAUGENN_SCALE"); v != "" {
		if f, err := strconv.ParseFloat(v, 64); err == nil && f > 0 {
			return f
		}
	}
	return 0.05
}

var (
	studyOnce sync.Once
	studyRes  *core.StudyResult
	studyErr  error
)

// study builds the two-snapshot corpus once per test binary.
func study(b *testing.B) *core.StudyResult {
	b.Helper()
	studyOnce.Do(func() {
		cfg := core.DefaultConfig(studySeed, studyScale())
		cfg.UseHTTP = false // packaging+extraction dominate; HTTP is covered by tests
		studyRes, studyErr = core.RunStudy(cfg)
	})
	if studyErr != nil {
		b.Fatal(studyErr)
	}
	return studyRes
}

var (
	benchModelsOnce sync.Once
	benchModels     []core.BenchModel
	benchModelsErr  error
)

// benchedModels is the model subset deployed to devices, like the paper's
// "hundreds of these DNN models" benchmarking population.
func benchedModels(b *testing.B) []core.BenchModel {
	b.Helper()
	res := study(b)
	benchModelsOnce.Do(func() {
		n := int(200 * studyScale())
		if n < 12 {
			n = 12
		}
		benchModels, benchModelsErr = core.SelectBenchModels(res.Corpus21, n)
	})
	if benchModelsErr != nil {
		b.Fatal(benchModelsErr)
	}
	return benchModels
}

var printOnce sync.Map

// emit prints a bench's report exactly once per process.
func emit(name, content string) {
	if _, loaded := printOnce.LoadOrStore(name, true); !loaded {
		fmt.Printf("\n===== %s =====\n%s\n", name, content)
	}
}

// ---------------------------------------------------------------------------
// Table 2 — dataset snapshots
// ---------------------------------------------------------------------------

func BenchmarkTable2_DatasetSnapshots(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := study(b)
		d20, d21 := res.Corpus20.Dataset(), res.Corpus21.Dataset()
		s := studyScale()
		rows := [][]string{
			{"Total Apps", fmt.Sprint(d20.TotalApps), fmt.Sprint(d21.TotalApps),
				fmt.Sprintf("%.0f", 16964*s), fmt.Sprintf("%.0f", 16653*s)},
			{"Apps w/ frameworks", fmt.Sprint(d20.AppsWithFw), fmt.Sprint(d21.AppsWithFw),
				fmt.Sprintf("%.0f", 236*s), fmt.Sprintf("%.0f", 377*s)},
			{"Apps w/ models", fmt.Sprint(d20.AppsWithModels), fmt.Sprint(d21.AppsWithModels),
				fmt.Sprintf("%.0f", 165*s), fmt.Sprintf("%.0f", 342*s)},
			{"Total models", fmt.Sprint(d20.TotalModels), fmt.Sprint(d21.TotalModels),
				fmt.Sprintf("%.0f", 821*s), fmt.Sprintf("%.0f", 1666*s)},
			{"Unique models", fmt.Sprint(d20.UniqueModels), fmt.Sprint(d21.UniqueModels),
				fmt.Sprintf("%.0f", 129*s), fmt.Sprintf("%.0f", 318*s)},
		}
		table := report.Table(
			fmt.Sprintf("Table 2 at scale %.2f (measured '20, measured '21, paper-scaled '20, paper-scaled '21)", s),
			[]string{"", "'20", "'21", "paper'20", "paper'21"}, rows)
		growth := float64(d21.TotalModels) / float64(d20.TotalModels)
		table += fmt.Sprintf("model growth: measured %.2fx, paper 2.03x\n", growth)
		table += fmt.Sprintf("unique share '21: measured %.1f%%, paper 19.1%%\n",
			100*float64(d21.UniqueModels)/float64(d21.TotalModels))
		table += fmt.Sprintf("instances shared across apps: measured %.1f%%, paper ~80.9%%\n",
			100*res.Corpus21.InstancesSharedAcrossApps())
		emit("Table 2", table)
		b.ReportMetric(growth, "growth_x")
	}
}

// ---------------------------------------------------------------------------
// Table 3 — task classification
// ---------------------------------------------------------------------------

func BenchmarkTable3_TaskClassification(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := study(b)
		rows, identified := res.Corpus21.TaskBreakdown(true)
		total := res.Corpus21.TotalModels()
		trows := make([][]string, 0, len(rows))
		for _, r := range rows {
			paper := zoo.PaperTaskCounts[r.Task]
			trows = append(trows, []string{
				r.Task.String(), r.Task.Modality().String(),
				fmt.Sprint(r.Count),
				fmt.Sprintf("%.1f", float64(paper)*studyScale()),
			})
		}
		table := report.Table("Table 3 (measured vs paper-scaled counts)",
			[]string{"task", "modality", "measured", "paper*scale"}, trows)
		idFrac := float64(identified) / float64(total)
		table += fmt.Sprintf("identified: %d/%d = %.1f%% (paper: 91.9%%)\n", identified, total, 100*idFrac)
		emit("Table 3", table)
		b.ReportMetric(100*idFrac, "identified_%")
	}
}

// ---------------------------------------------------------------------------
// Figure 4 — models per framework and category
// ---------------------------------------------------------------------------

func BenchmarkFigure4_FrameworksByCategory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := study(b)
		byCat := res.Corpus21.FrameworkByCategory()
		totals := res.Corpus21.FrameworkTotals()
		sum := 0
		for _, n := range totals {
			sum += n
		}
		out := report.CountBars("Figure 4: model instances per framework (paper: tflite 86.2%, caffe 10.6%, ncnn 2.8%, tf 0.3%, snpe 0.18%)", totals)
		catTotals := map[string]int{}
		for cat, m := range byCat {
			for _, n := range m {
				catTotals[cat] += n
			}
		}
		out += report.CountBars("Figure 4: model instances per category (paper top: COMMUNICATION, FINANCE, PHOTOGRAPHY)", catTotals)
		emit("Figure 4", out)
		b.ReportMetric(100*float64(totals["tflite"])/float64(sum), "tflite_%")
	}
}

// ---------------------------------------------------------------------------
// Figure 5 — snapshot churn
// ---------------------------------------------------------------------------

func BenchmarkFigure5_SnapshotChurn(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := study(b)
		rows := core.TemporalDiffRows(res)
		trows := make([][]string, 0, len(rows))
		for _, r := range rows {
			trows = append(trows, []string{r.Category, fmt.Sprint(r.Added), fmt.Sprint(r.Removed), fmt.Sprint(r.Added - r.Removed)})
		}
		out := report.Table("Figure 5: models added/removed per category (paper: COMMUNICATION gains most, LIFESTYLE loses most)",
			[]string{"category", "added", "removed", "net"}, trows)
		emit("Figure 5", out)
		if len(rows) > 0 {
			b.ReportMetric(float64(rows[0].Added-rows[0].Removed), "top_net_add")
		}
	}
}

// ---------------------------------------------------------------------------
// Figure 6 — layer composition per modality
// ---------------------------------------------------------------------------

func BenchmarkFigure6_LayerComposition(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := study(b)
		comp := res.Corpus21.LayerComposition()
		var rows [][]string
		for _, m := range []graph.Modality{graph.ModalityImage, graph.ModalityText, graph.ModalityAudio} {
			classes := comp[m]
			for _, cls := range graph.AllClasses() {
				if classes[cls] < 0.005 {
					continue
				}
				rows = append(rows, []string{m.String(), cls.String(), fmt.Sprintf("%.1f%%", 100*classes[cls])})
			}
		}
		out := report.Table("Figure 6: layer class share per modality (paper: conv 34%/10%/20% for image/text/audio)",
			[]string{"modality", "class", "share"}, rows)
		emit("Figure 6", out)
		if img, ok := comp[graph.ModalityImage]; ok {
			b.ReportMetric(100*img[graph.ClassConv], "image_conv_%")
		}
	}
}

// ---------------------------------------------------------------------------
// Figure 7 — FLOPs and parameters per task
// ---------------------------------------------------------------------------

func BenchmarkFigure7_FlopsParamsPerTask(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := study(b)
		rows := res.Corpus21.CostByTask()
		trows := make([][]string, 0, len(rows))
		for _, r := range rows {
			trows = append(trows, []string{
				r.Task.String(), fmt.Sprint(r.Models),
				fmt.Sprintf("%.3g", r.FLOPsMin), fmt.Sprintf("%.3g", r.FLOPsMedian), fmt.Sprintf("%.3g", r.FLOPsMax),
				fmt.Sprintf("%.3g", r.ParamMin), fmt.Sprintf("%.3g", r.ParamMedian), fmt.Sprintf("%.3g", r.ParamMax),
			})
		}
		out := report.Table("Figure 7: FLOPs and parameters per task, sorted by median FLOPs (paper: classification/hair/segmentation heaviest; ~4 orders of magnitude spread)",
			[]string{"task", "models", "flops.min", "flops.med", "flops.max", "par.min", "par.med", "par.max"}, trows)
		// Spread across the population (paper: four orders of magnitude).
		var all []float64
		for _, u := range res.Corpus21.SortedUniques() {
			all = append(all, float64(u.Profile.FLOPs))
		}
		if len(all) > 0 {
			sort.Float64s(all)
			out += fmt.Sprintf("population FLOPs spread: %.2g .. %.2g (%.1f orders of magnitude; paper: ~4)\n",
				all[0], all[len(all)-1], log10(all[len(all)-1]/all[0]))
		}
		emit("Figure 7", out)
	}
}

func log10(x float64) float64 {
	n := 0.0
	for x >= 10 {
		x /= 10
		n++
	}
	for x > 0 && x < 1 {
		x *= 10
		n--
	}
	return n
}

// ---------------------------------------------------------------------------
// Figure 15 — cloud ML APIs
// ---------------------------------------------------------------------------

func BenchmarkFigure15_CloudAPIs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := study(b)
		perAPI, google, aws, total := res.Corpus21.CloudAPIUsage()
		_, g20, a20, total20 := res.Corpus20.CloudAPIUsage()
		out := report.CountBars(
			fmt.Sprintf("Figure 15: apps per cloud ML API — measured %d apps (%d Google, %d AWS); paper 524 (452/72)",
				total, google, aws), perAPI)
		growth := 0.0
		if total20 > 0 {
			growth = float64(total) / float64(total20)
		}
		out += fmt.Sprintf("cloud-app growth 2020->2021: measured %.2fx, paper 2.33x (2020: %d apps, %d Google / %d AWS)\n",
			growth, total20, g20, a20)
		emit("Figure 15", out)
		b.ReportMetric(growth, "growth_x")
	}
}

// ---------------------------------------------------------------------------
// Section 4.2 — device-specific delivery probe
// ---------------------------------------------------------------------------

func BenchmarkSection42_DeviceSpecificDelivery(b *testing.B) {
	res := study(b)
	var pkgs []string
	for _, a := range res.Store.Snap21.Apps {
		if len(a.Models) > 0 {
			pkgs = append(pkgs, a.Package)
		}
		if len(pkgs) >= 5 {
			break
		}
	}
	if len(pkgs) == 0 {
		b.Skip("no ML apps at this scale")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		identical := 0
		for _, pkg := range pkgs {
			same, err := core.DeliveryProbe(context.Background(), res.Store, pkg)
			if err != nil {
				b.Fatal(err)
			}
			if same {
				identical++
			}
		}
		emit("Section 4.2", fmt.Sprintf(
			"delivery probe: %d/%d ML apps served byte-identical APKs to a 3-generation-older device\n(paper: \"we found no evidence of device-specific model customisation\")\n",
			identical, len(pkgs)))
		if identical != len(pkgs) {
			b.Fatalf("device-specific delivery detected: %d/%d", identical, len(pkgs))
		}
	}
}

// ---------------------------------------------------------------------------
// Section 6.1 — model-level optimisation adoption
// ---------------------------------------------------------------------------

func BenchmarkSection61_ModelOptimisations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := study(b)
		opt := res.Corpus21.Optimisations()
		out := report.Comparisons("Section 6.1: optimisation adoption", []report.Comparison{
			{Metric: "clustered models", Paper: 0, Measured: float64(opt.ClusteredModels), Unit: ""},
			{Metric: "pruned models", Paper: 0, Measured: float64(opt.PrunedModels), Unit: ""},
			{Metric: "dequantize-layer models", Paper: 10.3, Measured: 100 * opt.DequantizeFrac, Unit: "%"},
			{Metric: "int8-weight models", Paper: 20.27, Measured: 100 * opt.Int8WeightFrac, Unit: "%"},
			{Metric: "int8-activation models", Paper: 10.31, Measured: 100 * opt.Int8ActivationFrac, Unit: "%"},
			{Metric: "A16W8 hybrid models", Paper: 0, Measured: 100 * opt.HybridA16W8Frac, Unit: "%"},
			{Metric: "near-zero weights", Paper: 3.15, Measured: 100 * opt.MeanWeightSparsity, Unit: "%"},
		})
		ft := res.Corpus21.FineTuning()
		out += report.Comparisons("Section 4.5: fine-tuning", []report.Comparison{
			{Metric: "uniques sharing >=20% layers", Paper: 9.02, Measured: 100 * ft.SharingFrac, Unit: "%"},
			{Metric: "uniques differing <=3 layers", Paper: 4.2, Measured: 100 * ft.SmallDeltaFrac, Unit: "%"},
			{Metric: "on-device training traces", Paper: 0, Measured: float64(ft.OnDeviceTraining), Unit: ""},
		})
		emit("Section 6.1", out)
		b.ReportMetric(100*opt.MeanWeightSparsity, "sparsity_%")
	}
}

// ---------------------------------------------------------------------------
// Section 6.3 — hardware acceleration traces
// ---------------------------------------------------------------------------

func BenchmarkSection63_AccelerationTraces(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := study(b)
		nnapi, xnnpack, snpe := res.Corpus21.AccelerationTraces()
		s := studyScale()
		out := report.Comparisons("Section 6.3: acceleration traces (paper values scaled)", []report.Comparison{
			{Metric: "NNAPI apps", Paper: 71 * s, Measured: float64(nnapi), Unit: "apps"},
			{Metric: "XNNPACK apps", Paper: 1, Measured: float64(xnnpack), Unit: "apps"},
			{Metric: "SNPE apps", Paper: 3, Measured: float64(snpe), Unit: "apps"},
		})
		// SNPE apps blind-ship dlc+tflite twins.
		dualShip := 0
		for _, a := range res.Store.Snap21.Apps {
			if a.UsesSNPE {
				hasDLC := false
				for _, m := range a.Models {
					if m.Framework == "snpe" {
						hasDLC = true
					}
				}
				if hasDLC {
					dualShip++
				}
			}
		}
		out += fmt.Sprintf("SNPE apps shipping tflite+dlc twins: %d (paper: all 3, \"blindly distributed to all devices\")\n", dualShip)
		emit("Section 6.3", out)
	}
}

// ---------------------------------------------------------------------------
// Corpus-level invariants asserted as tests (kept here because they gate
// the figures above).
// ---------------------------------------------------------------------------

func TestStudyShapeInvariants(t *testing.T) {
	cfg := core.DefaultConfig(studySeed, 0.04)
	cfg.UseHTTP = false
	res, err := core.RunStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := res.Corpus21
	if c.UniqueModels() >= c.TotalModels() {
		t.Error("dedup must find duplicates")
	}
	rows, _ := c.TaskBreakdown(true)
	if rows[0].Task != zoo.TaskObjectDetection {
		t.Errorf("top task = %s, want object detection", rows[0].Task)
	}
	// Figure 7 ordering: vision classification should out-cost face
	// detection when both are present.
	med := map[zoo.Task]float64{}
	for _, r := range c.CostByTask() {
		med[r.Task] = r.FLOPsMedian
	}
	if a, ok1 := med[zoo.TaskImageClassification]; ok1 {
		if bb, ok2 := med[zoo.TaskFaceDetection]; ok2 && a <= bb {
			t.Error("classification should out-cost face detection (Figure 7)")
		}
	}
	var _ = analysis.DatasetStats{}
	var _ = stats.Summary{}
}
