package scan

import (
	"math/rand"
	"strings"
	"testing"
)

func TestScannerMatchesContains(t *testing.T) {
	patterns := []string{
		"Lorg/tensorflow/lite/", "libtensorflowlite", "TfLite",
		"NnApiDelegate", "setUseXNNPACK", "xnnpack", "ncnn_net",
		"Snpe_", "he", "she", "his", "hers",
	}
	s := NewScanner(patterns)
	texts := []string{
		"",
		"ushers",
		"Lorg/tensorflow/lite/Interpreter;-><init>",
		"libtensorflowlite_jni.so\x00TfLiteInterpreterCreate",
		"nothing to see here",
		"xxNnApiDelegatexxsetUseXNNPACKxx",
		"Snpe_Snpe_Snpe_",
		"ncnn_ne",   // one byte short
		"ncnn_nett", // present with trailing noise
	}
	for _, text := range texts {
		seen := make([]bool, s.NumPatterns())
		s.Matches([]byte(text), seen)
		for id, p := range patterns {
			want := strings.Contains(text, p)
			if seen[id] != want {
				t.Errorf("text %q pattern %q: scanner=%v contains=%v", text, p, seen[id], want)
			}
		}
	}
}

// Randomised agreement with the strings.Contains reference over a small
// alphabet (small alphabets maximise overlap and fail-link traffic).
func TestScannerPropertyRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	alphabet := []byte("abcab")
	randStr := func(n int) string {
		b := make([]byte, n)
		for i := range b {
			b[i] = alphabet[rng.Intn(len(alphabet))]
		}
		return string(b)
	}
	for trial := 0; trial < 200; trial++ {
		np := 1 + rng.Intn(8)
		patterns := make([]string, np)
		for i := range patterns {
			patterns[i] = randStr(1 + rng.Intn(6))
		}
		s := NewScanner(patterns)
		text := randStr(rng.Intn(120))
		seen := make([]bool, np)
		s.Matches([]byte(text), seen)
		for id, p := range patterns {
			if want := strings.Contains(text, p); seen[id] != want {
				t.Fatalf("trial %d: text %q pattern %q: scanner=%v contains=%v (patterns %q)",
					trial, text, p, seen[id], want, patterns)
			}
		}
	}
}

func TestScannerCountsOccurrences(t *testing.T) {
	s := NewScanner([]string{"aa", "ab"})
	var hits int
	s.Scan([]byte("aaab"), func(id int32) { hits++ })
	// "aaab": "aa" at 0 and 1, "ab" at 2.
	if hits != 3 {
		t.Fatalf("hits = %d, want 3", hits)
	}
}

// Separate Scan calls are separate logical sequences: a pattern split
// across two calls must never match (this is what makes per-code-string
// scanning junction-safe in the extractor).
func TestScanDoesNotSpanCalls(t *testing.T) {
	s := NewScanner([]string{"NnApiDelegate"})
	var hit bool
	f := func(id int32) { hit = true }
	s.Scan([]byte("xxxNnApi"), f)
	s.Scan([]byte("Delegatexxx"), f)
	if hit {
		t.Fatal("state leaked across Scan calls")
	}
	s.Scan([]byte("xxNnApiDelegatexx"), f)
	if !hit {
		t.Fatal("whole pattern in one call must match")
	}
}

func TestDuplicatePatterns(t *testing.T) {
	s := NewScanner([]string{"libSNPE", "libSNPE"})
	seen := make([]bool, 2)
	s.Matches([]byte("zzlibSNPEzz"), seen)
	if !seen[0] || !seen[1] {
		t.Fatalf("duplicate patterns must both report: %v", seen)
	}
}

// The extraction hot path feeds every dex string and native symbol through
// the scanner; it must not allocate per scan.
func TestScannerZeroAllocs(t *testing.T) {
	patterns := []string{"Lorg/tensorflow/lite/", "libtensorflowlite", "NnApiDelegate", "Snpe_", "xnnpack"}
	s := NewScanner(patterns)
	corpus := []byte(strings.Repeat("Lorg/tensorflow/lite/Interpreter NnApiDelegate xnnpack Snpe_X ", 16))
	seen := make([]bool, s.NumPatterns())
	allocs := testing.AllocsPerRun(100, func() {
		for i := range seen {
			seen[i] = false
		}
		s.Matches(corpus, seen)
	})
	if allocs > 0 {
		t.Fatalf("Scanner.Matches allocates %v per run, want 0", allocs)
	}
}

func BenchmarkScannerMatches(b *testing.B) {
	patterns := []string{
		"Lorg/tensorflow/lite/", "libtensorflowlite", "TfLite", "Lcom/caffe/",
		"libcaffe", "caffe_net", "Lcom/tencent/ncnn/", "libncnn", "ncnn_net",
		"NnApiDelegate", "android/hardware/neuralnetworks", "ANeuralNetworks",
		"setUseXNNPACK", "xnnpack", "Snpe_", "libSNPE",
	}
	s := NewScanner(patterns)
	corpus := []byte(strings.Repeat("Lcom/example/app/MainActivity;->onCreate(Landroid/os/Bundle;)V ", 64))
	seen := make([]bool, s.NumPatterns())
	b.ReportAllocs()
	b.SetBytes(int64(len(corpus)))
	for i := 0; i < b.N; i++ {
		s.Matches(corpus, seen)
	}
}
