// Package scan implements the multi-pattern byte scanner behind gaugeNN's
// code-marker detection (framework libraries, acceleration delegates and
// cloud ML call sites, Sections 3.2 and 6.3). The extraction hot path has
// to test dozens of substring markers against every dex string and native
// symbol of ~80k app snapshots; doing that with per-marker
// strings.Contains passes costs one full traversal per marker and forces
// the text to be materialised as strings first. Scanner is an Aho–Corasick
// automaton: all patterns are matched in a single pass over raw bytes,
// with zero allocations per scan, so callers can stream zip-entry
// subslices straight through it.
package scan

// Scanner is an immutable Aho–Corasick automaton over a fixed pattern set.
// Build one with NewScanner and share it freely: scanning methods are safe
// for concurrent use.
type Scanner struct {
	// next is the dense goto function: next[state*256+b] is the state
	// reached from state on input byte b (fail transitions are pre-merged,
	// so there is exactly one transition per byte).
	next []int32
	// out[state] lists the IDs of every pattern ending at state, including
	// those reached via suffix (fail) links. Most states have none;
	// hasOut[state] gates the slice lookup on the hot path.
	out    [][]int32
	hasOut []bool
	n      int
}

// NewScanner compiles the automaton. Pattern i is reported as ID i;
// duplicate and overlapping patterns are allowed (each ID reports
// independently). Empty patterns are rejected by panicking, as they would
// match at every position and indicate a programming error in a marker
// table.
func NewScanner(patterns []string) *Scanner {
	type node struct {
		children map[byte]int32
		out      []int32
		fail     int32
	}
	nodes := []node{{children: map[byte]int32{}}}
	for id, p := range patterns {
		if p == "" {
			panic("scan: empty pattern")
		}
		cur := int32(0)
		for i := 0; i < len(p); i++ {
			b := p[i]
			nxt, ok := nodes[cur].children[b]
			if !ok {
				nxt = int32(len(nodes))
				nodes = append(nodes, node{children: map[byte]int32{}})
				nodes[cur].children[b] = nxt
			}
			cur = nxt
		}
		nodes[cur].out = append(nodes[cur].out, int32(id))
	}

	// BFS: compute fail links (longest proper suffix that is also a trie
	// prefix) and merge suffix outputs. Fail links always point at strictly
	// shallower nodes, so level order guarantees a node's fail target is
	// complete before the node is processed.
	queue := make([]int32, 0, len(nodes))
	for _, c := range nodes[0].children {
		nodes[c].fail = 0
		queue = append(queue, c)
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for b, c := range nodes[cur].children {
			f := nodes[cur].fail
			for {
				if n, ok := nodes[f].children[b]; ok && n != c {
					nodes[c].fail = n
					break
				}
				if f == 0 {
					nodes[c].fail = 0
					break
				}
				f = nodes[f].fail
			}
			nodes[c].out = append(nodes[c].out, nodes[nodes[c].fail].out...)
			queue = append(queue, c)
		}
	}

	// Flatten into the dense transition table with fail links pre-applied:
	// delta(s, b) = child if present, else delta(fail(s), b). Processing in
	// BFS order guarantees delta(fail(s)) is already dense when s is built.
	s := &Scanner{
		next:   make([]int32, len(nodes)*256),
		out:    make([][]int32, len(nodes)),
		hasOut: make([]bool, len(nodes)),
		n:      len(patterns),
	}
	order := make([]int32, 0, len(nodes))
	order = append(order, 0)
	for i := 0; i < len(order); i++ {
		cur := order[i]
		for _, c := range nodes[cur].children {
			order = append(order, c)
		}
	}
	for _, cur := range order {
		base := int(cur) * 256
		failBase := int(nodes[cur].fail) * 256
		for b := 0; b < 256; b++ {
			if c, ok := nodes[cur].children[byte(b)]; ok {
				s.next[base+b] = c
			} else if cur == 0 {
				s.next[base+b] = 0
			} else {
				s.next[base+b] = s.next[failBase+b]
			}
		}
		s.out[cur] = nodes[cur].out
		s.hasOut[cur] = len(nodes[cur].out) > 0
	}
	return s
}

// NumPatterns returns the number of compiled patterns.
func (s *Scanner) NumPatterns() int { return s.n }

// Scan runs the automaton over data, invoking hit for every pattern
// occurrence (a pattern matching k times fires k times). It allocates
// nothing; data is read, never retained.
func (s *Scanner) Scan(data []byte, hit func(id int32)) {
	st := int32(0)
	for _, b := range data {
		st = s.next[int(st)*256+int(b)]
		if s.hasOut[st] {
			for _, id := range s.out[st] {
				hit(id)
			}
		}
	}
}

// Matches sets seen[id] = true for every pattern occurring in data.
// len(seen) must be at least NumPatterns(). Zero allocations.
func (s *Scanner) Matches(data []byte, seen []bool) {
	st := int32(0)
	for _, b := range data {
		st = s.next[int(st)*256+int(b)]
		if s.hasOut[st] {
			for _, id := range s.out[st] {
				seen[id] = true
			}
		}
	}
}
