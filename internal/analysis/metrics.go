package analysis

import "github.com/gaugenn/gaugenn/internal/obs"

// UniqueCache work-split series, mirroring the per-run atomic counters
// behind CacheStats as process-wide totals: the atomics reset per cache,
// these accumulate across every cache in the process. Increments sit at
// the exact same sites, so the two views never disagree on a single run.
var (
	metDecodes = obs.Default().Counter("gaugenn_analysis_decodes_total",
		"Graph decodes executed (payload-cache misses).")
	metProfiles = obs.Default().Counter("gaugenn_analysis_profiles_total",
		"Per-checksum analyses computed (checksum-cache misses).")
	metWarmPayloadHits = obs.Default().Counter("gaugenn_analysis_warm_payload_hits_total",
		"Payload outcomes loaded from the persistent store instead of decoding.")
	metWarmAnalysisHits = obs.Default().Counter("gaugenn_analysis_warm_analysis_hits_total",
		"Analysis records loaded from the persistent store instead of profiling.")
	metSingleflightWaits = obs.Default().Counter("gaugenn_analysis_singleflight_waits_total",
		"Callers that blocked on another goroutine's in-flight decode or analysis.")
)
