package analysis

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/gaugenn/gaugenn/internal/extract"
	"github.com/gaugenn/gaugenn/internal/nn/graph"
)

// TestPayloadCancelledDecodeIsNotPoisoned is the cache-layer half of the
// no-poison rule: a decode attempt cut short by cancellation must not be
// recorded — in memory or in the store — as a failed validation. The next
// attempt decodes for real and succeeds.
func TestPayloadCancelledDecodeIsNotPoisoned(t *testing.T) {
	st := openStore(t)
	h, mkDecode := payloadFixture(t, 21)
	uc := NewPersistentUniqueCache(false, st, true)

	// First attempt: the context dies while "decoding".
	ctx, cancel := context.WithCancel(context.Background())
	decodes := 0
	_, _, err := uc.Payload(ctx, h, func() (*graph.Graph, error) {
		cancel()
		return nil, ctx.Err() // a ctx-aware decoder surfacing cancellation
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled decode must return the context error, got %v", err)
	}

	// Second attempt in the same cache: entry must have been abandoned,
	// so the real decode runs and succeeds.
	sum, ok, err := uc.Payload(context.Background(), h, mkDecode(&decodes))
	if err != nil || !ok || decodes != 1 {
		t.Fatalf("retry after cancellation: ok=%v decodes=%d err=%v", ok, decodes, err)
	}
	if sum == "" {
		t.Fatal("retry lost the checksum")
	}
	// Complete the analysis so the payload record has its trusted
	// counterpart (a payload record without one re-decodes by design).
	if _, err := uc.get(context.Background(), extract.Model{Checksum: sum}); err != nil {
		t.Fatal(err)
	}
	if err := uc.PersistErr(); err != nil {
		t.Fatal(err)
	}

	// And a fresh warm cache over the same store must not see a persisted
	// failure either (nothing was written for the cancelled attempt; the
	// successful retry wrote the real outcome).
	warm := NewPersistentUniqueCache(false, st, true)
	warmDecodes := 0
	wsum, ok, err := warm.Payload(context.Background(), h, mkDecode(&warmDecodes))
	if err != nil || !ok || wsum != sum {
		t.Fatalf("warm after cancelled-then-retried: ok=%v sum=%q err=%v", ok, wsum, err)
	}
	if warmDecodes != 0 {
		t.Fatal("successful outcome was not persisted")
	}
}

// TestPayloadWaiterCancelled pins the single-flight wait contract: a
// waiter whose context dies unblocks with the context error while the
// worker's decode continues and records normally.
func TestPayloadWaiterCancelled(t *testing.T) {
	h, mkDecode := payloadFixture(t, 22)
	uc := NewUniqueCache(false)

	decodeStarted := make(chan struct{})
	releaseDecode := make(chan struct{})
	decodes := 0
	real := mkDecode(&decodes)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, ok, err := uc.Payload(context.Background(), h, func() (*graph.Graph, error) {
			close(decodeStarted)
			<-releaseDecode
			return real()
		})
		if err != nil || !ok {
			t.Errorf("worker decode: ok=%v err=%v", ok, err)
		}
	}()

	<-decodeStarted
	ctx, cancel := context.WithCancel(context.Background())
	waiterDone := make(chan error, 1)
	go func() {
		_, _, err := uc.Payload(ctx, h, func() (*graph.Graph, error) {
			return nil, fmt.Errorf("waiter must never decode")
		})
		waiterDone <- err
	}()
	cancel()
	select {
	case err := <-waiterDone:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled waiter returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled waiter stayed blocked on the in-flight decode")
	}

	close(releaseDecode)
	wg.Wait()
	// The worker's outcome is recorded; later callers get it decode-free.
	if _, ok, err := uc.Payload(context.Background(), h, func() (*graph.Graph, error) {
		return nil, fmt.Errorf("must be cached")
	}); err != nil || !ok {
		t.Fatalf("outcome lost after waiter cancellation: ok=%v err=%v", ok, err)
	}
	if decodes != 1 {
		t.Fatalf("decodes = %d, want 1", decodes)
	}
}

// TestGetCancelledIsNotPoisoned mirrors the payload test for the
// per-checksum analysis layer: a cancelled analysis attempt leaves the
// entry retryable, seed intact.
func TestGetCancelledIsNotPoisoned(t *testing.T) {
	h, mkDecode := payloadFixture(t, 23)
	uc := NewUniqueCache(true)
	decodes := 0
	sum, ok, err := uc.Payload(context.Background(), h, mkDecode(&decodes))
	if err != nil || !ok {
		t.Fatalf("payload: ok=%v err=%v", ok, err)
	}

	// Cancel before the profile runs: computeAnalysis checks ctx after
	// resolving the graph.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := uc.get(ctx, extract.Model{Checksum: sum}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled get returned %v", err)
	}
	if n := uc.Stats().Profiles; n != 0 {
		t.Fatalf("cancelled get profiled anyway (%d)", n)
	}

	// Retry with a live context: the seed must still be there.
	d, err := uc.get(context.Background(), extract.Model{Checksum: sum})
	if err != nil {
		t.Fatalf("retry after cancelled get: %v", err)
	}
	if d == nil || d.graph == nil {
		t.Fatal("retry lost the seeded graph")
	}
	if n := uc.Stats().Profiles; n != 1 {
		t.Fatalf("profiles = %d, want 1", n)
	}
}
