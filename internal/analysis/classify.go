package analysis

import (
	"strings"

	"github.com/gaugenn/gaugenn/internal/nn/graph"
	"github.com/gaugenn/gaugenn/internal/nn/zoo"
)

// vote is one researcher's opinion: a task and a confidence. Weak votes
// flag generic evidence (a softmax head says "some classifier", which every
// off-the-shelf trunk resembles) that corroborates but cannot identify.
type vote struct {
	task zoo.Task
	weak bool
}

// ClassifyTask reproduces the paper's manual model characterisation
// (Section 4.4): "we manually looked into the naming, input/output
// dimensions and layer types of the encountered DNN models ... across
// three ML researchers with a majority vote on the results". The three
// researchers become three heuristics — name-based, io-shape-based and
// op-signature-based — whose votes are weighted (the name is the
// strongest signal; generic evidence like a plain softmax head votes
// weakly) and the best task wins when its weight clears the
// identification bar. ~92% of the in-the-wild population identifies this
// way; generic classifier-shaped models without telling names remain
// unknown, matching the paper's 8% residue.
func ClassifyTask(g *graph.Graph) (zoo.Task, bool) {
	const (
		nameWeight = 1.5
		ioWeight   = 1.0
		opsWeight  = 0.95 // shape evidence outranks op evidence on ties
		weakFactor = 0.4
		identifyAt = 0.95
	)
	votes := []struct {
		v vote
		w float64
	}{
		{vote{task: voteByName(g)}, nameWeight},
		{voteByIO(g), ioWeight},
		{voteByOps(g), opsWeight},
	}
	weights := map[zoo.Task]float64{}
	for _, entry := range votes {
		if entry.v.task == zoo.TaskUnknown {
			continue
		}
		w := entry.w
		if entry.v.weak {
			w *= weakFactor
		}
		weights[entry.v.task] += w
	}
	var best zoo.Task
	bestW := 0.0
	for t, w := range weights {
		if w > bestW || (w == bestW && t < best) {
			best, bestW = t, w
		}
	}
	if bestW >= identifyAt {
		return best, true
	}
	return zoo.TaskUnknown, false
}

// voteByName matches the file stem against known task-name fragments.
func voteByName(g *graph.Graph) zoo.Task {
	name := strings.ToLower(g.Name)
	for _, t := range zoo.AllTasks() {
		for _, hint := range zoo.NameHints(t) {
			if strings.Contains(name, hint) {
				return t
			}
		}
	}
	return zoo.TaskUnknown
}

// voteByIO inspects input/output dimensions.
func voteByIO(g *graph.Graph) vote {
	if len(g.Inputs) == 0 || len(g.Outputs) == 0 {
		return vote{task: zoo.TaskUnknown}
	}
	env, err := g.InferShapes()
	if err != nil {
		return vote{task: zoo.TaskUnknown}
	}
	in := g.Inputs[0]
	out, ok := env[g.Outputs[0].Name]
	if !ok {
		return vote{task: zoo.TaskUnknown}
	}
	switch g.InferModality() {
	case graph.ModalityImage:
		// Spatial output => dense prediction.
		if len(out.Shape) == 4 && out.Shape[1] >= in.Shape[1]/2 && out.Shape[3] <= 4 {
			if out.Shape[3] == 3 {
				return vote{task: zoo.TaskStyleTransfer} // RGB reconstruction
			}
			return vote{task: zoo.TaskSemanticSegmentation}
		}
		if len(out.Shape) == 4 && out.Shape[3] == 17 {
			return vote{task: zoo.TaskPoseEstimation} // COCO keypoint heatmaps
		}
		// Flat box-regression output: detector heads concatenate
		// anchors*(4+classes) values, large and not a probability head.
		if len(out.Shape) == 2 && out.Shape[1] > 100 && !endsWithSoftmax(g) {
			if in.Shape[1] == in.Shape[2] && in.Shape[1] <= 128 {
				return vote{task: zoo.TaskFaceDetection} // small square crops
			}
			return vote{task: zoo.TaskObjectDetection}
		}
		// Small even coordinate vector => landmarks/contours.
		if len(out.Shape) == 2 && out.Shape[1] <= 100 && out.Shape[1]%2 == 0 && !endsWithSoftmax(g) {
			return vote{task: zoo.TaskContourDetection}
		}
		if endsWithSoftmax(g) {
			// Every off-the-shelf trunk ends in a softmax; this evidence is
			// too generic to identify on its own.
			return vote{task: zoo.TaskImageClassification, weak: true}
		}
		return vote{task: zoo.TaskUnknown}
	case graph.ModalityText:
		if len(out.Shape) == 2 && out.Shape[1] >= 1000 {
			return vote{task: zoo.TaskAutoComplete} // vocabulary-sized head
		}
		if len(out.Shape) == 2 && out.Shape[1] <= 8 {
			return vote{task: zoo.TaskSentimentPrediction}
		}
		return vote{task: zoo.TaskUnknown}
	case graph.ModalityAudio:
		if out.Shape.Elements() >= 40 {
			return vote{task: zoo.TaskSoundRecognition}
		}
		return vote{task: zoo.TaskKeywordDetection}
	case graph.ModalitySensor:
		return vote{task: zoo.TaskMovementTracking, weak: true}
	default:
		return vote{task: zoo.TaskUnknown}
	}
}

// voteByOps inspects the operator population.
func voteByOps(g *graph.Graph) vote {
	t := voteByOpsTask(g)
	return vote{task: t}
}

func voteByOpsTask(g *graph.Graph) zoo.Task {
	var hasLSTM, hasGRU, hasEmbed, hasTConv, hasConv, hasResize, hasConcat bool
	for i := range g.Layers {
		switch g.Layers[i].Op {
		case graph.OpLSTM:
			hasLSTM = true
		case graph.OpGRU:
			hasGRU = true
		case graph.OpEmbedding:
			hasEmbed = true
		case graph.OpTransposeConv2D:
			hasTConv = true
		case graph.OpConv2D, graph.OpDepthwiseConv2D:
			hasConv = true
		case graph.OpResizeBilinear, graph.OpResizeNearest:
			hasResize = true
		case graph.OpConcat:
			hasConcat = true
		}
	}
	switch g.InferModality() {
	case graph.ModalityText:
		switch {
		case hasEmbed && hasGRU:
			return zoo.TaskTranslation
		case hasEmbed && hasLSTM:
			return zoo.TaskAutoComplete
		case hasEmbed:
			return zoo.TaskSentimentPrediction
		}
	case graph.ModalityAudio:
		if hasLSTM && !hasConv {
			return zoo.TaskSpeechRecognition
		}
		if hasConv {
			return zoo.TaskSoundRecognition
		}
	case graph.ModalityImage:
		switch {
		case hasConv && hasLSTM:
			return zoo.TaskTextRecognition // CRNN signature
		case hasTConv && hasConcat:
			return zoo.TaskSemanticSegmentation // U-Net skip connections
		case hasTConv:
			return zoo.TaskStyleTransfer
		case hasResize && hasConcat:
			return zoo.TaskObjectDetection // feature-fusion pyramid
		}
	case graph.ModalitySensor:
		if hasGRU {
			return zoo.TaskMovementTracking
		}
		return zoo.TaskCrashDetection
	}
	return zoo.TaskUnknown
}

func endsWithSoftmax(g *graph.Graph) bool {
	for i := len(g.Layers) - 1; i >= 0 && i >= len(g.Layers)-3; i-- {
		if g.Layers[i].Op == graph.OpSoftmax {
			return true
		}
	}
	return false
}
