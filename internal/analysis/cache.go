package analysis

import (
	"sync"

	"github.com/gaugenn/gaugenn/internal/extract"
	"github.com/gaugenn/gaugenn/internal/nn/graph"
	"github.com/gaugenn/gaugenn/internal/nn/zoo"
)

// uniqueData is everything derived once per distinct model checksum —
// profiling, classification, architecture fingerprinting and layer
// checksums. It is immutable after construction, so a single instance can
// back the Unique records of any number of corpus shards and snapshots.
// Framework is deliberately absent: the checksum hashes the decoded
// graph+weights, so one checksum can ship under several formats (the
// Section 6.3 tflite+dlc twins) and the field would be first-winner
// nondeterministic here; corpora assign it from their first record in
// deterministic order instead.
type uniqueData struct {
	name      string
	task      zoo.Task
	arch      zoo.Arch
	modality  graph.Modality
	profile   *graph.Profile
	layerSums []graph.Checksum
	weights   graph.WeightStats
	graph     *graph.Graph // nil unless the cache retains graphs
}

// UniqueCache deduplicates per-checksum model analysis across corpus
// shards and snapshots. The paper's two crawls overlap heavily (duplicate
// checksums across 2020 and 2021), so a shared cache profiles, classifies
// and fingerprints each distinct model exactly once, no matter how many
// shards or snapshots ingest it concurrently.
//
// Computation is single-flight: the first ingester of a checksum computes,
// every concurrent ingester of the same checksum waits on it. All methods
// are safe for concurrent use.
type UniqueCache struct {
	keepGraphs bool

	mu      sync.Mutex
	entries map[graph.Checksum]*cacheEntry
}

type cacheEntry struct {
	once sync.Once
	data *uniqueData
	err  error
}

// NewUniqueCache creates an empty cache. keepGraphs controls whether the
// decoded graph is retained for benchmarking (costs memory at scale).
func NewUniqueCache(keepGraphs bool) *UniqueCache {
	return &UniqueCache{keepGraphs: keepGraphs, entries: map[graph.Checksum]*cacheEntry{}}
}

// Size returns the number of distinct checksums analysed so far.
func (uc *UniqueCache) Size() int {
	uc.mu.Lock()
	defer uc.mu.Unlock()
	return len(uc.entries)
}

// get returns the analysis results for the model, computing them on first
// sight of its checksum. Models sharing a checksum are byte-identical by
// construction, so any instance can serve as the compute input.
func (uc *UniqueCache) get(m extract.Model) (*uniqueData, error) {
	uc.mu.Lock()
	e, ok := uc.entries[m.Checksum]
	if !ok {
		e = &cacheEntry{}
		uc.entries[m.Checksum] = e
	}
	uc.mu.Unlock()
	e.once.Do(func() {
		prof, err := graph.ProfileGraph(m.Graph)
		if err != nil {
			e.err = err
			return
		}
		task, _ := ClassifyTask(m.Graph)
		d := &uniqueData{
			name:      m.Graph.Name,
			task:      task,
			arch:      FingerprintArch(m.Graph),
			modality:  m.Graph.InferModality(),
			profile:   prof,
			layerSums: graph.WeightedLayerChecksums(m.Graph),
			weights:   graph.CollectWeightStats(m.Graph),
		}
		if uc.keepGraphs {
			d.graph = m.Graph
		}
		e.data = d
	})
	return e.data, e.err
}
