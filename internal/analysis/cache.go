package analysis

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/gaugenn/gaugenn/internal/errs"
	"github.com/gaugenn/gaugenn/internal/extract"
	"github.com/gaugenn/gaugenn/internal/nn/graph"
	"github.com/gaugenn/gaugenn/internal/nn/zoo"
	"github.com/gaugenn/gaugenn/internal/store"
)

// uniqueData is everything derived once per distinct model checksum —
// profiling, classification, architecture fingerprinting and layer
// checksums. It is immutable after construction, so a single instance can
// back the Unique records of any number of corpus shards and snapshots.
// Framework is deliberately absent: the checksum hashes the decoded
// graph+weights, so one checksum can ship under several formats (the
// Section 6.3 tflite+dlc twins) and the field would be first-winner
// nondeterministic here; corpora assign it from their first record in
// deterministic order instead.
type uniqueData struct {
	name      string
	task      zoo.Task
	arch      zoo.Arch
	modality  graph.Modality
	profile   *graph.Profile
	layerSums []graph.Checksum
	weights   graph.WeightStats
	graph     *graph.Graph // nil unless the cache retains graphs
}

// UniqueCache deduplicates per-checksum model analysis across corpus
// shards and snapshots. The paper's two crawls overlap heavily (duplicate
// checksums across 2020 and 2021), so a shared cache profiles, classifies
// and fingerprints each distinct model exactly once, no matter how many
// shards or snapshots ingest it concurrently.
//
// The cache also implements extract.DecodeCache — the hash-before-decode
// front door: extraction content-hashes a candidate file-set and asks
// Payload whether those exact bytes were decoded before; only first
// sightings pay for a graph decode. Decoded graphs are parked on the
// checksum entry (the "seed") until the entry's analysis runs, then
// released — so borrowed weight bytes never pin an APK buffer beyond the
// first profile.
//
// Computation is single-flight at both layers: the first ingester of a
// payload hash decodes, the first ingester of a checksum profiles; every
// concurrent ingester of the same key waits. Waits are cancellable: a
// waiter whose ctx expires unblocks with the context error. Cancellation
// never poisons an entry — an attempt cut short by ctx is abandoned (the
// entry returns to idle, nothing is persisted), so the next attempt, in
// this run or a warm resume, computes the real outcome. All methods are
// safe for concurrent use.
//
// A cache built with NewPersistentUniqueCache is additionally backed by an
// on-disk study store: payload outcomes and per-checksum analysis records
// are written through as they are computed, and — when resuming — consulted
// before any decode or profile runs, so a warm re-run re-derives nothing it
// has seen before. See docs/persistence.md for the record formats.
type UniqueCache struct {
	keepGraphs bool

	// st, when non-nil, is the persistence backing; resume controls
	// whether existing records are consulted (false = write-only).
	st     *store.Store
	resume bool

	// Work counters (atomic): decodes/profiles actually executed this
	// process, and warm hits served from the persistent store.
	decodes      atomic.Int64
	profiles     atomic.Int64
	warmPayloads atomic.Int64
	warmAnalyses atomic.Int64

	mu       sync.Mutex
	entries  map[graph.Checksum]*cacheEntry
	payloads map[extract.PayloadHash]*payloadEntry
	// verifiedSums memoises HasAnalysis verdicts (is the persisted
	// analysis record for this checksum loadable under the current
	// codec?); successful persists and loads flip negatives to true.
	verifiedSums map[graph.Checksum]bool
	// persistErr records the first write-through failure; surfaced via
	// PersistErr so a study run fails loudly instead of silently producing
	// a partial cache.
	persistErr error
}

// single-flight entry states (guarded by the cache mutex). Entries move
// idle -> running -> done; a cancelled attempt moves running -> idle and
// closes its flight channel so waiters re-examine the state.
const (
	entryIdle = iota
	entryRunning
	entryDone
)

type cacheEntry struct {
	state  int
	flight chan struct{} // non-nil while running; closed on completion or abandon
	data   *uniqueData
	err    error
	// seed holds the decoded graph registered by the payload front door
	// until the single-flight analysis consumes it. It keeps the source
	// buffer (often a whole APK) alive, so the analysis clears it as soon
	// as it has run; an abandoned (cancelled) attempt keeps it for the
	// next one.
	seed *graph.Graph
}

type payloadEntry struct {
	state  int
	flight chan struct{}
	sum    graph.Checksum
	ok     bool
}

// NewUniqueCache creates an empty in-memory cache. keepGraphs controls
// whether the decoded graph is retained for benchmarking (costs memory at
// scale).
func NewUniqueCache(keepGraphs bool) *UniqueCache {
	return &UniqueCache{
		keepGraphs: keepGraphs,
		entries:    map[graph.Checksum]*cacheEntry{},
		payloads:   map[extract.PayloadHash]*payloadEntry{},
	}
}

// NewPersistentUniqueCache creates a cache backed by an on-disk study
// store. Every payload outcome and per-checksum analysis computed through
// the cache is written through to st; with resume true, existing records
// are loaded instead of recomputed, so byte-identical payloads from an
// earlier run skip graph decode and profiling entirely.
func NewPersistentUniqueCache(keepGraphs bool, st *store.Store, resume bool) *UniqueCache {
	uc := NewUniqueCache(keepGraphs)
	uc.st = st
	uc.resume = resume
	return uc
}

// CacheStats summarises the cache's work split: what was computed in this
// process versus served warm from the persistent store.
type CacheStats struct {
	// Decodes counts graph decodes executed (payload-cache misses).
	Decodes int64
	// Profiles counts per-checksum analyses computed.
	Profiles int64
	// WarmPayloadHits counts payload outcomes loaded from disk.
	WarmPayloadHits int64
	// WarmAnalysisHits counts analysis records loaded from disk.
	WarmAnalysisHits int64
	// Payloads / Checksums count distinct keys seen in this process.
	Payloads  int
	Checksums int
}

// Stats returns the cache's current work counters.
func (uc *UniqueCache) Stats() CacheStats {
	return CacheStats{
		Decodes:          uc.decodes.Load(),
		Profiles:         uc.profiles.Load(),
		WarmPayloadHits:  uc.warmPayloads.Load(),
		WarmAnalysisHits: uc.warmAnalyses.Load(),
		Payloads:         uc.PayloadCount(),
		Checksums:        uc.Size(),
	}
}

// PersistErr returns the first write-through persistence failure, if any.
// Loads degrade to cache misses on error, but a failed write means the
// store is incomplete — runs that persist must surface this.
func (uc *UniqueCache) PersistErr() error {
	uc.mu.Lock()
	defer uc.mu.Unlock()
	return uc.persistErr
}

func (uc *UniqueCache) notePersistErr(err error) {
	if err == nil {
		return
	}
	uc.mu.Lock()
	if uc.persistErr == nil {
		uc.persistErr = err
	}
	uc.mu.Unlock()
}

// Size returns the number of distinct checksums analysed so far.
func (uc *UniqueCache) Size() int {
	uc.mu.Lock()
	defer uc.mu.Unlock()
	return len(uc.entries)
}

// PayloadCount returns the number of distinct payload hashes seen so far
// (valid and failed decodes both count).
func (uc *UniqueCache) PayloadCount() int {
	uc.mu.Lock()
	defer uc.mu.Unlock()
	return len(uc.payloads)
}

// Payload implements extract.DecodeCache: the first caller for a given
// payload hash runs decode and the outcome (checksum on success, failure
// otherwise) is recorded; every other caller — concurrent or later, any
// shard, either snapshot — gets the recorded outcome without decoding.
// Successful decodes seed the checksum entry so the graph is available to
// the per-checksum analysis even though cache-hit extractions never carry
// graphs.
//
// ctx bounds both the wait on a concurrent decode and the decode itself.
// A cancelled attempt returns ctx's error and records nothing — in memory
// or on disk — so cancellation can never masquerade as a failed
// validation (the no-poison rule warm resumes depend on).
func (uc *UniqueCache) Payload(ctx context.Context, h extract.PayloadHash, decode func() (*graph.Graph, error)) (graph.Checksum, bool, error) {
	for {
		uc.mu.Lock()
		pe, ok := uc.payloads[h]
		if !ok {
			pe = &payloadEntry{}
			uc.payloads[h] = pe
		}
		switch pe.state {
		case entryDone:
			sum, valid := pe.sum, pe.ok
			uc.mu.Unlock()
			return sum, valid, nil
		case entryRunning:
			fl := pe.flight
			uc.mu.Unlock()
			select {
			case <-ctx.Done():
				return "", false, ctx.Err()
			case <-fl:
				metSingleflightWaits.Inc()
				// Outcome recorded, or the attempt was abandoned —
				// re-examine the state (and maybe become the new worker).
			}
		default: // idle: this caller computes
			pe.state = entryRunning
			pe.flight = make(chan struct{})
			fl := pe.flight
			uc.mu.Unlock()
			sum, valid, err := uc.computePayload(ctx, h, decode)
			uc.mu.Lock()
			pe.flight = nil
			if err != nil {
				// Cancelled mid-compute: abandon, don't record. The next
				// attempt (a live waiter or a resumed run) re-decodes.
				pe.state = entryIdle
				close(fl)
				uc.mu.Unlock()
				return "", false, err
			}
			pe.state = entryDone
			pe.sum, pe.ok = sum, valid
			close(fl)
			uc.mu.Unlock()
			return sum, valid, nil
		}
	}
}

// computePayload resolves one payload outcome: the persisted record when
// resuming, otherwise a real decode. The returned error is non-nil only
// for context cancellation; a decode failure is a recorded (ok=false)
// outcome, not an error.
func (uc *UniqueCache) computePayload(ctx context.Context, h extract.PayloadHash, decode func() (*graph.Graph, error)) (graph.Checksum, bool, error) {
	// Warm path: a persisted outcome for these exact bytes replaces the
	// decode. A successful outcome is only trusted when its analysis
	// record is still loadable too: payload records are written at decode
	// time, analysis records at analysis time, so a crash between the two
	// (or a codec bump that invalidates the analysis layout) leaves a
	// payload record pointing at an analysis that cannot be rebuilt — that
	// hash must decode again.
	if uc.st != nil && uc.resume {
		if rec, ok := uc.loadPayloadRecord(h); ok {
			if !rec.OK {
				uc.warmPayloads.Add(1)
				metWarmPayloadHits.Inc()
				return "", false, nil
			}
			if uc.HasAnalysis(rec.Checksum) {
				uc.warmPayloads.Add(1)
				metWarmPayloadHits.Inc()
				return rec.Checksum, true, nil
			}
		}
	}
	if err := ctx.Err(); err != nil {
		return "", false, err // cancelled before the decode started
	}
	uc.decodes.Add(1)
	metDecodes.Inc()
	g, err := decode()
	if err != nil {
		if errs.IsContextError(err) {
			return "", false, err // aborted decode: the outcome is unknown
		}
		uc.persistPayloadRecord(h, payloadRecord{V: persistCodecVersion, OK: false})
		return "", false, nil // the payload does not validate
	}
	sum := graph.ModelChecksum(g)
	uc.seedEntry(sum, g)
	uc.persistPayloadRecord(h, payloadRecord{V: persistCodecVersion, OK: true, Checksum: sum})
	return sum, true, nil
}

// seedEntry parks a decoded graph on its checksum entry for the analysis
// pass to consume. First seed wins (same checksum means byte-identical
// graph content, so any instance serves).
func (uc *UniqueCache) seedEntry(sum graph.Checksum, g *graph.Graph) {
	uc.mu.Lock()
	e, ok := uc.entries[sum]
	if !ok {
		e = &cacheEntry{}
		uc.entries[sum] = e
	}
	if e.seed == nil {
		e.seed = g
	}
	uc.mu.Unlock()
}

// get returns the analysis results for the model, computing them on first
// sight of its checksum. Models sharing a checksum are byte-identical by
// construction, so any instance can serve as the compute input: the
// model's own graph when extraction decoded in place, or the seed the
// payload front door registered. ctx bounds the wait on a concurrent
// analysis; a cancelled attempt is abandoned (entry back to idle, seed
// kept) rather than recorded, so cancellation never poisons a checksum.
func (uc *UniqueCache) get(ctx context.Context, m extract.Model) (*uniqueData, error) {
	for {
		uc.mu.Lock()
		e, ok := uc.entries[m.Checksum]
		if !ok {
			e = &cacheEntry{}
			uc.entries[m.Checksum] = e
		}
		switch e.state {
		case entryDone:
			d, err := e.data, e.err
			uc.mu.Unlock()
			return d, err
		case entryRunning:
			fl := e.flight
			uc.mu.Unlock()
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-fl:
				metSingleflightWaits.Inc()
			}
		default: // idle: this caller computes
			e.state = entryRunning
			e.flight = make(chan struct{})
			fl := e.flight
			seed := e.seed
			uc.mu.Unlock()
			d, err := uc.computeAnalysis(ctx, m, seed)
			uc.mu.Lock()
			e.flight = nil
			if err != nil && errs.IsContextError(err) {
				e.state = entryIdle // abandoned; the seed stays for the next attempt
				close(fl)
				uc.mu.Unlock()
				return nil, err
			}
			e.state = entryDone
			e.data, e.err = d, err
			// The seed has served its purpose once the analysis ran;
			// release it so it stops pinning the source APK buffer.
			e.seed = nil
			close(fl)
			uc.mu.Unlock()
			return d, err
		}
	}
}

// computeAnalysis derives one checksum's uniqueData: warm record load when
// resuming, otherwise profile/classify/fingerprint over the graph in hand
// (the extraction's own or the payload seed).
func (uc *UniqueCache) computeAnalysis(ctx context.Context, m extract.Model, seed *graph.Graph) (*uniqueData, error) {
	g := m.Graph
	if g == nil {
		g = seed
	}
	if g == nil && uc.st != nil && uc.resume {
		// Warm path: the checksum was analysed by an earlier run — rebuild
		// the per-checksum data from its persisted record without a graph
		// in hand.
		if d, ok := uc.loadAnalysisRecord(m.Checksum); ok {
			uc.warmAnalyses.Add(1)
			metWarmAnalysisHits.Inc()
			return d, nil
		}
	}
	if g == nil {
		return nil, fmt.Errorf("analysis: no graph available for checksum %s (report produced with a different cache?)", m.Checksum)
	}
	if err := ctx.Err(); err != nil {
		return nil, err // cancelled before the profile started
	}
	uc.profiles.Add(1)
	metProfiles.Inc()
	prof, err := graph.ProfileGraph(g)
	if err != nil {
		return nil, err
	}
	task, _ := ClassifyTask(g)
	d := &uniqueData{
		name:      g.Name,
		task:      task,
		arch:      FingerprintArch(g),
		modality:  g.InferModality(),
		profile:   prof,
		layerSums: graph.WeightedLayerChecksums(g),
		weights:   graph.CollectWeightStats(g),
	}
	if uc.keepGraphs {
		// Decoded graphs borrow weight bytes from the file/APK buffer
		// they were read from; retaining one beyond this call requires
		// owning the bytes (the copy-on-retain rule).
		g.DetachWeights()
		d.graph = g
	}
	// Write through after the data is complete: a payload record is
	// only trusted warm when this record exists, so persisting the
	// analysis last keeps crashed runs consistent.
	uc.persistAnalysisRecord(m.Checksum, d, g)
	return d, nil
}
