package analysis

import (
	"fmt"
	"sync"

	"github.com/gaugenn/gaugenn/internal/extract"
	"github.com/gaugenn/gaugenn/internal/nn/graph"
	"github.com/gaugenn/gaugenn/internal/nn/zoo"
)

// uniqueData is everything derived once per distinct model checksum —
// profiling, classification, architecture fingerprinting and layer
// checksums. It is immutable after construction, so a single instance can
// back the Unique records of any number of corpus shards and snapshots.
// Framework is deliberately absent: the checksum hashes the decoded
// graph+weights, so one checksum can ship under several formats (the
// Section 6.3 tflite+dlc twins) and the field would be first-winner
// nondeterministic here; corpora assign it from their first record in
// deterministic order instead.
type uniqueData struct {
	name      string
	task      zoo.Task
	arch      zoo.Arch
	modality  graph.Modality
	profile   *graph.Profile
	layerSums []graph.Checksum
	weights   graph.WeightStats
	graph     *graph.Graph // nil unless the cache retains graphs
}

// UniqueCache deduplicates per-checksum model analysis across corpus
// shards and snapshots. The paper's two crawls overlap heavily (duplicate
// checksums across 2020 and 2021), so a shared cache profiles, classifies
// and fingerprints each distinct model exactly once, no matter how many
// shards or snapshots ingest it concurrently.
//
// The cache also implements extract.DecodeCache — the hash-before-decode
// front door: extraction content-hashes a candidate file-set and asks
// Payload whether those exact bytes were decoded before; only first
// sightings pay for a graph decode. Decoded graphs are parked on the
// checksum entry (the "seed") until the entry's analysis runs, then
// released — so borrowed weight bytes never pin an APK buffer beyond the
// first profile.
//
// Computation is single-flight at both layers: the first ingester of a
// payload hash decodes, the first ingester of a checksum profiles; every
// concurrent ingester of the same key waits. All methods are safe for
// concurrent use.
type UniqueCache struct {
	keepGraphs bool

	mu       sync.Mutex
	entries  map[graph.Checksum]*cacheEntry
	payloads map[extract.PayloadHash]*payloadEntry
}

type cacheEntry struct {
	once sync.Once
	data *uniqueData
	err  error
	// seed holds the decoded graph registered by the payload front door,
	// guarded by the cache mutex, until the once-guarded analysis consumes
	// it. It keeps the source buffer (often a whole APK) alive, so the
	// analysis clears it as soon as it has run.
	seed *graph.Graph
}

type payloadEntry struct {
	once sync.Once
	sum  graph.Checksum
	ok   bool
}

// NewUniqueCache creates an empty cache. keepGraphs controls whether the
// decoded graph is retained for benchmarking (costs memory at scale).
func NewUniqueCache(keepGraphs bool) *UniqueCache {
	return &UniqueCache{
		keepGraphs: keepGraphs,
		entries:    map[graph.Checksum]*cacheEntry{},
		payloads:   map[extract.PayloadHash]*payloadEntry{},
	}
}

// Size returns the number of distinct checksums analysed so far.
func (uc *UniqueCache) Size() int {
	uc.mu.Lock()
	defer uc.mu.Unlock()
	return len(uc.entries)
}

// PayloadCount returns the number of distinct payload hashes seen so far
// (valid and failed decodes both count).
func (uc *UniqueCache) PayloadCount() int {
	uc.mu.Lock()
	defer uc.mu.Unlock()
	return len(uc.payloads)
}

// Payload implements extract.DecodeCache: the first caller for a given
// payload hash runs decode and the outcome (checksum on success, failure
// otherwise) is recorded; every other caller — concurrent or later, any
// shard, either snapshot — gets the recorded outcome without decoding.
// Successful decodes seed the checksum entry so the graph is available to
// the per-checksum analysis even though cache-hit extractions never carry
// graphs.
func (uc *UniqueCache) Payload(h extract.PayloadHash, decode func() (*graph.Graph, error)) (graph.Checksum, bool) {
	uc.mu.Lock()
	pe, ok := uc.payloads[h]
	if !ok {
		pe = &payloadEntry{}
		uc.payloads[h] = pe
	}
	uc.mu.Unlock()
	pe.once.Do(func() {
		g, err := decode()
		if err != nil {
			return // pe.ok stays false: the payload does not validate
		}
		pe.sum = graph.ModelChecksum(g)
		pe.ok = true
		uc.seedEntry(pe.sum, g)
	})
	return pe.sum, pe.ok
}

// seedEntry parks a decoded graph on its checksum entry for the analysis
// pass to consume. First seed wins (same checksum means byte-identical
// graph content, so any instance serves).
func (uc *UniqueCache) seedEntry(sum graph.Checksum, g *graph.Graph) {
	uc.mu.Lock()
	e, ok := uc.entries[sum]
	if !ok {
		e = &cacheEntry{}
		uc.entries[sum] = e
	}
	if e.seed == nil {
		e.seed = g
	}
	uc.mu.Unlock()
}

// get returns the analysis results for the model, computing them on first
// sight of its checksum. Models sharing a checksum are byte-identical by
// construction, so any instance can serve as the compute input: the
// model's own graph when extraction decoded in place, or the seed the
// payload front door registered.
func (uc *UniqueCache) get(m extract.Model) (*uniqueData, error) {
	uc.mu.Lock()
	e, ok := uc.entries[m.Checksum]
	if !ok {
		e = &cacheEntry{}
		uc.entries[m.Checksum] = e
	}
	uc.mu.Unlock()
	e.once.Do(func() {
		g := m.Graph
		if g == nil {
			uc.mu.Lock()
			g = e.seed
			uc.mu.Unlock()
		}
		if g == nil {
			e.err = fmt.Errorf("analysis: no graph available for checksum %s (report produced with a different cache?)", m.Checksum)
			return
		}
		prof, err := graph.ProfileGraph(g)
		if err != nil {
			e.err = err
			return
		}
		task, _ := ClassifyTask(g)
		d := &uniqueData{
			name:      g.Name,
			task:      task,
			arch:      FingerprintArch(g),
			modality:  g.InferModality(),
			profile:   prof,
			layerSums: graph.WeightedLayerChecksums(g),
			weights:   graph.CollectWeightStats(g),
		}
		if uc.keepGraphs {
			// Decoded graphs borrow weight bytes from the file/APK buffer
			// they were read from; retaining one beyond this call requires
			// owning the bytes (the copy-on-retain rule).
			g.DetachWeights()
			d.graph = g
		}
		e.data = d
	})
	// The seed has served its purpose once the analysis ran; release it so
	// it stops pinning the source APK buffer.
	uc.mu.Lock()
	e.seed = nil
	uc.mu.Unlock()
	return e.data, e.err
}
