package analysis

import (
	"sort"
	"strings"

	"github.com/gaugenn/gaugenn/internal/nn/graph"
	"github.com/gaugenn/gaugenn/internal/nn/zoo"
)

// FingerprintArch identifies a model's architecture family from its
// operator signature, reproducing the Section 4.5 finding that a handful
// of off-the-shelf families dominate the wild: "FSSD seems to be the most
// popular model [for object detection] ... for face detection the
// Blazeface ... MobileNet seems to be the most popular architecture with
// variants being used [for] other vision tasks".
func FingerprintArch(g *graph.Graph) zoo.Arch {
	// Name hints first: developers rarely rename off-the-shelf files.
	name := strings.ToLower(g.Name)
	for _, probe := range []struct {
		frag string
		arch zoo.Arch
	}{
		{"blazeface", zoo.ArchBlazeFace},
		{"fssd", zoo.ArchFSSD},
		{"ssd", zoo.ArchFSSD},
		{"unet", zoo.ArchUNet},
		{"mobilenet_v2", zoo.ArchMobileNetV2},
		{"mobilenet", zoo.ArchMobileNetV1},
		{"posenet", zoo.ArchPoseNet},
		{"crnn", zoo.ArchCRNN},
	} {
		if strings.Contains(name, probe.frag) {
			return probe.arch
		}
	}

	var hasConv, hasDW, hasTConv, hasResize, hasConcat, hasAdd, hasLSTM,
		hasGRU, hasEmbed, hasGAP bool
	convs := 0
	for i := range g.Layers {
		switch g.Layers[i].Op {
		case graph.OpConv2D:
			hasConv = true
			convs++
		case graph.OpDepthwiseConv2D:
			hasDW = true
		case graph.OpTransposeConv2D:
			hasTConv = true
		case graph.OpResizeBilinear, graph.OpResizeNearest:
			hasResize = true
		case graph.OpConcat:
			hasConcat = true
		case graph.OpAdd:
			hasAdd = true
		case graph.OpLSTM:
			hasLSTM = true
		case graph.OpGRU:
			hasGRU = true
		case graph.OpEmbedding:
			hasEmbed = true
		case graph.OpGlobalAvgPool:
			hasGAP = true
		}
	}
	switch {
	case hasEmbed && hasGRU:
		return zoo.ArchSeq2Seq
	case hasEmbed && hasLSTM:
		return zoo.ArchEmbedLSTM
	case hasEmbed:
		return zoo.ArchTextCNN
	case hasConv && hasLSTM:
		return zoo.ArchCRNN
	case hasLSTM:
		return zoo.ArchSpeechRNN
	case hasGRU:
		return zoo.ArchSensorGRU
	case hasTConv && hasConcat:
		return zoo.ArchUNet
	case hasTConv && hasAdd:
		return zoo.ArchEncoderDecoder
	case hasTConv:
		return zoo.ArchPoseNet
	case hasResize && hasConcat:
		return zoo.ArchFSSD
	case hasDW && hasAdd && !hasGAP:
		return zoo.ArchBlazeFace
	case hasDW && hasAdd:
		return zoo.ArchMobileNetV2
	case hasDW:
		return zoo.ArchMobileNetV1
	case hasConv:
		return zoo.ArchKeywordCNN
	case convs == 0 && len(g.Layers) > 0:
		return zoo.ArchSensorMLP
	default:
		return zoo.ArchUnknown
	}
}

// ArchCount is one architecture-popularity row.
type ArchCount struct {
	Arch      zoo.Arch
	Uniques   int
	Instances int
}

// ArchitectureBreakdown counts architecture popularity by unique models
// and by shipped instances, sorted by instances (the paper's popularity
// measure). The fingerprint is computed at ingest time, so graph-less
// corpora report it too.
func (c *Corpus) ArchitectureBreakdown() []ArchCount {
	uniques := map[zoo.Arch]int{}
	instances := map[zoo.Arch]int{}
	archOf := map[graph.Checksum]zoo.Arch{}
	for _, u := range c.SortedUniques() {
		archOf[u.Checksum] = u.Arch
		uniques[u.Arch]++
	}
	for _, r := range c.Records {
		instances[archOf[r.Checksum]]++
	}
	out := make([]ArchCount, 0, len(uniques))
	for a, n := range uniques {
		out = append(out, ArchCount{Arch: a, Uniques: n, Instances: instances[a]})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Instances != out[j].Instances {
			return out[i].Instances > out[j].Instances
		}
		return out[i].Arch < out[j].Arch
	})
	return out
}
