package analysis

import (
	"bytes"
	"context"
	"fmt"
	"reflect"
	"testing"

	"github.com/gaugenn/gaugenn/internal/extract"
	"github.com/gaugenn/gaugenn/internal/nn/formats"
	"github.com/gaugenn/gaugenn/internal/nn/graph"
	"github.com/gaugenn/gaugenn/internal/nn/zoo"
	"github.com/gaugenn/gaugenn/internal/store"
)

// payloadFixture builds one decodable model payload: the file set, its
// payload hash, and a decode closure that counts invocations.
func payloadFixture(t *testing.T, seed int64) (extract.PayloadHash, func(*int) func() (*graph.Graph, error)) {
	t.Helper()
	g, err := zoo.Build(zoo.Spec{Task: zoo.TaskFaceDetection, Seed: seed, Hinted: true})
	if err != nil {
		t.Fatal(err)
	}
	f, _ := formats.ByName("tflite")
	fs, err := f.Encode(g, g.Name)
	if err != nil {
		t.Fatal(err)
	}
	h := extract.HashPayload("tflite", fs)
	mkDecode := func(count *int) func() (*graph.Graph, error) {
		return func() (*graph.Graph, error) {
			*count++
			return f.Decode(fs)
		}
	}
	return h, mkDecode
}

func openStore(t *testing.T) *store.Store {
	t.Helper()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestPersistentCacheWarmSkipsDecodeAndProfile(t *testing.T) {
	st := openStore(t)
	h, mkDecode := payloadFixture(t, 7)

	// Cold pass: decode + profile run and write through.
	cold := NewPersistentUniqueCache(true, st, true)
	decodes := 0
	sum, ok, _ := cold.Payload(context.Background(), h, mkDecode(&decodes))
	if !ok || decodes != 1 {
		t.Fatalf("cold payload: ok=%v decodes=%d", ok, decodes)
	}
	coldData, err := cold.get(context.Background(), extract.Model{Checksum: sum})
	if err != nil {
		t.Fatal(err)
	}
	if err := cold.PersistErr(); err != nil {
		t.Fatal(err)
	}
	cs := cold.Stats()
	if cs.Decodes != 1 || cs.Profiles != 1 || cs.WarmPayloadHits != 0 {
		t.Fatalf("cold stats: %+v", cs)
	}

	// Warm pass in a fresh cache: nothing decodes, nothing profiles.
	warm := NewPersistentUniqueCache(true, st, true)
	warmDecodes := 0
	wsum, ok, _ := warm.Payload(context.Background(), h, mkDecode(&warmDecodes))
	if !ok || wsum != sum {
		t.Fatalf("warm payload: ok=%v sum=%s want %s", ok, wsum, sum)
	}
	if warmDecodes != 0 {
		t.Fatalf("warm run decoded %d times", warmDecodes)
	}
	warmData, err := warm.get(context.Background(), extract.Model{Checksum: sum})
	if err != nil {
		t.Fatal(err)
	}
	ws := warm.Stats()
	if ws.Decodes != 0 || ws.Profiles != 0 || ws.WarmPayloadHits != 1 || ws.WarmAnalysisHits != 1 {
		t.Fatalf("warm stats: %+v", ws)
	}

	// The warm analysis must match the cold one in every derived field.
	if warmData.name != coldData.name || warmData.task != coldData.task ||
		warmData.arch != coldData.arch || warmData.modality != coldData.modality {
		t.Fatalf("warm analysis diverges: %+v vs %+v", warmData, coldData)
	}
	if !reflect.DeepEqual(warmData.profile, coldData.profile) {
		t.Fatal("warm profile differs from cold")
	}
	if !reflect.DeepEqual(warmData.layerSums, coldData.layerSums) {
		t.Fatal("warm layer checksums differ from cold")
	}
	if !reflect.DeepEqual(warmData.weights, coldData.weights) {
		t.Fatal("warm weight stats differ from cold")
	}
	// keepGraphs caches load the persisted graph too, byte-identical.
	if warmData.graph == nil || coldData.graph == nil {
		t.Fatal("keepGraphs cache lost a graph")
	}
	if graph.ModelChecksum(warmData.graph) != graph.ModelChecksum(coldData.graph) {
		t.Fatal("persisted graph round-trip changed the model checksum")
	}
}

func TestPersistentCacheFailedDecodeIsCached(t *testing.T) {
	st := openStore(t)
	h := extract.HashPayload("tflite", formats.FileSet{"junk.tflite": []byte("not a model")})
	cold := NewPersistentUniqueCache(false, st, true)
	decodes := 0
	fail := func() (*graph.Graph, error) {
		decodes++
		return nil, fmt.Errorf("boom")
	}
	if _, ok, _ := cold.Payload(context.Background(), h, fail); ok || decodes != 1 {
		t.Fatalf("cold failed decode: ok=%v decodes=%d", ok, decodes)
	}
	warm := NewPersistentUniqueCache(false, st, true)
	if _, ok, _ := warm.Payload(context.Background(), h, fail); ok {
		t.Fatal("persisted failure must stay a failure")
	}
	if decodes != 1 {
		t.Fatalf("warm run re-decoded a known-bad payload (%d decodes)", decodes)
	}
}

func TestPersistentCachePayloadWithoutAnalysisRedecodes(t *testing.T) {
	st := openStore(t)
	h, mkDecode := payloadFixture(t, 9)
	// Cold run that "crashed" between the payload write and the analysis
	// write: only Payload ran.
	cold := NewPersistentUniqueCache(false, st, true)
	decodes := 0
	if _, ok, _ := cold.Payload(context.Background(), h, mkDecode(&decodes)); !ok {
		t.Fatal("cold decode failed")
	}
	// A warm run must not trust the orphaned payload record — the decode
	// has to run again so analysis has a graph.
	warm := NewPersistentUniqueCache(false, st, true)
	warmDecodes := 0
	if _, ok, _ := warm.Payload(context.Background(), h, mkDecode(&warmDecodes)); !ok {
		t.Fatal("warm decode failed")
	}
	if warmDecodes != 1 {
		t.Fatalf("orphaned payload record served warm (%d decodes)", warmDecodes)
	}
}

func TestPersistentCacheResumeOffWritesButNeverReads(t *testing.T) {
	st := openStore(t)
	h, mkDecode := payloadFixture(t, 11)
	first := NewPersistentUniqueCache(false, st, true)
	decodes := 0
	sum, _, _ := first.Payload(context.Background(), h, mkDecode(&decodes))
	if _, err := first.get(context.Background(), extract.Model{Checksum: sum}); err != nil {
		t.Fatal(err)
	}
	// resume=false ignores the populated store and recomputes.
	cold := NewPersistentUniqueCache(false, st, false)
	coldDecodes := 0
	if _, ok, _ := cold.Payload(context.Background(), h, mkDecode(&coldDecodes)); !ok || coldDecodes != 1 {
		t.Fatalf("resume=false must recompute: ok=%v decodes=%d", ok, coldDecodes)
	}
}

func TestLoadModelSummary(t *testing.T) {
	st := openStore(t)
	h, mkDecode := payloadFixture(t, 13)
	uc := NewPersistentUniqueCache(true, st, true)
	decodes := 0
	sum, _, _ := uc.Payload(context.Background(), h, mkDecode(&decodes))
	d, err := uc.get(context.Background(), extract.Model{Checksum: sum})
	if err != nil {
		t.Fatal(err)
	}
	ms, ok, err := LoadModelSummary(st, sum)
	if err != nil || !ok {
		t.Fatalf("summary: ok=%v err=%v", ok, err)
	}
	if ms.Name != d.name || ms.Task != d.task.String() || ms.Arch != d.arch.String() {
		t.Fatalf("summary mismatch: %+v", ms)
	}
	if ms.FLOPs != d.profile.FLOPs || ms.Params != d.profile.Params || !ms.HasGraph {
		t.Fatalf("summary profile mismatch: %+v", ms)
	}
	if _, ok, err := LoadModelSummary(st, "00000000000000000000000000000000"); err != nil || ok {
		t.Fatalf("unknown checksum must miss: ok=%v err=%v", ok, err)
	}
	if _, ok, _ := LoadModelSummary(st, "../evil"); ok {
		t.Fatal("invalid checksum must miss")
	}
}

func TestCorpusCodecRoundTripByteStable(t *testing.T) {
	_, c21 := corpora(t)
	first, err := EncodeCorpus(c21)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := DecodeCorpus(first)
	if err != nil {
		t.Fatal(err)
	}
	second, err := EncodeCorpus(loaded)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatal("save->load->save is not byte-stable")
	}
	// The loaded corpus answers the report questions identically.
	if !reflect.DeepEqual(loaded.Dataset(), c21.Dataset()) {
		t.Fatalf("dataset stats diverge: %+v vs %+v", loaded.Dataset(), c21.Dataset())
	}
	lr, li := loaded.TaskBreakdown(true)
	cr, ci := c21.TaskBreakdown(true)
	if li != ci || !reflect.DeepEqual(lr, cr) {
		t.Fatal("task breakdown diverges after round trip")
	}
	if loaded.InstancesSharedAcrossApps() != c21.InstancesSharedAcrossApps() {
		t.Fatal("shared-instances fraction diverges after round trip")
	}
	if !reflect.DeepEqual(loaded.Optimisations(), c21.Optimisations()) {
		t.Fatal("optimisation stats diverge after round trip")
	}
}

func TestCorpusCodecPreservesTemporalDiff(t *testing.T) {
	c20, c21 := corpora(t)
	b20, err := EncodeCorpus(c20)
	if err != nil {
		t.Fatal(err)
	}
	b21, err := EncodeCorpus(c21)
	if err != nil {
		t.Fatal(err)
	}
	l20, err := DecodeCorpus(b20)
	if err != nil {
		t.Fatal(err)
	}
	l21, err := DecodeCorpus(b21)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(TemporalDiff(l20, l21), TemporalDiff(c20, c21)) {
		t.Fatal("temporal diff diverges on loaded corpora")
	}
}

func TestCorpusCodecVersionGate(t *testing.T) {
	if _, err := DecodeCorpus([]byte(`{"v":99,"label":"x"}`)); err == nil {
		t.Fatal("future corpus version must not decode")
	}
	if _, err := DecodeCorpus([]byte(`garbage`)); err == nil {
		t.Fatal("garbage must not decode")
	}
}
