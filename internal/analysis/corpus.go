// Package analysis implements gaugeNN's offline model analysis (Sections
// 4 and 6): checksum-based uniqueness and fine-tuning detection, the
// three-vote task classification, layer-composition and FLOPs/parameter
// profiling, cross-snapshot churn, and the model-level optimisation scan.
package analysis

import (
	"sort"

	"github.com/gaugenn/gaugenn/internal/extract"
	"github.com/gaugenn/gaugenn/internal/nn/graph"
	"github.com/gaugenn/gaugenn/internal/nn/zoo"
)

// Record is one model instance (one file in one app).
type Record struct {
	Package   string
	Category  string
	Path      string
	Framework string
	Checksum  graph.Checksum
	FileBytes int
}

// Unique holds everything computed once per distinct model checksum.
type Unique struct {
	Checksum  graph.Checksum
	Name      string
	Framework string
	Task      zoo.Task
	// Arch is the fingerprinted architecture family (Section 4.5).
	Arch     zoo.Arch
	Modality graph.Modality
	Profile  *graph.Profile
	// LayerSums holds per-layer checksums of weighted layers only, the
	// input to the fine-tuning analysis.
	LayerSums []graph.Checksum
	Weights   graph.WeightStats
	// Instances counts how many records share this checksum.
	Instances int
	// Graph is retained when the corpus is built with KeepGraphs, for
	// on-device benchmarking.
	Graph *graph.Graph
}

// AppInfo summarises the ML signals of one app.
type AppInfo struct {
	Package   string
	Category  string
	HasModels bool
	HasMLLib  bool
	CloudAPIs []string
	// Provider flags derived from CloudAPIs.
	UsesGoogleCloud, UsesAWSCloud    bool
	UsesNNAPI, UsesXNNPACK, UsesSNPE bool
	LazyModelDownload                bool
	// OnDeviceTraining marks TFLiteTransferConverter-style traces.
	OnDeviceTraining  bool
	FailedValidations int
}

// Corpus is a full snapshot's analysis input: per-instance records plus
// per-unique decoded data.
type Corpus struct {
	Label   string
	Records []Record
	Uniques map[graph.Checksum]*Unique
	Apps    []AppInfo
	// KeepGraphs controls whether decoded graphs are retained on Uniques.
	KeepGraphs bool
}

// NewCorpus creates an empty corpus.
func NewCorpus(label string, keepGraphs bool) *Corpus {
	return &Corpus{Label: label, Uniques: map[graph.Checksum]*Unique{}, KeepGraphs: keepGraphs}
}

// AddReport ingests one app's extraction report, profiling and classifying
// any model checksum seen for the first time.
func (c *Corpus) AddReport(category string, rep *extract.Report) error {
	info := AppInfo{
		Package:           rep.Package,
		Category:          category,
		HasModels:         len(rep.Models) > 0,
		HasMLLib:          rep.HasMLLibrary(),
		UsesNNAPI:         rep.UsesNNAPI,
		UsesXNNPACK:       rep.UsesXNNPACK,
		UsesSNPE:          rep.UsesSNPE,
		LazyModelDownload: rep.LazyModelDownload,
		OnDeviceTraining:  rep.OnDeviceTraining,
		FailedValidations: len(rep.FailedValidation),
	}
	seenAPI := map[string]bool{}
	for _, d := range rep.CloudAPIs {
		if !seenAPI[d.API] {
			seenAPI[d.API] = true
			info.CloudAPIs = append(info.CloudAPIs, d.API)
			switch d.Provider {
			case "google":
				info.UsesGoogleCloud = true
			case "aws":
				info.UsesAWSCloud = true
			}
		}
	}
	sort.Strings(info.CloudAPIs)
	c.Apps = append(c.Apps, info)

	for _, m := range rep.Models {
		c.Records = append(c.Records, Record{
			Package:   rep.Package,
			Category:  category,
			Path:      m.Path,
			Framework: m.Framework,
			Checksum:  m.Checksum,
			FileBytes: m.FileBytes,
		})
		u, ok := c.Uniques[m.Checksum]
		if !ok {
			prof, err := graph.ProfileGraph(m.Graph)
			if err != nil {
				return err
			}
			task, _ := ClassifyTask(m.Graph)
			u = &Unique{
				Checksum:  m.Checksum,
				Name:      m.Graph.Name,
				Framework: m.Framework,
				Task:      task,
				Arch:      FingerprintArch(m.Graph),
				Modality:  m.Graph.InferModality(),
				Profile:   prof,
				LayerSums: graph.WeightedLayerChecksums(m.Graph),
				Weights:   graph.CollectWeightStats(m.Graph),
			}
			if c.KeepGraphs {
				u.Graph = m.Graph
			}
			c.Uniques[m.Checksum] = u
		}
		u.Instances++
	}
	return nil
}

// TotalModels returns the instance count (Table 2's "Total models").
func (c *Corpus) TotalModels() int { return len(c.Records) }

// UniqueModels returns the distinct checksum count (Table 2's "Unique
// models").
func (c *Corpus) UniqueModels() int { return len(c.Uniques) }

// AppsWithModels counts apps shipping at least one validated model.
func (c *Corpus) AppsWithModels() int {
	n := 0
	for _, a := range c.Apps {
		if a.HasModels {
			n++
		}
	}
	return n
}

// AppsWithFrameworks counts apps with any ML library signal (Table 2's
// "Apps w/ frameworks"), which includes apps whose models are encrypted or
// downloaded out of band.
func (c *Corpus) AppsWithFrameworks() int {
	n := 0
	for _, a := range c.Apps {
		if a.HasMLLib || a.HasModels {
			n++
		}
	}
	return n
}

// SortedUniques returns uniques ordered by checksum for deterministic
// iteration.
func (c *Corpus) SortedUniques() []*Unique {
	out := make([]*Unique, 0, len(c.Uniques))
	for _, u := range c.Uniques {
		out = append(out, u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Checksum < out[j].Checksum })
	return out
}

// InstancesSharedAcrossApps returns the fraction of model instances whose
// checksum appears in two or more apps — the paper's "close to 80.9% of
// the models are shared across two or more applications".
func (c *Corpus) InstancesSharedAcrossApps() float64 {
	if len(c.Records) == 0 {
		return 0
	}
	appsPerSum := map[graph.Checksum]map[string]bool{}
	for _, r := range c.Records {
		m, ok := appsPerSum[r.Checksum]
		if !ok {
			m = map[string]bool{}
			appsPerSum[r.Checksum] = m
		}
		m[r.Package] = true
	}
	shared := 0
	for _, r := range c.Records {
		if len(appsPerSum[r.Checksum]) >= 2 {
			shared++
		}
	}
	return float64(shared) / float64(len(c.Records))
}
