// Package analysis implements gaugeNN's offline model analysis (Sections
// 4 and 6): checksum-based uniqueness and fine-tuning detection, the
// three-vote task classification, layer-composition and FLOPs/parameter
// profiling, cross-snapshot churn, and the model-level optimisation scan.
package analysis

import (
	"context"
	"sort"
	"sync"

	"github.com/gaugenn/gaugenn/internal/extract"
	"github.com/gaugenn/gaugenn/internal/nn/graph"
	"github.com/gaugenn/gaugenn/internal/nn/zoo"
)

// Record is one model instance (one file in one app).
type Record struct {
	Package   string
	Category  string
	Path      string
	Framework string
	Checksum  graph.Checksum
	FileBytes int
}

// Unique holds everything computed once per distinct model checksum.
type Unique struct {
	Checksum  graph.Checksum
	Name      string
	Framework string
	Task      zoo.Task
	// Arch is the fingerprinted architecture family (Section 4.5).
	Arch     zoo.Arch
	Modality graph.Modality
	Profile  *graph.Profile
	// LayerSums holds per-layer checksums of weighted layers only, the
	// input to the fine-tuning analysis.
	LayerSums []graph.Checksum
	Weights   graph.WeightStats
	// Instances counts how many records share this checksum.
	Instances int
	// Graph is retained when the corpus is built with KeepGraphs, for
	// on-device benchmarking.
	Graph *graph.Graph
}

// AppInfo summarises the ML signals of one app.
type AppInfo struct {
	Package   string
	Category  string
	HasModels bool
	HasMLLib  bool
	CloudAPIs []string
	// Provider flags derived from CloudAPIs.
	UsesGoogleCloud, UsesAWSCloud    bool
	UsesNNAPI, UsesXNNPACK, UsesSNPE bool
	LazyModelDownload                bool
	// OnDeviceTraining marks TFLiteTransferConverter-style traces.
	OnDeviceTraining  bool
	FailedValidations int
}

// Corpus is a full snapshot's analysis input: per-instance records plus
// per-unique decoded data.
//
// AddReport and AddApp are safe for concurrent use; the read-side methods
// (Dataset, TaskBreakdown, ...) assume ingestion has completed, matching
// the pipeline's ingest-then-analyse phases. SortedUniques and
// InstancesSharedAcrossApps are memoised; the memos are invalidated by
// ingestion.
type Corpus struct {
	Label   string
	Records []Record
	Uniques map[graph.Checksum]*Unique
	Apps    []AppInfo
	// KeepGraphs controls whether decoded graphs are retained on Uniques.
	KeepGraphs bool

	// cache backs per-checksum analysis; shared caches (see UniqueCache)
	// let shards and snapshots skip re-profiling duplicate checksums.
	cache *UniqueCache

	mu sync.Mutex
	// sortedUniques memoises SortedUniques between ingests.
	sortedUniques []*Unique
	// appsPerSum/recordsPerSum/sharedRecords maintain the
	// InstancesSharedAcrossApps index incrementally, replacing the O(n)
	// map rebuild the method previously performed per call.
	// indexedRecords counts how many of c.Records the index has seen, so
	// records appended directly (test fixtures) trigger a rebuild instead
	// of silently skewing the fraction.
	appsPerSum     map[graph.Checksum]map[string]struct{}
	recordsPerSum  map[graph.Checksum]int
	sharedRecords  int
	indexedRecords int
}

// NewCorpus creates an empty corpus with a private analysis cache.
func NewCorpus(label string, keepGraphs bool) *Corpus {
	return NewCorpusWithCache(label, keepGraphs, NewUniqueCache(keepGraphs))
}

// NewCorpusWithCache creates an empty corpus backed by a shared analysis
// cache, so duplicate checksums already profiled elsewhere (another shard,
// the other snapshot) are not re-profiled.
func NewCorpusWithCache(label string, keepGraphs bool, cache *UniqueCache) *Corpus {
	return &Corpus{
		Label:         label,
		Uniques:       map[graph.Checksum]*Unique{},
		KeepGraphs:    keepGraphs,
		cache:         cache,
		appsPerSum:    map[graph.Checksum]map[string]struct{}{},
		recordsPerSum: map[graph.Checksum]int{},
	}
}

// AddApp ingests an app summary without an extraction report (the fast
// path for apps with no ML signals).
func (c *Corpus) AddApp(info AppInfo) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.Apps = append(c.Apps, info)
}

// AddReport ingests one app's extraction report, profiling and classifying
// any model checksum seen for the first time (across every corpus sharing
// this corpus' cache).
//
// Deprecated: use AddReportContext, which bounds the per-checksum
// analysis waits with a context.
func (c *Corpus) AddReport(category string, rep *extract.Report) error {
	return c.AddReportContext(context.Background(), category, rep)
}

// AddReportContext is AddReport with a context bounding the per-checksum
// single-flight analysis (see UniqueCache.get for the cancellation
// contract).
func (c *Corpus) AddReportContext(ctx context.Context, category string, rep *extract.Report) error {
	info := AppInfo{
		Package:           rep.Package,
		Category:          category,
		HasModels:         len(rep.Models) > 0,
		HasMLLib:          rep.HasMLLibrary(),
		UsesNNAPI:         rep.UsesNNAPI,
		UsesXNNPACK:       rep.UsesXNNPACK,
		UsesSNPE:          rep.UsesSNPE,
		LazyModelDownload: rep.LazyModelDownload,
		OnDeviceTraining:  rep.OnDeviceTraining,
		FailedValidations: len(rep.FailedValidation),
	}
	seenAPI := map[string]bool{}
	for _, d := range rep.CloudAPIs {
		if !seenAPI[d.API] {
			seenAPI[d.API] = true
			info.CloudAPIs = append(info.CloudAPIs, d.API)
			switch d.Provider {
			case "google":
				info.UsesGoogleCloud = true
			case "aws":
				info.UsesAWSCloud = true
			}
		}
	}
	sort.Strings(info.CloudAPIs)

	// Per-checksum analysis runs outside the corpus lock: the cache is
	// single-flight, so concurrent ingesters never duplicate the work and
	// the corpus stays unlocked during the expensive profiling.
	type modelData struct {
		m extract.Model
		d *uniqueData
	}
	cache := c.uniqueCache()
	datas := make([]modelData, 0, len(rep.Models))
	for _, m := range rep.Models {
		d, err := cache.get(ctx, m)
		if err != nil {
			return err
		}
		datas = append(datas, modelData{m, d})
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	c.Apps = append(c.Apps, info)
	for _, md := range datas {
		m, d := md.m, md.d
		r := Record{
			Package:   rep.Package,
			Category:  category,
			Path:      m.Path,
			Framework: m.Framework,
			Checksum:  m.Checksum,
			FileBytes: m.FileBytes,
		}
		c.Records = append(c.Records, r)
		c.noteRecordLocked(r)
		u, ok := c.Uniques[m.Checksum]
		if !ok {
			u = newUnique(m.Checksum, m.Framework, d, c.KeepGraphs)
			c.Uniques[m.Checksum] = u
		}
		u.Instances++
	}
	c.sortedUniques = nil
	return nil
}

func (c *Corpus) uniqueCache() *UniqueCache {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cache == nil {
		// Corpora constructed as bare literals (tests) lazily get a
		// private cache.
		c.cache = NewUniqueCache(c.KeepGraphs)
	}
	return c.cache
}

// newUnique materialises a corpus-owned Unique from shared per-checksum
// data plus the (record-level, since tflite+dlc twins share checksums)
// framework. Instances starts at zero; callers count it per record.
func newUnique(sum graph.Checksum, framework string, d *uniqueData, keepGraphs bool) *Unique {
	u := &Unique{
		Checksum:  sum,
		Name:      d.name,
		Framework: framework,
		Task:      d.task,
		Arch:      d.arch,
		Modality:  d.modality,
		Profile:   d.profile,
		LayerSums: d.layerSums,
		Weights:   d.weights,
	}
	if keepGraphs {
		u.Graph = d.graph
	}
	return u
}

// noteRecordLocked maintains the shared-instances index. Callers hold c.mu.
func (c *Corpus) noteRecordLocked(r Record) {
	if c.appsPerSum == nil {
		// Bare-literal corpora (tests) skip the constructors.
		c.appsPerSum = map[graph.Checksum]map[string]struct{}{}
		c.recordsPerSum = map[graph.Checksum]int{}
	}
	set := c.appsPerSum[r.Checksum]
	if set == nil {
		set = map[string]struct{}{}
		c.appsPerSum[r.Checksum] = set
	}
	if _, ok := set[r.Package]; !ok {
		set[r.Package] = struct{}{}
		if len(set) == 2 {
			// The checksum just became multi-app: every record already
			// ingested for it retroactively counts as shared.
			c.sharedRecords += c.recordsPerSum[r.Checksum]
		}
	}
	c.recordsPerSum[r.Checksum]++
	if len(set) >= 2 {
		c.sharedRecords++
	}
	c.indexedRecords++
}

// TotalModels returns the instance count (Table 2's "Total models").
func (c *Corpus) TotalModels() int { return len(c.Records) }

// UniqueModels returns the distinct checksum count (Table 2's "Unique
// models").
func (c *Corpus) UniqueModels() int { return len(c.Uniques) }

// AppsWithModels counts apps shipping at least one validated model.
func (c *Corpus) AppsWithModels() int {
	n := 0
	for _, a := range c.Apps {
		if a.HasModels {
			n++
		}
	}
	return n
}

// AppsWithFrameworks counts apps with any ML library signal (Table 2's
// "Apps w/ frameworks"), which includes apps whose models are encrypted or
// downloaded out of band.
func (c *Corpus) AppsWithFrameworks() int {
	n := 0
	for _, a := range c.Apps {
		if a.HasMLLib || a.HasModels {
			n++
		}
	}
	return n
}

// SortedUniques returns uniques ordered by checksum for deterministic
// iteration. The slice is memoised between ingests; callers must not
// mutate it.
func (c *Corpus) SortedUniques() []*Unique {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.sortedUniques == nil {
		out := make([]*Unique, 0, len(c.Uniques))
		for _, u := range c.Uniques {
			out = append(out, u)
		}
		sort.Slice(out, func(i, j int) bool { return out[i].Checksum < out[j].Checksum })
		c.sortedUniques = out
	}
	return c.sortedUniques
}

// InstancesSharedAcrossApps returns the fraction of model instances whose
// checksum appears in two or more apps — the paper's "close to 80.9% of
// the models are shared across two or more applications". The underlying
// index is maintained incrementally at ingest time, so this is O(1).
func (c *Corpus) InstancesSharedAcrossApps() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.Records) == 0 {
		return 0
	}
	if c.indexedRecords != len(c.Records) {
		// Records were inserted directly (test fixtures, possibly mixed
		// with AddReport calls); rebuild the index from scratch.
		c.appsPerSum = map[graph.Checksum]map[string]struct{}{}
		c.recordsPerSum = map[graph.Checksum]int{}
		c.sharedRecords = 0
		c.indexedRecords = 0
		for _, r := range c.Records {
			c.noteRecordLocked(r)
		}
	}
	return float64(c.sharedRecords) / float64(len(c.Records))
}
