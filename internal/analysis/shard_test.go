package analysis

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"github.com/gaugenn/gaugenn/internal/extract"
	"github.com/gaugenn/gaugenn/internal/playstore"
)

// snapshotReports extracts every app of a snapshot once, so shard tests can
// replay the same report stream through different ingestion layouts.
type indexedReport struct {
	idx      int
	category string
	rep      *extract.Report // nil for apps without ML signals
	info     AppInfo
}

func extractAll(t *testing.T, snap *playstore.Snapshot) []indexedReport {
	t.Helper()
	var out []indexedReport
	for i, a := range snap.Apps {
		ir := indexedReport{idx: i, category: string(a.Category)}
		if !a.HasML() {
			ir.info = AppInfo{Package: a.Package, Category: string(a.Category)}
		} else {
			apkBytes, err := snap.BuildAPK(a)
			if err != nil {
				t.Fatalf("%s: %v", a.Package, err)
			}
			rep, err := extract.ExtractAPK(apkBytes)
			if err != nil {
				t.Fatalf("%s: %v", a.Package, err)
			}
			ir.rep = rep
		}
		out = append(out, ir)
	}
	return out
}

func ingestSharded(t *testing.T, label string, reports []indexedReport, shardCount, workers int) *Corpus {
	t.Helper()
	s := NewShardedCorpus(label, false, shardCount, nil)
	var wg sync.WaitGroup
	jobs := make(chan indexedReport)
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ir := range jobs {
				if ir.rep == nil {
					s.AddApp(ir.idx, ir.info)
					continue
				}
				if err := s.AddReport(context.Background(), ir.idx, ir.category, ir.rep); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	for _, ir := range reports {
		jobs <- ir
	}
	close(jobs)
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	return s.Merge()
}

func corpusFingerprint(c *Corpus) (records []Record, apps []string, uniques []string, instances []int) {
	records = c.Records
	for _, a := range c.Apps {
		apps = append(apps, a.Package)
	}
	for _, u := range c.SortedUniques() {
		// Framework included: twins ship one checksum under several
		// formats, so the field is a determinism tripwire.
		uniques = append(uniques, string(u.Checksum)+"/"+u.Framework)
		instances = append(instances, u.Instances)
	}
	return
}

func TestShardedMergeMatchesSequentialIngest(t *testing.T) {
	st := study(t)
	reports := extractAll(t, st.Snap21)

	seq := NewCorpus("seq", false)
	for _, ir := range reports {
		if ir.rep == nil {
			seq.AddApp(ir.info)
			continue
		}
		if err := seq.AddReport(ir.category, ir.rep); err != nil {
			t.Fatal(err)
		}
	}
	seqRec, seqApps, seqUniq, seqInst := corpusFingerprint(seq)

	for _, layout := range []struct{ shards, workers int }{
		{1, 1}, {4, 4}, {8, 3}, {3, 8},
	} {
		merged := ingestSharded(t, "sharded", reports, layout.shards, layout.workers)
		mRec, mApps, mUniq, mInst := corpusFingerprint(merged)
		if !reflect.DeepEqual(seqRec, mRec) {
			t.Fatalf("shards=%d workers=%d: record stream diverges", layout.shards, layout.workers)
		}
		if !reflect.DeepEqual(seqApps, mApps) {
			t.Fatalf("shards=%d workers=%d: app order diverges", layout.shards, layout.workers)
		}
		if !reflect.DeepEqual(seqUniq, mUniq) || !reflect.DeepEqual(seqInst, mInst) {
			t.Fatalf("shards=%d workers=%d: uniques diverge", layout.shards, layout.workers)
		}
		if got, want := merged.InstancesSharedAcrossApps(), seq.InstancesSharedAcrossApps(); got != want {
			t.Fatalf("shards=%d workers=%d: shared fraction %v != %v", layout.shards, layout.workers, got, want)
		}
		got, want := merged.Dataset(), seq.Dataset()
		got.Label, want.Label = "", ""
		if got != want {
			t.Fatalf("shards=%d workers=%d: dataset %+v != %+v", layout.shards, layout.workers, got, want)
		}
	}
}

func TestUniqueCacheSingleFlight(t *testing.T) {
	st := study(t)
	reports := extractAll(t, st.Snap21)
	var model *extract.Model
	for _, ir := range reports {
		if ir.rep != nil && len(ir.rep.Models) > 0 {
			model = &ir.rep.Models[0]
			break
		}
	}
	if model == nil {
		t.Skip("no models at this scale")
	}
	cache := NewUniqueCache(false)
	const n = 16
	ptrs := make([]*uniqueData, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			d, err := cache.get(context.Background(), *model)
			if err != nil {
				t.Error(err)
				return
			}
			ptrs[i] = d
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if ptrs[i] != ptrs[0] {
			t.Fatal("concurrent gets computed the checksum more than once")
		}
	}
	if cache.Size() != 1 {
		t.Fatalf("cache size = %d, want 1", cache.Size())
	}
}

func TestSharedCacheSkipsCrossCorpusRecompute(t *testing.T) {
	st := study(t)
	reports := extractAll(t, st.Snap21)
	cache := NewUniqueCache(false)
	a := NewCorpusWithCache("a", false, cache)
	b := NewCorpusWithCache("b", false, cache)
	for _, ir := range reports {
		if ir.rep == nil {
			continue
		}
		if err := a.AddReport(ir.category, ir.rep); err != nil {
			t.Fatal(err)
		}
		if err := b.AddReport(ir.category, ir.rep); err != nil {
			t.Fatal(err)
		}
	}
	if a.UniqueModels() != b.UniqueModels() {
		t.Fatalf("corpora diverge: %d vs %d uniques", a.UniqueModels(), b.UniqueModels())
	}
	// The cache holds exactly one entry per distinct checksum even though
	// two corpora ingested the same stream.
	if cache.Size() != a.UniqueModels() {
		t.Fatalf("cache size = %d, want %d", cache.Size(), a.UniqueModels())
	}
	// Shared immutable analysis, corpus-owned instance counts.
	for sum, ua := range a.Uniques {
		ub := b.Uniques[sum]
		if ub == nil {
			t.Fatalf("checksum %s missing from b", sum)
		}
		if ua == ub {
			t.Fatal("corpora must not share Unique records (instance counts would collide)")
		}
		if ua.Profile != ub.Profile {
			t.Fatal("profiles should be the shared cached instance")
		}
		if ua.Instances != ub.Instances {
			t.Fatalf("instance counts diverge for %s", sum)
		}
	}
}
