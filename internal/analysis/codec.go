package analysis

import (
	"encoding/json"
	"fmt"

	"github.com/gaugenn/gaugenn/internal/nn/graph"
	"github.com/gaugenn/gaugenn/internal/nn/zoo"
)

// corpusWire is the persisted snapshot of a fully-ingested Corpus: apps
// and records in their deterministic global order, uniques sorted by
// checksum. Field order is fixed and every map in the payload is either
// absent or has integer-stable key ordering (encoding/json sorts map
// keys), so equal corpora encode to equal bytes and save→load→save is
// byte-stable — the property the warm/cold identity gates compare.
type corpusWire struct {
	V          int          `json:"v"`
	Label      string       `json:"label"`
	KeepGraphs bool         `json:"keep_graphs"`
	Apps       []AppInfo    `json:"apps,omitempty"`
	Records    []Record     `json:"records,omitempty"`
	Uniques    []uniqueWire `json:"uniques,omitempty"`
}

// uniqueWire deliberately carries no graph: decoded graphs live in the
// store's graph CAS keyed by this same checksum (see LoadCorpusGraphs),
// so corpus snapshots stay small and re-encoding one costs no weight-byte
// traffic.
type uniqueWire struct {
	Checksum  graph.Checksum    `json:"checksum"`
	Name      string            `json:"name"`
	Framework string            `json:"framework"`
	Task      uint8             `json:"task"`
	Arch      uint8             `json:"arch"`
	Modality  uint8             `json:"modality"`
	Profile   *graph.Profile    `json:"profile"`
	LayerSums []graph.Checksum  `json:"layer_sums,omitempty"`
	Weights   graph.WeightStats `json:"weights"`
	Instances int               `json:"instances"`
}

// EncodeCorpus serialises a fully-ingested corpus deterministically.
// Callers must not be mid-ingest (the same read-side contract as the
// report methods).
func EncodeCorpus(c *Corpus) ([]byte, error) {
	w := corpusWire{
		V:          persistCodecVersion,
		Label:      c.Label,
		KeepGraphs: c.KeepGraphs,
		Apps:       c.Apps,
		Records:    c.Records,
	}
	for _, u := range c.SortedUniques() {
		w.Uniques = append(w.Uniques, uniqueWire{
			Checksum:  u.Checksum,
			Name:      u.Name,
			Framework: u.Framework,
			Task:      uint8(u.Task),
			Arch:      uint8(u.Arch),
			Modality:  uint8(u.Modality),
			Profile:   u.Profile,
			LayerSums: u.LayerSums,
			Weights:   u.Weights,
			Instances: u.Instances,
		})
	}
	return json.Marshal(w)
}

// DecodeCorpus reverses EncodeCorpus. The loaded corpus serves every
// read-side method (report tables, diffs, bench selection when graphs were
// persisted); its shared-instances index rebuilds lazily on first use.
func DecodeCorpus(data []byte) (*Corpus, error) {
	var w corpusWire
	if err := json.Unmarshal(data, &w); err != nil {
		return nil, fmt.Errorf("analysis: decoding corpus: %w", err)
	}
	if w.V != persistCodecVersion {
		return nil, fmt.Errorf("analysis: corpus codec version %d, want %d", w.V, persistCodecVersion)
	}
	c := NewCorpus(w.Label, w.KeepGraphs)
	c.Apps = w.Apps
	c.Records = w.Records
	for _, uw := range w.Uniques {
		u := &Unique{
			Checksum:  uw.Checksum,
			Name:      uw.Name,
			Framework: uw.Framework,
			Task:      zoo.TaskFromCode(uw.Task),
			Arch:      zoo.ArchFromCode(uw.Arch),
			Modality:  graph.Modality(uw.Modality),
			Profile:   uw.Profile,
			LayerSums: uw.LayerSums,
			Weights:   uw.Weights,
			Instances: uw.Instances,
		}
		if u.Profile == nil {
			return nil, fmt.Errorf("analysis: corpus unique %s has no profile", uw.Checksum)
		}
		c.Uniques[u.Checksum] = u
	}
	return c, nil
}
