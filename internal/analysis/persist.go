package analysis

import (
	"fmt"

	"github.com/gaugenn/gaugenn/internal/extract"
	"github.com/gaugenn/gaugenn/internal/nn/graph"
	"github.com/gaugenn/gaugenn/internal/nn/zoo"
	"github.com/gaugenn/gaugenn/internal/store"
)

// persistCodecVersion gates every persisted analysis-side record (payload
// outcomes, analysis records, corpus snapshots). Records written under a
// different version are treated as cache misses and recomputed — enum
// codes (task, arch, modality, op types) are persisted numerically, so any
// renumbering must bump this. See docs/persistence.md for the rules.
// Version 2 sealed payload and analysis records (store.SealJSON): their
// keys hash the model/payload, not the record bytes, so each blob carries
// its own integrity digest.
const persistCodecVersion = 2

// payloadRecord is the persisted outcome of one payload-hash decode: either
// the payload failed validation (OK false), or it decoded to the model
// identified by Checksum, whose analysis record lives in the same store.
type payloadRecord struct {
	V        int            `json:"v"`
	OK       bool           `json:"ok"`
	Checksum graph.Checksum `json:"checksum,omitempty"`
}

// analysisWire is the persisted form of uniqueData — everything derived
// once per distinct model checksum. The decoded graph is not embedded:
// it lives as a sibling blob under store.KindGraph at the same checksum
// key (compact binary codec, raw weight bytes), flagged here by HasGraph,
// so report-table queries and keepGraphs=false warm runs never touch
// weight bytes at all.
type analysisWire struct {
	V         int               `json:"v"`
	Name      string            `json:"name"`
	Task      uint8             `json:"task"`
	Arch      uint8             `json:"arch"`
	Modality  uint8             `json:"modality"`
	Profile   *graph.Profile    `json:"profile"`
	LayerSums []graph.Checksum  `json:"layer_sums,omitempty"`
	Weights   graph.WeightStats `json:"weights"`
	HasGraph  bool              `json:"has_graph,omitempty"`
}

func payloadKey(h extract.PayloadHash) string { return store.HexKey(h[:]) }

// checksumKey validates that a model checksum is usable as a store key
// (hex md5 by construction; anything else would be a corrupted report).
func checksumKey(sum graph.Checksum) string { return string(sum) }

func (uc *UniqueCache) loadPayloadRecord(h extract.PayloadHash) (payloadRecord, bool) {
	var rec payloadRecord
	data, ok, err := uc.st.Get(store.KindPayload, payloadKey(h))
	if err != nil || !ok {
		return rec, false
	}
	if store.OpenJSON(data, &rec) != nil || rec.V != persistCodecVersion {
		return payloadRecord{}, false
	}
	if rec.OK && !validChecksum(rec.Checksum) {
		return payloadRecord{}, false
	}
	return rec, true
}

func (uc *UniqueCache) persistPayloadRecord(h extract.PayloadHash, rec payloadRecord) {
	if uc.st == nil {
		return
	}
	data, err := store.SealJSON(rec)
	if err == nil {
		err = uc.st.Put(store.KindPayload, payloadKey(h), data)
	}
	uc.notePersistErr(err)
}

// HasAnalysis reports whether the checksum's analysis record is loadable
// from the persistent store under the current codec — including its graph
// blob, when this cache retains graphs and the record flags one. The
// report-level warm path uses it to refuse persisted reports whose models
// can no longer be resolved (crashed writer, codec bump): such reports
// re-extract and self-heal instead of failing the study. Verdicts are
// memoised per checksum; a successful persist or load flips the memo.
func (uc *UniqueCache) HasAnalysis(sum graph.Checksum) bool {
	if uc.st == nil || !uc.resume || !validChecksum(sum) {
		return false
	}
	uc.mu.Lock()
	v, seen := uc.verifiedSums[sum]
	uc.mu.Unlock()
	if seen {
		return v
	}
	_, ok := uc.decodeAnalysisWire(sum)
	uc.noteVerified(sum, ok)
	return ok
}

func (uc *UniqueCache) noteVerified(sum graph.Checksum, ok bool) {
	uc.mu.Lock()
	if uc.verifiedSums == nil {
		uc.verifiedSums = map[graph.Checksum]bool{}
	}
	uc.verifiedSums[sum] = ok
	uc.mu.Unlock()
}

// decodeAnalysisWire loads and validates one persisted analysis record,
// including the presence of its graph blob when this cache would need it.
func (uc *UniqueCache) decodeAnalysisWire(sum graph.Checksum) (analysisWire, bool) {
	var w analysisWire
	data, ok, err := uc.st.Get(store.KindAnalysis, checksumKey(sum))
	if err != nil || !ok {
		return w, false
	}
	if store.OpenJSON(data, &w) != nil || w.V != persistCodecVersion || w.Profile == nil {
		return analysisWire{}, false
	}
	if uc.keepGraphs && w.HasGraph && !uc.st.Has(store.KindGraph, checksumKey(sum)) {
		return analysisWire{}, false
	}
	return w, true
}

// loadAnalysisRecord rebuilds uniqueData from a persisted record. The
// graph is only materialised when the cache keeps graphs.
func (uc *UniqueCache) loadAnalysisRecord(sum graph.Checksum) (*uniqueData, bool) {
	if !validChecksum(sum) {
		return nil, false
	}
	w, ok := uc.decodeAnalysisWire(sum)
	if !ok {
		return nil, false
	}
	d := &uniqueData{
		name:      w.Name,
		task:      zoo.TaskFromCode(w.Task),
		arch:      zoo.ArchFromCode(w.Arch),
		modality:  graph.Modality(w.Modality),
		profile:   w.Profile,
		layerSums: w.LayerSums,
		weights:   w.Weights,
	}
	if uc.keepGraphs && w.HasGraph {
		g, ok := loadGraphBlob(uc.st, sum)
		if !ok {
			return nil, false
		}
		d.graph = g
	}
	uc.noteVerified(sum, true)
	return d, true
}

// loadGraphBlob reads one checksum's decoded graph from the graph CAS.
// The graph kind IS content-keyed (the key is the model checksum), so the
// blob authenticates against its own key: a decodable-but-corrupted graph
// is rejected here rather than silently benchmarked.
func loadGraphBlob(st *store.Store, sum graph.Checksum) (*graph.Graph, bool) {
	data, ok, err := st.Get(store.KindGraph, checksumKey(sum))
	if err != nil || !ok {
		return nil, false
	}
	g, err := graph.DecodeBinary(data)
	if err != nil || graph.ModelChecksum(g) != sum {
		return nil, false
	}
	return g, true
}

// persistAnalysisRecord writes one checksum's analysis through to the
// store. g is the decoded graph the analysis ran over — stored as a
// sibling binary blob so warm runs (and future workloads) have the full
// model without re-decoding; it may borrow weight bytes from a live APK
// buffer, which is safe to read here but never retained. The graph blob
// is written before the record that flags it, so a crash never leaves a
// record pointing at a missing graph.
func (uc *UniqueCache) persistAnalysisRecord(sum graph.Checksum, d *uniqueData, g *graph.Graph) {
	if uc.st == nil {
		return
	}
	if !validChecksum(sum) {
		uc.notePersistErr(fmt.Errorf("analysis: checksum %q is not a valid store key", sum))
		return
	}
	if g != nil {
		if err := uc.st.Put(store.KindGraph, checksumKey(sum), graph.EncodeBinary(g)); err != nil {
			uc.notePersistErr(err)
			return
		}
	}
	w := analysisWire{
		V:         persistCodecVersion,
		Name:      d.name,
		Task:      uint8(d.task),
		Arch:      uint8(d.arch),
		Modality:  uint8(d.modality),
		Profile:   d.profile,
		LayerSums: d.layerSums,
		Weights:   d.weights,
		HasGraph:  g != nil,
	}
	data, err := store.SealJSON(w)
	if err == nil {
		err = uc.st.Put(store.KindAnalysis, checksumKey(sum), data)
	}
	if err == nil {
		// The record (and its graph, written above) is now resolvable;
		// flip any cached negative verdict so warm report checks in this
		// run see the freshly-healed store.
		uc.noteVerified(sum, true)
	}
	uc.notePersistErr(err)
}

// ValidateAnalysisRecord reports whether data is a well-formed analysis
// record under the current codec: seal intact, version current, profile
// present. fsck uses it to find records a warm run would have to discard.
func ValidateAnalysisRecord(data []byte) error {
	var w analysisWire
	if err := store.OpenJSON(data, &w); err != nil {
		return err
	}
	if w.V != persistCodecVersion {
		return fmt.Errorf("analysis: record codec version %d, want %d", w.V, persistCodecVersion)
	}
	if w.Profile == nil {
		return fmt.Errorf("analysis: record has no profile")
	}
	return nil
}

// ValidatePayloadRecord reports whether data is a well-formed payload
// decode outcome under the current codec.
func ValidatePayloadRecord(data []byte) error {
	var rec payloadRecord
	if err := store.OpenJSON(data, &rec); err != nil {
		return err
	}
	if rec.V != persistCodecVersion {
		return fmt.Errorf("analysis: payload record codec version %d, want %d", rec.V, persistCodecVersion)
	}
	if rec.OK && !validChecksum(rec.Checksum) {
		return fmt.Errorf("analysis: payload record references invalid checksum %q", rec.Checksum)
	}
	return nil
}

func validChecksum(sum graph.Checksum) bool {
	if len(sum) != 32 {
		return false
	}
	for i := 0; i < len(sum); i++ {
		c := sum[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// ModelSummary is the serve API's per-model lookup view of a persisted
// analysis record.
type ModelSummary struct {
	Checksum       graph.Checksum `json:"checksum"`
	Name           string         `json:"name"`
	Task           string         `json:"task"`
	Arch           string         `json:"arch"`
	Modality       string         `json:"modality"`
	FLOPs          int64          `json:"flops"`
	Params         int64          `json:"params"`
	WeightBytes    int64          `json:"weight_bytes"`
	Layers         int            `json:"layers"`
	WeightedLayers int            `json:"weighted_layers"`
	HasGraph       bool           `json:"has_graph"`
}

// LoadModelSummary reads one checksum's persisted analysis record and
// summarises it for query APIs. ok is false when the checksum is unknown.
func LoadModelSummary(st *store.Store, sum graph.Checksum) (*ModelSummary, bool, error) {
	if !validChecksum(sum) {
		return nil, false, nil
	}
	data, ok, err := st.Get(store.KindAnalysis, checksumKey(sum))
	if err != nil || !ok {
		return nil, false, err
	}
	var w analysisWire
	if err := store.OpenJSON(data, &w); err != nil {
		return nil, false, fmt.Errorf("analysis: decoding record %s: %w", sum, err)
	}
	if w.V != persistCodecVersion || w.Profile == nil {
		return nil, false, fmt.Errorf("analysis: record %s has codec version %d, want %d", sum, w.V, persistCodecVersion)
	}
	return &ModelSummary{
		Checksum:       sum,
		Name:           w.Name,
		Task:           zoo.TaskFromCode(w.Task).String(),
		Arch:           zoo.ArchFromCode(w.Arch).String(),
		Modality:       graph.Modality(w.Modality).String(),
		FLOPs:          w.Profile.FLOPs,
		Params:         w.Profile.Params,
		WeightBytes:    w.Profile.WeightBytes,
		Layers:         len(w.Profile.Layers),
		WeightedLayers: len(w.LayerSums),
		HasGraph:       w.HasGraph,
	}, true, nil
}

// LoadCorpusGraphs attaches persisted graphs to a store-loaded corpus:
// corpus snapshots reference graphs by checksum instead of embedding
// them, so workloads that need the models themselves (bench selection,
// fleet matrices) hydrate them from the graph CAS on demand. Uniques
// whose graph was never persisted are left as-is.
func LoadCorpusGraphs(st *store.Store, c *Corpus) {
	for _, u := range c.SortedUniques() {
		if u.Graph != nil {
			continue
		}
		if g, ok := loadGraphBlob(st, u.Checksum); ok {
			u.Graph = g
		}
	}
}
