package analysis

import (
	"math"
	"testing"

	"github.com/gaugenn/gaugenn/internal/extract"
	"github.com/gaugenn/gaugenn/internal/nn/graph"
	"github.com/gaugenn/gaugenn/internal/nn/zoo"
	"github.com/gaugenn/gaugenn/internal/playstore"
)

// buildCorpus runs the full offline pipeline (packaging -> extraction ->
// corpus) over a generated snapshot, in process.
func buildCorpus(t *testing.T, snap *playstore.Snapshot, label string) *Corpus {
	t.Helper()
	c := NewCorpus(label, false)
	for _, a := range snap.Apps {
		if !a.HasML() {
			// Non-ML apps contribute to app totals without packaging cost.
			c.Apps = append(c.Apps, AppInfo{Package: a.Package, Category: string(a.Category)})
			continue
		}
		apkBytes, err := snap.BuildAPK(a)
		if err != nil {
			t.Fatalf("%s: %v", a.Package, err)
		}
		rep, err := extract.ExtractAPK(apkBytes)
		if err != nil {
			t.Fatalf("%s: %v", a.Package, err)
		}
		if err := c.AddReport(string(a.Category), rep); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

var cachedStudy *playstore.Study

func study(t *testing.T) *playstore.Study {
	t.Helper()
	if cachedStudy == nil {
		st, err := playstore.GenerateStudy(playstore.DefaultConfig(31, 0.04))
		if err != nil {
			t.Fatal(err)
		}
		cachedStudy = st
	}
	return cachedStudy
}

var (
	cached21, cached20 *Corpus
)

func corpora(t *testing.T) (*Corpus, *Corpus) {
	t.Helper()
	st := study(t)
	if cached21 == nil {
		cached21 = buildCorpus(t, st.Snap21, "2021")
		cached20 = buildCorpus(t, st.Snap20, "2020")
	}
	return cached20, cached21
}

func TestDatasetStats(t *testing.T) {
	c20, c21 := corpora(t)
	d21 := c21.Dataset()
	d20 := c20.Dataset()
	if d21.TotalApps == 0 || d21.TotalModels == 0 {
		t.Fatalf("empty 2021 dataset: %+v", d21)
	}
	// Table 2 shape: 2021 roughly doubles 2020's models.
	growth := float64(d21.TotalModels) / math.Max(1, float64(d20.TotalModels))
	if growth < 1.4 || growth > 3.5 {
		t.Errorf("model growth = %.2f, want ~2.0 (Table 2)", growth)
	}
	// Unique share near 19.1%.
	uniqShare := float64(d21.UniqueModels) / float64(d21.TotalModels)
	if uniqShare < 0.10 || uniqShare > 0.45 {
		t.Errorf("unique share = %.2f, want ~0.19", uniqShare)
	}
	// Apps with frameworks >= apps with models (encrypted/lazy apps).
	if d21.AppsWithFw < d21.AppsWithModels {
		t.Errorf("frameworks apps (%d) < model apps (%d)", d21.AppsWithFw, d21.AppsWithModels)
	}
	if d21.AppsWithFw == d21.AppsWithModels {
		t.Error("expected framework-only apps (obfuscated/lazy models)")
	}
}

func TestModelSharing(t *testing.T) {
	_, c21 := corpora(t)
	shared := c21.InstancesSharedAcrossApps()
	if shared < 0.5 {
		t.Errorf("shared instance fraction = %.2f, want high (paper: ~0.81)", shared)
	}
}

func TestTaskBreakdown(t *testing.T) {
	_, c21 := corpora(t)
	rows, identified := c21.TaskBreakdown(true)
	if len(rows) == 0 {
		t.Fatal("no task rows")
	}
	// Object detection must top Table 3.
	if rows[0].Task != zoo.TaskObjectDetection {
		t.Errorf("top task = %s, want object detection (rows %+v)", rows[0].Task, rows[:3])
	}
	idFrac := float64(identified) / float64(c21.TotalModels())
	if idFrac < 0.80 {
		t.Errorf("identified fraction = %.2f, want ~0.92", idFrac)
	}
	// Vision must dominate (>89% of identified).
	vision := 0
	total := 0
	for _, r := range rows {
		total += r.Count
		if r.Task.Modality() == graph.ModalityImage {
			vision += r.Count
		}
	}
	if frac := float64(vision) / float64(total); frac < 0.80 {
		t.Errorf("vision fraction = %.2f, want > 0.89", frac)
	}
}

func TestFrameworkAggregations(t *testing.T) {
	_, c21 := corpora(t)
	totals := c21.FrameworkTotals()
	if totals["tflite"] == 0 {
		t.Fatal("no tflite models")
	}
	sum := 0
	for _, n := range totals {
		sum += n
	}
	if share := float64(totals["tflite"]) / float64(sum); share < 0.7 {
		t.Errorf("tflite share = %.2f, want ~0.86", share)
	}
	byCat := c21.FrameworkByCategory()
	catSum := 0
	for _, m := range byCat {
		for _, n := range m {
			catSum += n
		}
	}
	if catSum != c21.TotalModels() {
		t.Fatalf("category breakdown sums to %d, want %d", catSum, c21.TotalModels())
	}
}

func TestLayerComposition(t *testing.T) {
	_, c21 := corpora(t)
	comp := c21.LayerComposition()
	img, ok := comp[graph.ModalityImage]
	if !ok {
		t.Fatal("no image modality composition")
	}
	// Convolutions must be the dominant image class (Figure 6: ~34%).
	if img[graph.ClassConv] < img[graph.ClassDense] {
		t.Errorf("image conv share %.2f should exceed dense %.2f", img[graph.ClassConv], img[graph.ClassDense])
	}
	var total float64
	for _, f := range img {
		total += f
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("image class fractions sum to %v, want 1", total)
	}
	// Text models leans on dense/embedding layers more than image models.
	if txt, ok := comp[graph.ModalityText]; ok {
		if txt[graph.ClassDense] <= img[graph.ClassDense] {
			t.Errorf("text dense share %.2f should exceed image dense share %.2f",
				txt[graph.ClassDense], img[graph.ClassDense])
		}
	}
}

func TestCostByTask(t *testing.T) {
	_, c21 := corpora(t)
	rows := c21.CostByTask()
	if len(rows) < 5 {
		t.Fatalf("cost rows = %d", len(rows))
	}
	med := map[zoo.Task]float64{}
	for _, r := range rows {
		med[r.Task] = r.FLOPsMedian
		if r.FLOPsMin > r.FLOPsMedian || r.FLOPsMedian > r.FLOPsMax {
			t.Fatalf("ordering broken in %+v", r)
		}
	}
	// Figure 7 shape: classification >> face detection in FLOPs.
	if med[zoo.TaskImageClassification] > 0 && med[zoo.TaskFaceDetection] > 0 &&
		med[zoo.TaskImageClassification] <= med[zoo.TaskFaceDetection] {
		t.Errorf("classification median FLOPs (%.0f) should exceed face detection (%.0f)",
			med[zoo.TaskImageClassification], med[zoo.TaskFaceDetection])
	}
}

func TestFineTuningStats(t *testing.T) {
	_, c21 := corpora(t)
	st := c21.FineTuning()
	if st.Uniques == 0 {
		t.Fatal("no uniques")
	}
	if st.SharingFrac <= 0 {
		t.Error("expected some fine-tuned relatives (paper: 9.02%)")
	}
	if st.SharingFrac > 0.5 {
		t.Errorf("sharing fraction = %.2f, implausibly high", st.SharingFrac)
	}
	if st.SmallDeltaFrac > st.SharingFrac {
		t.Error("small-delta models are a subset of sharing models")
	}
	if st.OnDeviceTraining != 0 {
		t.Error("no on-device training traces expected")
	}
}

func TestOptimisationStats(t *testing.T) {
	_, c21 := corpora(t)
	st := c21.Optimisations()
	if st.ClusteredModels != 0 || st.PrunedModels != 0 {
		t.Errorf("paper found no clustering/pruning, got %d/%d", st.ClusteredModels, st.PrunedModels)
	}
	if st.DequantizeFrac <= 0 || st.DequantizeFrac > 0.35 {
		t.Errorf("dequantize fraction = %.3f, want ~0.103", st.DequantizeFrac)
	}
	if st.Int8WeightFrac < st.DequantizeFrac {
		t.Errorf("int8 weights (%.3f) should be at least dequantize share (%.3f)",
			st.Int8WeightFrac, st.DequantizeFrac)
	}
	if st.MeanWeightSparsity <= 0.005 || st.MeanWeightSparsity > 0.10 {
		t.Errorf("mean sparsity = %.4f, want ~0.0315", st.MeanWeightSparsity)
	}
}

func TestTemporalDiff(t *testing.T) {
	c20, c21 := corpora(t)
	rows := TemporalDiff(c20, c21)
	if len(rows) == 0 {
		t.Fatal("no churn rows")
	}
	// COMMUNICATION must be the top net gainer (Figure 5).
	if rows[0].Category != "COMMUNICATION" {
		t.Errorf("top net gainer = %s, want COMMUNICATION (rows %+v)", rows[0].Category, rows[:3])
	}
	// LIFESTYLE should be among the biggest net losers.
	last := rows[len(rows)-1]
	if net := last.Added - last.Removed; net > 0 {
		t.Errorf("bottom category %s still net-positive (%d)", last.Category, net)
	}
}

func TestCloudAPIUsage(t *testing.T) {
	_, c21 := corpora(t)
	perAPI, google, aws, total := c21.CloudAPIUsage()
	if total == 0 {
		t.Fatal("no cloud apps detected")
	}
	if google <= aws {
		t.Errorf("google apps (%d) should dominate aws (%d)", google, aws)
	}
	if len(perAPI) == 0 {
		t.Fatal("no per-API counts")
	}
}

func TestAccelerationTraces(t *testing.T) {
	_, c21 := corpora(t)
	nnapi, xnnpack, snpe := c21.AccelerationTraces()
	if nnapi == 0 {
		t.Error("no NNAPI traces")
	}
	if xnnpack != 1 {
		t.Errorf("XNNPACK traces = %d, want 1", xnnpack)
	}
	if snpe == 0 {
		t.Error("no SNPE traces")
	}
}

func TestClassifyTaskDirect(t *testing.T) {
	cases := []struct {
		spec zoo.Spec
		want zoo.Task
	}{
		{zoo.Spec{Task: zoo.TaskFaceDetection, Seed: 3, Hinted: true}, zoo.TaskFaceDetection},
		{zoo.Spec{Task: zoo.TaskAutoComplete, Seed: 4, Hinted: true}, zoo.TaskAutoComplete},
		{zoo.Spec{Task: zoo.TaskSemanticSegmentation, Seed: 5, Hinted: true}, zoo.TaskSemanticSegmentation},
		{zoo.Spec{Task: zoo.TaskSoundRecognition, Seed: 6, Hinted: true}, zoo.TaskSoundRecognition},
	}
	for _, c := range cases {
		g, err := zoo.Build(c.spec)
		if err != nil {
			t.Fatal(err)
		}
		got, ok := ClassifyTask(g)
		if !ok || got != c.want {
			t.Errorf("classify(%s) = %s ok=%v, want %s", c.spec.Task, got, ok, c.want)
		}
	}
}

func TestClassifyUnhintedStillWorksOften(t *testing.T) {
	// Without name hints, structure votes should still identify common
	// tasks (io + ops voters agreeing).
	hits := 0
	total := 0
	for _, task := range []zoo.Task{zoo.TaskSemanticSegmentation, zoo.TaskAutoComplete, zoo.TaskTextRecognition, zoo.TaskObjectDetection} {
		g, err := zoo.Build(zoo.Spec{Task: task, Seed: int64(task) * 13})
		if err != nil {
			t.Fatal(err)
		}
		got, ok := ClassifyTask(g)
		total++
		if ok && got == task {
			hits++
		}
	}
	if hits < total/2 {
		t.Errorf("unhinted classification hit %d/%d, want at least half", hits, total)
	}
}

func TestClassifyAmbiguousAbstains(t *testing.T) {
	g, err := zoo.Build(zoo.Spec{Task: zoo.TaskObjectDetection, Seed: 77, Ambiguous: true})
	if err != nil {
		t.Fatal(err)
	}
	if task, ok := ClassifyTask(g); ok {
		// An ambiguous classifier-shaped net may fall to image
		// classification via io+ops agreement; anything else is a bug.
		if task != zoo.TaskImageClassification {
			t.Errorf("ambiguous model classified as %s", task)
		}
	}
}

func TestFingerprintArch(t *testing.T) {
	cases := []struct {
		spec zoo.Spec
		want zoo.Arch
	}{
		{zoo.Spec{Task: zoo.TaskObjectDetection, Seed: 81}, zoo.ArchFSSD},
		{zoo.Spec{Task: zoo.TaskFaceDetection, Seed: 82}, zoo.ArchBlazeFace},
		{zoo.Spec{Task: zoo.TaskSemanticSegmentation, Seed: 83}, zoo.ArchUNet},
		{zoo.Spec{Task: zoo.TaskAutoComplete, Seed: 84}, zoo.ArchEmbedLSTM},
		{zoo.Spec{Task: zoo.TaskTextRecognition, Seed: 85}, zoo.ArchCRNN},
		{zoo.Spec{Task: zoo.TaskImageClassification, Seed: 86}, zoo.ArchMobileNetV2},
		{zoo.Spec{Task: zoo.TaskTranslation, Seed: 87}, zoo.ArchSeq2Seq},
		{zoo.Spec{Task: zoo.TaskCrashDetection, Seed: 88}, zoo.ArchSensorMLP},
	}
	for _, c := range cases {
		g, err := zoo.Build(c.spec) // unhinted names: structure must carry it
		if err != nil {
			t.Fatal(err)
		}
		if got := FingerprintArch(g); got != c.want {
			t.Errorf("%s: fingerprint = %s, want %s", c.spec.Task, got, c.want)
		}
	}
}

func TestFingerprintArchNameHints(t *testing.T) {
	g, err := zoo.Build(zoo.Spec{Task: zoo.TaskFaceDetection, Seed: 89, Hinted: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := FingerprintArch(g); got != zoo.ArchBlazeFace {
		t.Fatalf("hinted blazeface fingerprint = %s", got)
	}
}

func TestArchitectureBreakdown(t *testing.T) {
	_, c21 := corpora(t)
	rows := c21.ArchitectureBreakdown()
	if len(rows) == 0 {
		t.Fatal("no architecture rows")
	}
	// FSSD must be the most shipped architecture (Section 4.5: object
	// detection dominates and FSSD is its most popular family).
	if rows[0].Arch != zoo.ArchFSSD {
		t.Errorf("top architecture = %s, want fssd (rows %+v)", rows[0].Arch, rows[:3])
	}
	totalInstances := 0
	for _, r := range rows {
		totalInstances += r.Instances
		if r.Uniques > r.Instances {
			t.Errorf("%s: uniques %d exceed instances %d", r.Arch, r.Uniques, r.Instances)
		}
	}
	if totalInstances != c21.TotalModels() {
		t.Fatalf("instances sum %d != corpus total %d", totalInstances, c21.TotalModels())
	}
}
