package analysis

import (
	"context"
	"sort"
	"sync"

	"github.com/gaugenn/gaugenn/internal/extract"
	"github.com/gaugenn/gaugenn/internal/nn/graph"
)

// ShardedCorpus ingests one snapshot's extraction reports concurrently.
// Each app carries a global crawl index (its deterministic position in
// chart order); the index picks the shard, so the contents of every shard
// — and therefore the merged corpus — depend only on the index stream,
// never on worker scheduling. Per-checksum analysis goes through a shared
// UniqueCache, so shards (and, when the cache is shared wider, snapshots)
// never re-profile a duplicate model.
//
// AddReport/AddApp are safe for concurrent use. Merge is called once,
// after ingestion completes.
type ShardedCorpus struct {
	label      string
	keepGraphs bool
	cache      *UniqueCache
	shards     []*corpusShard
}

type corpusShard struct {
	corpus *Corpus

	mu sync.Mutex
	// appIdx records the global index of each ingested app, parallel to
	// corpus.Apps; recIdx likewise keys corpus.Records for the merge sort.
	appIdx []int
	recIdx []recKey
}

// recKey orders merged records: by owning app, then by the record's
// position inside that app's report (reports list models in path order).
type recKey struct {
	app int
	pos int
}

// NewShardedCorpus creates a shard set. shards is clamped to >= 1; cache
// may be shared across snapshots (nil allocates a private one).
func NewShardedCorpus(label string, keepGraphs bool, shards int, cache *UniqueCache) *ShardedCorpus {
	if shards < 1 {
		shards = 1
	}
	if cache == nil {
		cache = NewUniqueCache(keepGraphs)
	}
	s := &ShardedCorpus{label: label, keepGraphs: keepGraphs, cache: cache}
	for i := 0; i < shards; i++ {
		s.shards = append(s.shards, &corpusShard{
			corpus: NewCorpusWithCache(label, keepGraphs, cache),
		})
	}
	return s
}

func (s *ShardedCorpus) shardFor(idx int) *corpusShard {
	if idx < 0 {
		idx = -idx
	}
	return s.shards[idx%len(s.shards)]
}

// AddReport ingests one app's extraction report under its global index.
// ctx bounds the per-checksum analysis waits (see UniqueCache.get).
func (s *ShardedCorpus) AddReport(ctx context.Context, idx int, category string, rep *extract.Report) error {
	// Warm the per-checksum cache before taking the shard lock, so one
	// app's profiling never serialises another app's ingest into the same
	// shard.
	for _, m := range rep.Models {
		if _, err := s.cache.get(ctx, m); err != nil {
			return err
		}
	}
	sh := s.shardFor(idx)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if err := sh.corpus.AddReportContext(ctx, category, rep); err != nil {
		return err
	}
	sh.appIdx = append(sh.appIdx, idx)
	for pos := range rep.Models {
		sh.recIdx = append(sh.recIdx, recKey{app: idx, pos: pos})
	}
	return nil
}

// AddApp ingests an app summary with no extraction report (no ML signals).
func (s *ShardedCorpus) AddApp(idx int, info AppInfo) {
	sh := s.shardFor(idx)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.corpus.AddApp(info)
	sh.appIdx = append(sh.appIdx, idx)
}

// Merge folds every shard into a single Corpus whose Apps and Records
// follow global index order — byte-identical output regardless of the
// shard count or worker interleaving that produced the shards.
func (s *ShardedCorpus) Merge() *Corpus {
	out := NewCorpusWithCache(s.label, s.keepGraphs, s.cache)

	type idxApp struct {
		idx int
		app AppInfo
	}
	type idxRec struct {
		key recKey
		rec Record
	}
	var apps []idxApp
	var recs []idxRec
	for _, sh := range s.shards {
		sh.mu.Lock()
		for i, a := range sh.corpus.Apps {
			apps = append(apps, idxApp{idx: sh.appIdx[i], app: a})
		}
		for i, r := range sh.corpus.Records {
			recs = append(recs, idxRec{key: sh.recIdx[i], rec: r})
		}
		for sum, u := range sh.corpus.Uniques {
			if have, ok := out.Uniques[sum]; ok {
				have.Instances += u.Instances
				if have.Graph == nil && u.Graph != nil {
					have.Graph = u.Graph
				}
			} else {
				cp := *u
				out.Uniques[sum] = &cp
			}
		}
		sh.mu.Unlock()
	}
	sort.Slice(apps, func(i, j int) bool { return apps[i].idx < apps[j].idx })
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].key.app != recs[j].key.app {
			return recs[i].key.app < recs[j].key.app
		}
		return recs[i].key.pos < recs[j].key.pos
	})
	out.Apps = make([]AppInfo, len(apps))
	for i, a := range apps {
		out.Apps[i] = a.app
	}
	out.Records = make([]Record, len(recs))
	framework := map[graph.Checksum]bool{}
	for i, r := range recs {
		out.Records[i] = r.rec
		out.noteRecordLocked(r.rec)
		// Shard-local first-seen Framework depends on scheduling (twins
		// ship one checksum under several formats); reassign it from the
		// globally-first record so merges are worker-count-independent.
		if !framework[r.rec.Checksum] {
			framework[r.rec.Checksum] = true
			if u := out.Uniques[r.rec.Checksum]; u != nil {
				u.Framework = r.rec.Framework
			}
		}
	}
	return out
}
