package analysis

import (
	"sort"

	"github.com/gaugenn/gaugenn/internal/nn/graph"
	"github.com/gaugenn/gaugenn/internal/nn/zoo"
)

// DatasetStats reproduces a Table 2 column.
type DatasetStats struct {
	Label          string
	TotalApps      int
	AppsWithFw     int
	AppsWithModels int
	TotalModels    int
	UniqueModels   int
}

// Dataset computes the Table 2 column for the corpus.
func (c *Corpus) Dataset() DatasetStats {
	return DatasetStats{
		Label:          c.Label,
		TotalApps:      len(c.Apps),
		AppsWithFw:     c.AppsWithFrameworks(),
		AppsWithModels: c.AppsWithModels(),
		TotalModels:    c.TotalModels(),
		UniqueModels:   c.UniqueModels(),
	}
}

// TaskCount is one Table 3 row.
type TaskCount struct {
	Task  zoo.Task
	Count int
}

// TaskBreakdown reproduces Table 3: instance counts per task (Figure 7's
// extra tasks folded into their Table 3 rows when fold is true), plus the
// identified fraction.
func (c *Corpus) TaskBreakdown(fold bool) (rows []TaskCount, identified int) {
	counts := map[zoo.Task]int{}
	for _, r := range c.Records {
		u := c.Uniques[r.Checksum]
		t := u.Task
		if fold {
			t = t.TableRow()
		}
		counts[t]++
		if u.Task != zoo.TaskUnknown {
			identified++
		}
	}
	for t, n := range counts {
		if t == zoo.TaskUnknown {
			continue
		}
		rows = append(rows, TaskCount{Task: t, Count: n})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Count != rows[j].Count {
			return rows[i].Count > rows[j].Count
		}
		return rows[i].Task < rows[j].Task
	})
	return rows, identified
}

// FrameworkByCategory reproduces Figure 4: model-instance counts per
// (category, framework).
func (c *Corpus) FrameworkByCategory() map[string]map[string]int {
	out := map[string]map[string]int{}
	for _, r := range c.Records {
		m, ok := out[r.Category]
		if !ok {
			m = map[string]int{}
			out[r.Category] = m
		}
		m[r.Framework]++
	}
	return out
}

// FrameworkTotals counts instances per framework (Section 4.3).
func (c *Corpus) FrameworkTotals() map[string]int {
	out := map[string]int{}
	for _, r := range c.Records {
		out[r.Framework]++
	}
	return out
}

// LayerComposition reproduces Figure 6: for each modality, the fraction of
// layers in each Figure 6 class, aggregated over model instances.
func (c *Corpus) LayerComposition() map[graph.Modality]map[graph.OpClass]float64 {
	counts := map[graph.Modality]map[graph.OpClass]int{}
	totals := map[graph.Modality]int{}
	for _, r := range c.Records {
		u := c.Uniques[r.Checksum]
		m := u.Modality
		if counts[m] == nil {
			counts[m] = map[graph.OpClass]int{}
		}
		for cls, n := range u.Profile.ClassHistogram() {
			counts[m][cls] += n
			totals[m] += n
		}
	}
	out := map[graph.Modality]map[graph.OpClass]float64{}
	for m, classes := range counts {
		out[m] = map[graph.OpClass]float64{}
		for cls, n := range classes {
			out[m][cls] = float64(n) / float64(totals[m])
		}
	}
	return out
}

// CostDistribution is the Figure 7 per-task summary of FLOPs and params.
type CostDistribution struct {
	Task        zoo.Task
	Models      int
	FLOPsMin    float64
	FLOPsMedian float64
	FLOPsMax    float64
	ParamMin    float64
	ParamMedian float64
	ParamMax    float64
}

// CostByTask reproduces Figure 7 over unique models.
func (c *Corpus) CostByTask() []CostDistribution {
	flops := map[zoo.Task][]float64{}
	params := map[zoo.Task][]float64{}
	for _, u := range c.SortedUniques() {
		if u.Task == zoo.TaskUnknown {
			continue
		}
		flops[u.Task] = append(flops[u.Task], float64(u.Profile.FLOPs))
		params[u.Task] = append(params[u.Task], float64(u.Profile.Params))
	}
	var out []CostDistribution
	for t, fs := range flops {
		ps := params[t]
		sort.Float64s(fs)
		sort.Float64s(ps)
		out = append(out, CostDistribution{
			Task:        t,
			Models:      len(fs),
			FLOPsMin:    fs[0],
			FLOPsMedian: fs[len(fs)/2],
			FLOPsMax:    fs[len(fs)-1],
			ParamMin:    ps[0],
			ParamMedian: ps[len(ps)/2],
			ParamMax:    ps[len(ps)-1],
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].FLOPsMedian > out[j].FLOPsMedian })
	return out
}

// FineTuningStats reproduces the Section 4.5 layer-sharing analysis over
// unique models: the fraction sharing >= 20% of layer weights with another
// unique model, and the fraction differing from some other model in at
// most 3 layers.
type FineTuningStats struct {
	Uniques          int
	SharingFrac      float64 // share >= 20% of layers with another unique
	SmallDeltaFrac   float64 // differ in <= 3 layers from another unique
	OnDeviceTraining int     // traces of on-device fine-tuning (none found)
}

// FineTuning computes FineTuningStats. Cost is O(U^2) in unique models
// with cheap set intersections, matching the study's scale (~318 uniques).
func (c *Corpus) FineTuning() FineTuningStats {
	uniques := c.SortedUniques()
	st := FineTuningStats{Uniques: len(uniques)}
	for _, a := range c.Apps {
		if a.OnDeviceTraining {
			st.OnDeviceTraining++
		}
	}
	if len(uniques) < 2 {
		return st
	}
	sets := make([]map[graph.Checksum]int, len(uniques))
	for i, u := range uniques {
		sets[i] = map[graph.Checksum]int{}
		for _, s := range u.LayerSums {
			sets[i][s]++
		}
	}
	sharing := 0
	smallDelta := 0
	for i, u := range uniques {
		bestShare := 0.0
		bestDiff := 1 << 30
		for j := range uniques {
			if i == j {
				continue
			}
			shared := 0
			for s, n := range sets[i] {
				if m := sets[j][s]; m > 0 {
					if m < n {
						shared += m
					} else {
						shared += n
					}
				}
			}
			share := float64(shared) / float64(len(u.LayerSums))
			if share > bestShare {
				bestShare = share
			}
			diff := len(u.LayerSums) - shared
			if extra := len(uniques[j].LayerSums) - shared; extra > diff {
				diff = extra
			}
			if diff < bestDiff {
				bestDiff = diff
			}
		}
		// Exact duplicates cannot occur among uniques (distinct checksums),
		// so any full share means fine-tuned weights elsewhere.
		if bestShare >= 0.20 && bestShare < 1.0 {
			sharing++
			if bestDiff <= 3 {
				smallDelta++
			}
		}
	}
	st.SharingFrac = float64(sharing) / float64(len(uniques))
	st.SmallDeltaFrac = float64(smallDelta) / float64(len(uniques))
	return st
}

// OptimisationStats reproduces Section 6.1's adoption scan.
type OptimisationStats struct {
	Models               int
	ClusteredModels      int     // cluster_ prefixed layers
	PrunedModels         int     // prune_ prefixed layers
	DequantizeFrac       float64 // models with dequantize layers
	Int8WeightFrac       float64 // models with majority-int8 weights
	Int8ActivationFrac   float64 // models with int8 activations
	HybridA16W8Frac      float64 // models with int8 weights + int16 activations (paper: 0)
	MeanWeightSparsity   float64 // near-zero weight fraction (mean)
	MedianWeightSparsity float64
}

// Optimisations computes OptimisationStats over model instances (the
// paper's percentages are of the model population, duplicates included).
func (c *Corpus) Optimisations() OptimisationStats {
	var st OptimisationStats
	var sparsities []float64
	var sparsitySum float64
	for _, r := range c.Records {
		u := c.Uniques[r.Checksum]
		st.Models++
		if u.Weights.ClusteredLayers > 0 {
			st.ClusteredModels++
		}
		if u.Weights.PrunedLayers > 0 {
			st.PrunedModels++
		}
		if u.Weights.DequantizeOps > 0 {
			st.DequantizeFrac++
		}
		if u.Weights.Int8WeightFraction() > 0.5 {
			st.Int8WeightFrac++
		}
		if u.Weights.Int8Activations {
			st.Int8ActivationFrac++
		}
		if u.Weights.Int16Activations && u.Weights.Int8WeightFraction() > 0.5 {
			st.HybridA16W8Frac++
		}
		s := u.Weights.SparsityFraction()
		sparsities = append(sparsities, s)
		sparsitySum += s
	}
	if st.Models > 0 {
		st.DequantizeFrac /= float64(st.Models)
		st.Int8WeightFrac /= float64(st.Models)
		st.Int8ActivationFrac /= float64(st.Models)
		st.HybridA16W8Frac /= float64(st.Models)
		st.MeanWeightSparsity = sparsitySum / float64(st.Models)
		sort.Float64s(sparsities)
		st.MedianWeightSparsity = sparsities[len(sparsities)/2]
	}
	return st
}

// ChurnRow is one Figure 5 bar pair.
type ChurnRow struct {
	Category string
	Added    int
	Removed  int
}

// TemporalDiff reproduces Figure 5: per-category model instances added and
// removed between two snapshots, matched by checksum multiset.
func TemporalDiff(old, new_ *Corpus) []ChurnRow {
	type key struct {
		cat string
		sum graph.Checksum
	}
	oldCount := map[key]int{}
	for _, r := range old.Records {
		oldCount[key{r.Category, r.Checksum}]++
	}
	newCount := map[key]int{}
	for _, r := range new_.Records {
		newCount[key{r.Category, r.Checksum}]++
	}
	added := map[string]int{}
	removed := map[string]int{}
	for k, n := range newCount {
		if d := n - oldCount[k]; d > 0 {
			added[k.cat] += d
		}
	}
	for k, n := range oldCount {
		if d := n - newCount[k]; d > 0 {
			removed[k.cat] += d
		}
	}
	cats := map[string]bool{}
	for c := range added {
		cats[c] = true
	}
	for c := range removed {
		cats[c] = true
	}
	var out []ChurnRow
	for c := range cats {
		out = append(out, ChurnRow{Category: c, Added: added[c], Removed: removed[c]})
	}
	sort.Slice(out, func(i, j int) bool {
		di := out[i].Added - out[i].Removed
		dj := out[j].Added - out[j].Removed
		if di != dj {
			return di > dj
		}
		return out[i].Category < out[j].Category
	})
	return out
}

// CloudAPIUsage reproduces Figure 15: apps per cloud API family plus the
// provider-level totals.
func (c *Corpus) CloudAPIUsage() (perAPI map[string]int, googleApps, awsApps, totalApps int) {
	perAPI = map[string]int{}
	for _, a := range c.Apps {
		if len(a.CloudAPIs) == 0 {
			continue
		}
		totalApps++
		if a.UsesGoogleCloud {
			googleApps++
		}
		if a.UsesAWSCloud {
			awsApps++
		}
		for _, api := range a.CloudAPIs {
			perAPI[api]++
		}
	}
	return perAPI, googleApps, awsApps, totalApps
}

// AccelerationTraces reproduces Section 6.3's adoption counts.
func (c *Corpus) AccelerationTraces() (nnapi, xnnpack, snpe int) {
	for _, a := range c.Apps {
		if a.UsesNNAPI {
			nnapi++
		}
		if a.UsesXNNPACK {
			xnnpack++
		}
		if a.UsesSNPE {
			snpe++
		}
	}
	return
}
