package fleet

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"github.com/gaugenn/gaugenn/internal/bench"
	"github.com/gaugenn/gaugenn/internal/nn/zoo"
	"github.com/gaugenn/gaugenn/internal/power"
	"github.com/gaugenn/gaugenn/internal/soc"
)

// fakeRunner executes jobs in-process (no TCP choreography) and can be
// told to fail at the transport level — the crash-mid-job cases the
// scheduler must survive.
type fakeRunner struct {
	id    string
	model string
	dev   *soc.Device
	agent *bench.Agent

	mu            sync.Mutex
	calls         int
	failRemaining int // -1: always fail
}

func newFakeRunner(t *testing.T, id, model string, failRemaining int) *fakeRunner {
	t.Helper()
	dev, err := soc.NewDevice(model)
	if err != nil {
		t.Fatal(err)
	}
	return &fakeRunner{
		id: id, model: model, dev: dev,
		agent:         bench.NewAgent(dev, nil, power.NewMonitor()),
		failRemaining: failRemaining,
	}
}

func (r *fakeRunner) ID() string          { return r.id }
func (r *fakeRunner) DeviceModel() string { return r.model }
func (r *fakeRunner) Close() error        { return nil }

func (r *fakeRunner) Cooldown(ctx context.Context, targetJ float64) error {
	env := r.dev.Envelope()
	if dt := r.dev.Thermal.CooldownNeeded(env, targetJ); dt > 0 {
		r.dev.Idle(dt, true, nil)
	}
	return nil
}

func (r *fakeRunner) Run(ctx context.Context, job bench.Job) (bench.JobResult, error) {
	r.mu.Lock()
	r.calls++
	fail := r.failRemaining != 0
	if r.failRemaining > 0 {
		r.failRemaining--
	}
	r.mu.Unlock()
	if fail {
		return bench.JobResult{}, fmt.Errorf("agent %s crashed mid-job", r.id)
	}
	return r.agent.ExecuteJob(job), nil
}

func failureMatrix(t *testing.T, device string) Matrix {
	t.Helper()
	var models []ModelSpec
	for i, task := range []zoo.Task{zoo.TaskKeywordDetection, zoo.TaskCrashDetection} {
		ms, err := ZooModel(zoo.Spec{Task: task, Seed: int64(30 + i)})
		if err != nil {
			t.Fatal(err)
		}
		models = append(models, ms)
	}
	return Matrix{
		Models:   models,
		Devices:  []string{device},
		Backends: []string{"cpu"},
		Threads:  4,
		Warmup:   1,
		Runs:     2,
	}
}

func TestCrashMidJobRequeuesOnAnotherDevice(t *testing.T) {
	bad := newFakeRunner(t, "bad", "Q845", -1)
	good := newFakeRunner(t, "good", "Q845", 0)
	pool, err := NewPool(bad, good)
	if err != nil {
		t.Fatal(err)
	}
	agg, err := pool.Run(context.Background(), failureMatrix(t, "Q845"), Config{})
	if err != nil {
		t.Fatalf("healthy replica must absorb the crashes: %v", err)
	}
	retried := 0
	for _, ur := range agg.Units() {
		if ur.Err != nil || ur.Result.Error != "" {
			t.Fatalf("unit %s did not recover: %v %q", ur.Unit.Job.ID, ur.Err, ur.Result.Error)
		}
		if ur.Runner != "good" {
			t.Fatalf("unit %s served by %s, want the healthy replica", ur.Unit.Job.ID, ur.Runner)
		}
		if ur.Attempts > 1 {
			retried++
			if ur.Attempts != 2 {
				t.Fatalf("unit %s took %d attempts", ur.Unit.Job.ID, ur.Attempts)
			}
		}
	}
	if bad.calls > 0 && retried == 0 {
		t.Fatal("crashing runner claimed jobs but nothing recorded a retry")
	}
}

func TestTransientCrashRecoversOnSameDevice(t *testing.T) {
	// A single flaky rig (fails once, then works): the job requeues and,
	// with nobody else eligible... is exhausted. With MaxAttempts allowing
	// a second try on a second rig, the retry lands there.
	flaky := newFakeRunner(t, "flaky", "Q855", 1)
	backup := newFakeRunner(t, "backup", "Q855", 0)
	pool, err := NewPool(flaky, backup)
	if err != nil {
		t.Fatal(err)
	}
	m := failureMatrix(t, "Q855")
	m.Models = m.Models[:1]
	agg, err := pool.Run(context.Background(), m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ur := agg.Units()[0]
	if ur.Err != nil || ur.Result.Error != "" {
		t.Fatalf("did not recover: %v %q", ur.Err, ur.Result.Error)
	}
}

func TestExhaustedRetriesSurfaceTypedError(t *testing.T) {
	bad1 := newFakeRunner(t, "bad1", "Q845", -1)
	bad2 := newFakeRunner(t, "bad2", "Q845", -1)
	pool, err := NewPool(bad1, bad2)
	if err != nil {
		t.Fatal(err)
	}
	m := failureMatrix(t, "Q845")
	m.Models = m.Models[:1]
	agg, err := pool.Run(context.Background(), m, Config{})
	if err == nil {
		t.Fatal("all-runners-dead must error")
	}
	var ex *ExhaustedError
	if !errors.As(err, &ex) {
		t.Fatalf("want *ExhaustedError, got %T: %v", err, err)
	}
	if ex.Device != "Q845" || ex.Attempts != 2 || len(ex.Tried) != 2 {
		t.Fatalf("exhausted detail: %+v", ex)
	}
	if ex.Unwrap() == nil {
		t.Fatal("exhausted error must carry the last transport error")
	}
	// The aggregator still accounts for the cell.
	failed := agg.FailedUnits()
	if len(failed) != 1 || failed[0].Err == nil {
		t.Fatalf("failed units = %+v", failed)
	}
	// The JSON records the failure without breaking the file.
	if _, jerr := agg.ResultsJSON(); jerr != nil {
		t.Fatal(jerr)
	}
}

func TestFailedRunsStayByteIdenticalAcrossPoolSizes(t *testing.T) {
	// Exhausted cells must not leak runner IDs or attempt counts into the
	// results file: an all-dead run aggregates identically whether one or
	// three rigs failed the job.
	m := failureMatrix(t, "Q845")
	runDead := func(n int) []byte {
		var runners []Runner
		for i := 0; i < n; i++ {
			runners = append(runners, newFakeRunner(t, fmt.Sprintf("dead%d", i), "Q845", -1))
		}
		pool, err := NewPool(runners...)
		if err != nil {
			t.Fatal(err)
		}
		agg, err := pool.Run(context.Background(), m, Config{})
		if err == nil {
			t.Fatal("all-dead pool must error")
		}
		js, err := agg.ResultsJSON()
		if err != nil {
			t.Fatal(err)
		}
		return js
	}
	if string(runDead(1)) != string(runDead(3)) {
		t.Fatal("failure-path results JSON depends on pool size")
	}
}

func TestMaxAttemptsCapsRetries(t *testing.T) {
	runners := make([]Runner, 4)
	for i := range runners {
		runners[i] = newFakeRunner(t, fmt.Sprintf("bad%d", i), "Q845", -1)
	}
	pool, err := NewPool(runners...)
	if err != nil {
		t.Fatal(err)
	}
	m := failureMatrix(t, "Q845")
	m.Models = m.Models[:1]
	_, err = pool.Run(context.Background(), m, Config{MaxAttempts: 2})
	var ex *ExhaustedError
	if !errors.As(err, &ex) {
		t.Fatalf("want *ExhaustedError, got %v", err)
	}
	if ex.Attempts != 2 {
		t.Fatalf("attempts = %d, want the MaxAttempts cap of 2", ex.Attempts)
	}
}

func TestNoDeviceInPoolSurfacesTypedError(t *testing.T) {
	good := newFakeRunner(t, "good", "Q845", 0)
	pool, err := NewPool(good)
	if err != nil {
		t.Fatal(err)
	}
	_, err = pool.Run(context.Background(), failureMatrix(t, "Q855"), Config{})
	var nd *NoDeviceError
	if !errors.As(err, &nd) {
		t.Fatalf("want *NoDeviceError, got %v", err)
	}
	if nd.Device != "Q855" {
		t.Fatalf("device = %s", nd.Device)
	}
}

func TestInJobErrorsAreResultsNotRetries(t *testing.T) {
	// SNPE on a non-Qualcomm device fails inside the agent: that is a
	// measurement outcome, not a transport crash, so it must not requeue.
	good := newFakeRunner(t, "good", "A20", 0)
	pool, err := NewPool(good)
	if err != nil {
		t.Fatal(err)
	}
	m := failureMatrix(t, "A20")
	m.Models = m.Models[:1]
	// Force-build a unit whose backend the expansion would have skipped:
	// feed the job directly through the scheduler path via a matrix whose
	// backend is feasible, then check a garbage model instead.
	m.Models[0].Data = []byte("not a model")
	agg, err := pool.Run(context.Background(), m, Config{})
	if err != nil {
		t.Fatalf("in-job failure must not surface as scheduler error: %v", err)
	}
	ur := agg.Units()[0]
	if ur.Err != nil {
		t.Fatalf("transport error recorded for in-job failure: %v", ur.Err)
	}
	if ur.Result.Error == "" || ur.Attempts != 1 {
		t.Fatalf("want single-attempt in-job error, got %+v", ur)
	}
}

func TestPoolRejectsDuplicateRunnerIDs(t *testing.T) {
	a := newFakeRunner(t, "dup", "Q845", 0)
	b := newFakeRunner(t, "dup", "Q855", 0)
	if _, err := NewPool(a, b); err == nil {
		t.Fatal("duplicate runner ids must be rejected")
	}
	if _, err := NewPool(); err == nil {
		t.Fatal("empty pool must be rejected")
	}
}
