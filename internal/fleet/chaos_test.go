package fleet

// Scheduler-level chaos: circuit-breaker retirement, stranded-unit
// accounting, and retry-policy pacing, driven through the same fakeRunner
// the transport-failure suite uses.

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/gaugenn/gaugenn/internal/errs"
	"github.com/gaugenn/gaugenn/internal/retry"
	"github.com/gaugenn/gaugenn/internal/testutil"
)

func TestBreakerRetiresFlakyRigAndFailsOver(t *testing.T) {
	dead := newFakeRunner(t, "rig-dead", "Q845", -1) // every job fails
	good := newFakeRunner(t, "rig-good", "Q845", 0)
	pool, err := NewPool(dead, good)
	if err != nil {
		t.Fatal(err)
	}
	agg, err := pool.Run(context.Background(), failureMatrix(t, "Q845"), Config{
		NoCooldown: true,
		Breaker:    retry.NewBreaker(2),
	})
	if err != nil {
		t.Fatalf("healthy rig should absorb the fail-over: %v", err)
	}
	for _, ur := range agg.Units() {
		if ur.Err != nil {
			t.Fatalf("unit %d: %v", ur.Unit.Index, ur.Err)
		}
		if ur.Unit.Skip == "" && ur.Runner != "rig-good" {
			t.Fatalf("unit %d served by %s, want rig-good", ur.Unit.Index, ur.Runner)
		}
	}
	dead.mu.Lock()
	calls := dead.calls
	dead.mu.Unlock()
	if calls > 2 {
		t.Fatalf("retired rig was called %d times, breaker threshold is 2", calls)
	}
}

func TestBreakerStrandedUnitsSurfaceTyped(t *testing.T) {
	dead := newFakeRunner(t, "rig-dead", "Q845", -1)
	pool, err := NewPool(dead)
	if err != nil {
		t.Fatal(err)
	}
	m := failureMatrix(t, "Q845")
	var units []UnitResult
	agg, err := pool.Run(context.Background(), m, Config{
		NoCooldown: true,
		Breaker:    retry.NewBreaker(1),
		OnUnit:     func(ur UnitResult) { units = append(units, ur) },
	})
	if err == nil {
		t.Fatal("a fully-dead pool must surface an error")
	}
	if !errors.Is(err, errs.ErrExhausted) {
		t.Fatalf("err = %v, want errs.ErrExhausted on the chain", err)
	}
	expanded, _ := m.Expand()
	if len(agg.Units()) != len(expanded) {
		t.Fatalf("aggregator holds %d units, want all %d (stranded cells must not vanish)",
			len(agg.Units()), len(expanded))
	}
	tried, stranded := 0, 0
	for _, ur := range units {
		if ur.Unit.Skip != "" {
			continue
		}
		var ex *ExhaustedError
		if !errors.As(ur.Err, &ex) {
			t.Fatalf("unit %d error %v is not an ExhaustedError", ur.Unit.Index, ur.Err)
		}
		if ex.Attempts > 0 {
			tried++
		} else {
			stranded++
		}
	}
	if tried != 1 {
		t.Fatalf("tried = %d, want exactly 1 (threshold-1 breaker retires after the first failure)", tried)
	}
	if stranded == 0 {
		t.Fatal("no stranded units surfaced — the sweep is not running")
	}
}

func TestRetryAttemptsCapScheduling(t *testing.T) {
	// Both rigs would fail the first unit once; with the policy's single
	// attempt as the cap, no fail-over to the second rig happens.
	r1 := newFakeRunner(t, "rig-1", "Q845", -1)
	r2 := newFakeRunner(t, "rig-2", "Q845", 0)
	pool, err := NewPool(r1, r2)
	if err != nil {
		t.Fatal(err)
	}
	var exhausted []*ExhaustedError
	_, err = pool.Run(context.Background(), failureMatrix(t, "Q845"), Config{
		NoCooldown: true,
		Retry:      &retry.Policy{Attempts: 1},
		OnUnit: func(ur UnitResult) {
			var ex *ExhaustedError
			if errors.As(ur.Err, &ex) {
				exhausted = append(exhausted, ex)
			}
		},
	})
	for _, ex := range exhausted {
		if ex.Attempts != 1 {
			t.Fatalf("unit exhausted after %d attempts, want 1 (Retry.Attempts must cap scheduling)", ex.Attempts)
		}
	}
	if err == nil && len(exhausted) == 0 {
		// Scheduling is racy in *which* rig claims first; only assert the
		// cap when the dead rig got there. A clean run means rig-2 claimed
		// everything — rerun deterministically by forcing rig-1 only.
		pool2, _ := NewPool(newFakeRunner(t, "rig-solo", "Q845", -1))
		_, err2 := pool2.Run(context.Background(), failureMatrix(t, "Q845"), Config{
			NoCooldown: true,
			Retry:      &retry.Policy{Attempts: 1},
		})
		if !errors.Is(err2, errs.ErrExhausted) {
			t.Fatalf("solo dead rig: %v, want ErrExhausted", err2)
		}
	}
}

func TestRetryPacingIsCancellable(t *testing.T) {
	testutil.NoLeakedGoroutines(t)
	dead := newFakeRunner(t, "rig-dead", "Q845", -1)
	pool, err := NewPool(dead)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = pool.Run(ctx, failureMatrix(t, "Q845"), Config{
		NoCooldown: true,
		// Hour-long backoff: only cancellation can end this promptly.
		Retry: &retry.Policy{Attempts: 100, BaseDelay: time.Hour, Multiplier: 1},
	})
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("cancelled run took %v — pacing sleep ignored the context", elapsed)
	}
	if err == nil {
		t.Fatal("cancelled run returned nil error")
	}
}
