package fleet

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"

	"github.com/gaugenn/gaugenn/internal/bench"
	"github.com/gaugenn/gaugenn/internal/errs"
	"github.com/gaugenn/gaugenn/internal/event"
	"github.com/gaugenn/gaugenn/internal/obs"
	"github.com/gaugenn/gaugenn/internal/retry"
)

// NoDeviceError reports a matrix device model with no runner in the pool.
// It matches the errs.ErrNoDevice sentinel under errors.Is.
type NoDeviceError struct {
	Device string
}

func (e *NoDeviceError) Error() string {
	return fmt.Sprintf("fleet: no runner in pool serves device model %s", e.Device)
}

// Is matches the typed error against the public sentinel.
func (e *NoDeviceError) Is(target error) bool { return target == errs.ErrNoDevice }

// ExhaustedError reports a job whose every scheduling attempt failed at
// the transport level: each tried runner was excluded in turn until no
// eligible device of the model remained (or the attempt cap was hit).
// It matches the errs.ErrExhausted sentinel under errors.Is.
type ExhaustedError struct {
	JobID    string
	Device   string
	Attempts int
	Tried    []string // runner IDs in attempt order
	Last     error
}

func (e *ExhaustedError) Error() string {
	return fmt.Sprintf("fleet: job %s exhausted %d attempt(s) on %s runners [%s]: %v",
		e.JobID, e.Attempts, e.Device, strings.Join(e.Tried, " "), e.Last)
}

func (e *ExhaustedError) Unwrap() error { return e.Last }

// Is matches the typed error against the public sentinel.
func (e *ExhaustedError) Is(target error) bool { return target == errs.ErrExhausted }

// Config tunes one Pool.Run.
type Config struct {
	// MaxAttempts caps scheduling attempts per job (0 = one attempt per
	// runner of the job's device model, or Retry.Attempts when a policy
	// is set).
	MaxAttempts int
	// Retry paces a runner after transport failures: before its next
	// claim the worker sleeps the policy's backoff for its consecutive
	// failure count (ctx-aware), so a glitching rig stops hammering its
	// device. Nil keeps the legacy immediate-retry pacing. The policy's
	// Attempts also caps per-unit scheduling attempts when MaxAttempts is
	// unset.
	Retry *retry.Policy
	// Breaker, when non-nil, circuit-breaks per runner ID: a rig whose
	// consecutive transport failures reach the threshold is retired from
	// the run (its worker exits; pending units fail over to surviving
	// rigs, or surface as ExhaustedErrors when none remain).
	Breaker *retry.Breaker
	// NoCooldown skips thermal pacing before each job. The default
	// (pacing on) cools the device to CooldownTargetJ so within-job
	// throttling is measured deliberately, not inherited from the queue.
	NoCooldown bool
	// CooldownTargetJ is the stored-heat target of the pre-job cooldown
	// (0 = fully cold, the deterministic baseline).
	CooldownTargetJ float64
	// OnUnit, when non-nil, streams each unit result as it completes
	// (including skipped cells). Called from runner goroutines.
	OnUnit func(UnitResult)
	// OnEvent, when non-nil, receives the run's typed progress stream —
	// one StageStart/StageProgress/StageDone sequence under the "fleet"
	// stage, counting every matrix cell (skipped cells included). Called
	// from runner goroutines; handlers must be safe for concurrent use.
	OnEvent func(event.Event)
}

// UnitResult is the outcome of one matrix cell.
type UnitResult struct {
	Unit   Unit
	Result bench.JobResult
	// Runner and Attempts describe scheduling (which rig served the cell,
	// after how many tries); they never reach the deterministic output.
	Runner   string
	Attempts int
	// Err is a transport-level failure after retries (*ExhaustedError);
	// in-job failures stay in Result.Error, as the bench layer reports
	// them.
	Err error
}

// Pool is a set of runners the scheduler dispatches onto, grouped by the
// device model they serve.
type Pool struct {
	runners []Runner
	byModel map[string][]Runner
}

// NewPool groups runners by device model. Runner IDs must be unique.
func NewPool(runners ...Runner) (*Pool, error) {
	if len(runners) == 0 {
		return nil, fmt.Errorf("fleet: pool needs at least one runner")
	}
	p := &Pool{byModel: map[string][]Runner{}}
	seen := map[string]bool{}
	for _, r := range runners {
		if seen[r.ID()] {
			return nil, fmt.Errorf("fleet: duplicate runner id %q", r.ID())
		}
		seen[r.ID()] = true
		p.runners = append(p.runners, r)
		p.byModel[r.DeviceModel()] = append(p.byModel[r.DeviceModel()], r)
	}
	return p, nil
}

// NewLocalPool builds an in-process pool with `replicas` rigs per device
// model — the multi-device lab in one process. Runner IDs are "<model>#i".
// replicas must be positive: a caller wanting a remote-only pool must not
// get silently handed local simulated rigs instead.
func NewLocalPool(deviceModels []string, replicas int) (*Pool, error) {
	if replicas <= 0 {
		return nil, fmt.Errorf("fleet: local pool needs a positive replica count, got %d", replicas)
	}
	var runners []Runner
	fail := func(err error) (*Pool, error) {
		for _, r := range runners {
			r.Close()
		}
		return nil, err
	}
	for _, model := range deviceModels {
		for i := 0; i < replicas; i++ {
			r, err := NewLocalRunner(fmt.Sprintf("%s#%d", model, i), model)
			if err != nil {
				return fail(err)
			}
			runners = append(runners, r)
		}
	}
	p, err := NewPool(runners...)
	if err != nil {
		return fail(err)
	}
	return p, nil
}

// Runners lists the pool members.
func (p *Pool) Runners() []Runner { return p.runners }

// Close shuts down every runner.
func (p *Pool) Close() error {
	var first error
	for _, r := range p.runners {
		if err := r.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// unit scheduling states.
const (
	statePending = iota
	stateRunning
	stateDone
)

type unitState struct {
	unit     Unit
	state    int
	excluded map[string]bool
	tried    []string
	attempts int
	lastErr  error
}

// schedQueue holds the per-device-model pending lists. All transitions
// happen under mu; cond wakes runners when work may have become eligible.
type schedQueue struct {
	mu      sync.Mutex
	cond    *sync.Cond
	byModel map[string][]*unitState
	depth   map[string]*obs.Gauge // pending units per device model
}

func newSchedQueue(units []Unit) *schedQueue {
	q := &schedQueue{byModel: map[string][]*unitState{}, depth: map[string]*obs.Gauge{}}
	q.cond = sync.NewCond(&q.mu)
	for _, u := range units {
		if u.Skip != "" {
			continue
		}
		q.byModel[u.Device] = append(q.byModel[u.Device], &unitState{
			unit:     u,
			excluded: map[string]bool{},
		})
	}
	for model, sts := range q.byModel {
		g := queueDepthGauge(model)
		g.SetInt(int64(len(sts)))
		q.depth[model] = g
	}
	return q
}

// claim hands the runner the lowest-index pending unit of its device model
// that has not excluded it, blocking while a running unit might still fail
// back into its feed; nil means the runner can never be useful again —
// its feed drained, or the run's context was cancelled (a watcher
// broadcasts the cond on cancellation, so blocked claims re-check).
func (q *schedQueue) claim(ctx context.Context, runnerID, deviceModel string) *unitState {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if ctx.Err() != nil {
			return nil
		}
		var mayGetWork bool
		for _, st := range q.byModel[deviceModel] {
			if st.excluded[runnerID] {
				continue
			}
			switch st.state {
			case statePending:
				st.state = stateRunning
				st.attempts++
				st.tried = append(st.tried, runnerID)
				q.depth[deviceModel].Dec()
				return st
			case stateRunning:
				// Might fail on its current runner and requeue for us.
				mayGetWork = true
			}
		}
		if !mayGetWork {
			return nil
		}
		q.cond.Wait()
	}
}

// complete finalises a successfully served unit.
func (q *schedQueue) complete(st *unitState) {
	q.mu.Lock()
	st.state = stateDone
	q.mu.Unlock()
	metUnits.Inc()
	q.cond.Broadcast()
}

// requeue returns a claimed unit to pending without excluding the runner
// — used when a serve was aborted by cancellation rather than by a rig
// fault. The attempt is uncounted, so cancellation never eats into a
// unit's retry budget.
func (q *schedQueue) requeue(st *unitState, runnerID string) {
	q.mu.Lock()
	st.state = statePending
	q.depth[st.unit.Device].Inc()
	metRequeues.Inc()
	st.attempts--
	if n := len(st.tried); n > 0 && st.tried[n-1] == runnerID {
		st.tried = st.tried[:n-1]
	}
	q.mu.Unlock()
	q.cond.Broadcast()
}

// fail records a transport failure, excluding the runner. The unit
// requeues while eligible runners and attempts remain; otherwise it
// finishes with an ExhaustedError, returned for aggregation.
func (q *schedQueue) fail(st *unitState, runnerID string, err error, eligible []Runner, maxAttempts int) *ExhaustedError {
	q.mu.Lock()
	defer func() {
		q.mu.Unlock()
		q.cond.Broadcast()
	}()
	st.excluded[runnerID] = true
	st.lastErr = err
	remaining := 0
	for _, r := range eligible {
		if !st.excluded[r.ID()] {
			remaining++
		}
	}
	if remaining > 0 && (maxAttempts <= 0 || st.attempts < maxAttempts) {
		st.state = statePending
		q.depth[st.unit.Device].Inc()
		metRequeues.Inc()
		return nil
	}
	st.state = stateDone
	metExhausted.Inc()
	return &ExhaustedError{
		JobID:    st.unit.Job.ID,
		Device:   st.unit.Device,
		Attempts: st.attempts,
		Tried:    append([]string(nil), st.tried...),
		Last:     err,
	}
}

// stranded finalises every unit still unserved after the worker pool
// drained — the case where breaker-retired rigs left no one to claim a
// pending unit. Each becomes an ExhaustedError so no cell is silently
// lost.
func (q *schedQueue) stranded() []*unitState {
	q.mu.Lock()
	defer q.mu.Unlock()
	var out []*unitState
	for model, sts := range q.byModel {
		for _, st := range sts {
			if st.state != stateDone {
				if st.state == statePending {
					q.depth[model].Dec()
				}
				st.state = stateDone
				if st.lastErr == nil {
					st.lastErr = errors.New("fleet: no eligible runner remained")
				}
				metExhausted.Inc()
				out = append(out, st)
			}
		}
	}
	return out
}

// Run expands the matrix and executes it across the pool: per-device
// serialized queues, thermal pacing before each job, transport-failure
// retries with device exclusion, streaming aggregation. On a run that
// wasn't cancelled, the returned aggregator holds every unit (including
// skipped and exhausted cells); a cancelled run's aggregator is partial —
// units left unserved by the drain (including ones requeued by a
// cancelled in-flight serve) never reach it. The error joins matrix-level
// problems and per-unit ExhaustedErrors, so errors.As surfaces typed
// failures (and errors.Is matches the errs.ErrExhausted /
// errs.ErrNoDevice sentinels).
//
// ctx bounds the whole sweep: cancellation stops claiming new cells,
// aborts in-flight rig choreography, and Run returns the partial
// aggregator together with a *errs.StageError (stage "fleet") wrapping
// the context error — errors.Is(err, errs.ErrCancelled) holds.
func (p *Pool) Run(ctx context.Context, m Matrix, cfg Config) (*Aggregator, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	units, err := m.Expand()
	if err != nil {
		return nil, err
	}
	for _, d := range m.Devices {
		if len(p.byModel[d]) == 0 {
			return nil, &NoDeviceError{Device: d}
		}
	}
	agg := NewAggregator(m)
	var (
		emitMu sync.Mutex
		done   int
	)
	if cfg.OnEvent != nil {
		cfg.OnEvent(event.Stamped(event.StageStart{Stage: "fleet", Total: len(units)}))
	}
	emit := func(ur UnitResult) {
		agg.Add(ur)
		if cfg.OnUnit != nil {
			cfg.OnUnit(ur)
		}
		if cfg.OnEvent != nil {
			emitMu.Lock()
			done++
			if ur.Result.OutputDigest != "" {
				cfg.OnEvent(event.Stamped(event.ExecUnit{
					Model:         ur.Unit.Model,
					Device:        ur.Unit.Device,
					Backend:       ur.Unit.Backend,
					OutputDigest:  ur.Result.OutputDigest,
					MeanLatencyNS: int64(ur.Result.MeanLatency()),
				}))
			}
			cfg.OnEvent(event.Stamped(event.StageProgress{Stage: "fleet", Done: done, Total: len(units)}))
			if done == len(units) {
				cfg.OnEvent(event.Stamped(event.StageDone{Stage: "fleet", Total: len(units)}))
			}
			emitMu.Unlock()
		}
	}
	for _, u := range units {
		if u.Skip != "" {
			emit(UnitResult{Unit: u})
		}
	}
	q := newSchedQueue(units)
	// Wake blocked claims when the context dies so workers drain instead
	// of waiting for a requeue that will never come.
	stopWatch := context.AfterFunc(ctx, func() { q.cond.Broadcast() })
	defer stopWatch()
	// MaxAttempts wins when both caps are set; an explicit retry policy
	// otherwise lends its attempt budget to the per-unit cap.
	maxAttempts := cfg.MaxAttempts
	if maxAttempts <= 0 && cfg.Retry != nil && cfg.Retry.Attempts > 0 {
		maxAttempts = cfg.Retry.Attempts
	}
	var pacing retry.Policy
	if cfg.Retry != nil {
		pacing = *cfg.Retry
	}
	var wg sync.WaitGroup
	for _, r := range p.runners {
		wg.Add(1)
		go func(r Runner) {
			defer wg.Done()
			consecFails := 0
			for {
				if !cfg.Breaker.Allow(r.ID()) {
					// This rig's circuit opened: retire it. Its pending units
					// fail over via exclusion, or surface in the stranded
					// sweep below.
					return
				}
				st := q.claim(ctx, r.ID(), r.DeviceModel())
				if st == nil {
					return
				}
				res, err := p.serve(ctx, r, st.unit, cfg)
				if err != nil {
					// Only a *run-level* cancellation takes the abandon
					// path — gated on ctx.Err(), not on the error's shape:
					// a dead agent's dial timeout also satisfies
					// errors.Is(err, context.DeadlineExceeded) (stdlib
					// net.timeoutError), and that is a rig fault that must
					// go through the exclude/retry machinery below.
					if ctx.Err() != nil && errs.IsContextError(err) {
						// A cancelled serve is not the rig's fault: requeue
						// the unit untried (it stays unserved — the queue is
						// draining) and let this worker exit.
						q.requeue(st, r.ID())
						return
					}
					if ex := q.fail(st, r.ID(), err, p.byModel[r.DeviceModel()], maxAttempts); ex != nil {
						emit(UnitResult{Unit: st.unit, Runner: r.ID(), Attempts: ex.Attempts, Err: ex})
					}
					cfg.Breaker.Failure(r.ID())
					// Pace before the next claim: a glitching rig backs off
					// instead of immediately re-hammering its device.
					consecFails++
					if d := pacing.Delay(consecFails); d > 0 {
						if retry.Sleep(ctx, d) != nil {
							return
						}
					}
					continue
				}
				cfg.Breaker.Success(r.ID())
				consecFails = 0
				ur := UnitResult{Unit: st.unit, Result: res, Runner: r.ID(), Attempts: st.attempts}
				q.complete(st)
				emit(ur)
			}
		}(r)
	}
	wg.Wait()
	if ctx.Err() == nil {
		// Workers drained with live context: anything still unserved was
		// stranded by breaker-retired rigs. Surface each as a typed
		// exhaustion instead of dropping the cell silently.
		for _, st := range q.stranded() {
			ex := &ExhaustedError{
				JobID:    st.unit.Job.ID,
				Device:   st.unit.Device,
				Attempts: st.attempts,
				Tried:    append([]string(nil), st.tried...),
				Last:     st.lastErr,
			}
			emit(UnitResult{Unit: st.unit, Attempts: st.attempts, Err: ex})
		}
	}
	var problems []error
	for _, ur := range agg.Units() {
		if ur.Err != nil {
			problems = append(problems, ur.Err)
		}
	}
	if err := ctx.Err(); err != nil {
		problems = append(problems, errs.Stage("fleet", "", err))
	}
	return agg, errors.Join(problems...)
}

// serve runs one unit on one rig: thermal pacing, then the full workflow.
func (p *Pool) serve(ctx context.Context, r Runner, u Unit, cfg Config) (bench.JobResult, error) {
	if !cfg.NoCooldown {
		metCooldowns.Inc()
		if err := r.Cooldown(ctx, cfg.CooldownTargetJ); err != nil {
			return bench.JobResult{}, fmt.Errorf("cooldown: %w", err)
		}
	}
	return r.Run(ctx, u.Job)
}
