package fleet

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"github.com/gaugenn/gaugenn/internal/bench"
	"github.com/gaugenn/gaugenn/internal/errs"
	"github.com/gaugenn/gaugenn/internal/event"
	"github.com/gaugenn/gaugenn/internal/nn/zoo"
	"github.com/gaugenn/gaugenn/internal/testutil"
)

func cancelMatrix(t *testing.T, nModels int) Matrix {
	t.Helper()
	var models []ModelSpec
	tasks := []zoo.Task{zoo.TaskKeywordDetection, zoo.TaskCrashDetection, zoo.TaskFaceDetection}
	for i := 0; i < nModels; i++ {
		ms, err := ZooModel(zoo.Spec{Task: tasks[i%len(tasks)], Seed: int64(60 + i)})
		if err != nil {
			t.Fatal(err)
		}
		models = append(models, ms)
	}
	return Matrix{
		Models:   models,
		Devices:  []string{"Q845"},
		Backends: []string{"cpu"},
		Threads:  2, Warmup: 1, Runs: 2,
	}
}

// TestPoolRunCancelled cancels a sweep after the first completed cell:
// Run must return promptly with the partial aggregate, a stage-"fleet"
// error matching ErrCancelled, and no stranded worker goroutines (the
// deferred pool Close would hang on those).
func TestPoolRunCancelled(t *testing.T) {
	testutil.NoLeakedGoroutines(t)
	m := cancelMatrix(t, 6)
	pool, err := NewLocalPool(m.Devices, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var fired atomic.Bool
	type outcome struct {
		agg *Aggregator
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		agg, err := pool.Run(ctx, m, Config{OnUnit: func(ur UnitResult) {
			if fired.CompareAndSwap(false, true) {
				cancel()
			}
		}})
		ch <- outcome{agg, err}
	}()
	var o outcome
	select {
	case o = <-ch:
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled fleet run did not return")
	}
	if o.err == nil {
		t.Fatal("cancelled fleet run returned nil error")
	}
	if !errors.Is(o.err, context.Canceled) || !errors.Is(o.err, errs.ErrCancelled) {
		t.Fatalf("cancellation not typed: %v", o.err)
	}
	var se *errs.StageError
	if !errors.As(o.err, &se) || se.Stage != "fleet" {
		t.Fatalf("no fleet StageError on the chain: %v", o.err)
	}
	if o.agg == nil {
		t.Fatal("partial aggregate lost on cancellation")
	}
	served := 0
	for _, ur := range o.agg.Units() {
		if ur.Runner != "" && ur.Err == nil {
			served++
		}
	}
	if served == 0 {
		t.Fatal("partial aggregate holds no served cells")
	}
}

// timeoutRunner always fails with a DeadlineExceeded-shaped transport
// error — the shape a dead agent's dial timeout has (stdlib
// net.timeoutError matches context.DeadlineExceeded under errors.Is)
// even though no context was cancelled.
type timeoutRunner struct{ id, model string }

func (r *timeoutRunner) ID() string                                    { return r.id }
func (r *timeoutRunner) DeviceModel() string                           { return r.model }
func (r *timeoutRunner) Close() error                                  { return nil }
func (r *timeoutRunner) Cooldown(ctx context.Context, _ float64) error { return nil }
func (r *timeoutRunner) Run(ctx context.Context, _ bench.Job) (bench.JobResult, error) {
	return bench.JobResult{}, fmt.Errorf("fleet test: dialing agent: %w", context.DeadlineExceeded)
}

// TestDialTimeoutIsARigFaultNotACancellation pins the fix for a silent
// unit drop: a transport error that *looks* like a deadline (dead
// agent's dial timeout) under a live run context must go through the
// exclude/retry machinery and surface ErrExhausted — not take the
// cancellation requeue path, which would retire the worker and leave the
// unit permanently pending with a nil run error.
func TestDialTimeoutIsARigFaultNotACancellation(t *testing.T) {
	m := cancelMatrix(t, 2)
	pool, err := NewPool(&timeoutRunner{id: "t0", model: "Q845"})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	type outcome struct {
		agg *Aggregator
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		agg, err := pool.Run(context.Background(), m, Config{})
		ch <- outcome{agg, err}
	}()
	var o outcome
	select {
	case o = <-ch:
	case <-time.After(30 * time.Second):
		t.Fatal("pool with a timing-out rig never finished (unit dropped, worker retired?)")
	}
	if !errors.Is(o.err, errs.ErrExhausted) {
		t.Fatalf("dial-timeout failures must exhaust, got %v", o.err)
	}
	if errors.Is(o.err, errs.ErrCancelled) {
		t.Fatalf("no context was cancelled, yet: %v", o.err)
	}
	exhausted := 0
	for _, ur := range o.agg.Units() {
		if ur.Err != nil {
			exhausted++
		}
	}
	if exhausted != 2 {
		t.Fatalf("%d of 2 units surfaced an error", exhausted)
	}
}

// TestFleetSentinelErrors pins the errors.Is wiring of the fleet's typed
// failures onto the public sentinels.
func TestFleetSentinelErrors(t *testing.T) {
	if !errors.Is(&NoDeviceError{Device: "Q845"}, errs.ErrNoDevice) {
		t.Fatal("NoDeviceError must match ErrNoDevice")
	}
	if errors.Is(&NoDeviceError{Device: "Q845"}, errs.ErrExhausted) {
		t.Fatal("NoDeviceError must not match ErrExhausted")
	}
	ex := &ExhaustedError{JobID: "j", Device: "Q845", Attempts: 2, Last: errors.New("boom")}
	if !errors.Is(ex, errs.ErrExhausted) {
		t.Fatal("ExhaustedError must match ErrExhausted")
	}
	if errors.Is(ex, errs.ErrNoDevice) {
		t.Fatal("ExhaustedError must not match ErrNoDevice")
	}

	// End to end: a pool with no rig for the requested model.
	m := cancelMatrix(t, 1)
	m.Devices = []string{"S21"}
	pool, err := NewLocalPool([]string{"Q845"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	if _, err := pool.Run(context.Background(), m, Config{}); !errors.Is(err, errs.ErrNoDevice) {
		t.Fatalf("missing device not surfaced as ErrNoDevice: %v", err)
	}
}

// TestPoolRunEmitsTypedEvents checks the fleet's event stream contract:
// one StageStart, monotonic StageProgress covering every cell, one
// StageDone.
func TestPoolRunEmitsTypedEvents(t *testing.T) {
	m := cancelMatrix(t, 3)
	pool, err := NewLocalPool(m.Devices, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	var starts, dones, progress atomic.Int64
	lastDone := -1
	if _, err := pool.Run(context.Background(), m, Config{OnEvent: func(ev event.Event) {
		switch v := ev.(type) {
		case event.StageStart:
			starts.Add(1)
			if v.Stage != "fleet" || v.Total != 3 {
				t.Errorf("bad StageStart: %+v", v)
			}
		case event.StageProgress:
			progress.Add(1)
			if v.Done <= lastDone {
				t.Errorf("progress went backwards: %d after %d", v.Done, lastDone)
			}
			lastDone = v.Done
		case event.StageDone:
			dones.Add(1)
			if v.Total != 3 {
				t.Errorf("bad StageDone: %+v", v)
			}
		}
	}}); err != nil {
		t.Fatal(err)
	}
	if starts.Load() != 1 || dones.Load() != 1 || progress.Load() != 3 {
		t.Fatalf("event counts: starts=%d dones=%d progress=%d", starts.Load(), dones.Load(), progress.Load())
	}
}
