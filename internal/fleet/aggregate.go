package fleet

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"sync"

	"github.com/gaugenn/gaugenn/internal/power"
	"github.com/gaugenn/gaugenn/internal/report"
)

// Aggregator ingests unit results as runners finish them (streaming —
// tables and the JSON file can be rendered at any point) and renders the
// matrix's aggregated views. Every view orders by matrix index and carries
// nothing scheduling-dependent, so for a fixed matrix the output is
// byte-identical regardless of pool size.
type Aggregator struct {
	mu     sync.Mutex
	matrix Matrix
	units  map[int]UnitResult
	// gmu serialises lazy graph decodes in the matrix's model specs, so
	// concurrent renders of scenario views stay race-free.
	gmu sync.Mutex
}

// NewAggregator prepares an aggregator for one matrix run.
func NewAggregator(m Matrix) *Aggregator {
	return &Aggregator{matrix: m, units: map[int]UnitResult{}}
}

// Add ingests one completed unit.
func (a *Aggregator) Add(ur UnitResult) {
	a.mu.Lock()
	a.units[ur.Unit.Index] = ur
	a.mu.Unlock()
}

// Done reports how many units have been ingested.
func (a *Aggregator) Done() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.units)
}

// Units returns the ingested results in matrix order.
func (a *Aggregator) Units() []UnitResult {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]UnitResult, 0, len(a.units))
	for _, ur := range a.units {
		out = append(out, ur)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Unit.Index < out[j].Unit.Index })
	return out
}

// cellKey groups units per (device, backend) cell.
type cellKey struct{ device, backend string }

// measured collects the successful per-model results of each cell, in
// matrix order.
func (a *Aggregator) measured() map[cellKey][]UnitResult {
	out := map[cellKey][]UnitResult{}
	for _, ur := range a.Units() {
		if ur.Unit.Skip != "" || ur.Err != nil || ur.Result.Error != "" {
			continue
		}
		k := cellKey{ur.Unit.Device, ur.Unit.Backend}
		out[k] = append(out[k], ur)
	}
	return out
}

// forEachCell walks device x backend cells in matrix order.
func (a *Aggregator) forEachCell(fn func(device, backend string, cell []UnitResult)) {
	cells := a.measured()
	for _, d := range a.matrix.Devices {
		for _, b := range a.matrix.Backends {
			fn(d, b, cells[cellKey{d, b}])
		}
	}
}

// LatencyTable renders mean per-inference latency (ms) distributions
// across the matrix's models, one row per device x backend cell.
func (a *Aggregator) LatencyTable() string {
	headers := append([]string{"device", "backend", "models", "throttled"}, report.DistHeaders("lat ms")...)
	var rows [][]string
	a.forEachCell(func(d, b string, cell []UnitResult) {
		var lats []float64
		throttled := 0
		for _, ur := range cell {
			lats = append(lats, ur.Result.MeanLatency().Seconds()*1000)
			if ur.Result.Throttled {
				throttled++
			}
		}
		row := []string{d, b, fmt.Sprint(len(lats)), fmt.Sprint(throttled)}
		rows = append(rows, append(row, report.DistCells(lats, "%.3g")...))
	})
	return report.Table("Fleet matrix: per-inference latency", headers, rows)
}

// EnergyTable renders mean per-inference energy (mJ) distributions, one
// row per device x backend cell.
func (a *Aggregator) EnergyTable() string {
	headers := append([]string{"device", "backend", "models", "fallback ops"}, report.DistHeaders("mJ")...)
	var rows [][]string
	a.forEachCell(func(d, b string, cell []UnitResult) {
		var engs []float64
		fallback := 0
		for _, ur := range cell {
			engs = append(engs, ur.Result.MeanEnergymJ())
			fallback += ur.Result.FallbackOps
		}
		row := []string{d, b, fmt.Sprint(len(engs)), fmt.Sprint(fallback)}
		rows = append(rows, append(row, report.DistCells(engs, "%.3g")...))
	})
	return report.Table("Fleet matrix: per-inference energy", headers, rows)
}

// scenarioRow is one Table 4 projection cell: battery discharge across the
// matrix's models for a scenario on a device x backend cell.
type scenarioRow struct {
	Scenario   string    `json:"scenario"`
	Device     string    `json:"device"`
	Backend    string    `json:"backend"`
	Models     int       `json:"models"`
	Discharges []float64 `json:"dischargesMah"` // sorted ascending
}

// scenarioRows projects measured per-inference energy through each
// scenario's inference count, as the paper derives Table 4 from its
// energy measurements.
func (a *Aggregator) scenarioRows() ([]scenarioRow, error) {
	if len(a.matrix.Scenarios) == 0 {
		return nil, nil
	}
	a.gmu.Lock()
	defer a.gmu.Unlock()
	graphs := map[string]int{} // model name -> matrix index
	for i := range a.matrix.Models {
		graphs[a.matrix.Models[i].Name] = i
	}
	bat := power.Battery{Voltage: power.DefaultRailVoltage}
	var rows []scenarioRow
	var err error
	for _, sc := range a.matrix.Scenarios {
		a.forEachCell(func(d, b string, cell []UnitResult) {
			row := scenarioRow{Scenario: sc.Name, Device: d, Backend: b}
			for _, ur := range cell {
				mi, ok := graphs[ur.Unit.Model]
				if !ok {
					continue
				}
				g, gerr := a.matrix.Models[mi].graphOrDecode()
				if gerr != nil {
					err = gerr
					return
				}
				n := sc.Inferences(g)
				perInfJ := ur.Result.MeanEnergymJ() / 1000
				row.Discharges = append(row.Discharges, bat.DischargemAh(perInfJ*float64(n)))
			}
			row.Models = len(row.Discharges)
			row.Discharges = sortedCopy(row.Discharges)
			rows = append(rows, row)
		})
		if err != nil {
			return nil, err
		}
	}
	return rows, nil
}

// ScenarioTable renders the Table 4 usage-scenario projection: battery
// discharge (mAh) distributions per scenario x device x backend.
func (a *Aggregator) ScenarioTable() (string, error) {
	rows, err := a.scenarioRows()
	if err != nil {
		return "", err
	}
	if rows == nil {
		return "", nil
	}
	headers := append([]string{"scenario", "device", "backend", "models"}, report.DistHeaders("mAh")...)
	var trows [][]string
	for _, r := range rows {
		row := []string{r.Scenario, r.Device, r.Backend, fmt.Sprint(r.Models)}
		trows = append(trows, append(row, report.DistCells(r.Discharges, "%.4g")...))
	}
	return report.Table("Fleet matrix: Table 4 usage scenarios (battery discharge)", headers, trows), nil
}

// unitJSON is the machine-readable record of one matrix cell. Scheduling
// details (runner identity, attempts) are deliberately absent: the file
// must be byte-identical across pool sizes.
type unitJSON struct {
	Index   int    `json:"index"`
	Model   string `json:"model"`
	Device  string `json:"device"`
	Backend string `json:"backend"`
	Skip    string `json:"skip,omitempty"`
	Error   string `json:"error,omitempty"`

	LatenciesNS     []int64   `json:"latenciesNs,omitempty"`
	EnergiesMJ      []float64 `json:"energiesMj,omitempty"`
	MeanLatencyNS   int64     `json:"meanLatencyNs,omitempty"`
	MeanEnergyMJ    float64   `json:"meanEnergyMj,omitempty"`
	MonitorEnergyMJ float64   `json:"monitorEnergyMj,omitempty"`
	AvgPowerW       float64   `json:"avgPowerW,omitempty"`
	FLOPs           int64     `json:"flops,omitempty"`
	PeakMemBytes    int64     `json:"peakMemBytes,omitempty"`
	CPUUtil         float64   `json:"cpuUtil,omitempty"`
	FallbackOps     int       `json:"fallbackOps,omitempty"`
	Throttled       bool      `json:"throttled,omitempty"`
	// OutputDigest is the measured run's output checksum (executed-mode
	// matrices only). Unlike latencies it is a pure function of (model,
	// batch), so it participates in OutputChecksum.
	OutputDigest string `json:"outputDigest,omitempty"`
}

// resultsFile is the fleet's machine-readable output.
type resultsFile struct {
	Schema    string        `json:"schema"`
	Devices   []string      `json:"devices"`
	Backends  []string      `json:"backends"`
	Models    []string      `json:"models"`
	Scenarios []string      `json:"scenarios,omitempty"`
	Threads   int           `json:"threads,omitempty"`
	Warmup    int           `json:"warmup,omitempty"`
	Runs      int           `json:"runs,omitempty"`
	Units     []unitJSON    `json:"units"`
	Table4    []scenarioRow `json:"table4,omitempty"`
}

// ResultsSchema identifies the JSON results format.
const ResultsSchema = "gaugenn/fleet-results/v1"

// ResultsJSON renders the machine-readable results file: matrix identity,
// every unit in matrix order, and the Table 4 projections.
func (a *Aggregator) ResultsJSON() ([]byte, error) {
	t4, err := a.scenarioRows()
	if err != nil {
		return nil, err
	}
	file := resultsFile{
		Schema:    ResultsSchema,
		Devices:   a.matrix.Devices,
		Backends:  a.matrix.Backends,
		Models:    a.matrix.modelNames(),
		Scenarios: a.matrix.scenarioNames(),
		Threads:   a.matrix.Threads,
		Warmup:    a.matrix.Warmup,
		Runs:      a.matrix.Runs,
		Table4:    t4,
	}
	for _, ur := range a.Units() {
		uj := unitJSON{
			Index:   ur.Unit.Index,
			Model:   ur.Unit.Model,
			Device:  ur.Unit.Device,
			Backend: ur.Unit.Backend,
			Skip:    ur.Unit.Skip,
		}
		switch {
		case ur.Err != nil:
			// A stable marker, not the error text: ExhaustedError carries
			// runner IDs and attempt counts, which depend on pool size and
			// scheduling — the file must stay deterministic even for runs
			// with transport failures. Full detail stays available via
			// FailedUnits() and Pool.Run's returned error.
			uj.Error = fmt.Sprintf("exhausted: transport failure on every eligible %s runner", ur.Unit.Device)
		case ur.Unit.Skip == "":
			r := ur.Result
			uj.Error = r.Error
			uj.LatenciesNS = r.LatenciesNS
			uj.EnergiesMJ = r.EnergiesMJ
			uj.MeanLatencyNS = int64(r.MeanLatency())
			uj.MeanEnergyMJ = r.MeanEnergymJ()
			uj.MonitorEnergyMJ = r.MonitorEnergyMJ
			uj.AvgPowerW = r.AvgPowerW
			uj.FLOPs = r.FLOPs
			uj.PeakMemBytes = r.PeakMemBytes
			uj.CPUUtil = r.CPUUtil
			uj.FallbackOps = r.FallbackOps
			uj.Throttled = r.Throttled
			uj.OutputDigest = r.OutputDigest
		}
		file.Units = append(file.Units, uj)
	}
	return json.MarshalIndent(file, "", "  ")
}

// Checksum returns the hex SHA-256 of ResultsJSON — the determinism gate's
// one-line witness: equal checksums mean byte-identical aggregated output.
func (a *Aggregator) Checksum() (string, error) {
	b, err := a.ResultsJSON()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// OutputChecksum returns the hex SHA-256 of the matrix's deterministic
// projection: per unit, the matrix identity (index/model/device/backend),
// the skip or error marker, and the output digest. Executed-mode latencies
// are wall-clock and vary run to run, so the full Checksum cannot witness
// determinism there; this one must still be byte-identical across repeats,
// pool sizes and worker counts.
func (a *Aggregator) OutputChecksum() (string, error) {
	type row struct {
		Index        int    `json:"index"`
		Model        string `json:"model"`
		Device       string `json:"device"`
		Backend      string `json:"backend"`
		Skip         string `json:"skip,omitempty"`
		Error        string `json:"error,omitempty"`
		OutputDigest string `json:"outputDigest,omitempty"`
	}
	var rows []row
	for _, ur := range a.Units() {
		r := row{
			Index:   ur.Unit.Index,
			Model:   ur.Unit.Model,
			Device:  ur.Unit.Device,
			Backend: ur.Unit.Backend,
			Skip:    ur.Unit.Skip,
		}
		switch {
		case ur.Err != nil:
			r.Error = fmt.Sprintf("exhausted: transport failure on every eligible %s runner", ur.Unit.Device)
		case ur.Unit.Skip == "":
			r.Error = ur.Result.Error
			r.OutputDigest = ur.Result.OutputDigest
		}
		rows = append(rows, r)
	}
	b, err := json.Marshal(rows)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// FailedUnits lists cells that ended with a transport-level error.
func (a *Aggregator) FailedUnits() []UnitResult {
	var out []UnitResult
	for _, ur := range a.Units() {
		if ur.Err != nil {
			out = append(out, ur)
		}
	}
	return out
}
