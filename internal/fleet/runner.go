package fleet

import (
	"context"
	"fmt"
	"time"

	"github.com/gaugenn/gaugenn/internal/bench"
	"github.com/gaugenn/gaugenn/internal/power"
	"github.com/gaugenn/gaugenn/internal/soc"
)

// Runner is one benchmark rig the pool schedules onto: a device plus the
// master-side choreography to drive it. Jobs on one runner are serialized
// by the scheduler; Cooldown restores the deterministic pre-job thermal
// state the fleet's byte-identical-output contract relies on. Run and
// Cooldown honour their context: a cancelled fleet run aborts in-flight
// choreography (dials, handshakes, notification waits) promptly.
type Runner interface {
	ID() string
	DeviceModel() string
	Run(ctx context.Context, job bench.Job) (bench.JobResult, error)
	Cooldown(ctx context.Context, targetJ float64) error
	Close() error
}

// AgentRunner drives a bench.Agent through the full Figure 3 TCP
// choreography. It serves both pool flavours: NewLocalRunner spins up an
// in-process agent rig (device + USB switch + Monsoon-style monitor);
// NewRemoteRunner attaches to a benchd endpoint elsewhere.
type AgentRunner struct {
	id     string
	device string
	master *bench.Master
	agent  *bench.Agent // owned in-process agent; nil for remote rigs
}

// NewLocalRunner builds a self-contained in-process rig for one device
// model.
func NewLocalRunner(id, deviceModel string) (*AgentRunner, error) {
	dev, err := soc.NewDevice(deviceModel)
	if err != nil {
		return nil, err
	}
	usb := power.NewUSBSwitch()
	mon := power.NewMonitor()
	agent := bench.NewAgent(dev, usb, mon)
	addr, err := agent.Start()
	if err != nil {
		return nil, err
	}
	return &AgentRunner{
		id:     id,
		device: deviceModel,
		master: bench.NewMaster(addr, usb),
		agent:  agent,
	}, nil
}

// NewRemoteRunner attaches to a running benchd agent and discovers its
// device identity over the control channel. ctx bounds the discovery
// dial+query; dialTimeout bounds each later dial (0 keeps the master's
// 5 s default); jobTimeout bounds each benchmark round (0 keeps the 120 s
// default).
func NewRemoteRunner(ctx context.Context, id, addr string, dialTimeout, jobTimeout time.Duration) (*AgentRunner, error) {
	master := bench.NewMaster(addr, nil)
	master.DialTimeout = dialTimeout
	if jobTimeout > 0 {
		master.Timeout = jobTimeout
	}
	info, err := master.Query(ctx)
	if err != nil {
		return nil, fmt.Errorf("fleet: querying agent %s: %w", addr, err)
	}
	return &AgentRunner{id: id, device: info.Device, master: master}, nil
}

// ID returns the pool-unique runner label.
func (r *AgentRunner) ID() string { return r.id }

// DeviceModel returns the Table 1 device model the rig benchmarks.
func (r *AgentRunner) DeviceModel() string { return r.device }

// Master exposes the underlying master for timeout tuning.
func (r *AgentRunner) Master() *bench.Master { return r.master }

// Info queries the agent's identity, backends and thermal state.
func (r *AgentRunner) Info(ctx context.Context) (bench.AgentInfo, error) { return r.master.Query(ctx) }

// Run executes one job through the full master-slave workflow.
func (r *AgentRunner) Run(ctx context.Context, job bench.Job) (bench.JobResult, error) {
	res, err := r.master.RunJobs(ctx, []bench.Job{job})
	if err != nil {
		return bench.JobResult{}, err
	}
	if len(res) != 1 {
		return bench.JobResult{}, fmt.Errorf("fleet: agent returned %d results for one job", len(res))
	}
	return res[0], nil
}

// Cooldown idles the device until its stored heat is at most targetJ.
func (r *AgentRunner) Cooldown(ctx context.Context, targetJ float64) error {
	_, err := r.master.CoolDevice(ctx, targetJ)
	return err
}

// Close shuts down an owned in-process agent; remote agents are left
// running (benchd owns its own lifecycle).
func (r *AgentRunner) Close() error {
	if r.agent != nil {
		return r.agent.Close()
	}
	return nil
}
