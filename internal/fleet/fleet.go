// Package fleet is gaugeNN's device-lab orchestrator: it takes a benchmark
// matrix spec — models x device models x runtime backends (x Table 4 usage
// scenarios) — expands it into jobs and dispatches them across a pool of
// benchmark rigs, the way the paper's evaluation (§5-6) sweeps its model
// population over six devices and seven runtimes.
//
// The scheduler keeps one serialized queue per device model, paces
// continuous-inference jobs thermally (cooling the device to a fixed
// stored-heat target before each job, so Figure-9-style throttling is a
// property of the job rather than of queue position), retries transport
// failures on another device of the same model with the failed rig
// excluded, and streams results into an aggregator that renders report
// tables plus a machine-readable JSON results file.
//
// Determinism contract: for a fixed matrix, the aggregated output is
// byte-identical regardless of pool size — every job starts from the same
// device state (heat zero), results are keyed by matrix index, and nothing
// scheduling-dependent (runner identity, wall-clock) reaches the output.
package fleet

import (
	"fmt"
	"sort"
	"time"

	"github.com/gaugenn/gaugenn/internal/bench"
	"github.com/gaugenn/gaugenn/internal/exec"
	"github.com/gaugenn/gaugenn/internal/mlrt"
	"github.com/gaugenn/gaugenn/internal/nn/formats"
	"github.com/gaugenn/gaugenn/internal/nn/graph"
	"github.com/gaugenn/gaugenn/internal/nn/zoo"
	"github.com/gaugenn/gaugenn/internal/soc"
)

// ModelSpec is one model entry of the matrix: serialised bytes plus an
// optional decoded graph (needed for scenario projections; decoded on
// demand when absent).
type ModelSpec struct {
	Name  string
	Data  []byte
	Graph *graph.Graph
}

// ZooModel builds a matrix entry from a zoo spec, keeping the graph for
// scenario projections.
func ZooModel(spec zoo.Spec) (ModelSpec, error) {
	g, err := zoo.Build(spec)
	if err != nil {
		return ModelSpec{}, err
	}
	f, ok := formats.ByName("tflite")
	if !ok {
		return ModelSpec{}, fmt.Errorf("fleet: tflite format not registered")
	}
	fs, err := f.Encode(g, "m")
	if err != nil {
		return ModelSpec{}, err
	}
	return ModelSpec{Name: g.Name, Data: fs["m.tflite"], Graph: g}, nil
}

// graphOrDecode returns the spec's graph, decoding the model bytes when
// the caller supplied only bytes.
func (ms *ModelSpec) graphOrDecode() (*graph.Graph, error) {
	if ms.Graph != nil {
		return ms.Graph, nil
	}
	for _, f := range formats.All() {
		if f.Sniff(ms.Data) {
			g, err := f.Decode(formats.FileSet{"model" + f.Extensions()[0]: ms.Data})
			if err != nil {
				return nil, err
			}
			ms.Graph = g
			return g, nil
		}
	}
	return nil, fmt.Errorf("fleet: model %s matches no registered format", ms.Name)
}

// Matrix is the benchmark matrix spec the scheduler expands: every model
// on every device under every backend, with shared job knobs. Scenarios,
// when present, add Table 4 battery-discharge projections derived from the
// measured per-inference energies (the paper measures once and scales by
// each scenario's inference count).
type Matrix struct {
	Models    []ModelSpec
	Devices   []string
	Backends  []string
	Scenarios []bench.Scenario

	// Job knobs, mirroring bench.Job (zero values take the agent's
	// defaults: 4 threads, 2 warmups, 10 runs).
	Threads      int
	Affinity     int
	Batch        int
	Warmup       int
	Runs         int
	SleepBetween time.Duration

	// Execute switches every job to the measured backend: models run for
	// real through the internal/exec interpreter instead of the simulated
	// device model, and each unit carries an output digest. Expand rejects
	// the whole matrix with errs.ErrUnsupportedOps if any model contains
	// an operator the interpreter cannot execute, so unsupported graphs
	// fail before any device time is spent.
	Execute bool
}

// Unit is one expanded cell of the matrix. Infeasible combinations (a
// backend the device cannot execute) carry a Skip reason instead of a job,
// so the expansion is total and deterministic.
type Unit struct {
	Index   int
	Model   string
	Device  string
	Backend string
	Skip    string
	Job     bench.Job
}

// Expand enumerates the matrix in deterministic order — devices, then
// backends, then models, each in spec order — validating devices and
// backend names and marking device-infeasible combinations as skipped.
func (m *Matrix) Expand() ([]Unit, error) {
	if len(m.Models) == 0 || len(m.Devices) == 0 || len(m.Backends) == 0 {
		return nil, fmt.Errorf("fleet: matrix needs models, devices and backends (have %d/%d/%d)",
			len(m.Models), len(m.Devices), len(m.Backends))
	}
	known := map[string]bool{}
	for _, b := range mlrt.Backends() {
		known[b] = true
	}
	for _, b := range m.Backends {
		if !known[b] {
			return nil, fmt.Errorf("fleet: unknown backend %q (have %v)", b, mlrt.Backends())
		}
	}
	if m.Execute {
		// Executed mode runs every model through the interpreter; validate
		// each graph up front so an unsupported operator is a typed matrix
		// error here, not a per-unit load failure on a device.
		for i := range m.Models {
			g, err := m.Models[i].graphOrDecode()
			if err != nil {
				return nil, err
			}
			if err := exec.Validate(g); err != nil {
				return nil, fmt.Errorf("fleet: model %s cannot run in executed mode: %w", m.Models[i].Name, err)
			}
		}
	}
	// One probe device per model answers feasibility for every cell.
	probes := map[string]*soc.Device{}
	for _, d := range m.Devices {
		if _, ok := probes[d]; ok {
			return nil, fmt.Errorf("fleet: device %s listed twice in matrix", d)
		}
		dev, err := soc.NewDevice(d)
		if err != nil {
			return nil, err
		}
		probes[d] = dev
	}
	var units []Unit
	for _, d := range m.Devices {
		for _, b := range m.Backends {
			skip := ""
			if err := mlrt.Supports(probes[d], b); err != nil {
				skip = err.Error()
			}
			for _, ms := range m.Models {
				u := Unit{
					Index:   len(units),
					Model:   ms.Name,
					Device:  d,
					Backend: b,
					Skip:    skip,
				}
				if skip == "" {
					u.Job = bench.Job{
						ID:           fmt.Sprintf("%04d/%s/%s/%s", u.Index, d, b, ms.Name),
						ModelName:    ms.Name,
						Model:        ms.Data,
						Backend:      b,
						Threads:      m.Threads,
						Affinity:     m.Affinity,
						Batch:        m.Batch,
						Warmup:       m.Warmup,
						Runs:         m.Runs,
						SleepBetween: m.SleepBetween,
						Execute:      m.Execute,
					}
				}
				units = append(units, u)
			}
		}
	}
	return units, nil
}

// modelNames returns the matrix's model labels in spec order.
func (m *Matrix) modelNames() []string {
	out := make([]string, len(m.Models))
	for i, ms := range m.Models {
		out[i] = ms.Name
	}
	return out
}

// scenarioNames returns the matrix's scenario labels in spec order.
func (m *Matrix) scenarioNames() []string {
	out := make([]string, len(m.Scenarios))
	for i, sc := range m.Scenarios {
		out[i] = sc.Name
	}
	return out
}

// FeasibleCells reports how many of the matrix's cells are executable,
// out of the total, for progress displays.
func (m *Matrix) FeasibleCells() (feasible, total int, err error) {
	units, err := m.Expand()
	if err != nil {
		return 0, 0, err
	}
	for _, u := range units {
		if u.Skip == "" {
			feasible++
		}
	}
	return feasible, len(units), nil
}

// sortedCopy returns a sorted copy of xs (aggregation helpers must not
// mutate result slices).
func sortedCopy(xs []float64) []float64 {
	out := append([]float64(nil), xs...)
	sort.Float64s(out)
	return out
}
