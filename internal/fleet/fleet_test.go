package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"github.com/gaugenn/gaugenn/internal/bench"
	"github.com/gaugenn/gaugenn/internal/errs"
	"github.com/gaugenn/gaugenn/internal/nn/zoo"
	"github.com/gaugenn/gaugenn/internal/power"
	"github.com/gaugenn/gaugenn/internal/soc"
)

// testMatrix builds a small but real matrix: 3 models x 2 devices x 3
// backends, including one device-infeasible combination (A70 has no DSP).
func testMatrix(t *testing.T) Matrix {
	t.Helper()
	var models []ModelSpec
	for i, task := range []zoo.Task{zoo.TaskKeywordDetection, zoo.TaskCrashDetection, zoo.TaskFaceDetection} {
		ms, err := ZooModel(zoo.Spec{Task: task, Seed: int64(i + 1)})
		if err != nil {
			t.Fatal(err)
		}
		models = append(models, ms)
	}
	return Matrix{
		Models:   models,
		Devices:  []string{"A70", "Q888"},
		Backends: []string{"cpu", "xnnpack", "snpe-dsp"},
		Threads:  4,
		Warmup:   1,
		Runs:     2,
	}
}

func TestMatrixExpandDeterministicAndTotal(t *testing.T) {
	m := testMatrix(t)
	units, err := m.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(units) != 3*2*3 {
		t.Fatalf("units = %d, want 18", len(units))
	}
	again, err := m.Expand()
	if err != nil {
		t.Fatal(err)
	}
	skips := 0
	for i, u := range units {
		if u.Index != i {
			t.Fatalf("unit %d carries index %d", i, u.Index)
		}
		if u.Skip != "" {
			skips++
			if u.Device != "A70" || u.Backend != "snpe-dsp" {
				t.Fatalf("unexpected skip: %+v", u)
			}
			continue
		}
		if u.Job.ID == "" || u.Job.Backend != u.Backend || len(u.Job.Model) == 0 {
			t.Fatalf("bad job: %+v", u)
		}
		if u.Job.ID != again[i].Job.ID {
			t.Fatalf("expansion not deterministic at %d", i)
		}
	}
	// A70 (no DSP) skips snpe-dsp for all 3 models.
	if skips != 3 {
		t.Fatalf("skips = %d, want 3", skips)
	}
	feasible, total, err := m.FeasibleCells()
	if err != nil || feasible != 15 || total != 18 {
		t.Fatalf("FeasibleCells = %d/%d (%v)", feasible, total, err)
	}
}

func TestMatrixExpandRejectsBadSpecs(t *testing.T) {
	good := testMatrix(t)
	bad := good
	bad.Backends = []string{"cpu", "warp-drive"}
	if _, err := bad.Expand(); err == nil || !strings.Contains(err.Error(), "warp-drive") {
		t.Fatalf("unknown backend: %v", err)
	}
	bad = good
	bad.Devices = []string{"A70", "PDP11"}
	if _, err := bad.Expand(); err == nil {
		t.Fatal("unknown device must fail")
	}
	bad = good
	bad.Devices = []string{"A70", "A70"}
	if _, err := bad.Expand(); err == nil {
		t.Fatal("duplicate device must fail")
	}
	bad = good
	bad.Models = nil
	if _, err := bad.Expand(); err == nil {
		t.Fatal("empty models must fail")
	}
}

// runMatrix executes the test matrix on a local pool of the given size and
// returns the aggregated JSON and checksum.
func runMatrix(t *testing.T, m Matrix, replicas int) ([]byte, string) {
	t.Helper()
	pool, err := NewLocalPool(m.Devices, replicas)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	agg, err := pool.Run(context.Background(), m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	js, err := agg.ResultsJSON()
	if err != nil {
		t.Fatal(err)
	}
	sum, err := agg.Checksum()
	if err != nil {
		t.Fatal(err)
	}
	return js, sum
}

func TestFleetByteIdenticalAcrossPoolSizes(t *testing.T) {
	m := testMatrix(t)
	js1, sum1 := runMatrix(t, m, 1)
	js4, sum4 := runMatrix(t, m, 4)
	if sum1 != sum4 {
		t.Fatalf("pool-size determinism broken:\n1: %s\n4: %s", sum1, sum4)
	}
	if string(js1) != string(js4) {
		t.Fatal("results JSON differs between pool sizes")
	}
	// Sanity: the run actually measured things.
	var file struct {
		Schema string `json:"schema"`
		Units  []struct {
			Skip          string  `json:"skip"`
			Error         string  `json:"error"`
			MeanLatencyNs int64   `json:"meanLatencyNs"`
			MeanEnergyMj  float64 `json:"meanEnergyMj"`
		} `json:"units"`
	}
	if err := json.Unmarshal(js1, &file); err != nil {
		t.Fatal(err)
	}
	if file.Schema != ResultsSchema || len(file.Units) != 18 {
		t.Fatalf("file shape: schema=%q units=%d", file.Schema, len(file.Units))
	}
	measured := 0
	for _, u := range file.Units {
		if u.Skip == "" && u.Error == "" {
			measured++
			if u.MeanLatencyNs <= 0 || u.MeanEnergyMj <= 0 {
				t.Fatalf("degenerate measurement: %+v", u)
			}
		}
	}
	if measured != 15 {
		t.Fatalf("measured units = %d, want 15", measured)
	}
}

func TestFleetRemoteRunnerMatchesLocal(t *testing.T) {
	m := testMatrix(t)
	m.Devices = []string{"Q888"}
	m.Backends = []string{"cpu", "snpe-dsp"}
	_, localSum := runMatrix(t, m, 1)

	// Remote flavour: a self-powering agent (what benchd runs) driven over
	// TCP by a master with no handle on the device-side USB switch.
	dev, err := soc.NewDevice("Q888")
	if err != nil {
		t.Fatal(err)
	}
	agent := bench.NewAgent(dev, power.NewUSBSwitch(), power.NewMonitor())
	agent.SelfPower = true
	addr, err := agent.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()
	remote, err := NewRemoteRunner(context.Background(), "remote-q888", addr, time.Second, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if remote.DeviceModel() != "Q888" {
		t.Fatalf("discovered device = %s", remote.DeviceModel())
	}
	pool, err := NewPool(remote)
	if err != nil {
		t.Fatal(err)
	}
	agg, err := pool.Run(context.Background(), m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	remoteSum, err := agg.Checksum()
	if err != nil {
		t.Fatal(err)
	}
	if remoteSum != localSum {
		t.Fatal("remote benchd rig must aggregate byte-identically to the local rig")
	}
}

func TestFleetThermalPacingKeepsJobsIndependent(t *testing.T) {
	// A heavy continuous-inference matrix on a phone chassis: without
	// pacing, later queue positions inherit heat and throttle differently;
	// with pacing every job starts cold, so per-unit results match a
	// fresh-device run of the same job.
	ms, err := ZooModel(zoo.Spec{Task: zoo.TaskSemanticSegmentation, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	m := Matrix{
		Models:   []ModelSpec{ms},
		Devices:  []string{"S21"},
		Backends: []string{"cpu", "xnnpack", "gpu"},
		Threads:  4,
		Warmup:   1,
		Runs:     8,
	}
	pool, err := NewLocalPool(m.Devices, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	agg, err := pool.Run(context.Background(), m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	units := agg.Units()
	// Reference: each job on its own fresh rig.
	for _, ur := range units {
		if ur.Unit.Skip != "" {
			continue
		}
		fresh, err := NewLocalRunner("fresh", "S21")
		if err != nil {
			t.Fatal(err)
		}
		want, err := fresh.Run(context.Background(), ur.Unit.Job)
		fresh.Close()
		if err != nil {
			t.Fatal(err)
		}
		if want.Error != "" || ur.Result.Error != "" {
			t.Fatalf("job errors: %q / %q", want.Error, ur.Result.Error)
		}
		if ur.Result.MeanLatency() != want.MeanLatency() {
			t.Fatalf("%s: queued latency %v != fresh latency %v (pacing broken)",
				ur.Unit.Job.ID, ur.Result.MeanLatency(), want.MeanLatency())
		}
	}
}

func TestFleetScenarioProjection(t *testing.T) {
	var models []ModelSpec
	for i, task := range []zoo.Task{zoo.TaskSemanticSegmentation, zoo.TaskKeywordDetection} {
		ms, err := ZooModel(zoo.Spec{Task: task, Seed: int64(20 + i)})
		if err != nil {
			t.Fatal(err)
		}
		models = append(models, ms)
	}
	m := Matrix{
		Models:    models,
		Devices:   []string{"Q845"},
		Backends:  []string{"cpu"},
		Scenarios: bench.AllScenarios(),
		Threads:   4,
		Warmup:    1,
		Runs:      3,
	}
	pool, err := NewLocalPool(m.Devices, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	agg, err := pool.Run(context.Background(), m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	table, err := agg.ScenarioTable()
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range bench.AllScenarios() {
		if !strings.Contains(table, sc.Name) {
			t.Fatalf("scenario table missing %q:\n%s", sc.Name, table)
		}
	}
	rows, err := agg.scenarioRows()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(bench.AllScenarios()) {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string][]float64{}
	for _, r := range rows {
		if r.Models != 2 {
			t.Fatalf("row %s covers %d models", r.Scenario, r.Models)
		}
		for _, d := range r.Discharges {
			if d <= 0 {
				t.Fatalf("non-positive discharge in %s", r.Scenario)
			}
		}
		byName[r.Scenario] = r.Discharges
	}
	// Table 4 ordering: continuous vision >> typing.
	maxOf := func(xs []float64) float64 { return xs[len(xs)-1] }
	if maxOf(byName["Segm."]) <= maxOf(byName["Typing"]) {
		t.Fatal("segmentation must out-discharge typing")
	}
	if maxOf(byName["Super-R."]) <= maxOf(byName["Typing"]) {
		t.Fatal("super-resolution must out-discharge typing")
	}
}

// TestFleetExecutedMode runs a matrix through the measured backend
// end-to-end: zoo model -> mlrt interpreter -> fleet aggregation -> Table 4
// projection. The acceptance property is digest determinism: wall-clock
// latencies differ between runs, but every unit's output digest — and hence
// the aggregator's OutputChecksum — must be byte-identical across pool
// sizes.
func TestFleetExecutedMode(t *testing.T) {
	var models []ModelSpec
	for i, task := range []zoo.Task{zoo.TaskKeywordDetection, zoo.TaskCrashDetection} {
		ms, err := ZooModel(zoo.Spec{Task: task, Seed: int64(70 + i)})
		if err != nil {
			t.Fatal(err)
		}
		models = append(models, ms)
	}
	m := Matrix{
		Models:    models,
		Devices:   []string{"Q888"},
		Backends:  []string{"cpu"},
		Scenarios: bench.AllScenarios(),
		Threads:   1,
		Warmup:    1,
		Runs:      2,
		Execute:   true,
	}
	run := func(replicas int) *Aggregator {
		pool, err := NewLocalPool(m.Devices, replicas)
		if err != nil {
			t.Fatal(err)
		}
		defer pool.Close()
		agg, err := pool.Run(context.Background(), m, Config{})
		if err != nil {
			t.Fatal(err)
		}
		return agg
	}
	agg1 := run(1)
	for _, ur := range agg1.Units() {
		if ur.Unit.Skip != "" {
			continue
		}
		if ur.Result.Error != "" {
			t.Fatalf("%s: %s", ur.Unit.Job.ID, ur.Result.Error)
		}
		if ur.Result.OutputDigest == "" {
			t.Fatalf("%s: executed unit carries no output digest", ur.Unit.Job.ID)
		}
		if ur.Result.MeanLatency() <= 0 {
			t.Fatalf("%s: non-positive measured latency", ur.Unit.Job.ID)
		}
	}
	rows, err := agg1.scenarioRows()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(bench.AllScenarios()) {
		t.Fatalf("Table 4 rows = %d, want %d", len(rows), len(bench.AllScenarios()))
	}
	for _, r := range rows {
		for _, d := range r.Discharges {
			if d <= 0 {
				t.Fatalf("non-positive measured discharge in %s", r.Scenario)
			}
		}
	}
	sum1, err := agg1.OutputChecksum()
	if err != nil {
		t.Fatal(err)
	}
	sum4, err := run(4).OutputChecksum()
	if err != nil {
		t.Fatal(err)
	}
	if sum1 != sum4 {
		t.Fatalf("executed-mode output checksum differs across pool sizes:\n1: %s\n4: %s", sum1, sum4)
	}
}

// TestFleetExecutedModeRejectsUnsupported pins the typed error: a matrix
// containing a recurrent model cannot enter executed mode.
func TestFleetExecutedModeRejectsUnsupported(t *testing.T) {
	ms, err := ZooModel(zoo.Spec{Task: zoo.TaskAutoComplete, Seed: 80})
	if err != nil {
		t.Fatal(err)
	}
	m := Matrix{
		Models:   []ModelSpec{ms},
		Devices:  []string{"Q888"},
		Backends: []string{"cpu"},
		Execute:  true,
	}
	if _, err := m.Expand(); !errors.Is(err, errs.ErrUnsupportedOps) {
		t.Fatalf("Expand = %v, want ErrUnsupportedOps", err)
	}
	m.Execute = false
	if _, err := m.Expand(); err != nil {
		t.Fatalf("simulated mode must accept the same matrix: %v", err)
	}
}

func TestFleetStreamingCallbackAndTables(t *testing.T) {
	m := testMatrix(t)
	m.Devices = []string{"Q888"}
	m.Backends = []string{"cpu", "gpu"}
	pool, err := NewLocalPool(m.Devices, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	var mu struct {
		n int
		s []string
	}
	var seen = &mu
	var lock = make(chan struct{}, 1)
	lock <- struct{}{}
	agg, err := pool.Run(context.Background(), m, Config{OnUnit: func(ur UnitResult) {
		<-lock
		seen.n++
		seen.s = append(seen.s, ur.Unit.Job.ID)
		lock <- struct{}{}
	}})
	if err != nil {
		t.Fatal(err)
	}
	if seen.n != 6 {
		t.Fatalf("streamed %d units, want 6", seen.n)
	}
	if agg.Done() != 6 {
		t.Fatalf("aggregated %d units", agg.Done())
	}
	lat, eng := agg.LatencyTable(), agg.EnergyTable()
	for _, tab := range []string{lat, eng} {
		if !strings.Contains(tab, "Q888") || !strings.Contains(tab, "cpu") || !strings.Contains(tab, "gpu") {
			t.Fatalf("table missing cells:\n%s", tab)
		}
	}
	// No scenarios configured: scenario table renders empty.
	st, err := agg.ScenarioTable()
	if err != nil || st != "" {
		t.Fatalf("scenario table without scenarios: %q %v", st, err)
	}
}
