package fleet

import "github.com/gaugenn/gaugenn/internal/obs"

// Scheduler series. The per-device queue-depth gauges register lazily
// (device models arrive with the matrix), but every update happens under
// the schedQueue mutex with a pre-resolved handle — registration cost is
// paid once per model per process.
var (
	metUnits = obs.Default().Counter("gaugenn_fleet_units_total",
		"Matrix units served to completion.")
	metCooldowns = obs.Default().Counter("gaugenn_fleet_cooldowns_total",
		"Thermal cool-downs performed before jobs.")
	metRequeues = obs.Default().Counter("gaugenn_fleet_requeues_total",
		"Units returned to their queue after a failed or cancelled serve.")
	metExhausted = obs.Default().Counter("gaugenn_fleet_exhausted_total",
		"Units that exhausted their runners or attempt budget (stranded units included).")
)

// queueDepthGauge resolves the pending-unit gauge for one device model.
func queueDepthGauge(deviceModel string) *obs.Gauge {
	return obs.Default().Gauge("gaugenn_fleet_queue_depth",
		"Pending units per device-model queue.",
		obs.Label{Name: "device", Value: deviceModel})
}
