package obs

import (
	"bufio"
	"io"
	"sort"
	"strconv"
)

// WritePrometheus renders every registered family in the Prometheus text
// exposition format (version 0.0.4): families sorted by name, children
// sorted by label set, histograms expanded to cumulative _bucket series
// plus _sum and _count. Values are point-in-time atomic loads; the scrape
// never blocks metric writers.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	// Children maps only grow, and child handles are immutable once
	// registered, so snapshotting the slice headers under the lock and
	// reading values after release is safe.
	snap := make([][]*child, len(fams))
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	for i, f := range fams {
		cs := make([]*child, 0, len(f.children))
		for _, c := range f.children {
			cs = append(cs, c)
		}
		sort.Slice(cs, func(a, b int) bool { return cs[a].labels < cs[b].labels })
		snap[i] = cs
	}
	r.mu.Unlock()

	bw := bufio.NewWriter(w)
	for i, f := range fams {
		bw.WriteString("# HELP ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(f.help)
		bw.WriteString("\n# TYPE ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(f.kind.promType())
		bw.WriteByte('\n')
		for _, c := range snap[i] {
			switch f.kind {
			case kindCounter:
				writeSample(bw, f.name, "", c.labels, "", formatUint(c.metric.(*Counter).Value()))
			case kindFloatCounter:
				writeSample(bw, f.name, "", c.labels, "", formatFloat(c.metric.(*FloatCounter).Value()))
			case kindGauge:
				writeSample(bw, f.name, "", c.labels, "", formatFloat(c.metric.(*Gauge).Value()))
			case kindHistogram:
				h := c.metric.(*Histogram)
				counts := h.BucketCounts()
				var cum uint64
				for bi, bound := range h.bounds {
					cum += counts[bi]
					writeSample(bw, f.name, "_bucket", c.labels, `le="`+formatFloat(bound)+`"`, formatUint(cum))
				}
				cum += counts[len(counts)-1]
				writeSample(bw, f.name, "_bucket", c.labels, `le="+Inf"`, formatUint(cum))
				writeSample(bw, f.name, "_sum", c.labels, "", formatFloat(h.Sum()))
				writeSample(bw, f.name, "_count", c.labels, "", formatUint(h.Count()))
			}
		}
	}
	return bw.Flush()
}

// writeSample emits one `name{labels,extra} value` line. labels is the
// child's canonical set, extra the per-sample le= pair for buckets.
func writeSample(bw *bufio.Writer, name, suffix, labels, extra, value string) {
	bw.WriteString(name)
	bw.WriteString(suffix)
	if labels != "" || extra != "" {
		bw.WriteByte('{')
		bw.WriteString(labels)
		if labels != "" && extra != "" {
			bw.WriteByte(',')
		}
		bw.WriteString(extra)
		bw.WriteByte('}')
	}
	bw.WriteByte(' ')
	bw.WriteString(value)
	bw.WriteByte('\n')
}

func formatUint(v uint64) string { return strconv.FormatUint(v, 10) }

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
