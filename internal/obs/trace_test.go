package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/gaugenn/gaugenn/internal/event"
)

// stamp fabricates a Stamp at a fixed offset so trace tests are
// deterministic without sleeping.
func stamp(base time.Time, offset time.Duration, seq uint64) event.Stamp {
	return event.Stamp{Seq: seq, Time: base.Add(offset)}
}

func TestTracerChromeTrace(t *testing.T) {
	base := time.Now()
	tr := NewTracer("study test")
	evs := []event.Event{
		event.StageStart{Stamp: stamp(base, 0, 1), Stage: "crawl", Snapshot: "2020", Total: 10},
		event.StageStart{Stamp: stamp(base, time.Millisecond, 2), Stage: "crawl", Snapshot: "2021", Total: 10},
		event.StageProgress{Stamp: stamp(base, 2*time.Millisecond, 3), Stage: "crawl", Snapshot: "2020", Done: 5, Total: 10},
		event.StageWarning{Stamp: stamp(base, 3*time.Millisecond, 4), Stage: "crawl", Snapshot: "2020", Package: "com.x", Err: "boom"},
		event.StageDone{Stamp: stamp(base, 4*time.Millisecond, 5), Stage: "crawl", Snapshot: "2020", Total: 10},
		event.CacheStats{Stamp: stamp(base, 5*time.Millisecond, 6), StudyID: "s", WarmReports: 1},
		// crawl-2021 never gets a StageDone: a cancelled snapshot.
	}
	for _, ev := range evs {
		tr.Observe(ev)
	}
	js, err := tr.ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	var out []map[string]any
	if err := json.Unmarshal(js, &out); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, js)
	}
	var complete, instant, meta int
	var sawRoot bool
	for _, e := range out {
		switch e["ph"] {
		case "X":
			complete++
			name := e["name"].(string)
			if name == "study test" {
				sawRoot = true
				if e["ts"].(float64) != 0 {
					t.Fatalf("root span must start at ts 0: %v", e)
				}
			}
			if name == "crawl (2021)" {
				args := e["args"].(map[string]any)
				if args["unfinished"] != true {
					t.Fatalf("cancelled span must be flagged unfinished: %v", e)
				}
				// Truncated at the last observed event (5 ms), started at 1 ms.
				if dur := e["dur"].(float64); dur != 4000 {
					t.Fatalf("unfinished span dur = %v us, want 4000", dur)
				}
			}
			if name == "crawl (2020)" {
				if dur := e["dur"].(float64); dur != 4000 {
					t.Fatalf("crawl (2020) dur = %v us, want 4000", dur)
				}
			}
		case "i":
			instant++
		case "M":
			meta++
		}
	}
	if !sawRoot {
		t.Fatal("no root span")
	}
	if complete != 3 { // root + two crawl spans
		t.Fatalf("complete events = %d, want 3", complete)
	}
	if instant != 2 { // warning + cache stats
		t.Fatalf("instant events = %d, want 2", instant)
	}
	if meta < 3 { // process_name + >= 2 thread_names
		t.Fatalf("metadata events = %d, want >= 3", meta)
	}
}

func TestTracerEmptyTrace(t *testing.T) {
	js, err := NewTracer("idle").ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	var out []any
	if err := json.Unmarshal(js, &out); err != nil || len(out) != 0 {
		t.Fatalf("empty tracer must render an empty JSON array, got %s (%v)", js, err)
	}
}

func TestTracerIgnoresUnstamped(t *testing.T) {
	tr := NewTracer("x")
	tr.Observe(event.StageStart{Stage: "crawl", Total: 1}) // zero Stamp
	js, err := tr.ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	if string(js) != "[]" {
		t.Fatalf("unstamped events must not open the timeline: %s", js)
	}
}

func TestDebugHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("gaugenn_demo_total", "h").Add(7)
	r.Gauge("gaugenn_demo_depth", "h").Set(2)
	srv := httptest.NewServer(DebugHandler(r))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	if !strings.Contains(body, "gaugenn_demo_total 7") {
		t.Fatalf("/metrics missing counter:\n%s", body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}

	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status string             `json:"status"`
		Gauges map[string]float64 `json:"gauges"`
	}
	if err := json.Unmarshal([]byte(readAll(t, resp)), &health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" || health.Gauges["gaugenn_demo_depth"] != 2 {
		t.Fatalf("healthz = %+v", health)
	}

	resp, err = http.Get(srv.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof cmdline status = %d", resp.StatusCode)
	}
}

func TestStartDebugResolvesAddr(t *testing.T) {
	ds, err := StartDebug("127.0.0.1:0", NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	if strings.HasSuffix(ds.Addr, ":0") {
		t.Fatalf("addr %q not resolved", ds.Addr)
	}
	resp, err := http.Get("http://" + ds.Addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status = %d", resp.StatusCode)
	}
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
