package obs

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/gaugenn/gaugenn/internal/event"
)

// Tracer folds the typed event stream into spans. Each (stage, snapshot)
// pair becomes one span opened by StageStart and closed by StageDone;
// StageProgress updates the span's step count; StageWarning and
// CacheStats become instant markers. The whole run nests under a root
// span stretching from the first to the last observed event.
//
// Observe is safe to install directly as (or inside) an event handler:
// it serialises internally, so the concurrent-handler delivery contract
// of package event is satisfied.
//
// ChromeTrace renders the collected spans as Chrome trace-event JSON
// (the chrome://tracing / Perfetto "JSON Array Format"): complete events
// (ph "X") for spans, instant events (ph "i") for warnings and cache
// stats, and thread-name metadata (ph "M") mapping each snapshot to its
// own track. Timestamps are microseconds relative to the first event,
// computed from monotonic Stamp.Time differences, so wall-clock steps
// never distort a span.
type Tracer struct {
	root string

	mu      sync.Mutex
	started bool
	first   time.Time // stamp of the first observed event
	last    time.Time // stamp of the most recent observed event
	spans   map[spanKey]*span
	order   []spanKey      // span creation order, for stable output
	tids    map[string]int // snapshot -> thread id
	marks   []mark         // instant events
}

type spanKey struct{ stage, snapshot string }

type span struct {
	key        spanKey
	start, end time.Time
	done       int  // last reported Done
	total      int  // Total from StageStart (or best known)
	closed     bool // saw StageDone
}

type mark struct {
	at       time.Time
	snapshot string
	name     string
	args     map[string]any
}

// NewTracer returns a tracer whose root span carries the given name
// (typically the study ID or "study").
func NewTracer(root string) *Tracer {
	return &Tracer{
		root:  root,
		spans: map[spanKey]*span{},
		tids:  map[string]int{},
	}
}

// Observe records one event. Install it as an event handler:
//
//	opts.OnEvent = tracer.Observe
func (t *Tracer) Observe(ev event.Event) {
	t.mu.Lock()
	defer t.mu.Unlock()
	stamp := stampOf(ev)
	if stamp.Time.IsZero() {
		// Unstamped events (none in practice — emitters stamp at the
		// single emission point) still advance nothing but are kept out
		// of the timeline rather than collapsing to t=0.
		return
	}
	if !t.started || stamp.Time.Before(t.first) {
		if !t.started {
			t.first = stamp.Time
			t.started = true
		} else {
			t.first = stamp.Time
		}
	}
	if stamp.Time.After(t.last) {
		t.last = stamp.Time
	}
	switch v := ev.(type) {
	case event.StageStart:
		k := spanKey{v.Stage, v.Snapshot}
		if _, ok := t.spans[k]; !ok {
			t.spans[k] = &span{key: k, start: stamp.Time, total: v.Total}
			t.order = append(t.order, k)
			t.tidFor(v.Snapshot)
		}
	case event.StageProgress:
		if sp := t.span(v.Stage, v.Snapshot, stamp.Time); sp != nil {
			sp.done = v.Done
			if v.Total > sp.total {
				sp.total = v.Total
			}
		}
	case event.StageDone:
		if sp := t.span(v.Stage, v.Snapshot, stamp.Time); sp != nil {
			sp.end = stamp.Time
			sp.closed = true
			if v.Total > sp.total {
				sp.total = v.Total
			}
			sp.done = sp.total
		}
	case event.StageWarning:
		t.marks = append(t.marks, mark{
			at: stamp.Time, snapshot: v.Snapshot, name: "warning:" + v.Stage,
			args: map[string]any{"package": v.Package, "err": v.Err},
		})
	case event.CacheStats:
		t.marks = append(t.marks, mark{
			at: stamp.Time, snapshot: "", name: "cache-stats",
			args: map[string]any{
				"study":              v.StudyID,
				"warm_reports":       v.WarmReports,
				"extracted_reports":  v.ExtractedReports,
				"decodes":            v.Stats.Decodes,
				"profiles":           v.Stats.Profiles,
				"warm_payload_hits":  v.Stats.WarmPayloadHits,
				"warm_analysis_hits": v.Stats.WarmAnalysisHits,
			},
		})
	}
}

// span finds (or, for progress on a stage whose Start was missed,
// creates) the span for a stage.
func (t *Tracer) span(stage, snapshot string, at time.Time) *span {
	k := spanKey{stage, snapshot}
	sp, ok := t.spans[k]
	if !ok {
		sp = &span{key: k, start: at}
		t.spans[k] = sp
		t.order = append(t.order, k)
		t.tidFor(snapshot)
	}
	return sp
}

// tidFor assigns thread ids in first-seen snapshot order; tid 0 is the
// root track.
func (t *Tracer) tidFor(snapshot string) int {
	if id, ok := t.tids[snapshot]; ok {
		return id
	}
	id := len(t.tids) + 1
	t.tids[snapshot] = id
	return id
}

// traceEvent is one entry in the Chrome trace JSON array.
type traceEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	Ts    int64          `json:"ts"` // microseconds
	Dur   int64          `json:"dur,omitempty"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// ChromeTrace renders everything observed so far as a Chrome trace-event
// JSON array. Spans never closed by a StageDone (cancelled runs) are
// truncated at the last observed timestamp and flagged unfinished, so a
// partial run still loads.
func (t *Tracer) ChromeTrace() ([]byte, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.started {
		return json.Marshal([]traceEvent{})
	}
	us := func(at time.Time) int64 { return at.Sub(t.first).Microseconds() }
	var evs []traceEvent

	evs = append(evs, traceEvent{
		Name: "process_name", Phase: "M", Pid: 1, Tid: 0,
		Args: map[string]any{"name": "gaugenn"},
	})
	evs = append(evs, traceEvent{
		Name: "thread_name", Phase: "M", Pid: 1, Tid: 0,
		Args: map[string]any{"name": "study"},
	})
	snaps := make([]string, 0, len(t.tids))
	for s := range t.tids {
		snaps = append(snaps, s)
	}
	sort.Slice(snaps, func(i, j int) bool { return t.tids[snaps[i]] < t.tids[snaps[j]] })
	for _, s := range snaps {
		name := s
		if name == "" {
			name = "pipeline"
		}
		evs = append(evs, traceEvent{
			Name: "thread_name", Phase: "M", Pid: 1, Tid: t.tids[s],
			Args: map[string]any{"name": "snapshot " + name},
		})
	}

	// Root span covers the full observed window on tid 0.
	evs = append(evs, traceEvent{
		Name: t.root, Phase: "X", Ts: 0, Dur: maxInt64(us(t.last), 1), Pid: 1, Tid: 0,
	})

	for _, k := range t.order {
		sp := t.spans[k]
		end := sp.end
		if !sp.closed {
			end = t.last
		}
		args := map[string]any{"done": sp.done, "total": sp.total}
		if !sp.closed {
			args["unfinished"] = true
		}
		name := sp.key.stage
		if sp.key.snapshot != "" {
			name = fmt.Sprintf("%s (%s)", sp.key.stage, sp.key.snapshot)
		}
		evs = append(evs, traceEvent{
			Name: name, Phase: "X",
			Ts: us(sp.start), Dur: maxInt64(end.Sub(sp.start).Microseconds(), 1),
			Pid: 1, Tid: t.tidFor(sp.key.snapshot), Args: args,
		})
	}

	for _, m := range t.marks {
		evs = append(evs, traceEvent{
			Name: m.name, Phase: "i", Ts: us(m.at),
			Pid: 1, Tid: t.tidFor(m.snapshot), Scope: "t", Args: m.args,
		})
	}
	return json.MarshalIndent(evs, "", " ")
}

// stampOf extracts the Stamp from any event variant.
func stampOf(ev event.Event) event.Stamp {
	switch v := ev.(type) {
	case event.StageStart:
		return v.Stamp
	case event.StageProgress:
		return v.Stamp
	case event.StageDone:
		return v.Stamp
	case event.StageWarning:
		return v.Stamp
	case event.CacheStats:
		return v.Stamp
	}
	return event.Stamp{}
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
