package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestRegistryIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("test_total", "help")
	b := r.Counter("test_total", "other help ignored")
	if a != b {
		t.Fatal("same name+labels must return the same counter")
	}
	la := r.Counter("test_labelled_total", "h", Label{Name: "kind", Value: "x"})
	lb := r.Counter("test_labelled_total", "h", Label{Name: "kind", Value: "y"})
	if la == lb {
		t.Fatal("different label values must be distinct children")
	}
	if lc := r.Counter("test_labelled_total", "h", Label{Name: "kind", Value: "x"}); lc != la {
		t.Fatal("same label value must return the existing child")
	}
}

func TestRegistryPanicsOnTypeConflict(t *testing.T) {
	r := NewRegistry()
	r.Counter("conflict_total", "h")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge must panic")
		}
	}()
	r.Gauge("conflict_total", "h")
}

func TestRegistryPanicsOnInvalidName(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("invalid metric name must panic")
		}
	}()
	r.Counter("bad-name", "h")
}

func TestCounterGaugeFloatCounter(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "h")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("g", "h")
	g.Set(2.5)
	g.Inc()
	g.Dec()
	g.Add(-0.5)
	if got := g.Value(); got != 2 {
		t.Fatalf("gauge = %v, want 2", got)
	}
	f := r.FloatCounter("f_total", "h")
	f.Add(1.25)
	f.Add(-3) // dropped: counters never go backwards
	f.Add(math.NaN())
	if got := f.Value(); got != 1.25 {
		t.Fatalf("float counter = %v, want 1.25", got)
	}
}

func TestHistogramBucketMath(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_seconds", "h", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	// Bounds are inclusive upper edges: 0.5 and 1 land in le=1, 1.5 in
	// le=2, 3 in le=4, 100 in +Inf.
	want := []uint64{2, 1, 1, 1}
	got := h.BucketCounts()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, got[i], want[i], got)
		}
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 106 {
		t.Fatalf("sum = %v, want 106", h.Sum())
	}
}

// TestHistogramConcurrent drives many writers at one histogram and
// asserts no observation is lost — the race detector additionally proves
// the path lock-free-safe.
func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("conc_seconds", "h", []float64{0.25, 0.5, 0.75})
	const workers, per = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(i%4) * 0.25)
			}
		}(w)
	}
	wg.Wait()
	if got := h.Count(); got != workers*per {
		t.Fatalf("count = %d, want %d", got, workers*per)
	}
	var bucketSum uint64
	for _, c := range h.BucketCounts() {
		bucketSum += c
	}
	if bucketSum != workers*per {
		t.Fatalf("bucket total = %d, want %d", bucketSum, workers*per)
	}
	// Each worker observes 0, .25, .5, .75 cyclically: per/4 each, so
	// every bucket (and +Inf staying empty is wrong — .75 is inclusive).
	want := uint64(workers * per / 4)
	for i, c := range h.BucketCounts()[:3] {
		if c != 2*want && i == 0 {
			// bucket 0 (le=0.25) holds 0 and 0.25: two of the four values.
			t.Fatalf("bucket 0 = %d, want %d", c, 2*want)
		}
	}
}

func TestHotPathZeroAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("alloc_total", "h")
	g := r.Gauge("alloc_g", "h")
	h := r.Histogram("alloc_seconds", "h", nil)
	if n := testing.AllocsPerRun(1000, func() { c.Inc() }); n != 0 {
		t.Fatalf("Counter.Inc allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { g.Set(3) }); n != 0 {
		t.Fatalf("Gauge.Set allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.Observe(0.3) }); n != 0 {
		t.Fatalf("Histogram.Observe allocates %v/op", n)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("z_total", "last family").Add(3)
	r.Counter("a_total", "first family", Label{Name: "kind", Value: `qu"ote`}).Inc()
	r.Gauge("mid_gauge", "a gauge").Set(1.5)
	h := r.Histogram("lat_seconds", "latency", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP a_total first family\n# TYPE a_total counter\n" + `a_total{kind="qu\"ote"} 1`,
		"# TYPE mid_gauge gauge\nmid_gauge 1.5",
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{le="0.1"} 1`,
		`lat_seconds_bucket{le="1"} 2`,
		`lat_seconds_bucket{le="+Inf"} 3`,
		"lat_seconds_sum 5.55",
		"lat_seconds_count 3",
		"z_total 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// Families must render in sorted name order.
	if strings.Index(out, "a_total") > strings.Index(out, "z_total") {
		t.Fatalf("families not sorted:\n%s", out)
	}
}

func TestGaugeSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Gauge("app_depth", "h", Label{Name: "device", Value: "Q845"}).Set(4)
	r.Gauge("app_other", "h").Set(1)
	r.Counter("app_total", "h").Inc() // not a gauge: excluded
	r.Gauge("sys_depth", "h").Set(9)  // wrong prefix: excluded
	snap := r.GaugeSnapshot("app_")
	if len(snap) != 2 {
		t.Fatalf("snapshot = %v, want 2 entries", snap)
	}
	if snap[`app_depth{device="Q845"}`] != 4 {
		t.Fatalf("labelled gauge missing: %v", snap)
	}
}
