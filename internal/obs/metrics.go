// Package obs is gaugeNN's observability layer: a dependency-light
// metrics registry (counters, gauges, fixed-bucket histograms — atomic,
// zero-alloc on the hot path) with Prometheus text-format exposition, a
// span tracer that folds the typed event stream (internal/event) into
// Chrome trace-event JSON, and a debug HTTP server exposing /metrics,
// /healthz and net/http/pprof behind the cmds' -debug-addr flag.
//
// Instrumented packages register their metrics once at init against the
// Default registry and keep the returned handles in package-level vars;
// the hot-path operations (Counter.Add, Gauge.Set, Histogram.Observe)
// are single atomic updates with no allocation and no locks, so
// instrumentation is safe inside the extract/analysis allocation
// ceilings. Registration is idempotent: asking for an existing
// (name, labels) pair returns the same handle, so tests and repeated
// runs never double-register.
//
// See docs/observability.md for the metric catalogue and span model.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one constant name="value" pair attached to a metric at
// registration. Families with per-key children (per store kind, per
// serve route, per fleet device) register one child per value and keep
// the handles; nothing is looked up on the hot path.
type Label struct {
	Name, Value string
}

// Counter is a monotonically increasing integer metric.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (counters only go up; negative deltas are a Gauge's job).
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// FloatCounter is a monotonically increasing float metric — accumulated
// seconds, mostly. It exposes as a Prometheus counter.
type FloatCounter struct {
	bits atomic.Uint64
}

// Add accumulates v (must be >= 0; negative values are dropped so a
// buggy caller cannot make a counter go backwards).
func (c *FloatCounter) Add(v float64) {
	if v < 0 || v != v { // negative or NaN
		return
	}
	for {
		old := c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if c.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// AddDuration accumulates d as seconds.
func (c *FloatCounter) AddDuration(d time.Duration) { c.Add(d.Seconds()) }

// Value returns the accumulated total.
func (c *FloatCounter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Gauge is a float metric that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// SetInt replaces the gauge's value with an integer reading.
func (g *Gauge) SetInt(v int64) { g.Set(float64(v)) }

// Add moves the gauge by delta (negative deltas decrement).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc / Dec move the gauge by one — the in-flight pattern.
func (g *Gauge) Inc() { g.Add(1) }
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current reading.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket distribution. Buckets are upper bounds in
// ascending order; observations above the last bound land in the
// implicit +Inf bucket. Observe is a bounded linear scan plus two atomic
// adds — no locks, no allocation — and the bucket counts, total count
// and sum are each individually atomic: concurrent writers never lose
// an observation, and exposition reads a consistent-enough snapshot
// (Prometheus scrapes tolerate the count/sum skew of in-flight
// observations).
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf
	sum    FloatCounter
	count  atomic.Uint64
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// ObserveDuration records d as seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return h.sum.Value() }

// BucketCounts returns a snapshot of the per-bucket (non-cumulative)
// counts, the last entry being the +Inf bucket.
func (h *Histogram) BucketCounts() []uint64 {
	out := make([]uint64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// DurationBuckets are the default latency bounds, in seconds: 100µs to
// ~40s in powers of four — wide enough for both a sub-millisecond store
// get and a multi-second corpus decode.
var DurationBuckets = []float64{0.0001, 0.0004, 0.0016, 0.0064, 0.0256, 0.1024, 0.4096, 1.6384, 6.5536, 26.2144}

// ExponentialBuckets returns n upper bounds starting at start and
// growing by factor.
func ExponentialBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n <= 0 {
		panic("obs: ExponentialBuckets needs start > 0, factor > 1, n > 0")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// metricKind discriminates families at registration and exposition.
type metricKind int

const (
	kindCounter metricKind = iota
	kindFloatCounter
	kindGauge
	kindHistogram
)

// promType renders the family's TYPE line.
func (k metricKind) promType() string {
	switch k {
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	default:
		return "counter"
	}
}

// child is one registered metric instance inside a family.
type child struct {
	labels string // canonical rendered label set, "" for unlabelled
	metric any
}

// family is all children registered under one metric name.
type family struct {
	name, help string
	kind       metricKind
	buckets    []float64 // histograms: the family's shared bounds
	children   map[string]*child
}

// Registry holds metric families and renders them in Prometheus text
// format. All methods are safe for concurrent use; registration takes
// the registry lock, metric updates take none.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// defaultRegistry backs Default: the process-wide registry every
// instrumented package registers against.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry — the one the debug server
// exposes on /metrics.
func Default() *Registry { return defaultRegistry }

// Counter registers (or returns the existing) counter under name and
// constant labels.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return getOrCreate(r, name, help, kindCounter, nil, labels, func() *Counter { return &Counter{} })
}

// FloatCounter registers (or returns the existing) float counter.
func (r *Registry) FloatCounter(name, help string, labels ...Label) *FloatCounter {
	return getOrCreate(r, name, help, kindFloatCounter, nil, labels, func() *FloatCounter { return &FloatCounter{} })
}

// Gauge registers (or returns the existing) gauge.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	return getOrCreate(r, name, help, kindGauge, nil, labels, func() *Gauge { return &Gauge{} })
}

// Histogram registers (or returns the existing) histogram with the given
// ascending bucket upper bounds (nil takes DurationBuckets). All
// children of one family share the first registration's bounds.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	if buckets == nil {
		buckets = DurationBuckets
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("obs: histogram %s buckets not ascending: %v", name, buckets))
		}
	}
	return getOrCreate(r, name, help, kindHistogram, buckets, labels, func() *Histogram {
		h := &Histogram{bounds: buckets}
		h.counts = make([]atomic.Uint64, len(buckets)+1)
		return h
	})
}

// getOrCreate is the shared registration path: one family per name, one
// child per canonical label set, idempotent, kind-checked.
func getOrCreate[M any](r *Registry, name, help string, kind metricKind, buckets []float64, labels []Label, mk func() M) M {
	if !validMetricName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	ls := canonicalLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, buckets: buckets, children: map[string]*child{}}
		r.families[name] = f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %s re-registered as %s (was %s)", name, kind.promType(), f.kind.promType()))
	}
	if c, ok := f.children[ls]; ok {
		m, ok := c.metric.(M)
		if !ok {
			panic(fmt.Sprintf("obs: metric %s{%s} re-registered with a different type", name, ls))
		}
		return m
	}
	m := mk()
	f.children[ls] = &child{labels: ls, metric: m}
	return m
}

// validMetricName checks the Prometheus name charset.
func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// canonicalLabels renders a label set in sorted, escaped, stable form —
// the child key and the exposition text between the braces.
func canonicalLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	var b strings.Builder
	for i, l := range ls {
		if !validMetricName(l.Name) {
			panic(fmt.Sprintf("obs: invalid label name %q", l.Name))
		}
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		escapeLabelValue(&b, l.Value)
		b.WriteByte('"')
	}
	return b.String()
}

// escapeLabelValue applies the Prometheus text-format escapes.
func escapeLabelValue(b *strings.Builder, v string) {
	for i := 0; i < len(v); i++ {
		switch c := v[i]; c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(c)
		}
	}
}

// GaugeSnapshot returns the current value of every gauge whose name
// starts with prefix, keyed by name plus rendered labels — the /healthz
// surface for the study cache gauges.
func (r *Registry) GaugeSnapshot(prefix string) map[string]float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := map[string]float64{}
	for name, f := range r.families {
		if f.kind != kindGauge || !strings.HasPrefix(name, prefix) {
			continue
		}
		for _, c := range f.children {
			key := name
			if c.labels != "" {
				key += "{" + c.labels + "}"
			}
			out[key] = c.metric.(*Gauge).Value()
		}
	}
	return out
}
