package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// DebugHandler returns the debug surface served behind -debug-addr:
//
//	/metrics      Prometheus text exposition of reg
//	/healthz      JSON liveness probe incl. a gauge snapshot
//	/debug/pprof  the standard net/http/pprof profiling endpoints
//
// The handler is deliberately separate from the serve API mux: profiling
// and metrics bind to an operator-chosen (usually loopback) address, not
// the public query port.
func DebugHandler(reg *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := reg.WritePrometheus(w); err != nil {
			// Headers are gone; all we can do is note it for the scraper's log.
			fmt.Fprintf(w, "\n# scrape truncated: %v\n", err)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{
			"status": "ok",
			"gauges": reg.GaugeSnapshot("gaugenn_"),
		})
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// DebugServer is a running debug endpoint bound to a concrete address.
type DebugServer struct {
	Addr string // the bound address (resolves ":0")
	srv  *http.Server
	ln   net.Listener
}

// StartDebug binds addr and serves DebugHandler(reg) until Close. It
// listens eagerly so ":0" callers (tests, smoke jobs) can read the
// resolved Addr immediately; serving happens on a background goroutine.
func StartDebug(addr string, reg *Registry) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("debug listener: %w", err)
	}
	srv := &http.Server{Handler: DebugHandler(reg), ReadHeaderTimeout: 5 * time.Second}
	ds := &DebugServer{Addr: ln.Addr().String(), srv: srv, ln: ln}
	go srv.Serve(ln)
	return ds, nil
}

// Close stops the server and releases the listener.
func (d *DebugServer) Close() error { return d.srv.Close() }
