package exec

import (
	"crypto/sha256"
	"encoding/binary"
	"math"
	"time"

	"github.com/gaugenn/gaugenn/internal/nn/graph"
)

// Instance is one worker's mutable run state over a shared Program: the two
// activation arenas, the float scratch, the per-tensor dynamic quantization
// parameters and the timing accumulators. Everything is allocated by
// NewInstance; Run and Digest allocate nothing, which the AllocsPerRun test
// and the exec-bench CI job both gate. An Instance is not safe for
// concurrent use — Pool gives each worker its own.
type Instance struct {
	prog *Program

	floatArena []float32
	byteArena  []byte
	scratch    []float32

	// Dynamic per-tensor quantization parameters, reset to the graph's
	// static values at the top of every Run.
	scales []float64
	zps    []int32

	// Reused per-step staging (capacity fixed at the widest layer).
	views     [][]float32
	shapesBuf []graph.Shape
	digestBuf []byte

	opsByClass [numClasses]int64
	nsByClass  [numClasses]int64
	runs       int64
	totalNS    int64
}

// NewInstance allocates run state for the program: the only allocations an
// inference ever performs happen here.
func (p *Program) NewInstance() *Instance {
	maxIn := 1
	for si := range p.steps {
		if n := len(p.steps[si].in); n > maxIn {
			maxIn = n
		}
	}
	digestLen := 0
	for _, tid := range p.outputs {
		t := &p.tensors[tid]
		if t.isFloat {
			digestLen += t.elems * 4
		} else {
			digestLen += t.size
		}
	}
	return &Instance{
		prog:       p,
		floatArena: make([]float32, p.floatArena),
		byteArena:  make([]byte, p.byteArena),
		scratch:    make([]float32, p.scratch),
		scales:     make([]float64, len(p.tensors)),
		zps:        make([]int32, len(p.tensors)),
		views:      make([][]float32, 0, maxIn),
		shapesBuf:  make([]graph.Shape, 0, maxIn),
		digestBuf:  make([]byte, 0, digestLen),
	}
}

// Run executes one inference over deterministic synthetic inputs derived
// from seed, timing every operator. The same (program, seed) pair produces
// byte-identical outputs on every run, worker and pool size.
func (in *Instance) Run(seed uint64) time.Duration {
	p := in.prog
	for i := range p.tensors {
		in.scales[i] = p.tensors[i].scale
		in.zps[i] = p.tensors[i].zeroPoint
	}
	for _, tid := range p.inputs {
		in.fillInput(tid, seed)
	}
	start := time.Now()
	for si := range p.steps {
		st := &p.steps[si]
		t0 := time.Now()
		in.runStep(st)
		d := time.Since(t0)
		in.opsByClass[st.class]++
		in.nsByClass[st.class] += int64(d)
		metOpsTotal[st.class].Inc()
		metOpSeconds[st.class].Observe(d.Seconds())
	}
	total := time.Since(start)
	in.runs++
	in.totalNS += int64(total)
	metRuns.Inc()
	metRunSeconds.Observe(total.Seconds())
	return total
}

// Digest hashes every output tensor's bytes (fp32 as little-endian bit
// patterns, quantized tensors raw) — the determinism witness carried
// through bench results into fleet aggregation.
func (in *Instance) Digest() [32]byte {
	buf := in.digestBuf[:0]
	for _, tid := range in.prog.outputs {
		t := &in.prog.tensors[tid]
		if t.isFloat {
			for _, v := range in.floatArena[t.off : t.off+t.size] {
				buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(v))
			}
		} else {
			buf = append(buf, in.byteArena[t.off:t.off+t.size]...)
		}
	}
	return sha256.Sum256(buf)
}

// Output returns a real-valued copy of a named output tensor (dequantized
// if needed) — a test and reporting convenience, not a hot path.
func (in *Instance) Output(name string) []float32 {
	for _, tid := range in.prog.outputs {
		t := &in.prog.tensors[tid]
		if t.name != name {
			continue
		}
		out := make([]float32, t.elems)
		if t.isFloat {
			copy(out, in.floatArena[t.off:t.off+t.size])
		} else {
			dequantize(out, in.byteArena[t.off:t.off+t.size], t.dtype, in.scales[tid], in.zps[tid])
		}
		return out
	}
	return nil
}

// fillInput writes deterministic synthetic data: floats uniform in [-1, 1),
// quantized tensors uniform over their byte range with a fixed unit scale.
func (in *Instance) fillInput(tid int, seed uint64) {
	t := &in.prog.tensors[tid]
	s := seed ^ (uint64(tid)+1)*0x9e3779b97f4a7c15
	if t.isFloat {
		buf := in.floatArena[t.off : t.off+t.size]
		for i := range buf {
			buf[i] = float32(splitmix64(&s)>>40)/float32(1<<23) - 1
		}
		return
	}
	buf := in.byteArena[t.off : t.off+t.size]
	for i := range buf {
		buf[i] = byte(splitmix64(&s) >> 56)
	}
	switch t.dtype {
	case graph.UInt8:
		in.scales[tid], in.zps[tid] = 1.0/127, 128
	case graph.Int16:
		in.scales[tid], in.zps[tid] = 1.0/32767, 0
	default:
		in.scales[tid], in.zps[tid] = 1.0/127, 0
	}
}

func (in *Instance) f32(tid int) []float32 {
	t := &in.prog.tensors[tid]
	return in.floatArena[t.off : t.off+t.size]
}

func (in *Instance) raw(tid int) []byte {
	t := &in.prog.tensors[tid]
	return in.byteArena[t.off : t.off+t.size]
}

// floatViewAt returns a real-valued view of a tensor: its arena buffer when
// it is fp32, otherwise a dequantized copy staged in scratch at *off.
func (in *Instance) floatViewAt(tid int, off *int) []float32 {
	t := &in.prog.tensors[tid]
	if t.isFloat {
		return in.floatArena[t.off : t.off+t.size]
	}
	seg := in.scratch[*off : *off+t.elems]
	*off += t.elems
	dequantize(seg, in.byteArena[t.off:t.off+t.size], t.dtype, in.scales[tid], in.zps[tid])
	return seg
}

// storeQuant dynamic-range requantizes a real-valued result into a
// quantized tensor's byte buffer: scale = maxabs/limit, zero-point 0 (128
// for uint8).
func (in *Instance) storeQuant(tid int, src []float32) {
	t := &in.prog.tensors[tid]
	scale := maxAbs(src) / quantLimit(t.dtype)
	if scale == 0 {
		scale = 1
	}
	var zp int32
	if t.dtype == graph.UInt8 {
		zp = 128
	}
	requantize(in.byteArena[t.off:t.off+t.size], src, t.dtype, scale, zp)
	in.scales[tid], in.zps[tid] = scale, zp
}

func (in *Instance) runStep(st *step) {
	out := &in.prog.tensors[st.out]
	switch st.op {
	case graph.OpConv2D, graph.OpDepthwiseConv2D, graph.OpDense:
		in.runMAC(st, out)
		return
	case graph.OpQuantize:
		off := 0
		src := in.floatViewAt(st.in[0], &off)
		if out.scale > 0 {
			requantize(in.raw(st.out), src, out.dtype, out.scale, out.zeroPoint)
			in.scales[st.out], in.zps[st.out] = out.scale, out.zeroPoint
		} else {
			in.storeQuant(st.out, src)
		}
		return
	case graph.OpDequantize:
		tid := st.in[0]
		t := &in.prog.tensors[tid]
		if t.isFloat {
			copy(in.f32(st.out), in.f32(tid))
		} else {
			dequantize(in.f32(st.out), in.raw(tid), t.dtype, in.scales[tid], in.zps[tid])
		}
		return
	}
	in.runGeneric(st, out)
}

// runMAC dispatches the conv/depthwise/dense triple across the three
// weight-dtype regimes: fp32 kernels, hybrid (float activations × raw int8
// weights) and full int8 (integer MAC with float epilogue).
func (in *Instance) runMAC(st *step, out *tensorInfo) {
	p := in.prog
	t0 := &p.tensors[st.in[0]]
	if t0.isFloat {
		src, dst := in.f32(st.in[0]), in.f32(st.out)
		in.macFloat(st, src, dst, t0, out)
		if st.fused.Valid() {
			applyActivation(dst, st.fused, nil, lastDimOf(out.shape))
		}
		return
	}
	// Quantized activations stage their real-valued result in scratch,
	// then dynamic-range requantize into the output buffer.
	dst := in.scratch[:out.elems]
	if st.wRaw != nil && (t0.dtype == graph.Int8 || t0.dtype == graph.UInt8) {
		src := in.raw(st.in[0])
		unsigned := t0.dtype == graph.UInt8
		epi := float32(in.scales[st.in[0]] * st.wScale)
		switch st.op {
		case graph.OpConv2D:
			conv2dQ8(dst, src, in.zps[st.in[0]], unsigned, st.wRaw, st.bFloat, epi, t0.shape, out.shape, st.attrs)
		case graph.OpDepthwiseConv2D:
			dwConvQ8(dst, src, in.zps[st.in[0]], unsigned, st.wRaw, st.bFloat, epi, t0.shape, out.shape, st.attrs)
		default:
			batch, inF, units := denseDims(t0, out)
			denseQ8(dst, src, in.zps[st.in[0]], unsigned, st.wRaw, st.bFloat, epi, batch, inF, units)
		}
	} else {
		// Int16 (or float-weight) fallback: dequantize activations to
		// scratch past the output staging region, then run the float path.
		off := out.elems
		src := in.floatViewAt(st.in[0], &off)
		in.macFloat(st, src, dst, t0, out)
	}
	if st.fused.Valid() {
		applyActivation(dst, st.fused, nil, lastDimOf(out.shape))
	}
	in.storeQuant(st.out, dst)
}

func (in *Instance) macFloat(st *step, src, dst []float32, t0, out *tensorInfo) {
	switch st.op {
	case graph.OpConv2D:
		if st.wRaw != nil {
			conv2dW8(dst, src, st.wRaw, st.bFloat, float32(st.wScale), t0.shape, out.shape, st.attrs)
		} else {
			conv2dF32(dst, src, st.wFloat, st.bFloat, t0.shape, out.shape, st.attrs)
		}
	case graph.OpDepthwiseConv2D:
		if st.wRaw != nil {
			dwConvW8(dst, src, st.wRaw, st.bFloat, float32(st.wScale), t0.shape, out.shape, st.attrs)
		} else {
			dwConvF32(dst, src, st.wFloat, st.bFloat, t0.shape, out.shape, st.attrs)
		}
	default:
		batch, inF, units := denseDims(t0, out)
		if st.wRaw != nil {
			denseW8(dst, src, st.wRaw, st.bFloat, float32(st.wScale), batch, inF, units)
		} else {
			denseF32(dst, src, st.wFloat, st.bFloat, batch, inF, units)
		}
	}
}

func denseDims(t0, out *tensorInfo) (batch, inF, units int) {
	batch = 1
	if len(t0.shape) > 0 && t0.shape[0] > 0 {
		batch = t0.shape[0]
	}
	return batch, t0.elems / batch, out.shape[len(out.shape)-1]
}

// runGeneric handles every remaining op through the fp32 kernels: inputs
// are viewed (or dequantized into scratch), the kernel writes into the
// output's float buffer (or a scratch staging area for quantized outputs),
// and quantized outputs are dynamic-range requantized at the end.
func (in *Instance) runGeneric(st *step, out *tensorInfo) {
	p := in.prog
	off := 0
	var dst []float32
	if out.isFloat {
		dst = in.f32(st.out)
	} else {
		dst = in.scratch[:out.elems]
		off = out.elems
	}
	views := in.views[:0]
	shapes := in.shapesBuf[:0]
	for _, tid := range st.in {
		views = append(views, in.floatViewAt(tid, &off))
		shapes = append(shapes, p.tensors[tid].shape)
	}
	x := views[0]
	inShape := shapes[0]

	switch st.op {
	case graph.OpTransposeConv2D:
		for i := range dst {
			dst[i] = 0
		}
		transposeConv2dF32(dst, x, st.wFloat, st.bFloat, inShape, out.shape, st.attrs)
	case graph.OpMaxPool:
		maxPoolF32(dst, x, inShape, out.shape, st.attrs)
	case graph.OpAvgPool:
		avgPoolF32(dst, x, inShape, out.shape, st.attrs)
	case graph.OpGlobalAvgPool:
		globalAvgPoolF32(dst, x, inShape)
	case graph.OpReLU, graph.OpReLU6, graph.OpSigmoid, graph.OpTanh,
		graph.OpSoftmax, graph.OpHardSwish, graph.OpPRelu, graph.OpLogistic:
		copy(dst, x)
		applyActivation(dst, st.op, st.wFloat, lastDimOf(out.shape))
	case graph.OpBatchNorm:
		batchNormF32(dst, x, st.wFloat, st.bFloat, lastDimOf(out.shape))
	case graph.OpAdd:
		if len(views) >= 2 {
			addF32(dst, x, views[1])
		} else {
			copy(dst, x)
		}
	case graph.OpMul:
		if len(views) >= 2 {
			mulF32(dst, x, views[1])
		} else {
			copy(dst, x)
		}
	case graph.OpConcat:
		concatF32(dst, views, shapes, st.attrs.Axis)
	case graph.OpReshape:
		copy(dst, x)
	case graph.OpSlice, graph.OpStridedSlice:
		sliceF32(dst, x, inShape, out.shape, st.attrs.Begin)
	case graph.OpResizeBilinear:
		resizeF32(dst, x, inShape, out.shape, true)
	case graph.OpResizeNearest:
		resizeF32(dst, x, inShape, out.shape, false)
	case graph.OpPad:
		padF32(dst, x, inShape, out.shape, st.attrs)
	case graph.OpMean:
		meanF32(dst, x, inShape, st.attrs.ReduceAxes)
	default:
		copy(dst, x) // unreachable: Validate rejected everything else
	}
	if st.fused.Valid() {
		applyActivation(dst, st.fused, nil, lastDimOf(out.shape))
	}
	if !out.isFloat {
		in.storeQuant(st.out, dst)
	}
}

func lastDimOf(s graph.Shape) int {
	if len(s) == 0 {
		return 1
	}
	return s[len(s)-1]
}
