package exec

import (
	"testing"

	"github.com/gaugenn/gaugenn/internal/nn/zoo"
)

// BenchmarkExec measures the interpreter's steady-state hot path — input
// fill, every kernel, metric updates, digest — in both precision regimes
// at batch 1 and batch 8. Recorded numbers and the CI ceilings live in
// BENCH_exec.json; the allocs/op ceiling is 0 (the arena contract), so
// any per-run allocation sneaking into a kernel fails the exec-bench job.
func BenchmarkExec(b *testing.B) {
	base := zoo.Spec{Task: zoo.TaskKeywordDetection, Seed: 91}
	quant := zoo.Spec{Task: zoo.TaskKeywordDetection, Seed: 91, Quantized: true}
	for _, bm := range []struct {
		name  string
		spec  zoo.Spec
		batch int
	}{
		{"fp32/batch1", base, 1},
		{"fp32/batch8", base, 8},
		{"int8/batch1", quant, 1},
		{"int8/batch8", quant, 8},
	} {
		b.Run(bm.name, func(b *testing.B) {
			p := buildModel(b, bm.spec)
			inst := p.NewInstance()
			inst.Run(0) // settle lazy runtime state outside the measurement
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for s := 0; s < bm.batch; s++ {
					inst.Run(uint64(s))
				}
				_ = inst.Digest()
			}
		})
	}
}
