package exec

import (
	"math"
	"testing"

	"github.com/gaugenn/gaugenn/internal/nn/graph"
)

func almost(t *testing.T, name string, got, want []float32, tol float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d, want %d", name, len(got), len(want))
	}
	for i := range want {
		if math.Abs(float64(got[i]-want[i])) > tol {
			t.Fatalf("%s[%d] = %v, want %v (±%v)\n got %v\nwant %v", name, i, got[i], want[i], tol, got, want)
		}
	}
}

func TestConv2DF32(t *testing.T) {
	// 1×3×3×1 input, 2×2 kernel of ones, stride 1: VALID output is the
	// 2×2 window sums; SAME keeps 3×3 with truncated border windows.
	src := []float32{1, 2, 3, 4, 5, 6, 7, 8, 9}
	w := []float32{1, 1, 1, 1}
	in := graph.Shape{1, 3, 3, 1}
	a := graph.Attrs{KernelH: 2, KernelW: 2, StrideH: 1, StrideW: 1}

	valid := make([]float32, 4)
	conv2dF32(valid, src, w, nil, in, graph.Shape{1, 2, 2, 1}, a)
	almost(t, "conv valid", valid, []float32{12, 16, 24, 28}, 1e-6)

	a.PadSame = true
	same := make([]float32, 9)
	conv2dF32(same, src, w, []float32{1}, in, graph.Shape{1, 3, 3, 1}, a)
	// SAME with a 2×2 kernel pads bottom/right only; +1 bias everywhere.
	almost(t, "conv same", same, []float32{13, 17, 10, 25, 29, 16, 16, 18, 10}, 1e-6)
}

func TestConv2DDilated(t *testing.T) {
	// Dilation 2 makes a 2×2 kernel span 3 input positions: the only VALID
	// output of a 3×3 input is the four corners' sum.
	src := []float32{1, 2, 3, 4, 5, 6, 7, 8, 9}
	w := []float32{1, 1, 1, 1}
	a := graph.Attrs{KernelH: 2, KernelW: 2, StrideH: 1, StrideW: 1, Dilation: 2}
	dst := make([]float32, 1)
	conv2dF32(dst, src, w, nil, graph.Shape{1, 3, 3, 1}, graph.Shape{1, 1, 1, 1}, a)
	almost(t, "dilated conv", dst, []float32{1 + 3 + 7 + 9}, 1e-6)
}

func TestConvWeightLayoutHWIO(t *testing.T) {
	// 1×1 kernel, 2 in-channels, 2 filters: w[ic*outC+oc] — checks the
	// HWIO stride arithmetic directly.
	src := []float32{1, 10}
	w := []float32{1, 2, 3, 4} // ic0→(oc0:1, oc1:2), ic1→(oc0:3, oc1:4)
	dst := make([]float32, 2)
	a := graph.Attrs{KernelH: 1, KernelW: 1, StrideH: 1, StrideW: 1}
	conv2dF32(dst, src, w, nil, graph.Shape{1, 1, 1, 2}, graph.Shape{1, 1, 1, 2}, a)
	almost(t, "conv hwio", dst, []float32{1 + 30, 2 + 40}, 1e-6)
}

func TestDepthwiseConvF32(t *testing.T) {
	// 2 channels, 2×2 ones kernel, channel multiplier 1: per-channel
	// window sums, no cross-channel mixing.
	src := []float32{
		1, 100, 2, 200,
		3, 300, 4, 400,
	}
	w := []float32{1, 1, 1, 1, 1, 1, 1, 1} // [2,2,C=2,mult=1]
	dst := make([]float32, 2)
	a := graph.Attrs{KernelH: 2, KernelW: 2, StrideH: 1, StrideW: 1}
	dwConvF32(dst, src, w, nil, graph.Shape{1, 2, 2, 2}, graph.Shape{1, 1, 1, 2}, a)
	almost(t, "dwconv", dst, []float32{10, 1000}, 1e-6)
}

func TestDenseF32(t *testing.T) {
	// [1,3]×[3,2] row-major + bias.
	dst := make([]float32, 2)
	denseF32(dst, []float32{1, 2, 3}, []float32{1, 4, 2, 5, 3, 6}, []float32{10, 20}, 1, 3, 2)
	almost(t, "dense", dst, []float32{1*1 + 2*2 + 3*3 + 10, 1*4 + 2*5 + 3*6 + 20}, 1e-6)
}

func TestHybridMatchesFloat(t *testing.T) {
	// int8 weights {-2,-1,1,2} at scale 0.5 ≡ float weights {-1,-.5,.5,1}:
	// the W8 kernels must agree with the F32 kernels exactly (the weights
	// are exactly representable).
	src := []float32{1, 2, 3, 4}
	wq := []byte{0xFE, 0xFF, 0x01, 0x02}
	wf := []float32{-1, -0.5, 0.5, 1}
	a := graph.Attrs{KernelH: 2, KernelW: 2, StrideH: 1, StrideW: 1}
	in, out := graph.Shape{1, 2, 2, 1}, graph.Shape{1, 1, 1, 1}
	want := make([]float32, 1)
	conv2dF32(want, src, wf, nil, in, out, a)
	got := make([]float32, 1)
	conv2dW8(got, src, wq, nil, 0.5, in, out, a)
	almost(t, "hybrid conv", got, want, 1e-6)

	denseF32(want, src, wf, nil, 1, 4, 1)
	denseW8(got, src, wq, nil, 0.5, 1, 4, 1)
	almost(t, "hybrid dense", got, want, 1e-6)
}

func TestQ8IntegerMAC(t *testing.T) {
	// Quantized dense: x = {2,-3} at scale .1 (zp 0), w = {5,7} at scale
	// .01 → real dot = .2·.05 + (-.3)·.07 = -0.011.
	dst := make([]float32, 1)
	src := []byte{0x02, 0xFD}
	w := []byte{0x05, 0x07}
	denseQ8(dst, src, 0, false, w, nil, float32(0.1*0.01), 1, 2, 1)
	almost(t, "q8 dense", dst, []float32{-0.011}, 1e-7)

	// uint8 input with zero-point 128: q=130 ≡ +2, q=125 ≡ -3.
	denseQ8(dst, []byte{130, 125}, 128, true, w, nil, float32(0.1*0.01), 1, 2, 1)
	almost(t, "q8 dense u8", dst, []float32{-0.011}, 1e-7)
}

func TestPoolsF32(t *testing.T) {
	src := []float32{1, 2, 3, 4, 5, 6, 7, 8, 9}
	in := graph.Shape{1, 3, 3, 1}
	a := graph.Attrs{KernelH: 2, KernelW: 2, StrideH: 2, StrideW: 2, PadSame: true}
	mx := make([]float32, 4)
	maxPoolF32(mx, src, in, graph.Shape{1, 2, 2, 1}, a)
	almost(t, "maxpool", mx, []float32{5, 6, 8, 9}, 1e-6)
	av := make([]float32, 4)
	avgPoolF32(av, src, in, graph.Shape{1, 2, 2, 1}, a)
	// Border windows average only their valid taps.
	almost(t, "avgpool", av, []float32{3, 4.5, 7.5, 9}, 1e-6)

	g := make([]float32, 1)
	globalAvgPoolF32(g, src, in)
	almost(t, "globalavg", g, []float32{5}, 1e-6)
}

func TestActivations(t *testing.T) {
	x := []float32{-7, -1, 0, 1, 7}
	relu := append([]float32(nil), x...)
	applyActivation(relu, graph.OpReLU, nil, 1)
	almost(t, "relu", relu, []float32{0, 0, 0, 1, 7}, 1e-6)

	relu6 := append([]float32(nil), x...)
	applyActivation(relu6, graph.OpReLU6, nil, 1)
	almost(t, "relu6", relu6, []float32{0, 0, 0, 1, 6}, 1e-6)

	hs := append([]float32(nil), x...)
	applyActivation(hs, graph.OpHardSwish, nil, 1)
	almost(t, "hardswish", hs, []float32{0, -1.0 / 3, 0, 2.0 / 3, 7}, 1e-6)

	pr := append([]float32(nil), x...)
	applyActivation(pr, graph.OpPRelu, []float32{0.1}, 1)
	almost(t, "prelu", pr, []float32{-0.7, -0.1, 0, 1, 7}, 1e-6)

	sig := []float32{0}
	applyActivation(sig, graph.OpSigmoid, nil, 1)
	almost(t, "sigmoid", sig, []float32{0.5}, 1e-6)

	th := []float32{0, 1}
	applyActivation(th, graph.OpTanh, nil, 1)
	almost(t, "tanh", th, []float32{0, float32(math.Tanh(1))}, 1e-6)

	sm := []float32{1, 1, 2, 2}
	applyActivation(sm, graph.OpSoftmax, nil, 2) // two rows of two
	almost(t, "softmax", sm, []float32{0.5, 0.5, 0.5, 0.5}, 1e-6)
}

func TestBatchNormF32(t *testing.T) {
	dst := make([]float32, 4)
	batchNormF32(dst, []float32{1, 2, 3, 4}, []float32{2, 10}, []float32{1, 0}, 2)
	almost(t, "batchnorm", dst, []float32{3, 20, 7, 40}, 1e-6)
	// nil γ/β is identity (detached-weight graphs).
	batchNormF32(dst, []float32{1, 2, 3, 4}, nil, nil, 2)
	almost(t, "batchnorm identity", dst, []float32{1, 2, 3, 4}, 1e-6)
}

func TestBinaryBroadcast(t *testing.T) {
	dst := make([]float32, 4)
	addF32(dst, []float32{1, 2, 3, 4}, []float32{10, 20, 30, 40})
	almost(t, "add full", dst, []float32{11, 22, 33, 44}, 1e-6)
	addF32(dst, []float32{1, 2, 3, 4}, []float32{10, 20}) // per-channel
	almost(t, "add channel", dst, []float32{11, 22, 13, 24}, 1e-6)
	mulF32(dst, []float32{1, 2, 3, 4}, []float32{10}) // scalar
	almost(t, "mul scalar", dst, []float32{10, 20, 30, 40}, 1e-6)
}

func TestConcatSlicePadMean(t *testing.T) {
	// Concat two [1,2,2] blocks on the channel axis.
	cat := make([]float32, 8)
	concatF32(cat, [][]float32{{1, 2, 3, 4}, {5, 6, 7, 8}},
		[]graph.Shape{{1, 2, 2}, {1, 2, 2}}, -1)
	almost(t, "concat", cat, []float32{1, 2, 5, 6, 3, 4, 7, 8}, 1e-6)

	// Slice the centre column of a 3×3.
	sl := make([]float32, 3)
	sliceF32(sl, []float32{1, 2, 3, 4, 5, 6, 7, 8, 9},
		graph.Shape{3, 3}, graph.Shape{3, 1}, []int{0, 1})
	almost(t, "slice", sl, []float32{2, 5, 8}, 1e-6)

	// Pad a 1×1×1×1 by one pixel each side.
	pd := make([]float32, 9)
	padF32(pd, []float32{5}, graph.Shape{1, 1, 1, 1}, graph.Shape{1, 3, 3, 1},
		graph.Attrs{PadH: 1, PadW: 1})
	almost(t, "pad", pd, []float32{0, 0, 0, 0, 5, 0, 0, 0, 0}, 1e-6)

	// Mean over H,W of a 1×2×2×2 keeps channels.
	mn := make([]float32, 2)
	meanF32(mn, []float32{1, 10, 2, 20, 3, 30, 4, 40},
		graph.Shape{1, 2, 2, 2}, []int{1, 2})
	almost(t, "mean", mn, []float32{2.5, 25}, 1e-6)
}

func TestResizeF32(t *testing.T) {
	src := []float32{1, 2, 3, 4}
	in, out := graph.Shape{1, 2, 2, 1}, graph.Shape{1, 4, 4, 1}
	nst := make([]float32, 16)
	resizeF32(nst, src, in, out, false)
	almost(t, "resize nearest", nst, []float32{
		1, 1, 2, 2, 1, 1, 2, 2, 3, 3, 4, 4, 3, 3, 4, 4}, 1e-6)

	bil := make([]float32, 16)
	resizeF32(bil, src, in, out, true)
	// Half-pixel bilinear: corners keep source values, centres interpolate.
	almost(t, "resize bilinear corners", []float32{bil[0], bil[3], bil[12], bil[15]},
		[]float32{1, 2, 3, 4}, 1e-6)
	almost(t, "resize bilinear centre", []float32{bil[5]}, []float32{(1*9 + 2*3 + 3*3 + 4) / 16.0}, 1e-3)
}

func TestTransposeConvF32(t *testing.T) {
	// 2×2 stride-2 ones kernel: each input pixel becomes a 2×2 block.
	dst := make([]float32, 16)
	w := []float32{1, 1, 1, 1} // [2,2,outC=1,inC=1]
	a := graph.Attrs{KernelH: 2, KernelW: 2, StrideH: 2, StrideW: 2}
	transposeConv2dF32(dst, []float32{1, 2, 3, 4}, w, nil,
		graph.Shape{1, 2, 2, 1}, graph.Shape{1, 4, 4, 1}, a)
	almost(t, "transpose conv", dst, []float32{
		1, 1, 2, 2, 1, 1, 2, 2, 3, 3, 4, 4, 3, 3, 4, 4}, 1e-6)
}

func TestQuantRoundTrip(t *testing.T) {
	src := []float32{-1.27, -0.5, 0, 0.3, 1.27}
	for _, dt := range []graph.DType{graph.Int8, graph.UInt8, graph.Int16} {
		buf := make([]byte, len(src)*dt.Size())
		scale := maxAbs(src) / quantLimit(dt)
		var zp int32
		if dt == graph.UInt8 {
			zp = 128
		}
		requantize(buf, src, dt, scale, zp)
		back := make([]float32, len(src))
		dequantize(back, buf, dt, scale, zp)
		almost(t, "roundtrip "+dt.String(), back, src, scale/2+1e-7)
	}
}

func TestFloat16Decode(t *testing.T) {
	// 0x3C00=1.0, 0xC100=-2.5, 0x3800=0.5, 0x0001=smallest subnormal.
	got := decodeFloat16([]byte{0x00, 0x3C, 0x00, 0xC1, 0x00, 0x38, 0x01, 0x00})
	almost(t, "f16", got[:3], []float32{1, -2.5, 0.5}, 1e-6)
	if got[3] <= 0 || got[3] > 1e-7 {
		t.Errorf("subnormal decoded to %v", got[3])
	}
}
