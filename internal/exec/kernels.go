package exec

import (
	"math"

	"github.com/gaugenn/gaugenn/internal/nn/graph"
)

// Reference fp32 kernels. Contracts shared by every kernel in this file:
//
//   - Layouts follow the graph builder: activations NHWC, conv kernels HWIO
//     [kh, kw, inC, outC], depthwise kernels [kh, kw, C, mult] (output
//     channel c*mult+m), transpose-conv kernels [kh, kw, outC, inC], dense
//     weights [inF, units] row-major.
//   - dst and src never alias (the arena planner keeps a layer's output
//     disjoint from its live inputs).
//   - Accumulation order is fixed (kh, kw, ic innermost-to-outermost as
//     written), so results are bitwise reproducible across runs, workers
//     and pool sizes — the property the determinism tests pin down.
//   - Kernels never allocate; any staging space comes from the caller.
//
// SAME padding follows the TensorFlow convention: total padding
// max(0, (out-1)*stride + effectiveKernel - in), split with the smaller
// half leading.

// padOrigin resolves the top/left padding for a conv/pool layer, taking the
// effective (dilated) kernel extent.
func padOrigin(a graph.Attrs, inH, inW, outH, outW, effKH, effKW int) (padT, padL int) {
	if !a.PadSame {
		return a.PadH, a.PadW
	}
	if t := (outH-1)*a.StrideH + effKH - inH; t > 0 {
		padT = t / 2
	}
	if l := (outW-1)*a.StrideW + effKW - inW; l > 0 {
		padL = l / 2
	}
	return padT, padL
}

func dilationOf(a graph.Attrs) int {
	if a.Dilation > 1 {
		return a.Dilation
	}
	return 1
}

// conv2dF32 is the direct (non-im2col) convolution. One fused loop nest:
// for every output element, accumulate kernel × input-window products.
func conv2dF32(dst, src, w, bias []float32, in, out graph.Shape, a graph.Attrs) {
	inH, inW, inC := in[1], in[2], in[3]
	outH, outW, outC := out[1], out[2], out[3]
	dil := dilationOf(a)
	effKH, effKW := (a.KernelH-1)*dil+1, (a.KernelW-1)*dil+1
	padT, padL := padOrigin(a, inH, inW, outH, outW, effKH, effKW)
	for n := 0; n < in[0]; n++ {
		srcN := src[n*inH*inW*inC:]
		dstN := dst[n*outH*outW*outC:]
		for oh := 0; oh < outH; oh++ {
			for ow := 0; ow < outW; ow++ {
				do := (oh*outW + ow) * outC
				for oc := 0; oc < outC; oc++ {
					var acc float32
					for kh := 0; kh < a.KernelH; kh++ {
						ih := oh*a.StrideH - padT + kh*dil
						if ih < 0 || ih >= inH {
							continue
						}
						for kw := 0; kw < a.KernelW; kw++ {
							iw := ow*a.StrideW - padL + kw*dil
							if iw < 0 || iw >= inW {
								continue
							}
							si := (ih*inW + iw) * inC
							wi := ((kh*a.KernelW+kw)*inC)*outC + oc
							for ic := 0; ic < inC; ic++ {
								acc += srcN[si+ic] * w[wi+ic*outC]
							}
						}
					}
					if bias != nil {
						acc += bias[oc]
					}
					dstN[do+oc] = acc
				}
			}
		}
	}
}

// conv2dW8 is the hybrid variant: float activations against the graph's
// raw int8 weight bytes (read in place, never copied), rescaled by the
// per-tensor weight scale in the epilogue.
func conv2dW8(dst, src []float32, w []byte, bias []float32, wScale float32, in, out graph.Shape, a graph.Attrs) {
	inH, inW, inC := in[1], in[2], in[3]
	outH, outW, outC := out[1], out[2], out[3]
	dil := dilationOf(a)
	effKH, effKW := (a.KernelH-1)*dil+1, (a.KernelW-1)*dil+1
	padT, padL := padOrigin(a, inH, inW, outH, outW, effKH, effKW)
	for n := 0; n < in[0]; n++ {
		srcN := src[n*inH*inW*inC:]
		dstN := dst[n*outH*outW*outC:]
		for oh := 0; oh < outH; oh++ {
			for ow := 0; ow < outW; ow++ {
				do := (oh*outW + ow) * outC
				for oc := 0; oc < outC; oc++ {
					var acc float32
					for kh := 0; kh < a.KernelH; kh++ {
						ih := oh*a.StrideH - padT + kh*dil
						if ih < 0 || ih >= inH {
							continue
						}
						for kw := 0; kw < a.KernelW; kw++ {
							iw := ow*a.StrideW - padL + kw*dil
							if iw < 0 || iw >= inW {
								continue
							}
							si := (ih*inW + iw) * inC
							wi := ((kh*a.KernelW+kw)*inC)*outC + oc
							for ic := 0; ic < inC; ic++ {
								acc += srcN[si+ic] * float32(int8(w[wi+ic*outC]))
							}
						}
					}
					acc *= wScale
					if bias != nil {
						acc += bias[oc]
					}
					dstN[do+oc] = acc
				}
			}
		}
	}
}

// conv2dQ8 is the full int8 path: integer MAC over quantized activations
// and raw int8 weight bytes, with a float epilogue
// real = acc · inScale · wScale + bias staged into dst (caller-provided
// float scratch) for dynamic requantization.
func conv2dQ8(dst []float32, src []byte, srcZP int32, srcUnsigned bool, w []byte, bias []float32, outScale float32, in, out graph.Shape, a graph.Attrs) {
	inH, inW, inC := in[1], in[2], in[3]
	outH, outW, outC := out[1], out[2], out[3]
	dil := dilationOf(a)
	effKH, effKW := (a.KernelH-1)*dil+1, (a.KernelW-1)*dil+1
	padT, padL := padOrigin(a, inH, inW, outH, outW, effKH, effKW)
	for n := 0; n < in[0]; n++ {
		srcN := src[n*inH*inW*inC:]
		dstN := dst[n*outH*outW*outC:]
		for oh := 0; oh < outH; oh++ {
			for ow := 0; ow < outW; ow++ {
				do := (oh*outW + ow) * outC
				for oc := 0; oc < outC; oc++ {
					var acc int32
					for kh := 0; kh < a.KernelH; kh++ {
						ih := oh*a.StrideH - padT + kh*dil
						if ih < 0 || ih >= inH {
							continue
						}
						for kw := 0; kw < a.KernelW; kw++ {
							iw := ow*a.StrideW - padL + kw*dil
							if iw < 0 || iw >= inW {
								continue
							}
							si := (ih*inW + iw) * inC
							wi := ((kh*a.KernelW+kw)*inC)*outC + oc
							for ic := 0; ic < inC; ic++ {
								acc += quantVal(srcN[si+ic], srcUnsigned, srcZP) * int32(int8(w[wi+ic*outC]))
							}
						}
					}
					r := float32(acc) * outScale
					if bias != nil {
						r += bias[oc]
					}
					dstN[do+oc] = r
				}
			}
		}
	}
}

// quantVal reads one quantized activation byte as a zero-point-corrected
// signed value.
func quantVal(b byte, unsigned bool, zp int32) int32 {
	if unsigned {
		return int32(b) - zp
	}
	return int32(int8(b)) - zp
}

// dwConvF32 is depthwise convolution: each input channel convolved with its
// own kernel column; output channel c*mult+m.
func dwConvF32(dst, src, w, bias []float32, in, out graph.Shape, a graph.Attrs) {
	inH, inW, inC := in[1], in[2], in[3]
	outH, outW, outC := out[1], out[2], out[3]
	mult := outC / inC
	dil := dilationOf(a)
	effKH, effKW := (a.KernelH-1)*dil+1, (a.KernelW-1)*dil+1
	padT, padL := padOrigin(a, inH, inW, outH, outW, effKH, effKW)
	for n := 0; n < in[0]; n++ {
		srcN := src[n*inH*inW*inC:]
		dstN := dst[n*outH*outW*outC:]
		for oh := 0; oh < outH; oh++ {
			for ow := 0; ow < outW; ow++ {
				do := (oh*outW + ow) * outC
				for c := 0; c < inC; c++ {
					for m := 0; m < mult; m++ {
						var acc float32
						for kh := 0; kh < a.KernelH; kh++ {
							ih := oh*a.StrideH - padT + kh*dil
							if ih < 0 || ih >= inH {
								continue
							}
							for kw := 0; kw < a.KernelW; kw++ {
								iw := ow*a.StrideW - padL + kw*dil
								if iw < 0 || iw >= inW {
									continue
								}
								acc += srcN[(ih*inW+iw)*inC+c] * w[((kh*a.KernelW+kw)*inC+c)*mult+m]
							}
						}
						oc := c*mult + m
						if bias != nil {
							acc += bias[oc]
						}
						dstN[do+oc] = acc
					}
				}
			}
		}
	}
}

// dwConvW8 is the hybrid depthwise variant (float activations, raw int8
// weights).
func dwConvW8(dst, src []float32, w []byte, bias []float32, wScale float32, in, out graph.Shape, a graph.Attrs) {
	inH, inW, inC := in[1], in[2], in[3]
	outH, outW, outC := out[1], out[2], out[3]
	mult := outC / inC
	dil := dilationOf(a)
	effKH, effKW := (a.KernelH-1)*dil+1, (a.KernelW-1)*dil+1
	padT, padL := padOrigin(a, inH, inW, outH, outW, effKH, effKW)
	for n := 0; n < in[0]; n++ {
		srcN := src[n*inH*inW*inC:]
		dstN := dst[n*outH*outW*outC:]
		for oh := 0; oh < outH; oh++ {
			for ow := 0; ow < outW; ow++ {
				do := (oh*outW + ow) * outC
				for c := 0; c < inC; c++ {
					for m := 0; m < mult; m++ {
						var acc float32
						for kh := 0; kh < a.KernelH; kh++ {
							ih := oh*a.StrideH - padT + kh*dil
							if ih < 0 || ih >= inH {
								continue
							}
							for kw := 0; kw < a.KernelW; kw++ {
								iw := ow*a.StrideW - padL + kw*dil
								if iw < 0 || iw >= inW {
									continue
								}
								acc += srcN[(ih*inW+iw)*inC+c] * float32(int8(w[((kh*a.KernelW+kw)*inC+c)*mult+m]))
							}
						}
						oc := c*mult + m
						acc *= wScale
						if bias != nil {
							acc += bias[oc]
						}
						dstN[do+oc] = acc
					}
				}
			}
		}
	}
}

// dwConvQ8 is the full int8 depthwise path (integer MAC, float epilogue
// into scratch).
func dwConvQ8(dst []float32, src []byte, srcZP int32, srcUnsigned bool, w []byte, bias []float32, outScale float32, in, out graph.Shape, a graph.Attrs) {
	inH, inW, inC := in[1], in[2], in[3]
	outH, outW, outC := out[1], out[2], out[3]
	mult := outC / inC
	dil := dilationOf(a)
	effKH, effKW := (a.KernelH-1)*dil+1, (a.KernelW-1)*dil+1
	padT, padL := padOrigin(a, inH, inW, outH, outW, effKH, effKW)
	for n := 0; n < in[0]; n++ {
		srcN := src[n*inH*inW*inC:]
		dstN := dst[n*outH*outW*outC:]
		for oh := 0; oh < outH; oh++ {
			for ow := 0; ow < outW; ow++ {
				do := (oh*outW + ow) * outC
				for c := 0; c < inC; c++ {
					for m := 0; m < mult; m++ {
						var acc int32
						for kh := 0; kh < a.KernelH; kh++ {
							ih := oh*a.StrideH - padT + kh*dil
							if ih < 0 || ih >= inH {
								continue
							}
							for kw := 0; kw < a.KernelW; kw++ {
								iw := ow*a.StrideW - padL + kw*dil
								if iw < 0 || iw >= inW {
									continue
								}
								acc += quantVal(srcN[(ih*inW+iw)*inC+c], srcUnsigned, srcZP) * int32(int8(w[((kh*a.KernelW+kw)*inC+c)*mult+m]))
							}
						}
						oc := c*mult + m
						r := float32(acc) * outScale
						if bias != nil {
							r += bias[oc]
						}
						dstN[do+oc] = r
					}
				}
			}
		}
	}
}

// denseF32 is the fully connected layer over flattened features.
func denseF32(dst, src, w, bias []float32, batch, inF, units int) {
	for n := 0; n < batch; n++ {
		x := src[n*inF : (n+1)*inF]
		y := dst[n*units : (n+1)*units]
		for u := 0; u < units; u++ {
			var acc float32
			for f := 0; f < inF; f++ {
				acc += x[f] * w[f*units+u]
			}
			if bias != nil {
				acc += bias[u]
			}
			y[u] = acc
		}
	}
}

func denseW8(dst, src []float32, w []byte, bias []float32, wScale float32, batch, inF, units int) {
	for n := 0; n < batch; n++ {
		x := src[n*inF : (n+1)*inF]
		y := dst[n*units : (n+1)*units]
		for u := 0; u < units; u++ {
			var acc float32
			for f := 0; f < inF; f++ {
				acc += x[f] * float32(int8(w[f*units+u]))
			}
			acc *= wScale
			if bias != nil {
				acc += bias[u]
			}
			y[u] = acc
		}
	}
}

func denseQ8(dst []float32, src []byte, srcZP int32, srcUnsigned bool, w []byte, bias []float32, outScale float32, batch, inF, units int) {
	for n := 0; n < batch; n++ {
		x := src[n*inF : (n+1)*inF]
		y := dst[n*units : (n+1)*units]
		for u := 0; u < units; u++ {
			var acc int32
			for f := 0; f < inF; f++ {
				acc += quantVal(x[f], srcUnsigned, srcZP) * int32(int8(w[f*units+u]))
			}
			r := float32(acc) * outScale
			if bias != nil {
				r += bias[u]
			}
			y[u] = r
		}
	}
}

// transposeConv2dF32 scatters each input pixel through the kernel into the
// stride-upsampled output (dst must be pre-zeroed by the caller). Kernel
// layout [kh, kw, outC, inC]; top/left origin (k-stride)/2 centres the
// kernel so output spatial dims are exactly in*stride.
func transposeConv2dF32(dst, src, w, bias []float32, in, out graph.Shape, a graph.Attrs) {
	inH, inW, inC := in[1], in[2], in[3]
	outH, outW, outC := out[1], out[2], out[3]
	padT := (a.KernelH - a.StrideH) / 2
	padL := (a.KernelW - a.StrideW) / 2
	if padT < 0 {
		padT = 0
	}
	if padL < 0 {
		padL = 0
	}
	for n := 0; n < in[0]; n++ {
		srcN := src[n*inH*inW*inC:]
		dstN := dst[n*outH*outW*outC:]
		for ih := 0; ih < inH; ih++ {
			for iw := 0; iw < inW; iw++ {
				si := (ih*inW + iw) * inC
				for kh := 0; kh < a.KernelH; kh++ {
					oh := ih*a.StrideH + kh - padT
					if oh < 0 || oh >= outH {
						continue
					}
					for kw := 0; kw < a.KernelW; kw++ {
						ow := iw*a.StrideW + kw - padL
						if ow < 0 || ow >= outW {
							continue
						}
						do := (oh*outW + ow) * outC
						for oc := 0; oc < outC; oc++ {
							wi := ((kh*a.KernelW+kw)*outC + oc) * inC
							var acc float32
							for ic := 0; ic < inC; ic++ {
								acc += srcN[si+ic] * w[wi+ic]
							}
							dstN[do+oc] += acc
						}
					}
				}
			}
		}
		if bias != nil {
			for i := 0; i < outH*outW; i++ {
				for oc := 0; oc < outC; oc++ {
					dstN[i*outC+oc] += bias[oc]
				}
			}
		}
	}
}

// maxPoolF32 / avgPoolF32: window reductions. Average counts only in-bounds
// taps (TFLite's padding-excluded semantics), so SAME-padded borders are
// true means of their valid window.
func maxPoolF32(dst, src []float32, in, out graph.Shape, a graph.Attrs) {
	poolF32(dst, src, in, out, a, true)
}

func avgPoolF32(dst, src []float32, in, out graph.Shape, a graph.Attrs) {
	poolF32(dst, src, in, out, a, false)
}

func poolF32(dst, src []float32, in, out graph.Shape, a graph.Attrs, max bool) {
	inH, inW, c := in[1], in[2], in[3]
	outH, outW := out[1], out[2]
	padT, padL := padOrigin(a, inH, inW, outH, outW, a.KernelH, a.KernelW)
	for n := 0; n < in[0]; n++ {
		srcN := src[n*inH*inW*c:]
		dstN := dst[n*outH*outW*c:]
		for oh := 0; oh < outH; oh++ {
			for ow := 0; ow < outW; ow++ {
				do := (oh*outW + ow) * c
				for ch := 0; ch < c; ch++ {
					best := float32(math.Inf(-1))
					var sum float32
					count := 0
					for kh := 0; kh < a.KernelH; kh++ {
						ih := oh*a.StrideH - padT + kh
						if ih < 0 || ih >= inH {
							continue
						}
						for kw := 0; kw < a.KernelW; kw++ {
							iw := ow*a.StrideW - padL + kw
							if iw < 0 || iw >= inW {
								continue
							}
							v := srcN[(ih*inW+iw)*c+ch]
							if v > best {
								best = v
							}
							sum += v
							count++
						}
					}
					if max {
						dstN[do+ch] = best
					} else if count > 0 {
						dstN[do+ch] = sum / float32(count)
					} else {
						dstN[do+ch] = 0
					}
				}
			}
		}
	}
}

func globalAvgPoolF32(dst, src []float32, in graph.Shape) {
	h, w, c := in[1], in[2], in[3]
	hw := h * w
	for n := 0; n < in[0]; n++ {
		srcN := src[n*hw*c:]
		dstN := dst[n*c:]
		for ch := 0; ch < c; ch++ {
			var sum float32
			for i := 0; i < hw; i++ {
				sum += srcN[i*c+ch]
			}
			dstN[ch] = sum / float32(hw)
		}
	}
}

// applyActivation runs a unary activation in place. channels is the last
// dimension (PRelu's per-channel alpha axis); alpha is nil for the default
// 0.25 slope.
func applyActivation(x []float32, op graph.OpType, alpha []float32, channels int) {
	switch op {
	case graph.OpReLU:
		for i, v := range x {
			if v < 0 {
				x[i] = 0
			}
		}
	case graph.OpReLU6:
		for i, v := range x {
			if v < 0 {
				x[i] = 0
			} else if v > 6 {
				x[i] = 6
			}
		}
	case graph.OpSigmoid, graph.OpLogistic:
		for i, v := range x {
			x[i] = float32(1 / (1 + math.Exp(-float64(v))))
		}
	case graph.OpTanh:
		for i, v := range x {
			x[i] = float32(math.Tanh(float64(v)))
		}
	case graph.OpHardSwish:
		for i, v := range x {
			r := v + 3
			if r < 0 {
				r = 0
			} else if r > 6 {
				r = 6
			}
			x[i] = v * r / 6
		}
	case graph.OpPRelu:
		if channels <= 0 {
			channels = 1
		}
		for i, v := range x {
			if v < 0 {
				a := float32(0.25)
				if len(alpha) == 1 {
					a = alpha[0]
				} else if len(alpha) > 0 {
					a = alpha[i%channels]
				}
				x[i] = v * a
			}
		}
	case graph.OpSoftmax:
		softmaxF32(x, channels)
	}
}

// softmaxF32 normalises each row of the trailing axis with the usual
// max-subtraction for stability.
func softmaxF32(x []float32, lastDim int) {
	if lastDim <= 0 || len(x)%lastDim != 0 {
		lastDim = len(x)
	}
	for r := 0; r+lastDim <= len(x); r += lastDim {
		row := x[r : r+lastDim]
		maxV := row[0]
		for _, v := range row[1:] {
			if v > maxV {
				maxV = v
			}
		}
		var sum float64
		for i, v := range row {
			e := math.Exp(float64(v - maxV))
			row[i] = float32(e)
			sum += e
		}
		inv := float32(1 / sum)
		for i := range row {
			row[i] *= inv
		}
	}
}

// batchNormF32 applies the folded affine y = γ·x + β over the last axis
// (nil γ/β mean identity — graphs stripped by DetachWeights still run).
func batchNormF32(dst, src, gamma, beta []float32, channels int) {
	if channels <= 0 {
		channels = 1
	}
	for i, v := range src {
		c := i % channels
		g, b := float32(1), float32(0)
		if gamma != nil {
			g = gamma[c%len(gamma)]
		}
		if beta != nil {
			b = beta[c%len(beta)]
		}
		dst[i] = v*g + b
	}
}

// addF32 / mulF32 support three broadcast forms the corpus uses: full
// elementwise, per-channel (len(b) == last dim) and scalar.
func addF32(dst, x, y []float32) { binaryF32(dst, x, y, false) }
func mulF32(dst, x, y []float32) { binaryF32(dst, x, y, true) }

func binaryF32(dst, x, y []float32, mul bool) {
	switch {
	case len(y) == len(x):
		if mul {
			for i := range x {
				dst[i] = x[i] * y[i]
			}
		} else {
			for i := range x {
				dst[i] = x[i] + y[i]
			}
		}
	case len(y) == 1:
		if mul {
			for i := range x {
				dst[i] = x[i] * y[0]
			}
		} else {
			for i := range x {
				dst[i] = x[i] + y[0]
			}
		}
	default: // per-channel broadcast over the trailing axis
		c := len(y)
		if mul {
			for i := range x {
				dst[i] = x[i] * y[i%c]
			}
		} else {
			for i := range x {
				dst[i] = x[i] + y[i%c]
			}
		}
	}
}

// resizeF32 is bilinear/nearest spatial resampling with half-pixel source
// mapping.
func resizeF32(dst, src []float32, in, out graph.Shape, bilinear bool) {
	inH, inW, c := in[1], in[2], in[3]
	outH, outW := out[1], out[2]
	scaleH := float64(inH) / float64(outH)
	scaleW := float64(inW) / float64(outW)
	for n := 0; n < in[0]; n++ {
		srcN := src[n*inH*inW*c:]
		dstN := dst[n*outH*outW*c:]
		for oh := 0; oh < outH; oh++ {
			sy := (float64(oh)+0.5)*scaleH - 0.5
			for ow := 0; ow < outW; ow++ {
				sx := (float64(ow)+0.5)*scaleW - 0.5
				do := (oh*outW + ow) * c
				if !bilinear {
					ih := clampInt(int(math.Round(sy)), 0, inH-1)
					iw := clampInt(int(math.Round(sx)), 0, inW-1)
					copy(dstN[do:do+c], srcN[(ih*inW+iw)*c:])
					continue
				}
				y0 := clampInt(int(math.Floor(sy)), 0, inH-1)
				y1 := clampInt(y0+1, 0, inH-1)
				x0 := clampInt(int(math.Floor(sx)), 0, inW-1)
				x1 := clampInt(x0+1, 0, inW-1)
				fy := float32(clampF(sy-float64(y0), 0, 1))
				fx := float32(clampF(sx-float64(x0), 0, 1))
				for ch := 0; ch < c; ch++ {
					v00 := srcN[(y0*inW+x0)*c+ch]
					v01 := srcN[(y0*inW+x1)*c+ch]
					v10 := srcN[(y1*inW+x0)*c+ch]
					v11 := srcN[(y1*inW+x1)*c+ch]
					top := v00 + (v01-v00)*fx
					bot := v10 + (v11-v10)*fx
					dstN[do+ch] = top + (bot-top)*fy
				}
			}
		}
	}
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// meanF32 reduces src over the given axes into dst (already shaped by
// inference; dst length is the product of kept dims). Uses fixed-size
// coordinate buffers so reduction never allocates.
func meanF32(dst, src []float32, in graph.Shape, reduceAxes []int) {
	for i := range dst {
		dst[i] = 0
	}
	rank := len(in)
	var reduce [8]bool
	count := 1
	for _, ax := range reduceAxes {
		if ax < 0 {
			ax += rank
		}
		if ax >= 0 && ax < rank {
			if !reduce[ax] {
				count *= in[ax]
			}
			reduce[ax] = true
		}
	}
	// Strides of the kept dims inside dst.
	var outStride [8]int
	stride := 1
	for i := rank - 1; i >= 0; i-- {
		if !reduce[i] {
			outStride[i] = stride
			stride *= in[i]
		}
	}
	var coord [8]int
	for si := range src {
		oi := 0
		for i := 0; i < rank; i++ {
			if !reduce[i] {
				oi += coord[i] * outStride[i]
			}
		}
		dst[oi] += src[si]
		for i := rank - 1; i >= 0; i-- {
			coord[i]++
			if coord[i] < in[i] {
				break
			}
			coord[i] = 0
		}
	}
	inv := float32(1) / float32(count)
	for i := range dst {
		dst[i] *= inv
	}
}

// concatF32 joins inputs along axis. outerElems/axisElems describe each
// source's decomposition: copy runs of axisLen·inner elements.
func concatF32(dst []float32, srcs [][]float32, shapes []graph.Shape, axis int) {
	rank := len(shapes[0])
	if axis < 0 {
		axis += rank
	}
	outer := 1
	for i := 0; i < axis; i++ {
		outer *= shapes[0][i]
	}
	inner := 1
	for i := axis + 1; i < rank; i++ {
		inner *= shapes[0][i]
	}
	rowLen := 0
	for _, s := range shapes {
		rowLen += s[axis] * inner
	}
	for o := 0; o < outer; o++ {
		off := o * rowLen
		for si, src := range srcs {
			run := shapes[si][axis] * inner
			copy(dst[off:off+run], src[o*run:])
			off += run
		}
	}
}

// sliceF32 copies the Begin/Size window (Size -1 = to the end).
func sliceF32(dst, src []float32, in, out graph.Shape, begin []int) {
	rank := len(in)
	var b [8]int
	for i := 0; i < rank && i < len(begin); i++ {
		b[i] = begin[i]
	}
	var inStride [8]int
	stride := 1
	for i := rank - 1; i >= 0; i-- {
		inStride[i] = stride
		stride *= in[i]
	}
	inner := out[rank-1]
	var coord [8]int
	n := len(dst) / inner
	for r := 0; r < n; r++ {
		si := 0
		for i := 0; i < rank; i++ {
			si += (coord[i] + b[i]) * inStride[i]
		}
		copy(dst[r*inner:(r+1)*inner], src[si:si+inner])
		for i := rank - 2; i >= 0; i-- {
			coord[i]++
			if coord[i] < out[i] {
				break
			}
			coord[i] = 0
		}
	}
}

// padF32 zero-pads per the shapes.go contract: rank 4/3 pad axes 1 and 2 by
// PadH/PadW; rank 2 pads axis 1 by PadW.
func padF32(dst, src []float32, in, out graph.Shape, a graph.Attrs) {
	for i := range dst {
		dst[i] = 0
	}
	switch len(in) {
	case 4:
		h, w, c := in[1], in[2], in[3]
		ow := out[2]
		for n := 0; n < in[0]; n++ {
			for ih := 0; ih < h; ih++ {
				srcRow := src[((n*h+ih)*w)*c:]
				dstRow := dst[((n*out[1]+ih+a.PadH)*ow+a.PadW)*c:]
				copy(dstRow[:w*c], srcRow[:w*c])
			}
		}
	case 3:
		t, f := in[1], in[2]
		of := out[2]
		for n := 0; n < in[0]; n++ {
			for it := 0; it < t; it++ {
				copy(dst[((n*out[1]+it+a.PadH)*of + a.PadW):][:f], src[(n*t+it)*f:][:f])
			}
		}
	case 2:
		f := in[1]
		for n := 0; n < in[0]; n++ {
			copy(dst[n*out[1]+a.PadW:][:f], src[n*f:][:f])
		}
	default:
		copy(dst, src)
	}
}
