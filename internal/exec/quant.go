package exec

import (
	"encoding/binary"
	"math"

	"github.com/gaugenn/gaugenn/internal/nn/graph"
)

// Quantization scheme (documented in docs/exec.md):
//
//   - Per-tensor affine: real = (q - zeroPoint) · scale. int8 and int16
//     are symmetric (zeroPoint 0); uint8 centres on 128.
//   - Weights are symmetric int8 with a model-wide scale resolved at
//     compile time (Attrs.Scale on the layer, else the model's quantize
//     layer, else DefaultWeightScale).
//   - Activations are dynamic-range quantized: each producing op computes
//     its real-valued output and requantizes with scale = maxabs/limit,
//     zeroPoint 0 (128 for uint8). No calibration pass exists — the corpus
//     ships no calibration data — and dynamic ranges keep the path
//     deterministic: same input, same scales, same bytes.

// decodeFloat32 reinterprets little-endian fp32 weight bytes.
func decodeFloat32(data []byte) []float32 {
	out := make([]float32, len(data)/4)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(data[i*4:]))
	}
	return out
}

// decodeFloat16 widens IEEE 754 half-precision weight bytes to fp32.
func decodeFloat16(data []byte) []float32 {
	out := make([]float32, len(data)/2)
	for i := range out {
		out[i] = f16to32(binary.LittleEndian.Uint16(data[i*2:]))
	}
	return out
}

func f16to32(h uint16) float32 {
	sign := uint32(h>>15) << 31
	exp := uint32(h>>10) & 0x1f
	frac := uint32(h) & 0x3ff
	switch exp {
	case 0:
		if frac == 0 {
			return math.Float32frombits(sign)
		}
		// Subnormal: normalise into fp32's wider exponent range.
		e := uint32(127 - 15 + 1)
		for frac&0x400 == 0 {
			frac <<= 1
			e--
		}
		return math.Float32frombits(sign | e<<23 | (frac&0x3ff)<<13)
	case 0x1f:
		return math.Float32frombits(sign | 0xff<<23 | frac<<13)
	default:
		return math.Float32frombits(sign | (exp+127-15)<<23 | frac<<13)
	}
}

// decodeInt8 widens symmetric int8 weight bytes with their per-tensor
// scale (used for small secondary tensors — bias, γ/β, α — where a copy
// is cheaper than three more kernel variants; the heavy conv/dense kernel
// tensors stay zero-copy in step.wRaw).
func decodeInt8(data []byte, scale float64) []float32 {
	out := make([]float32, len(data))
	s := float32(scale)
	for i, b := range data {
		out[i] = float32(int8(b)) * s
	}
	return out
}

// quantLimit returns the symmetric clamp magnitude for a dtype.
func quantLimit(dt graph.DType) float64 {
	switch dt {
	case graph.Int16:
		return 32767
	default: // int8, uint8
		return 127
	}
}

// requantize stores real-valued src into the quantized byte buffer dst
// with the given scale/zeroPoint, clamping to the dtype's range.
func requantize(dst []byte, src []float32, dt graph.DType, scale float64, zp int32) {
	inv := 0.0
	if scale != 0 {
		inv = 1 / scale
	}
	switch dt {
	case graph.UInt8:
		for i, v := range src {
			q := int32(math.RoundToEven(float64(v)*inv)) + zp
			if q < 0 {
				q = 0
			} else if q > 255 {
				q = 255
			}
			dst[i] = byte(q)
		}
	case graph.Int16:
		for i, v := range src {
			q := int32(math.RoundToEven(float64(v)*inv)) + zp
			if q < -32768 {
				q = -32768
			} else if q > 32767 {
				q = 32767
			}
			binary.LittleEndian.PutUint16(dst[i*2:], uint16(int16(q)))
		}
	default: // Int8
		for i, v := range src {
			q := int32(math.RoundToEven(float64(v)*inv)) + zp
			if q < -128 {
				q = -128
			} else if q > 127 {
				q = 127
			}
			dst[i] = byte(int8(q))
		}
	}
}

// dequantize expands quantized bytes into real values.
func dequantize(dst []float32, src []byte, dt graph.DType, scale float64, zp int32) {
	if scale == 0 {
		scale = 1
	}
	s := float32(scale)
	switch dt {
	case graph.UInt8:
		for i := range dst {
			dst[i] = float32(int32(src[i])-zp) * s
		}
	case graph.Int16:
		for i := range dst {
			q := int32(int16(binary.LittleEndian.Uint16(src[i*2:])))
			dst[i] = float32(q-zp) * s
		}
	default: // Int8
		for i := range dst {
			dst[i] = float32(int32(int8(src[i]))-zp) * s
		}
	}
}

// maxAbs returns the dynamic range of a real-valued tensor.
func maxAbs(x []float32) float64 {
	var m float32
	for _, v := range x {
		if v < 0 {
			v = -v
		}
		if v > m {
			m = v
		}
	}
	return float64(m)
}

// splitmix64 is the deterministic input generator: one multiply-shift
// round per element, seeded per run and per tensor, allocation-free.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
