// Package exec is gaugeNN's in-process inference engine: a topological-order
// interpreter over the internal/nn/graph IR with reference fp32 kernels for
// the operator vocabulary the corpus actually uses, an int8 quantized path
// whose MAC loops read the graph's raw weight bytes without copying, a
// liveness-planned tensor arena (buffers reused across layers, zero
// allocations per op in steady state) and a worker-pool batch executor with
// deterministic result ordering (Pool).
//
// Where internal/mlrt's simulated sessions advance a virtual device clock,
// an executed session (mlrt.Options.Execute) runs real arithmetic through
// this interpreter and reports measured wall-clock latency — upgrading the
// fleet/Table-4 numbers from simulation to measurement and enabling the
// per-op roofline reports the paper only estimates. See docs/exec.md for
// the kernel contracts, the quantization scheme and the arena lifetime
// rules.
package exec

import (
	"fmt"
	"sort"

	"github.com/gaugenn/gaugenn/internal/errs"
	"github.com/gaugenn/gaugenn/internal/nn/graph"
)

// DefaultWeightScale is the per-tensor weight scale assumed for int8 weight
// tensors when the graph records none. Weight-only quantized zoo models
// store no scale anywhere; post-training-quantized ones carry it on their
// quantize layers, which Compile prefers. 0.01 is the zoo's quantisation
// step (zoo.QuantizeModel(g, 0.01)).
const DefaultWeightScale = 0.01

// tensorInfo is one entry of the program's tensor table: a graph edge bound
// to an arena slot.
type tensorInfo struct {
	name  string
	dtype graph.DType
	shape graph.Shape
	elems int
	// isFloat selects the float32 arena; quantized tensors (int8/uint8/
	// int16) live in the byte arena at their storage width.
	isFloat bool
	// off/size locate the buffer inside its arena: float32 elements for
	// float tensors, bytes for quantized ones.
	off, size int
	// scale/zeroPoint are the static quantization parameters when the
	// producer declares them (quantize layers); 0 scale means the producer
	// assigns them dynamically at run time.
	scale     float64
	zeroPoint int32
	isInput   bool
	isOutput  bool
}

// step is one compiled layer: resolved tensor ids, decoded (fp32) or
// borrowed (int8) weights and the hyperparameters kernels need.
type step struct {
	name  string
	op    graph.OpType
	class graph.OpClass
	fused graph.OpType
	in    []int
	out   int
	attrs graph.Attrs

	// Weight views. Float32/float16 weights are decoded once at compile
	// time into wFloat/bFloat. The heavy kernel tensor of int8
	// conv/depthwise/dense layers stays as the graph's raw bytes in wRaw —
	// the MAC loops index it directly, so loading a quantized model copies
	// no kernel weight data. Small secondary tensors (bias, γ/β, PRelu α)
	// are widened to fp32 at compile whatever their dtype.
	wFloat []float32
	bFloat []float32
	wRaw   []byte
	wScale float64
}

// Program is a compiled, immutable execution plan shared by any number of
// Instances (one per worker). It owns the decoded fp32 weights and the
// arena layout; all mutable run state lives in the Instance.
type Program struct {
	Graph *Graphless

	steps   []step
	tensors []tensorInfo
	inputs  []int
	outputs []int

	floatArena int // float32 elements
	byteArena  int // bytes
	scratch    int // float32 elements

	// est aggregates the structural profile per Figure-6 class — the
	// estimated side of the roofline report.
	estFLOPs [numClasses]int64
	estBytes [numClasses]int64
}

// Graphless carries the model identity a Program keeps after compilation
// (the graph itself is not retained — weights were decoded or borrowed into
// steps, everything else into the tensor table).
type Graphless struct {
	Name   string
	Layers int
	Params int64
}

const numClasses = int(graph.ClassSlice) + 1

// Validate reports whether the interpreter can execute every layer of g,
// returning a *errs.UnsupportedOpsError (matching errs.ErrUnsupportedOps)
// listing the offending operators otherwise. It is the cheap up-front gate
// fleet matrix expansion and the CLIs use to reject executed mode before
// any job is dispatched.
func Validate(g *graph.Graph) error {
	unsupported := map[string]bool{}
	for i := range g.Layers {
		l := &g.Layers[i]
		if reason := unsupportedReason(l); reason != "" {
			unsupported[reason] = true
		}
	}
	if len(unsupported) == 0 {
		return nil
	}
	ops := make([]string, 0, len(unsupported))
	for op := range unsupported {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	return &errs.UnsupportedOpsError{Model: g.Name, Ops: ops}
}

// unsupportedReason returns "" when the layer is executable, or the
// operator name (with a bracketed detail for unsupported configurations of
// a supported operator) otherwise.
func unsupportedReason(l *graph.Layer) string {
	switch l.Op {
	case graph.OpLSTM, graph.OpGRU, graph.OpEmbedding:
		// Recurrent/lookup ops are outside the corpus' executable
		// vocabulary (the same set most delegate backends fall back on).
		return l.Op.String()
	case graph.OpConv2D:
		if l.Attrs.Groups > 1 {
			return "conv2d[groups>1]"
		}
	case graph.OpInvalid:
		return "invalid"
	}
	for _, w := range l.Weights {
		switch w.DType {
		case graph.Float32, graph.Float16, graph.Int8:
		default:
			return fmt.Sprintf("%s[%s-weights]", l.Op, w.DType)
		}
	}
	return ""
}

// supportedActivation reports whether the interpreter can store a tensor of
// this element type.
func supportedActivation(dt graph.DType) bool {
	switch dt {
	case graph.Float32, graph.Int8, graph.UInt8, graph.Int16:
		return true
	}
	return false
}

// Compile validates g, infers every tensor shape, plans the arena and
// resolves weights into an executable Program. Graphs with operators
// outside the kernel vocabulary fail with *errs.UnsupportedOpsError.
func Compile(g *graph.Graph) (*Program, error) {
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("exec: %w", err)
	}
	if err := Validate(g); err != nil {
		metRejected.Inc()
		return nil, err
	}
	env, err := g.InferShapes()
	if err != nil {
		return nil, fmt.Errorf("exec: %w", err)
	}
	prof, err := graph.ProfileGraph(g)
	if err != nil {
		return nil, fmt.Errorf("exec: %w", err)
	}

	p := &Program{Graph: &Graphless{Name: g.Name, Layers: len(g.Layers), Params: g.ParamCount()}}
	id := map[string]int{}
	addTensor := func(t graph.Tensor) (int, error) {
		if !supportedActivation(t.DType) {
			return 0, &errs.UnsupportedOpsError{Model: g.Name, Ops: []string{fmt.Sprintf("tensor[%s]", t.DType)}}
		}
		ti := tensorInfo{
			name:    t.Name,
			dtype:   t.DType,
			shape:   t.Shape.Clone(),
			elems:   int(t.Shape.Elements()),
			isFloat: t.DType == graph.Float32,
		}
		if ti.isFloat {
			ti.size = ti.elems
		} else {
			ti.size = ti.elems * t.DType.Size()
		}
		p.tensors = append(p.tensors, ti)
		id[t.Name] = len(p.tensors) - 1
		return len(p.tensors) - 1, nil
	}
	for _, in := range g.Inputs {
		tid, err := addTensor(env[in.Name])
		if err != nil {
			return nil, err
		}
		p.tensors[tid].isInput = true
		p.inputs = append(p.inputs, tid)
	}

	// The graph-level weight scale fallback: a post-training-quantized
	// model records its step on the quantize layers; weight-only models
	// record nothing and take DefaultWeightScale.
	weightScale := DefaultWeightScale
	for i := range g.Layers {
		if g.Layers[i].Op == graph.OpQuantize && g.Layers[i].Attrs.Scale > 0 {
			weightScale = g.Layers[i].Attrs.Scale
			break
		}
	}

	for i := range g.Layers {
		l := &g.Layers[i]
		st := step{
			name:  l.Name,
			op:    l.Op,
			class: l.Op.Class(),
			fused: l.Attrs.Fused,
			attrs: l.Attrs,
		}
		for _, in := range l.Inputs {
			st.in = append(st.in, id[in])
		}
		for _, out := range l.Outputs {
			tid, err := addTensor(env[out])
			if err != nil {
				return nil, err
			}
			st.out = tid
		}
		// Static quantization parameters: a quantize layer declares its
		// output's scale/zero-point; everything else inherits dynamically.
		if l.Op == graph.OpQuantize && l.Attrs.Scale > 0 {
			p.tensors[st.out].scale = l.Attrs.Scale
			p.tensors[st.out].zeroPoint = int32(l.Attrs.ZeroPoint)
		}
		var inShape graph.Shape
		if len(st.in) > 0 {
			inShape = p.tensors[st.in[0]].shape
		}
		if err := resolveWeights(&st, l, weightScale, inShape); err != nil {
			return nil, fmt.Errorf("exec: layer %q: %w", l.Name, err)
		}
		p.steps = append(p.steps, st)
	}
	for _, out := range g.Outputs {
		tid, ok := id[out.Name]
		if !ok {
			return nil, fmt.Errorf("exec: output %q never produced", out.Name)
		}
		p.tensors[tid].isOutput = true
		p.outputs = append(p.outputs, tid)
	}

	p.planArena()
	p.planScratch()

	for _, lp := range prof.Layers {
		c := int(lp.Class)
		if c < numClasses {
			p.estFLOPs[c] += lp.FLOPs
			p.estBytes[c] += lp.InputBytes + lp.OutputBytes + lp.WeightBytes
		}
	}
	metCompiles.Inc()
	return p, nil
}

// resolveWeights turns a layer's weight list into the step's kernel views.
// Layer conventions follow the builder: conv/dense carry [kernel, bias],
// batch-norm [gamma, beta], prelu an optional per-channel alpha. Float
// weights (fp32 bit-cast, fp16 widened) decode once; the int8 kernel
// tensor of MAC layers is borrowed raw and never copied; graphs whose
// weights were stripped (DetachWeights before CAS storage) get
// deterministic synthetic kernels so any stored model stays runnable.
func resolveWeights(st *step, l *graph.Layer, weightScale float64, inShape graph.Shape) error {
	st.wScale = weightScale
	if l.Attrs.Scale > 0 && l.Op != graph.OpQuantize && l.Op != graph.OpDequantize {
		st.wScale = l.Attrs.Scale
	}
	macOp := l.Op == graph.OpConv2D || l.Op == graph.OpDepthwiseConv2D || l.Op == graph.OpDense
	for wi := range l.Weights {
		w := &l.Weights[wi]
		if len(w.Data) == 0 {
			continue
		}
		var f []float32
		var raw []byte
		switch w.DType {
		case graph.Float32:
			f = decodeFloat32(w.Data)
		case graph.Float16:
			f = decodeFloat16(w.Data)
		case graph.Int8:
			if wi == 0 && macOp {
				raw = w.Data // borrowed: the int8 MAC path never copies kernels
			} else {
				f = decodeInt8(w.Data, st.wScale)
			}
		default:
			return fmt.Errorf("weight %q has unsupported dtype %s", w.Name, w.DType)
		}
		if wi == 0 {
			st.wFloat, st.wRaw = f, raw
		} else if st.bFloat == nil {
			st.bFloat = f
		}
	}
	if st.wFloat == nil && st.wRaw == nil {
		st.wFloat = syntheticKernel(l, inShape)
	}
	return nil
}

// syntheticKernel builds a deterministic stand-in kernel for MAC layers
// whose weights were detached before storage. Values are a fixed function
// of the layer name and index, in [-0.1, 0.1), so latency and digests stay
// stable run to run and machine to machine.
func syntheticKernel(l *graph.Layer, inShape graph.Shape) []float32 {
	var n int
	a := l.Attrs
	switch l.Op {
	case graph.OpConv2D:
		if len(inShape) == 4 {
			n = a.KernelH * a.KernelW * inShape[3] * a.Filters
		}
	case graph.OpTransposeConv2D:
		if len(inShape) == 4 {
			n = a.KernelH * a.KernelW * a.Filters * inShape[3]
		}
	case graph.OpDepthwiseConv2D:
		if len(inShape) == 4 {
			mult := a.DepthMult
			if mult <= 0 {
				mult = 1
			}
			n = a.KernelH * a.KernelW * inShape[3] * mult
		}
	case graph.OpDense:
		if len(inShape) >= 1 {
			batch := inShape[0]
			if batch <= 0 {
				batch = 1
			}
			n = int(inShape.Elements()) / batch * a.Units
		}
	}
	if n <= 0 {
		return nil
	}
	seed := uint64(0xcbf29ce484222325)
	for _, c := range []byte(l.Name) {
		seed = (seed ^ uint64(c)) * 0x100000001b3
	}
	out := make([]float32, n)
	for i := range out {
		out[i] = (float32(splitmix64(&seed)>>40)/float32(1<<24) - 0.5) * 0.2
	}
	return out
}

// planArena assigns every tensor an offset in its arena using first-fit
// free-list reuse over def/last-use liveness: a buffer is released the
// moment its final consumer finishes, so deep sequential models run in a
// working set of roughly two layer footprints. Graph inputs and outputs
// are pinned live for the whole run.
func (p *Program) planArena() {
	lastUse := make([]int, len(p.tensors))
	for i := range lastUse {
		lastUse[i] = -1
	}
	for si := range p.steps {
		for _, tid := range p.steps[si].in {
			lastUse[tid] = si
		}
	}
	pinned := len(p.steps) // never released
	for i, t := range p.tensors {
		if t.isInput || t.isOutput {
			lastUse[i] = pinned
		}
	}

	var floatAlloc, byteAlloc arenaAllocator
	alloc := func(tid int) {
		t := &p.tensors[tid]
		if t.isFloat {
			t.off = floatAlloc.alloc(t.size)
		} else {
			t.off = byteAlloc.alloc(t.size)
		}
	}
	release := func(tid int) {
		t := &p.tensors[tid]
		if t.isFloat {
			floatAlloc.release(t.off, t.size)
		} else {
			byteAlloc.release(t.off, t.size)
		}
	}

	for _, tid := range p.inputs {
		alloc(tid)
	}
	for si := range p.steps {
		alloc(p.steps[si].out)
		for _, tid := range p.steps[si].in {
			if lastUse[tid] == si {
				release(tid)
			}
		}
		if lastUse[p.steps[si].out] < si {
			// Produced but never consumed and not an output: dead store,
			// release immediately so it costs one layer's footprint at most.
			release(p.steps[si].out)
		}
	}
	p.floatArena = floatAlloc.high
	p.byteArena = byteAlloc.high
}

// planScratch sizes the shared float32 scratch: the widest layer's
// dequantized inputs plus output, which covers both the generic
// quantized-op path (dequantize -> fp32 kernel -> requantize) and the
// integer-MAC epilogue that stages real-valued outputs before dynamic
// requantization.
func (p *Program) planScratch() {
	for si := range p.steps {
		need := p.tensors[p.steps[si].out].elems
		for _, tid := range p.steps[si].in {
			need += p.tensors[tid].elems
		}
		if need > p.scratch {
			p.scratch = need
		}
	}
}

// arenaAllocator is the compile-time first-fit planner with free-block
// coalescing. It runs only during Compile; instances just slice the two
// flat arrays it sized.
type arenaAllocator struct {
	free []arenaBlock // sorted by offset
	high int
}

type arenaBlock struct{ off, size int }

func (a *arenaAllocator) alloc(size int) int {
	if size == 0 {
		return 0
	}
	for i, b := range a.free {
		if b.size >= size {
			off := b.off
			if b.size == size {
				a.free = append(a.free[:i], a.free[i+1:]...)
			} else {
				a.free[i] = arenaBlock{off: b.off + size, size: b.size - size}
			}
			return off
		}
	}
	off := a.high
	a.high += size
	return off
}

func (a *arenaAllocator) release(off, size int) {
	if size == 0 {
		return
	}
	i := sort.Search(len(a.free), func(i int) bool { return a.free[i].off >= off })
	a.free = append(a.free, arenaBlock{})
	copy(a.free[i+1:], a.free[i:])
	a.free[i] = arenaBlock{off: off, size: size}
	// Coalesce with neighbours so fragmentation cannot grow the arena
	// beyond the true peak working set.
	if i+1 < len(a.free) && a.free[i].off+a.free[i].size == a.free[i+1].off {
		a.free[i].size += a.free[i+1].size
		a.free = append(a.free[:i+1], a.free[i+2:]...)
	}
	if i > 0 && a.free[i-1].off+a.free[i-1].size == a.free[i].off {
		a.free[i-1].size += a.free[i].size
		a.free = append(a.free[:i], a.free[i+1:]...)
	}
}

// ArenaBytes reports the planned activation working set (both arenas plus
// scratch) in bytes — the executed-mode PeakMemBytes contribution.
func (p *Program) ArenaBytes() int64 {
	return int64(p.floatArena)*4 + int64(p.byteArena) + int64(p.scratch)*4
}

// Inputs lists the model's input tensor names in declaration order.
func (p *Program) Inputs() []string {
	out := make([]string, len(p.inputs))
	for i, tid := range p.inputs {
		out[i] = p.tensors[tid].name
	}
	return out
}

// Outputs lists the model's output tensor names in declaration order.
func (p *Program) Outputs() []string {
	out := make([]string, len(p.outputs))
	for i, tid := range p.outputs {
		out[i] = p.tensors[tid].name
	}
	return out
}
