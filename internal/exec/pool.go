package exec

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// RunResult is one inference of a Pool batch: the seed it ran with, the
// output digest and the measured wall-clock latency.
type RunResult struct {
	Seed    uint64
	Digest  [32]byte
	Latency time.Duration
}

// Pool is the batch executor: a fixed set of workers, each owning one
// Instance, draining a shared seed list. Results land at the index of
// their seed, and each inference is a pure function of (program, seed), so
// the result slice — digests included — is identical whatever the worker
// count or interleaving; only the Latency fields reflect the machine.
type Pool struct {
	prog    *Program
	workers int
}

// NewPool builds a batch executor with the given worker count
// (non-positive = GOMAXPROCS).
func NewPool(p *Program, workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{prog: p, workers: workers}
}

// Workers reports the pool's concurrency.
func (pl *Pool) Workers() int { return pl.workers }

// Run executes one inference per seed and returns results in seed order.
func (pl *Pool) Run(seeds []uint64) []RunResult {
	results := make([]RunResult, len(seeds))
	if len(seeds) == 0 {
		return results
	}
	workers := pl.workers
	if workers > len(seeds) {
		workers = len(seeds)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			inst := pl.prog.NewInstance()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(seeds) {
					return
				}
				lat := inst.Run(seeds[i])
				results[i] = RunResult{Seed: seeds[i], Digest: inst.Digest(), Latency: lat}
			}
		}()
	}
	wg.Wait()
	return results
}
