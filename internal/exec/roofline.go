package exec

import (
	"time"

	"github.com/gaugenn/gaugenn/internal/nn/graph"
)

// ClassStat is one row of the per-op roofline: what the structural profile
// predicts for a Figure-6 operator class (FLOPs, bytes moved) against what
// the interpreter measured, averaged over the instance's runs. Measured
// throughput far below the estimated arithmetic intensity would predict is
// the roofline's memory-bound signal (cf. Lu et al.'s estimation-only
// approach — here both axes are observed).
type ClassStat struct {
	Class string `json:"class"`
	// Ops is operator executions per inference; Nanos the mean wall time
	// per inference spent in the class.
	Ops   int64 `json:"ops"`
	Nanos int64 `json:"nanos"`
	// EstFLOPs/EstBytes come from graph.ProfileGraph for one inference.
	EstFLOPs int64 `json:"estFlops"`
	EstBytes int64 `json:"estBytes"`
	// GFLOPS and GBps are the resulting measured rates (estimated work
	// over measured time).
	GFLOPS float64 `json:"gflops"`
	GBps   float64 `json:"gbps"`
}

// Stats reduces the instance's accumulated timings into per-class roofline
// rows (classes the model never executed are omitted). Rows are in
// Figure-6 display order.
func (in *Instance) Stats() []ClassStat {
	if in.runs == 0 {
		return nil
	}
	out := make([]ClassStat, 0, numClasses)
	for _, c := range graph.AllClasses() {
		if in.opsByClass[c] == 0 {
			continue
		}
		st := ClassStat{
			Class:    c.String(),
			Ops:      in.opsByClass[c] / in.runs,
			Nanos:    in.nsByClass[c] / in.runs,
			EstFLOPs: in.prog.estFLOPs[c],
			EstBytes: in.prog.estBytes[c],
		}
		if st.Nanos > 0 {
			secs := float64(st.Nanos) / float64(time.Second)
			st.GFLOPS = float64(st.EstFLOPs) / secs / 1e9
			st.GBps = float64(st.EstBytes) / secs / 1e9
		}
		out = append(out, st)
	}
	return out
}

// Runs reports how many inferences the instance has accumulated.
func (in *Instance) Runs() int64 { return in.runs }

// MeanLatency reports the mean wall-clock time per inference.
func (in *Instance) MeanLatency() time.Duration {
	if in.runs == 0 {
		return 0
	}
	return time.Duration(in.totalNS / in.runs)
}
