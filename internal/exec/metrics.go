package exec

import (
	"github.com/gaugenn/gaugenn/internal/nn/graph"
	"github.com/gaugenn/gaugenn/internal/obs"
)

// Interpreter series. Handles are resolved once at package init and indexed
// by graph.OpClass, so the per-op hot path pays two atomic updates and zero
// registry lookups — the convention the AllocsPerRun test in exec_test.go
// enforces. Op-time buckets are exponential from 1µs: reference kernels on
// a laptop span microseconds (elementwise) to tens of milliseconds (first
// conv of an image model).
var (
	metOpsTotal  [numClasses]*obs.Counter
	metOpSeconds [numClasses]*obs.Histogram

	metRuns = obs.Default().Counter("gaugenn_exec_runs_total",
		"Complete interpreter passes (one inference each).")
	metRunSeconds = obs.Default().Histogram("gaugenn_exec_run_seconds",
		"Wall-clock time of one interpreter pass.", nil)
	metCompiles = obs.Default().Counter("gaugenn_exec_compiles_total",
		"Graphs compiled into executable programs.")
	metRejected = obs.Default().Counter("gaugenn_exec_rejected_total",
		"Graphs rejected at compile time for unsupported operators.")
)

func init() {
	buckets := obs.ExponentialBuckets(1e-6, 4, 10) // 1µs .. ~260ms
	for _, c := range graph.AllClasses() {
		lbl := obs.Label{Name: "class", Value: c.String()}
		metOpsTotal[c] = obs.Default().Counter("gaugenn_exec_ops_total",
			"Operators executed by the interpreter.", lbl)
		metOpSeconds[c] = obs.Default().Histogram("gaugenn_exec_op_seconds",
			"Wall-clock time of one operator execution.", buckets, lbl)
	}
}
