package exec

import (
	"errors"
	"math"
	"testing"

	"github.com/gaugenn/gaugenn/internal/errs"
	"github.com/gaugenn/gaugenn/internal/nn/graph"
	"github.com/gaugenn/gaugenn/internal/nn/zoo"
)

func buildModel(t testing.TB, spec zoo.Spec) *Program {
	t.Helper()
	g, err := zoo.Build(spec)
	if err != nil {
		t.Fatalf("build %v: %v", spec.Task, err)
	}
	p, err := Compile(g)
	if err != nil {
		t.Fatalf("compile %s: %v", g.Name, err)
	}
	return p
}

// TestCompileZooModels drives the interpreter across the executable zoo
// architectures in all three precision regimes and checks the plan
// invariants that arena sizing depends on.
func TestCompileZooModels(t *testing.T) {
	specs := []zoo.Spec{
		{Task: zoo.TaskImageClassification, Seed: 1},                        // MobileNetV2: conv, dwconv, add, pooling
		{Task: zoo.TaskImageClassification, Seed: 1, Quantized: true},       // PTQ int8 activations
		{Task: zoo.TaskImageClassification, Seed: 1, WeightQuantized: true}, // hybrid int8 weights
		{Task: zoo.TaskObjectDetection, Seed: 2},                            // FSSD: concat, reshape heads
		{Task: zoo.TaskFaceDetection, Seed: 3},                              // BlazeFace: pad, maxpool residuals
		{Task: zoo.TaskSemanticSegmentation, Seed: 4},                       // UNet: transpose conv, resize
		{Task: zoo.TaskStyleTransfer, Seed: 5},                              // encoder-decoder: resize, batch-norm
		{Task: zoo.TaskKeywordDetection, Seed: 6},                           // audio conv stack
		{Task: zoo.TaskCrashDetection, Seed: 7},                             // sensor MLP: dense, softmax
	}
	for _, spec := range specs {
		p := buildModel(t, spec)
		if p.ArenaBytes() <= 0 {
			t.Errorf("%s: arena not planned", p.Graph.Name)
		}
		inst := p.NewInstance()
		if lat := inst.Run(42); lat <= 0 {
			t.Errorf("%s: non-positive latency %v", p.Graph.Name, lat)
		}
		if len(inst.Stats()) == 0 {
			t.Errorf("%s: no roofline stats after a run", p.Graph.Name)
		}
	}
}

// TestRunDeterminism pins the interpreter's core property: the digest is a
// pure function of (program, seed) — across repeat runs of one instance,
// across fresh instances, and across separately compiled programs.
func TestRunDeterminism(t *testing.T) {
	spec := zoo.Spec{Task: zoo.TaskImageClassification, Seed: 11, Quantized: true}
	p1 := buildModel(t, spec)
	p2 := buildModel(t, spec)
	a, b, c := p1.NewInstance(), p1.NewInstance(), p2.NewInstance()
	for seed := uint64(0); seed < 3; seed++ {
		a.Run(seed)
		da := a.Digest()
		a.Run(seed)
		if a.Digest() != da {
			t.Fatalf("seed %d: repeat run changed digest", seed)
		}
		b.Run(seed)
		if b.Digest() != da {
			t.Fatalf("seed %d: fresh instance changed digest", seed)
		}
		c.Run(seed)
		if c.Digest() != da {
			t.Fatalf("seed %d: recompiled program changed digest", seed)
		}
	}
}

// TestPoolDeterministicAcrossWorkerCounts is the satellite property test:
// byte-identical batch results whatever the pool size.
func TestPoolDeterministicAcrossWorkerCounts(t *testing.T) {
	p := buildModel(t, zoo.Spec{Task: zoo.TaskFaceDetection, Seed: 21})
	seeds := make([]uint64, 16)
	for i := range seeds {
		seeds[i] = uint64(i * 7)
	}
	ref := NewPool(p, 1).Run(seeds)
	for _, workers := range []int{2, 3, 8} {
		got := NewPool(p, workers).Run(seeds)
		for i := range ref {
			if got[i].Seed != ref[i].Seed || got[i].Digest != ref[i].Digest {
				t.Fatalf("workers=%d: result %d diverged from single-worker run", workers, i)
			}
		}
	}
}

// TestInt8AgreesWithFP32 runs the same models in fp32 and the two
// quantized regimes and checks the documented end-to-end tolerance: cosine
// similarity of the final outputs ≥ 0.95 (docs/exec.md derives this from
// the per-op error budget of dynamic-range int8).
func TestInt8AgreesWithFP32(t *testing.T) {
	for _, task := range []zoo.Task{zoo.TaskImageClassification, zoo.TaskKeywordDetection} {
		ref := buildModel(t, zoo.Spec{Task: task, Seed: 31})
		for _, variant := range []zoo.Spec{
			{Task: task, Seed: 31, Quantized: true},
			{Task: task, Seed: 31, WeightQuantized: true},
		} {
			q := buildModel(t, variant)
			ri, qi := ref.NewInstance(), q.NewInstance()
			ri.Run(5)
			qi.Run(5)
			for _, name := range ref.Outputs() {
				a := ri.Output(name)
				// Quantized variants rename nothing: outputs match by
				// position (PTQ rewires through dequantize layers).
				b := qi.Output(q.Outputs()[indexOf(ref.Outputs(), name)])
				if cos := cosine(a, b); cos < 0.95 {
					t.Errorf("task %v quantized=%v output %s: cosine %.4f < 0.95",
						task, variant.Quantized, name, cos)
				}
			}
		}
	}
}

func indexOf(xs []string, x string) int {
	for i, v := range xs {
		if v == x {
			return i
		}
	}
	return 0
}

func cosine(a, b []float32) float64 {
	if len(a) != len(b) || len(a) == 0 {
		return 0
	}
	var dot, na, nb float64
	for i := range a {
		dot += float64(a[i]) * float64(b[i])
		na += float64(a[i]) * float64(a[i])
		nb += float64(b[i]) * float64(b[i])
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}

// TestValidateUnsupportedOps checks the typed rejection path: recurrent
// models fail with errs.ErrUnsupportedOps listing each offending operator,
// and Compile refuses them the same way.
func TestValidateUnsupportedOps(t *testing.T) {
	g, err := zoo.Build(zoo.Spec{Task: zoo.TaskAutoComplete, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	err = Validate(g)
	if !errors.Is(err, errs.ErrUnsupportedOps) {
		t.Fatalf("Validate = %v, want ErrUnsupportedOps", err)
	}
	var ue *errs.UnsupportedOpsError
	if !errors.As(err, &ue) {
		t.Fatalf("error is not *UnsupportedOpsError: %T", err)
	}
	found := map[string]bool{}
	for _, op := range ue.Ops {
		found[op] = true
	}
	if !found["lstm"] || !found["embedding"] {
		t.Errorf("Ops = %v, want lstm and embedding listed", ue.Ops)
	}
	if _, err := Compile(g); !errors.Is(err, errs.ErrUnsupportedOps) {
		t.Errorf("Compile = %v, want ErrUnsupportedOps", err)
	}

	if err := Validate(mustBuild(t, zoo.Spec{Task: zoo.TaskCrashDetection, Seed: 42})); err != nil {
		t.Errorf("executable model rejected: %v", err)
	}
}

func mustBuild(t *testing.T, spec zoo.Spec) *graph.Graph {
	t.Helper()
	g, err := zoo.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestAllocsPerRun gates the steady-state zero-alloc contract on the full
// hot path — input fill, every kernel, metric updates and the digest —
// for both the fp32 and quantized regimes (PR 7 convention: pre-resolved
// metric handles, no per-op lookups).
func TestAllocsPerRun(t *testing.T) {
	for _, spec := range []zoo.Spec{
		{Task: zoo.TaskCrashDetection, Seed: 51},
		{Task: zoo.TaskKeywordDetection, Seed: 52, Quantized: true},
	} {
		p := buildModel(t, spec)
		inst := p.NewInstance()
		inst.Run(1) // warm: lazy runtime state settles outside the measurement
		seed := uint64(0)
		if n := testing.AllocsPerRun(100, func() {
			seed++
			inst.Run(seed)
			_ = inst.Digest()
		}); n != 0 {
			t.Errorf("%s: %v allocs per run, want 0", p.Graph.Name, n)
		}
	}
}

// TestArenaReuse checks the allocator actually reuses buffers: the planned
// float arena of a deep sequential model must be far below the sum of all
// its activation tensors.
func TestArenaReuse(t *testing.T) {
	p := buildModel(t, zoo.Spec{Task: zoo.TaskImageClassification, Seed: 61})
	var sum int
	for _, ti := range p.tensors {
		if ti.isFloat {
			sum += ti.size
		}
	}
	if p.floatArena >= sum/2 {
		t.Errorf("float arena %d elements; want < half the %d-element tensor total (no reuse?)", p.floatArena, sum)
	}
}
