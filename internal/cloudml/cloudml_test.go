package cloudml

import (
	"testing"

	"github.com/gaugenn/gaugenn/internal/android/dex"
)

func TestKnownAPIsWellFormed(t *testing.T) {
	apis := Known()
	if len(apis) != 14 {
		t.Fatalf("known APIs = %d, want the 14 Figure 15 families", len(apis))
	}
	for _, a := range apis {
		if a.Provider != "google" && a.Provider != "aws" {
			t.Errorf("%s: bad provider %q", a.Name, a.Provider)
		}
		if len(a.CallSites) == 0 {
			t.Errorf("%s: no call sites", a.Name)
		}
	}
}

func TestByNameAndPrimaryCallSite(t *testing.T) {
	a, ok := ByName("Vision/Face")
	if !ok || a.Provider != "google" {
		t.Fatalf("ByName: %+v %v", a, ok)
	}
	sig, ok := PrimaryCallSite("Lex (chatbot)")
	if !ok || sig == "" {
		t.Fatal("PrimaryCallSite(Lex) failed")
	}
	if _, ok := ByName("Nope"); ok {
		t.Fatal("unknown API should miss")
	}
	if _, ok := PrimaryCallSite("Nope"); ok {
		t.Fatal("unknown API call site should miss")
	}
}

func TestDetectSmaliThroughBaksmali(t *testing.T) {
	// Build a dex invoking two APIs, decompile it, detect.
	faceSig, _ := PrimaryCallSite("Vision/Face")
	lexSig, _ := PrimaryCallSite("Lex (chatbot)")
	d := &dex.Dex{Classes: []dex.Class{
		{Name: "Lcom/app/Main;", Methods: []dex.Method{
			{Name: "scan", Calls: []string{faceSig}},
		}},
		{Name: "Lcom/app/Bot;", Methods: []dex.Method{
			{Name: "chat", Calls: []string{lexSig}},
		}},
		{Name: "Lcom/app/Plain;", Methods: []dex.Method{
			{Name: "noop", Calls: []string{"Ljava/lang/Object;->toString()"}},
		}},
	}}
	smali := dex.Baksmali(d)
	dets := DetectSmali(smali)
	if len(dets) != 2 {
		t.Fatalf("detections = %v", dets)
	}
	apis := APIs(dets)
	if apis[0] != "Lex (chatbot)" || apis[1] != "Vision/Face" {
		t.Fatalf("APIs = %v", apis)
	}
	providers := map[string]string{}
	for _, det := range dets {
		providers[det.API] = det.Provider
	}
	if providers["Vision/Face"] != "google" || providers["Lex (chatbot)"] != "aws" {
		t.Fatalf("providers = %v", providers)
	}
}

func TestDetectSmaliDeduplicates(t *testing.T) {
	sig, _ := PrimaryCallSite("Vision/Barcode")
	files := map[string]string{
		"smali/A.smali": "invoke-virtual {v0}, " + sig + "\ninvoke-virtual {v0}, " + sig,
	}
	dets := DetectSmali(files)
	if len(dets) != 1 {
		t.Fatalf("detections = %v, want 1 (dedup per API+file)", dets)
	}
}

func TestDetectSmaliEmpty(t *testing.T) {
	if dets := DetectSmali(nil); len(dets) != 0 {
		t.Fatal("nil input should yield nothing")
	}
	if dets := DetectSmali(map[string]string{"a.smali": "nothing here"}); len(dets) != 0 {
		t.Fatal("plain smali should yield nothing")
	}
}
