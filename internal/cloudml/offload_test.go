package cloudml

import (
	"testing"
	"time"
)

func startServer(t *testing.T) (*InferenceServer, string) {
	t.Helper()
	srv := NewInferenceServer()
	base, shutdown, err := srv.Listen()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { shutdown() })
	return srv, base
}

func TestOffloadLatencyComposition(t *testing.T) {
	srv, base := startServer(t)
	c := NewOffloadClient(base, NetworkWiFi)
	lat, err := c.Infer("Vision/Face", 100*1024)
	if err != nil {
		t.Fatal(err)
	}
	// RTT (18ms) + 100 KiB over 80 Mbps (~10.2ms) + server 9ms + jitter 0.
	want := NetworkWiFi.RTT + time.Duration(float64(100*1024*8)/(80e6)*1e9) + srv.ComputeTime
	if diff := lat - want; diff < -time.Millisecond || diff > time.Millisecond {
		t.Fatalf("latency = %v, want ~%v", lat, want)
	}
	if srv.Requests() != 1 {
		t.Fatalf("requests = %d", srv.Requests())
	}
}

func TestOffloadNetworkProfilesOrdering(t *testing.T) {
	_, base := startServer(t)
	lat := map[string]time.Duration{}
	for _, n := range []NetworkProfile{NetworkWiFi, Network4G, Network3G} {
		c := NewOffloadClient(base, n)
		l, err := c.Infer("Vision/Barcode", 50*1024)
		if err != nil {
			t.Fatal(err)
		}
		lat[n.Name] = l
	}
	if !(lat["wifi"] < lat["4g"] && lat["4g"] < lat["3g"]) {
		t.Fatalf("network ordering broken: %v", lat)
	}
}

func TestOffloadConsistencyAcrossClients(t *testing.T) {
	// The cloud's compute time does not depend on who calls — the
	// "consistent QoE" property of Section 6.4.
	_, base := startServer(t)
	a := NewOffloadClient(base, Network4G)
	b := NewOffloadClient(base, Network4G)
	la, err := a.Infer("Speech", 10*1024)
	if err != nil {
		t.Fatal(err)
	}
	lb, err := b.Infer("Speech", 10*1024)
	if err != nil {
		t.Fatal(err)
	}
	if la != lb {
		t.Fatalf("identical requests should cost the same: %v vs %v", la, lb)
	}
}

func TestOffloadJitterIsDeterministic(t *testing.T) {
	_, base := startServer(t)
	c := NewOffloadClient(base, Network4G)
	var lats []time.Duration
	for i := 0; i < 6; i++ {
		l, err := c.Infer("Vision/Face", 1024)
		if err != nil {
			t.Fatal(err)
		}
		lats = append(lats, l)
	}
	// Jitter cycles with period 3.
	if lats[0] != lats[3] || lats[1] != lats[4] || lats[2] != lats[5] {
		t.Fatalf("jitter should cycle deterministically: %v", lats)
	}
	if lats[0] == lats[1] {
		t.Fatal("jitter should vary within the cycle")
	}
}

func TestOffloadErrors(t *testing.T) {
	_, base := startServer(t)
	c := NewOffloadClient(base, NetworkWiFi)
	if _, err := c.Infer("Nonexistent API", 10); err == nil {
		t.Fatal("unknown API should fail")
	}
	dead := NewOffloadClient("http://127.0.0.1:1", NetworkWiFi)
	if _, err := dead.Infer("Vision/Face", 10); err == nil {
		t.Fatal("unreachable endpoint should fail")
	}
}

func TestInferenceServerRejectsBadRequests(t *testing.T) {
	srv, base := startServer(t)
	c := NewOffloadClient(base, NetworkWiFi)
	c.BaseURL = base // GET path coverage via wrong method is internal; rely on API check
	if _, err := c.Infer("", 10); err == nil {
		t.Fatal("empty API should fail")
	}
	if srv.Requests() != 0 {
		t.Fatal("rejected requests must not count")
	}
}
