// Package cloudml knows the cloud ML API surfaces gaugeNN detects in app
// code (Section 3.2): Google Firebase ML / Google Cloud and Amazon AWS ML
// services. It maps each Figure 15 API family to the smali call signatures
// apps invoke, and provides the string-matching detector that runs over
// decompiled smali files.
package cloudml

import (
	"sort"
	"strings"
)

// API is one cloud ML API family (a Figure 15 row).
type API struct {
	// Provider is "google" or "aws".
	Provider string
	// Name is the Figure 15 display name, e.g. "Vision/Face".
	Name string
	// CallSites are the method references whose presence in smali
	// indicates use of this API.
	CallSites []string
}

// Known lists every detectable API family. The call-site prefixes follow
// the real SDK package layouts (Firebase ML Kit, Google Cloud client
// libraries and the AWS Android SDK).
var known = []API{
	{"google", "Vision/Face", []string{
		"Lcom/google/firebase/ml/vision/FirebaseVision;->getVisionFaceDetector()",
		"Lcom/google/mlkit/vision/face/FaceDetection;->getClient()",
	}},
	{"google", "Vision/Barcode", []string{
		"Lcom/google/firebase/ml/vision/FirebaseVision;->getVisionBarcodeDetector()",
		"Lcom/google/mlkit/vision/barcode/BarcodeScanning;->getClient()",
	}},
	{"google", "Vision/Text", []string{
		"Lcom/google/firebase/ml/vision/FirebaseVision;->getOnDeviceTextRecognizer()",
		"Lcom/google/mlkit/vision/text/TextRecognition;->getClient()",
	}},
	{"google", "Vision/Object Detection", []string{
		"Lcom/google/mlkit/vision/objects/ObjectDetection;->getClient()",
	}},
	{"google", "Vision/Image Labeler", []string{
		"Lcom/google/firebase/ml/vision/FirebaseVision;->getOnDeviceImageLabeler()",
		"Lcom/google/mlkit/vision/label/ImageLabeling;->getClient()",
	}},
	{"google", "Vision/custom model", []string{
		"Lcom/google/firebase/ml/custom/FirebaseModelInterpreter;->getInstance()",
	}},
	{"google", "Speech", []string{
		"Lcom/google/cloud/speech/v1/SpeechClient;->create()",
	}},
	{"google", "Natural Language/Translate", []string{
		"Lcom/google/mlkit/nl/translate/Translation;->getClient()",
	}},
	{"google", "Natural Language/LanguageID", []string{
		"Lcom/google/mlkit/nl/languageid/LanguageIdentification;->getClient()",
	}},
	{"google", "Natural Language/Smart Reply", []string{
		"Lcom/google/mlkit/nl/smartreply/SmartReply;->getClient()",
	}},
	{"aws", "Rekognition (face recognition)", []string{
		"Lcom/amazonaws/services/rekognition/AmazonRekognitionClient;-><init>",
	}},
	{"aws", "Polly (text-to-speech)", []string{
		"Lcom/amazonaws/services/polly/AmazonPollyPresigningClient;-><init>",
	}},
	{"aws", "Kinesis (video analytics)", []string{
		"Lcom/amazonaws/services/kinesisvideo/AWSKinesisVideoClient;-><init>",
	}},
	{"aws", "Lex (chatbot)", []string{
		"Lcom/amazonaws/mobileconnectors/lex/interactionkit/InteractionClient;-><init>",
	}},
}

// Known returns all detectable API families.
func Known() []API { return append([]API(nil), known...) }

// ByName returns the API family with the given Figure 15 name.
func ByName(name string) (API, bool) {
	for _, a := range known {
		if a.Name == name {
			return a, true
		}
	}
	return API{}, false
}

// PrimaryCallSite returns the first call signature of the named API — what
// the store generator plants in app dex code.
func PrimaryCallSite(name string) (string, bool) {
	a, ok := ByName(name)
	if !ok || len(a.CallSites) == 0 {
		return "", false
	}
	return a.CallSites[0], true
}

// Detection is one detected API usage.
type Detection struct {
	Provider string
	API      string
	// File is the smali file the match occurred in.
	File string
}

// DetectSmali string-matches the known call sites over decompiled smali
// files, exactly the apktool-based pipeline of Section 3.2. Results are
// deduplicated per (API, file) and sorted deterministically.
func DetectSmali(files map[string]string) []Detection {
	var out []Detection
	seen := map[string]bool{}
	for file, body := range files {
		for _, api := range known {
			for _, sig := range api.CallSites {
				if strings.Contains(body, sig) {
					key := api.Name + "\x00" + file
					if !seen[key] {
						seen[key] = true
						out = append(out, Detection{Provider: api.Provider, API: api.Name, File: file})
					}
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].API != out[j].API {
			return out[i].API < out[j].API
		}
		return out[i].File < out[j].File
	})
	return out
}

// APIs returns the distinct API names in a detection list.
func APIs(ds []Detection) []string {
	set := map[string]bool{}
	for _, d := range ds {
		set[d.API] = true
	}
	out := make([]string, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}
