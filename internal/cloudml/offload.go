package cloudml

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sync/atomic"
	"time"
)

// The offload path quantifies the paper's Section 6.4/8.1 discussion:
// "offloading inference to the cloud offers a consistent QoE, which is not
// dependent on the target device, at the expense of privacy and monetary
// cost". An InferenceServer plays the datacenter endpoint; NetworkProfile
// models the radio link; OffloadClient measures end-to-end latency the way
// an app would experience it.

// NetworkProfile is the uplink a device offloads over.
type NetworkProfile struct {
	Name string
	// RTT is the round-trip time to the endpoint.
	RTT time.Duration
	// UplinkMbps bounds the request payload transfer.
	UplinkMbps float64
	// Jitter widens per-request latency deterministically by request
	// counter (r%3) * Jitter / 3, keeping runs reproducible.
	Jitter time.Duration
}

// Common mobile link profiles.
var (
	NetworkWiFi = NetworkProfile{Name: "wifi", RTT: 18 * time.Millisecond, UplinkMbps: 80, Jitter: 6 * time.Millisecond}
	Network4G   = NetworkProfile{Name: "4g", RTT: 55 * time.Millisecond, UplinkMbps: 12, Jitter: 25 * time.Millisecond}
	Network3G   = NetworkProfile{Name: "3g", RTT: 180 * time.Millisecond, UplinkMbps: 1.5, Jitter: 60 * time.Millisecond}
)

// InferenceRequest is the offload wire format.
type InferenceRequest struct {
	API        string `json:"api"`
	PayloadLen int    `json:"payloadLen"`
}

// InferenceResponse carries the server's verdict and its compute time.
type InferenceResponse struct {
	API       string        `json:"api"`
	ServerGPU time.Duration `json:"serverGpuNs"`
	Result    string        `json:"result"`
}

// InferenceServer simulates a cloud ML endpoint: datacenter accelerators
// make the compute time small and *independent of the client device* —
// the consistency the paper credits offloading with.
type InferenceServer struct {
	// ComputeTime is the per-request server-side inference time.
	ComputeTime time.Duration
	requests    atomic.Int64
	ln          net.Listener
}

// NewInferenceServer returns a server with a 9 ms datacenter inference.
func NewInferenceServer() *InferenceServer {
	return &InferenceServer{ComputeTime: 9 * time.Millisecond}
}

// Requests reports how many inferences were served.
func (s *InferenceServer) Requests() int64 { return s.requests.Load() }

// ServeHTTP implements http.Handler (POST /v1/infer).
func (s *InferenceServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost || r.URL.Path != "/v1/infer" {
		http.NotFound(w, r)
		return
	}
	var req InferenceRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if _, ok := ByName(req.API); !ok {
		http.Error(w, "unknown API "+req.API, http.StatusBadRequest)
		return
	}
	s.requests.Add(1)
	// The datacenter compute happens in simulated time; the wire only
	// carries its value back.
	json.NewEncoder(w).Encode(InferenceResponse{
		API:       req.API,
		ServerGPU: s.ComputeTime,
		Result:    "ok",
	})
}

// Listen starts the endpoint on loopback.
func (s *InferenceServer) Listen() (baseURL string, shutdown func() error, err error) {
	s.ln, err = net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, fmt.Errorf("cloudml: %w", err)
	}
	srv := &http.Server{Handler: s}
	go srv.Serve(s.ln)
	return "http://" + s.ln.Addr().String(), func() error { return srv.Close() }, nil
}

// OffloadClient issues offloaded inferences and accounts the end-to-end
// latency in *simulated* time: network RTT + payload transfer + server
// compute (the real HTTP hop exercises the code path; its wall-clock cost
// is not part of the model).
type OffloadClient struct {
	BaseURL string
	Network NetworkProfile
	HTTP    *http.Client
	counter int
}

// NewOffloadClient builds a client over the given network profile.
func NewOffloadClient(baseURL string, network NetworkProfile) *OffloadClient {
	return &OffloadClient{
		BaseURL: baseURL,
		Network: network,
		HTTP:    &http.Client{Timeout: 30 * time.Second},
	}
}

// Infer offloads one request with the given payload size (e.g. a JPEG
// frame) and returns the simulated end-to-end latency.
func (c *OffloadClient) Infer(api string, payloadBytes int) (time.Duration, error) {
	req := InferenceRequest{API: api, PayloadLen: payloadBytes}
	body, err := json.Marshal(req)
	if err != nil {
		return 0, err
	}
	resp, err := c.HTTP.Post(c.BaseURL+"/v1/infer", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, fmt.Errorf("cloudml: offload: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("cloudml: offload status %d", resp.StatusCode)
	}
	var out InferenceResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return 0, err
	}
	transfer := time.Duration(float64(payloadBytes*8) / (c.Network.UplinkMbps * 1e6) * 1e9)
	jitter := time.Duration(c.counter%3) * c.Network.Jitter / 3
	c.counter++
	return c.Network.RTT + transfer + out.ServerGPU + jitter, nil
}
