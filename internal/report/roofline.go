package report

import (
	"fmt"

	"github.com/gaugenn/gaugenn/internal/exec"
)

// RooflineTable renders the interpreter's per-class roofline: where each
// operator class sits between compute-bound (GFLOP/s) and memory-bound
// (GB/s), with its share of measured time. The rows come straight from
// Instance.Stats() / Session.ExecStats(); classes that never executed are
// absent.
func RooflineTable(title string, stats []exec.ClassStat) string {
	if len(stats) == 0 {
		return ""
	}
	var totalNS int64
	for _, s := range stats {
		totalNS += s.Nanos
	}
	headers := []string{"class", "ops/run", "time ms", "time %", "est GFLOP/s", "est GB/s"}
	var rows [][]string
	for _, s := range stats {
		share := 0.0
		if totalNS > 0 {
			share = 100 * float64(s.Nanos) / float64(totalNS)
		}
		rows = append(rows, []string{
			s.Class,
			fmt.Sprint(s.Ops),
			fmt.Sprintf("%.3f", float64(s.Nanos)/1e6),
			fmt.Sprintf("%.1f", share),
			fmt.Sprintf("%.3g", s.GFLOPS),
			fmt.Sprintf("%.3g", s.GBps),
		})
	}
	return Table(title, headers, rows)
}
