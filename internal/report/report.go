// Package report renders the study's tables and figure series as aligned
// text and CSV — the output layer that regenerates each Table and Figure
// of the paper's evaluation in a terminal-friendly form.
package report

import (
	"fmt"
	"sort"
	"strings"

	"github.com/gaugenn/gaugenn/internal/stats"
)

// Table renders an aligned ASCII table.
func Table(title string, headers []string, rows [][]string) string {
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range rows {
		line(row)
	}
	return b.String()
}

// CSV renders rows as comma-separated values with a header.
func CSV(headers []string, rows [][]string) string {
	var b strings.Builder
	b.WriteString(strings.Join(headers, ","))
	b.WriteString("\n")
	for _, row := range rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteString("\n")
	}
	return b.String()
}

// ECDFSummary renders a distribution as its key quantiles, the textual
// stand-in for an ECDF plot.
func ECDFSummary(name string, xs []float64, unit string) string {
	if len(xs) == 0 {
		return fmt.Sprintf("%s: (no samples)\n", name)
	}
	e := stats.NewECDF(xs)
	return fmt.Sprintf("%s: n=%d p10=%.3g p25=%.3g p50=%.3g p75=%.3g p90=%.3g max=%.3g %s\n",
		name, e.Len(),
		e.Quantile(0.10), e.Quantile(0.25), e.Quantile(0.50),
		e.Quantile(0.75), e.Quantile(0.90), e.Quantile(1), unit)
}

// Histogram renders a horizontal ASCII histogram of xs.
func Histogram(name string, xs []float64, bins int, unit string) string {
	h, err := stats.NewHistogram(xs, bins)
	if err != nil || h.Total == 0 {
		return fmt.Sprintf("%s: (no samples)\n", name)
	}
	maxC := 0
	for _, c := range h.Counts {
		if c > maxC {
			maxC = c
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s (%s)\n", name, unit)
	for i, c := range h.Counts {
		bar := ""
		if maxC > 0 {
			bar = strings.Repeat("#", c*40/maxC)
		}
		fmt.Fprintf(&b, "  %10.3g | %-40s %d\n", h.BinCenter(i), bar, c)
	}
	return b.String()
}

// DistCells renders a sample set as the paper's Table 4 presentation —
// "avg±std", median, min, max — formatting each number with format (e.g.
// "%.3g"). Empty samples render as dashes so sparse matrix cells stay
// aligned.
func DistCells(xs []float64, format string) []string {
	if len(xs) == 0 {
		return []string{"-", "-", "-", "-"}
	}
	s := stats.MustSummarize(xs)
	f := func(v float64) string { return fmt.Sprintf(format, v) }
	return []string{
		f(s.Mean) + "±" + f(s.StdDev),
		f(s.Median),
		f(s.Min),
		f(s.Max),
	}
}

// DistHeaders returns the column headers matching DistCells, prefixed with
// the metric label (e.g. "lat ms" -> "lat ms avg±std").
func DistHeaders(label string) []string {
	return []string{label + " avg±std", label + " med", label + " min", label + " max"}
}

// Comparison is a paper-vs-measured line item for EXPERIMENTS.md-style
// reporting.
type Comparison struct {
	Metric   string
	Paper    float64
	Measured float64
	Unit     string
}

// Comparisons renders paper-vs-measured rows with the ratio between them.
func Comparisons(title string, items []Comparison) string {
	rows := make([][]string, 0, len(items))
	for _, it := range items {
		ratio := "n/a"
		if it.Paper != 0 {
			ratio = fmt.Sprintf("%.2fx", it.Measured/it.Paper)
		}
		rows = append(rows, []string{
			it.Metric,
			fmt.Sprintf("%.4g %s", it.Paper, it.Unit),
			fmt.Sprintf("%.4g %s", it.Measured, it.Unit),
			ratio,
		})
	}
	return Table(title, []string{"metric", "paper", "measured", "measured/paper"}, rows)
}

// CountBars renders a sorted name->count map as a bar list (Figures 4, 5
// and 15 are count-bar charts).
func CountBars(title string, counts map[string]int) string {
	type kv struct {
		k string
		v int
	}
	items := make([]kv, 0, len(counts))
	maxV := 0
	for k, v := range counts {
		items = append(items, kv{k, v})
		if v > maxV {
			maxV = v
		}
	}
	sort.Slice(items, func(i, j int) bool {
		if items[i].v != items[j].v {
			return items[i].v > items[j].v
		}
		return items[i].k < items[j].k
	})
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	for _, it := range items {
		bar := ""
		if maxV > 0 {
			bar = strings.Repeat("#", it.v*40/maxV)
		}
		fmt.Fprintf(&b, "  %-32s %-40s %d\n", it.k, bar, it.v)
	}
	return b.String()
}
