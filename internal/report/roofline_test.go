package report

import (
	"strings"
	"testing"

	"github.com/gaugenn/gaugenn/internal/exec"
)

func TestRooflineTable(t *testing.T) {
	if got := RooflineTable("t", nil); got != "" {
		t.Fatalf("empty stats must render empty, got %q", got)
	}
	stats := []exec.ClassStat{
		{Class: "conv", Ops: 10, Nanos: 3_000_000, EstFLOPs: 9_000_000, EstBytes: 600_000, GFLOPS: 3, GBps: 0.2},
		{Class: "activation", Ops: 5, Nanos: 1_000_000, GFLOPS: 0.1, GBps: 0.5},
	}
	out := RooflineTable("Roofline", stats)
	for _, want := range []string{"Roofline", "conv", "activation", "75.0", "25.0", "GFLOP/s", "GB/s"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}
