package report

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	out := Table("title", []string{"a", "long-header"}, [][]string{
		{"x", "1"},
		{"longer-cell", "2"},
	})
	if !strings.HasPrefix(out, "title\n") {
		t.Fatal("missing title")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("lines = %d", len(lines))
	}
	// All data lines equal width (alignment).
	if len(lines[1]) != len(lines[2]) {
		t.Fatalf("header %q vs separator %q misaligned", lines[1], lines[2])
	}
	if !strings.Contains(lines[2], "---") {
		t.Fatal("missing separator")
	}
}

func TestTableNoTitle(t *testing.T) {
	out := Table("", []string{"h"}, [][]string{{"v"}})
	if strings.HasPrefix(out, "\n") {
		t.Fatal("empty title should not add a blank line")
	}
}

func TestCSV(t *testing.T) {
	out := CSV([]string{"a", "b"}, [][]string{{"1", "2"}, {"3", "4"}})
	want := "a,b\n1,2\n3,4\n"
	if out != want {
		t.Fatalf("csv = %q", out)
	}
}

func TestECDFSummary(t *testing.T) {
	out := ECDFSummary("lat", []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, "ms")
	if !strings.Contains(out, "n=10") || !strings.Contains(out, "p50=") || !strings.Contains(out, "ms") {
		t.Fatalf("summary = %q", out)
	}
	if !strings.Contains(ECDFSummary("x", nil, "ms"), "no samples") {
		t.Fatal("empty sample handling")
	}
}

func TestHistogramRender(t *testing.T) {
	out := Histogram("energy", []float64{1, 1, 2, 3, 3, 3}, 3, "mJ")
	if !strings.Contains(out, "#") {
		t.Fatalf("histogram = %q", out)
	}
	if !strings.Contains(Histogram("x", nil, 3, "mJ"), "no samples") {
		t.Fatal("empty histogram handling")
	}
}

func TestComparisons(t *testing.T) {
	out := Comparisons("speedups", []Comparison{
		{Metric: "dsp", Paper: 5.72, Measured: 5.5, Unit: "x"},
		{Metric: "zero-paper", Paper: 0, Measured: 1, Unit: "x"},
	})
	if !strings.Contains(out, "dsp") || !strings.Contains(out, "0.96x") {
		t.Fatalf("comparisons = %q", out)
	}
	if !strings.Contains(out, "n/a") {
		t.Fatal("zero paper value should render n/a ratio")
	}
}

func TestCountBarsSorted(t *testing.T) {
	out := CountBars("apis", map[string]int{"small": 1, "big": 10, "mid": 5})
	bigIdx := strings.Index(out, "big")
	midIdx := strings.Index(out, "mid")
	smallIdx := strings.Index(out, "small")
	if !(bigIdx < midIdx && midIdx < smallIdx) {
		t.Fatalf("bars not sorted by count:\n%s", out)
	}
}

func TestDistCellsAndHeaders(t *testing.T) {
	cells := DistCells([]float64{1, 2, 3, 4}, "%.3g")
	if len(cells) != 4 {
		t.Fatalf("cells = %v", cells)
	}
	if cells[1] != "2.5" || cells[2] != "1" || cells[3] != "4" {
		t.Fatalf("median/min/max cells = %v", cells)
	}
	if !strings.Contains(cells[0], "±") || !strings.HasPrefix(cells[0], "2.5±") {
		t.Fatalf("avg cell = %q", cells[0])
	}
	empty := DistCells(nil, "%.3g")
	for _, c := range empty {
		if c != "-" {
			t.Fatalf("empty cells = %v", empty)
		}
	}
	h := DistHeaders("mAh")
	if len(h) != 4 || h[0] != "mAh avg±std" || h[1] != "mAh med" {
		t.Fatalf("headers = %v", h)
	}
}
