package soc

import (
	"fmt"
	"time"
)

// Device model identifiers of Table 1.
const (
	DeviceA20  = "A20"  // Samsung Galaxy A20 (Exynos 7884), low tier
	DeviceA70  = "A70"  // Samsung Galaxy A70 (Snapdragon 675), mid tier
	DeviceS21  = "S21"  // Samsung Galaxy S21 (Snapdragon 888), high tier
	DeviceQ845 = "Q845" // Qualcomm Snapdragon 845 HDK, open deck
	DeviceQ855 = "Q855" // Qualcomm Snapdragon 855 HDK, open deck
	DeviceQ888 = "Q888" // Qualcomm Snapdragon 888 HDK, open deck
)

// NewDevice instantiates a fresh device of the given Table 1 model.
// Throughput and power figures are calibrated so the population-level
// results of Figures 8-14 land near the paper's ratios (see DESIGN.md §4);
// they are not vendor datasheet numbers.
func NewDevice(model string) (*Device, error) {
	switch model {
	case DeviceA20:
		return &Device{
			Model: model,
			SoC: &SoC{
				Name: "Exynos 7884",
				Islands: []Island{
					{CoreType{"Cortex-A73@1.6", 2.9, 0.85}, 2},
					{CoreType{"Cortex-A53@1.35", 1.15, 0.30}, 6},
				},
				MemBWGBps:          6,
				BasePowerWatts:     0.55,
				GPU:                &Accelerator{Name: "Mali-G71 MP2", GFLOPS: 3.6, ActiveWatts: 1.1, DispatchOverhead: 60 * time.Microsecond},
				NNAPIDriverQuality: 0.55,
			},
			RAMGB: 4, BatterymAh: 4000, ScreenWatts: 0.45, VendorFactor: 0.96,
		}, nil
	case DeviceA70:
		return &Device{
			Model: model,
			SoC: &SoC{
				Name: "Snapdragon 675",
				Islands: []Island{
					{CoreType{"Kryo460-Gold@2.0", 7.0, 1.30}, 2},
					{CoreType{"Kryo460-Silver@1.7", 1.5, 0.35}, 6},
				},
				MemBWGBps:          12,
				BasePowerWatts:     0.60,
				GPU:                &Accelerator{Name: "Adreno 612", GFLOPS: 7.5, ActiveWatts: 1.2, DispatchOverhead: 50 * time.Microsecond},
				NNAPIDriverQuality: 0.75,
				Qualcomm:           true,
			},
			RAMGB: 6, BatterymAh: 4500, ScreenWatts: 0.50, VendorFactor: 0.97,
		}, nil
	case DeviceS21:
		d := snapdragon888Device(model)
		d.BatterymAh = 4000
		d.ScreenWatts = 0.55
		d.OpenDeck = false
		// Vendor OS image, preinstalled services and tighter thermals cost
		// a few percent against the open-deck Q888 (Section 5.1).
		d.VendorFactor = 0.95
		return d, nil
	case DeviceQ845:
		return &Device{
			Model: model,
			SoC: &SoC{
				Name: "Snapdragon 845",
				Islands: []Island{
					{CoreType{"Kryo385-Gold@2.8", 3.0, 1.05}, 4},
					{CoreType{"Kryo385-Silver@1.77", 1.0, 0.30}, 4},
				},
				MemBWGBps:      15,
				BasePowerWatts: 0.70,
				GPU:            &Accelerator{Name: "Adreno 630", GFLOPS: 20, ActiveWatts: 0.75, DispatchOverhead: 45 * time.Microsecond},
				DSP:            &Accelerator{Name: "Hexagon 685", GFLOPS: 95, ActiveWatts: 0.70, DispatchOverhead: 55 * time.Microsecond, Int8Only: true},
				// Q845's NNAPI path measured 0.49x the plain CPU speed.
				NNAPIDriverQuality: 0.49,
				Qualcomm:           true,
			},
			RAMGB: 8, BatterymAh: 2850, ScreenWatts: 0.40, OpenDeck: true, VendorFactor: 1.0,
		}, nil
	case DeviceQ855:
		return &Device{
			Model: model,
			SoC: &SoC{
				Name: "Snapdragon 855",
				Islands: []Island{
					{CoreType{"Kryo485-Prime@2.84", 4.2, 1.40}, 1},
					{CoreType{"Kryo485-Gold@2.42", 3.6, 1.18}, 3},
					{CoreType{"Kryo485-Silver@1.8", 1.1, 0.30}, 4},
				},
				MemBWGBps:          17,
				BasePowerWatts:     0.75,
				GPU:                &Accelerator{Name: "Adreno 640", GFLOPS: 27, ActiveWatts: 0.85, DispatchOverhead: 42 * time.Microsecond},
				DSP:                &Accelerator{Name: "Hexagon 690", GFLOPS: 130, ActiveWatts: 0.75, DispatchOverhead: 50 * time.Microsecond, Int8Only: true},
				NNAPIDriverQuality: 0.70,
				Qualcomm:           true,
			},
			RAMGB: 8, BatterymAh: 0, ScreenWatts: 0.40, OpenDeck: true, VendorFactor: 1.0,
		}, nil
	case DeviceQ888:
		d := snapdragon888Device(model)
		d.BatterymAh = 0
		d.ScreenWatts = 0.40
		d.OpenDeck = true
		d.VendorFactor = 1.0
		return d, nil
	default:
		return nil, fmt.Errorf("soc: unknown device model %q (Table 1 lists A20, A70, S21, Q845, Q855, Q888)", model)
	}
}

// snapdragon888Device is shared by the S21 and the Q888 HDK — the paper's
// same-silicon pair.
func snapdragon888Device(model string) *Device {
	return &Device{
		Model: model,
		SoC: &SoC{
			Name: "Snapdragon 888",
			Islands: []Island{
				{CoreType{"Cortex-X1@2.84", 7.5, 2.30}, 1},
				{CoreType{"Cortex-A78@2.42", 5.5, 1.65}, 3},
				{CoreType{"Cortex-A55@1.8", 1.2, 0.38}, 4},
			},
			MemBWGBps:          34,
			BasePowerWatts:     0.85,
			GPU:                &Accelerator{Name: "Adreno 660", GFLOPS: 42, ActiveWatts: 1.0, DispatchOverhead: 38 * time.Microsecond},
			DSP:                &Accelerator{Name: "Hexagon 780", GFLOPS: 200, ActiveWatts: 0.80, DispatchOverhead: 45 * time.Microsecond, Int8Only: true},
			NNAPIDriverQuality: 0.85,
			Qualcomm:           true,
		},
		RAMGB: 8,
	}
}

// AllDeviceModels lists Table 1's device identifiers in tier order.
func AllDeviceModels() []string {
	return []string{DeviceA20, DeviceA70, DeviceS21, DeviceQ845, DeviceQ855, DeviceQ888}
}

// HDKModels lists the three open-deck boards used for energy work.
func HDKModels() []string {
	return []string{DeviceQ845, DeviceQ855, DeviceQ888}
}
