package soc

import (
	"math"
	"time"
)

// ThermalState is a leaky-bucket heat model: work deposits joules, the
// chassis dissipates them at a sustained rate, and past a threshold the
// SoC throttles — the "thermal throttling due to continuous inference"
// confounder of Section 5.1 and the reason the open-deck Q888 HDK can
// outpace the S21 phone on identical silicon.
type ThermalState struct {
	HeatJ float64
}

// ThermalEnvelope describes a chassis' cooling ability.
type ThermalEnvelope struct {
	// CapacityJ is the stored heat at which throttling reaches its floor.
	CapacityJ float64
	// DissipationW is the sustained heat removal rate.
	DissipationW float64
	// MinFactor is the fully-throttled clock factor.
	MinFactor float64
}

// Envelope returns the device's thermal envelope: phones soak ~45 J before
// heavy throttling, open-deck boards ~3x that with faster dissipation.
func (d *Device) Envelope() ThermalEnvelope {
	if d.OpenDeck {
		return ThermalEnvelope{CapacityJ: 140, DissipationW: 4.5, MinFactor: 0.85}
	}
	return ThermalEnvelope{CapacityJ: 45, DissipationW: 2.2, MinFactor: 0.55}
}

// Factor returns the current clock multiplier in (MinFactor, 1].
func (t *ThermalState) Factor(env ThermalEnvelope) float64 {
	if env.CapacityJ <= 0 {
		return 1
	}
	frac := t.HeatJ / env.CapacityJ
	if frac <= 0.5 {
		return 1 // headroom: no throttling below half capacity
	}
	if frac > 1 {
		frac = 1
	}
	// Linear descent from 1.0 at half capacity to MinFactor at capacity.
	return 1 - (1-env.MinFactor)*(frac-0.5)*2
}

// Absorb deposits heat for running at the given power over dt and applies
// dissipation for the same interval.
func (t *ThermalState) Absorb(env ThermalEnvelope, watts float64, dt time.Duration) {
	sec := dt.Seconds()
	t.HeatJ += watts * sec
	t.HeatJ -= env.DissipationW * sec
	if t.HeatJ < 0 {
		t.HeatJ = 0
	}
	if t.HeatJ > env.CapacityJ*1.5 {
		t.HeatJ = env.CapacityJ * 1.5 // equilibrium clamp
	}
}

// Cool applies idle dissipation for dt (inter-experiment sleeps).
func (t *ThermalState) Cool(env ThermalEnvelope, dt time.Duration) {
	t.HeatJ -= env.DissipationW * dt.Seconds()
	if t.HeatJ < 0 {
		t.HeatJ = 0
	}
}

// CooldownNeeded returns the idle time required for the stored heat to
// dissipate down to targetJ. Fleet schedulers use it to pace continuous-
// inference jobs: cooling to zero before each job makes within-job
// throttling (Figure 9) a property of the job, not of queue position.
func (t *ThermalState) CooldownNeeded(env ThermalEnvelope, targetJ float64) time.Duration {
	if targetJ < 0 {
		targetJ = 0
	}
	excess := t.HeatJ - targetJ
	if excess <= 0 || env.DissipationW <= 0 {
		return 0
	}
	// Round up to the next microsecond so cooling for exactly the returned
	// duration always reaches the target despite float truncation.
	us := math.Ceil(excess / env.DissipationW * 1e6)
	return time.Duration(us) * time.Microsecond
}
