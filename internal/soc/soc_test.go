package soc

import (
	"testing"
	"time"
)

func device(t *testing.T, model string) *Device {
	t.Helper()
	d, err := NewDevice(model)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestAllProfilesValid(t *testing.T) {
	for _, m := range AllDeviceModels() {
		d := device(t, m)
		if err := d.Validate(); err != nil {
			t.Errorf("%s: %v", m, err)
		}
		if d.SoC.TotalCores() != 8 {
			t.Errorf("%s: %d cores, all Table 1 SoCs are octa-core", m, d.SoC.TotalCores())
		}
	}
	if _, err := NewDevice("PIXEL9"); err == nil {
		t.Fatal("unknown model must fail")
	}
}

func TestHDKsAreOpenDeckQualcomm(t *testing.T) {
	for _, m := range HDKModels() {
		d := device(t, m)
		if !d.OpenDeck {
			t.Errorf("%s should be open deck", m)
		}
		if !d.SoC.Qualcomm {
			t.Errorf("%s should be Qualcomm", m)
		}
		if d.SoC.DSP == nil {
			t.Errorf("%s should have a Hexagon DSP", m)
		}
	}
}

func TestS21AndQ888ShareSilicon(t *testing.T) {
	s21 := device(t, DeviceS21)
	q888 := device(t, DeviceQ888)
	if s21.SoC.Name != q888.SoC.Name {
		t.Fatal("S21 and Q888 must share the Snapdragon 888")
	}
	if s21.VendorFactor >= q888.VendorFactor {
		t.Fatal("open-deck Q888 should be at least as fast as the S21 (Section 5.1)")
	}
}

func TestCPUThroughputTierOrdering(t *testing.T) {
	cfg := CPUConfig{Threads: 4}
	tput := map[string]float64{}
	for _, m := range AllDeviceModels() {
		v, err := device(t, m).CPUThroughputGFLOPS(cfg)
		if err != nil {
			t.Fatal(err)
		}
		tput[m] = v
	}
	// Tier ordering (Fig 9): A20 < A70 < S21; Q845 < Q855 < Q888.
	if !(tput[DeviceA20] < tput[DeviceA70] && tput[DeviceA70] < tput[DeviceS21]) {
		t.Errorf("tier ordering broken: %v", tput)
	}
	if !(tput[DeviceQ845] < tput[DeviceQ855] && tput[DeviceQ855] < tput[DeviceQ888]) {
		t.Errorf("generation ordering broken: %v", tput)
	}
	if tput[DeviceS21] > tput[DeviceQ888] {
		t.Errorf("S21 (%f) should trail the open-deck Q888 (%f)", tput[DeviceS21], tput[DeviceQ888])
	}
	// Next-gen mid-tier can beat a previous-gen flagship (Section 5.1).
	if tput[DeviceA70] < tput[DeviceQ845]*0.9 {
		t.Errorf("A70 (%f) should be competitive with Q845 (%f)", tput[DeviceA70], tput[DeviceQ845])
	}
}

func TestThreadSweepShape(t *testing.T) {
	// Figure 12: per-device optimal thread counts are 4 (A20), 2 (A70),
	// 4 (S21); 8 threads collapse everywhere.
	get := func(m string, cfg CPUConfig) float64 {
		v, err := device(t, m).CPUThroughputGFLOPS(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	for _, m := range []string{DeviceA20, DeviceA70, DeviceS21} {
		t2 := get(m, CPUConfig{Threads: 2})
		t4 := get(m, CPUConfig{Threads: 4})
		t8 := get(m, CPUConfig{Threads: 8})
		best := t2
		if t4 > best {
			best = t4
		}
		if t8 >= best {
			t.Errorf("%s: 8 threads (%f) should be worst (t2=%f t4=%f)", m, t8, t2, t4)
		}
		switch m {
		case DeviceA20, DeviceS21:
			if t4 < t2 {
				t.Errorf("%s: expected 4 threads optimal (t2=%f t4=%f)", m, t2, t4)
			}
		case DeviceA70:
			if t2 < t4 {
				t.Errorf("%s: expected 2 threads optimal (t2=%f t4=%f)", m, t2, t4)
			}
		}
	}
}

func TestAffinityOversubscription(t *testing.T) {
	d := device(t, DeviceS21)
	t4, _ := d.CPUThroughputGFLOPS(CPUConfig{Threads: 4})
	t4a2, _ := d.CPUThroughputGFLOPS(CPUConfig{Threads: 4, Affinity: 2})
	t4a4, _ := d.CPUThroughputGFLOPS(CPUConfig{Threads: 4, Affinity: 4})
	t8a4, _ := d.CPUThroughputGFLOPS(CPUConfig{Threads: 8, Affinity: 4})
	// "any setup that sets the number of threads higher than the CPU
	// affinity cores (4a2 and 8a4) results in significant performance
	// degradation".
	if t4a2 > t4*0.7 {
		t.Errorf("4a2 (%f) should degrade heavily vs 4 (%f)", t4a2, t4)
	}
	if t8a4 > t4*0.8 {
		t.Errorf("8a4 (%f) should degrade vs 4 (%f)", t8a4, t4)
	}
	// "setting the affinity to the same number of top cores does not yield
	// any significant gain" — 4a4 is within a few percent of 4, not above.
	if t4a4 > t4 {
		t.Errorf("4a4 (%f) should not beat 4 (%f)", t4a4, t4)
	}
	if t4a4 < t4*0.9 {
		t.Errorf("4a4 (%f) should be close to 4 (%f)", t4a4, t4)
	}
}

func TestCPUConfigString(t *testing.T) {
	if (CPUConfig{Threads: 4, Affinity: 2}).String() != "4a2" {
		t.Fatal("affinity notation")
	}
	if (CPUConfig{Threads: 8}).String() != "8" {
		t.Fatal("plain notation")
	}
}

func TestPlanCPURejectsBadThreads(t *testing.T) {
	d := device(t, DeviceA20)
	if _, err := d.CPUThroughputGFLOPS(CPUConfig{Threads: 0}); err == nil {
		t.Fatal("zero threads must fail")
	}
}

func TestExecuteCPURooflineAndClock(t *testing.T) {
	d := device(t, DeviceQ845)
	compute := []Work{{FLOPs: 1e9, Bytes: 1e5, Efficiency: 1}}
	st, err := d.ExecuteCPU(CPUConfig{Threads: 4}, compute, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Latency <= 0 || st.EnergyJ <= 0 {
		t.Fatalf("stats: %+v", st)
	}
	if d.Clock.Now() != st.Latency {
		t.Fatal("virtual clock must advance by the latency")
	}
	// A memory-bound layer with the same FLOPs must be slower.
	d2 := device(t, DeviceQ845)
	memBound := []Work{{FLOPs: 1e9, Bytes: 3e9, Efficiency: 1}}
	st2, err := d2.ExecuteCPU(CPUConfig{Threads: 4}, memBound, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Latency <= st.Latency {
		t.Fatalf("memory-bound work (%v) should exceed compute-bound (%v)", st2.Latency, st.Latency)
	}
}

func TestExecuteCPULowParallelism(t *testing.T) {
	d1 := device(t, DeviceQ845)
	par := []Work{{FLOPs: 5e8, Bytes: 1e4, Efficiency: 1}}
	full, _ := d1.ExecuteCPU(CPUConfig{Threads: 4}, par, nil)
	d2 := device(t, DeviceQ845)
	serial := []Work{{FLOPs: 5e8, Bytes: 1e4, Efficiency: 1, Parallelism: 1}}
	one, _ := d2.ExecuteCPU(CPUConfig{Threads: 4}, serial, nil)
	if one.Latency <= full.Latency*2 {
		t.Fatalf("serial op (%v) should be much slower than parallel (%v)", one.Latency, full.Latency)
	}
}

func TestThermalThrottling(t *testing.T) {
	d := device(t, DeviceS21)
	work := []Work{{FLOPs: 5e9, Bytes: 1e6, Efficiency: 1}}
	first, err := d.ExecuteCPU(CPUConfig{Threads: 4}, work, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Sustained load must eventually throttle a phone.
	var last RunStats
	for i := 0; i < 40; i++ {
		last, err = d.ExecuteCPU(CPUConfig{Threads: 4}, work, nil)
		if err != nil {
			t.Fatal(err)
		}
	}
	if !last.Throttled {
		t.Fatal("sustained inference should throttle the S21")
	}
	if last.Latency <= first.Latency {
		t.Fatalf("throttled latency (%v) should exceed cold latency (%v)", last.Latency, first.Latency)
	}
	// The open-deck Q888 with the same silicon throttles later.
	q := device(t, DeviceQ888)
	for i := 0; i < 8; i++ {
		if st, _ := q.ExecuteCPU(CPUConfig{Threads: 4}, work, nil); st.Throttled {
			t.Fatal("Q888 should not throttle this early")
		}
	}
	// Cooling recovers.
	d.Thermal.Cool(d.Envelope(), 10*time.Minute)
	if d.Thermal.HeatJ != 0 {
		t.Fatal("long cooldown should drain the bucket")
	}
}

func TestExecuteAccel(t *testing.T) {
	d := device(t, DeviceQ845)
	work := []Work{{FLOPs: 1e9, Bytes: 1e5, Efficiency: 0.8}}
	gpu, err := d.ExecuteAccel(d.SoC.GPU, work, nil)
	if err != nil {
		t.Fatal(err)
	}
	d2 := device(t, DeviceQ845)
	dsp, err := d2.ExecuteAccel(d2.SoC.DSP, work, nil)
	if err != nil {
		t.Fatal(err)
	}
	if dsp.Latency >= gpu.Latency {
		t.Fatalf("DSP (%v) should beat GPU (%v) on pure compute", dsp.Latency, gpu.Latency)
	}
	if _, err := d.ExecuteAccel(nil, work, nil); err == nil {
		t.Fatal("missing accelerator must fail")
	}
}

func TestIdleAdvancesAndCools(t *testing.T) {
	d := device(t, DeviceS21)
	d.Thermal.HeatJ = 30
	d.Idle(5*time.Second, true, nil)
	if d.Clock.Now() != 5*time.Second {
		t.Fatal("idle must advance the clock")
	}
	if d.Thermal.HeatJ >= 30 {
		t.Fatal("idle must cool")
	}
}

func TestResetClearsState(t *testing.T) {
	d := device(t, DeviceA20)
	d.ExecuteCPU(CPUConfig{Threads: 2}, []Work{{FLOPs: 1e8, Efficiency: 1}}, nil)
	d.Reset()
	if d.Clock.Now() != 0 || d.Thermal.HeatJ != 0 {
		t.Fatal("reset must zero clock and heat")
	}
}

type captureSink struct {
	total float64
	n     int
}

func (c *captureSink) RecordPower(_, dur time.Duration, watts float64) {
	c.total += watts * dur.Seconds()
	c.n++
}

func TestPowerSinkReceivesEnergy(t *testing.T) {
	d := device(t, DeviceQ845)
	sink := &captureSink{}
	st, err := d.ExecuteCPU(CPUConfig{Threads: 4}, []Work{{FLOPs: 1e9, Bytes: 1e5, Efficiency: 1}}, sink)
	if err != nil {
		t.Fatal(err)
	}
	if sink.n == 0 {
		t.Fatal("sink never called")
	}
	if diff := sink.total - st.EnergyJ; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("sink energy %v != stats energy %v", sink.total, st.EnergyJ)
	}
}

func TestThermalFactorBounds(t *testing.T) {
	env := ThermalEnvelope{CapacityJ: 100, DissipationW: 2, MinFactor: 0.5}
	ts := &ThermalState{}
	if ts.Factor(env) != 1 {
		t.Fatal("cold factor must be 1")
	}
	ts.HeatJ = 100
	if f := ts.Factor(env); f != 0.5 {
		t.Fatalf("full-bucket factor = %v, want MinFactor", f)
	}
	ts.HeatJ = 75
	if f := ts.Factor(env); f <= 0.5 || f >= 1 {
		t.Fatalf("mid factor = %v, want in (0.5, 1)", f)
	}
	// Absorb clamps at 1.5x capacity.
	ts.Absorb(env, 1000, 10*time.Second)
	if ts.HeatJ > 150 {
		t.Fatalf("heat %v exceeded clamp", ts.HeatJ)
	}
}

func TestCooldownNeeded(t *testing.T) {
	env := ThermalEnvelope{CapacityJ: 100, DissipationW: 2, MinFactor: 0.5}
	ts := &ThermalState{}
	if d := ts.CooldownNeeded(env, 0); d != 0 {
		t.Fatalf("cold device needs no cooldown, got %v", d)
	}
	ts.HeatJ = 40
	if d := ts.CooldownNeeded(env, 0); d != 20*time.Second {
		t.Fatalf("40 J at 2 W = 20s, got %v", d)
	}
	if d := ts.CooldownNeeded(env, 30); d != 5*time.Second {
		t.Fatalf("cool-to-30J = 5s, got %v", d)
	}
	// A negative target is clamped to zero heat.
	if d := ts.CooldownNeeded(env, -10); d != 20*time.Second {
		t.Fatalf("negative target clamps to 0 J, got %v", d)
	}
	// Cooling for exactly the returned duration reaches the target.
	ts.Cool(env, ts.CooldownNeeded(env, 0))
	if ts.HeatJ != 0 {
		t.Fatalf("heat after full cooldown = %v, want 0", ts.HeatJ)
	}
}
