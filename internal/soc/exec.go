package soc

import (
	"fmt"
	"time"
)

// Work is one layer's resource demand, produced by the runtime from the
// graph profile: compute, memory traffic, a dispatch overhead and the op's
// achievable efficiency/parallelism on the target.
type Work struct {
	FLOPs       int64
	Bytes       int64
	Overhead    time.Duration
	Efficiency  float64 // fraction of peak compute the kernel achieves
	Parallelism int     // maximum useful thread count (1 for recurrent ops)
}

// RunStats summarises one execution (one inference, usually).
type RunStats struct {
	Latency   time.Duration
	EnergyJ   float64
	AvgWatts  float64
	Throttled bool
}

// PowerSink receives the power-rail activity of an execution; the Monsoon
// monitor in internal/power implements it.
type PowerSink interface {
	RecordPower(start, duration time.Duration, watts float64)
}

// ExecuteCPU runs the work list on the CPU under the given configuration,
// advancing virtual time, heating the chassis and metering energy. The
// roofline per layer is max(compute, memory) plus dispatch overhead.
func (d *Device) ExecuteCPU(cfg CPUConfig, work []Work, sink PowerSink) (RunStats, error) {
	if err := d.Validate(); err != nil {
		return RunStats{}, err
	}
	plan, err := d.planCPU(cfg)
	if err != nil {
		return RunStats{}, err
	}
	env := d.Envelope()
	var stats RunStats
	start := d.Clock.Now()
	for _, w := range work {
		tf := d.Thermal.Factor(env)
		if tf < 0.999 {
			stats.Throttled = true
		}
		gf := plan.gflops * tf
		if w.Efficiency > 0 {
			gf *= w.Efficiency
		}
		if w.Parallelism > 0 && w.Parallelism < plan.threads {
			gf *= float64(w.Parallelism) / float64(plan.threads)
		}
		if gf <= 0 {
			return stats, fmt.Errorf("soc: degenerate throughput for work item")
		}
		computeSec := float64(w.FLOPs) / (gf * 1e9)
		memSec := float64(w.Bytes) / (d.SoC.MemBWGBps * 1e9)
		sec := computeSec
		if memSec > sec {
			sec = memSec
		}
		dur := time.Duration(sec*1e9) + w.Overhead
		util := 0.0
		if sec > 0 {
			util = computeSec / sec
		}
		watts := d.SoC.BasePowerWatts + plan.watts*(0.45+0.55*util)*tf
		d.account(dur, watts, env, sink, &stats)
	}
	total := d.Clock.Now() - start
	stats.Latency = total
	if total > 0 {
		stats.AvgWatts = stats.EnergyJ / total.Seconds()
	}
	return stats, nil
}

// ExecuteAccel runs the work list on an accelerator block (GPU/DSP/NPU);
// the CPU idles at base power alongside.
func (d *Device) ExecuteAccel(acc *Accelerator, work []Work, sink PowerSink) (RunStats, error) {
	if err := d.Validate(); err != nil {
		return RunStats{}, err
	}
	if acc == nil {
		return RunStats{}, fmt.Errorf("soc: device %s lacks the requested accelerator", d.Model)
	}
	env := d.Envelope()
	var stats RunStats
	start := d.Clock.Now()
	for _, w := range work {
		tf := d.Thermal.Factor(env)
		if tf < 0.999 {
			stats.Throttled = true
		}
		gf := acc.GFLOPS * tf * d.VendorFactor
		if w.Efficiency > 0 {
			gf *= w.Efficiency
		}
		computeSec := float64(w.FLOPs) / (gf * 1e9)
		memSec := float64(w.Bytes) / (d.SoC.MemBWGBps * 1e9)
		sec := computeSec
		if memSec > sec {
			sec = memSec
		}
		overhead := w.Overhead
		if overhead == 0 {
			overhead = acc.DispatchOverhead
		}
		dur := time.Duration(sec*1e9) + overhead
		util := 0.0
		if sec > 0 {
			util = computeSec / sec
		}
		watts := d.SoC.BasePowerWatts + acc.ActiveWatts*(0.5+0.5*util)*tf
		d.account(dur, watts, env, sink, &stats)
	}
	total := d.Clock.Now() - start
	stats.Latency = total
	if total > 0 {
		stats.AvgWatts = stats.EnergyJ / total.Seconds()
	}
	return stats, nil
}

// Idle advances virtual time at idle power (inter-experiment sleeps), with
// the screen contribution when on.
func (d *Device) Idle(dur time.Duration, screenOn bool, sink PowerSink) {
	env := d.Envelope()
	watts := d.SoC.BasePowerWatts * 0.3
	if screenOn {
		watts += d.ScreenWatts
	}
	if sink != nil {
		sink.RecordPower(d.Clock.Now(), dur, watts)
	}
	d.Thermal.Cool(env, dur)
	d.Clock.Advance(dur)
}

func (d *Device) account(dur time.Duration, watts float64, env ThermalEnvelope, sink PowerSink, stats *RunStats) {
	if sink != nil {
		sink.RecordPower(d.Clock.Now(), dur, watts)
	}
	stats.EnergyJ += watts * dur.Seconds()
	d.Thermal.Absorb(env, watts, dur)
	d.Clock.Advance(dur)
}
