// Package soc models the mobile systems-on-chip gaugeNN benchmarks on:
// heterogeneous CPU islands (ARM big.LITTLE / DynamIQ), GPU/DSP/NPU blocks,
// a shared memory-bandwidth roofline, a DVFS-style scheduler with thread
// pinning and a leaky-bucket thermal model. The paper explains its latency
// findings through exactly these mechanisms — "underutilisation of hardware
// due to e.g. memory-bound operations, thermal throttling due to continuous
// inference or even ... scheduling on cores of different dynamics" (§5.1) —
// so the simulator implements the mechanisms and lets the figures emerge.
package soc

import (
	"fmt"
	"math"
	"time"
)

// Clock is the virtual time source a simulated device advances while
// executing work. Benchmarks therefore cost wall-clock time proportional to
// the amount of modelling, not to the modelled duration.
type Clock struct {
	now time.Duration
}

// Now returns the current virtual time.
func (c *Clock) Now() time.Duration { return c.now }

// Advance moves virtual time forward.
func (c *Clock) Advance(d time.Duration) {
	if d > 0 {
		c.now += d
	}
}

// CoreType describes one CPU microarchitecture at its nominal frequency.
type CoreType struct {
	Name string
	// GFLOPS is the single-core fp32 SIMD throughput at max frequency.
	GFLOPS float64
	// ActiveWatts is the core's power draw under full load.
	ActiveWatts float64
}

// Island is a cluster of identical cores (one DynamIQ/big.LITTLE island).
type Island struct {
	Type  CoreType
	Count int
}

// Accelerator is a non-CPU compute block (GPU, DSP or NPU).
type Accelerator struct {
	Name string
	// GFLOPS is the effective throughput on supported ops.
	GFLOPS float64
	// ActiveWatts is the block's draw under load.
	ActiveWatts float64
	// DispatchOverhead is the per-layer driver/queue overhead.
	DispatchOverhead time.Duration
	// Int8Only marks fixed-point blocks (Hexagon DSP): models execute
	// quantised, with the accuracy caveat the paper notes.
	Int8Only bool
}

// SoC is a chip: CPU islands plus optional accelerator blocks and the
// shared memory system.
type SoC struct {
	Name    string
	Islands []Island // ordered big -> little
	// MemBWGBps is the DRAM bandwidth shared by all blocks.
	MemBWGBps float64
	// BasePowerWatts is the uncore/rails floor while the SoC is awake.
	BasePowerWatts float64
	GPU            *Accelerator
	DSP            *Accelerator
	NPU            *Accelerator
	// NNAPIDriverQuality scales NNAPI-delegated throughput: 1.0 is a
	// well-tuned vendor driver; Q845's measured 0.49x slowdown reflects
	// "unoptimised NN drivers from the vendor" (§6.3).
	NNAPIDriverQuality float64
	// Qualcomm gates SNPE support.
	Qualcomm bool
}

// TotalCores returns the CPU core count.
func (s *SoC) TotalCores() int {
	n := 0
	for _, isl := range s.Islands {
		n += isl.Count
	}
	return n
}

// coreList expands islands into a big-to-little per-core slice.
func (s *SoC) coreList() []CoreType {
	var out []CoreType
	for _, isl := range s.Islands {
		for i := 0; i < isl.Count; i++ {
			out = append(out, isl.Type)
		}
	}
	return out
}

// Device is a benchmarkable unit: a SoC in a chassis with RAM, battery,
// screen and thermal envelope (Table 1).
type Device struct {
	Model       string
	SoC         *SoC
	RAMGB       int
	BatterymAh  int // 0 when powered externally (Q855/Q888 HDKs)
	ScreenWatts float64
	// OpenDeck marks development boards: better heat dissipation and a
	// vanilla OS image, which the paper credits for the Q888 HDK slightly
	// outperforming the S21 on the same silicon.
	OpenDeck bool
	// VendorFactor scales throughput for vendor-specific configuration
	// (custom schedulers, preinstalled load): 1.0 is the clean baseline.
	VendorFactor float64

	Clock   Clock
	Thermal ThermalState
}

// Validate checks the profile is usable.
func (d *Device) Validate() error {
	if d.SoC == nil || len(d.SoC.Islands) == 0 {
		return fmt.Errorf("soc: device %s has no CPU islands", d.Model)
	}
	if d.SoC.MemBWGBps <= 0 {
		return fmt.Errorf("soc: device %s has no memory bandwidth", d.Model)
	}
	if d.VendorFactor <= 0 {
		return fmt.Errorf("soc: device %s has non-positive vendor factor", d.Model)
	}
	return nil
}

// Reset restores virtual time and thermal state (a fresh benchmark run).
func (d *Device) Reset() {
	d.Clock = Clock{}
	d.Thermal = ThermalState{}
}

// CPUConfig selects the thread count and affinity of a CPU run, the Fig.
// 12 sweep axes: Threads counts worker threads; Affinity > 0 pins them to
// the top-N cores ("4a2 means 4 threads with affinity 2"); Affinity == 0
// lets the scheduler use every core.
type CPUConfig struct {
	Threads  int
	Affinity int
}

// String renders the paper's "4a2" notation.
func (c CPUConfig) String() string {
	if c.Affinity > 0 {
		return fmt.Sprintf("%da%d", c.Threads, c.Affinity)
	}
	return fmt.Sprintf("%d", c.Threads)
}

// cpuPlan is the resolved execution shape of a CPU configuration.
type cpuPlan struct {
	gflops     float64 // aggregate effective throughput
	watts      float64 // active power of the engaged cores
	threads    int
	oversub    bool
	littleFrac float64
}

// planCPU models TFLite's thread pool on a HMP scheduler:
//
//   - threads land on the fastest allowed cores first;
//   - per-barrier synchronisation costs grow superlinearly with threads;
//   - partitions that land on little cores drag the barrier (static work
//     partitioning), modelled as a weighted little-core penalty;
//   - more threads than allowed cores time-share ("4a2 and 8a4 result in
//     significant performance degradation ... due to time-sharing");
//   - engaging every core contends with the OS and framework threads,
//     producing the 8-thread collapse of Figure 12.
func (d *Device) planCPU(cfg CPUConfig) (cpuPlan, error) {
	cores := d.SoC.coreList()
	if cfg.Threads <= 0 {
		return cpuPlan{}, fmt.Errorf("soc: thread count must be positive")
	}
	usable := len(cores)
	if cfg.Affinity > 0 && cfg.Affinity < usable {
		usable = cfg.Affinity
	}
	chosen := cores[:minInt(cfg.Threads, usable)]
	var agg, watts float64
	little := 0
	bigGF := cores[0].GFLOPS
	for _, c := range chosen {
		agg += c.GFLOPS
		watts += c.ActiveWatts
		if c.GFLOPS < bigGF/2 {
			little++
		}
	}
	t := float64(cfg.Threads)
	sync := 1 / (1 + 0.03*math.Pow(t-1, 1.6))
	littleFrac := float64(little) / float64(len(chosen))
	eff := agg * sync * (1 - 0.3*littleFrac)
	plan := cpuPlan{threads: cfg.Threads, littleFrac: littleFrac}
	if cfg.Threads > usable {
		eff *= 0.5 // time-sharing: pinned threads queue behind each other
		plan.oversub = true
	}
	if cfg.Affinity > 0 {
		eff *= 0.97 // pinning forfeits load-balancing escapes
	}
	if cfg.Threads >= d.SoC.TotalCores() && cfg.Affinity == 0 {
		eff *= 0.55 // system + framework threads preempt somewhere
	}
	plan.gflops = eff * d.VendorFactor
	plan.watts = watts
	return plan, nil
}

// CPUThroughputGFLOPS exposes the effective aggregate throughput of a CPU
// configuration (before thermal effects), for tests and reports.
func (d *Device) CPUThroughputGFLOPS(cfg CPUConfig) (float64, error) {
	p, err := d.planCPU(cfg)
	if err != nil {
		return 0, err
	}
	return p.gflops, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
