package dex

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"strings"
)

// RawDex is a structural index over an encoded dex: the deduplicated
// string table as zero-copy subslices of the input buffer, plus per-class
// lists of string-table indices (class name, method names, invoked
// methods). It exists for the extraction hot path: marker scanning needs
// to visit each *distinct* string exactly once and attribute hits to
// classes, which Decode + Baksmali can only offer after materialising
// every string twice (once in the table, once in smali text). RawDex
// materialises nothing.
//
// The index aliases the input buffer; callers must not mutate data while
// the RawDex is in use.
type RawDex struct {
	// Strings holds the table entries as subslices of the input.
	Strings [][]byte

	classNames []uint32
	// refs is the flattened per-class reference list (method name and call
	// indices); refStart[i]..refStart[i+1] bounds class i's slice.
	refs     []uint32
	refStart []uint32
}

// ParseRaw indexes an encoded dex without materialising strings. It
// applies the same structural validation as Decode, so a payload Decode
// rejects is rejected here too.
func ParseRaw(data []byte) (*RawDex, error) {
	if !IsDex(data) {
		return nil, fmt.Errorf("dex: bad magic")
	}
	off := len(Magic)
	u32 := func() (uint32, error) {
		if off+4 > len(data) {
			return 0, fmt.Errorf("dex: truncated at offset %d", off)
		}
		v := binary.LittleEndian.Uint32(data[off:])
		off += 4
		return v, nil
	}
	nstr, err := u32()
	if err != nil {
		return nil, err
	}
	if nstr > 1<<22 {
		return nil, fmt.Errorf("dex: implausible string count %d", nstr)
	}
	d := &RawDex{Strings: make([][]byte, nstr)}
	for i := range d.Strings {
		n, err := u32()
		if err != nil {
			return nil, err
		}
		if off+int(n) > len(data) {
			return nil, fmt.Errorf("dex: truncated string at offset %d", off)
		}
		d.Strings[i] = data[off : off+int(n) : off+int(n)]
		off += int(n)
	}
	checkIdx := func(i uint32) error {
		if int(i) >= len(d.Strings) {
			return fmt.Errorf("dex: string index %d out of range", i)
		}
		return nil
	}
	nclasses, err := u32()
	if err != nil {
		return nil, err
	}
	if nclasses > 1<<20 {
		return nil, fmt.Errorf("dex: implausible class count %d", nclasses)
	}
	d.classNames = make([]uint32, 0, nclasses)
	d.refStart = make([]uint32, 1, nclasses+1)
	for i := uint32(0); i < nclasses; i++ {
		ni, err := u32()
		if err != nil {
			return nil, err
		}
		if err := checkIdx(ni); err != nil {
			return nil, err
		}
		d.classNames = append(d.classNames, ni)
		nm, err := u32()
		if err != nil {
			return nil, err
		}
		if nm > 1<<16 {
			return nil, fmt.Errorf("dex: implausible method count %d", nm)
		}
		for j := uint32(0); j < nm; j++ {
			mi, err := u32()
			if err != nil {
				return nil, err
			}
			if err := checkIdx(mi); err != nil {
				return nil, err
			}
			d.refs = append(d.refs, mi)
			nc, err := u32()
			if err != nil {
				return nil, err
			}
			if nc > 1<<16 {
				return nil, fmt.Errorf("dex: implausible call count %d", nc)
			}
			for k := uint32(0); k < nc; k++ {
				ci, err := u32()
				if err != nil {
					return nil, err
				}
				if err := checkIdx(ci); err != nil {
					return nil, err
				}
				d.refs = append(d.refs, ci)
			}
		}
		d.refStart = append(d.refStart, uint32(len(d.refs)))
	}
	return d, nil
}

// NumClasses returns the class count.
func (d *RawDex) NumClasses() int { return len(d.classNames) }

// ClassNameIndex returns the string-table index of class i's name.
func (d *RawDex) ClassNameIndex(i int) uint32 { return d.classNames[i] }

// ClassName returns class i's name bytes (zero-copy).
func (d *RawDex) ClassName(i int) []byte { return d.Strings[d.classNames[i]] }

// ClassRefs returns the string-table indices class i references (method
// names and invoked methods), in declaration order. The slice aliases the
// index; callers must not mutate it.
func (d *RawDex) ClassRefs(i int) []uint32 { return d.refs[d.refStart[i]:d.refStart[i+1]] }

// SmaliPath converts a smali-style binary class name ("Lcom/example/Main;")
// to its apktool-style decompiled path ("smali/com/example/Main.smali").
func SmaliPath(className string) string {
	name := strings.TrimSuffix(strings.TrimPrefix(className, "L"), ";")
	if name == "" {
		name = "Unknown"
	}
	return "smali/" + name + ".smali"
}

// WalkNativeLibStrings visits the scannable strings of an encoded shared
// object — the soname followed by every dynamic symbol — as zero-copy
// subslices of data, without building a NativeLib. fn returning false
// stops the walk early.
func WalkNativeLibStrings(data []byte, fn func(s []byte) bool) error {
	// Same gate as DecodeNativeLib: the full ELF identification, not just
	// the 4-byte IsNativeLib sniff, so both paths skip the same payloads.
	if !bytes.HasPrefix(data, elfMagic) {
		return fmt.Errorf("dex: not a native library")
	}
	off := len(elfMagic)
	next := func(what string) ([]byte, error) {
		if off+4 > len(data) {
			return nil, fmt.Errorf("dex: truncated native lib %s at %d", what, off)
		}
		n := int(binary.LittleEndian.Uint32(data[off:]))
		off += 4
		if n < 0 || off+n > len(data) {
			return nil, fmt.Errorf("dex: truncated native lib %s at %d", what, off)
		}
		s := data[off : off+n : off+n]
		off += n
		return s, nil
	}
	soname, err := next("soname")
	if err != nil {
		return err
	}
	if !fn(soname) {
		return nil
	}
	if off+4 > len(data) {
		return fmt.Errorf("dex: truncated native lib at %d", off)
	}
	nsyms := binary.LittleEndian.Uint32(data[off:])
	off += 4
	if nsyms > 1<<20 {
		return fmt.Errorf("dex: implausible symbol count %d", nsyms)
	}
	for i := uint32(0); i < nsyms; i++ {
		sym, err := next("symbol")
		if err != nil {
			return err
		}
		if !fn(sym) {
			return nil
		}
	}
	return nil
}
