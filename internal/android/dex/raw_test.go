package dex

import (
	"bytes"
	"testing"
)

func rawFixture() *Dex {
	return &Dex{Classes: []Class{
		{
			Name: "Lcom/a/Main;",
			Methods: []Method{
				{Name: "onCreate", Calls: []string{
					"Lorg/tensorflow/lite/Interpreter;-><init>()V",
					"Lcom/a/Helper;->go()",
				}},
				{Name: "stop", Calls: nil},
			},
		},
		{
			Name: "Lcom/a/Helper;",
			Methods: []Method{
				{Name: "go", Calls: []string{"Lcom/a/Helper;->go()"}},
			},
		},
	}}
}

func TestParseRawMatchesDecode(t *testing.T) {
	enc := rawFixture().Encode()
	d, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	rd, err := ParseRaw(enc)
	if err != nil {
		t.Fatal(err)
	}
	if rd.NumClasses() != len(d.Classes) {
		t.Fatalf("classes = %d, want %d", rd.NumClasses(), len(d.Classes))
	}
	for i, c := range d.Classes {
		if string(rd.ClassName(i)) != c.Name {
			t.Fatalf("class %d name = %q, want %q", i, rd.ClassName(i), c.Name)
		}
		var want []string
		for _, m := range c.Methods {
			want = append(want, m.Name)
			want = append(want, m.Calls...)
		}
		refs := rd.ClassRefs(i)
		if len(refs) != len(want) {
			t.Fatalf("class %d refs = %d, want %d", i, len(refs), len(want))
		}
		for j, idx := range refs {
			if string(rd.Strings[idx]) != want[j] {
				t.Fatalf("class %d ref %d = %q, want %q", i, j, rd.Strings[idx], want[j])
			}
		}
	}
}

func TestParseRawZeroCopy(t *testing.T) {
	enc := rawFixture().Encode()
	rd, err := ParseRaw(enc)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range rd.Strings {
		if len(s) == 0 {
			continue
		}
		off := bytes.Index(enc, s)
		if off < 0 || &s[0] != &enc[bytesIndexOf(enc, s)] {
			t.Fatalf("string %d is not a subslice of the input", i)
		}
	}
}

// bytesIndexOf finds the offset of sub's backing bytes inside buf by
// pointer identity (sub must alias buf).
func bytesIndexOf(buf, sub []byte) int {
	for off := 0; off+len(sub) <= len(buf); off++ {
		if &buf[off] == &sub[0] {
			return off
		}
	}
	return -1
}

func TestParseRawRejectsWhatDecodeRejects(t *testing.T) {
	enc := rawFixture().Encode()
	for _, data := range [][]byte{
		[]byte("junk"),
		enc[:len(Magic)+2],
		enc[:len(enc)-3],
	} {
		_, decErr := Decode(data)
		_, rawErr := ParseRaw(data)
		if (decErr == nil) != (rawErr == nil) {
			t.Fatalf("Decode err=%v, ParseRaw err=%v: must agree", decErr, rawErr)
		}
	}
}

func TestSmaliPathExported(t *testing.T) {
	if got := SmaliPath("Lcom/a/Main;"); got != "smali/com/a/Main.smali" {
		t.Fatalf("SmaliPath = %q", got)
	}
	if got := SmaliPath(""); got != "smali/Unknown.smali" {
		t.Fatalf("SmaliPath empty = %q", got)
	}
}

func TestWalkNativeLibStrings(t *testing.T) {
	lib := NativeLib{
		SoName:  "libtensorflowlite.so",
		Symbols: []string{"TfLiteInterpreterCreate", "JNI_OnLoad"},
	}
	enc := EncodeNativeLib(lib)
	var got []string
	if err := WalkNativeLibStrings(enc, func(s []byte) bool {
		got = append(got, string(s))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	want := append([]string{lib.SoName}, lib.Symbols...)
	if len(got) != len(want) {
		t.Fatalf("walked %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("walked %v, want %v", got, want)
		}
	}
	// Early stop.
	n := 0
	if err := WalkNativeLibStrings(enc, func(s []byte) bool { n++; return false }); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("early stop visited %d strings", n)
	}
	// Truncated input fails like DecodeNativeLib.
	if err := WalkNativeLibStrings(enc[:len(enc)-2], func(s []byte) bool { return true }); err == nil {
		t.Fatal("truncated lib should fail")
	}
	if err := WalkNativeLibStrings([]byte{0x7f, 'E', 'L', 'F'}, func(s []byte) bool { return true }); err == nil {
		t.Fatal("short ELF ident should fail")
	}
}
