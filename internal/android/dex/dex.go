// Package dex implements the Dalvik-executable container gaugeNN inspects
// for cloud ML API calls: "Android apps are typically developed in Kotlin
// or Java and then compiled into dex format and packaged within the app
// binary. It is possible to extract this dex binary from the app package
// and decompile it into a human-readable (smali) format" (Section 3.2).
//
// The binary layout follows the real format's spirit — a versioned magic,
// a deduplicated string table, then class definitions whose method bodies
// reference string-table entries for every invoked method — which is all
// the API-usage analysis needs. Baksmali renders the same information as
// smali text for the string-matching detector.
package dex

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
)

// Magic is the dex file magic including the version: "dex\n035\0".
var Magic = []byte{'d', 'e', 'x', '\n', '0', '3', '5', 0}

// Method is a single method and the fully qualified methods it invokes
// (JVM descriptor style, e.g.
// "Lcom/google/firebase/ml/vision/FirebaseVision;->getInstance()").
type Method struct {
	Name  string
	Calls []string
}

// Class is a class definition with its smali-style binary name, e.g.
// "Lcom/example/app/MainActivity;".
type Class struct {
	Name    string
	Methods []Method
}

// Dex is a parsed classes.dex.
type Dex struct {
	Classes []Class
}

// AllCalls returns every invoked method reference across all classes,
// deduplicated and sorted.
func (d *Dex) AllCalls() []string {
	set := map[string]bool{}
	for _, c := range d.Classes {
		for _, m := range c.Methods {
			for _, call := range m.Calls {
				set[call] = true
			}
		}
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Encode serialises the dex: magic, string table, class table.
func (d *Dex) Encode() []byte {
	// Build the deduplicated string table.
	index := map[string]uint32{}
	var table []string
	intern := func(s string) uint32 {
		if i, ok := index[s]; ok {
			return i
		}
		i := uint32(len(table))
		index[s] = i
		table = append(table, s)
		return i
	}
	type encMethod struct {
		name  uint32
		calls []uint32
	}
	type encClass struct {
		name    uint32
		methods []encMethod
	}
	classes := make([]encClass, 0, len(d.Classes))
	for _, c := range d.Classes {
		ec := encClass{name: intern(c.Name)}
		for _, m := range c.Methods {
			em := encMethod{name: intern(m.Name)}
			for _, call := range m.Calls {
				em.calls = append(em.calls, intern(call))
			}
			ec.methods = append(ec.methods, em)
		}
		classes = append(classes, ec)
	}

	buf := append([]byte(nil), Magic...)
	u32 := func(v uint32) { buf = binary.LittleEndian.AppendUint32(buf, v) }
	str := func(s string) { u32(uint32(len(s))); buf = append(buf, s...) }
	u32(uint32(len(table)))
	for _, s := range table {
		str(s)
	}
	u32(uint32(len(classes)))
	for _, c := range classes {
		u32(c.name)
		u32(uint32(len(c.methods)))
		for _, m := range c.methods {
			u32(m.name)
			u32(uint32(len(m.calls)))
			for _, call := range m.calls {
				u32(call)
			}
		}
	}
	return buf
}

// IsDex reports whether data begins with the dex magic.
func IsDex(data []byte) bool {
	return len(data) >= len(Magic) && string(data[:len(Magic)]) == string(Magic)
}

// Decode parses an encoded dex.
func Decode(data []byte) (*Dex, error) {
	if !IsDex(data) {
		return nil, fmt.Errorf("dex: bad magic")
	}
	off := len(Magic)
	u32 := func() (uint32, error) {
		if off+4 > len(data) {
			return 0, fmt.Errorf("dex: truncated at offset %d", off)
		}
		v := binary.LittleEndian.Uint32(data[off:])
		off += 4
		return v, nil
	}
	rstr := func() (string, error) {
		n, err := u32()
		if err != nil {
			return "", err
		}
		if off+int(n) > len(data) {
			return "", fmt.Errorf("dex: truncated string at offset %d", off)
		}
		s := string(data[off : off+int(n)])
		off += int(n)
		return s, nil
	}
	nstr, err := u32()
	if err != nil {
		return nil, err
	}
	if nstr > 1<<22 {
		return nil, fmt.Errorf("dex: implausible string count %d", nstr)
	}
	table := make([]string, nstr)
	for i := range table {
		if table[i], err = rstr(); err != nil {
			return nil, err
		}
	}
	lookup := func(i uint32) (string, error) {
		if int(i) >= len(table) {
			return "", fmt.Errorf("dex: string index %d out of range", i)
		}
		return table[i], nil
	}
	nclasses, err := u32()
	if err != nil {
		return nil, err
	}
	if nclasses > 1<<20 {
		return nil, fmt.Errorf("dex: implausible class count %d", nclasses)
	}
	d := &Dex{Classes: make([]Class, 0, nclasses)}
	for i := uint32(0); i < nclasses; i++ {
		var c Class
		ni, err := u32()
		if err != nil {
			return nil, err
		}
		if c.Name, err = lookup(ni); err != nil {
			return nil, err
		}
		nm, err := u32()
		if err != nil {
			return nil, err
		}
		if nm > 1<<16 {
			return nil, fmt.Errorf("dex: implausible method count %d", nm)
		}
		for j := uint32(0); j < nm; j++ {
			var m Method
			mi, err := u32()
			if err != nil {
				return nil, err
			}
			if m.Name, err = lookup(mi); err != nil {
				return nil, err
			}
			nc, err := u32()
			if err != nil {
				return nil, err
			}
			if nc > 1<<16 {
				return nil, fmt.Errorf("dex: implausible call count %d", nc)
			}
			for k := uint32(0); k < nc; k++ {
				ci, err := u32()
				if err != nil {
					return nil, err
				}
				call, err := lookup(ci)
				if err != nil {
					return nil, err
				}
				m.Calls = append(m.Calls, call)
			}
			c.Methods = append(c.Methods, m)
		}
		d.Classes = append(d.Classes, c)
	}
	return d, nil
}

// Baksmali decompiles the dex into smali source files, one per class,
// keyed by the apktool-style relative path ("smali/com/example/Main.smali").
// The invoke lines carry the full method references the cloud-API detector
// string-matches on.
func Baksmali(d *Dex) map[string]string {
	out := make(map[string]string, len(d.Classes))
	for _, c := range d.Classes {
		var b strings.Builder
		fmt.Fprintf(&b, ".class public %s\n.super Ljava/lang/Object;\n\n", c.Name)
		for _, m := range c.Methods {
			fmt.Fprintf(&b, ".method public %s()V\n    .registers 4\n", m.Name)
			for _, call := range m.Calls {
				fmt.Fprintf(&b, "    invoke-virtual {v0}, %s\n", call)
			}
			b.WriteString("    return-void\n.end method\n\n")
		}
		out[smaliPath(c.Name)] = b.String()
	}
	return out
}

// smaliPath converts "Lcom/example/Main;" to "smali/com/example/Main.smali".
func smaliPath(className string) string { return SmaliPath(className) }
