package dex

import (
	"strings"
	"testing"
	"testing/quick"
)

func sampleDex() *Dex {
	return &Dex{Classes: []Class{
		{
			Name: "Lcom/example/app/MainActivity;",
			Methods: []Method{
				{Name: "onCreate", Calls: []string{
					"Landroid/app/Activity;->onCreate(Landroid/os/Bundle;)V",
					"Lcom/google/firebase/ml/vision/FirebaseVision;->getInstance()Lcom/google/firebase/ml/vision/FirebaseVision;",
				}},
				{Name: "detect", Calls: []string{
					"Lcom/google/firebase/ml/vision/FirebaseVision;->getOnDeviceImageLabeler()",
				}},
			},
		},
		{
			Name: "Lcom/example/app/Worker;",
			Methods: []Method{
				{Name: "run", Calls: []string{
					"Lorg/tensorflow/lite/Interpreter;-><init>(Ljava/nio/ByteBuffer;)V",
				}},
			},
		},
	}}
}

func TestDexRoundTrip(t *testing.T) {
	d := sampleDex()
	enc := d.Encode()
	if !IsDex(enc) {
		t.Fatal("encoded dex fails magic check")
	}
	got, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Classes) != 2 {
		t.Fatalf("classes = %d", len(got.Classes))
	}
	if got.Classes[0].Name != d.Classes[0].Name {
		t.Fatalf("class name %q", got.Classes[0].Name)
	}
	if got.Classes[0].Methods[0].Calls[1] != d.Classes[0].Methods[0].Calls[1] {
		t.Fatal("call refs not preserved")
	}
}

func TestDexStringTableDeduplicates(t *testing.T) {
	call := "Lorg/tensorflow/lite/Interpreter;->run()"
	d := &Dex{Classes: []Class{{
		Name: "La/B;",
		Methods: []Method{
			{Name: "m1", Calls: []string{call, call}},
			{Name: "m2", Calls: []string{call}},
		},
	}}}
	enc := d.Encode()
	if n := strings.Count(string(enc), call); n != 1 {
		t.Fatalf("call string appears %d times in encoding, want 1 (interned)", n)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode([]byte("not dex")); err == nil {
		t.Fatal("garbage should fail")
	}
	enc := sampleDex().Encode()
	for _, cut := range []int{len(Magic), len(enc) / 2, len(enc) - 1} {
		if _, err := Decode(enc[:cut]); err == nil {
			t.Fatalf("truncation to %d should fail", cut)
		}
	}
}

func TestAllCalls(t *testing.T) {
	calls := sampleDex().AllCalls()
	if len(calls) != 4 {
		t.Fatalf("AllCalls = %d entries: %v", len(calls), calls)
	}
	for i := 1; i < len(calls); i++ {
		if calls[i-1] >= calls[i] {
			t.Fatal("AllCalls must be sorted and deduplicated")
		}
	}
}

func TestBaksmali(t *testing.T) {
	files := Baksmali(sampleDex())
	if len(files) != 2 {
		t.Fatalf("smali files = %d", len(files))
	}
	main, ok := files["smali/com/example/app/MainActivity.smali"]
	if !ok {
		t.Fatalf("missing MainActivity smali; have %v", keys(files))
	}
	if !strings.Contains(main, "invoke-virtual {v0}, Lcom/google/firebase/ml/vision/FirebaseVision;->getInstance()") {
		t.Fatal("smali missing firebase invoke line")
	}
	if !strings.Contains(main, ".class public Lcom/example/app/MainActivity;") {
		t.Fatal("smali missing class header")
	}
}

func keys(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// Property: encode/decode round trip over arbitrary printable content.
func TestDexRoundTripProperty(t *testing.T) {
	f := func(classNames []string, callSeeds []string) bool {
		d := &Dex{}
		for i, cn := range classNames {
			if len(d.Classes) >= 8 {
				break
			}
			c := Class{Name: "L" + sanitize(cn) + ";"}
			m := Method{Name: "m"}
			for j, cs := range callSeeds {
				if j >= 8 {
					break
				}
				m.Calls = append(m.Calls, "L"+sanitize(cs)+";->f()")
			}
			c.Methods = append(c.Methods, m)
			_ = i
			d.Classes = append(d.Classes, c)
		}
		got, err := Decode(d.Encode())
		if err != nil {
			return false
		}
		if len(got.Classes) != len(d.Classes) {
			return false
		}
		for i := range got.Classes {
			if got.Classes[i].Name != d.Classes[i].Name {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func sanitize(s string) string {
	if s == "" {
		return "x"
	}
	var b strings.Builder
	for _, r := range s {
		if (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9') || r == '/' {
			b.WriteRune(r)
		}
	}
	if b.Len() == 0 {
		return "x"
	}
	return b.String()
}

func TestNativeLibRoundTrip(t *testing.T) {
	l := NativeLib{
		SoName:  "libtensorflowlite.so",
		Symbols: []string{"TfLiteInterpreterCreate", "TfLiteInterpreterInvoke", "Java_org_tensorflow_lite_NativeInterpreterWrapper_run"},
	}
	enc := EncodeNativeLib(l)
	if !IsNativeLib(enc) {
		t.Fatal("IsNativeLib failed on encoded lib")
	}
	got, err := DecodeNativeLib(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.SoName != l.SoName || len(got.Symbols) != 3 {
		t.Fatalf("round trip: %+v", got)
	}
	if !got.ContainsSymbol("TfLite") {
		t.Fatal("ContainsSymbol(TfLite) should hit")
	}
	if got.ContainsSymbol("ncnn") {
		t.Fatal("ContainsSymbol(ncnn) should miss")
	}
}

func TestNativeLibErrors(t *testing.T) {
	if _, err := DecodeNativeLib([]byte("ELF?")); err == nil {
		t.Fatal("bad magic should fail")
	}
	enc := EncodeNativeLib(NativeLib{SoName: "libx.so", Symbols: []string{"a", "b"}})
	if _, err := DecodeNativeLib(enc[:len(enc)-1]); err == nil {
		t.Fatal("truncation should fail")
	}
	if IsNativeLib([]byte{1, 2, 3}) {
		t.Fatal("short data is not a native lib")
	}
}
