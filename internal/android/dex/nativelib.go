package dex

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

// NativeLib is a shared object shipped under lib/<abi>/ in an APK. gaugeNN
// detects ML frameworks in native code "by means of library inclusion in
// the application code and native libraries ... following the methodology
// of Xu et al." — scanning the dynamic symbol strings for framework
// markers.
type NativeLib struct {
	// SoName is the DT_SONAME, e.g. "libtensorflowlite.so".
	SoName string
	// Symbols are the exported dynamic symbols.
	Symbols []string
}

var elfMagic = []byte{0x7f, 'E', 'L', 'F', 2, 1, 1, 0} // 64-bit LE, SysV

// EncodeNativeLib produces an ELF-like shared object: the ELF identity
// bytes, a soname record and a dynamic string table holding the symbol
// names — the sections a symbol scanner actually reads.
func EncodeNativeLib(l NativeLib) []byte {
	buf := append([]byte(nil), elfMagic...)
	u32 := func(v uint32) { buf = binary.LittleEndian.AppendUint32(buf, v) }
	str := func(s string) { u32(uint32(len(s))); buf = append(buf, s...) }
	str(l.SoName)
	u32(uint32(len(l.Symbols)))
	for _, s := range l.Symbols {
		str(s)
	}
	return buf
}

// IsNativeLib reports whether data starts with the ELF identification.
func IsNativeLib(data []byte) bool { return bytes.HasPrefix(data, elfMagic[:4]) }

// DecodeNativeLib parses an encoded shared object.
func DecodeNativeLib(data []byte) (NativeLib, error) {
	var l NativeLib
	if !bytes.HasPrefix(data, elfMagic) {
		return l, fmt.Errorf("dex: not a native library")
	}
	off := len(elfMagic)
	u32 := func() (uint32, error) {
		if off+4 > len(data) {
			return 0, fmt.Errorf("dex: truncated native lib at %d", off)
		}
		v := binary.LittleEndian.Uint32(data[off:])
		off += 4
		return v, nil
	}
	rstr := func() (string, error) {
		n, err := u32()
		if err != nil {
			return "", err
		}
		if off+int(n) > len(data) {
			return "", fmt.Errorf("dex: truncated native lib string at %d", off)
		}
		s := string(data[off : off+int(n)])
		off += int(n)
		return s, nil
	}
	var err error
	if l.SoName, err = rstr(); err != nil {
		return l, err
	}
	n, err := u32()
	if err != nil {
		return l, err
	}
	if n > 1<<20 {
		return l, fmt.Errorf("dex: implausible symbol count %d", n)
	}
	for i := uint32(0); i < n; i++ {
		s, err := rstr()
		if err != nil {
			return l, err
		}
		l.Symbols = append(l.Symbols, s)
	}
	return l, nil
}

// ContainsSymbol reports whether any dynamic symbol contains the marker
// substring (case-sensitive, as symbol scans are).
func (l NativeLib) ContainsSymbol(marker string) bool {
	for _, s := range l.Symbols {
		if bytes.Contains([]byte(s), []byte(marker)) {
			return true
		}
	}
	return false
}
