package apk

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"
)

// Property: any collection of assets round-trips through the APK container
// byte-for-byte, regardless of content (compressed or stored).
func TestAPKAssetRoundTripProperty(t *testing.T) {
	f := func(payloads [][]byte) bool {
		b := NewBuilder(Manifest{Package: "p.p", VersionCode: 1, MinSDK: 21})
		want := map[string][]byte{}
		for i, p := range payloads {
			if i >= 6 {
				break
			}
			// Alternate stored (model-like) and compressed names.
			name := fmt.Sprintf("models/m%d.tflite", i)
			if i%2 == 1 {
				name = fmt.Sprintf("cfg/c%d.json", i)
			}
			b.AddAsset(name, p)
			want["assets/"+name] = p
		}
		apkBytes, err := b.Build()
		if err != nil {
			return false
		}
		r, err := Open(apkBytes)
		if err != nil {
			return false
		}
		for name, data := range want {
			got, err := r.ReadFile(name)
			if err != nil {
				return false
			}
			if !bytes.Equal(got, data) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: OBB containers round-trip arbitrary file maps.
func TestOBBRoundTripProperty(t *testing.T) {
	f := func(names []string, payload []byte) bool {
		files := map[string][]byte{}
		for i, n := range names {
			if i >= 5 {
				break
			}
			clean := fmt.Sprintf("f%d_%x", i, len(n)) // zip-safe names
			files[clean] = payload
		}
		obb := OBB{Package: "p.p", VersionCode: 2, Main: true, Files: files}
		enc, err := obb.Encode()
		if err != nil {
			return false
		}
		got, err := DecodeOBB(enc)
		if err != nil {
			return false
		}
		if len(got) != len(files) {
			return false
		}
		for n, d := range files {
			if !bytes.Equal(got[n], d) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: manifests round-trip for arbitrary printable package names and
// versions.
func TestManifestRoundTripProperty(t *testing.T) {
	f := func(version uint16, sdk uint8) bool {
		m := Manifest{
			Package:     fmt.Sprintf("com.app.v%d", version),
			VersionCode: int(version),
			MinSDK:      int(sdk),
		}
		got, err := ParseManifest(m.Encode())
		if err != nil {
			return false
		}
		return got.Package == m.Package && got.VersionCode == m.VersionCode && got.MinSDK == m.MinSDK
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
