package apk

import (
	"archive/zip"
	"bytes"
	"fmt"
	"io"
	"sort"
	"strings"
)

// OBB is an APK expansion file: "the former supplement the main apk file
// and are hosted and served by Google Play" (Section 3.1). Expansion files
// are named <main|patch>.<versionCode>.<package>.obb and are zip
// containers.
type OBB struct {
	Package     string
	VersionCode int
	Main        bool // main vs patch expansion
	Files       map[string][]byte
}

// Name returns the Play-mandated OBB file name.
func (o OBB) Name() string {
	kind := "main"
	if !o.Main {
		kind = "patch"
	}
	return fmt.Sprintf("%s.%d.%s.obb", kind, o.VersionCode, o.Package)
}

// Encode produces the OBB zip bytes.
func (o OBB) Encode() ([]byte, error) {
	return encodeZip(o.Files)
}

// DecodeOBB parses OBB zip bytes back into a file map.
func DecodeOBB(data []byte) (map[string][]byte, error) {
	return decodeZip(data, "obb")
}

// Bundle is an Android App Bundle as served through Play Asset Delivery:
// a base module plus on-demand asset packs, each its own container.
type Bundle struct {
	// Base is the base-module APK (built with Builder).
	Base []byte
	// AssetPacks maps pack name to the pack's file map.
	AssetPacks map[string]map[string][]byte
}

// EncodePack renders one asset pack as a zip.
func (b Bundle) EncodePack(name string) ([]byte, error) {
	files, ok := b.AssetPacks[name]
	if !ok {
		return nil, fmt.Errorf("apk: asset pack %q not in bundle", name)
	}
	return encodeZip(files)
}

// PackNames lists asset packs in sorted order.
func (b Bundle) PackNames() []string {
	out := make([]string, 0, len(b.AssetPacks))
	for n := range b.AssetPacks {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// DecodePack parses asset-pack zip bytes.
func DecodePack(data []byte) (map[string][]byte, error) {
	return decodeZip(data, "asset pack")
}

func encodeZip(files map[string][]byte) ([]byte, error) {
	var buf bytes.Buffer
	zw := zip.NewWriter(&buf)
	names := make([]string, 0, len(files))
	for n := range files {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		hdr := &zip.FileHeader{Name: n, Method: zip.Deflate}
		if storeUncompressed("assets/" + strings.TrimPrefix(n, "assets/")) {
			hdr.Method = zip.Store
		}
		w, err := zw.CreateHeader(hdr)
		if err != nil {
			return nil, fmt.Errorf("apk: %w", err)
		}
		if _, err := w.Write(files[n]); err != nil {
			return nil, fmt.Errorf("apk: %w", err)
		}
	}
	if err := zw.Close(); err != nil {
		return nil, fmt.Errorf("apk: %w", err)
	}
	return buf.Bytes(), nil
}

func decodeZip(data []byte, what string) (map[string][]byte, error) {
	zr, err := zip.NewReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		return nil, fmt.Errorf("apk: %s is not a zip: %w", what, err)
	}
	out := make(map[string][]byte, len(zr.File))
	for _, f := range zr.File {
		rc, err := f.Open()
		if err != nil {
			return nil, fmt.Errorf("apk: %s entry %s: %w", what, f.Name, err)
		}
		b, err := io.ReadAll(rc)
		rc.Close()
		if err != nil {
			return nil, fmt.Errorf("apk: %s entry %s: %w", what, f.Name, err)
		}
		out[f.Name] = b
	}
	return out, nil
}
