package apk

import (
	"bytes"
	"strings"
	"testing"
)

func sampleManifest() Manifest {
	return Manifest{
		Package:     "com.example.camera",
		VersionCode: 42,
		MinSDK:      26,
		Permissions: []string{"android.permission.CAMERA", "android.permission.INTERNET"},
	}
}

func TestManifestRoundTrip(t *testing.T) {
	m := sampleManifest()
	got, err := ParseManifest(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Package != m.Package || got.VersionCode != 42 || got.MinSDK != 26 {
		t.Fatalf("round trip: %+v", got)
	}
	if len(got.Permissions) != 2 {
		t.Fatalf("permissions: %v", got.Permissions)
	}
}

func TestManifestErrors(t *testing.T) {
	if _, err := ParseManifest([]byte("versionCode: 1\n")); err == nil {
		t.Fatal("missing package should fail")
	}
	if _, err := ParseManifest([]byte("garbage line without colon space\n")); err == nil {
		t.Fatal("malformed line should fail")
	}
	if _, err := ParseManifest([]byte("package: a\nversionCode: NaN\n")); err == nil {
		t.Fatal("bad versionCode should fail")
	}
}

func TestAPKBuildAndOpen(t *testing.T) {
	model := bytes.Repeat([]byte{0xAB}, 4096)
	apk, err := NewBuilder(sampleManifest()).
		SetDex([]byte("dex\n035\x00....")).
		AddAsset("models/detector.tflite", model).
		AddNativeLib("arm64-v8a", "libtensorflowlite.so", []byte{0x7f, 'E', 'L', 'F'}).
		AddRaw("res/layout/main.xml", []byte("<layout/>")).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	r, err := Open(apk)
	if err != nil {
		t.Fatal(err)
	}
	if r.Manifest().Package != "com.example.camera" {
		t.Fatalf("manifest: %+v", r.Manifest())
	}
	if _, err := r.Dex(); err != nil {
		t.Fatalf("dex: %v", err)
	}
	got, err := r.ReadFile("assets/models/detector.tflite")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, model) {
		t.Fatal("asset bytes corrupted")
	}
	if assets := r.Assets(); len(assets) != 1 || assets[0] != "assets/models/detector.tflite" {
		t.Fatalf("Assets = %v", assets)
	}
	if libs := r.NativeLibs(); len(libs) != 1 || !strings.Contains(libs[0], "arm64-v8a") {
		t.Fatalf("NativeLibs = %v", libs)
	}
	if len(r.Names()) != 5 { // manifest + dex + asset + lib + res
		t.Fatalf("Names = %v", r.Names())
	}
}

func TestAPKMissingEntry(t *testing.T) {
	apk, err := NewBuilder(sampleManifest()).Build()
	if err != nil {
		t.Fatal(err)
	}
	r, err := Open(apk)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadFile("nope"); err == nil {
		t.Fatal("missing entry should fail")
	}
	if _, err := r.Dex(); err == nil {
		t.Fatal("missing dex should fail")
	}
}

func TestOpenRejectsGarbage(t *testing.T) {
	if _, err := Open([]byte("not a zip")); err == nil {
		t.Fatal("garbage should fail")
	}
}

func TestAPKSizeLimit(t *testing.T) {
	// Incompressible (stored) payload beyond 100 MB must be rejected.
	big := make([]byte, MaxBaseAPKSize+1024)
	for i := range big {
		big[i] = byte(i * 31)
	}
	_, err := NewBuilder(sampleManifest()).AddAsset("models/huge.tflite", big).Build()
	if err == nil {
		t.Fatal("oversized apk must be rejected")
	}
	if !strings.Contains(err.Error(), "OBB or asset packs") {
		t.Fatalf("error should point at companion channels: %v", err)
	}
}

func TestModelAssetsStoredUncompressed(t *testing.T) {
	if !storeUncompressed("assets/m.tflite") || !storeUncompressed("lib/arm64-v8a/libfoo.so") {
		t.Fatal("model assets and libs must be stored")
	}
	if storeUncompressed("assets/config.json") || storeUncompressed("res/values.xml") {
		t.Fatal("text entries should compress")
	}
}

func TestOBBRoundTrip(t *testing.T) {
	obb := OBB{
		Package:     "com.example.camera",
		VersionCode: 42,
		Main:        true,
		Files: map[string][]byte{
			"models/big_segmenter.tflite": bytes.Repeat([]byte{1, 2, 3}, 1000),
		},
	}
	if obb.Name() != "main.42.com.example.camera.obb" {
		t.Fatalf("OBB name = %s", obb.Name())
	}
	patch := obb
	patch.Main = false
	if patch.Name() != "patch.42.com.example.camera.obb" {
		t.Fatalf("patch name = %s", patch.Name())
	}
	enc, err := obb.Encode()
	if err != nil {
		t.Fatal(err)
	}
	files, err := DecodeOBB(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(files["models/big_segmenter.tflite"], obb.Files["models/big_segmenter.tflite"]) {
		t.Fatal("OBB contents corrupted")
	}
	if _, err := DecodeOBB([]byte("junk")); err == nil {
		t.Fatal("junk OBB should fail")
	}
}

func TestBundleAssetPacks(t *testing.T) {
	base, err := NewBuilder(sampleManifest()).Build()
	if err != nil {
		t.Fatal(err)
	}
	b := Bundle{
		Base: base,
		AssetPacks: map[string]map[string][]byte{
			"ml_models":   {"detector.tflite": []byte{9, 9, 9}},
			"extra_fonts": {"font.ttf": []byte{1}},
		},
	}
	if got := b.PackNames(); len(got) != 2 || got[0] != "extra_fonts" {
		t.Fatalf("PackNames = %v", got)
	}
	enc, err := b.EncodePack("ml_models")
	if err != nil {
		t.Fatal(err)
	}
	files, err := DecodePack(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(files["detector.tflite"], []byte{9, 9, 9}) {
		t.Fatal("pack contents corrupted")
	}
	if _, err := b.EncodePack("missing"); err == nil {
		t.Fatal("unknown pack should fail")
	}
}

func TestStoredEntryZeroCopy(t *testing.T) {
	model := bytes.Repeat([]byte{0xCD}, 8192)
	apkBytes, err := NewBuilder(sampleManifest()).
		AddAsset("models/det.tflite", model).
		AddRaw("res/strings.xml", []byte("<resources/>")).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	r, err := Open(apkBytes)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.ReadFile("assets/models/det.tflite")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, model) {
		t.Fatal("stored entry corrupted")
	}
	// The returned slice must alias the APK buffer (zero-copy), not a copy.
	off := bytes.Index(apkBytes, model)
	if off < 0 {
		t.Fatal("stored payload not found verbatim in the archive")
	}
	if &got[0] != &apkBytes[off] {
		t.Fatal("stored entry read is not a subslice of the APK buffer")
	}
	// Deflated entries still round-trip through the copying path.
	res, err := r.ReadFile("res/strings.xml")
	if err != nil {
		t.Fatal(err)
	}
	if string(res) != "<resources/>" {
		t.Fatalf("deflated entry = %q", res)
	}
}

func TestEntriesLazyIteration(t *testing.T) {
	apkBytes, err := NewBuilder(sampleManifest()).
		AddAsset("models/a.tflite", bytes.Repeat([]byte{1}, 512)).
		AddRaw("res/x.xml", []byte("<x/>")).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	r, err := Open(apkBytes)
	if err != nil {
		t.Fatal(err)
	}
	entries := r.Entries()
	if len(entries) != len(r.Names()) {
		t.Fatalf("Entries = %d, Names = %d", len(entries), len(r.Names()))
	}
	var sawStored, sawDeflated bool
	for i := range entries {
		e := &entries[i]
		switch e.Name() {
		case "assets/models/a.tflite":
			if !e.Stored() {
				t.Fatal("model asset should be stored")
			}
			if e.Size() != 512 {
				t.Fatalf("Size = %d", e.Size())
			}
			sawStored = true
		case "res/x.xml":
			if e.Stored() {
				t.Fatal("xml should be deflated")
			}
			sawDeflated = true
		}
		if _, err := e.Data(); err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
	}
	if !sawStored || !sawDeflated {
		t.Fatal("fixture must cover both entry kinds")
	}
}

// Reading a stored entry is the extraction hot path: it must not copy the
// payload, so at most one (in practice zero) allocation per read.
func TestReadFileStoredAllocs(t *testing.T) {
	apkBytes, err := NewBuilder(sampleManifest()).
		AddAsset("models/det.tflite", bytes.Repeat([]byte{7}, 1<<16)).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	r, err := Open(apkBytes)
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := r.ReadFile("assets/models/det.tflite"); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 1 {
		t.Fatalf("ReadFile on stored entry allocates %v per run, want <= 1", allocs)
	}
}

func TestStoredEntryCorruptionDetected(t *testing.T) {
	model := bytes.Repeat([]byte{0xEE}, 4096)
	apkBytes, err := NewBuilder(sampleManifest()).
		AddAsset("models/det.tflite", model).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte in place: sizes stay consistent, CRC must not.
	off := bytes.Index(apkBytes, model)
	if off < 0 {
		t.Fatal("payload not found")
	}
	apkBytes[off+100] ^= 0xFF
	r, err := Open(apkBytes)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadFile("assets/models/det.tflite"); err == nil {
		t.Fatal("corrupted stored entry must fail the CRC check")
	}
}
