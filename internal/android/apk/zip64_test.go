package apk

import (
	"bytes"
	"testing"
)

// Regression for the zip64 overflow: a central directory declaring a
// stored entry of 2^63 bytes must not pass the zero-copy eligibility
// bound (off + int64(size) would wrap negative and Data() would panic
// slicing with a negative cap). The entry must fall back to the copying
// path, where the decompressor surfaces an error instead.
func TestStoredEntryHostileZip64Size(t *testing.T) {
	apkBytes, err := NewBuilder(sampleManifest()).
		AddAsset("models/det.tflite", bytes.Repeat([]byte{9}, 256)).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	r, err := Open(apkBytes)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r.entries {
		e := &r.entries[i]
		if e.Name() != "assets/models/det.tflite" {
			continue
		}
		if !e.Stored() {
			t.Fatal("fixture entry should be stored")
		}
		// Simulate the hostile declaration on the parsed header and re-run
		// Open's eligibility test: the size bound must reject it before
		// any int64 arithmetic can overflow.
		e.f.UncompressedSize64 = 1 << 63
		e.f.CompressedSize64 = 1 << 63
		if e.f.UncompressedSize64 <= uint64(len(apkBytes)) {
			t.Fatal("2^63 size must fail the eligibility bound")
		}
		return
	}
	t.Fatal("fixture entry not found")
}
