// Package apk implements the Android application package containers gaugeNN
// extracts models from: the base APK (a zip with manifest, dex bytecode,
// native libraries and assets), OBB expansion files and App Bundle asset
// packs — the three distribution channels of Section 3.1. The 100 MB base
// APK limit that pushes large models into companion files is enforced here.
package apk

import (
	"archive/zip"
	"bytes"
	"fmt"
	"io"
	"path"
	"sort"
	"strings"
)

// MaxBaseAPKSize is Google Play's 100 MB cap on the main apk, the reason
// "files – such as DNN weights – can have a larger storage footprint" must
// move to expansion files or asset packs.
const MaxBaseAPKSize = 100 * 1024 * 1024

// ManifestName is the manifest entry every APK must carry.
const ManifestName = "AndroidManifest.xml"

// Manifest carries the app identity metadata the store and the analysis
// pipeline read.
type Manifest struct {
	Package     string
	VersionCode int
	MinSDK      int
	Permissions []string
}

// Encode renders the manifest in the simple key: value form our reader
// parses (a stand-in for Android's binary XML).
func (m Manifest) Encode() []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "package: %s\n", m.Package)
	fmt.Fprintf(&b, "versionCode: %d\n", m.VersionCode)
	fmt.Fprintf(&b, "minSdkVersion: %d\n", m.MinSDK)
	for _, p := range m.Permissions {
		fmt.Fprintf(&b, "uses-permission: %s\n", p)
	}
	return []byte(b.String())
}

// ParseManifest reverses Manifest.Encode.
func ParseManifest(data []byte) (Manifest, error) {
	var m Manifest
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		key, val, ok := strings.Cut(line, ": ")
		if !ok {
			return m, fmt.Errorf("apk: malformed manifest line %q", line)
		}
		switch key {
		case "package":
			m.Package = val
		case "versionCode":
			if _, err := fmt.Sscanf(val, "%d", &m.VersionCode); err != nil {
				return m, fmt.Errorf("apk: bad versionCode %q", val)
			}
		case "minSdkVersion":
			if _, err := fmt.Sscanf(val, "%d", &m.MinSDK); err != nil {
				return m, fmt.Errorf("apk: bad minSdkVersion %q", val)
			}
		case "uses-permission":
			m.Permissions = append(m.Permissions, val)
		}
	}
	if m.Package == "" {
		return m, fmt.Errorf("apk: manifest missing package")
	}
	return m, nil
}

// Builder assembles an APK. Entries whose names suggest already-compressed
// or random payloads (model weights, native libs) are stored uncompressed,
// as build tools do.
type Builder struct {
	manifest Manifest
	entries  map[string][]byte
}

// NewBuilder starts an APK for the given manifest.
func NewBuilder(m Manifest) *Builder {
	return &Builder{manifest: m, entries: map[string][]byte{}}
}

// SetDex installs classes.dex.
func (b *Builder) SetDex(data []byte) *Builder {
	b.entries["classes.dex"] = data
	return b
}

// AddAsset places a file under assets/.
func (b *Builder) AddAsset(relPath string, data []byte) *Builder {
	b.entries[path.Join("assets", relPath)] = data
	return b
}

// AddNativeLib places a shared object under lib/<abi>/.
func (b *Builder) AddNativeLib(abi, soName string, data []byte) *Builder {
	b.entries[path.Join("lib", abi, soName)] = data
	return b
}

// AddRaw places an arbitrary entry (res/, META-INF/, ...).
func (b *Builder) AddRaw(name string, data []byte) *Builder {
	b.entries[name] = data
	return b
}

// Build produces the zip bytes, enforcing the 100 MB base-APK limit.
func (b *Builder) Build() ([]byte, error) {
	var buf bytes.Buffer
	zw := zip.NewWriter(&buf)
	names := make([]string, 0, len(b.entries)+1)
	for n := range b.entries {
		names = append(names, n)
	}
	sort.Strings(names)
	write := func(name string, data []byte) error {
		hdr := &zip.FileHeader{Name: name, Method: zip.Deflate}
		if storeUncompressed(name) {
			hdr.Method = zip.Store
		}
		w, err := zw.CreateHeader(hdr)
		if err != nil {
			return err
		}
		_, err = w.Write(data)
		return err
	}
	if err := write(ManifestName, b.manifest.Encode()); err != nil {
		return nil, fmt.Errorf("apk: %w", err)
	}
	for _, n := range names {
		if err := write(n, b.entries[n]); err != nil {
			return nil, fmt.Errorf("apk: %w", err)
		}
	}
	if err := zw.Close(); err != nil {
		return nil, fmt.Errorf("apk: %w", err)
	}
	if buf.Len() > MaxBaseAPKSize {
		return nil, fmt.Errorf("apk: base apk is %d bytes, exceeds the %d Play Store limit; ship assets via OBB or asset packs", buf.Len(), MaxBaseAPKSize)
	}
	return buf.Bytes(), nil
}

// storeUncompressed mirrors aapt's default no-compress list for weights
// and shared objects.
func storeUncompressed(name string) bool {
	switch {
	case strings.HasPrefix(name, "lib/"):
		return true
	case strings.HasPrefix(name, "assets/"):
		ext := strings.ToLower(path.Ext(name))
		switch ext {
		case ".tflite", ".lite", ".tfl", ".bin", ".caffemodel", ".dlc",
			".pb", ".onnx", ".mp3", ".png", ".jpg":
			return true
		}
	}
	return false
}

// Reader provides random access to an APK's entries.
type Reader struct {
	zr       *zip.Reader
	manifest Manifest
}

// Open parses APK bytes and its manifest.
func Open(data []byte) (*Reader, error) {
	zr, err := zip.NewReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		return nil, fmt.Errorf("apk: not a zip: %w", err)
	}
	r := &Reader{zr: zr}
	mdata, err := r.ReadFile(ManifestName)
	if err != nil {
		return nil, fmt.Errorf("apk: missing manifest: %w", err)
	}
	if r.manifest, err = ParseManifest(mdata); err != nil {
		return nil, err
	}
	return r, nil
}

// Manifest returns the parsed manifest.
func (r *Reader) Manifest() Manifest { return r.manifest }

// Names lists every entry in archive order.
func (r *Reader) Names() []string {
	out := make([]string, 0, len(r.zr.File))
	for _, f := range r.zr.File {
		out = append(out, f.Name)
	}
	return out
}

// ReadFile returns the contents of a named entry.
func (r *Reader) ReadFile(name string) ([]byte, error) {
	for _, f := range r.zr.File {
		if f.Name != name {
			continue
		}
		rc, err := f.Open()
		if err != nil {
			return nil, err
		}
		defer rc.Close()
		return io.ReadAll(rc)
	}
	return nil, fmt.Errorf("apk: entry %q not found", name)
}

// Dex returns classes.dex bytes, or an error if the app has none.
func (r *Reader) Dex() ([]byte, error) { return r.ReadFile("classes.dex") }

// Assets returns the entry names under assets/.
func (r *Reader) Assets() []string {
	var out []string
	for _, f := range r.zr.File {
		if strings.HasPrefix(f.Name, "assets/") {
			out = append(out, f.Name)
		}
	}
	return out
}

// NativeLibs returns the entry names under lib/.
func (r *Reader) NativeLibs() []string {
	var out []string
	for _, f := range r.zr.File {
		if strings.HasPrefix(f.Name, "lib/") {
			out = append(out, f.Name)
		}
	}
	return out
}
