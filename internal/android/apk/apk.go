// Package apk implements the Android application package containers gaugeNN
// extracts models from: the base APK (a zip with manifest, dex bytecode,
// native libraries and assets), OBB expansion files and App Bundle asset
// packs — the three distribution channels of Section 3.1. The 100 MB base
// APK limit that pushes large models into companion files is enforced here.
package apk

import (
	"archive/zip"
	"bytes"
	"fmt"
	"hash/crc32"
	"io"
	"path"
	"sort"
	"strings"
)

// MaxBaseAPKSize is Google Play's 100 MB cap on the main apk, the reason
// "files – such as DNN weights – can have a larger storage footprint" must
// move to expansion files or asset packs.
const MaxBaseAPKSize = 100 * 1024 * 1024

// ManifestName is the manifest entry every APK must carry.
const ManifestName = "AndroidManifest.xml"

// Manifest carries the app identity metadata the store and the analysis
// pipeline read.
type Manifest struct {
	Package     string
	VersionCode int
	MinSDK      int
	Permissions []string
}

// Encode renders the manifest in the simple key: value form our reader
// parses (a stand-in for Android's binary XML).
func (m Manifest) Encode() []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "package: %s\n", m.Package)
	fmt.Fprintf(&b, "versionCode: %d\n", m.VersionCode)
	fmt.Fprintf(&b, "minSdkVersion: %d\n", m.MinSDK)
	for _, p := range m.Permissions {
		fmt.Fprintf(&b, "uses-permission: %s\n", p)
	}
	return []byte(b.String())
}

// ParseManifest reverses Manifest.Encode.
func ParseManifest(data []byte) (Manifest, error) {
	var m Manifest
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		key, val, ok := strings.Cut(line, ": ")
		if !ok {
			return m, fmt.Errorf("apk: malformed manifest line %q", line)
		}
		switch key {
		case "package":
			m.Package = val
		case "versionCode":
			if _, err := fmt.Sscanf(val, "%d", &m.VersionCode); err != nil {
				return m, fmt.Errorf("apk: bad versionCode %q", val)
			}
		case "minSdkVersion":
			if _, err := fmt.Sscanf(val, "%d", &m.MinSDK); err != nil {
				return m, fmt.Errorf("apk: bad minSdkVersion %q", val)
			}
		case "uses-permission":
			m.Permissions = append(m.Permissions, val)
		}
	}
	if m.Package == "" {
		return m, fmt.Errorf("apk: manifest missing package")
	}
	return m, nil
}

// Builder assembles an APK. Entries whose names suggest already-compressed
// or random payloads (model weights, native libs) are stored uncompressed,
// as build tools do.
type Builder struct {
	manifest Manifest
	entries  map[string][]byte
}

// NewBuilder starts an APK for the given manifest.
func NewBuilder(m Manifest) *Builder {
	return &Builder{manifest: m, entries: map[string][]byte{}}
}

// SetDex installs classes.dex.
func (b *Builder) SetDex(data []byte) *Builder {
	b.entries["classes.dex"] = data
	return b
}

// AddAsset places a file under assets/.
func (b *Builder) AddAsset(relPath string, data []byte) *Builder {
	b.entries[path.Join("assets", relPath)] = data
	return b
}

// AddNativeLib places a shared object under lib/<abi>/.
func (b *Builder) AddNativeLib(abi, soName string, data []byte) *Builder {
	b.entries[path.Join("lib", abi, soName)] = data
	return b
}

// AddRaw places an arbitrary entry (res/, META-INF/, ...).
func (b *Builder) AddRaw(name string, data []byte) *Builder {
	b.entries[name] = data
	return b
}

// Build produces the zip bytes, enforcing the 100 MB base-APK limit.
func (b *Builder) Build() ([]byte, error) {
	var buf bytes.Buffer
	// Pre-size the buffer: payloads plus local+central headers (~100 bytes
	// and two name copies per entry). Model weights dominate APK size, so
	// this avoids the repeated doubling copies of a cold bytes.Buffer.
	est := 128
	for n, data := range b.entries {
		est += len(data) + 2*len(n) + 128
	}
	buf.Grow(est)
	zw := zip.NewWriter(&buf)
	names := make([]string, 0, len(b.entries)+1)
	for n := range b.entries {
		names = append(names, n)
	}
	sort.Strings(names)
	write := func(name string, data []byte) error {
		hdr := &zip.FileHeader{Name: name, Method: zip.Deflate}
		if storeUncompressed(name) {
			hdr.Method = zip.Store
		}
		w, err := zw.CreateHeader(hdr)
		if err != nil {
			return err
		}
		_, err = w.Write(data)
		return err
	}
	if err := write(ManifestName, b.manifest.Encode()); err != nil {
		return nil, fmt.Errorf("apk: %w", err)
	}
	for _, n := range names {
		if err := write(n, b.entries[n]); err != nil {
			return nil, fmt.Errorf("apk: %w", err)
		}
	}
	if err := zw.Close(); err != nil {
		return nil, fmt.Errorf("apk: %w", err)
	}
	if buf.Len() > MaxBaseAPKSize {
		return nil, fmt.Errorf("apk: base apk is %d bytes, exceeds the %d Play Store limit; ship assets via OBB or asset packs", buf.Len(), MaxBaseAPKSize)
	}
	return buf.Bytes(), nil
}

// storeUncompressed mirrors aapt's default no-compress list for weights
// and shared objects.
func storeUncompressed(name string) bool {
	switch {
	case strings.HasPrefix(name, "lib/"):
		return true
	case strings.HasPrefix(name, "assets/"):
		ext := strings.ToLower(path.Ext(name))
		switch ext {
		case ".tflite", ".lite", ".tfl", ".bin", ".caffemodel", ".dlc",
			".pb", ".onnx", ".mp3", ".png", ".jpg":
			return true
		}
	}
	return false
}

// Reader provides random access to an APK's entries.
//
// Reads of stored (uncompressed) entries are zero-copy: they return
// subslices of the buffer passed to Open. See Entry.Data for the aliasing
// contract.
type Reader struct {
	data     []byte
	zr       *zip.Reader
	manifest Manifest
	entries  []Entry
}

// Open parses APK bytes and its manifest. The Reader aliases data: the
// caller must not mutate it while the Reader (or any stored-entry slice
// obtained from it) is in use.
func Open(data []byte) (*Reader, error) {
	zr, err := zip.NewReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		return nil, fmt.Errorf("apk: not a zip: %w", err)
	}
	r := &Reader{data: data, zr: zr}
	r.entries = make([]Entry, len(zr.File))
	for i, f := range zr.File {
		e := Entry{r: r, f: f, dataOff: -1}
		// Stored, unencrypted entries with honest sizes are served as
		// direct subslices of the APK buffer. Everything else (deflate,
		// odd flags) goes through the copying decompression path.
		// The size bound must precede the int64 sum: a hostile zip64 size
		// >= 2^63 would overflow the sum negative and slip past the check.
		if f.Method == zip.Store && f.Flags&0x1 == 0 &&
			f.CompressedSize64 == f.UncompressedSize64 &&
			f.UncompressedSize64 <= uint64(len(data)) {
			if off, err := f.DataOffset(); err == nil &&
				off >= 0 && off+int64(f.UncompressedSize64) <= int64(len(data)) {
				e.dataOff = off
			}
		}
		r.entries[i] = e
	}
	mdata, err := r.ReadFile(ManifestName)
	if err != nil {
		return nil, fmt.Errorf("apk: missing manifest: %w", err)
	}
	if r.manifest, err = ParseManifest(mdata); err != nil {
		return nil, err
	}
	return r, nil
}

// Manifest returns the parsed manifest.
func (r *Reader) Manifest() Manifest { return r.manifest }

// Names lists every entry in archive order.
func (r *Reader) Names() []string {
	out := make([]string, 0, len(r.zr.File))
	for _, f := range r.zr.File {
		out = append(out, f.Name)
	}
	return out
}

// Entry is one archive member, readable lazily: extraction walks entry
// names and only materialises the payloads it actually needs (dex, native
// libs, model candidates), instead of inflating every resource and icon in
// the package.
type Entry struct {
	r *Reader
	f *zip.File
	// dataOff is the entry payload's offset in the APK buffer when the
	// entry is stored uncompressed (-1 otherwise).
	dataOff int64
}

// Name returns the entry's path inside the archive.
func (e *Entry) Name() string { return e.f.Name }

// Size returns the entry's uncompressed size.
func (e *Entry) Size() int { return int(e.f.UncompressedSize64) }

// Data returns the entry payload. For stored (uncompressed) entries this
// is zero-copy: the returned slice aliases the APK buffer, must be treated
// as read-only, and keeps the whole buffer reachable while retained; the
// payload's CRC32 is verified on every call (stateless, so Data stays safe
// for concurrent use), matching the integrity check the decompressing path
// performs at EOF. Compressed entries are inflated into a fresh,
// exactly-sized buffer.
func (e *Entry) Data() ([]byte, error) {
	if e.dataOff >= 0 {
		end := e.dataOff + int64(e.f.UncompressedSize64)
		data := e.r.data[e.dataOff:end:end]
		// Same rule as archive/zip's checksumReader: a zero CRC in the
		// directory means "not recorded" and skips the check.
		if e.f.CRC32 != 0 && crc32.ChecksumIEEE(data) != e.f.CRC32 {
			return nil, fmt.Errorf("apk: entry %s: checksum mismatch", e.f.Name)
		}
		return data, nil
	}
	rc, err := e.f.Open()
	if err != nil {
		return nil, err
	}
	defer rc.Close()
	// Pre-size from the directory's declared size, but never trust it
	// beyond the store's base-APK ceiling: a corrupt or hostile header
	// must not be able to force an arbitrary allocation.
	if e.f.UncompressedSize64 > MaxBaseAPKSize {
		return io.ReadAll(rc)
	}
	out := make([]byte, e.f.UncompressedSize64)
	if _, err := io.ReadFull(rc, out); err != nil {
		return nil, fmt.Errorf("apk: reading %s: %w", e.f.Name, err)
	}
	// Drain to EOF so the zip reader verifies the CRC, and to catch
	// entries whose payload exceeds the declared size.
	var tail [1]byte
	for {
		n, err := rc.Read(tail[:])
		if n > 0 {
			return nil, fmt.Errorf("apk: entry %s larger than declared size", e.f.Name)
		}
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, fmt.Errorf("apk: reading %s: %w", e.f.Name, err)
		}
	}
}

// Stored reports whether reads of this entry are zero-copy.
func (e *Entry) Stored() bool { return e.dataOff >= 0 }

// Entries returns the archive members in archive order, without reading
// any payload. The returned slice is shared; callers must not mutate it.
func (r *Reader) Entries() []Entry { return r.entries }

// ReadFile returns the contents of a named entry. For stored
// (uncompressed) entries the returned slice aliases the APK buffer —
// callers must treat it as read-only; retaining it retains the whole
// buffer (copy first if the APK outlives the use).
func (r *Reader) ReadFile(name string) ([]byte, error) {
	for i := range r.entries {
		if r.entries[i].f.Name == name {
			return r.entries[i].Data()
		}
	}
	return nil, fmt.Errorf("apk: entry %q not found", name)
}

// Dex returns classes.dex bytes, or an error if the app has none.
func (r *Reader) Dex() ([]byte, error) { return r.ReadFile("classes.dex") }

// Assets returns the entry names under assets/.
func (r *Reader) Assets() []string {
	var out []string
	for _, f := range r.zr.File {
		if strings.HasPrefix(f.Name, "assets/") {
			out = append(out, f.Name)
		}
	}
	return out
}

// NativeLibs returns the entry names under lib/.
func (r *Reader) NativeLibs() []string {
	var out []string
	for _, f := range r.zr.File {
		if strings.HasPrefix(f.Name, "lib/") {
			out = append(out, f.Name)
		}
	}
	return out
}
