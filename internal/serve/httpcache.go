package serve

import (
	"bytes"
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"net/http"
	"strings"
	"sync"
)

// etagOf derives a strong ETag from the parts that determine a
// response's bytes — endpoint name plus the CAS keys (or content
// checksums) of everything it renders. Because every input is already a
// content hash, revalidation never touches a blob: equal keys mean equal
// bytes, so a matching If-None-Match is answered 304 for free.
func etagOf(parts ...string) string {
	h := sha256.New()
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0}) // unambiguous joins: ("ab","c") != ("a","bc")
	}
	return `"` + hex.EncodeToString(h.Sum(nil))[:16] + `"`
}

// cacheHit stamps the response's validators — ETag plus a short
// Cache-Control so probes and dashboards coalesce bursts — and reports
// whether the request revalidated: on an If-None-Match match it writes
// 304 with an empty body and the caller returns without rendering.
func cacheHit(w http.ResponseWriter, r *http.Request, etag string) bool {
	w.Header().Set("ETag", etag)
	w.Header().Set("Cache-Control", "public, max-age=5")
	if match := r.Header.Get("If-None-Match"); match != "" && etagMatches(match, etag) {
		w.WriteHeader(http.StatusNotModified)
		return true
	}
	return false
}

// etagMatches implements If-None-Match's comparison: a "*" wildcard or
// any member of the comma-separated candidate list equal to the
// response's ETag. Weak validators (W/ prefix) compare by opaque value,
// per the weak comparison the 304 evaluation uses.
func etagMatches(header, etag string) bool {
	if strings.TrimSpace(header) == "*" {
		return true
	}
	for _, c := range strings.Split(header, ",") {
		c = strings.TrimSpace(c)
		c = strings.TrimPrefix(c, "W/")
		if c == etag {
			return true
		}
	}
	return false
}

// respCache memoises rendered responses — ETag plus JSON body — keyed by
// a cheap request-derived cache key (path values, raw query, manifest
// fingerprint; never a hash). The key's parts pin every input the
// response depends on, so an entry can never go stale: a changed input is
// a different key, and orphaned keys age out of the LRU. Keying by
// request rather than by ETag is what makes the warm path allocation-free
// of hashing — one string concat and one map probe replace the sha256
// the slow path pays to derive the validator. Bounded like the other
// memoisations; bodies here are small (summaries, churn rows, listings —
// never /tables renders).
type respCache struct {
	mu    sync.Mutex
	max   int
	order *list.List // front = most recently used; values are *respEntry
	items map[string]*list.Element
}

type respEntry struct {
	key  string
	etag string
	body []byte
}

const defaultRespCache = 1024

func newRespCache() *respCache {
	return &respCache{max: defaultRespCache, order: list.New(), items: map[string]*list.Element{}}
}

func (c *respCache) get(key string) (*respEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*respEntry), true
}

func (c *respCache) add(key, etag string, body []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.order.MoveToFront(el)
		ent := el.Value.(*respEntry)
		ent.etag, ent.body = etag, body
		return
	}
	c.items[key] = c.order.PushFront(&respEntry{key: key, etag: etag, body: body})
	for len(c.items) > c.max {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*respEntry).key)
	}
}

// served replays a memoised response for one content-addressed GET: on a
// cache-key hit, a matching If-None-Match is a 304 and anything else gets
// the memoised bytes — no hashing, no rendering. Returns true when the
// response went out; a miss falls through to the handler's slow path,
// which derives the real ETag and memoises via memoJSON. The corpus-scan
// engine (withoutIndex) skips the memo so benchmarks compare engines.
func (s *Server) served(w http.ResponseWriter, r *http.Request, key string) bool {
	if s.noIndex {
		return false
	}
	ent, ok := s.responses.get(key)
	if !ok {
		return false
	}
	if cacheHit(w, r, ent.etag) {
		return true
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	if _, err := w.Write(ent.body); err != nil {
		logf("serve: replaying memoised response: %v", err)
	}
	return true
}

// memoJSON writes v like writeJSON and retains (etag, body) under the
// request-derived cache key for served to replay.
func (s *Server) memoJSON(w http.ResponseWriter, key, etag string, v any) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		logf("serve: encoding %T response: %v", v, err)
		http.Error(w, `{"error":"response encoding failed"}`, http.StatusInternalServerError)
		return
	}
	if !s.noIndex {
		s.responses.add(key, etag, buf.Bytes())
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	if _, err := w.Write(buf.Bytes()); err != nil {
		logf("serve: writing %T response: %v", v, err)
	}
}
