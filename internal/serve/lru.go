package serve

import (
	"container/list"
	"sync"

	"github.com/gaugenn/gaugenn/internal/analysis"
)

// corpusLRU bounds the per-CAS-key corpus memoisation. Keys are content
// hashes, so entries can never go stale — but decoded corpora are large
// (every record and unique of a snapshot), and an unbounded map grows for
// the life of the process as studies accumulate. The LRU keeps the hot
// working set resident, evicts the coldest snapshot beyond capacity, and
// feeds the eviction counter + resident gauge so operators can see cache
// pressure on /metrics.
type corpusLRU struct {
	mu    sync.Mutex
	max   int
	order *list.List // front = most recently used; values are *lruEntry
	items map[string]*list.Element
}

type lruEntry struct {
	key string
	c   *analysis.Corpus
}

// defaultCorpusCache is the default residency bound: enough for a handful
// of studies' snapshot pairs, small enough that a crawl-everything tenant
// cannot pin the process's memory.
const defaultCorpusCache = 16

func newCorpusLRU(max int) *corpusLRU {
	if max <= 0 {
		max = defaultCorpusCache
	}
	return &corpusLRU{max: max, order: list.New(), items: map[string]*list.Element{}}
}

// get returns the corpus for key, refreshing its recency.
func (l *corpusLRU) get(key string) (*analysis.Corpus, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	el, ok := l.items[key]
	if !ok {
		return nil, false
	}
	l.order.MoveToFront(el)
	return el.Value.(*lruEntry).c, true
}

// add inserts key, evicting the least-recently-used entry beyond
// capacity. Adding an existing key refreshes it.
func (l *corpusLRU) add(key string, c *analysis.Corpus) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if el, ok := l.items[key]; ok {
		l.order.MoveToFront(el)
		el.Value.(*lruEntry).c = c
		return
	}
	l.items[key] = l.order.PushFront(&lruEntry{key: key, c: c})
	for len(l.items) > l.max {
		oldest := l.order.Back()
		ent := oldest.Value.(*lruEntry)
		l.order.Remove(oldest)
		delete(l.items, ent.key)
		metCorpusEvictions.Inc()
	}
	metCorpusResident.SetInt(int64(len(l.items)))
}

// len reports the resident entry count.
func (l *corpusLRU) len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.items)
}
