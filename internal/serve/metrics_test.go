package serve

import (
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/gaugenn/gaugenn/internal/obs"
	"github.com/gaugenn/gaugenn/internal/store"
)

// TestWriteJSONEncodeFailure proves an unmarshalable value becomes a
// clean 500 with the failure logged — not a 200 with a truncated body
// and a silently dropped error.
func TestWriteJSONEncodeFailure(t *testing.T) {
	var logged []string
	orig := logf
	logf = func(format string, args ...any) { logged = append(logged, fmt.Sprintf(format, args...)) }
	defer func() { logf = orig }()

	rec := httptest.NewRecorder()
	writeJSON(rec, 200, map[string]any{"ch": make(chan int)}) // channels cannot marshal
	if rec.Code != 500 {
		t.Fatalf("status = %d, want 500 (headers must not be committed before encoding)", rec.Code)
	}
	if len(logged) != 1 || !strings.Contains(logged[0], "encoding") {
		t.Fatalf("encode failure not logged: %v", logged)
	}
}

func TestWriteJSONSuccess(t *testing.T) {
	rec := httptest.NewRecorder()
	writeJSON(rec, 201, map[string]string{"k": "v"})
	if rec.Code != 201 {
		t.Fatalf("status = %d, want 201", rec.Code)
	}
	if got := rec.Header().Get("Content-Type"); got != "application/json" {
		t.Fatalf("content type = %q", got)
	}
	if !strings.Contains(rec.Body.String(), `"k": "v"`) {
		t.Fatalf("body = %q", rec.Body.String())
	}
}

// TestRequestMetrics drives the instrumented handler and asserts the
// per-route series move and the in-flight gauge returns to zero.
func TestRequestMetrics(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(New(st).Handler())
	defer srv.Close()

	requests := obs.Default().Counter("gaugenn_serve_requests_total",
		"Query API requests handled, by route pattern.",
		obs.Label{Name: "route", Value: "GET /healthz"})
	latency := obs.Default().Histogram("gaugenn_serve_request_seconds",
		"Query API request latency in seconds, by route pattern.",
		nil, obs.Label{Name: "route", Value: "GET /healthz"})
	before, latBefore := requests.Value(), latency.Count()

	for i := 0; i < 3; i++ {
		resp, err := srv.Client().Get(srv.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	if got := requests.Value() - before; got != 3 {
		t.Fatalf("healthz requests counted = %d, want 3", got)
	}
	if got := latency.Count() - latBefore; got != 3 {
		t.Fatalf("latency observations = %d, want 3", got)
	}
	if v := metInFlight.Value(); v != 0 {
		t.Fatalf("in-flight gauge = %v after requests drained, want 0", v)
	}
}
