package serve

import (
	"net/http"
	"time"

	"github.com/gaugenn/gaugenn/internal/obs"
)

// Request-level series. Handles are resolved per route at Handler()
// build time, so the per-request path is an in-flight inc/dec, one
// counter add and one histogram observation.
var metInFlight = obs.Default().Gauge("gaugenn_serve_in_flight",
	"Requests currently being handled by the query API.")

// Corpus-memoisation residency series (see corpusLRU): operators watch
// evictions climb to see cache pressure before it becomes tail latency.
var (
	metCorpusEvictions = obs.Default().Counter("gaugenn_serve_corpus_evictions_total",
		"Decoded corpus snapshots evicted from the bounded memoisation cache.")
	metCorpusResident = obs.Default().Gauge("gaugenn_serve_resident_corpora",
		"Decoded corpus snapshots currently resident in the memoisation cache.")
)

// Query-engine series: decodes should flatline once every snapshot's
// index is persisted (the warm path never decodes a corpus); lazy index
// builds appearing on a long-running server mean index blobs are being
// lost or corrupted under it.
var (
	metCorpusDecodes = obs.Default().Counter("gaugenn_serve_corpus_decodes_total",
		"Corpus snapshots decoded by the query path (cold /tables loads, index rebuilds, legacy fallbacks).")
	metIndexBuilds = obs.Default().Counter("gaugenn_serve_index_builds_total",
		"Query indexes rebuilt lazily from a corpus because the persisted blob was absent or invalid.")
	metIndexResident = obs.Default().Gauge("gaugenn_serve_resident_indexes",
		"Query indexes currently resident in the memoisation cache.")
)

// instrument wraps one route's handler with request counting and latency
// observation under the route's pattern label.
func instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	requests := obs.Default().Counter("gaugenn_serve_requests_total",
		"Query API requests handled, by route pattern.",
		obs.Label{Name: "route", Value: route})
	latency := obs.Default().Histogram("gaugenn_serve_request_seconds",
		"Query API request latency in seconds, by route pattern.",
		nil, obs.Label{Name: "route", Value: route})
	return func(w http.ResponseWriter, r *http.Request) {
		metInFlight.Inc()
		start := time.Now()
		defer func() {
			latency.ObserveDuration(time.Since(start))
			metInFlight.Dec()
			requests.Inc()
		}()
		h(w, r)
	}
}
