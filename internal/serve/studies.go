package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"github.com/gaugenn/gaugenn/internal/sched"
)

// maxSpecBody bounds a submission body: a study spec is a handful of
// numbers, so anything larger is a client bug (or abuse), not a spec.
const maxSpecBody = 1 << 16

// tenantHeader derives the submitting tenant. Empty falls back to "anon"
// inside the scheduler; there is deliberately no authentication here —
// the header is an isolation key, not a credential.
const tenantHeader = "X-Gaugenn-Tenant"

// handleSubmit admits one study: 202 with the job snapshot, or a typed
// shed. Overload answers carry Retry-After (delta-seconds) so well-behaved
// clients back off with the server's pacing instead of hammering.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec sched.Spec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSpecBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeErr(w, http.StatusBadRequest, "decoding study spec: %v", err)
		return
	}
	job, err := s.sch.Submit(spec, r.Header.Get(tenantHeader))
	if err != nil {
		s.writeSubmitErr(w, err)
		return
	}
	w.Header().Set("Location", "/api/studies/"+job.ID+"/status")
	writeJSON(w, http.StatusAccepted, submitResponse{
		Job:    job,
		Status: "/api/studies/" + job.ID + "/status",
		Events: "/api/studies/" + job.ID + "/events",
	})
}

// submitResponse is the 202 body: the job plus its follow-up links.
type submitResponse struct {
	sched.Job
	Status string `json:"status_url"`
	Events string `json:"events_url"`
}

// writeSubmitErr maps admission failures onto HTTP statuses: global
// overload and drain are 503 (try another replica / later), a tenant
// over its own share is 429 (its problem, not the service's), anything
// else is a spec the client got wrong.
func (s *Server) writeSubmitErr(w http.ResponseWriter, err error) {
	secs := int(s.sch.Config().RetryAfterHint() / time.Second)
	if secs < 1 {
		secs = 1
	}
	switch {
	case errors.Is(err, sched.ErrQueueFull), errors.Is(err, sched.ErrDraining):
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		writeErr(w, http.StatusServiceUnavailable, "%v", err)
	case errors.Is(err, sched.ErrTenantQuota):
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		writeErr(w, http.StatusTooManyRequests, "%v", err)
	default:
		writeErr(w, http.StatusBadRequest, "%v", err)
	}
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	// Job state is volatile; an intermediary replaying a stale listing
	// would mislead pollers, so caching is off rather than short.
	w.Header().Set("Cache-Control", "no-store")
	jobs := s.sch.Jobs()
	if jobs == nil {
		jobs = []sched.Job{}
	}
	writeJSON(w, http.StatusOK, jobs)
}

func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Cache-Control", "no-store")
	job, err := s.sch.Job(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, job)
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	job, err := s.sch.Cancel(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, job)
}

// handleJobEvents streams a job's typed events as Server-Sent Events.
//
// Resume protocol: every frame's SSE id is the event's Stamp.Seq. A
// reconnecting client sends Last-Event-ID (or ?after=SEQ) and the server
// replays every retained event with a larger Seq from the job's bounded
// ring, then hands off to the live stream — the cut happens under one
// lock, so the client sees no gap and no duplicate. A cursor older than
// the ring's horizon gets a "truncated" event first, then the oldest
// retained tail. The stream ends after the terminal "end" event (or
// immediately after replay if the job already finished).
//
// Robustness: the pipeline never blocks on this handler (the ring fans
// out without waiting), a reader that stalls past the write timeout or
// falls a full buffer behind is disconnected (it resumes with its
// cursor), and a client that hangs up just ends the handler.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	ring, err := s.sch.Ring(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusNotFound, "%v", err)
		return
	}
	after, err := eventCursor(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)

	replay, sub, truncated := ring.Subscribe(after)
	defer sub.Cancel()
	write := func(ev sched.WireEvent) bool {
		// A stalled reader must not pin this goroutine: bound every write
		// and give up on the first failure (the client resumes by cursor).
		rc.SetWriteDeadline(time.Now().Add(s.sseWriteTimeout))
		data, err := json.Marshal(ev)
		if err != nil {
			logf("serve: encoding SSE event: %v", err)
			return false
		}
		if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, data); err != nil {
			return false
		}
		return rc.Flush() == nil
	}
	if truncated {
		// The client's cursor predates the ring: tell it the replay below
		// starts at the oldest retained event, not at its cursor.
		if !write(sched.WireEvent{Seq: after, Type: sched.TypeTruncated}) {
			return
		}
	}
	for _, ev := range replay {
		if !write(ev) {
			return
		}
	}
	if sub == nil {
		return // job already terminal: the replay ended with its "end" event
	}
	for {
		select {
		case ev, ok := <-sub.C:
			if !ok {
				// Ring closed (stream complete) or we lagged out; either way
				// the client reconnects with its cursor if it wants more.
				return
			}
			if !write(ev) {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}

// eventCursor resolves the resume cursor: the standard Last-Event-ID
// header, or an ?after=SEQ query for hand-driven clients. Zero means
// "from the beginning".
func eventCursor(r *http.Request) (uint64, error) {
	v := r.Header.Get("Last-Event-ID")
	if q := r.URL.Query().Get("after"); q != "" {
		v = q
	}
	if v == "" {
		return 0, nil
	}
	n, err := strconv.ParseUint(v, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad event cursor %q: %v", v, err)
	}
	return n, nil
}
