package serve

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/gaugenn/gaugenn/internal/index"
	"github.com/gaugenn/gaugenn/internal/store"
)

// TestIndexedResponsesMatchCorpusScan pins the query engine's contract:
// for every indexed endpoint, the columnar index produces a response
// byte-identical to the corpus-scan path it replaced.
func TestIndexedResponsesMatchCorpusScan(t *testing.T) {
	st, id, res := persistedStudy(t)
	indexed := httptest.NewServer(New(st).Handler())
	defer indexed.Close()
	scan := httptest.NewServer(New(st, withoutIndex()).Handler())
	defer scan.Close()

	paths := []string{
		"/api/studies",
		"/api/studies/" + id,
		fmt.Sprintf("/api/diff?from=%s:2020&to=%s:2021", id, id),
		fmt.Sprintf("/api/diff?from=%s&to=%s", id, id),
	}
	for _, u := range res.Corpus21.SortedUniques() {
		paths = append(paths, "/api/models/"+string(u.Checksum))
	}
	for _, u := range res.Corpus20.SortedUniques() {
		paths = append(paths, "/api/models/"+string(u.Checksum))
	}
	for _, path := range paths {
		a := get(t, indexed, path, 200)
		b := get(t, scan, path, 200)
		if string(a) != string(b) {
			t.Errorf("GET %s diverges between engines:\nindexed: %s\nscan:    %s", path, a, b)
		}
	}
}

// TestWarmPathDecodesNoCorpus asserts the acceptance criterion directly:
// with indexes persisted (the study engine writes them at persist time),
// /healthz, /api/studies, /api/studies/{id}, /api/models/{checksum} and
// /api/diff answer without decoding any corpus; only /tables still pays
// the decode.
func TestWarmPathDecodesNoCorpus(t *testing.T) {
	st, id, res := persistedStudy(t)
	s := New(st)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	sum := res.Corpus21.SortedUniques()[0].Checksum
	before := corpusDecodes.Load()
	get(t, srv, "/healthz", 200)
	get(t, srv, "/api/studies", 200)
	get(t, srv, "/api/studies/"+id, 200)
	get(t, srv, "/api/models/"+string(sum), 200)
	get(t, srv, fmt.Sprintf("/api/diff?from=%s&to=%s", id, id), 200)
	if d := corpusDecodes.Load() - before; d != 0 {
		t.Fatalf("warm path decoded %d corpora, want 0", d)
	}
	if n := s.corpora.len(); n != 0 {
		t.Fatalf("warm path memoised %d corpora, want 0", n)
	}
	// Tables are the one read that still renders from decoded corpora.
	get(t, srv, "/api/studies/"+id+"/tables", 200)
	if d := corpusDecodes.Load() - before; d == 0 {
		t.Fatal("tables render decoded no corpus — counter not wired?")
	}
}

// TestIndexSelfHeals: a corrupt (and separately, a missing) index blob is
// rebuilt from the corpus on first read, served correctly, and
// re-persisted so the next cold process loads it clean.
func TestIndexSelfHeals(t *testing.T) {
	st, id, res := persistedStudy(t)
	key := res.Persist.CorpusKeys["2021"]
	path := filepath.Join(st.Dir(), store.KindIndex, key[:2], key)

	for name, mangle := range map[string]func() error{
		"corrupt": func() error { return os.WriteFile(path, []byte("junk, not a sealed index"), 0o644) },
		"missing": func() error { return os.Remove(path) },
	} {
		if err := mangle(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if _, ok := index.Load(st, key); ok {
			t.Fatalf("%s index blob still loads", name)
		}
		s := New(st) // fresh caches: the read must hit the damaged blob
		srv := httptest.NewServer(s.Handler())
		body := get(t, srv, "/api/studies/"+id, 200)
		srv.Close()
		if want := res.Corpus21.Dataset(); !stringsContainDataset(body, want.TotalModels, want.UniqueModels) {
			t.Fatalf("%s: healed response lacks dataset stats: %s", name, body)
		}
		ix, ok := index.Load(st, key)
		if !ok {
			t.Fatalf("%s index not re-persisted after self-heal", name)
		}
		if ix.Dataset != res.Corpus21.Dataset() {
			t.Fatalf("%s: re-persisted index stats %+v diverge", name, ix.Dataset)
		}
	}
}

// stringsContainDataset loosely checks a study-detail body carries the
// expected counts (the byte-identical contract is pinned elsewhere).
func stringsContainDataset(body []byte, total, unique int) bool {
	s := string(body)
	return strings.Contains(s, fmt.Sprintf(`"TotalModels": %d`, total)) &&
		strings.Contains(s, fmt.Sprintf(`"UniqueModels": %d`, unique))
}

// TestETagRevalidation: every indexed GET answers with a strong ETag and
// Cache-Control, and revalidates an If-None-Match hit as a 304 with an
// empty body — including weak-validator and list forms.
func TestETagRevalidation(t *testing.T) {
	st, id, res := persistedStudy(t)
	srv := httptest.NewServer(New(st).Handler())
	defer srv.Close()

	paths := []string{
		"/api/studies",
		"/api/studies/" + id,
		"/api/studies/" + id + "/tables",
		"/api/models/" + string(res.Corpus21.SortedUniques()[0].Checksum),
		fmt.Sprintf("/api/diff?from=%s&to=%s", id, id),
	}
	for _, path := range paths {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		etag := resp.Header.Get("ETag")
		if resp.StatusCode != 200 || etag == "" {
			t.Fatalf("GET %s = %d, etag %q", path, resp.StatusCode, etag)
		}
		if cc := resp.Header.Get("Cache-Control"); cc != "public, max-age=5" {
			t.Fatalf("GET %s Cache-Control = %q", path, cc)
		}
		for _, match := range []string{etag, "W/" + etag, `"stale-one", ` + etag, "*"} {
			req, _ := http.NewRequest("GET", srv.URL+path, nil)
			req.Header.Set("If-None-Match", match)
			r2, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			body, _ := io.ReadAll(r2.Body)
			r2.Body.Close()
			if r2.StatusCode != http.StatusNotModified || len(body) != 0 {
				t.Fatalf("GET %s If-None-Match %q = %d with %d body bytes, want 304 empty",
					path, match, r2.StatusCode, len(body))
			}
			if r2.Header.Get("ETag") != etag {
				t.Fatalf("304 for %s lost its ETag", path)
			}
		}
		// A non-matching validator still gets the full representation.
		req, _ := http.NewRequest("GET", srv.URL+path, nil)
		req.Header.Set("If-None-Match", `"0000000000000000"`)
		r3, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(r3.Body)
		r3.Body.Close()
		if r3.StatusCode != 200 || len(body) == 0 {
			t.Fatalf("GET %s with stale validator = %d, %d bytes", path, r3.StatusCode, len(body))
		}
	}
	// Health is probe-cacheable for a second but carries no ETag (its
	// census is time-based, not content-addressed).
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if cc := resp.Header.Get("Cache-Control"); cc != "public, max-age=1" {
		t.Fatalf("healthz Cache-Control = %q", cc)
	}
}

// TestCensusMemo: /healthz's census is computed at most once per TTL and
// recomputed after expiry.
func TestCensusMemo(t *testing.T) {
	st, _, _ := persistedStudy(t)
	s := New(st, WithCensusTTL(time.Hour))
	first, err := s.censusCounts()
	if err != nil {
		t.Fatal(err)
	}
	again, err := s.censusCounts()
	if err != nil {
		t.Fatal(err)
	}
	if reflect.ValueOf(first).Pointer() != reflect.ValueOf(again).Pointer() {
		t.Fatal("census recomputed within TTL")
	}
	s.census.Lock()
	s.census.at = time.Time{} // force expiry
	s.census.Unlock()
	refreshed, err := s.censusCounts()
	if err != nil {
		t.Fatal(err)
	}
	if reflect.ValueOf(first).Pointer() == reflect.ValueOf(refreshed).Pointer() {
		t.Fatal("census not recomputed after TTL expiry")
	}
	if !reflect.DeepEqual(first, refreshed) {
		t.Fatalf("census drifted over an unchanged store: %v != %v", first, refreshed)
	}
}

// TestManifestCacheInvalidation: the parsed manifest is reused while the
// file's (size, mtime) holds and reparsed when the log grows.
func TestManifestCacheInvalidation(t *testing.T) {
	st, id, _ := persistedStudy(t)
	s := New(st)
	first, err := s.studies()
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != 1 || first[0].ID != id {
		t.Fatalf("studies: %+v", first)
	}
	again, err := s.studies()
	if err != nil {
		t.Fatal(err)
	}
	if reflect.ValueOf(first).Pointer() != reflect.ValueOf(again).Pointer() {
		t.Fatal("manifest reparsed while file unchanged")
	}
	// Appending an entry grows the file; the next read must see it.
	if err := st.AppendManifest(store.ManifestEntry{ID: "seed1-scale0.001"}); err != nil {
		t.Fatal(err)
	}
	grown, err := s.studies()
	if err != nil {
		t.Fatal(err)
	}
	if len(grown) != 2 {
		t.Fatalf("grown manifest served stale: %+v", grown)
	}
}
