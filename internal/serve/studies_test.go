package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/gaugenn/gaugenn/internal/core"
	"github.com/gaugenn/gaugenn/internal/event"
	"github.com/gaugenn/gaugenn/internal/sched"
	"github.com/gaugenn/gaugenn/internal/store"
	"github.com/gaugenn/gaugenn/internal/testutil"
)

// emittingRun is a controllable pipeline stand-in: it emits burst
// progress events, then blocks until release closes (or ctx dies).
func emittingRun(burst int, release <-chan struct{}) func(context.Context, core.Config) (*core.StudyResult, error) {
	return func(ctx context.Context, cfg core.Config) (*core.StudyResult, error) {
		cfg.OnEvent(event.Stamped(event.StageStart{Stage: "crawl", Snapshot: "2021", Total: burst}))
		for i := 1; i <= burst; i++ {
			cfg.OnEvent(event.Stamped(event.StageProgress{Stage: "crawl", Snapshot: "2021", Done: i, Total: burst}))
		}
		select {
		case <-release:
			return &core.StudyResult{}, nil
		case <-ctx.Done():
			return nil, context.Cause(ctx)
		}
	}
}

// schedServer builds a scheduler-enabled test server over an empty
// store. Cleanup drains the scheduler before the server closes.
func schedServer(t *testing.T, cfg sched.Config, opts ...Option) (*httptest.Server, *sched.Scheduler) {
	t.Helper()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sch := sched.New(cfg)
	srv := httptest.NewServer(New(st, append(opts, WithScheduler(sch))...).Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := sch.Drain(ctx); err != nil {
			t.Errorf("drain: %v", err)
		}
		srv.Close()
	})
	return srv, sch
}

// submitSpec POSTs one spec and decodes the 202.
func submitSpec(t *testing.T, srv *httptest.Server, spec sched.Spec, tenant string) sched.Job {
	t.Helper()
	body, _ := json.Marshal(spec)
	req, _ := http.NewRequest(http.MethodPost, srv.URL+"/api/studies", bytes.NewReader(body))
	req.Header.Set("X-Gaugenn-Tenant", tenant)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", resp.StatusCode, raw)
	}
	var job sched.Job
	if err := json.Unmarshal(raw, &job); err != nil {
		t.Fatal(err)
	}
	return job
}

// sseConn is one open SSE stream plus its parser.
type sseConn struct {
	resp *http.Response
	br   *bufio.Reader
}

func openEvents(t *testing.T, srv *httptest.Server, id string, cursor uint64) *sseConn {
	t.Helper()
	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/api/studies/"+id+"/events", nil)
	if cursor > 0 {
		req.Header.Set("Last-Event-ID", strconv.FormatUint(cursor, 10))
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("events = %d: %s", resp.StatusCode, body)
	}
	return &sseConn{resp: resp, br: bufio.NewReader(resp.Body)}
}

func (c *sseConn) close() { c.resp.Body.Close() }

// next reads one frame; the error surfaces cut connections.
func (c *sseConn) next() (id uint64, typ string, ev sched.WireEvent, err error) {
	seen := false
	for {
		line, rerr := c.br.ReadString('\n')
		if rerr != nil {
			return 0, "", sched.WireEvent{}, rerr
		}
		line = strings.TrimRight(line, "\n")
		if line == "" {
			if seen {
				return id, typ, ev, nil
			}
			continue
		}
		field, value, _ := strings.Cut(line, ": ")
		switch field {
		case "id":
			id, _ = strconv.ParseUint(value, 10, 64)
			seen = true
		case "event":
			typ = value
			seen = true
		case "data":
			if jerr := json.Unmarshal([]byte(value), &ev); jerr != nil {
				return 0, "", sched.WireEvent{}, jerr
			}
			seen = true
		}
	}
}

// drainToEnd reads frames until the terminal event, asserting the
// cursor is strictly increasing (no gap, no duplicate), and returns
// every seq seen plus the end event.
func drainToEnd(t *testing.T, c *sseConn, from uint64) ([]uint64, sched.WireEvent) {
	t.Helper()
	cursor := from
	var seqs []uint64
	for {
		id, typ, ev, err := c.next()
		if err != nil {
			t.Fatalf("stream cut before end (cursor %d): %v", cursor, err)
		}
		if typ == sched.TypeTruncated {
			t.Fatalf("unexpected truncation at cursor %d", cursor)
		}
		if id <= cursor {
			t.Fatalf("cursor regression: %d after %d", id, cursor)
		}
		cursor = id
		seqs = append(seqs, id)
		if typ == sched.TypeEnd {
			return seqs, ev
		}
	}
}

// TestSubmitStreamLifecycle covers the happy path over HTTP: submit,
// stream queued -> running -> progress -> end(done), and the status
// endpoint agreeing afterwards.
func TestSubmitStreamLifecycle(t *testing.T) {
	testutil.NoLeakedGoroutines(t)
	release := make(chan struct{})
	srv, _ := schedServer(t, sched.Config{MaxWorkers: 1, Run: emittingRun(5, release)})
	job := submitSpec(t, srv, sched.Spec{Seed: 1, Scale: 0.01}, "acme")
	c := openEvents(t, srv, job.ID, 0)
	defer c.close()
	close(release)
	seqs, end := drainToEnd(t, c, 0)
	if end.State != string(sched.StateDone) {
		t.Fatalf("end state = %q, want done", end.State)
	}
	// queued + running states, stage start + 5 progress, end.
	if len(seqs) < 8 {
		t.Fatalf("only %d events on the stream", len(seqs))
	}
	var got sched.Job
	if err := json.Unmarshal(get(t, srv, "/api/studies/"+job.ID+"/status", 200), &got); err != nil {
		t.Fatal(err)
	}
	if got.State != sched.StateDone || got.Attempts != 1 {
		t.Fatalf("status after end: %+v", got)
	}
}

// TestSubmitShedding fills the queue and verifies the typed sheds:
// 503 + Retry-After on global overload, 429 + Retry-After on a tenant
// exceeding its share, and 400 (no Retry-After) for an invalid spec.
func TestSubmitShedding(t *testing.T) {
	testutil.NoLeakedGoroutines(t)
	release := make(chan struct{})
	defer close(release)
	srv, _ := schedServer(t, sched.Config{
		MaxWorkers:       1,
		MaxQueue:         2,
		TenantQueueShare: 1,
		RetryAfter:       3 * time.Second,
		Run:              emittingRun(1, release),
	})
	post := func(spec sched.Spec, tenant string) *http.Response {
		body, _ := json.Marshal(spec)
		req, _ := http.NewRequest(http.MethodPost, srv.URL+"/api/studies", bytes.NewReader(body))
		req.Header.Set("X-Gaugenn-Tenant", tenant)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp
	}
	// One runs, one queues for tenant b.
	for i, tenant := range []string{"a", "b"} {
		if resp := post(sched.Spec{Seed: int64(i), Scale: 0.01}, tenant); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d = %d", i, resp.StatusCode)
		}
	}
	// Tenant b already holds its queue share (queue itself has room):
	// 429 with pacing — b's problem, not the service's.
	resp := post(sched.Spec{Seed: 9, Scale: 0.01}, "b")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("tenant overflow = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") != "3" {
		t.Fatalf("429 Retry-After = %q, want 3", resp.Header.Get("Retry-After"))
	}
	// Fill the last queue slot, then overflow it: 503 for everyone.
	if resp := post(sched.Spec{Seed: 2, Scale: 0.01}, "c"); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit c = %d", resp.StatusCode)
	}
	resp = post(sched.Spec{Seed: 10, Scale: 0.01}, "d")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("queue overflow = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") != "3" {
		t.Fatalf("503 Retry-After = %q, want 3", resp.Header.Get("Retry-After"))
	}
	// An invalid spec is the client's fault, not overload: 400, no pacing.
	resp = post(sched.Spec{Seed: 1, Scale: 7}, "e")
	if resp.StatusCode != http.StatusBadRequest || resp.Header.Get("Retry-After") != "" {
		t.Fatalf("bad spec = %d (Retry-After %q), want 400 without pacing", resp.StatusCode, resp.Header.Get("Retry-After"))
	}
}

// TestSSEClientDisconnectMidStream hangs up rudely mid-stream and
// verifies nothing downstream cares: the run completes, the handler
// goroutine unwinds (leak-gated), and a later subscriber still replays
// the full history.
func TestSSEClientDisconnectMidStream(t *testing.T) {
	testutil.NoLeakedGoroutines(t)
	release := make(chan struct{})
	srv, sch := schedServer(t, sched.Config{MaxWorkers: 1, Run: emittingRun(8, release)})
	job := submitSpec(t, srv, sched.Spec{Seed: 1, Scale: 0.01}, "acme")
	c := openEvents(t, srv, job.ID, 0)
	if _, _, _, err := c.next(); err != nil {
		t.Fatal(err)
	}
	c.close() // rude: mid-stream, no goodbye
	close(release)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if got, err := sch.Wait(ctx, job.ID); err != nil || got.State != sched.StateDone {
		t.Fatalf("job after rude disconnect: %+v, %v", got, err)
	}
	// The ring survived the rude client: a fresh consumer replays
	// everything from the beginning through the terminal event.
	c2 := openEvents(t, srv, job.ID, 0)
	defer c2.close()
	seqs, end := drainToEnd(t, c2, 0)
	if end.State != string(sched.StateDone) || len(seqs) < 10 {
		t.Fatalf("replay after disconnect: %d events, end %+v", len(seqs), end)
	}
}

// TestSSEStalledReaderResumesGapFree stalls mid-stream until the server
// cuts the subscriber (lag drop or write deadline), then resumes with
// Last-Event-ID and verifies the stitched stream has no gap and no
// duplicate versus a reference reader that never stalled.
func TestSSEStalledReaderResumesGapFree(t *testing.T) {
	testutil.NoLeakedGoroutines(t)
	release := make(chan struct{})
	// The burst (4000 events) dwarfs the subscriber buffer (256) so the
	// stalled reader is dropped, while the ring (1<<14) retains
	// everything so the resume replays gap-free.
	srv, _ := schedServer(t,
		sched.Config{MaxWorkers: 1, RingSize: 1 << 14, Run: emittingRun(4000, release)},
		WithSSEWriteTimeout(200*time.Millisecond),
	)
	job := submitSpec(t, srv, sched.Spec{Seed: 1, Scale: 0.01}, "acme")

	// Reference reader: consumes promptly, sees the whole stream. (No
	// t.Fatal off the test goroutine: failures travel back on the channel.)
	refConn := openEvents(t, srv, job.ID, 0)
	defer refConn.close()
	type refResult struct {
		seqs []uint64
		err  error
	}
	refDone := make(chan refResult, 1)
	go func() {
		var seqs []uint64
		for {
			id, typ, _, err := refConn.next()
			if err != nil {
				refDone <- refResult{nil, err}
				return
			}
			seqs = append(seqs, id)
			if typ == sched.TypeEnd {
				refDone <- refResult{seqs, nil}
				return
			}
		}
	}()

	// Stalled reader: take the first frame, then stop consuming.
	c := openEvents(t, srv, job.ID, 0)
	first, _, _, err := c.next()
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // let the burst overrun the subscriber
	close(release)

	// Resume by cursor until the stitched stream reaches the end,
	// reconnecting as often as the server cuts us.
	cursor := first
	seqs := []uint64{first}
	deadline := time.Now().Add(20 * time.Second)
	for {
		id, typ, _, err := c.next()
		if err != nil {
			c.close()
			if time.Now().After(deadline) {
				t.Fatal("stalled reader never reached the end")
			}
			c = openEvents(t, srv, job.ID, cursor)
			continue
		}
		if typ == sched.TypeTruncated {
			t.Fatalf("ring truncated under stall (cursor %d)", cursor)
		}
		if id <= cursor {
			t.Fatalf("gap/duplicate after resume: %d following %d", id, cursor)
		}
		cursor = id
		seqs = append(seqs, id)
		if typ == sched.TypeEnd {
			break
		}
	}
	c.close()

	ref := <-refDone
	if ref.err != nil {
		t.Fatalf("reference reader: %v", ref.err)
	}
	if len(ref.seqs) != len(seqs) {
		t.Fatalf("stalled reader saw %d events, reference saw %d", len(seqs), len(ref.seqs))
	}
	for i := range ref.seqs {
		if ref.seqs[i] != seqs[i] {
			t.Fatalf("stream divergence at %d: %d vs %d", i, seqs[i], ref.seqs[i])
		}
	}
}

// TestSSEResumeChunkedGapFree reads the stream three frames at a time,
// disconnecting after each chunk and reconnecting with Last-Event-ID,
// and requires the stitched sequence to be identical to an
// uninterrupted read.
func TestSSEResumeChunkedGapFree(t *testing.T) {
	testutil.NoLeakedGoroutines(t)
	release := make(chan struct{})
	srv, sch := schedServer(t, sched.Config{MaxWorkers: 1, Run: emittingRun(20, release)})
	job := submitSpec(t, srv, sched.Spec{Seed: 1, Scale: 0.01}, "acme")
	close(release)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := sch.Wait(ctx, job.ID); err != nil {
		t.Fatal(err)
	}

	full := openEvents(t, srv, job.ID, 0)
	want, _ := drainToEnd(t, full, 0)
	full.close()

	var got []uint64
	cursor := uint64(0)
	for len(got) == 0 || got[len(got)-1] != want[len(want)-1] {
		c := openEvents(t, srv, job.ID, cursor)
		for i := 0; i < 3; i++ {
			id, typ, _, err := c.next()
			if err != nil {
				t.Fatalf("chunked read (cursor %d): %v", cursor, err)
			}
			if id <= cursor {
				t.Fatalf("duplicate after reconnect: %d following %d", id, cursor)
			}
			cursor = id
			got = append(got, id)
			if typ == sched.TypeEnd {
				break
			}
		}
		c.close()
	}
	if fmt.Sprint(want) != fmt.Sprint(got) {
		t.Fatalf("chunked stream diverged:\nwant %v\ngot  %v", want, got)
	}
}

// TestPreemptedStudyResumesByteIdentical runs the real pipeline: a
// low-priority study is preempted mid-run by a high-priority one, then
// resumed warm — and its persisted corpora must be byte-identical
// (same CAS keys) to an uninterrupted run of the same spec.
func TestPreemptedStudyResumesByteIdentical(t *testing.T) {
	testutil.NoLeakedGoroutines(t)
	if testing.Short() {
		t.Skip("real pipeline runs")
	}
	cacheDir := t.TempDir()
	st, err := store.Open(cacheDir)
	if err != nil {
		t.Fatal(err)
	}
	sch := sched.New(sched.Config{CacheDir: cacheDir, MaxWorkers: 1})
	srv := httptest.NewServer(New(st, WithScheduler(sch)).Handler())
	defer srv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	defer func() {
		if err := sch.Drain(ctx); err != nil {
			t.Errorf("drain: %v", err)
		}
	}()

	low := submitSpec(t, srv, sched.Spec{Seed: 101, Scale: 0.02, Priority: 0}, "acme")
	// Wait until the low-priority run is actually executing before
	// submitting the preemptor.
	c := openEvents(t, srv, low.ID, 0)
	for {
		_, typ, ev, err := c.next()
		if err != nil {
			t.Fatal(err)
		}
		if typ == sched.TypeState && ev.State == string(sched.StateRunning) {
			break
		}
	}
	c.close()
	high := submitSpec(t, srv, sched.Spec{Seed: 202, Scale: 0.01, Priority: 5}, "acme")

	lowJob, err := sch.Wait(ctx, low.ID)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sch.Wait(ctx, high.ID); err != nil {
		t.Fatal(err)
	}
	if lowJob.State != sched.StateDone {
		t.Fatalf("low-priority job: %+v", lowJob)
	}
	if lowJob.Preemptions == 0 {
		t.Fatalf("low-priority job was never preempted: %+v", lowJob)
	}

	// Reference: the same spec, uninterrupted, in a pristine store.
	refCfg := core.DefaultConfig(101, 0.02)
	refCfg.UseHTTP = false
	refCfg.KeepGraphs = false
	refCfg.CacheDir = t.TempDir()
	ref, err := core.Run(ctx, refCfg)
	if err != nil {
		t.Fatal(err)
	}

	var detail struct {
		Snapshots map[string]struct {
			CorpusKey string `json:"corpus_key"`
		} `json:"snapshots"`
	}
	if err := json.Unmarshal(get(t, srv, "/api/studies/"+lowJob.StudyID, 200), &detail); err != nil {
		t.Fatal(err)
	}
	for label, key := range ref.Persist.CorpusKeys {
		if detail.Snapshots[label].CorpusKey != key {
			t.Fatalf("snapshot %s: preempted-and-resumed corpus %s != uninterrupted %s",
				label, detail.Snapshots[label].CorpusKey, key)
		}
	}
}
