package serve

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"github.com/gaugenn/gaugenn/internal/core"
	"github.com/gaugenn/gaugenn/internal/store"
)

// BenchmarkServeQueries measures the query engine per endpoint, indexed
// vs corpus-scan, on a real persisted study. Run with -benchmem: the
// allocs/op column is the regression gate (ci_ceilings in
// BENCH_serve.json), and the indexed/corpus_scan ratio backs the ">=10x
// fewer allocs" claim for /api/models and /api/diff.
//
//	go test -run '^$' -bench BenchmarkServeQueries -benchmem ./internal/serve/
func BenchmarkServeQueries(b *testing.B) {
	// A larger study than the correctness tests use: the corpus-scan
	// baseline's cost scales with corpus records, so a toy corpus would
	// understate exactly the gap the index exists to close.
	dir := b.TempDir()
	cfg := core.DefaultConfig(77, 0.1)
	cfg.UseHTTP = false
	cfg.CacheDir = dir
	cfg.Resume = true
	res, err := core.RunStudy(cfg)
	if err != nil {
		b.Fatal(err)
	}
	st, err := store.Open(dir)
	if err != nil {
		b.Fatal(err)
	}
	id := res.Persist.StudyID
	sum := string(res.Corpus21.SortedUniques()[0].Checksum)
	paths := []struct{ name, path string }{
		{"model", "/api/models/" + sum},
		{"diff", fmt.Sprintf("/api/diff?from=%s&to=%s", id, id)},
		{"study", "/api/studies/" + id},
		{"studies", "/api/studies"},
		{"healthz", "/healthz"},
	}
	engines := []struct {
		name string
		srv  *Server
		cold bool
	}{
		// The cold engine is the pre-index read path under cache
		// pressure (the PR-8 multi-tenant motivation): the corpus LRU is
		// evicted between requests, so every query pays the corpus (or
		// analysis-record) load it paid before the index existed.
		{"cold", New(st, withoutIndex()), true},
		// The warm corpus-scan engine keeps corpora memoised and
		// re-walks them per request — the old steady state.
		{"corpus_scan", New(st, withoutIndex()), false},
		{"indexed", New(st), false},
	}
	for _, eng := range engines {
		h := eng.srv.Handler()
		for _, p := range paths {
			b.Run(p.name+"/"+eng.name, func(b *testing.B) {
				// Warm every cache the engine is allowed to keep, then
				// measure the steady state. Request and recorder are
				// reused across iterations (ServeMux never mutates the
				// request; the recorder just resets its body) so the
				// allocs/op column is the server's work, not the
				// harness's.
				req := httptest.NewRequest("GET", p.path, nil)
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					b.Fatalf("GET %s = %d: %s", p.path, rec.Code, rec.Body.String())
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if eng.cold {
						eng.srv.corpora = newCorpusLRU(0)
					}
					rec.Body.Reset()
					h.ServeHTTP(rec, req)
					if rec.Code != http.StatusOK {
						b.Fatalf("GET %s = %d", p.path, rec.Code)
					}
				}
			})
		}
	}
}
