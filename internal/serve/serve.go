// Package serve exposes persisted studies over HTTP — the query side of
// the content-addressed study store. Everything it answers comes from
// disk: report tables re-render from persisted corpus snapshots, model
// lookups read per-checksum analysis records, and temporal diffs join any
// two persisted corpora. The crawler, extractor and analyser are never
// invoked; `gaugenn study -cache-dir` produces, `gaugenn serve` queries.
//
// Endpoints:
//
//	GET /healthz                      liveness + store census
//	GET /api/studies                  manifest listing (latest per study)
//	GET /api/studies/{id}             one study + per-snapshot dataset stats
//	GET /api/studies/{id}/tables      report tables (all, or ?name=table2.txt as text)
//	GET /api/models/{checksum}        per-model analysis summary
//	GET /api/diff?from=ID[:LABEL]&to=ID[:LABEL]   cross-study churn rows
//
// With a scheduler attached (WithScheduler), the server additionally
// executes studies — the write side (docs/serve.md has the full
// admission/quota/priority/drain contract and SSE resume protocol):
//
//	POST   /api/studies               submit a study spec; 202 + job, or 503/429 + Retry-After
//	GET    /api/jobs                  scheduler job listing
//	GET    /api/studies/{id}/status   one job's lifecycle snapshot
//	GET    /api/studies/{id}/events   resumable SSE event stream (Last-Event-ID cursor)
//	DELETE /api/studies/{id}          cancel a queued or running job
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/gaugenn/gaugenn/internal/analysis"
	"github.com/gaugenn/gaugenn/internal/core"
	"github.com/gaugenn/gaugenn/internal/errs"
	"github.com/gaugenn/gaugenn/internal/index"
	"github.com/gaugenn/gaugenn/internal/nn/graph"
	"github.com/gaugenn/gaugenn/internal/obs"
	"github.com/gaugenn/gaugenn/internal/sched"
	"github.com/gaugenn/gaugenn/internal/store"
)

// Server answers study queries from a persisted store and — when a
// scheduler is attached — accepts, streams and cancels study executions
// (see studies.go and docs/serve.md).
type Server struct {
	st *store.Store

	// corpora memoises loaded corpus snapshots by CAS key, bounded by an
	// LRU: keys are content hashes so entries never go stale, and the
	// bound keeps resident memory independent of how many studies the
	// store accumulates.
	corpora *corpusLRU
	// indexes memoises the per-snapshot query indexes (internal/index)
	// the warm read path answers from; entries are tiny next to decoded
	// corpora, but the same never-stale CAS-key reasoning applies.
	indexes *indexLRU
	// noIndex forces every handler onto the corpus-scan path; tests and
	// benchmarks use it (via withoutIndex) to compare the two engines.
	noIndex bool
	// responses memoises rendered JSON bodies by ETag (content-derived,
	// so never stale): the warm indexed path replays bytes instead of
	// re-rendering.
	responses *respCache

	// manifest caches the parsed study listing keyed by the manifest
	// file's (size, mtime), so /api/studies and reference resolution stop
	// reparsing manifest.jsonl per request (the log is append-only, so
	// any change moves the size).
	manifest struct {
		sync.Mutex
		size    int64
		mtime   time.Time
		entries []store.ManifestEntry
	}

	// fp caches the manifest fingerprint string that keys response-cache
	// entries for manifest-dependent endpoints. Kept separate from the
	// parsed-entries cache above: each memo validates (size, mtime)
	// independently, so refreshing one can never mark the other fresh.
	fp struct {
		sync.Mutex
		size  int64
		mtime time.Time
		s     string
	}

	// census memoises /healthz's store census for censusTTL, so load
	// balancer probes stop scaling with store size (the census walks
	// every blob shard directory when cold).
	censusTTL time.Duration
	census    struct {
		sync.Mutex
		at     time.Time
		counts map[string]int
	}

	// sch, when non-nil, enables the submission API.
	sch *sched.Scheduler
	// sseWriteTimeout bounds each SSE write so a stalled reader cannot
	// pin a handler goroutine.
	sseWriteTimeout time.Duration
}

// Option shapes a Server at construction.
type Option func(*Server)

// WithScheduler attaches a study scheduler, enabling POST /api/studies,
// the per-study SSE event stream, and DELETE cancellation.
func WithScheduler(sch *sched.Scheduler) Option {
	return func(s *Server) { s.sch = sch }
}

// WithCorpusCacheSize bounds the decoded-corpus memoisation (entries, not
// bytes; <= 0 keeps the default of 16 snapshots).
func WithCorpusCacheSize(n int) Option {
	return func(s *Server) { s.corpora = newCorpusLRU(n) }
}

// WithSSEWriteTimeout bounds each SSE write (default 15s): a reader that
// stalls past it is disconnected and resumes with Last-Event-ID.
func WithSSEWriteTimeout(d time.Duration) Option {
	return func(s *Server) {
		if d > 0 {
			s.sseWriteTimeout = d
		}
	}
}

// WithCensusTTL sets how long /healthz reuses its memoised store census
// (default 2s; <= 0 keeps the default). Probes within the TTL cost no
// store I/O at all.
func WithCensusTTL(d time.Duration) Option {
	return func(s *Server) {
		if d > 0 {
			s.censusTTL = d
		}
	}
}

// withoutIndex forces the corpus-scan query engine, bypassing persisted
// and memoised indexes. Unexported: only equivalence tests and the
// cold-baseline benchmark compare the two paths.
func withoutIndex() Option {
	return func(s *Server) { s.noIndex = true }
}

// New creates a server over an opened store.
func New(st *store.Store, opts ...Option) *Server {
	s := &Server{
		st:              st,
		corpora:         newCorpusLRU(0),
		indexes:         newIndexLRU(0),
		responses:       newRespCache(),
		censusTTL:       2 * time.Second,
		sseWriteTimeout: 15 * time.Second,
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Handler returns the server's HTTP routes, each wrapped with request
// counting and latency observation under its pattern label.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	routes := map[string]http.HandlerFunc{
		"GET /healthz":                 s.handleHealth,
		"GET /api/studies":             s.handleStudies,
		"GET /api/studies/{id}":        s.handleStudy,
		"GET /api/studies/{id}/tables": s.handleTables,
		"GET /api/models/{checksum}":   s.handleModel,
		"GET /api/diff":                s.handleDiff,
	}
	if s.sch != nil {
		routes["POST /api/studies"] = s.handleSubmit
		routes["GET /api/studies/{id}/status"] = s.handleJobStatus
		routes["GET /api/studies/{id}/events"] = s.handleJobEvents
		routes["DELETE /api/studies/{id}"] = s.handleJobCancel
		routes["GET /api/jobs"] = s.handleJobs
	}
	for route, h := range routes {
		mux.HandleFunc(route, instrument(route, h))
	}
	return mux
}

// logf reports response-encoding failures; tests swap it to assert.
var logf = log.Printf

// writeJSON encodes v before any byte reaches the wire: an
// unmarshalable value becomes a clean 500 instead of a 200 with a
// truncated body and an unreportable late error, and a client that hung
// up mid-write is logged rather than silently dropped.
func writeJSON(w http.ResponseWriter, status int, v any) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		logf("serve: encoding %T response: %v", v, err)
		http.Error(w, `{"error":"response encoding failed"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if _, err := w.Write(buf.Bytes()); err != nil {
		// Headers are sent; all that is left is to record the loss.
		logf("serve: writing %T response: %v", v, err)
	}
}

func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	counts, err := s.censusCounts()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	census := map[string]any{"status": "ok"}
	for k, n := range counts {
		census[k] = n
	}
	// The warm/cold cache gauges (set when a study run in this process
	// emits its CacheStats event) ride along so probes see the split
	// without scraping /metrics. They are in-memory and current even when
	// the counts above come from the memo.
	if gauges := obs.Default().GaugeSnapshot("gaugenn_study_"); len(gauges) > 0 {
		census["gauges"] = gauges
	}
	w.Header().Set("Cache-Control", "public, max-age=1")
	writeJSON(w, http.StatusOK, census)
}

// censusCounts returns the store census — study count plus per-kind blob
// counts — from a snapshot at most censusTTL old. The cold path walks
// every shard directory of four kinds; the memo makes probe cost
// independent of both probe rate and store size.
func (s *Server) censusCounts() (map[string]int, error) {
	s.census.Lock()
	defer s.census.Unlock()
	if s.census.counts != nil && time.Since(s.census.at) < s.censusTTL {
		return s.census.counts, nil
	}
	studies, err := s.studies()
	if err != nil {
		return nil, fmt.Errorf("reading manifest: %w", err)
	}
	counts := map[string]int{"studies": len(studies)}
	for kind, plural := range map[string]string{
		store.KindReport:   "reports",
		store.KindAnalysis: "analyses",
		store.KindPayload:  "payloads",
		store.KindCorpus:   "corpora",
	} {
		n, err := s.st.Count(kind)
		if err != nil {
			return nil, fmt.Errorf("counting %s: %w", kind, err)
		}
		counts[plural] = n
	}
	s.census.at = time.Now()
	s.census.counts = counts
	return counts, nil
}

// studies returns the manifest listing (latest entry per study), reparsed
// only when the manifest file's (size, mtime) moved.
func (s *Server) studies() ([]store.ManifestEntry, error) {
	size, mtime, ok := s.st.ManifestInfo()
	if !ok {
		return nil, nil
	}
	s.manifest.Lock()
	defer s.manifest.Unlock()
	if s.manifest.entries != nil && s.manifest.size == size && s.manifest.mtime.Equal(mtime) {
		return s.manifest.entries, nil
	}
	entries, err := s.st.Studies()
	if err != nil {
		return nil, err
	}
	s.manifest.size, s.manifest.mtime, s.manifest.entries = size, mtime, entries
	return entries, nil
}

// manifestFP returns a cheap fingerprint of the manifest file — its
// (size, mtime) rendered once and reused until the file moves. Response
// cache keys fold it in so every manifest-dependent entry is invalidated
// by any manifest append, without hashing anything per request.
func (s *Server) manifestFP() string {
	size, mtime, ok := s.st.ManifestInfo()
	if !ok {
		return ""
	}
	s.fp.Lock()
	defer s.fp.Unlock()
	if s.fp.s != "" && s.fp.size == size && s.fp.mtime.Equal(mtime) {
		return s.fp.s
	}
	s.fp.size, s.fp.mtime = size, mtime
	s.fp.s = strconv.FormatInt(size, 10) + ":" + strconv.FormatInt(mtime.UnixNano(), 10)
	return s.fp.s
}

// study resolves one study ID against the cached manifest listing.
func (s *Server) study(id string) (store.ManifestEntry, bool, error) {
	entries, err := s.studies()
	if err != nil {
		return store.ManifestEntry{}, false, err
	}
	for _, e := range entries {
		if e.ID == id {
			return e, true, nil
		}
	}
	return store.ManifestEntry{}, false, nil
}

func (s *Server) handleStudies(w http.ResponseWriter, r *http.Request) {
	// The listing is a pure function of the manifest file: the warm path
	// is one fingerprint reuse and one cache probe.
	ck := "studies\x00" + s.manifestFP()
	if s.served(w, r, ck) {
		return
	}
	studies, err := s.studies()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "reading manifest: %v", err)
		return
	}
	if studies == nil {
		studies = []store.ManifestEntry{}
	}
	// Revalidation stays content-addressed: the ETag hashes the entries'
	// IDs and snapshot keys, not the file metadata keying the cache.
	parts := make([]string, 0, 2*len(studies))
	for _, e := range studies {
		parts = append(parts, e.ID)
		for _, label := range []string{"2020", "2021"} {
			parts = append(parts, e.Snapshots[label])
		}
	}
	etag := etagOf(append([]string{"studies"}, parts...)...)
	if cacheHit(w, r, etag) {
		return
	}
	s.memoJSON(w, ck, etag, studies)
}

// studySnapshot is the per-snapshot detail of a study listing.
type studySnapshot struct {
	CorpusKey string                `json:"corpus_key"`
	Dataset   analysis.DatasetStats `json:"dataset"`
}

func (s *Server) handleStudy(w http.ResponseWriter, r *http.Request) {
	// Keyed by study ID + manifest fingerprint: a re-run study rewrites
	// the manifest, which moves the fingerprint and misses the cache.
	ck := "study\x00" + r.PathValue("id") + "\x00" + s.manifestFP()
	if s.served(w, r, ck) {
		return
	}
	entry, ok, err := s.study(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "reading manifest: %v", err)
		return
	}
	if !ok {
		// Not a persisted study: it may be a scheduler job that has not
		// (or will never) put a manifest entry down.
		if s.sch != nil {
			if j, jerr := s.sch.Job(r.PathValue("id")); jerr == nil {
				writeJSON(w, http.StatusOK, j)
				return
			}
		}
		writeErr(w, http.StatusNotFound, "unknown study %q", r.PathValue("id"))
		return
	}
	// The response is a pure function of the study's snapshot keys (plus
	// the index codec, which decides the dataset-stats representation).
	keys := make([]string, 0, len(entry.Snapshots))
	for _, label := range sortedLabels(entry.Snapshots) {
		keys = append(keys, entry.Snapshots[label])
	}
	etag := etagOf(append([]string{"study", entry.ID}, keys...)...)
	if cacheHit(w, r, etag) {
		return
	}
	snaps := map[string]studySnapshot{}
	for label, key := range entry.Snapshots {
		stats, err := s.datasetStats(r.Context(), key)
		if err != nil {
			// Through the shared mapper so cancellation and corruption get
			// the same statuses here as on /tables and /diff.
			s.writeRefErr(w, err)
			return
		}
		snaps[label] = studySnapshot{CorpusKey: key, Dataset: stats}
	}
	s.memoJSON(w, ck, etag, map[string]any{"study": entry, "snapshots": snaps})
}

// datasetStats answers one snapshot's Table 2 column from its index; the
// corpus-scan fallback (withoutIndex, or an index that cannot be loaded
// or rebuilt) decodes the corpus as the pre-index server did.
func (s *Server) datasetStats(ctx context.Context, key string) (analysis.DatasetStats, error) {
	if !s.noIndex {
		if ix, err := s.index(ctx, key); err == nil {
			return ix.Dataset, nil
		}
	}
	c, err := s.corpus(ctx, key)
	if err != nil {
		return analysis.DatasetStats{}, err
	}
	return c.Dataset(), nil
}

func (s *Server) handleTables(w http.ResponseWriter, r *http.Request) {
	entry, ok, err := s.study(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "reading manifest: %v", err)
		return
	}
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown study %q", r.PathValue("id"))
		return
	}
	// Tables re-render from the two corpus snapshots; the name filter
	// changes the representation, so it is part of the ETag.
	if cacheHit(w, r, etagOf("tables", entry.Snapshots["2020"], entry.Snapshots["2021"], r.URL.Query().Get("name"))) {
		return
	}
	c20, err := s.labelledCorpus(r.Context(), entry, "2020")
	if err != nil {
		s.writeRefErr(w, err)
		return
	}
	c21, err := s.labelledCorpus(r.Context(), entry, "2021")
	if err != nil {
		s.writeRefErr(w, err)
		return
	}
	tables := core.StudyTables(c20, c21)
	if name := r.URL.Query().Get("name"); name != "" {
		text, ok := tables[name]
		if !ok {
			writeErr(w, http.StatusNotFound, "unknown table %q (have %s)", name, strings.Join(core.TableNames(), ", "))
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, text)
		return
	}
	writeJSON(w, http.StatusOK, tables)
}

// codecVersion is index.CodecVersion pre-rendered for ETag derivation.
var codecVersion = strconv.Itoa(index.CodecVersion)

func (s *Server) handleModel(w http.ResponseWriter, r *http.Request) {
	sum := graph.Checksum(r.PathValue("checksum"))
	// The summary is a pure function of the model's content (the checksum
	// names it) and the index codec's notion of a summary — so the cache
	// key needs no manifest fingerprint; a checksum's entry never stales.
	ck := "model\x00" + string(sum)
	if s.served(w, r, ck) {
		return
	}
	etag := etagOf("model", string(sum), codecVersion)
	if cacheHit(w, r, etag) {
		return
	}
	if !s.noIndex {
		if ms, ok := s.modelFromIndexes(r.Context(), sum); ok {
			s.memoJSON(w, ck, etag, ms)
			return
		}
	}
	// Corpus-scan engine, and the fallback for checksums no persisted
	// study covers (e.g. records left by a cancelled run): one analysis
	// record read, decoding the full per-layer profile.
	ms, ok, err := analysis.LoadModelSummary(s.st, sum)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "loading model: %v", err)
		return
	}
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown model checksum %q", sum)
		return
	}
	writeJSON(w, http.StatusOK, ms)
}

// modelFromIndexes probes every persisted snapshot's index for the
// checksum — one binary search per index, no record or corpus decode.
func (s *Server) modelFromIndexes(ctx context.Context, sum graph.Checksum) (*analysis.ModelSummary, bool) {
	studies, err := s.studies()
	if err != nil {
		return nil, false
	}
	for _, e := range studies {
		for _, label := range sortedLabels(e.Snapshots) {
			ix, err := s.index(ctx, e.Snapshots[label])
			if err != nil {
				continue
			}
			if ms, ok := ix.Lookup(sum); ok {
				return ms, true
			}
		}
	}
	return nil, false
}

// diffResponse is the cross-study churn answer.
type diffResponse struct {
	From string              `json:"from"`
	To   string              `json:"to"`
	Rows []analysis.ChurnRow `json:"rows"`
}

func (s *Server) handleDiff(w http.ResponseWriter, r *http.Request) {
	// Keyed by the raw query (argument spellings that normalise to the
	// same diff just occupy separate entries) + manifest fingerprint,
	// since the study→snapshot-key mapping lives in the manifest.
	ck := "diff\x00" + r.URL.RawQuery + "\x00" + s.manifestFP()
	if s.served(w, r, ck) {
		return
	}
	q := r.URL.Query()
	fromArg, toArg := q.Get("from"), q.Get("to")
	if fromArg == "" || toArg == "" {
		writeErr(w, http.StatusBadRequest, "diff needs from=STUDY[:LABEL] and to=STUDY[:LABEL]")
		return
	}
	fromKey, err := s.refKey(fromArg, "2020")
	if err != nil {
		s.writeRefErr(w, err)
		return
	}
	toKey, err := s.refKey(toArg, "2021")
	if err != nil {
		s.writeRefErr(w, err)
		return
	}
	// The churn rows are a pure function of the two corpus snapshots; the
	// arguments ride along because they echo in the response body.
	etag := etagOf("diff", fromArg, toArg, fromKey, toKey)
	if cacheHit(w, r, etag) {
		return
	}
	rows, err := s.diffRows(r.Context(), fromKey, toKey)
	if err != nil {
		s.writeRefErr(w, err)
		return
	}
	if rows == nil {
		rows = []analysis.ChurnRow{}
	}
	s.memoJSON(w, ck, etag, diffResponse{From: fromArg, To: toArg, Rows: rows})
}

// diffRows joins two snapshots' category-membership bitsets (index
// engine) or falls back to the record-multiset TemporalDiff over decoded
// corpora; the two produce identical rows (internal/index's contract,
// pinned by TestIndexedResponsesMatchCorpusScan).
func (s *Server) diffRows(ctx context.Context, fromKey, toKey string) ([]analysis.ChurnRow, error) {
	if !s.noIndex {
		oldIx, err1 := s.index(ctx, fromKey)
		newIx, err2 := s.index(ctx, toKey)
		if err1 == nil && err2 == nil {
			return index.Diff(oldIx, newIx), nil
		}
	}
	old, err := s.corpus(ctx, fromKey)
	if err != nil {
		return nil, err
	}
	new_, err := s.corpus(ctx, toKey)
	if err != nil {
		return nil, err
	}
	return analysis.TemporalDiff(old, new_), nil
}

// refKey resolves a "STUDY[:LABEL]" reference to its corpus CAS key.
func (s *Server) refKey(ref, defaultLabel string) (string, error) {
	id, label := ref, defaultLabel
	if i := strings.LastIndex(ref, ":"); i >= 0 {
		id, label = ref[:i], ref[i+1:]
	}
	entry, ok, err := s.study(id)
	if err != nil {
		return "", err
	}
	if !ok {
		return "", &refError{fmt.Sprintf("unknown study %q", id)}
	}
	key, ok := entry.Snapshots[label]
	if !ok {
		return "", &refError{fmt.Sprintf("study %s has no snapshot %q", entry.ID, label)}
	}
	return key, nil
}

// writeRefErr maps corpus-resolution failures onto HTTP statuses: a bad
// reference (unknown study, missing snapshot label) is the client's 404,
// a cancelled request context gets 499-style treatment (nobody is
// reading, but the handler must still terminate the response), a corrupt
// store blob is a 500 flagged as such, anything else is store I/O.
func (s *Server) writeRefErr(w http.ResponseWriter, err error) {
	if _, notFound := err.(*refError); notFound {
		writeErr(w, http.StatusNotFound, "%v", err)
		return
	}
	if errs.IsContextError(err) {
		writeErr(w, http.StatusServiceUnavailable, "request cancelled: %v", err)
		return
	}
	if errors.Is(err, errs.ErrStoreCorrupt) {
		// Machine-readable repair hint: operators (and probes) can match
		// the header without parsing the error text.
		w.Header().Set("Gaugenn-Hint", "store corrupt; audit and repair with `gaugenn fsck -cache-dir DIR -fix`")
		writeErr(w, http.StatusInternalServerError, "store corrupt: %v", err)
		return
	}
	writeErr(w, http.StatusInternalServerError, "%v", err)
}

func sortedLabels(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// refError marks a corpus reference the caller got wrong (vs. store I/O).
type refError struct{ msg string }

func (e *refError) Error() string { return e.msg }

// refCorpus resolves a "STUDY[:LABEL]" reference to a loaded corpus.
func (s *Server) refCorpus(ctx context.Context, ref, defaultLabel string) (*analysis.Corpus, error) {
	id, label := ref, defaultLabel
	if i := strings.LastIndex(ref, ":"); i >= 0 {
		id, label = ref[:i], ref[i+1:]
	}
	entry, ok, err := s.study(id)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, &refError{fmt.Sprintf("unknown study %q", id)}
	}
	return s.labelledCorpus(ctx, entry, label)
}

func (s *Server) labelledCorpus(ctx context.Context, entry store.ManifestEntry, label string) (*analysis.Corpus, error) {
	key, ok := entry.Snapshots[label]
	if !ok {
		return nil, &refError{fmt.Sprintf("study %s has no snapshot %q", entry.ID, label)}
	}
	return s.corpus(ctx, key)
}

// corpus loads (or reuses) one persisted corpus snapshot by CAS key. ctx
// is the request's context: a client that hung up skips the (potentially
// hundreds-of-MB) decode instead of memoising work nobody will read;
// cached hits are served regardless, since they cost nothing.
func (s *Server) corpus(ctx context.Context, key string) (*analysis.Corpus, error) {
	if c, ok := s.corpora.get(key); ok {
		return c, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	blob, ok, err := s.st.Get(store.KindCorpus, key)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("corpus blob %s missing (manifest out of sync?)", key)
	}
	if err := ctx.Err(); err != nil {
		return nil, err // client gone: skip the decode
	}
	// Counted only when a decode actually happens: the warm-path contract
	// (indexed queries never decode a corpus) is asserted against this.
	corpusDecodes.Add(1)
	metCorpusDecodes.Inc()
	c, err := analysis.DecodeCorpus(blob)
	if err != nil {
		// The blob exists but does not decode: the store itself is damaged
		// (torn write, codec mismatch), not the request.
		return nil, fmt.Errorf("decoding corpus %s: %w: %w", key, errs.ErrStoreCorrupt, err)
	}
	s.corpora.add(key, c)
	return c, nil
}
