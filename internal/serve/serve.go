// Package serve exposes persisted studies over HTTP — the query side of
// the content-addressed study store. Everything it answers comes from
// disk: report tables re-render from persisted corpus snapshots, model
// lookups read per-checksum analysis records, and temporal diffs join any
// two persisted corpora. The crawler, extractor and analyser are never
// invoked; `gaugenn study -cache-dir` produces, `gaugenn serve` queries.
//
// Endpoints:
//
//	GET /healthz                      liveness + store census
//	GET /api/studies                  manifest listing (latest per study)
//	GET /api/studies/{id}             one study + per-snapshot dataset stats
//	GET /api/studies/{id}/tables      report tables (all, or ?name=table2.txt as text)
//	GET /api/models/{checksum}        per-model analysis summary
//	GET /api/diff?from=ID[:LABEL]&to=ID[:LABEL]   cross-study churn rows
//
// With a scheduler attached (WithScheduler), the server additionally
// executes studies — the write side (docs/serve.md has the full
// admission/quota/priority/drain contract and SSE resume protocol):
//
//	POST   /api/studies               submit a study spec; 202 + job, or 503/429 + Retry-After
//	GET    /api/jobs                  scheduler job listing
//	GET    /api/studies/{id}/status   one job's lifecycle snapshot
//	GET    /api/studies/{id}/events   resumable SSE event stream (Last-Event-ID cursor)
//	DELETE /api/studies/{id}          cancel a queued or running job
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"strings"
	"time"

	"github.com/gaugenn/gaugenn/internal/analysis"
	"github.com/gaugenn/gaugenn/internal/core"
	"github.com/gaugenn/gaugenn/internal/errs"
	"github.com/gaugenn/gaugenn/internal/nn/graph"
	"github.com/gaugenn/gaugenn/internal/obs"
	"github.com/gaugenn/gaugenn/internal/sched"
	"github.com/gaugenn/gaugenn/internal/store"
)

// Server answers study queries from a persisted store and — when a
// scheduler is attached — accepts, streams and cancels study executions
// (see studies.go and docs/serve.md).
type Server struct {
	st *store.Store

	// corpora memoises loaded corpus snapshots by CAS key, bounded by an
	// LRU: keys are content hashes so entries never go stale, and the
	// bound keeps resident memory independent of how many studies the
	// store accumulates.
	corpora *corpusLRU

	// sch, when non-nil, enables the submission API.
	sch *sched.Scheduler
	// sseWriteTimeout bounds each SSE write so a stalled reader cannot
	// pin a handler goroutine.
	sseWriteTimeout time.Duration
}

// Option shapes a Server at construction.
type Option func(*Server)

// WithScheduler attaches a study scheduler, enabling POST /api/studies,
// the per-study SSE event stream, and DELETE cancellation.
func WithScheduler(sch *sched.Scheduler) Option {
	return func(s *Server) { s.sch = sch }
}

// WithCorpusCacheSize bounds the decoded-corpus memoisation (entries, not
// bytes; <= 0 keeps the default of 16 snapshots).
func WithCorpusCacheSize(n int) Option {
	return func(s *Server) { s.corpora = newCorpusLRU(n) }
}

// WithSSEWriteTimeout bounds each SSE write (default 15s): a reader that
// stalls past it is disconnected and resumes with Last-Event-ID.
func WithSSEWriteTimeout(d time.Duration) Option {
	return func(s *Server) {
		if d > 0 {
			s.sseWriteTimeout = d
		}
	}
}

// New creates a server over an opened store.
func New(st *store.Store, opts ...Option) *Server {
	s := &Server{st: st, corpora: newCorpusLRU(0), sseWriteTimeout: 15 * time.Second}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Handler returns the server's HTTP routes, each wrapped with request
// counting and latency observation under its pattern label.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	routes := map[string]http.HandlerFunc{
		"GET /healthz":                 s.handleHealth,
		"GET /api/studies":             s.handleStudies,
		"GET /api/studies/{id}":        s.handleStudy,
		"GET /api/studies/{id}/tables": s.handleTables,
		"GET /api/models/{checksum}":   s.handleModel,
		"GET /api/diff":                s.handleDiff,
	}
	if s.sch != nil {
		routes["POST /api/studies"] = s.handleSubmit
		routes["GET /api/studies/{id}/status"] = s.handleJobStatus
		routes["GET /api/studies/{id}/events"] = s.handleJobEvents
		routes["DELETE /api/studies/{id}"] = s.handleJobCancel
		routes["GET /api/jobs"] = s.handleJobs
	}
	for route, h := range routes {
		mux.HandleFunc(route, instrument(route, h))
	}
	return mux
}

// logf reports response-encoding failures; tests swap it to assert.
var logf = log.Printf

// writeJSON encodes v before any byte reaches the wire: an
// unmarshalable value becomes a clean 500 instead of a 200 with a
// truncated body and an unreportable late error, and a client that hung
// up mid-write is logged rather than silently dropped.
func writeJSON(w http.ResponseWriter, status int, v any) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		logf("serve: encoding %T response: %v", v, err)
		http.Error(w, `{"error":"response encoding failed"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if _, err := w.Write(buf.Bytes()); err != nil {
		// Headers are sent; all that is left is to record the loss.
		logf("serve: writing %T response: %v", v, err)
	}
}

func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	census := map[string]any{"status": "ok"}
	studies, err := s.st.Studies()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "reading manifest: %v", err)
		return
	}
	census["studies"] = len(studies)
	// The warm/cold cache gauges (set when a study run in this process
	// emits its CacheStats event) ride along so probes see the split
	// without scraping /metrics.
	if gauges := obs.Default().GaugeSnapshot("gaugenn_study_"); len(gauges) > 0 {
		census["gauges"] = gauges
	}
	for kind, plural := range map[string]string{
		store.KindReport:   "reports",
		store.KindAnalysis: "analyses",
		store.KindPayload:  "payloads",
		store.KindCorpus:   "corpora",
	} {
		n, err := s.st.Count(kind)
		if err != nil {
			writeErr(w, http.StatusInternalServerError, "counting %s: %v", kind, err)
			return
		}
		census[plural] = n
	}
	writeJSON(w, http.StatusOK, census)
}

func (s *Server) handleStudies(w http.ResponseWriter, r *http.Request) {
	studies, err := s.st.Studies()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "reading manifest: %v", err)
		return
	}
	if studies == nil {
		studies = []store.ManifestEntry{}
	}
	writeJSON(w, http.StatusOK, studies)
}

// studySnapshot is the per-snapshot detail of a study listing.
type studySnapshot struct {
	CorpusKey string                `json:"corpus_key"`
	Dataset   analysis.DatasetStats `json:"dataset"`
}

func (s *Server) handleStudy(w http.ResponseWriter, r *http.Request) {
	entry, ok, err := s.st.Study(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "reading manifest: %v", err)
		return
	}
	if !ok {
		// Not a persisted study: it may be a scheduler job that has not
		// (or will never) put a manifest entry down.
		if s.sch != nil {
			if j, jerr := s.sch.Job(r.PathValue("id")); jerr == nil {
				writeJSON(w, http.StatusOK, j)
				return
			}
		}
		writeErr(w, http.StatusNotFound, "unknown study %q", r.PathValue("id"))
		return
	}
	snaps := map[string]studySnapshot{}
	for label, key := range entry.Snapshots {
		c, err := s.corpus(r.Context(), key)
		if err != nil {
			// Through the shared mapper so cancellation and corruption get
			// the same statuses here as on /tables and /diff.
			s.writeRefErr(w, err)
			return
		}
		snaps[label] = studySnapshot{CorpusKey: key, Dataset: c.Dataset()}
	}
	writeJSON(w, http.StatusOK, map[string]any{"study": entry, "snapshots": snaps})
}

func (s *Server) handleTables(w http.ResponseWriter, r *http.Request) {
	entry, ok, err := s.st.Study(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "reading manifest: %v", err)
		return
	}
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown study %q", r.PathValue("id"))
		return
	}
	c20, err := s.labelledCorpus(r.Context(), entry, "2020")
	if err != nil {
		s.writeRefErr(w, err)
		return
	}
	c21, err := s.labelledCorpus(r.Context(), entry, "2021")
	if err != nil {
		s.writeRefErr(w, err)
		return
	}
	tables := core.StudyTables(c20, c21)
	if name := r.URL.Query().Get("name"); name != "" {
		text, ok := tables[name]
		if !ok {
			writeErr(w, http.StatusNotFound, "unknown table %q (have %s)", name, strings.Join(core.TableNames(), ", "))
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, text)
		return
	}
	writeJSON(w, http.StatusOK, tables)
}

func (s *Server) handleModel(w http.ResponseWriter, r *http.Request) {
	sum := graph.Checksum(r.PathValue("checksum"))
	ms, ok, err := analysis.LoadModelSummary(s.st, sum)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "loading model: %v", err)
		return
	}
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown model checksum %q", sum)
		return
	}
	writeJSON(w, http.StatusOK, ms)
}

// diffResponse is the cross-study churn answer.
type diffResponse struct {
	From string              `json:"from"`
	To   string              `json:"to"`
	Rows []analysis.ChurnRow `json:"rows"`
}

func (s *Server) handleDiff(w http.ResponseWriter, r *http.Request) {
	fromArg, toArg := r.URL.Query().Get("from"), r.URL.Query().Get("to")
	if fromArg == "" || toArg == "" {
		writeErr(w, http.StatusBadRequest, "diff needs from=STUDY[:LABEL] and to=STUDY[:LABEL]")
		return
	}
	old, err := s.refCorpus(r.Context(), fromArg, "2020")
	if err != nil {
		s.writeRefErr(w, err)
		return
	}
	new_, err := s.refCorpus(r.Context(), toArg, "2021")
	if err != nil {
		s.writeRefErr(w, err)
		return
	}
	rows := analysis.TemporalDiff(old, new_)
	if rows == nil {
		rows = []analysis.ChurnRow{}
	}
	writeJSON(w, http.StatusOK, diffResponse{From: fromArg, To: toArg, Rows: rows})
}

// writeRefErr maps corpus-resolution failures onto HTTP statuses: a bad
// reference (unknown study, missing snapshot label) is the client's 404,
// a cancelled request context gets 499-style treatment (nobody is
// reading, but the handler must still terminate the response), a corrupt
// store blob is a 500 flagged as such, anything else is store I/O.
func (s *Server) writeRefErr(w http.ResponseWriter, err error) {
	if _, notFound := err.(*refError); notFound {
		writeErr(w, http.StatusNotFound, "%v", err)
		return
	}
	if errs.IsContextError(err) {
		writeErr(w, http.StatusServiceUnavailable, "request cancelled: %v", err)
		return
	}
	if errors.Is(err, errs.ErrStoreCorrupt) {
		// Machine-readable repair hint: operators (and probes) can match
		// the header without parsing the error text.
		w.Header().Set("Gaugenn-Hint", "store corrupt; audit and repair with `gaugenn fsck -cache-dir DIR -fix`")
		writeErr(w, http.StatusInternalServerError, "store corrupt: %v", err)
		return
	}
	writeErr(w, http.StatusInternalServerError, "%v", err)
}

// refError marks a corpus reference the caller got wrong (vs. store I/O).
type refError struct{ msg string }

func (e *refError) Error() string { return e.msg }

// refCorpus resolves a "STUDY[:LABEL]" reference to a loaded corpus.
func (s *Server) refCorpus(ctx context.Context, ref, defaultLabel string) (*analysis.Corpus, error) {
	id, label := ref, defaultLabel
	if i := strings.LastIndex(ref, ":"); i >= 0 {
		id, label = ref[:i], ref[i+1:]
	}
	entry, ok, err := s.st.Study(id)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, &refError{fmt.Sprintf("unknown study %q", id)}
	}
	return s.labelledCorpus(ctx, entry, label)
}

func (s *Server) labelledCorpus(ctx context.Context, entry store.ManifestEntry, label string) (*analysis.Corpus, error) {
	key, ok := entry.Snapshots[label]
	if !ok {
		return nil, &refError{fmt.Sprintf("study %s has no snapshot %q", entry.ID, label)}
	}
	return s.corpus(ctx, key)
}

// corpus loads (or reuses) one persisted corpus snapshot by CAS key. ctx
// is the request's context: a client that hung up skips the (potentially
// hundreds-of-MB) decode instead of memoising work nobody will read;
// cached hits are served regardless, since they cost nothing.
func (s *Server) corpus(ctx context.Context, key string) (*analysis.Corpus, error) {
	if c, ok := s.corpora.get(key); ok {
		return c, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	blob, ok, err := s.st.Get(store.KindCorpus, key)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("corpus blob %s missing (manifest out of sync?)", key)
	}
	if err := ctx.Err(); err != nil {
		return nil, err // client gone: skip the decode
	}
	c, err := analysis.DecodeCorpus(blob)
	if err != nil {
		// The blob exists but does not decode: the store itself is damaged
		// (torn write, codec mismatch), not the request.
		return nil, fmt.Errorf("decoding corpus %s: %w: %w", key, errs.ErrStoreCorrupt, err)
	}
	s.corpora.add(key, c)
	return c, nil
}
