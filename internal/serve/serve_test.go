package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"

	"github.com/gaugenn/gaugenn/internal/analysis"
	"github.com/gaugenn/gaugenn/internal/core"
	"github.com/gaugenn/gaugenn/internal/store"
)

// persistedStudy runs one cached study and returns the store, the study's
// manifest ID and the in-memory result for cross-checking.
func persistedStudy(t testing.TB) (*store.Store, string, *core.StudyResult) {
	t.Helper()
	dir := t.TempDir()
	cfg := core.DefaultConfig(77, 0.025)
	cfg.UseHTTP = false
	cfg.CacheDir = dir
	cfg.Resume = true
	res, err := core.RunStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return st, res.Persist.StudyID, res
}

func get(t *testing.T, srv *httptest.Server, path string, wantStatus int) []byte {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s = %d, want %d: %s", path, resp.StatusCode, wantStatus, body)
	}
	return body
}

func TestServeEndToEnd(t *testing.T) {
	st, id, res := persistedStudy(t)
	srv := httptest.NewServer(New(st).Handler())
	defer srv.Close()

	// Health reports the store census.
	var health map[string]any
	if err := json.Unmarshal(get(t, srv, "/healthz", 200), &health); err != nil {
		t.Fatal(err)
	}
	if health["status"] != "ok" || health["studies"].(float64) != 1 {
		t.Fatalf("health: %v", health)
	}
	if health["analyses"].(float64) == 0 || health["reports"].(float64) == 0 {
		t.Fatalf("health census empty: %v", health)
	}

	// Studies listing surfaces the persisted run.
	var studies []store.ManifestEntry
	if err := json.Unmarshal(get(t, srv, "/api/studies", 200), &studies); err != nil {
		t.Fatal(err)
	}
	if len(studies) != 1 || studies[0].ID != id {
		t.Fatalf("studies: %+v", studies)
	}

	// Study detail includes dataset stats matching the in-memory run.
	var detail struct {
		Snapshots map[string]struct {
			Dataset analysis.DatasetStats `json:"dataset"`
		} `json:"snapshots"`
	}
	if err := json.Unmarshal(get(t, srv, "/api/studies/"+id, 200), &detail); err != nil {
		t.Fatal(err)
	}
	if got := detail.Snapshots["2021"].Dataset; !reflect.DeepEqual(got, res.Corpus21.Dataset()) {
		t.Fatalf("served dataset %+v != computed %+v", got, res.Corpus21.Dataset())
	}

	// Report tables are byte-identical to the in-memory render.
	want := core.StudyTables(res.Corpus20, res.Corpus21)
	var tables map[string]string
	if err := json.Unmarshal(get(t, srv, "/api/studies/"+id+"/tables", 200), &tables); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tables, want) {
		t.Fatal("served tables diverge from the in-memory study")
	}
	raw := get(t, srv, "/api/studies/"+id+"/tables?name=table2.txt", 200)
	if string(raw) != want["table2.txt"] {
		t.Fatal("raw table render diverges")
	}
	get(t, srv, "/api/studies/"+id+"/tables?name=nope.txt", 404)

	// Model lookup by checksum answers from the analysis CAS.
	uniques := res.Corpus21.SortedUniques()
	if len(uniques) == 0 {
		t.Fatal("degenerate study")
	}
	u := uniques[0]
	var ms analysis.ModelSummary
	if err := json.Unmarshal(get(t, srv, "/api/models/"+string(u.Checksum), 200), &ms); err != nil {
		t.Fatal(err)
	}
	if ms.Name != u.Name || ms.Task != u.Task.String() || ms.FLOPs != u.Profile.FLOPs {
		t.Fatalf("model summary %+v != unique %s/%s", ms, u.Name, u.Task)
	}
	get(t, srv, "/api/models/00000000000000000000000000000000", 404)
	get(t, srv, "/api/models/not-a-checksum", 404)

	// Temporal diff between the two persisted snapshots matches the
	// in-memory analysis.
	var diff struct {
		Rows []analysis.ChurnRow `json:"rows"`
	}
	path := fmt.Sprintf("/api/diff?from=%s:2020&to=%s:2021", id, id)
	if err := json.Unmarshal(get(t, srv, path, 200), &diff); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(diff.Rows, analysis.TemporalDiff(res.Corpus20, res.Corpus21)) {
		t.Fatal("served diff diverges from in-memory diff")
	}
	// Default labels: from defaults to 2020, to defaults to 2021.
	var defDiff struct {
		Rows []analysis.ChurnRow `json:"rows"`
	}
	if err := json.Unmarshal(get(t, srv, fmt.Sprintf("/api/diff?from=%s&to=%s", id, id), 200), &defDiff); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(defDiff.Rows, diff.Rows) {
		t.Fatal("default-label diff diverges")
	}

	get(t, srv, "/api/diff?from="+id, 400)
	get(t, srv, fmt.Sprintf("/api/diff?from=nope&to=%s", id), 404)
	get(t, srv, fmt.Sprintf("/api/diff?from=%s:1999&to=%s", id, id), 404)
	get(t, srv, "/api/studies/unknown-study", 404)
	get(t, srv, "/api/studies/unknown-study/tables", 404)
}

func TestServeEmptyStore(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(New(st).Handler())
	defer srv.Close()
	var health map[string]any
	if err := json.Unmarshal(get(t, srv, "/healthz", 200), &health); err != nil {
		t.Fatal(err)
	}
	if health["studies"].(float64) != 0 {
		t.Fatalf("empty store health: %v", health)
	}
	body := get(t, srv, "/api/studies", 200)
	var studies []store.ManifestEntry
	if err := json.Unmarshal(body, &studies); err != nil || len(studies) != 0 {
		t.Fatalf("empty store studies: %s err=%v", body, err)
	}
}
