package serve

import (
	"container/list"
	"context"
	"sync"
	"sync/atomic"

	"github.com/gaugenn/gaugenn/internal/index"
)

// corpusDecodes counts corpus decodes performed by this process's serve
// path. The warm-path contract — indexed endpoints never decode a corpus
// — is asserted against it by TestWarmPathDecodesNoCorpus.
var corpusDecodes atomic.Int64

// indexLRU bounds the per-CAS-key index memoisation, mirroring corpusLRU.
// Indexes are orders of magnitude smaller than decoded corpora (columns
// and bitsets, no per-layer profiles), so the bound is generous; it
// exists so a store with thousands of snapshots cannot grow the process
// without limit.
type indexLRU struct {
	mu    sync.Mutex
	max   int
	order *list.List // front = most recently used; values are *indexEntry
	items map[string]*list.Element
}

type indexEntry struct {
	key string
	ix  *index.Index
}

// defaultIndexCache holds many more entries than the corpus LRU because
// each one is cheap to keep resident.
const defaultIndexCache = 256

func newIndexLRU(max int) *indexLRU {
	if max <= 0 {
		max = defaultIndexCache
	}
	return &indexLRU{max: max, order: list.New(), items: map[string]*list.Element{}}
}

func (l *indexLRU) get(key string) (*index.Index, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	el, ok := l.items[key]
	if !ok {
		return nil, false
	}
	l.order.MoveToFront(el)
	return el.Value.(*indexEntry).ix, true
}

func (l *indexLRU) add(key string, ix *index.Index) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if el, ok := l.items[key]; ok {
		l.order.MoveToFront(el)
		el.Value.(*indexEntry).ix = ix
		return
	}
	l.items[key] = l.order.PushFront(&indexEntry{key: key, ix: ix})
	for len(l.items) > l.max {
		oldest := l.order.Back()
		ent := oldest.Value.(*indexEntry)
		l.order.Remove(oldest)
		delete(l.items, ent.key)
	}
	metIndexResident.SetInt(int64(len(l.items)))
}

// index returns one snapshot's query index by corpus CAS key: memoised,
// else loaded from the store, else rebuilt from the corpus (the lazy
// path for stores populated before the index kind existed, and the
// self-heal path for corrupt index blobs — both read as a load miss).
// A rebuild is persisted best-effort: if the write fails the request is
// still answered from the in-memory index, and the next cold process
// rebuilds again (eviction-safe fallback).
func (s *Server) index(ctx context.Context, key string) (*index.Index, error) {
	if ix, ok := s.indexes.get(key); ok {
		return ix, nil
	}
	if ix, ok := index.Load(s.st, key); ok {
		s.indexes.add(key, ix)
		return ix, nil
	}
	c, err := s.corpus(ctx, key)
	if err != nil {
		return nil, err
	}
	ix := index.BuildStore(s.st, c)
	metIndexBuilds.Inc()
	if err := index.Persist(s.st, key, ix); err != nil {
		logf("serve: persisting rebuilt index %s: %v", key, err)
	}
	s.indexes.add(key, ix)
	return ix, nil
}
