package serve

import (
	"context"
	"errors"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/gaugenn/gaugenn/internal/errs"
	"github.com/gaugenn/gaugenn/internal/store"
)

// TestServeRequestContextHonoured: a request whose context is already
// dead must not pay for (or memoise) a corpus decode — the handler
// terminates with a 503 and the memo cache stays empty.
func TestServeRequestContextHonoured(t *testing.T) {
	st, id, _ := persistedStudy(t)
	s := New(st)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest("GET", "/api/studies/"+id+"/tables", nil).WithContext(ctx)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != 503 {
		t.Fatalf("dead-context request = %d: %s", rec.Code, rec.Body.String())
	}
	if cached := s.corpora.len(); cached != 0 {
		t.Fatalf("cancelled request memoised %d corpora", cached)
	}

	// A live request afterwards serves normally.
	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/api/studies/"+id+"/tables", nil))
	if rec.Code != 200 {
		t.Fatalf("live request after cancelled one = %d", rec.Code)
	}
}

// TestServeCorruptCorpusSurfacesSentinel: a torn corpus blob maps to a
// 500 tagged "store corrupt", and the loader's error matches the public
// sentinel.
func TestServeCorruptCorpusSurfacesSentinel(t *testing.T) {
	st, id, res := persistedStudy(t)
	// Overwrite one snapshot's corpus blob with junk. Corpus blobs are
	// content-keyed (write-once in Put), so corrupt it via a fresh store
	// handle writing directly to the blob path is not exposed — instead
	// decode through the server after truncating the blob on disk.
	key := res.Persist.CorpusKeys["2021"]
	if key == "" {
		t.Fatal("no corpus key")
	}
	corruptBlob(t, st, key)
	s := New(st)
	_, err := s.corpus(context.Background(), key)
	if !errors.Is(err, errs.ErrStoreCorrupt) {
		t.Fatalf("corrupt blob error = %v, want ErrStoreCorrupt on the chain", err)
	}
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/api/studies/"+id+"/tables", nil))
	if rec.Code != 500 || !strings.Contains(rec.Body.String(), "store corrupt") {
		t.Fatalf("corrupt store request = %d: %s", rec.Code, rec.Body.String())
	}
	if hint := rec.Header().Get("Gaugenn-Hint"); !strings.Contains(hint, "fsck") {
		t.Fatalf("corrupt store response carries no fsck repair hint: %q", hint)
	}
}

// corruptBlob truncates a corpus blob in place on disk, bypassing the
// store's write-once Put (which would refuse to overwrite a
// content-keyed blob). The path mirrors the store's git-style sharding.
func corruptBlob(t *testing.T, st *store.Store, key string) {
	t.Helper()
	data, ok, err := st.Get(store.KindCorpus, key)
	if err != nil || !ok {
		t.Fatalf("blob %s: ok=%v err=%v", key, ok, err)
	}
	if len(data) < 10 {
		t.Fatal("blob too small to corrupt meaningfully")
	}
	path := filepath.Join(st.Dir(), store.KindCorpus, key[:2], key)
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
}
