// Package fsck verifies (and optionally repairs) a persistent study store
// against the corruption classes a crashed writer, a flaky disk, or the
// fault injector can produce: bit-flipped or truncated blobs, garbage
// appended past a record's end, and torn manifest tails.
//
// Every blob kind has a definite validity check — corpus blobs hash to
// their key, graph blobs decode and re-derive their checksum key, sealed
// records (payload, analysis, report, index) verify their embedded
// digest (index blobs additionally satisfy structural invariants) — so
// fsck never guesses. Repair is conservative: corrupt derived records are
// quarantined (moved aside, never deleted) for the next warm run to
// recompute, and the manifest is rewritten keeping exactly its valid
// lines. A repaired store warm-resumes as if the corrupt records had
// never been written.
package fsck

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"github.com/gaugenn/gaugenn/internal/analysis"
	"github.com/gaugenn/gaugenn/internal/extract"
	"github.com/gaugenn/gaugenn/internal/index"
	"github.com/gaugenn/gaugenn/internal/nn/graph"
	"github.com/gaugenn/gaugenn/internal/store"
)

// Issue is one problem found in the store.
type Issue struct {
	// Kind is the blob kind ("report", "graph", ...) or "manifest".
	Kind string
	// Key is the blob key; empty for manifest issues.
	Key string
	// Problem describes what failed validation.
	Problem string
	// Fixed reports whether a repair was applied (quarantine or trim).
	Fixed bool
}

func (i Issue) String() string {
	s := i.Kind
	if i.Key != "" {
		s += "/" + i.Key
	}
	s += ": " + i.Problem
	if i.Fixed {
		s += " (fixed)"
	}
	return s
}

// Result summarises one fsck pass.
type Result struct {
	// Scanned counts the blobs examined, per kind.
	Scanned map[string]int
	// ManifestEntries counts the manifest's valid entries.
	ManifestEntries int
	// Issues lists every problem found, in deterministic order.
	Issues []Issue
}

// Clean reports whether the pass found nothing wrong.
func (r *Result) Clean() bool { return len(r.Issues) == 0 }

// Options controls a pass.
type Options struct {
	// Fix applies repairs: corrupt blobs are quarantined under
	// <dir>/quarantine/<kind>/<key>, the manifest is rewritten without
	// its invalid lines. False is a read-only audit.
	Fix bool
}

// kinds in deterministic scan order.
var kinds = []string{store.KindAnalysis, store.KindCorpus, store.KindGraph, store.KindIndex, store.KindPayload, store.KindReport}

// Run audits the study store rooted at dir. It operates on the real
// filesystem (fsck is an offline tool; nothing else may hold the store).
func Run(dir string, opts Options) (*Result, error) {
	if _, err := os.Stat(dir); err != nil {
		return nil, fmt.Errorf("fsck: %w", err)
	}
	res := &Result{Scanned: map[string]int{}}
	for _, kind := range kinds {
		if err := checkKind(dir, kind, opts, res); err != nil {
			return nil, err
		}
	}
	if err := checkManifest(dir, opts, res); err != nil {
		return nil, err
	}
	return res, nil
}

// checkKind walks one kind's shard directories and validates every blob.
func checkKind(dir, kind string, opts Options, res *Result) error {
	shards, err := os.ReadDir(filepath.Join(dir, kind))
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("fsck: %w", err)
	}
	for _, sh := range shards {
		if !sh.IsDir() {
			continue
		}
		blobs, err := os.ReadDir(filepath.Join(dir, kind, sh.Name()))
		if err != nil {
			return fmt.Errorf("fsck: %w", err)
		}
		for _, b := range blobs {
			if b.IsDir() || b.Name()[0] == '.' {
				continue
			}
			key := b.Name()
			path := filepath.Join(dir, kind, sh.Name(), key)
			res.Scanned[kind]++
			data, err := os.ReadFile(path)
			if err != nil {
				return fmt.Errorf("fsck: %w", err)
			}
			verr := validateBlob(kind, key, data)
			if verr == nil {
				continue
			}
			issue := Issue{Kind: kind, Key: key, Problem: verr.Error()}
			if opts.Fix {
				if err := quarantineBlob(dir, kind, key, path); err != nil {
					return err
				}
				issue.Fixed = true
			}
			res.Issues = append(res.Issues, issue)
		}
	}
	// ReadDir returns sorted names, so issues are already deterministic
	// within a kind; kinds run in fixed order.
	return nil
}

// validateBlob applies the kind-specific validity check.
func validateBlob(kind, key string, data []byte) error {
	switch kind {
	case store.KindCorpus:
		sum := sha256.Sum256(data)
		if store.HexKey(sum[:]) != key {
			return fmt.Errorf("content hash %s does not match key", store.HexKey(sum[:])[:12])
		}
		return nil
	case store.KindGraph:
		g, err := graph.DecodeBinary(data)
		if err != nil {
			return fmt.Errorf("graph does not decode: %v", err)
		}
		if string(graph.ModelChecksum(g)) != key {
			return fmt.Errorf("decoded graph's checksum does not match key")
		}
		return nil
	case store.KindAnalysis:
		return analysis.ValidateAnalysisRecord(data)
	case store.KindPayload:
		return analysis.ValidatePayloadRecord(data)
	case store.KindReport:
		_, err := extract.DecodeReport(data)
		return err
	case store.KindIndex:
		return index.Validate(data)
	}
	return fmt.Errorf("unknown kind %q", kind)
}

// quarantineBlob moves a corrupt blob aside so a warm run sees a miss and
// recomputes; the bytes survive under quarantine/ for post-mortems.
func quarantineBlob(dir, kind, key, path string) error {
	qdir := filepath.Join(dir, "quarantine", kind)
	if err := os.MkdirAll(qdir, 0o755); err != nil {
		return fmt.Errorf("fsck: %w", err)
	}
	if err := os.Rename(path, filepath.Join(qdir, key)); err != nil {
		return fmt.Errorf("fsck: quarantining %s/%s: %w", kind, key, err)
	}
	return nil
}

// checkManifest validates the study log line by line. With Fix, the file
// is rewritten atomically keeping exactly the valid lines — trimming a
// torn tail, dropping bit-flipped entries — preserving order.
func checkManifest(dir string, opts Options, res *Result) error {
	path := filepath.Join(dir, "manifest.jsonl")
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("fsck: %w", err)
	}
	torn := len(raw) > 0 && raw[len(raw)-1] != '\n'
	var valid [][]byte
	invalid := 0
	for _, line := range bytes.Split(raw, []byte{'\n'}) {
		trimmed := bytes.TrimSpace(line)
		if len(trimmed) == 0 {
			continue
		}
		var e store.ManifestEntry
		if json.Unmarshal(trimmed, &e) != nil || e.ID == "" {
			invalid++
			continue
		}
		valid = append(valid, trimmed)
		// Dangling corpus references are reported but never "fixed": the
		// entry is true provenance, the blob is what's missing.
		for _, label := range sortedLabels(e.Snapshots) {
			key := e.Snapshots[label]
			if len(key) < 4 {
				res.Issues = append(res.Issues, Issue{
					Kind:    "manifest",
					Key:     e.ID,
					Problem: fmt.Sprintf("snapshot %s has malformed corpus key %q", label, key),
				})
				continue
			}
			if _, err := os.Stat(filepath.Join(dir, store.KindCorpus, key[:2], key)); err != nil {
				res.Issues = append(res.Issues, Issue{
					Kind:    "manifest",
					Key:     e.ID,
					Problem: fmt.Sprintf("snapshot %s references missing corpus %s", label, key[:12]),
				})
			}
		}
	}
	res.ManifestEntries = len(valid)
	if invalid == 0 && !torn {
		return nil
	}
	problem := fmt.Sprintf("%d invalid line(s)", invalid)
	if torn {
		problem += ", torn tail"
	}
	issue := Issue{Kind: "manifest", Problem: problem}
	if opts.Fix {
		var buf bytes.Buffer
		for _, l := range valid {
			buf.Write(l)
			buf.WriteByte('\n')
		}
		if err := writeAtomic(path, buf.Bytes()); err != nil {
			return err
		}
		issue.Fixed = true
	}
	res.Issues = append(res.Issues, issue)
	return nil
}

func sortedLabels(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func writeAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".fsck-*")
	if err != nil {
		return fmt.Errorf("fsck: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("fsck: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("fsck: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("fsck: %w", err)
	}
	return nil
}
