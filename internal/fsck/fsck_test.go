package fsck

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"github.com/gaugenn/gaugenn/internal/core"
	"github.com/gaugenn/gaugenn/internal/faults"
	"github.com/gaugenn/gaugenn/internal/store"
)

// The suite audits a real store populated by a real (small) study, then
// corrupts it with the same helpers the chaos tests use. Populating is
// expensive, so one seed store is built lazily and copied per test.
var (
	seedOnce sync.Once
	seedDir  string
	seedErr  error
)

func TestMain(m *testing.M) {
	code := m.Run()
	if seedDir != "" {
		os.RemoveAll(seedDir)
	}
	os.Exit(code)
}

func populatedStore(t *testing.T) string {
	t.Helper()
	seedOnce.Do(func() {
		seedDir, seedErr = os.MkdirTemp("", "fsck-seed-")
		if seedErr != nil {
			return
		}
		cfg := core.DefaultConfig(77, 0.02)
		cfg.CacheDir = seedDir
		cfg.Resume = true
		_, seedErr = core.RunStudy(cfg)
	})
	if seedErr != nil {
		t.Fatalf("populating seed store: %v", seedErr)
	}
	dst := t.TempDir()
	copyTree(t, seedDir, dst)
	return dst
}

func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.WalkDir(src, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if d.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		in, err := os.Open(path)
		if err != nil {
			return err
		}
		defer in.Close()
		out, err := os.Create(target)
		if err != nil {
			return err
		}
		if _, err := io.Copy(out, in); err != nil {
			out.Close()
			return err
		}
		return out.Close()
	})
	if err != nil {
		t.Fatalf("copying store: %v", err)
	}
}

// firstBlob returns the path and key of the lexically first blob of kind.
func firstBlob(t *testing.T, dir, kind string) (path, key string) {
	t.Helper()
	shards, err := os.ReadDir(filepath.Join(dir, kind))
	if err != nil {
		t.Fatalf("store has no %s blobs: %v", kind, err)
	}
	for _, sh := range shards {
		blobs, err := os.ReadDir(filepath.Join(dir, kind, sh.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range blobs {
			if !b.IsDir() {
				return filepath.Join(dir, kind, sh.Name(), b.Name()), b.Name()
			}
		}
	}
	t.Fatalf("store has no %s blobs", kind)
	return "", ""
}

func TestCleanStorePasses(t *testing.T) {
	dir := populatedStore(t)
	res, err := Run(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Clean() {
		t.Fatalf("fresh store reported issues: %v", res.Issues)
	}
	for _, kind := range []string{store.KindCorpus, store.KindReport, store.KindAnalysis, store.KindGraph, store.KindIndex} {
		if res.Scanned[kind] == 0 {
			t.Fatalf("scanned no %s blobs: %v", kind, res.Scanned)
		}
	}
	if res.ManifestEntries == 0 {
		t.Fatal("no manifest entries scanned")
	}
}

// TestCorruptionDetectFixRoundTrip corrupts one blob of every kind — a
// different corruption class per kind, covering all three helpers — then
// checks detect → fix (quarantine) → clean.
func TestCorruptionDetectFixRoundTrip(t *testing.T) {
	dir := populatedStore(t)
	corrupted := map[string]string{} // kind -> key
	corrupt := func(kind string, mangle func(path string) error) {
		path, key := firstBlob(t, dir, kind)
		if err := mangle(path); err != nil {
			t.Fatalf("corrupting %s/%s: %v", kind, key, err)
		}
		corrupted[kind] = key
	}
	corrupt(store.KindCorpus, func(p string) error { return faults.FlipBit(p, 11) })
	corrupt(store.KindReport, func(p string) error { return faults.FlipBit(p, 200) })
	corrupt(store.KindGraph, func(p string) error { return faults.Truncate(p, 0.5) })
	corrupt(store.KindAnalysis, func(p string) error { return faults.AppendGarbage(p, "{torn") })
	corrupt(store.KindPayload, func(p string) error { return faults.Truncate(p, 0.3) })
	corrupt(store.KindIndex, func(p string) error { return faults.FlipBit(p, 50) })

	audit, err := Run(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	found := map[string]bool{}
	for _, is := range audit.Issues {
		if is.Fixed {
			t.Fatalf("audit-only pass claims a fix: %v", is)
		}
		if corrupted[is.Kind] == is.Key {
			found[is.Kind] = true
		} else {
			t.Fatalf("issue outside the corrupted set: %v", is)
		}
	}
	for kind, key := range corrupted {
		if !found[kind] {
			t.Fatalf("corruption of %s/%s went undetected; issues: %v", kind, key, audit.Issues)
		}
	}

	// Fix quarantines all six blobs. Quarantining the corpus blob leaves
	// the manifest's snapshot reference dangling — reported, never "fixed"
	// (the entry is true provenance; the blob is what's missing).
	fixed, err := Run(dir, Options{Fix: true})
	if err != nil {
		t.Fatal(err)
	}
	var dangling int
	for _, is := range fixed.Issues {
		if is.Kind == "manifest" {
			dangling++
			continue
		}
		if !is.Fixed {
			t.Fatalf("fix pass left issue unfixed: %v", is)
		}
		if _, err := os.Stat(filepath.Join(dir, "quarantine", is.Kind, is.Key)); err != nil {
			t.Fatalf("corrupt blob not quarantined: %v", err)
		}
	}
	if len(fixed.Issues)-dangling != len(audit.Issues) {
		t.Fatalf("fix pass fixed %d blob issues, audit found %d", len(fixed.Issues)-dangling, len(audit.Issues))
	}
	if dangling == 0 {
		t.Fatal("quarantined corpus blob must surface as a dangling manifest reference")
	}

	// The repaired store must warm-resume: quarantined records read as
	// misses and are recomputed (the deterministic corpus re-persists
	// under its old content key), not trusted.
	cfg := core.DefaultConfig(77, 0.02)
	cfg.CacheDir = dir
	cfg.Resume = true
	res, err := core.RunStudy(cfg)
	if err != nil {
		t.Fatalf("repaired store does not resume: %v", err)
	}
	if res.Persist == nil || res.Persist.WarmReports == 0 {
		t.Fatal("resume run served nothing warm")
	}

	clean, err := Run(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !clean.Clean() {
		t.Fatalf("store still dirty after fix + resume: %v", clean.Issues)
	}
}

func TestManifestTornTailAndGarbageRepair(t *testing.T) {
	dir := populatedStore(t)
	path := filepath.Join(dir, "manifest.jsonl")
	if err := faults.AppendGarbage(path, "{\"id\":\"zz\",\"seed\":9}\n{\"id\":\"torn"); err != nil {
		t.Fatal(err)
	}

	audit, err := Run(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var manifestIssue *Issue
	for i := range audit.Issues {
		if audit.Issues[i].Kind == "manifest" && audit.Issues[i].Key == "" {
			manifestIssue = &audit.Issues[i]
		}
	}
	if manifestIssue == nil {
		t.Fatalf("torn manifest went undetected: %v", audit.Issues)
	}
	if !strings.Contains(manifestIssue.Problem, "torn tail") {
		t.Fatalf("issue does not flag the torn tail: %v", *manifestIssue)
	}
	// The appended "zz" entry parses as JSON with an ID, so it survives
	// the repair (fsck keeps every valid line); only the torn tail is
	// dropped.
	want := audit.ManifestEntries

	if _, err := Run(dir, Options{Fix: true}); err != nil {
		t.Fatal(err)
	}
	repaired, err := Run(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, is := range repaired.Issues {
		if is.Kind == "manifest" && is.Key == "" {
			t.Fatalf("manifest still dirty after fix: %v", is)
		}
	}
	if repaired.ManifestEntries != want {
		t.Fatalf("repair changed valid entry count: %d != %d", repaired.ManifestEntries, want)
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) == 0 || raw[len(raw)-1] != '\n' {
		t.Fatal("repaired manifest does not end in a newline")
	}
	if strings.Contains(string(raw), "torn") {
		t.Fatal("torn tail survived repair")
	}
}

func TestRunRejectsMissingDir(t *testing.T) {
	if _, err := Run(filepath.Join(t.TempDir(), "nope"), Options{}); err == nil {
		t.Fatal("missing store dir must error")
	}
}
