package faults

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"time"
)

// Transport wraps base with fault injection. The site for every HTTP
// class is prefix + the request's URL path plus its canonicalised (sorted)
// query: the Play API addresses apps through `?doc=<pkg>` on shared paths,
// so the query must participate or every app would share one opportunity
// counter and fault placement would depend on download scheduling. Callers
// that hit identical routes on distinct servers (the study's two snapshot
// stores) must pass distinct prefixes for the same reason.
//
// Synthetic 503/429 responses consume the opportunity without touching
// the network; truncation and stalls perform the real exchange and
// corrupt the body on the way through.
func Transport(sched *Schedule, prefix string, base http.RoundTripper) http.RoundTripper {
	if base == nil {
		base = http.DefaultTransport
	}
	return &transport{sched: sched, prefix: prefix, base: base}
}

type transport struct {
	sched  *Schedule
	prefix string
	base   http.RoundTripper
}

func (t *transport) RoundTrip(req *http.Request) (*http.Response, error) {
	site := t.prefix + req.URL.Path
	if q := req.URL.Query(); len(q) > 0 {
		site += "?" + q.Encode() // Encode sorts keys: one canonical site per route+args
	}
	if t.sched.Hit(ClassHTTP500, site) {
		return synthetic(req, http.StatusServiceUnavailable, nil), nil
	}
	if t.sched.Hit(ClassHTTP429, site) {
		h := http.Header{}
		// Ask for a short, real wait: long enough that a client ignoring
		// the header is distinguishable, short enough for test suites.
		h.Set("Retry-After", "0")
		return synthetic(req, http.StatusTooManyRequests, h), nil
	}
	truncate := t.sched.Hit(ClassTruncate, site)
	stall := t.sched.Hit(ClassStall, site)
	resp, err := t.base.RoundTrip(req)
	if err != nil || resp == nil {
		return resp, err
	}
	if truncate {
		body, readErr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if readErr != nil {
			return nil, readErr
		}
		// Keep Content-Length advertising the full size: the client sees a
		// connection that died mid-body, not a short-but-complete response.
		resp.Body = io.NopCloser(io.MultiReader(
			bytes.NewReader(body[:len(body)/2]),
			errReader{&Err{Class: ClassTruncate, Site: site}},
		))
		return resp, nil
	}
	if stall {
		resp.Body = &stalledBody{rc: resp.Body, delay: t.sched.StallFor, ctx: req.Context()}
	}
	return resp, nil
}

// synthetic builds an in-memory error response.
func synthetic(req *http.Request, status int, h http.Header) *http.Response {
	if h == nil {
		h = http.Header{}
	}
	return &http.Response{
		StatusCode: status,
		Status:     http.StatusText(status),
		Header:     h,
		Body:       io.NopCloser(bytes.NewReader([]byte(http.StatusText(status)))),
		Request:    req,
		ProtoMajor: 1, ProtoMinor: 1,
		ContentLength: int64(len(http.StatusText(status))),
	}
}

// errReader yields err forever — the tail of a truncated body.
type errReader struct{ err error }

func (r errReader) Read([]byte) (int, error) { return 0, r.err }

// stalledBody delays the first Read, honouring the request context so a
// cancelled caller is never pinned behind an injected stall.
type stalledBody struct {
	rc      io.ReadCloser
	delay   time.Duration
	ctx     context.Context
	stalled bool
}

func (b *stalledBody) Read(p []byte) (int, error) {
	if !b.stalled {
		b.stalled = true
		t := time.NewTimer(b.delay)
		defer t.Stop()
		select {
		case <-b.ctx.Done():
			return 0, b.ctx.Err()
		case <-t.C:
		}
	}
	return b.rc.Read(p)
}

func (b *stalledBody) Close() error { return b.rc.Close() }
