package faults

import (
	"context"
	"net"

	"github.com/gaugenn/gaugenn/internal/bench"
	"github.com/gaugenn/gaugenn/internal/fleet"
)

// Listener wraps inner so each accepted connection is one fault
// opportunity at site:
//   - conn.drop: the connection closes on first Read or Write — the
//     half-open TCP failure a master's dial retry must ride out.
//   - conn.deaf: writes succeed but reads never deliver — the deaf-peer
//     hang that read deadlines exist for.
func Listener(sched *Schedule, site string, inner net.Listener) net.Listener {
	return &listener{sched: sched, site: site, inner: inner}
}

type listener struct {
	sched *Schedule
	site  string
	inner net.Listener
}

func (l *listener) Accept() (net.Conn, error) {
	c, err := l.inner.Accept()
	if err != nil {
		return nil, err
	}
	return WrapConn(l.sched, l.site, c), nil
}

func (l *listener) Close() error   { return l.inner.Close() }
func (l *listener) Addr() net.Addr { return l.inner.Addr() }

// WrapConn applies the conn.* classes to one connection; each call is one
// opportunity per class at site.
func WrapConn(sched *Schedule, site string, c net.Conn) net.Conn {
	if sched.Hit(ClassConnDrop, site) {
		return &droppedConn{Conn: c, err: &Err{Class: ClassConnDrop, Site: site}}
	}
	if sched.Hit(ClassConnDeaf, site) {
		return &deafConn{Conn: c}
	}
	return c
}

// droppedConn fails every IO with the injected error, closing the real
// connection on first use so the peer observes the drop too.
type droppedConn struct {
	net.Conn
	err error
}

func (c *droppedConn) Read([]byte) (int, error)  { c.Conn.Close(); return 0, c.err }
func (c *droppedConn) Write([]byte) (int, error) { c.Conn.Close(); return 0, c.err }

// deafConn forwards writes but swallows the peer's responses: Read blocks
// until the deadline (or Close) fires, exactly like a wedged agent that
// accepted the job and went silent.
type deafConn struct {
	net.Conn
}

func (c *deafConn) Read(p []byte) (int, error) {
	// Delegate to the real Read against a connection that will never
	// receive data we let through — by never writing, the peer never has
	// anything to answer. But the peer *does* write responses; swallow
	// them by reading and discarding into a private buffer, then keep
	// waiting so the caller's read blocks until its deadline.
	buf := make([]byte, 4096)
	for {
		if _, err := c.Conn.Read(buf); err != nil {
			return 0, err
		}
	}
}

// Runner wraps inner so each job execution is one runner.fail opportunity
// at the runner's ID; fired jobs fail with an injected transport error
// before reaching the rig.
func Runner(sched *Schedule, inner fleet.Runner) fleet.Runner {
	return &faultRunner{sched: sched, inner: inner}
}

type faultRunner struct {
	sched *Schedule
	inner fleet.Runner
}

func (r *faultRunner) ID() string          { return r.inner.ID() }
func (r *faultRunner) DeviceModel() string { return r.inner.DeviceModel() }
func (r *faultRunner) Close() error        { return r.inner.Close() }

func (r *faultRunner) Run(ctx context.Context, job bench.Job) (bench.JobResult, error) {
	if r.sched.Hit(ClassRunFail, r.inner.ID()) {
		return bench.JobResult{}, &Err{Class: ClassRunFail, Site: r.inner.ID()}
	}
	return r.inner.Run(ctx, job)
}

func (r *faultRunner) Cooldown(ctx context.Context, targetJ float64) error {
	return r.inner.Cooldown(ctx, targetJ)
}
