// Package faults is gaugeNN's deterministic fault injector: one seeded
// Schedule decides, reproducibly, which IO opportunities fail and how.
// Injection points wrap the seams the production code already has — an
// http.RoundTripper in front of the crawler (5xx bursts, 429 with
// Retry-After, truncated bodies, stalled reads), a store.FS in front of
// the CAS (EIO, bit-flipped reads, failed writes, torn appends), a
// net.Listener/net.Conn pair for bench's wire protocol (dropped and deaf
// connections), and a fleet.Runner shim — so the chaos suite can replay
// the same failure pattern run after run and assert exact outcomes.
//
// Determinism is the whole point. A decision is a pure function of
// (seed, class, site, opportunity counter): the site is a stable
// identifier of *where* the opportunity happens (a snapshot-prefixed URL
// path, a blob's kind/shard/key, a runner ID), the counter is how many
// times that site has been tried, and neither depends on goroutine
// scheduling. Two runs with the same seed and the same per-site workload
// fault identically, regardless of worker count or interleaving.
package faults

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Fault classes — each names one failure mode an injection point can
// produce. A Schedule maps classes to Rules; unset classes never fire.
const (
	// ClassHTTP500 answers a request with a 503 (retryable server error).
	ClassHTTP500 = "http.500"
	// ClassHTTP429 answers with 429 + a Retry-After header.
	ClassHTTP429 = "http.429"
	// ClassTruncate serves half the real body, then an unexpected EOF.
	ClassTruncate = "http.truncate"
	// ClassStall delays the body's first read by the schedule's StallFor.
	ClassStall = "http.stall"
	// ClassReadErr fails a blob read with a synthetic EIO.
	ClassReadErr = "fs.read-error"
	// ClassBitFlip returns a blob with one deterministic bit flipped.
	ClassBitFlip = "fs.bit-flip"
	// ClassWriteErr fails an atomic write cleanly (nothing published).
	ClassWriteErr = "fs.write-error"
	// ClassTornAppend appends only half the record, then fails.
	ClassTornAppend = "fs.torn-append"
	// ClassConnDrop closes an accepted connection on first use.
	ClassConnDrop = "conn.drop"
	// ClassConnDeaf accepts writes but never delivers reads (deaf peer).
	ClassConnDeaf = "conn.deaf"
	// ClassRunFail fails a fleet runner's job with a transport error.
	ClassRunFail = "runner.fail"
)

// Rule shapes one class's firing pattern at every site.
type Rule struct {
	// Burst fires the first Burst opportunities at each site
	// unconditionally — the "server is down, then recovers" shape that
	// retry ladders must ride out. Negative means every opportunity fires
	// (a persistent fault retries can never beat).
	Burst int
	// Rate fires each post-burst opportunity with this probability,
	// decided by a pure hash of (seed, class, site, counter) — never by a
	// shared RNG, whose draw order would depend on scheduling.
	Rate float64
}

// Schedule is one seeded fault plan: class → Rule, plus the per-site
// opportunity counters that make burst semantics work. Safe for
// concurrent use; the counters are the only mutable state.
type Schedule struct {
	// StallFor is how long ClassStall delays a body read (default 5ms).
	StallFor time.Duration

	seed  int64
	rules map[string]Rule

	mu     sync.Mutex
	counts map[string]int
}

// NewSchedule builds an empty (never-firing) schedule over seed.
func NewSchedule(seed int64) *Schedule {
	return &Schedule{
		seed:     seed,
		rules:    map[string]Rule{},
		counts:   map[string]int{},
		StallFor: 5 * time.Millisecond,
	}
}

// Set installs (or replaces) the rule for one class. Call before the
// schedule is in use; rules are read without locking.
func (s *Schedule) Set(class string, r Rule) *Schedule {
	s.rules[class] = r
	return s
}

// Seed returns the schedule's seed, for labelling test failures.
func (s *Schedule) Seed() int64 { return s.seed }

// Hit consumes one opportunity for class at site and reports whether the
// fault fires. Every call increments the (class, site) counter whether or
// not the class has a rule, so adding a rule later does not renumber
// opportunities.
func (s *Schedule) Hit(class, site string) bool {
	if s == nil {
		return false
	}
	key := class + "\x00" + site
	s.mu.Lock()
	n := s.counts[key]
	s.counts[key] = n + 1
	s.mu.Unlock()
	rule, ok := s.rules[class]
	if !ok {
		return false
	}
	if rule.Burst < 0 {
		return true
	}
	if n < rule.Burst {
		return true
	}
	if rule.Rate <= 0 {
		return false
	}
	return hashFrac(s.seed, key, n) < rule.Rate
}

// Count returns how many opportunities (class, site) has consumed.
func (s *Schedule) Count(class, site string) int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counts[class+"\x00"+site]
}

// hashFrac maps (seed, key, n) to a uniform fraction in [0, 1) via an
// FNV-style mix + splitmix64 finaliser — stateless, so the decision for
// opportunity n at a site is identical however runs interleave.
func hashFrac(seed int64, key string, n int) float64 {
	h := uint64(seed) ^ 0xcbf29ce484222325
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 0x100000001b3
	}
	h ^= uint64(n) * 0x9e3779b97f4a7c15
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return float64(h>>11) / float64(1<<53)
}

// Err is the error shape every injected failure carries, so tests (and
// humans reading logs) can tell synthetic faults from real ones.
type Err struct {
	Class string
	Site  string
}

func (e *Err) Error() string {
	return fmt.Sprintf("faults: injected %s at %s", e.Class, e.Site)
}

// IsInjected reports whether err (or anything it wraps) was produced by
// this package, returning the fault class.
func IsInjected(err error) (class string, ok bool) {
	var fe *Err
	if errors.As(err, &fe) {
		return fe.Class, true
	}
	return "", false
}
