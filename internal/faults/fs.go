package faults

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/gaugenn/gaugenn/internal/store"
)

// FS wraps a store.FS with fault injection. Sites are the trailing path
// components (kind/shard/key for blobs, the bare name for the manifest),
// so a blob faults identically wherever the store is rooted.
//
// Fault semantics per class:
//   - fs.read-error: ReadFile fails with a synthetic EIO-shaped error.
//   - fs.bit-flip:   ReadFile succeeds but one deterministic bit of the
//     returned copy is flipped — the disk is untouched, so a retry that
//     re-reads sees the same corruption (the decision repeats per
//     opportunity) while recomputation heals it.
//   - fs.write-error: WriteFileAtomic fails cleanly; nothing is published
//     (the store's atomic-write contract holds even under faults).
//   - fs.torn-append: Append writes only the first half of the record,
//     then fails — the torn-manifest-tail shape fsck repairs.
func FS(sched *Schedule, base store.FS) store.FS {
	return &faultFS{sched: sched, base: base}
}

type faultFS struct {
	sched *Schedule
	base  store.FS
}

// pathSite reduces an absolute path to its store-relative identity.
func pathSite(name string) string {
	parts := strings.Split(filepath.ToSlash(name), "/")
	if len(parts) > 3 {
		parts = parts[len(parts)-3:]
	}
	return strings.Join(parts, "/")
}

func (f *faultFS) ReadFile(name string) ([]byte, error) {
	site := pathSite(name)
	if f.sched.Hit(ClassReadErr, site) {
		return nil, fmt.Errorf("read %s: input/output error: %w", name, &Err{Class: ClassReadErr, Site: site})
	}
	data, err := f.base.ReadFile(name)
	if err != nil {
		return nil, err
	}
	if len(data) > 0 && f.sched.Hit(ClassBitFlip, site) {
		flipped := make([]byte, len(data))
		copy(flipped, data)
		bit := int(hashFrac(f.sched.seed, "bitpos\x00"+site, 0) * float64(len(flipped)*8))
		flipped[bit/8] ^= 1 << (bit % 8)
		return flipped, nil
	}
	return data, nil
}

func (f *faultFS) WriteFileAtomic(name string, data []byte) error {
	site := pathSite(name)
	if f.sched.Hit(ClassWriteErr, site) {
		return fmt.Errorf("write %s: %w", name, &Err{Class: ClassWriteErr, Site: site})
	}
	return f.base.WriteFileAtomic(name, data)
}

func (f *faultFS) Append(name string, data []byte) error {
	site := pathSite(name)
	if f.sched.Hit(ClassTornAppend, site) {
		if err := f.base.Append(name, data[:len(data)/2]); err != nil {
			return err
		}
		return fmt.Errorf("append %s: %w", name, &Err{Class: ClassTornAppend, Site: site})
	}
	return f.base.Append(name, data)
}

func (f *faultFS) Stat(name string) (os.FileInfo, error)      { return f.base.Stat(name) }
func (f *faultFS) ReadDir(name string) ([]os.DirEntry, error) { return f.base.ReadDir(name) }

// The corrupter helpers damage a store on the real disk — the persistent
// flavour of the same corruption classes, for exercising `gaugenn fsck`:
// FlipBit is fs.bit-flip that survives re-reads, Truncate is a torn blob
// or manifest tail, AppendGarbage is a crashed writer's partial record.

// FlipBit flips one bit of the file at path, in place.
func FlipBit(path string, bit int) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if len(data) == 0 {
		return fmt.Errorf("faults: cannot flip a bit in empty %s", path)
	}
	bit %= len(data) * 8
	if bit < 0 {
		bit += len(data) * 8
	}
	data[bit/8] ^= 1 << (bit % 8)
	return os.WriteFile(path, data, 0o644)
}

// Truncate cuts the file at path to frac of its size (0 ≤ frac < 1).
func Truncate(path string, frac float64) error {
	info, err := os.Stat(path)
	if err != nil {
		return err
	}
	return os.Truncate(path, int64(float64(info.Size())*frac))
}

// AppendGarbage appends a non-JSON fragment to the file at path — the
// torn tail a crashed manifest writer leaves behind.
func AppendGarbage(path string, garbage string) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.WriteString(garbage); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
