package faults

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"github.com/gaugenn/gaugenn/internal/bench"
	"github.com/gaugenn/gaugenn/internal/store"
)

func TestScheduleBurstThenClean(t *testing.T) {
	s := NewSchedule(1).Set(ClassHTTP500, Rule{Burst: 2})
	site := "2020/apk/x"
	for i := 0; i < 2; i++ {
		if !s.Hit(ClassHTTP500, site) {
			t.Fatalf("opportunity %d inside burst did not fire", i)
		}
	}
	for i := 2; i < 10; i++ {
		if s.Hit(ClassHTTP500, site) {
			t.Fatalf("opportunity %d fired past the burst with zero rate", i)
		}
	}
	if got := s.Count(ClassHTTP500, site); got != 10 {
		t.Fatalf("Count = %d, want 10", got)
	}
	if !NewSchedule(1).Set(ClassHTTP500, Rule{Burst: -1}).Hit(ClassHTTP500, site) {
		t.Fatal("persistent (Burst<0) rule did not fire")
	}
}

func TestScheduleBurstIsPerSite(t *testing.T) {
	s := NewSchedule(1).Set(ClassHTTP500, Rule{Burst: 1})
	if !s.Hit(ClassHTTP500, "a") || !s.Hit(ClassHTTP500, "b") {
		t.Fatal("each site must get its own burst")
	}
	if s.Hit(ClassHTTP500, "a") || s.Hit(ClassHTTP500, "b") {
		t.Fatal("burst of 1 fired twice at one site")
	}
}

func TestScheduleRateDeterministic(t *testing.T) {
	run := func(seed int64) []bool {
		s := NewSchedule(seed).Set(ClassReadErr, Rule{Rate: 0.3})
		out := make([]bool, 200)
		for i := range out {
			out[i] = s.Hit(ClassReadErr, fmt.Sprintf("site-%d", i%7))
		}
		return out
	}
	a, b := run(42), run(42)
	fired := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs across identical runs", i)
		}
		if a[i] {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Fatalf("rate 0.3 fired %d/%d times — not a rate", fired, len(a))
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical fault patterns")
	}
}

func TestScheduleUnsetClassNeverFires(t *testing.T) {
	s := NewSchedule(7)
	for i := 0; i < 50; i++ {
		if s.Hit(ClassBitFlip, "x") {
			t.Fatal("unset class fired")
		}
	}
	var nilSched *Schedule
	if nilSched.Hit(ClassBitFlip, "x") || nilSched.Count(ClassBitFlip, "x") != 0 {
		t.Fatal("nil schedule must be inert")
	}
}

func TestTransportInjects500And429(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("payload-bytes"))
	}))
	defer srv.Close()

	s := NewSchedule(1).
		Set(ClassHTTP500, Rule{Burst: 1}).
		Set(ClassHTTP429, Rule{Burst: 1})
	client := &http.Client{Transport: Transport(s, "2020 ", nil)}

	resp, err := client.Get(srv.URL + "/apk/1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("first request = %d, want 503", resp.StatusCode)
	}
	resp, err = client.Get(srv.URL + "/apk/1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second request = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	resp, err = client.Get(srv.URL + "/apk/1")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(body) != "payload-bytes" {
		t.Fatalf("third request = %d %q, want clean 200", resp.StatusCode, body)
	}
}

func TestTransportTruncatesBody(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("0123456789abcdef"))
	}))
	defer srv.Close()

	s := NewSchedule(1).Set(ClassTruncate, Rule{Burst: 1})
	client := &http.Client{Transport: Transport(s, "", nil)}
	resp, err := client.Get(srv.URL + "/apk/2")
	if err != nil {
		t.Fatal(err)
	}
	body, readErr := io.ReadAll(resp.Body)
	resp.Body.Close()
	if readErr == nil {
		t.Fatalf("truncated body read cleanly: %q", body)
	}
	if class, ok := IsInjected(readErr); !ok || class != ClassTruncate {
		t.Fatalf("read error %v not tagged as injected truncation", readErr)
	}
	if len(body) != 8 {
		t.Fatalf("got %d bytes before the cut, want 8", len(body))
	}
}

func TestTransportSitePrefixesSeparateCounters(t *testing.T) {
	s := NewSchedule(1).Set(ClassHTTP500, Rule{Burst: 1})
	if !s.Hit(ClassHTTP500, "2020 /apk/1") || !s.Hit(ClassHTTP500, "2021 /apk/1") {
		t.Fatal("same path under different prefixes must burst independently")
	}
}

func TestFaultFSReadErrorAndBitFlip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "payload", "ab", "abcd1234")
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	content := []byte("stored-record")
	if err := os.WriteFile(path, content, 0o644); err != nil {
		t.Fatal(err)
	}

	s := NewSchedule(9).Set(ClassReadErr, Rule{Burst: 1})
	fsys := FS(s, store.OSFS{})
	if _, err := fsys.ReadFile(path); err == nil {
		t.Fatal("first read did not fail")
	} else if class, ok := IsInjected(err); !ok || class != ClassReadErr {
		t.Fatalf("read error %v not tagged", err)
	}
	data, err := fsys.ReadFile(path)
	if err != nil || string(data) != string(content) {
		t.Fatalf("post-burst read = %q, %v", data, err)
	}

	s2 := NewSchedule(9).Set(ClassBitFlip, Rule{Burst: -1})
	fsys2 := FS(s2, store.OSFS{})
	a, err := fsys2.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) == string(content) {
		t.Fatal("bit-flip read returned clean bytes")
	}
	b, _ := fsys2.ReadFile(path)
	if string(a) != string(b) {
		t.Fatal("bit-flip position not deterministic across reads")
	}
	disk, _ := os.ReadFile(path)
	if string(disk) != string(content) {
		t.Fatal("bit-flip corrupted the disk, not just the read")
	}
}

func TestFaultFSTornAppend(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "manifest.jsonl")
	s := NewSchedule(3).Set(ClassTornAppend, Rule{Burst: 1})
	fsys := FS(s, store.OSFS{})
	record := []byte(`{"id":"seed42-scale0.05"}` + "\n")
	err := fsys.Append(path, record)
	if err == nil {
		t.Fatal("torn append reported success")
	}
	data, readErr := os.ReadFile(path)
	if readErr != nil {
		t.Fatal(readErr)
	}
	if len(data) != len(record)/2 {
		t.Fatalf("torn append left %d bytes, want %d", len(data), len(record)/2)
	}
	if err := fsys.Append(path, record); err != nil {
		t.Fatalf("post-burst append: %v", err)
	}
}

func TestFaultFSWriteError(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "analysis", "ab", "abcd9999")
	s := NewSchedule(3).Set(ClassWriteErr, Rule{Burst: 1})
	fsys := FS(s, store.OSFS{})
	if err := fsys.WriteFileAtomic(path, []byte("x")); err == nil {
		t.Fatal("write fault reported success")
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("failed atomic write left a file behind")
	}
	if err := fsys.WriteFileAtomic(path, []byte("x")); err != nil {
		t.Fatalf("post-burst write: %v", err)
	}
}

func TestCorrupterHelpers(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "blob")
	if err := os.WriteFile(path, []byte("abcdefgh"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := FlipBit(path, 3); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(path)
	if string(data) == "abcdefgh" {
		t.Fatal("FlipBit changed nothing")
	}
	if err := FlipBit(path, 3); err != nil {
		t.Fatal(err)
	}
	data, _ = os.ReadFile(path)
	if string(data) != "abcdefgh" {
		t.Fatal("double FlipBit did not restore the byte")
	}
	if err := Truncate(path, 0.5); err != nil {
		t.Fatal(err)
	}
	data, _ = os.ReadFile(path)
	if len(data) != 4 {
		t.Fatalf("Truncate left %d bytes, want 4", len(data))
	}
	if err := AppendGarbage(path, `{"id":"tor`); err != nil {
		t.Fatal(err)
	}
	data, _ = os.ReadFile(path)
	if string(data) != `abcd{"id":"tor` {
		t.Fatalf("AppendGarbage result %q", data)
	}
}

// stubRunner is the minimal fleet.Runner surface for shim tests.
type stubRunner struct{ runs int }

func (r *stubRunner) ID() string                              { return "stub-rig" }
func (r *stubRunner) DeviceModel() string                     { return "Q845" }
func (r *stubRunner) Close() error                            { return nil }
func (r *stubRunner) Cooldown(context.Context, float64) error { return nil }
func (r *stubRunner) Run(context.Context, bench.Job) (bench.JobResult, error) {
	r.runs++
	return bench.JobResult{ID: "ok"}, nil
}

func TestRunnerShimInjectsThenDelegates(t *testing.T) {
	inner := &stubRunner{}
	sched := NewSchedule(3).Set(ClassRunFail, Rule{Burst: 2})
	r := Runner(sched, inner)
	if r.ID() != "stub-rig" || r.DeviceModel() != "Q845" {
		t.Fatal("shim must forward identity")
	}
	for i := 0; i < 2; i++ {
		_, err := r.Run(context.Background(), bench.Job{})
		if class, ok := IsInjected(err); !ok || class != ClassRunFail {
			t.Fatalf("burst run %d: err = %v, want injected runner.fail", i, err)
		}
	}
	if inner.runs != 0 {
		t.Fatalf("injected failures reached the rig (%d runs)", inner.runs)
	}
	if res, err := r.Run(context.Background(), bench.Job{}); err != nil || res.ID != "ok" {
		t.Fatalf("post-burst run: res=%v err=%v", res, err)
	}
	if inner.runs != 1 {
		t.Fatalf("rig ran %d times, want 1", inner.runs)
	}
}
