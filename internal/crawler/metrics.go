package crawler

import "github.com/gaugenn/gaugenn/internal/obs"

// Store-traffic series. Request-level counters move in Client.getOnce
// (once per wire exchange, so retries count individually); APK counters
// move in DownloadAPK, the only payload-sized fetch.
var (
	metRequests = obs.Default().Counter("gaugenn_crawler_requests_total",
		"Store HTTP requests issued, each retry counted separately.")
	metRequestFailures = obs.Default().Counter("gaugenn_crawler_request_failures_total",
		"Store HTTP requests that failed (transport error or non-200 status).")
	metResponseBytes = obs.Default().Counter("gaugenn_crawler_response_bytes_total",
		"Response body bytes read from the store across all endpoints.")
	metDownloads = obs.Default().Counter("gaugenn_crawler_downloads_total",
		"APK downloads completed successfully.")
	metDownloadBytes = obs.Default().Counter("gaugenn_crawler_download_bytes_total",
		"APK payload bytes fetched by completed downloads.")
)
