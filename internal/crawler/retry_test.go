package crawler

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// flakyStore fails the first n requests with 500, then serves.
func flakyStore(t *testing.T, failFirst int64) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var count atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if count.Add(1) <= failFirst {
			http.Error(w, "backend hiccup", http.StatusInternalServerError)
			return
		}
		json.NewEncoder(w).Encode([]string{"COMMUNICATION"})
	}))
	t.Cleanup(srv.Close)
	return srv, &count
}

func TestClientRetriesTransientFailures(t *testing.T) {
	srv, count := flakyStore(t, 2)
	c := NewClient(srv.URL)
	c.Retries = 3
	c.RetryDelay = time.Millisecond
	cats, err := c.Categories(context.Background())
	if err != nil {
		t.Fatalf("retries should recover: %v", err)
	}
	if len(cats) != 1 || cats[0] != "COMMUNICATION" {
		t.Fatalf("payload: %v", cats)
	}
	if count.Load() != 3 {
		t.Fatalf("requests = %d, want 3 (2 failures + 1 success)", count.Load())
	}
}

func TestClientGivesUpAfterRetries(t *testing.T) {
	srv, count := flakyStore(t, 100)
	c := NewClient(srv.URL)
	c.Retries = 2
	c.RetryDelay = time.Millisecond
	if _, err := c.Categories(context.Background()); err == nil {
		t.Fatal("persistent failure should surface")
	}
	if count.Load() != 3 {
		t.Fatalf("requests = %d, want 3 attempts", count.Load())
	}
}

func TestClientDoesNotRetryClientErrors(t *testing.T) {
	var count atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		count.Add(1)
		http.Error(w, "bad request", http.StatusBadRequest)
	}))
	t.Cleanup(srv.Close)
	c := NewClient(srv.URL)
	c.Retries = 5
	c.RetryDelay = time.Millisecond
	if _, err := c.Categories(context.Background()); err == nil {
		t.Fatal("400 should fail")
	}
	if count.Load() != 1 {
		t.Fatalf("4xx must not be retried, got %d attempts", count.Load())
	}
}
