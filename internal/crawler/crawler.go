// Package crawler implements gaugeNN's store-facing collection step
// (Section 3.1): it "mimics the web API calls made from the Google Play
// store of a typical mobile device", fetching the top free apps per
// category (up to 500), downloading each app's package and companion
// files, and filing the store metadata into the document store for ETL
// analytics.
package crawler

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sync"
	"time"

	"github.com/gaugenn/gaugenn/internal/android/apk"
	"github.com/gaugenn/gaugenn/internal/docstore"
	"github.com/gaugenn/gaugenn/internal/errgroup"
	"github.com/gaugenn/gaugenn/internal/errs"
	"github.com/gaugenn/gaugenn/internal/retry"
)

// AppMeta is the store metadata captured per app listing.
type AppMeta struct {
	Package   string  `json:"package"`
	Title     string  `json:"title"`
	Category  string  `json:"category"`
	Rank      int     `json:"rank"`
	Downloads int64   `json:"downloads"`
	Rating    float64 `json:"rating"`
}

// DeliveryManifest mirrors the store's companion-file listing.
type DeliveryManifest struct {
	Package    string   `json:"package"`
	OBBs       []string `json:"obbs"`
	AssetPacks []string `json:"assetPacks"`
}

// Client speaks the store's device API. UserAgent and Locale are mandatory
// ("both the user-agent and locale headers are defined, which determine the
// variant of the store and apps retrieved"); DeviceModel identifies the
// device profile, which Section 4.2 varies to probe device-specific
// delivery.
type Client struct {
	BaseURL     string
	UserAgent   string
	Locale      string
	DeviceModel string
	HTTPClient  *http.Client
	// Retry shapes the transient-failure ladder (network errors, 5xx,
	// 429); a 16k-app crawl cannot afford to die on one hiccup. Nil falls
	// back to the legacy Retries/RetryDelay fields when either is set,
	// else to retry.Default(). A 429/503 Retry-After header overrides the
	// computed backoff, capped by the policy's MaxDelay.
	Retry *retry.Policy
	// Retries and RetryDelay are the v1 retry knobs, preserved verbatim:
	// Retries extra attempts spaced by a fixed RetryDelay (default 50 ms).
	// Ignored when Retry is set.
	Retries    int
	RetryDelay time.Duration
	// Breaker, when non-nil, circuit-breaks per BaseURL: once the host
	// trips it, further requests fail fast with retry.ErrOpen instead of
	// burning the full ladder against a dead server.
	Breaker *retry.Breaker
}

// NewClient builds a client with the paper's default device profile (a
// UK-locale Samsung S10, SM-G977B).
func NewClient(baseURL string) *Client {
	return &Client{
		BaseURL:     baseURL,
		UserAgent:   "Android-Finsky/8.0 (api=3,versionCode=80000,device=beyond1)",
		Locale:      "en_GB",
		DeviceModel: "SM-G977B",
		HTTPClient:  &http.Client{Timeout: 120 * time.Second},
	}
}

// policy resolves the effective retry policy: Retry wins, then the legacy
// Retries/RetryDelay pair (fixed spacing, exactly Retries extra attempts),
// then the shared default ladder.
func (c *Client) policy() retry.Policy {
	if c.Retry != nil {
		return *c.Retry
	}
	if c.Retries > 0 || c.RetryDelay > 0 {
		delay := c.RetryDelay
		if delay <= 0 {
			delay = 50 * time.Millisecond
		}
		return retry.Policy{Attempts: c.Retries + 1, BaseDelay: delay, Multiplier: 1}
	}
	return retry.Default()
}

func (c *Client) get(ctx context.Context, path string, q url.Values) ([]byte, error) {
	u := c.BaseURL + path
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	var body []byte
	err := retry.Do(ctx, c.policy(), func(ctx context.Context) error {
		if !c.Breaker.Allow(c.BaseURL) {
			return retry.Permanent(fmt.Errorf("crawler: host %s: %w", c.BaseURL, retry.ErrOpen))
		}
		b, retryable, err := c.getOnce(ctx, u, path)
		if err == nil {
			c.Breaker.Success(c.BaseURL)
			body = b
			return nil
		}
		c.Breaker.Failure(c.BaseURL)
		if !retryable {
			return retry.Permanent(err)
		}
		return err
	})
	if err != nil {
		return nil, err
	}
	return body, nil
}

func (c *Client) getOnce(ctx context.Context, u, path string) (body []byte, retryable bool, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, false, fmt.Errorf("crawler: %w", err)
	}
	req.Header.Set("User-Agent", c.UserAgent)
	req.Header.Set("X-DFE-Locale", c.Locale)
	if c.DeviceModel != "" {
		req.Header.Set("X-DFE-Device", c.DeviceModel)
	}
	hc := c.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	metRequests.Inc()
	resp, err := hc.Do(req)
	if err != nil {
		metRequestFailures.Inc()
		return nil, true, fmt.Errorf("crawler: GET %s: %w", path, err)
	}
	defer resp.Body.Close()
	body, err = readBody(resp.Body, resp.ContentLength)
	metResponseBytes.Add(uint64(len(body)))
	if err != nil {
		metRequestFailures.Inc()
		return nil, true, fmt.Errorf("crawler: reading %s: %w", path, err)
	}
	if resp.StatusCode != http.StatusOK {
		metRequestFailures.Inc()
		statusErr := fmt.Errorf("crawler: GET %s: status %d: %s", path, resp.StatusCode, truncate(body, 200))
		retryable := resp.StatusCode >= 500 || resp.StatusCode == http.StatusTooManyRequests
		if retryable {
			// A throttling server names its own pacing: carry Retry-After
			// (delta-seconds or HTTP-date, parsed by the shared retry
			// helper) to the policy, which honours it up to its MaxDelay cap.
			statusErr = retry.RetryAfterHint(statusErr, resp.Header)
		}
		return nil, retryable, statusErr
	}
	return body, false, nil
}

// Categories lists the store's category identifiers.
func (c *Client) Categories(ctx context.Context) ([]string, error) {
	body, err := c.get(ctx, "/fdfe/categories", nil)
	if err != nil {
		return nil, err
	}
	var cats []string
	if err := json.Unmarshal(body, &cats); err != nil {
		return nil, fmt.Errorf("crawler: bad categories payload: %w", err)
	}
	return cats, nil
}

// TopChart fetches up to n chart entries for a category.
func (c *Client) TopChart(ctx context.Context, category string, n int) ([]AppMeta, error) {
	q := url.Values{"cat": {category}, "n": {fmt.Sprint(n)}}
	body, err := c.get(ctx, "/fdfe/topCharts", q)
	if err != nil {
		return nil, err
	}
	var out []AppMeta
	if err := json.Unmarshal(body, &out); err != nil {
		return nil, fmt.Errorf("crawler: bad chart payload: %w", err)
	}
	return out, nil
}

// Details fetches one app's metadata.
func (c *Client) Details(ctx context.Context, pkg string) (AppMeta, error) {
	var meta AppMeta
	body, err := c.get(ctx, "/fdfe/details", url.Values{"doc": {pkg}})
	if err != nil {
		return meta, err
	}
	if err := json.Unmarshal(body, &meta); err != nil {
		return meta, fmt.Errorf("crawler: bad details payload: %w", err)
	}
	return meta, nil
}

// DownloadAPK fetches the app's base APK bytes.
func (c *Client) DownloadAPK(ctx context.Context, pkg string) ([]byte, error) {
	b, err := c.get(ctx, "/fdfe/purchase", url.Values{"doc": {pkg}})
	if err == nil {
		metDownloads.Inc()
		metDownloadBytes.Add(uint64(len(b)))
	}
	return b, err
}

// Delivery fetches the companion-file manifest (OBBs, asset packs).
func (c *Client) Delivery(ctx context.Context, pkg string) (DeliveryManifest, error) {
	var man DeliveryManifest
	body, err := c.get(ctx, "/fdfe/delivery", url.Values{"doc": {pkg}})
	if err != nil {
		return man, err
	}
	if err := json.Unmarshal(body, &man); err != nil {
		return man, fmt.Errorf("crawler: bad delivery payload: %w", err)
	}
	return man, nil
}

// Crawler walks the whole store and files metadata into the docstore.
type Crawler struct {
	Client *Client
	// Store receives one document per app under the "apps-<label>"
	// collection.
	Store *docstore.Store
	// MaxPerCategory caps chart depth (500 in the paper).
	MaxPerCategory int
	// Workers bounds the crawl fan-out: chart fetches and per-app
	// download+handle work run on up to Workers goroutines (<= 1 crawls
	// sequentially). The handle callback must be safe for concurrent use
	// when Workers > 1.
	Workers int
	// Progress, when non-nil, receives (done, total) after each app, plus
	// one (0, total) stage-start call before any app is dispatched so
	// consumers learn the total up front. Calls are serialised even when
	// Workers > 1.
	Progress func(done, total int)
	// FailApp, when non-nil, arbitrates per-app failures (download or
	// delivery, after the client's retry ladder gave up): return nil to
	// quarantine the app — it is skipped, counted in Progress but not in
	// Result.Apps, and handle never sees it — or return an error to abort
	// the crawl. Nil FailApp aborts on the first failure, as does any
	// context cancellation (cancellations never reach FailApp). Called
	// concurrently when Workers > 1.
	FailApp func(idx int, meta AppMeta, err error) error
}

// Result summarises a crawl.
type Result struct {
	Label      string
	Categories int
	Apps       int
	APKBytes   int64
	// CompanionFiles counts OBBs and asset packs encountered; the paper
	// "found no models being distributed outside of the main apk".
	CompanionFiles int
}

// Run crawls every category chart and invokes handle for each downloaded
// app. Metadata lands in the docstore collection "apps-"+label.
//
// ctx bounds the whole crawl: cancellation stops dispatching new apps,
// aborts in-flight HTTP requests, and Run returns ctx's error once the
// in-flight workers drain — typically well inside a second. A cancelled
// crawl leaves the docstore with a consistent prefix of the app stream
// (every document it filed corresponds to a fully handled app).
//
// handle receives the app's global crawl index — its deterministic
// position in chart order (categories in store order, apps in rank order)
// — which downstream sharded ingestion uses to keep results byte-identical
// regardless of the worker count. With Workers > 1, handle runs
// concurrently and its invocation order is scheduling-dependent; only the
// index stream is deterministic.
func (cr *Crawler) Run(ctx context.Context, label string, handle func(idx int, meta AppMeta, apkBytes []byte) error) (Result, error) {
	res := Result{Label: label}
	cats, err := cr.Client.Categories(ctx)
	if err != nil {
		return res, err
	}
	res.Categories = len(cats)
	maxN := cr.MaxPerCategory
	if maxN <= 0 {
		maxN = 500
	}
	workers := cr.Workers
	if workers < 1 {
		workers = 1
	}

	// Chart fetches are independent; fan out while keeping category order.
	// cctx dies on the first chart failure (fail-fast across the
	// remaining categories' retry ladders) as well as on run cancellation
	// or a sibling pipeline's failure through the parent context.
	charts := make([][]AppMeta, len(cats))
	cg, cctx := errgroup.WithContext(ctx)
	cg.SetLimit(workers)
	for i, cat := range cats {
		i, cat := i, cat
		cg.Go(func() error {
			if cctx.Err() != nil {
				return nil
			}
			chart, err := cr.Client.TopChart(cctx, cat, maxN)
			if err != nil {
				return fmt.Errorf("crawler: chart %s: %w", cat, err)
			}
			charts[i] = chart
			return nil
		})
	}
	if err := cg.Wait(); err != nil {
		return res, err
	}
	if err := ctx.Err(); err != nil {
		// Cancelled while fetching charts; keep partial charts out of the
		// app phase.
		return res, err
	}
	var items []AppMeta
	for _, chart := range charts {
		items = append(items, chart...)
	}
	total := len(items)
	if cr.Progress != nil {
		// Stage start: announce the total before dispatching, so staged
		// consumers (the study engine's analyse stage) know it up front.
		cr.Progress(0, total)
	}

	// Per-app fan-out: download, delivery check, metadata filing and the
	// handle callback all run on the worker pool. Result accounting and
	// Progress are serialised under mu; actx dies on the first failure
	// (errgroup.WithContext), short-circuiting queued work and aborting
	// in-flight sibling downloads.
	var (
		mu   sync.Mutex
		done int
	)
	g, actx := errgroup.WithContext(ctx)
	g.SetLimit(workers)
	for idx, meta := range items {
		idx, meta := idx, meta
		g.Go(func() error {
			if actx.Err() != nil {
				return nil
			}
			quarantine := func(err error) (bool, error) {
				// Cancellation is not an app failure; a tolerated failure
				// still steps Progress so totals stay consistent.
				if cr.FailApp == nil || actx.Err() != nil || errs.IsContextError(err) {
					return false, err
				}
				if ferr := cr.FailApp(idx, meta, err); ferr != nil {
					return false, ferr
				}
				mu.Lock()
				done++
				if cr.Progress != nil {
					cr.Progress(done, total)
				}
				mu.Unlock()
				return true, nil
			}
			apkBytes, err := cr.Client.DownloadAPK(actx, meta.Package)
			if err != nil {
				skipped, err := quarantine(fmt.Errorf("crawler: download %s: %w", meta.Package, err))
				if skipped {
					return nil
				}
				return err
			}
			man, err := cr.Client.Delivery(actx, meta.Package)
			if err != nil {
				skipped, err := quarantine(fmt.Errorf("crawler: delivery %s: %w", meta.Package, err))
				if skipped {
					return nil
				}
				return err
			}
			if cr.Store != nil {
				// Numbers go in pre-normalised to float64 (the store's JSON
				// form) so Put's deep copy shares instead of re-boxing.
				doc := docstore.Doc{
					"package":   meta.Package,
					"title":     meta.Title,
					"category":  meta.Category,
					"rank":      float64(meta.Rank),
					"downloads": float64(meta.Downloads),
					"rating":    meta.Rating,
					"apkBytes":  float64(len(apkBytes)),
				}
				if err := cr.Store.Put("apps-"+label, meta.Package, doc); err != nil {
					return err
				}
			}
			if handle != nil {
				if err := handle(idx, meta, apkBytes); err != nil {
					return fmt.Errorf("crawler: handling %s: %w", meta.Package, err)
				}
			}
			mu.Lock()
			res.CompanionFiles += len(man.OBBs) + len(man.AssetPacks)
			res.Apps++
			res.APKBytes += int64(len(apkBytes))
			done++
			if cr.Progress != nil {
				cr.Progress(done, total)
			}
			mu.Unlock()
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		return res, err
	}
	if err := ctx.Err(); err != nil {
		// Every worker drained without an error of its own: the crawl was
		// cancelled. Surface the context error so callers can distinguish
		// "interrupted" from "complete".
		return res, err
	}
	return res, nil
}

// readBody drains a response body into a buffer pre-sized from the
// Content-Length hint, so a 100 MB APK download costs one allocation
// instead of io.ReadAll's ~18 doubling regrowths. The hint is only trusted
// up to the store's base-APK ceiling (a hostile header cannot force an
// arbitrary allocation); unknown or implausible lengths fall back to
// io.ReadAll.
func readBody(r io.Reader, contentLength int64) ([]byte, error) {
	if contentLength <= 0 || contentLength > apk.MaxBaseAPKSize {
		return io.ReadAll(r)
	}
	// One spare byte lets the final Read report io.EOF without growing.
	buf := make([]byte, 0, contentLength+1)
	for {
		n, err := r.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			return buf, nil
		}
		if err != nil {
			return nil, err
		}
		if len(buf) == cap(buf) {
			// Body exceeds the declared length; let ReadAll finish the
			// (malformed, but tolerated) remainder.
			rest, err := io.ReadAll(r)
			if err != nil {
				return nil, err
			}
			return append(buf, rest...), nil
		}
	}
}

func truncate(b []byte, n int) string {
	if len(b) > n {
		b = b[:n]
	}
	return string(b)
}
