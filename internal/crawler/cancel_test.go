package crawler

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"github.com/gaugenn/gaugenn/internal/testutil"
)

// TestCrawlerRunCancelled cancels a crawl from inside the handle callback
// and checks the contract: Run returns promptly (drained workers, no new
// dispatches), the error chain carries context.Canceled, and the handled
// prefix is consistent (every index delivered at most once).
func TestCrawlerRunCancelled(t *testing.T) {
	testutil.NoLeakedGoroutines(t)
	_, base := startStore(t, 0.02)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cr := &Crawler{Client: NewClient(base), MaxPerCategory: 500, Workers: 4}
	var handled atomic.Int64
	type outcome struct {
		res Result
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		res, err := cr.Run(ctx, "cancelled", func(idx int, meta AppMeta, apkBytes []byte) error {
			if handled.Add(1) == 3 {
				cancel()
			}
			return nil
		})
		ch <- outcome{res, err}
	}()
	var o outcome
	select {
	case o = <-ch:
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled crawl did not return")
	}
	if o.err == nil {
		t.Fatal("cancelled crawl returned nil error")
	}
	if !errors.Is(o.err, context.Canceled) {
		t.Fatalf("cancellation not on the chain: %v", o.err)
	}
	if n := handled.Load(); n < 3 {
		t.Fatalf("handled %d apps before cancel", n)
	}
}

// TestCrawlerRunPreCancelled: a dead context stops the crawl before the
// first chart fetch completes the app phase.
func TestCrawlerRunPreCancelled(t *testing.T) {
	_, base := startStore(t, 0.01)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cr := &Crawler{Client: NewClient(base), MaxPerCategory: 5}
	_, err := cr.Run(ctx, "dead", func(idx int, meta AppMeta, apkBytes []byte) error {
		t.Error("handle ran under a dead context")
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled crawl returned %v", err)
	}
}

// TestClientRetryRespectsCancellation: the retry backoff must not sit out
// its delay once the context is dead.
func TestClientRetryRespectsCancellation(t *testing.T) {
	c := NewClient("http://127.0.0.1:1") // nothing listens: every attempt errors
	c.Retries = 1000
	c.RetryDelay = time.Hour // would block for days if cancellation were ignored
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.Categories(ctx)
		done <- err
	}()
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("unreachable store returned nil error")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled retry loop stayed in backoff")
	}
}
