package crawler

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/gaugenn/gaugenn/internal/retry"
)

func TestClientHonorsRetryAfterOn429(t *testing.T) {
	var count atomic.Int64
	var firstRetry atomic.Int64
	var served atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := count.Add(1)
		if n == 1 {
			served.Store(time.Now().UnixNano())
			w.Header().Set("Retry-After", "1")
			http.Error(w, "slow down", http.StatusTooManyRequests)
			return
		}
		firstRetry.Store(time.Now().UnixNano())
		json.NewEncoder(w).Encode([]string{"COMMUNICATION"})
	}))
	t.Cleanup(srv.Close)

	c := NewClient(srv.URL)
	// BaseDelay is near-zero: only the Retry-After hint can explain a
	// measurable gap before the retry.
	c.Retry = &retry.Policy{Attempts: 3, BaseDelay: time.Nanosecond, MaxDelay: time.Minute, Multiplier: 1}
	if _, err := c.Categories(context.Background()); err != nil {
		t.Fatalf("429 then 200 should recover: %v", err)
	}
	if count.Load() != 2 {
		t.Fatalf("requests = %d, want 2", count.Load())
	}
	gap := time.Duration(firstRetry.Load() - served.Load())
	if gap < 900*time.Millisecond {
		t.Fatalf("retry fired %v after the 429; Retry-After: 1 was not honoured", gap)
	}
}

func TestClientCapsRetryAfterByMaxDelay(t *testing.T) {
	var count atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if count.Add(1) == 1 {
			w.Header().Set("Retry-After", "3600") // an hour — must be capped
			http.Error(w, "slow down", http.StatusServiceUnavailable)
			return
		}
		json.NewEncoder(w).Encode([]string{"COMMUNICATION"})
	}))
	t.Cleanup(srv.Close)

	c := NewClient(srv.URL)
	c.Retry = &retry.Policy{Attempts: 2, BaseDelay: time.Millisecond, MaxDelay: 50 * time.Millisecond, Multiplier: 1}
	start := time.Now()
	if _, err := c.Categories(context.Background()); err != nil {
		t.Fatalf("503 then 200 should recover: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("hour-long Retry-After not capped by MaxDelay (took %v)", elapsed)
	}
	if count.Load() != 2 {
		t.Fatalf("requests = %d, want 2", count.Load())
	}
}

func TestClientDefaultPolicyRetries(t *testing.T) {
	srv, count := flakyStore(t, 2)
	c := NewClient(srv.URL) // no retry knobs set at all
	if _, err := c.Categories(context.Background()); err != nil {
		t.Fatalf("default policy should ride out two 500s: %v", err)
	}
	if count.Load() != 3 {
		t.Fatalf("requests = %d, want 3 under retry.Default()", count.Load())
	}
}

func TestClientBreakerFailsFast(t *testing.T) {
	var count atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		count.Add(1)
		http.Error(w, "dead backend", http.StatusInternalServerError)
	}))
	t.Cleanup(srv.Close)

	c := NewClient(srv.URL)
	c.Retry = &retry.Policy{Attempts: 3, BaseDelay: time.Millisecond, Multiplier: 1}
	c.Breaker = retry.NewBreaker(3)
	if _, err := c.Categories(context.Background()); err == nil {
		t.Fatal("dead backend should fail")
	}
	reqsAfterTrip := count.Load()
	if reqsAfterTrip != 3 {
		t.Fatalf("first ladder made %d requests, want 3", reqsAfterTrip)
	}
	_, err := c.Categories(context.Background())
	if !errors.Is(err, retry.ErrOpen) {
		t.Fatalf("tripped breaker returned %v, want retry.ErrOpen", err)
	}
	if count.Load() != reqsAfterTrip {
		t.Fatalf("open circuit still issued %d requests", count.Load()-reqsAfterTrip)
	}
}

// quarantineStore serves a two-app chart where one APK download always
// 500s, exercising the FailApp tolerance path end-to-end.
func quarantineStore(t *testing.T, failPkg string) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/fdfe/categories":
			json.NewEncoder(w).Encode([]string{"COMMUNICATION"})
		case "/fdfe/topCharts":
			json.NewEncoder(w).Encode([]AppMeta{
				{Package: "com.good.app", Category: "COMMUNICATION", Rank: 1},
				{Package: failPkg, Category: "COMMUNICATION", Rank: 2},
			})
		case "/fdfe/purchase":
			if r.URL.Query().Get("doc") == failPkg {
				http.Error(w, "storage backend lost the apk", http.StatusInternalServerError)
				return
			}
			w.Write([]byte("apk-bytes"))
		case "/fdfe/delivery":
			json.NewEncoder(w).Encode(DeliveryManifest{Package: r.URL.Query().Get("doc")})
		default:
			http.NotFound(w, r)
		}
	}))
	t.Cleanup(srv.Close)
	return srv
}

func TestCrawlerFailAppQuarantinesAndContinues(t *testing.T) {
	srv := quarantineStore(t, "com.broken.app")
	c := NewClient(srv.URL)
	c.Retry = &retry.Policy{Attempts: 2, BaseDelay: time.Millisecond, Multiplier: 1}

	var mu sync.Mutex
	var quarantined []string
	var handled []string
	var progress []int
	cr := &Crawler{
		Client: c,
		FailApp: func(idx int, meta AppMeta, err error) error {
			mu.Lock()
			quarantined = append(quarantined, meta.Package)
			mu.Unlock()
			if err == nil || !strings.Contains(err.Error(), "500") {
				return fmt.Errorf("unexpected quarantine cause: %w", err)
			}
			return nil
		},
		Progress: func(done, total int) {
			mu.Lock()
			progress = append(progress, done)
			mu.Unlock()
		},
	}
	res, err := cr.Run(context.Background(), "2021", func(idx int, meta AppMeta, apkBytes []byte) error {
		mu.Lock()
		handled = append(handled, meta.Package)
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatalf("quarantined failure must not abort the crawl: %v", err)
	}
	if len(quarantined) != 1 || quarantined[0] != "com.broken.app" {
		t.Fatalf("quarantined = %v, want [com.broken.app]", quarantined)
	}
	if len(handled) != 1 || handled[0] != "com.good.app" {
		t.Fatalf("handled = %v, want [com.good.app]", handled)
	}
	if res.Apps != 1 {
		t.Fatalf("res.Apps = %d, want 1 (quarantined app not counted)", res.Apps)
	}
	last := progress[len(progress)-1]
	if last != 2 {
		t.Fatalf("final progress = %d, want 2 (quarantined app still steps)", last)
	}
}

func TestCrawlerNilFailAppAbortsAsBefore(t *testing.T) {
	srv := quarantineStore(t, "com.broken.app")
	c := NewClient(srv.URL)
	c.Retry = &retry.Policy{Attempts: 2, BaseDelay: time.Millisecond, Multiplier: 1}
	cr := &Crawler{Client: c}
	if _, err := cr.Run(context.Background(), "2021", nil); err == nil {
		t.Fatal("nil FailApp must abort on a per-app failure")
	}
}

func TestCrawlerFailAppErrorAborts(t *testing.T) {
	srv := quarantineStore(t, "com.broken.app")
	c := NewClient(srv.URL)
	c.Retry = &retry.Policy{Attempts: 2, BaseDelay: time.Millisecond, Multiplier: 1}
	sentinel := errors.New("budget blown")
	cr := &Crawler{
		Client:  c,
		FailApp: func(int, AppMeta, error) error { return sentinel },
	}
	_, err := cr.Run(context.Background(), "2021", nil)
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want the FailApp verdict", err)
	}
}
