package crawler

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/gaugenn/gaugenn/internal/docstore"
	"github.com/gaugenn/gaugenn/internal/playstore"
)

func startStore(t *testing.T, scale float64) (*playstore.Study, string) {
	t.Helper()
	study, err := playstore.GenerateStudy(playstore.DefaultConfig(21, scale))
	if err != nil {
		t.Fatal(err)
	}
	srv := playstore.NewServer(study.Snap21)
	base, shutdown, err := srv.Listen()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { shutdown() })
	return study, base
}

func TestClientEndpoints(t *testing.T) {
	study, base := startStore(t, 0.02)
	c := NewClient(base)

	cats, err := c.Categories(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(cats) != 33 {
		t.Fatalf("categories = %d", len(cats))
	}

	chart, err := c.TopChart(context.Background(), "COMMUNICATION", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(chart) == 0 || chart[0].Rank != 1 {
		t.Fatalf("chart: %+v", chart)
	}

	meta, err := c.Details(context.Background(), chart[0].Package)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Package != chart[0].Package || meta.Category != "COMMUNICATION" {
		t.Fatalf("details: %+v", meta)
	}

	apk, err := c.DownloadAPK(context.Background(), chart[0].Package)
	if err != nil {
		t.Fatal(err)
	}
	if len(apk) == 0 {
		t.Fatal("empty apk")
	}

	man, err := c.Delivery(context.Background(), chart[0].Package)
	if err != nil {
		t.Fatal(err)
	}
	if len(man.OBBs) != 0 || len(man.AssetPacks) != 0 {
		t.Fatal("expected no companion files")
	}

	if _, err := c.Details(context.Background(), "ghost.pkg"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("unknown package should 404: %v", err)
	}
	_ = study
}

func TestClientRequiresHeaders(t *testing.T) {
	_, base := startStore(t, 0.01)
	c := NewClient(base)
	c.Locale = "" // the store must reject locale-less requests
	if _, err := c.Categories(context.Background()); err == nil {
		t.Fatal("missing locale should fail")
	}
}

func TestCrawlerRun(t *testing.T) {
	study, base := startStore(t, 0.02)
	store := docstore.New()
	cr := &Crawler{
		Client:         NewClient(base),
		Store:          store,
		MaxPerCategory: 500,
	}
	apps := 0
	var apkTotal int64
	seenIdx := map[int]bool{}
	res, err := cr.Run(context.Background(), "2021", func(idx int, meta AppMeta, apkBytes []byte) error {
		apps++
		apkTotal += int64(len(apkBytes))
		if meta.Package == "" || len(apkBytes) == 0 {
			t.Errorf("bad handle args for %+v", meta)
		}
		if seenIdx[idx] {
			t.Errorf("index %d delivered twice", idx)
		}
		seenIdx[idx] = true
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Apps != len(study.Snap21.Apps) {
		t.Fatalf("crawled %d apps, store has %d", res.Apps, len(study.Snap21.Apps))
	}
	if res.Apps != apps {
		t.Fatal("handler call count mismatch")
	}
	if res.Categories != 33 {
		t.Fatalf("categories = %d", res.Categories)
	}
	if res.CompanionFiles != 0 {
		t.Fatal("paper finding: no companion-file models")
	}
	if res.APKBytes != apkTotal {
		t.Fatal("APK byte accounting mismatch")
	}
	// Metadata landed in the docstore.
	if n := store.Count("apps-2021"); n != res.Apps {
		t.Fatalf("docstore holds %d apps, crawled %d", n, res.Apps)
	}
	agg := store.TermsAgg("apps-2021", "category")
	if agg["COMMUNICATION"] == 0 {
		t.Fatal("category aggregation empty")
	}
	// Every crawl index in [0, total) was delivered exactly once.
	for i := 0; i < res.Apps; i++ {
		if !seenIdx[i] {
			t.Fatalf("index %d never delivered", i)
		}
	}
}

func TestCrawlerRunParallelMatchesSequential(t *testing.T) {
	study, base := startStore(t, 0.02)
	crawl := func(workers int) (Result, map[int]string) {
		t.Helper()
		var mu sync.Mutex
		pkgAt := map[int]string{}
		cr := &Crawler{Client: NewClient(base), MaxPerCategory: 500, Workers: workers}
		res, err := cr.Run(context.Background(), "par", func(idx int, meta AppMeta, apkBytes []byte) error {
			if len(apkBytes) == 0 {
				return fmt.Errorf("empty apk for %s", meta.Package)
			}
			mu.Lock()
			pkgAt[idx] = meta.Package
			mu.Unlock()
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return res, pkgAt
	}
	seqRes, seqPkgs := crawl(1)
	parRes, parPkgs := crawl(8)
	if seqRes.Apps != len(study.Snap21.Apps) || parRes.Apps != seqRes.Apps {
		t.Fatalf("app counts diverge: seq=%d par=%d store=%d", seqRes.Apps, parRes.Apps, len(study.Snap21.Apps))
	}
	if parRes.APKBytes != seqRes.APKBytes || parRes.CompanionFiles != seqRes.CompanionFiles {
		t.Fatalf("accounting diverges: seq=%+v par=%+v", seqRes, parRes)
	}
	if len(seqPkgs) != len(parPkgs) {
		t.Fatalf("handle count diverges: seq=%d par=%d", len(seqPkgs), len(parPkgs))
	}
	// The index -> package assignment is deterministic across worker counts.
	for idx, pkg := range seqPkgs {
		if parPkgs[idx] != pkg {
			t.Fatalf("index %d: seq=%s par=%s", idx, pkg, parPkgs[idx])
		}
	}
}

func TestCrawlerParallelStopsOnHandleError(t *testing.T) {
	_, base := startStore(t, 0.02)
	cr := &Crawler{Client: NewClient(base), MaxPerCategory: 500, Workers: 4}
	var calls atomic.Int64
	_, err := cr.Run(context.Background(), "err", func(idx int, meta AppMeta, apkBytes []byte) error {
		if calls.Add(1) == 3 {
			return fmt.Errorf("synthetic handler failure")
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "synthetic handler failure") {
		t.Fatalf("handler error not surfaced: %v", err)
	}
}

func TestCrawlerChartCap(t *testing.T) {
	_, base := startStore(t, 0.02)
	cr := &Crawler{Client: NewClient(base), MaxPerCategory: 3}
	res, err := cr.Run(context.Background(), "capped", nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Apps != 33*3 {
		t.Fatalf("capped crawl = %d apps, want %d", res.Apps, 33*3)
	}
}

func TestCrawlerProgress(t *testing.T) {
	_, base := startStore(t, 0.01)
	var last, total int
	cr := &Crawler{
		Client:         NewClient(base),
		MaxPerCategory: 2,
		Progress: func(done, t int) {
			last, total = done, t
		},
	}
	res, err := cr.Run(context.Background(), "p", nil)
	if err != nil {
		t.Fatal(err)
	}
	if last != res.Apps || total != res.Apps {
		t.Fatalf("progress: last=%d total=%d apps=%d", last, total, res.Apps)
	}
}

func TestClientBadBaseURL(t *testing.T) {
	c := NewClient("http://127.0.0.1:1")
	if _, err := c.Categories(context.Background()); err == nil {
		t.Fatal("unreachable store should fail")
	}
}
