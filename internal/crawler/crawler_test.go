package crawler

import (
	"strings"
	"testing"

	"github.com/gaugenn/gaugenn/internal/docstore"
	"github.com/gaugenn/gaugenn/internal/playstore"
)

func startStore(t *testing.T, scale float64) (*playstore.Study, string) {
	t.Helper()
	study, err := playstore.GenerateStudy(playstore.DefaultConfig(21, scale))
	if err != nil {
		t.Fatal(err)
	}
	srv := playstore.NewServer(study.Snap21)
	base, shutdown, err := srv.Listen()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { shutdown() })
	return study, base
}

func TestClientEndpoints(t *testing.T) {
	study, base := startStore(t, 0.02)
	c := NewClient(base)

	cats, err := c.Categories()
	if err != nil {
		t.Fatal(err)
	}
	if len(cats) != 33 {
		t.Fatalf("categories = %d", len(cats))
	}

	chart, err := c.TopChart("COMMUNICATION", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(chart) == 0 || chart[0].Rank != 1 {
		t.Fatalf("chart: %+v", chart)
	}

	meta, err := c.Details(chart[0].Package)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Package != chart[0].Package || meta.Category != "COMMUNICATION" {
		t.Fatalf("details: %+v", meta)
	}

	apk, err := c.DownloadAPK(chart[0].Package)
	if err != nil {
		t.Fatal(err)
	}
	if len(apk) == 0 {
		t.Fatal("empty apk")
	}

	man, err := c.Delivery(chart[0].Package)
	if err != nil {
		t.Fatal(err)
	}
	if len(man.OBBs) != 0 || len(man.AssetPacks) != 0 {
		t.Fatal("expected no companion files")
	}

	if _, err := c.Details("ghost.pkg"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("unknown package should 404: %v", err)
	}
	_ = study
}

func TestClientRequiresHeaders(t *testing.T) {
	_, base := startStore(t, 0.01)
	c := NewClient(base)
	c.Locale = "" // the store must reject locale-less requests
	if _, err := c.Categories(); err == nil {
		t.Fatal("missing locale should fail")
	}
}

func TestCrawlerRun(t *testing.T) {
	study, base := startStore(t, 0.02)
	store := docstore.New()
	cr := &Crawler{
		Client:         NewClient(base),
		Store:          store,
		MaxPerCategory: 500,
	}
	apps := 0
	var apkTotal int64
	res, err := cr.Run("2021", func(meta AppMeta, apkBytes []byte) error {
		apps++
		apkTotal += int64(len(apkBytes))
		if meta.Package == "" || len(apkBytes) == 0 {
			t.Errorf("bad handle args for %+v", meta)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Apps != len(study.Snap21.Apps) {
		t.Fatalf("crawled %d apps, store has %d", res.Apps, len(study.Snap21.Apps))
	}
	if res.Apps != apps {
		t.Fatal("handler call count mismatch")
	}
	if res.Categories != 33 {
		t.Fatalf("categories = %d", res.Categories)
	}
	if res.CompanionFiles != 0 {
		t.Fatal("paper finding: no companion-file models")
	}
	if res.APKBytes != apkTotal {
		t.Fatal("APK byte accounting mismatch")
	}
	// Metadata landed in the docstore.
	if n := store.Count("apps-2021"); n != res.Apps {
		t.Fatalf("docstore holds %d apps, crawled %d", n, res.Apps)
	}
	agg := store.TermsAgg("apps-2021", "category")
	if agg["COMMUNICATION"] == 0 {
		t.Fatal("category aggregation empty")
	}
}

func TestCrawlerChartCap(t *testing.T) {
	_, base := startStore(t, 0.02)
	cr := &Crawler{Client: NewClient(base), MaxPerCategory: 3}
	res, err := cr.Run("capped", nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Apps != 33*3 {
		t.Fatalf("capped crawl = %d apps, want %d", res.Apps, 33*3)
	}
}

func TestCrawlerProgress(t *testing.T) {
	_, base := startStore(t, 0.01)
	var last, total int
	cr := &Crawler{
		Client:         NewClient(base),
		MaxPerCategory: 2,
		Progress: func(done, t int) {
			last, total = done, t
		},
	}
	res, err := cr.Run("p", nil)
	if err != nil {
		t.Fatal(err)
	}
	if last != res.Apps || total != res.Apps {
		t.Fatalf("progress: last=%d total=%d apps=%d", last, total, res.Apps)
	}
}

func TestClientBadBaseURL(t *testing.T) {
	c := NewClient("http://127.0.0.1:1")
	if _, err := c.Categories(); err == nil {
		t.Fatal("unreachable store should fail")
	}
}
