// Package errs defines gaugeNN's public error taxonomy: sentinel values
// usable with errors.Is across package boundaries, and the StageError
// wrapper that attributes a pipeline failure to the stage (and snapshot)
// it happened in. It is a leaf package so every layer — core, crawler,
// fleet, bench, serve — can speak the same taxonomy without import
// cycles; the root gaugenn package re-exports the names.
package errs

import (
	"context"
	"errors"
	"fmt"
)

var (
	// ErrCancelled marks a run stopped by its context — either an explicit
	// cancel or an expired deadline. Match with errors.Is; the concrete
	// cause (context.Canceled or context.DeadlineExceeded) stays on the
	// chain for callers that care which.
	ErrCancelled = errors.New("gaugenn: run cancelled")
	// ErrNoDevice marks a benchmark request no pooled rig can serve.
	ErrNoDevice = errors.New("gaugenn: no device serves the request")
	// ErrExhausted marks a job whose every scheduling attempt failed.
	ErrExhausted = errors.New("gaugenn: scheduling attempts exhausted")
	// ErrStoreCorrupt marks a persisted study-store record that no longer
	// decodes — a torn blob, a codec mismatch, or outside interference.
	ErrStoreCorrupt = errors.New("gaugenn: study store corrupt")
	// ErrBudgetExceeded marks a study whose per-app failures outgrew its
	// failure budget: too much of the corpus was quarantined for the
	// surviving result to stand for the study. Match with errors.Is; the
	// concrete *BudgetError carries the quarantined packages.
	ErrBudgetExceeded = errors.New("gaugenn: failure budget exceeded")
	// ErrUnsupportedOps marks a graph that cannot run on the in-process
	// executor because it carries operators outside the interpreter's
	// kernel vocabulary. Match with errors.Is; the concrete
	// *UnsupportedOpsError lists the offending operators.
	ErrUnsupportedOps = errors.New("gaugenn: graph has operators the executor does not support")
)

// IsContextError reports whether err is (or wraps) a context cancellation
// or deadline expiry — the class of failures that must never be recorded
// as a computation outcome (see the UniqueCache no-poison rule).
func IsContextError(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// StageError attributes a pipeline failure to the stage it happened in:
// "crawl", "extract", "analyse", "persist", "bench" or "fleet". Study
// pipelines also carry the snapshot label ("2020"/"2021"). The underlying
// cause is preserved for errors.Is/As — a cancelled run satisfies both
// errors.Is(err, context.Canceled) and errors.Is(err, ErrCancelled).
type StageError struct {
	Stage    string
	Snapshot string
	Err      error
}

func (e *StageError) Error() string {
	if e.Snapshot != "" {
		return fmt.Sprintf("gaugenn: stage %s/%s: %v", e.Stage, e.Snapshot, e.Err)
	}
	return fmt.Sprintf("gaugenn: stage %s: %v", e.Stage, e.Err)
}

func (e *StageError) Unwrap() error { return e.Err }

// Is makes errors.Is(err, ErrCancelled) true for any stage failure whose
// cause is a context cancellation or deadline.
func (e *StageError) Is(target error) bool {
	return target == ErrCancelled && IsContextError(e.Err)
}

// Stage wraps err with stage attribution, passing nil through and
// preserving an existing StageError (the innermost attribution wins — it
// names the layer closest to the failure).
func Stage(stage, snapshot string, err error) error {
	if err == nil {
		return nil
	}
	var se *StageError
	if errors.As(err, &se) {
		return err
	}
	return &StageError{Stage: stage, Snapshot: snapshot, Err: err}
}

// AppError is one quarantined app: a per-app pipeline failure the study
// survived by dropping the app from its corpus instead of aborting. The
// engine surfaces each as a StageWarning event and collects them in
// StudyResult.Quarantine; only a blown failure budget turns them into a
// run-level error.
type AppError struct {
	// Package is the failed app's package name.
	Package string
	// Snapshot is the study snapshot label the failure happened under.
	Snapshot string
	// Stage names the pipeline stage that failed ("crawl", "extract").
	Stage string
	// Err is the underlying cause, preserved for errors.Is/As.
	Err error
}

func (e *AppError) Error() string {
	return fmt.Sprintf("gaugenn: app %s (%s/%s): %v", e.Package, e.Stage, e.Snapshot, e.Err)
}

func (e *AppError) Unwrap() error { return e.Err }

// BudgetError reports a snapshot whose quarantine outgrew the failure
// budget. It satisfies errors.Is(err, ErrBudgetExceeded) and lists every
// package quarantined before the run gave up, in deterministic order.
type BudgetError struct {
	// Snapshot is the label whose budget blew first.
	Snapshot string
	// Budget is the maximum tolerated failure count; Failed is how many
	// apps had failed when the run stopped; Total sizes the snapshot.
	Budget, Failed, Total int
	// Packages lists the quarantined package names, sorted.
	Packages []string
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("gaugenn: snapshot %s: %d of %d apps failed (budget %d): %v",
		e.Snapshot, e.Failed, e.Total, e.Budget, e.Packages)
}

// Is makes errors.Is(err, ErrBudgetExceeded) true for any blown budget.
func (e *BudgetError) Is(target error) bool { return target == ErrBudgetExceeded }

// UnsupportedOpsError reports a graph rejected by the in-process executor:
// the model asked for measured (not simulated) inference but contains
// operators the interpreter has no kernels for. It satisfies
// errors.Is(err, ErrUnsupportedOps) and lists each offending operator once,
// sorted, so CLIs can print an actionable message instead of panicking
// mid-run on the first unknown layer.
type UnsupportedOpsError struct {
	// Model is the graph's name.
	Model string
	// Ops lists the unsupported operator names (with a bracketed detail for
	// supported operators in unsupported configurations, e.g.
	// "conv2d[groups>1]"), deduplicated and sorted.
	Ops []string
}

func (e *UnsupportedOpsError) Error() string {
	return fmt.Sprintf("gaugenn: model %s has operators the executor does not support: %v", e.Model, e.Ops)
}

// Is makes errors.Is(err, ErrUnsupportedOps) true for any rejected graph.
func (e *UnsupportedOpsError) Is(target error) bool { return target == ErrUnsupportedOps }
