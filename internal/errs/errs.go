// Package errs defines gaugeNN's public error taxonomy: sentinel values
// usable with errors.Is across package boundaries, and the StageError
// wrapper that attributes a pipeline failure to the stage (and snapshot)
// it happened in. It is a leaf package so every layer — core, crawler,
// fleet, bench, serve — can speak the same taxonomy without import
// cycles; the root gaugenn package re-exports the names.
package errs

import (
	"context"
	"errors"
	"fmt"
)

var (
	// ErrCancelled marks a run stopped by its context — either an explicit
	// cancel or an expired deadline. Match with errors.Is; the concrete
	// cause (context.Canceled or context.DeadlineExceeded) stays on the
	// chain for callers that care which.
	ErrCancelled = errors.New("gaugenn: run cancelled")
	// ErrNoDevice marks a benchmark request no pooled rig can serve.
	ErrNoDevice = errors.New("gaugenn: no device serves the request")
	// ErrExhausted marks a job whose every scheduling attempt failed.
	ErrExhausted = errors.New("gaugenn: scheduling attempts exhausted")
	// ErrStoreCorrupt marks a persisted study-store record that no longer
	// decodes — a torn blob, a codec mismatch, or outside interference.
	ErrStoreCorrupt = errors.New("gaugenn: study store corrupt")
)

// IsContextError reports whether err is (or wraps) a context cancellation
// or deadline expiry — the class of failures that must never be recorded
// as a computation outcome (see the UniqueCache no-poison rule).
func IsContextError(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// StageError attributes a pipeline failure to the stage it happened in:
// "crawl", "extract", "analyse", "persist", "bench" or "fleet". Study
// pipelines also carry the snapshot label ("2020"/"2021"). The underlying
// cause is preserved for errors.Is/As — a cancelled run satisfies both
// errors.Is(err, context.Canceled) and errors.Is(err, ErrCancelled).
type StageError struct {
	Stage    string
	Snapshot string
	Err      error
}

func (e *StageError) Error() string {
	if e.Snapshot != "" {
		return fmt.Sprintf("gaugenn: stage %s/%s: %v", e.Stage, e.Snapshot, e.Err)
	}
	return fmt.Sprintf("gaugenn: stage %s: %v", e.Stage, e.Err)
}

func (e *StageError) Unwrap() error { return e.Err }

// Is makes errors.Is(err, ErrCancelled) true for any stage failure whose
// cause is a context cancellation or deadline.
func (e *StageError) Is(target error) bool {
	return target == ErrCancelled && IsContextError(e.Err)
}

// Stage wraps err with stage attribution, passing nil through and
// preserving an existing StageError (the innermost attribution wins — it
// names the layer closest to the failure).
func Stage(stage, snapshot string, err error) error {
	if err == nil {
		return nil
	}
	var se *StageError
	if errors.As(err, &se) {
		return err
	}
	return &StageError{Stage: stage, Snapshot: snapshot, Err: err}
}
