package retry

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestZeroPolicySingleAttempt(t *testing.T) {
	calls := 0
	boom := errors.New("boom")
	err := Do(context.Background(), Policy{}, func(context.Context) error {
		calls++
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1 (zero policy must not retry)", calls)
	}
}

func TestDoRetriesUntilSuccess(t *testing.T) {
	calls := 0
	err := Do(context.Background(), Policy{Attempts: 5}, func(context.Context) error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
}

func TestDoExhaustsAttempts(t *testing.T) {
	calls := 0
	boom := errors.New("always")
	err := Do(context.Background(), Policy{Attempts: 4}, func(context.Context) error {
		calls++
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if calls != 4 {
		t.Fatalf("calls = %d, want 4", calls)
	}
}

func TestPermanentStopsImmediately(t *testing.T) {
	calls := 0
	fatal := errors.New("fatal")
	err := Do(context.Background(), Policy{Attempts: 10}, func(context.Context) error {
		calls++
		return Permanent(fatal)
	})
	if calls != 1 {
		t.Fatalf("calls = %d, want 1", calls)
	}
	// Do unwraps the Permanent marker: callers match the original error.
	if !errors.Is(err, fatal) {
		t.Fatalf("err = %v, want %v", err, fatal)
	}
	if _, ok := err.(*permanentError); ok {
		t.Fatalf("Do leaked the permanent wrapper")
	}
}

func TestPermanentNil(t *testing.T) {
	if Permanent(nil) != nil {
		t.Fatal("Permanent(nil) != nil")
	}
	if Hint(nil, time.Second) != nil {
		t.Fatal("Hint(nil, d) != nil")
	}
}

func TestDoHonorsCancellationDuringBackoff(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	start := time.Now()
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	err := Do(ctx, Policy{Attempts: 3, BaseDelay: time.Hour}, func(context.Context) error {
		calls++
		return errors.New("transient")
	})
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Do blocked %v in backoff despite cancellation", elapsed)
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1", calls)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled on chain", err)
	}
}

func TestDoStopsWhenOpSeesCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	err := Do(ctx, Policy{Attempts: 10}, func(context.Context) error {
		calls++
		cancel()
		return errors.New("transient")
	})
	if calls != 1 {
		t.Fatalf("calls = %d, want 1 (dead ctx must stop the ladder)", calls)
	}
	if err == nil {
		t.Fatal("err = nil, want the op error")
	}
}

func TestDelaySchedule(t *testing.T) {
	p := Policy{Attempts: 5, BaseDelay: 50 * time.Millisecond, Multiplier: 2, MaxDelay: 150 * time.Millisecond}
	want := []time.Duration{50 * time.Millisecond, 100 * time.Millisecond, 150 * time.Millisecond, 150 * time.Millisecond}
	for i, w := range want {
		if got := p.Delay(i + 1); got != w {
			t.Fatalf("Delay(%d) = %v, want %v", i+1, got, w)
		}
	}
	if got := (Policy{}).Delay(1); got != 0 {
		t.Fatalf("zero-policy Delay = %v, want 0", got)
	}
}

func TestJitterDeterministicAndBounded(t *testing.T) {
	p := Policy{BaseDelay: time.Second, Multiplier: 1, Jitter: 0.5, Seed: 7}
	for n := 1; n <= 10; n++ {
		d1, d2 := p.Delay(n), p.Delay(n)
		if d1 != d2 {
			t.Fatalf("Delay(%d) nondeterministic: %v vs %v", n, d1, d2)
		}
		if d1 > time.Second || d1 < 500*time.Millisecond {
			t.Fatalf("Delay(%d) = %v outside [base/2, base]", n, d1)
		}
	}
	other := Policy{BaseDelay: time.Second, Multiplier: 1, Jitter: 0.5, Seed: 8}
	same := true
	for n := 1; n <= 10; n++ {
		if p.Delay(n) != other.Delay(n) {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical jitter streams")
	}
}

func TestHintOverridesBackoff(t *testing.T) {
	calls := 0
	var waited time.Duration
	start := time.Now()
	p := Policy{Attempts: 2, BaseDelay: time.Hour, MaxDelay: 30 * time.Millisecond}
	err := Do(context.Background(), p, func(context.Context) error {
		calls++
		if calls == 1 {
			// Server asks for a long wait; MaxDelay caps it so the test is fast
			// and the ladder never outwaits its policy.
			return Hint(errors.New("429"), time.Hour)
		}
		waited = time.Since(start)
		return nil
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if waited < 30*time.Millisecond {
		t.Fatalf("retry fired after %v, before the hinted wait", waited)
	}
	if waited > 10*time.Second {
		t.Fatalf("hint not capped by MaxDelay: waited %v", waited)
	}
}

func TestHintFrom(t *testing.T) {
	base := errors.New("x")
	if _, ok := HintFrom(base); ok {
		t.Fatal("HintFrom(plain) reported a hint")
	}
	d, ok := HintFrom(Hint(base, 3*time.Second))
	if !ok || d != 3*time.Second {
		t.Fatalf("HintFrom = (%v, %v), want (3s, true)", d, ok)
	}
	if !errors.Is(Hint(base, time.Second), base) {
		t.Fatal("Hint broke the error chain")
	}
}

func TestBudgetStopsRetries(t *testing.T) {
	calls := 0
	boom := errors.New("slow")
	p := Policy{Attempts: 100, BaseDelay: time.Hour, Budget: time.Millisecond}
	err := Do(context.Background(), p, func(context.Context) error {
		calls++
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1 (hour-long wait exceeds 1ms budget)", calls)
	}
}

func TestSleepCancellable(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := Sleep(ctx, time.Hour); !errors.Is(err, context.Canceled) {
		t.Fatalf("Sleep on dead ctx = %v, want context.Canceled", err)
	}
	if err := Sleep(ctx, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("zero Sleep on dead ctx = %v, want context.Canceled", err)
	}
	if err := Sleep(context.Background(), 0); err != nil {
		t.Fatalf("zero Sleep = %v, want nil", err)
	}
}

func TestBreakerOpensAtThreshold(t *testing.T) {
	b := NewBreaker(3)
	key := "host-a"
	for i := 0; i < 2; i++ {
		if opened := b.Failure(key); opened {
			t.Fatalf("breaker opened after %d failures, threshold 3", i+1)
		}
		if !b.Allow(key) {
			t.Fatalf("breaker refused %s before threshold", key)
		}
	}
	if opened := b.Failure(key); !opened {
		t.Fatal("third failure did not open the circuit")
	}
	if b.Allow(key) {
		t.Fatal("open circuit allowed an attempt")
	}
	if !b.Open(key) {
		t.Fatal("Open = false for an open circuit")
	}
	if !b.Allow("host-b") {
		t.Fatal("unrelated key tripped by host-a's circuit")
	}
}

func TestBreakerSuccessResetsCount(t *testing.T) {
	b := NewBreaker(2)
	b.Failure("k")
	b.Success("k")
	if opened := b.Failure("k"); opened {
		t.Fatal("success did not reset the consecutive-failure count")
	}
	b.Failure("k")
	if !b.Open("k") {
		t.Fatal("two consecutive failures after reset did not open")
	}
	b.Reset("k")
	if !b.Allow("k") {
		t.Fatal("Reset did not close the circuit")
	}
}

func TestBreakerDisabledAndNil(t *testing.T) {
	var nilB *Breaker
	if !nilB.Allow("k") || nilB.Open("k") || nilB.Failure("k") {
		t.Fatal("nil breaker must be a no-op that always allows")
	}
	nilB.Success("k")
	nilB.Reset("k")
	b := &Breaker{} // Threshold 0: disabled
	for i := 0; i < 100; i++ {
		b.Failure("k")
	}
	if !b.Allow("k") {
		t.Fatal("disabled breaker opened")
	}
}
