package retry

import "github.com/gaugenn/gaugenn/internal/obs"

// Every Policy in the process reports through these shared series: retry
// is the one funnel all re-issued work passes through, so instrumenting
// Do and Breaker here gives the whole pipeline's retry picture without
// per-caller wiring. Handles are resolved once at init; the Do hot path
// only touches atomics.
var (
	metAttempts = obs.Default().Counter("gaugenn_retry_attempts_total",
		"Operation attempts started under a retry.Policy, first tries included.")
	metRetries = obs.Default().Counter("gaugenn_retry_retries_total",
		"Re-attempts after a retryable failure (attempts beyond the first).")
	metExhaustions = obs.Default().Counter("gaugenn_retry_exhaustions_total",
		"Operations that failed after exhausting their attempt cap or time budget.")
	metBackoffSleeps = obs.Default().Counter("gaugenn_retry_backoff_sleeps_total",
		"Backoff waits entered between attempts.")
	metBackoffSeconds = obs.Default().FloatCounter("gaugenn_retry_backoff_seconds_total",
		"Total seconds requested across backoff waits (hint-directed waits included).")
	metBreakerOpens = obs.Default().Counter("gaugenn_retry_breaker_opens_total",
		"Circuit-breaker keys tripped open by consecutive failures.")
)
