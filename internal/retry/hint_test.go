package retry

import (
	"errors"
	"net/http"
	"testing"
	"time"
)

func TestParseRetryAfterDeltaSeconds(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want time.Duration
		ok   bool
	}{
		{"0", 0, true},
		{"1", time.Second, true},
		{" 120 ", 2 * time.Minute, true},
		{"-3", 0, false},
		{"", 0, false},
		{"soon", 0, false},
		{"1.5", 0, false}, // RFC 9110 delta-seconds are integral
	} {
		got, ok := ParseRetryAfter(tc.in)
		if got != tc.want || ok != tc.ok {
			t.Errorf("ParseRetryAfter(%q) = (%v, %v), want (%v, %v)", tc.in, got, ok, tc.want, tc.ok)
		}
	}
}

func TestParseRetryAfterHTTPDate(t *testing.T) {
	// A future HTTP-date yields (approximately) the wait until it.
	future := time.Now().Add(90 * time.Second).UTC().Format(http.TimeFormat)
	got, ok := ParseRetryAfter(future)
	if !ok {
		t.Fatalf("future HTTP-date %q not parsed", future)
	}
	if got < 80*time.Second || got > 90*time.Second {
		t.Fatalf("future HTTP-date wait = %v, want ~90s", got)
	}
	// A past date is an explicit "retry now": zero wait, but recognised.
	past := time.Now().Add(-time.Hour).UTC().Format(http.TimeFormat)
	got, ok = ParseRetryAfter(past)
	if !ok || got != 0 {
		t.Fatalf("past HTTP-date = (%v, %v), want (0, true)", got, ok)
	}
	// The obsolete RFC 850 form http.ParseTime accepts also parses.
	rfc850 := time.Now().Add(90 * time.Second).UTC().Format("Monday, 02-Jan-06 15:04:05 GMT")
	if _, ok := ParseRetryAfter(rfc850); !ok {
		t.Fatalf("RFC 850 date %q not parsed", rfc850)
	}
}

func TestRetryAfterHintAttachesParsedWait(t *testing.T) {
	base := errors.New("status 503")
	h := http.Header{}
	h.Set("Retry-After", "7")
	err := RetryAfterHint(base, h)
	if d, ok := HintFrom(err); !ok || d != 7*time.Second {
		t.Fatalf("hint = (%v, %v), want (7s, true)", d, ok)
	}
	// HTTP-date form reaches the hint too — shed clients of the study
	// service must back off correctly whichever form the server picked.
	h.Set("Retry-After", time.Now().Add(30*time.Second).UTC().Format(http.TimeFormat))
	err = RetryAfterHint(base, h)
	if d, ok := HintFrom(err); !ok || d <= 20*time.Second {
		t.Fatalf("HTTP-date hint = (%v, %v), want ~30s", d, ok)
	}
	// No header / junk header: error unchanged, no phantom hint.
	if err := RetryAfterHint(base, http.Header{}); err != base {
		t.Fatalf("no header changed the error: %v", err)
	}
	h.Set("Retry-After", "whenever")
	if err := RetryAfterHint(base, h); err != base {
		t.Fatalf("junk header changed the error: %v", err)
	}
	if RetryAfterHint(nil, h) != nil {
		t.Fatal("nil error grew a hint")
	}
}
