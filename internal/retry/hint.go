package retry

import (
	"net/http"
	"strconv"
	"strings"
	"time"
)

// ParseRetryAfter parses a Retry-After header value into the wait a
// server directed, accepting both RFC 9110 forms:
//
//   - delta-seconds ("120")
//   - an HTTP-date ("Fri, 07 Aug 2026 11:30:00 GMT" and the obsolete
//     RFC 850 / asctime forms http.ParseTime accepts)
//
// A date in the past (or exactly now) parses as a zero wait with ok=true:
// the server said "retry immediately", which is different from saying
// nothing. Unparseable or negative values return ok=false, leaving the
// caller's own backoff in charge. The shed clients of the study service
// and the crawler both route 429/503 pacing through here into a Policy
// Hint.
func ParseRetryAfter(v string) (time.Duration, bool) {
	v = strings.TrimSpace(v)
	if v == "" {
		return 0, false
	}
	if secs, err := strconv.Atoi(v); err == nil {
		if secs < 0 {
			return 0, false
		}
		return time.Duration(secs) * time.Second, true
	}
	if at, err := http.ParseTime(v); err == nil {
		if d := time.Until(at); d > 0 {
			return d, true
		}
		return 0, true
	}
	return 0, false
}

// RetryAfterHint extracts a Retry-After wait from h and attaches it to
// err as a Hint for Do; without the header (or with a malformed value)
// err is returned unchanged.
func RetryAfterHint(err error, h http.Header) error {
	if err == nil {
		return nil
	}
	if after, ok := ParseRetryAfter(h.Get("Retry-After")); ok {
		return Hint(err, after)
	}
	return err
}
