// Package retry is gaugeNN's single retry/backoff policy: every layer
// that re-issues failed work — the crawler's store requests, the fleet
// scheduler's retry-with-exclusion pacing, the bench master's dial and
// handshake rounds — routes through one Policy type instead of hand-rolled
// ladders. A Policy is a value (no hidden state), its jitter is seeded and
// deterministic, and Do is ctx-aware throughout: a cancelled caller never
// sits out a backoff.
//
// Classification is by error shape, not by layer: operations wrap
// non-retryable failures with Permanent, and servers that direct their own
// pacing (Retry-After on 429/503) attach a Hint that overrides the
// computed backoff, capped by the policy's MaxDelay and Budget. The
// companion Breaker is a per-key circuit breaker (per host, per device)
// that fails fast once a peer has proven itself dead, so a fleet never
// burns its whole attempt budget against one unplugged rig.
package retry

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// Policy shapes one retry ladder. The zero value performs exactly one
// attempt — "no retries" is the absence of a policy, never a panic.
type Policy struct {
	// Attempts is the total attempt cap, first try included (<= 0 means 1).
	Attempts int
	// BaseDelay spaces the first retry; later retries grow by Multiplier.
	// Zero retries immediately.
	BaseDelay time.Duration
	// MaxDelay caps each individual wait, including server-directed
	// Retry-After hints (0 = no cap).
	MaxDelay time.Duration
	// Multiplier grows the backoff per attempt (<= 0 means 2).
	Multiplier float64
	// Jitter randomises each wait downward by up to this fraction [0, 1),
	// de-synchronising clients without ever exceeding the computed delay.
	// The randomness is a pure function of (Seed, attempt): equal policies
	// reproduce equal schedules, which the chaos suite relies on.
	Jitter float64
	// Seed drives the deterministic jitter stream.
	Seed int64
	// Budget bounds the total time spent across attempts, sleeps included
	// (0 = no bound). Do gives up rather than start a wait that would
	// overrun it.
	Budget time.Duration
}

// Default is the shared transient-failure ladder: three attempts spaced
// 50 ms, 100 ms (exponential, capped at 2 s), no jitter.
func Default() Policy {
	return Policy{Attempts: 3, BaseDelay: 50 * time.Millisecond, MaxDelay: 2 * time.Second, Multiplier: 2}
}

// attempts resolves the attempt cap.
func (p Policy) attempts() int {
	if p.Attempts <= 0 {
		return 1
	}
	return p.Attempts
}

// Delay returns the wait before attempt n+1 (n >= 1 counts completed
// attempts): BaseDelay * Multiplier^(n-1), capped by MaxDelay, jittered
// downward deterministically from Seed.
func (p Policy) Delay(n int) time.Duration {
	if p.BaseDelay <= 0 || n < 1 {
		return 0
	}
	mult := p.Multiplier
	if mult <= 0 {
		mult = 2
	}
	d := float64(p.BaseDelay)
	for i := 1; i < n; i++ {
		d *= mult
		if p.MaxDelay > 0 && d >= float64(p.MaxDelay) {
			d = float64(p.MaxDelay)
			break
		}
	}
	if p.MaxDelay > 0 && d > float64(p.MaxDelay) {
		d = float64(p.MaxDelay)
	}
	if p.Jitter > 0 && p.Jitter < 1 {
		// splitmix64 over (Seed, n): stateless, allocation-free, identical
		// across runs for equal policies.
		h := uint64(p.Seed)*0x9e3779b97f4a7c15 + uint64(n)
		h ^= h >> 30
		h *= 0xbf58476d1ce4e5b9
		h ^= h >> 27
		h *= 0x94d049bb133111eb
		h ^= h >> 31
		frac := float64(h>>11) / float64(1<<53)
		d *= 1 - p.Jitter*frac
	}
	return time.Duration(d)
}

// Do runs op under the policy: retry on failure until it succeeds, the
// attempt cap or time budget is exhausted, the error is Permanent, or ctx
// dies (a cancelled backoff returns immediately with the context error on
// the chain). A Hint attached to the error overrides the computed backoff
// — capped by MaxDelay — which is how Retry-After reaches the ladder.
func Do(ctx context.Context, p Policy, op func(ctx context.Context) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	attempts := p.attempts()
	start := time.Now()
	var last error
	for n := 1; ; n++ {
		metAttempts.Inc()
		if n > 1 {
			metRetries.Inc()
		}
		err := op(ctx)
		if err == nil {
			return nil
		}
		var pe *permanentError
		if errors.As(err, &pe) {
			return pe.err
		}
		last = err
		if ctx.Err() != nil {
			return last
		}
		if n >= attempts {
			metExhaustions.Inc()
			return last
		}
		d := p.Delay(n)
		if hint, ok := HintFrom(err); ok {
			d = hint
			if p.MaxDelay > 0 && d > p.MaxDelay {
				d = p.MaxDelay
			}
		}
		if p.Budget > 0 && time.Since(start)+d > p.Budget {
			metExhaustions.Inc()
			return last
		}
		if d > 0 {
			metBackoffSleeps.Inc()
			metBackoffSeconds.AddDuration(d)
		}
		if err := Sleep(ctx, d); err != nil {
			return fmt.Errorf("%w (after: %w)", err, last)
		}
	}
}

// Sleep waits d, or until ctx dies — whichever comes first — returning
// the context error on cancellation. Zero and negative d return nil after
// a ctx check, so tight retry loops still notice cancellation.
func Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// permanentError marks an error Do must not retry.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// Permanent wraps err so Do stops immediately and returns the original
// error. Use it for failures more attempts cannot fix: 4xx responses,
// malformed payloads, validation errors.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// hintedError carries a server-directed retry delay on the error chain.
type hintedError struct {
	err   error
	after time.Duration
}

func (e *hintedError) Error() string { return e.err.Error() }
func (e *hintedError) Unwrap() error { return e.err }

// Hint attaches a server-directed wait (a parsed Retry-After) to err; Do
// uses it in place of the computed backoff for the next wait, capped by
// the policy's MaxDelay.
func Hint(err error, after time.Duration) error {
	if err == nil {
		return nil
	}
	return &hintedError{err: err, after: after}
}

// HintFrom extracts a server-directed wait from the error chain.
func HintFrom(err error) (time.Duration, bool) {
	var he *hintedError
	if errors.As(err, &he) {
		return he.after, true
	}
	return 0, false
}

// ErrOpen reports a request refused because its key's circuit is open.
var ErrOpen = errors.New("retry: circuit open")

// Breaker is a per-key circuit breaker: Threshold consecutive failures
// against one key (a host, a device, a runner ID) open its circuit, and
// every subsequent Allow fails fast until the key is Reset or a success
// is recorded by a caller that probed anyway. It is deliberately
// time-free — an open circuit stays open for the run — so outcomes stay
// deterministic under test schedules; long-lived daemons Reset on their
// own cadence.
type Breaker struct {
	// Threshold is the consecutive-failure count that opens a key's
	// circuit (<= 0 disables the breaker: Allow always passes).
	Threshold int

	mu    sync.Mutex
	fails map[string]int
	open  map[string]bool
}

// NewBreaker builds a breaker opening after threshold consecutive
// failures per key.
func NewBreaker(threshold int) *Breaker { return &Breaker{Threshold: threshold} }

// Allow reports whether key's circuit permits an attempt.
func (b *Breaker) Allow(key string) bool {
	if b == nil || b.Threshold <= 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return !b.open[key]
}

// Success records a successful exchange with key, closing its circuit and
// zeroing the consecutive-failure count.
func (b *Breaker) Success(key string) {
	if b == nil || b.Threshold <= 0 {
		return
	}
	b.mu.Lock()
	delete(b.fails, key)
	delete(b.open, key)
	b.mu.Unlock()
}

// Failure records a failed exchange with key and reports whether this
// failure opened the circuit.
func (b *Breaker) Failure(key string) (opened bool) {
	if b == nil || b.Threshold <= 0 {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.fails == nil {
		b.fails = map[string]int{}
		b.open = map[string]bool{}
	}
	b.fails[key]++
	if b.fails[key] >= b.Threshold && !b.open[key] {
		b.open[key] = true
		metBreakerOpens.Inc()
		return true
	}
	return false
}

// Open reports whether key's circuit is open.
func (b *Breaker) Open(key string) bool {
	if b == nil || b.Threshold <= 0 {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.open[key]
}

// Reset closes key's circuit (half-open probe: the next failure re-opens
// it after another Threshold run of failures).
func (b *Breaker) Reset(key string) {
	if b == nil {
		return
	}
	b.mu.Lock()
	delete(b.fails, key)
	delete(b.open, key)
	b.mu.Unlock()
}
