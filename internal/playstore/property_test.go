package playstore

import (
	"io"
	"net/http"
	"sync"
	"testing"
	"testing/quick"
)

// Property: generation is deterministic — for any seed, two runs agree on
// the full app/model assignment.
func TestGenerationDeterminismProperty(t *testing.T) {
	f := func(seed int16) bool {
		cfg := DefaultConfig(int64(seed), 0.01)
		a, err := GenerateStudy(cfg)
		if err != nil {
			return false
		}
		b, err := GenerateStudy(cfg)
		if err != nil {
			return false
		}
		if len(a.Snap21.Apps) != len(b.Snap21.Apps) || len(a.Snap21.Specs) != len(b.Snap21.Specs) {
			return false
		}
		for i := range a.Snap21.Apps {
			x, y := a.Snap21.Apps[i], b.Snap21.Apps[i]
			if x.Package != y.Package || len(x.Models) != len(y.Models) ||
				x.UsesNNAPI != y.UsesNNAPI || len(x.CloudAPIs) != len(y.CloudAPIs) {
				return false
			}
			for j := range x.Models {
				if x.Models[j].SpecIndex != y.Models[j].SpecIndex ||
					x.Models[j].Framework != y.Models[j].Framework {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

// Property: every generated model instance references a valid spec with an
// assigned framework that the formats registry knows.
func TestInstanceReferentialIntegrityProperty(t *testing.T) {
	f := func(seed int16) bool {
		st, err := GenerateStudy(DefaultConfig(int64(seed), 0.01))
		if err != nil {
			return false
		}
		for _, snap := range []*Snapshot{st.Snap20, st.Snap21} {
			for _, a := range snap.Apps {
				for _, m := range a.Models {
					if m.SpecIndex < 0 || m.SpecIndex >= len(snap.Specs) {
						return false
					}
					fw := m.Framework
					switch fw {
					case "tflite", "caffe", "ncnn", "tf", "snpe":
					default:
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

// The store server must survive concurrent crawlers (the paper's harness
// parallelises downloads across devices).
func TestServerConcurrentDownloads(t *testing.T) {
	st, err := GenerateStudy(DefaultConfig(17, 0.02))
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(st.Snap21)
	base, shutdown, err := srv.Listen()
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()

	var mlApps []*App
	for _, a := range st.Snap21.Apps {
		if len(a.Models) > 0 {
			mlApps = append(mlApps, a)
		}
		if len(mlApps) >= 6 {
			break
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, len(mlApps)*3)
	for w := 0; w < 3; w++ {
		for _, app := range mlApps {
			wg.Add(1)
			go func(pkg string) {
				defer wg.Done()
				req, _ := http.NewRequest("GET", base+"/fdfe/purchase?doc="+pkg, nil)
				req.Header.Set("User-Agent", "test")
				req.Header.Set("X-DFE-Locale", "en_GB")
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					errs <- err
					return
				}
				defer resp.Body.Close()
				if _, err := io.Copy(io.Discard, resp.Body); err != nil {
					errs <- err
					return
				}
				if resp.StatusCode != 200 {
					errs <- io.ErrUnexpectedEOF
				}
			}(app.Package)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent download failed: %v", err)
	}
}
