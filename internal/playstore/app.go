package playstore

import (
	"fmt"

	"github.com/gaugenn/gaugenn/internal/android/apk"
	"github.com/gaugenn/gaugenn/internal/android/dex"
	"github.com/gaugenn/gaugenn/internal/cloudml"
	"github.com/gaugenn/gaugenn/internal/nn/formats"
	"github.com/gaugenn/gaugenn/internal/nn/zoo"
)

// frameworkLibs maps each ML framework to the native library it ships and
// the interpreter call its dex code carries — the two signals the paper's
// library-inclusion detector (after Xu et al.) keys on.
var frameworkLibs = map[string]struct {
	SoName  string
	Symbol  string
	DexCall string
}{
	"tflite": {"libtensorflowlite_jni.so", "TfLiteInterpreterCreate",
		"Lorg/tensorflow/lite/Interpreter;-><init>(Ljava/nio/ByteBuffer;)V"},
	"caffe": {"libcaffe_jni.so", "caffe_net_forward",
		"Lcom/caffe/android/CaffeMobile;->predictImage(Ljava/lang/String;)"},
	"ncnn": {"libncnn.so", "ncnn_net_load_param",
		"Lcom/tencent/ncnn/NcnnNet;->load(Landroid/content/res/AssetManager;)"},
	"tf": {"libtensorflow_inference.so", "TF_NewSession",
		"Lorg/tensorflow/contrib/android/TensorFlowInferenceInterface;-><init>"},
	"snpe": {"libSNPE.so", "Snpe_SNPEBuilder_Build",
		"Lcom/qualcomm/qti/snpe/SNPE$NeuralNetworkBuilder;->build()"},
}

// Acceleration markers of Section 6.3.
const (
	nnapiDexCall    = "Lorg/tensorflow/lite/nnapi/NnApiDelegate;-><init>()V"
	xnnpackDexCall  = "Lorg/tensorflow/lite/Interpreter$Options;->setUseXNNPACK(Z)"
	lazyDownloadDex = "Lcom/example/ml/ModelDownloader;->fetchModel(Ljava/lang/String;)" // out-of-store delivery
)

// ModelFiles returns (building and caching on first use) the encoded file
// set of a unique model in its assigned framework format. Building is
// single-flight per spec: concurrent packagers of the same model wait for
// the first build instead of repeating it, and builds of distinct specs
// proceed in parallel — the lock only guards the cache map.
func (s *Snapshot) ModelFiles(specIdx int) (formats.FileSet, error) {
	if specIdx < 0 || specIdx >= len(s.Specs) {
		return nil, fmt.Errorf("playstore: spec index %d out of range", specIdx)
	}
	s.mu.Lock()
	e, ok := s.fileCache[specIdx]
	if !ok {
		e = &fileCacheEntry{}
		s.fileCache[specIdx] = e
	}
	s.mu.Unlock()
	e.once.Do(func() {
		g, err := zoo.Build(s.Specs[specIdx])
		if err != nil {
			e.err = fmt.Errorf("playstore: building spec %d: %w", specIdx, err)
			return
		}
		f, ok := formats.ByName(s.SpecFramework[specIdx])
		if !ok {
			e.err = fmt.Errorf("playstore: unknown framework %q", s.SpecFramework[specIdx])
			return
		}
		e.fs, e.err = f.Encode(g, s.Specs[specIdx].FileStem())
	})
	return e.fs, e.err
}

// snpeFiles converts a model to the SNPE dlc container regardless of its
// native framework, for the dual tflite+dlc shippers of Section 6.3.
func (s *Snapshot) snpeFiles(specIdx int) (formats.FileSet, error) {
	g, err := zoo.Build(s.Specs[specIdx])
	if err != nil {
		return nil, err
	}
	f, _ := formats.ByName("snpe")
	return f.Encode(g, s.Specs[specIdx].FileStem())
}

// BuildAPK assembles the app's base APK exactly as the store would serve
// it: manifest, classes.dex with the app's API call sites, native ML
// libraries and the model assets (encrypted ones XOR-obfuscated).
func (s *Snapshot) BuildAPK(a *App) ([]byte, error) {
	b := apk.NewBuilder(apk.Manifest{
		Package:     a.Package,
		VersionCode: 20 + a.Rank,
		MinSDK:      24,
		Permissions: []string{"android.permission.INTERNET"},
	})

	// classes.dex: the main activity invokes the frameworks, cloud APIs
	// and acceleration delegates the app uses.
	var calls []string
	for _, fw := range a.Frameworks {
		if lib, ok := frameworkLibs[fw]; ok {
			calls = append(calls, lib.DexCall)
		}
	}
	for _, apiName := range a.CloudAPIs {
		if sig, ok := cloudml.PrimaryCallSite(apiName); ok {
			calls = append(calls, sig)
		}
	}
	if a.UsesNNAPI {
		calls = append(calls, nnapiDexCall)
	}
	if a.UsesXNNPACK {
		calls = append(calls, xnnpackDexCall)
	}
	if a.LazyModelDownload {
		calls = append(calls, lazyDownloadDex)
	}
	d := &dex.Dex{Classes: []dex.Class{
		{
			Name: fmt.Sprintf("Lcom/%s/MainActivity;", sanitizeCat(a.Category)),
			Methods: []dex.Method{
				{Name: "onCreate", Calls: []string{"Landroid/app/Activity;->onCreate(Landroid/os/Bundle;)V"}},
				{Name: "initML", Calls: calls},
			},
		},
	}}
	b.SetDex(d.Encode())

	// Native libraries for each linked framework.
	for _, fw := range a.Frameworks {
		lib, ok := frameworkLibs[fw]
		if !ok {
			continue
		}
		so := dex.EncodeNativeLib(dex.NativeLib{
			SoName:  lib.SoName,
			Symbols: []string{lib.Symbol, "JNI_OnLoad"},
		})
		b.AddNativeLib("arm64-v8a", lib.SoName, so)
	}

	// Model assets. Distinct models occasionally share a file stem (two
	// apps copying the same public example name), so colliding names move
	// into numbered subdirectories instead of silently overwriting.
	usedAssets := map[string]bool{}
	for mi, m := range a.Models {
		var fs formats.FileSet
		var err error
		if m.Framework == "snpe" && s.SpecFramework[m.SpecIndex] != "snpe" {
			fs, err = s.snpeFiles(m.SpecIndex)
		} else {
			fs, err = s.ModelFiles(m.SpecIndex)
		}
		if err != nil {
			return nil, err
		}
		dir := m.AssetDir
		for name := range fs {
			if usedAssets[dir+"/"+name] {
				dir = fmt.Sprintf("%s/v%d", m.AssetDir, mi)
				break
			}
		}
		for name, data := range fs {
			payload := data
			if m.Encrypted {
				payload = xorObfuscate(data)
			}
			usedAssets[dir+"/"+name] = true
			b.AddAsset(dir+"/"+name, payload)
		}
	}

	// A resource stub so even empty apps look like apps.
	b.AddRaw("res/layout/activity_main.xml", []byte("<LinearLayout/>"))
	b.AddRaw("META-INF/MANIFEST.MF", []byte("Manifest-Version: 1.0\n"))
	return b.Build()
}

// xorObfuscate is the stand-in for developer-side model encryption: the
// payload keeps its extension but fails every signature sniff.
func xorObfuscate(data []byte) []byte {
	out := make([]byte, len(data))
	for i, b := range data {
		out[i] = b ^ 0x5a
	}
	return out
}
