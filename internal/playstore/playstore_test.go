package playstore

import (
	"encoding/json"
	"io"
	"math"
	"net/http"
	"testing"

	"github.com/gaugenn/gaugenn/internal/android/apk"
	"github.com/gaugenn/gaugenn/internal/nn/formats"
)

const testScale = 0.04

func testStudy(t *testing.T) *Study {
	t.Helper()
	st, err := GenerateStudy(DefaultConfig(7, testScale))
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestGenerateStudyDeterministic(t *testing.T) {
	a, err := GenerateStudy(DefaultConfig(3, testScale))
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateStudy(DefaultConfig(3, testScale))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Snap21.Apps) != len(b.Snap21.Apps) {
		t.Fatal("app counts differ across identical seeds")
	}
	for i := range a.Snap21.Apps {
		if a.Snap21.Apps[i].Package != b.Snap21.Apps[i].Package ||
			len(a.Snap21.Apps[i].Models) != len(b.Snap21.Apps[i].Models) {
			t.Fatalf("app %d differs across identical seeds", i)
		}
	}
}

func TestGenerateStudyRejectsBadConfig(t *testing.T) {
	if _, err := GenerateStudy(Config{}); err == nil {
		t.Fatal("zero config must fail")
	}
}

func TestSnapshotPopulationShape(t *testing.T) {
	st := testStudy(t)
	cfg := DefaultConfig(7, testScale)

	total21 := st.Snap21.ModelCount()
	// Encrypted instances ride along with framework-only apps; subtract
	// them for the Table 2 "validated models" comparison.
	valid21 := 0
	apps21WithValid := 0
	for _, a := range st.Snap21.Apps {
		n := 0
		for _, m := range a.Models {
			if !m.Encrypted {
				n++
			}
		}
		valid21 += n
		if n > 0 {
			apps21WithValid++
		}
	}
	wantModels := cfg.ExpectedModels21()
	if math.Abs(float64(valid21-wantModels)) > float64(wantModels)/5 {
		t.Errorf("2021 validated models = %d, want ~%d", valid21, wantModels)
	}
	_ = total21
	_ = apps21WithValid

	valid20 := 0
	for _, a := range st.Snap20.Apps {
		for _, m := range a.Models {
			if !m.Encrypted {
				valid20++
			}
		}
	}
	// 2020 should hold roughly half the models of 2021 (821/1666).
	if valid20 >= valid21 {
		t.Errorf("2020 models (%d) should be fewer than 2021 (%d)", valid20, valid21)
	}
	ratio := float64(valid21) / float64(maxInt(1, valid20))
	if ratio < 1.4 || ratio > 3.2 {
		t.Errorf("2021/2020 model ratio = %.2f, want ~2.0", ratio)
	}
}

func TestFrameworkMix(t *testing.T) {
	st := testStudy(t)
	counts := map[string]int{}
	total := 0
	for _, a := range st.Snap21.Apps {
		for _, m := range a.Models {
			if !m.Encrypted {
				counts[m.Framework]++
				total++
			}
		}
	}
	if total == 0 {
		t.Fatal("no models generated")
	}
	tfliteShare := float64(counts["tflite"]) / float64(total)
	if tfliteShare < 0.70 || tfliteShare > 0.95 {
		t.Errorf("tflite share = %.2f, want ~0.86", tfliteShare)
	}
	if counts["caffe"] == 0 {
		t.Error("caffe models missing")
	}
}

func TestCommunicationTopsModelChurn(t *testing.T) {
	st := testStudy(t)
	count := func(s *Snapshot) map[Category]int {
		out := map[Category]int{}
		for _, a := range s.Apps {
			for _, m := range a.Models {
				if !m.Encrypted {
					out[a.Category]++
				}
			}
		}
		return out
	}
	c21 := count(st.Snap21)
	c20 := count(st.Snap20)
	// 2021 top category must be COMMUNICATION, 2020 top PHOTOGRAPHY.
	top := func(m map[Category]int) Category {
		var best Category
		bestN := -1
		for _, c := range Categories() { // deterministic tie-break
			if m[c] > bestN {
				best, bestN = c, m[c]
			}
		}
		return best
	}
	if got := top(c21); got != Communication {
		t.Errorf("2021 top ML category = %s, want COMMUNICATION (counts %v)", got, c21)
	}
	if got := top(c20); got != Photography {
		t.Errorf("2020 top ML category = %s, want PHOTOGRAPHY (counts %v)", got, c20)
	}
}

func TestChurnTableConsistency(t *testing.T) {
	total, added, removed := 0, 0, 0
	for _, c := range Categories() {
		ch, ok := categoryChurn[c]
		if !ok {
			t.Fatalf("category %s missing from churn table", c)
		}
		if ch.Added > ch.Total21 {
			t.Errorf("%s: added %d exceeds total %d", c, ch.Added, ch.Total21)
		}
		total += ch.Total21
		added += ch.Added
		removed += ch.Removed
	}
	if total != 1666 {
		t.Errorf("sum(Total21) = %d, want 1666 (Table 2)", total)
	}
	if got := total - added + removed; got != 821 {
		t.Errorf("reconstructed 2020 total = %d, want 821 (Table 2)", got)
	}
}

func TestAccelerationTraces(t *testing.T) {
	st := testStudy(t)
	nnapi, xnnpack, snpe := 0, 0, 0
	for _, a := range st.Snap21.Apps {
		if a.UsesNNAPI {
			nnapi++
		}
		if a.UsesXNNPACK {
			xnnpack++
		}
		if a.UsesSNPE {
			snpe++
		}
	}
	if nnapi == 0 {
		t.Error("no NNAPI apps")
	}
	if xnnpack != 1 {
		t.Errorf("XNNPACK apps = %d, want exactly 1 (Section 6.3)", xnnpack)
	}
	if snpe == 0 {
		t.Error("no SNPE apps")
	}
	// SNPE apps ship a dlc twin of a tflite model.
	for _, a := range st.Snap21.Apps {
		if !a.UsesSNPE {
			continue
		}
		hasDLC := false
		for _, m := range a.Models {
			if m.Framework == "snpe" {
				hasDLC = true
			}
		}
		if !hasDLC {
			t.Error("SNPE app missing dlc variant")
		}
	}
}

func TestBuildAPKContainsModels(t *testing.T) {
	st := testStudy(t)
	var mlApp *App
	for _, a := range st.Snap21.Apps {
		if len(a.Models) > 0 && !a.Models[0].Encrypted {
			mlApp = a
			break
		}
	}
	if mlApp == nil {
		t.Fatal("no ML app generated")
	}
	data, err := st.Snap21.BuildAPK(mlApp)
	if err != nil {
		t.Fatal(err)
	}
	r, err := apk.Open(data)
	if err != nil {
		t.Fatal(err)
	}
	if r.Manifest().Package != mlApp.Package {
		t.Fatalf("manifest package %q", r.Manifest().Package)
	}
	assets := r.Assets()
	if len(assets) == 0 {
		t.Fatal("ML app has no assets")
	}
	// At least one asset must validate as a model of the right framework.
	found := false
	for _, name := range assets {
		data, err := r.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		if f, ok := formats.Identify(name, data); ok && f.Name() == mlApp.Models[0].Framework {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("no asset validates as %s model (assets: %v)", mlApp.Models[0].Framework, assets)
	}
	if len(r.NativeLibs()) == 0 {
		t.Fatal("ML app should ship framework native libs")
	}
	if _, err := r.Dex(); err != nil {
		t.Fatal("ML app should ship classes.dex")
	}
}

func TestEncryptedModelsFailValidation(t *testing.T) {
	st := testStudy(t)
	var encApp *App
	for _, a := range st.Snap21.Apps {
		for _, m := range a.Models {
			if m.Encrypted {
				encApp = a
			}
		}
	}
	if encApp == nil {
		t.Skip("no encrypted-model app at this scale")
	}
	data, err := st.Snap21.BuildAPK(encApp)
	if err != nil {
		t.Fatal(err)
	}
	r, err := apk.Open(data)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range r.Assets() {
		payload, err := r.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := formats.Identify(name, payload); ok {
			t.Fatalf("encrypted asset %s should not validate", name)
		}
	}
}

func TestModelFilesCache(t *testing.T) {
	st := testStudy(t)
	var spec int = -1
	for _, a := range st.Snap21.Apps {
		if len(a.Models) > 0 {
			spec = a.Models[0].SpecIndex
			break
		}
	}
	if spec < 0 {
		t.Fatal("no model instance")
	}
	fs1, err := st.Snap21.ModelFiles(spec)
	if err != nil {
		t.Fatal(err)
	}
	fs2, err := st.Snap21.ModelFiles(spec)
	if err != nil {
		t.Fatal(err)
	}
	for name := range fs1 {
		if len(fs1[name]) != len(fs2[name]) {
			t.Fatal("cache returned different bytes")
		}
	}
	if _, err := st.Snap21.ModelFiles(-1); err == nil {
		t.Fatal("out-of-range spec should fail")
	}
}

func TestServerEndpoints(t *testing.T) {
	st := testStudy(t)
	srv := NewServer(st.Snap21)
	base, shutdown, err := srv.Listen()
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()

	get := func(path string, withHeaders bool) (*http.Response, []byte) {
		req, err := http.NewRequest("GET", base+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		if withHeaders {
			req.Header.Set("User-Agent", "Android-Finsky/8.0 (device=beyond1)")
			req.Header.Set("X-DFE-Locale", "en_GB")
			req.Header.Set("X-DFE-Device", "SM-G977B")
		} else {
			// Explicitly clear the default Go user agent.
			req.Header.Set("User-Agent", "")
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, body
	}

	// Headers are mandatory.
	if resp, _ := get("/fdfe/categories", false); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("headerless request: status %d, want 400", resp.StatusCode)
	}

	resp, body := get("/fdfe/categories", true)
	if resp.StatusCode != 200 {
		t.Fatalf("categories: %d", resp.StatusCode)
	}
	var cats []string
	if err := json.Unmarshal(body, &cats); err != nil || len(cats) != len(Categories()) {
		t.Fatalf("categories payload: %v %v", err, cats)
	}

	resp, body = get("/fdfe/topCharts?cat=COMMUNICATION&n=10", true)
	if resp.StatusCode != 200 {
		t.Fatalf("topCharts: %d", resp.StatusCode)
	}
	var chart []ChartEntry
	if err := json.Unmarshal(body, &chart); err != nil || len(chart) == 0 {
		t.Fatalf("chart payload: %v", err)
	}
	if chart[0].Rank != 1 {
		t.Fatalf("chart not rank-ordered: %+v", chart[0])
	}

	pkg := chart[0].Package
	resp, body = get("/fdfe/purchase?doc="+pkg, true)
	if resp.StatusCode != 200 {
		t.Fatalf("purchase: %d", resp.StatusCode)
	}
	if _, err := apk.Open(body); err != nil {
		t.Fatalf("served APK invalid: %v", err)
	}

	resp, body = get("/fdfe/delivery?doc="+pkg, true)
	if resp.StatusCode != 200 {
		t.Fatalf("delivery: %d", resp.StatusCode)
	}
	var man DeliveryManifest
	if err := json.Unmarshal(body, &man); err != nil {
		t.Fatal(err)
	}
	if len(man.OBBs) != 0 || len(man.AssetPacks) != 0 {
		t.Fatal("no models should ship outside the base apk (Section 4.2)")
	}

	if resp, _ := get("/fdfe/details?doc=does.not.exist", true); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown package: %d", resp.StatusCode)
	}
	if resp, _ := get("/fdfe/topCharts", true); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing cat: %d", resp.StatusCode)
	}

	// Device-agnostic delivery (Section 4.2): identical bytes for an old
	// device profile.
	req, _ := http.NewRequest("GET", base+"/fdfe/purchase?doc="+pkg, nil)
	req.Header.Set("User-Agent", "Android-Finsky/7.0 (device=hero2lte)")
	req.Header.Set("X-DFE-Locale", "en_GB")
	req.Header.Set("X-DFE-Device", "SM-G935F") // S7 edge, three generations older
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	oldBytes, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if string(oldBytes) != string(body[:0]) && len(oldBytes) == 0 {
		t.Fatal("old-device purchase failed")
	}
	resp3, body3 := get("/fdfe/purchase?doc="+pkg, true)
	if resp3.StatusCode != 200 || string(oldBytes) != string(body3) {
		t.Fatal("delivery must be device-agnostic (Section 4.2)")
	}

	if srv.RequestCount("/fdfe/purchase") < 2 {
		t.Fatal("request counting broken")
	}
	if len(srv.DeviceLog()) < 2 {
		t.Fatal("device log broken")
	}
}

func TestCloudAPIAssignment(t *testing.T) {
	st := testStudy(t)
	google, aws := 0, 0
	for _, a := range st.Snap21.Apps {
		if len(a.CloudAPIs) == 0 {
			continue
		}
		isAWS := false
		for _, api := range a.CloudAPIs {
			for _, k := range cloudAPIs {
				if k.Name == api && k.Provider == "aws" {
					isAWS = true
				}
			}
		}
		if isAWS {
			aws++
		} else {
			google++
		}
	}
	if google == 0 || aws == 0 {
		t.Fatalf("cloud apps: google=%d aws=%d", google, aws)
	}
	if google <= aws {
		t.Errorf("google cloud apps (%d) should dominate aws (%d), per Figure 15", google, aws)
	}
}
