// Package playstore simulates the Google Play Store surface gaugeNN crawls:
// a generated catalogue of top-free apps per category — with the DNN
// payloads, framework libraries, cloud-API call sites and churn calibrated
// to the paper's Tables 2-3 and Figures 4-5 — served over an HTTP API
// shaped like the store endpoints a device speaks to (top charts, details,
// purchase, delivery). See DESIGN.md for the substitution rationale.
package playstore

// Category is a Google Play application category.
type Category string

// The 33 categories covered by the paper's figures.
const (
	Communication    Category = "COMMUNICATION"
	Finance          Category = "FINANCE"
	Photography      Category = "PHOTOGRAPHY"
	TravelAndLocal   Category = "TRAVEL_AND_LOCAL"
	Beauty           Category = "BEAUTY"
	Social           Category = "SOCIAL"
	Dating           Category = "DATING"
	Medical          Category = "MEDICAL"
	FoodAndDrink     Category = "FOOD_AND_DRINK"
	Shopping         Category = "SHOPPING"
	AutoAndVehicles  Category = "AUTO_AND_VEHICLES"
	Business         Category = "BUSINESS"
	Parenting        Category = "PARENTING"
	Productivity     Category = "PRODUCTIVITY"
	Lifestyle        Category = "LIFESTYLE"
	Education        Category = "EDUCATION"
	Sports           Category = "SPORTS"
	Entertainment    Category = "ENTERTAINMENT"
	HouseAndHome     Category = "HOUSE_AND_HOME"
	LibrariesAndDemo Category = "LIBRARIES_AND_DEMO"
	Tools            Category = "TOOLS"
	Game             Category = "GAME"
	HealthAndFitness Category = "HEALTH_AND_FITNESS"
	MapsAndNav       Category = "MAPS_AND_NAVIGATION"
	Personalization  Category = "PERSONALIZATION"
	VideoPlayers     Category = "VIDEO_PLAYERS"
	NewsAndMagazines Category = "NEWS_AND_MAGAZINES"
	ArtAndDesign     Category = "ART_AND_DESIGN"
	BooksAndRef      Category = "BOOKS_AND_REFERENCE"
	Events           Category = "EVENTS"
	Comics           Category = "COMICS"
	Family           Category = "FAMILY"
	AndroidWear      Category = "ANDROID_WEAR"
)

// Categories lists all store categories in deterministic order.
func Categories() []Category {
	return []Category{
		Communication, Finance, Photography, TravelAndLocal, Beauty, Social,
		Dating, Medical, FoodAndDrink, Shopping, AutoAndVehicles, Business,
		Parenting, Productivity, Lifestyle, Education, Sports, Entertainment,
		HouseAndHome, LibrariesAndDemo, Tools, Game, HealthAndFitness,
		MapsAndNav, Personalization, VideoPlayers, NewsAndMagazines,
		ArtAndDesign, BooksAndRef, Events, Comics, Family, AndroidWear,
	}
}

// churn calibrates a category's model population across the two snapshots:
// Total21 instances in the 2021 snapshot, of which Added arrived after the
// 2020 snapshot; Removed counts 2020 instances gone by 2021 (Figure 5).
//
// The table satisfies sum(Total21) = 1666, sum(Added) - sum(Removed) = 845
// so that the 2020 snapshot holds 821 models (Table 2), with COMMUNICATION
// the top net gainer and LIFESTYLE the top net loser, and PHOTOGRAPHY the
// top ML category of 2020 ("taking the lead from photography applications,
// which was the top ML-powered category of 2020").
type churn struct {
	Total21 int
	Added   int
	Removed int
}

var categoryChurn = map[Category]churn{
	Communication:    {171, 140, 5},
	Finance:          {158, 125, 5},
	Photography:      {152, 60, 15},
	TravelAndLocal:   {118, 64, 8},
	Beauty:           {102, 75, 8},
	Social:           {94, 62, 10},
	Dating:           {78, 42, 4},
	Medical:          {70, 63, 5},
	FoodAndDrink:     {64, 18, 10},
	Shopping:         {60, 40, 6},
	AutoAndVehicles:  {56, 45, 5},
	Business:         {52, 38, 5},
	Parenting:        {48, 38, 4},
	Productivity:     {44, 32, 6},
	Lifestyle:        {40, 8, 25},
	Education:        {36, 20, 4},
	Sports:           {32, 16, 4},
	Entertainment:    {28, 12, 4},
	HouseAndHome:     {24, 10, 3},
	LibrariesAndDemo: {22, 14, 4},
	Tools:            {20, 8, 5},
	Game:             {19, 10, 4},
	HealthAndFitness: {19, 14, 5},
	MapsAndNav:       {18, 12, 3},
	Personalization:  {18, 13, 3},
	VideoPlayers:     {17, 8, 3},
	NewsAndMagazines: {17, 8, 4},
	ArtAndDesign:     {16, 9, 3},
	BooksAndRef:      {16, 9, 2},
	Events:           {15, 8, 2},
	Comics:           {15, 9, 2},
	Family:           {14, 4, 12},
	AndroidWear:      {13, 5, 6},
}

// FrameworkShare is the 2021 model-instance mix of Table 2 / Section 4.3.
var frameworkShare21 = []struct {
	Name  string
	Count int
}{
	{"tflite", 1436},
	{"caffe", 176},
	{"ncnn", 46},
	{"tf", 5},
	{"snpe", 3},
}

// removedFrameworkShare approximates the 2020-only population's mix so that
// the reconstructed 2020 snapshot lands near Table 2's 81.6% TFLite.
var removedFrameworkShare = []struct {
	Name   string
	Weight float64
}{
	{"tflite", 0.66},
	{"caffe", 0.20},
	{"ncnn", 0.09},
	{"tf", 0.05},
}

// CloudAPI identifies a cloud ML API endpoint family (Figure 15's y-axis).
type CloudAPI struct {
	Provider string // "google" or "aws"
	Name     string
	// Weight is the relative app count in Figure 15.
	Weight int
}

// cloudAPIs approximates Figure 15's per-API app counts; the split between
// Google (452 apps) and AWS (72 apps) is enforced separately.
var cloudAPIs = []CloudAPI{
	{"google", "Vision/Barcode", 120},
	{"google", "Vision/Face", 112},
	{"google", "Vision/Text", 85},
	{"aws", "Lex (chatbot)", 40},
	{"aws", "Kinesis (video analytics)", 35},
	{"google", "Vision/Object Detection", 34},
	{"google", "Speech", 30},
	{"google", "Natural Language/Translate", 28},
	{"google", "Vision/custom model", 25},
	{"google", "Vision/Image Labeler", 22},
	{"google", "Natural Language/LanguageID", 15},
	{"google", "Natural Language/Smart Reply", 12},
	{"aws", "Polly (text-to-speech)", 12},
	{"aws", "Rekognition (face recognition)", 10},
}
