package playstore

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"github.com/gaugenn/gaugenn/internal/nn/formats"
	"github.com/gaugenn/gaugenn/internal/nn/zoo"
	"github.com/gaugenn/gaugenn/internal/stats"
)

// ModelInstance is one model file shipped inside one app. Instances of the
// same SpecIndex carry byte-identical payloads, which is what makes the
// paper's checksum dedup find only ~19% unique models.
type ModelInstance struct {
	// SpecIndex indexes Snapshot.Specs.
	SpecIndex int
	// Framework is the shipping format ("tflite", "caffe", ...).
	Framework string
	// Encrypted ships the file XOR-obfuscated so signature validation
	// fails, modelling the protected models of Section 8.2.
	Encrypted bool
	// AssetDir is the directory under assets/ the files land in.
	AssetDir string
}

// App is one store listing.
type App struct {
	Package   string
	Title     string
	Category  Category
	Rank      int // 1-based chart position within the category
	Downloads int64
	Rating    float64

	// Models are the DNN payloads in the base APK (the paper found none
	// distributed via OBB or asset packs).
	Models []ModelInstance
	// Frameworks lists the ML framework libraries the app links
	// (detectable even when models are encrypted or lazily downloaded).
	Frameworks []string
	// CloudAPIs lists the cloud ML API families invoked from code.
	CloudAPIs []string
	// LazyModelDownload marks apps fetching models outside Play delivery.
	LazyModelDownload bool
	// Acceleration trace flags (Section 6.3).
	UsesNNAPI, UsesXNNPACK, UsesSNPE bool
}

// HasML reports whether the app shows any ML signal (framework library,
// model payload or cloud API usage).
func (a *App) HasML() bool {
	return len(a.Models) > 0 || len(a.Frameworks) > 0 || len(a.CloudAPIs) > 0
}

// Snapshot is a fully generated store state at one crawl date.
type Snapshot struct {
	Label string
	Date  string
	Apps  []*App
	// Specs is the unique-model pool; instances reference it by index.
	Specs []zoo.Spec
	// SpecFramework fixes each unique model's shipping format (duplicates
	// of a model always ship in the same format, as real copied files do).
	SpecFramework []string

	cfg Config

	// fileCache single-flights per-spec model encoding: concurrent
	// builders of the same spec wait on the first instead of serialising
	// every encode behind one snapshot-wide lock.
	mu        sync.Mutex
	fileCache map[int]*fileCacheEntry

	// pkgIndex accelerates AppByPackage for concurrent store clients; it
	// is built lazily once generation has finished mutating Apps.
	pkgOnce  sync.Once
	pkgIndex map[string]*App
}

type fileCacheEntry struct {
	once sync.Once
	fs   formats.FileSet
	err  error
}

// AppByPackage returns the app with the given package name.
func (s *Snapshot) AppByPackage(pkg string) (*App, bool) {
	s.pkgOnce.Do(func() {
		s.pkgIndex = make(map[string]*App, len(s.Apps))
		for _, a := range s.Apps {
			s.pkgIndex[a.Package] = a
		}
	})
	a, ok := s.pkgIndex[pkg]
	return a, ok
}

// TopChart returns the category's apps in rank order, capped at n.
func (s *Snapshot) TopChart(cat Category, n int) []*App {
	var out []*App
	for _, a := range s.Apps {
		if a.Category == cat {
			out = append(out, a)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Rank < out[j].Rank })
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// ModelCount returns the total number of model instances in the snapshot.
func (s *Snapshot) ModelCount() int {
	n := 0
	for _, a := range s.Apps {
		n += len(a.Models)
	}
	return n
}

// Study is the pair of snapshots the paper collects 12 months apart.
type Study struct {
	Snap20 *Snapshot // 14th Feb 2020
	Snap21 *Snapshot // 4th Apr 2021
}

// GenerateStudy builds both snapshots from one seed. The 2021 snapshot is
// generated first; the 2020 snapshot is reconstructed by reversing the
// per-category churn of Figure 5 (dropping the "added" instances and
// re-adding the "removed" ones from a 2020-only model pool).
func GenerateStudy(cfg Config) (*Study, error) {
	if cfg.Scale <= 0 || cfg.AppsPerCategory <= 0 {
		return nil, fmt.Errorf("playstore: invalid config (start from DefaultConfig)")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := &generator{cfg: cfg, rng: rng}
	snap21, err := g.generate21()
	if err != nil {
		return nil, err
	}
	snap20, err := g.derive20(snap21)
	if err != nil {
		return nil, err
	}
	return &Study{Snap20: snap20, Snap21: snap21}, nil
}

type generator struct {
	cfg Config
	rng *rand.Rand

	// specMeta tracks which spec indices are 2021-era additions vs the
	// pre-2020 pool, and the 2020-only pool appended for removed models.
	oldSpecCount  int // specs existing already in 2020
	spec20Only    []int
	addedByApp    map[string][]int // package -> indices into app.Models added after 2020
	removedByCat  map[Category][]ModelInstance
	allSpecs      []zoo.Spec
	specFramework []string
}

// taskForInstances expands the Table 3 task mix into a scaled instance
// plan: a slice of tasks with repetition, plus ambiguous entries.
func (g *generator) instancePlan() []zoo.Task {
	var plan []zoo.Task
	// Deterministic task order.
	tasks := zoo.AllTasks()
	for _, t := range tasks {
		n := g.cfg.scaled(zoo.PaperTaskCounts[t])
		for i := 0; i < n; i++ {
			plan = append(plan, t)
		}
	}
	for i := 0; i < g.cfg.scaled(zoo.PaperUnidentified); i++ {
		plan = append(plan, zoo.TaskUnknown)
	}
	g.rng.Shuffle(len(plan), func(i, j int) { plan[i], plan[j] = plan[j], plan[i] })
	return plan
}

// buildSpecPool creates the unique-model pool for 2021 (sized to
// UniqueModels21) plus a 2020-only pool, with fine-tuned relatives and
// quantisation variants at the configured fractions.
func (g *generator) buildSpecPool(taskPlan []zoo.Task) (specOfTask map[zoo.Task][]int) {
	cfg := g.cfg
	nUnique := cfg.scaled(cfg.UniqueModels21)
	if nUnique < 1 {
		nUnique = 1
	}
	// Count instances per task to size per-task unique pools.
	perTask := map[zoo.Task]int{}
	for _, t := range taskPlan {
		perTask[t]++
	}
	total := len(taskPlan)
	specOfTask = map[zoo.Task][]int{}
	// Deterministic task iteration order.
	taskOrder := append([]zoo.Task{zoo.TaskUnknown}, zoo.AllTasks()...)

	nextSeed := cfg.Seed*1000 + 1
	addSpec := func(s zoo.Spec) int {
		idx := len(g.allSpecs)
		g.allSpecs = append(g.allSpecs, s)
		g.specFramework = append(g.specFramework, "")
		return idx
	}
	pairsCreated := 0
	for _, t := range taskOrder {
		cnt := perTask[t]
		if cnt == 0 {
			continue
		}
		k := nUnique * cnt / total
		if k < 1 {
			k = 1
		}
		for i := 0; i < k; i++ {
			spec := zoo.Spec{
				Task:   t,
				Seed:   nextSeed,
				Hinted: g.rng.Float64() < cfg.HintedNameFrac,
				Opts:   zoo.DefaultOptsFor(t, g.rng),
			}
			nextSeed++
			if t == zoo.TaskUnknown {
				spec.Task = zoo.TaskObjectDetection // generic trunk underneath
				spec.Ambiguous = true
			}
			// Quantisation variants.
			switch r := g.rng.Float64(); {
			case r < cfg.FullQuantFrac:
				spec.Quantized = true
			case r < cfg.FullQuantFrac+cfg.WeightQuantFrac:
				spec.WeightQuantized = true
			}
			// Weight sparsity around the configured mean.
			spec.SparsityFrac = cfg.MeanSparsity * (0.5 + g.rng.Float64())
			idx := addSpec(spec)
			specOfTask[t] = append(specOfTask[t], idx)
			// Fine-tuned relative of the previous spec of this task. Both
			// the base and the derivative count as "sharing >= 20%", so
			// the pair-creation rate is half the target sharing fraction.
			if len(specOfTask[t]) >= 2 && g.rng.Float64() < cfg.FineTunedFrac/2 {
				base := g.allSpecs[specOfTask[t][len(specOfTask[t])-2]]
				if !base.Ambiguous && base.BaseSeed == 0 {
					ft := base
					ft.Seed = nextSeed
					nextSeed++
					ft.BaseSeed = base.Seed
					if g.rng.Float64() < cfg.SmallDeltaFrac/cfg.FineTunedFrac {
						ft.FineTuneLayers = 1 + g.rng.Intn(3) // differs in <= 3 layers
					} else {
						ft.FineTuneLayers = 4 + g.rng.Intn(4)
					}
					fidx := addSpec(ft)
					specOfTask[t] = append(specOfTask[t], fidx)
					pairsCreated++
					i++ // the derivative consumes a unique slot
				}
			}
		}
	}
	// Small scales can roll zero pairs; the paper's 9.02% sharing finding
	// needs at least one fine-tuned family to exist.
	if pairsCreated == 0 && cfg.FineTunedFrac > 0 {
		for _, t := range zoo.AllTasks() {
			pool := specOfTask[t]
			if len(pool) == 0 {
				continue
			}
			base := g.allSpecs[pool[0]]
			if base.Ambiguous || base.BaseSeed != 0 {
				continue
			}
			ft := base
			ft.Seed = nextSeed
			nextSeed++
			ft.BaseSeed = base.Seed
			ft.FineTuneLayers = 2
			specOfTask[t] = append(specOfTask[t], addSpec(ft))
			break
		}
	}
	g.oldSpecCount = len(g.allSpecs)
	return specOfTask
}

// assignFrameworks fixes each unique model's shipping format so the
// instance-level mix approximates Table 2 (tflite 86.2%, caffe 10.6%,
// ncnn 2.8%, tf 0.3%, snpe 0.18%).
func (g *generator) assignFrameworks() {
	var names []string
	var weights []int
	for _, fs := range frameworkShare21 {
		names = append(names, fs.Name)
		weights = append(weights, fs.Count)
	}
	total := 0
	for _, w := range weights {
		total += w
	}
	for i := range g.allSpecs {
		if g.specFramework[i] != "" {
			continue
		}
		r := g.rng.Intn(total)
		for j, w := range weights {
			if r < w {
				g.specFramework[i] = names[j]
				break
			}
			r -= w
		}
		if g.specFramework[i] == "" {
			g.specFramework[i] = "tflite"
		}
	}
}

func (g *generator) generate21() (*Snapshot, error) {
	cfg := g.cfg
	plan := g.instancePlan()
	specOfTask := g.buildSpecPool(plan)
	g.assignFrameworks()

	// Per-category scaled model targets.
	cats := Categories()
	catTargets := make(map[Category]int, len(cats))
	planTotal := len(plan)
	churnTotal := 0
	for _, c := range cats {
		churnTotal += categoryChurn[c].Total21
	}
	assigned := 0
	for _, c := range cats {
		n := planTotal * categoryChurn[c].Total21 / churnTotal
		catTargets[c] = n
		assigned += n
	}
	// Largest categories soak up rounding remainder.
	for i := 0; assigned < planTotal; i++ {
		catTargets[cats[i%len(cats)]]++
		assigned++
	}

	// Instance construction: walk the shuffled plan, draw a spec for the
	// task. Every pooled spec is covered at least once (a unique model
	// exists because gaugeNN found it somewhere); the remaining draws
	// follow a Zipf so duplication is heavy-tailed and ~80% of instances
	// share their checksum with another app.
	zipfCache := map[int]*stats.Zipf{}
	covered := map[zoo.Task]int{}
	drawSpec := func(t zoo.Task) int {
		pool := specOfTask[t]
		if len(pool) == 0 {
			// Fall back to any pool (tiny scales).
			for _, tt := range append([]zoo.Task{zoo.TaskUnknown}, zoo.AllTasks()...) {
				if len(specOfTask[tt]) > 0 {
					t, pool = tt, specOfTask[tt]
					break
				}
			}
		}
		if covered[t] < len(pool) {
			idx := pool[covered[t]]
			covered[t]++
			return idx
		}
		z, ok := zipfCache[len(pool)]
		if !ok {
			z, _ = stats.NewZipf(g.rng, 1.05, len(pool))
			zipfCache[len(pool)] = z
		}
		return pool[z.Rank()-1]
	}

	type pendingInstance struct {
		spec  int
		added bool // arrived after the 2020 snapshot
	}
	perCat := map[Category][]pendingInstance{}
	planIdx := 0
	for _, c := range cats {
		ch := categoryChurn[c]
		target := catTargets[c]
		addTarget := int(float64(target)*float64(ch.Added)/float64(maxInt(1, ch.Total21)) + 0.5)
		for i := 0; i < target && planIdx < len(plan); i++ {
			inst := pendingInstance{spec: drawSpec(plan[planIdx]), added: i < addTarget}
			// Added instances prefer new specs (indices past the early
			// pool), keeping the 2020 unique count near its target.
			perCat[c] = append(perCat[c], inst)
			planIdx++
		}
	}

	// App skeletons per category.
	snap := &Snapshot{
		Label:     "snapshot-2021",
		Date:      "2021-04-04",
		cfg:       cfg,
		fileCache: map[int]*fileCacheEntry{},
	}
	appsPerCat := cfg.scaled(cfg.AppsPerCategory)
	zipfDl, err := stats.NewZipf(g.rng, 1.1, maxInt(2, appsPerCat))
	if err != nil {
		return nil, err
	}
	_ = zipfDl
	for _, c := range cats {
		for rank := 1; rank <= appsPerCat; rank++ {
			pkg := fmt.Sprintf("com.%s.app%03d", sanitizeCat(c), rank)
			snap.Apps = append(snap.Apps, &App{
				Package:   pkg,
				Title:     fmt.Sprintf("%s App %d", titleCase(c), rank),
				Category:  c,
				Rank:      rank,
				Downloads: stats.DownloadsForRank(rank, 5e9*cfg.Scale+1e6, 1.1),
				Rating:    3.0 + g.rng.Float64()*2.0,
			})
		}
	}

	// Distribute model instances to ML apps per category.
	mlAppTarget := cfg.scaled(cfg.AppsWithModels21)
	totalModels := 0
	for _, c := range cats {
		totalModels += len(perCat[c])
	}
	g.addedByApp = map[string][]int{}
	for _, c := range cats {
		insts := perCat[c]
		if len(insts) == 0 {
			continue
		}
		nApps := mlAppTarget * len(insts) / maxInt(1, totalModels)
		if nApps < 1 {
			nApps = 1
		}
		chart := snap.TopChart(c, 0)
		// ML-powered apps skew popular: take from the top half of the chart.
		if nApps > len(chart) {
			nApps = len(chart)
		}
		mlApps := make([]*App, 0, nApps)
		for i := 0; i < nApps; i++ {
			mlApps = append(mlApps, chart[(i*2)%len(chart)])
		}
		for i, inst := range insts {
			app := mlApps[i%len(mlApps)]
			fw := g.specFramework[inst.spec]
			mi := ModelInstance{
				SpecIndex: inst.spec,
				Framework: fw,
				AssetDir:  "models",
			}
			app.Models = append(app.Models, mi)
			if !containsStr(app.Frameworks, fw) {
				app.Frameworks = append(app.Frameworks, fw)
			}
			if inst.added {
				g.addedByApp[app.Package] = append(g.addedByApp[app.Package], len(app.Models)-1)
			}
		}
	}

	// Framework-only apps: libraries present, models encrypted or lazily
	// downloaded (Table 2's apps-with-frameworks minus apps-with-models).
	fwOnly := cfg.scaled(cfg.AppsWithFw21) - cfg.scaled(cfg.AppsWithModels21)
	fwNames := []string{"tflite", "caffe", "ncnn"}
	candidates := g.appsWithoutML(snap)
	for i := 0; i < fwOnly && i < len(candidates); i++ {
		app := candidates[i]
		app.Frameworks = append(app.Frameworks, fwNames[g.rng.Intn(len(fwNames))])
		if g.rng.Float64() < 0.5 {
			// Encrypted model payload: file present, validation will fail.
			spec := g.rng.Intn(len(g.allSpecs))
			app.Models = append(app.Models, ModelInstance{
				SpecIndex: spec,
				Framework: g.specFramework[spec],
				Encrypted: true,
				AssetDir:  "models",
			})
		} else {
			app.LazyModelDownload = true
		}
	}

	// Cloud API apps (Figure 15): drawn independently of on-device ML.
	g.assignCloudAPIs(snap)
	// Acceleration traces (Section 6.3).
	g.assignAcceleration(snap)

	snap.Specs = g.allSpecs
	snap.SpecFramework = g.specFramework

	// Record removed-model churn for derive20.
	g.removedByCat = map[Category][]ModelInstance{}
	spec20Seed := cfg.Seed*5000 + 7
	n20Only := cfg.scaled(cfg.UniqueModels20) / 4 // ~29 of 129 at full scale
	if n20Only < 1 {
		n20Only = 1
	}
	for i := 0; i < n20Only; i++ {
		t := zoo.AllTasks()[g.rng.Intn(len(zoo.AllTasks()))]
		spec := zoo.Spec{
			Task:   t,
			Seed:   spec20Seed,
			Hinted: g.rng.Float64() < cfg.HintedNameFrac,
			Opts:   zoo.DefaultOptsFor(t, g.rng),
		}
		spec20Seed++
		idx := len(g.allSpecs)
		g.allSpecs = append(g.allSpecs, spec)
		fw := "tflite"
		r := g.rng.Float64()
		acc := 0.0
		for _, s := range removedFrameworkShare {
			acc += s.Weight
			if r < acc {
				fw = s.Name
				break
			}
		}
		g.specFramework = append(g.specFramework, fw)
		g.spec20Only = append(g.spec20Only, idx)
	}
	for _, c := range cats {
		nRem := cfg.scaledAllowZero(categoryChurn[c].Removed)
		for i := 0; i < nRem; i++ {
			idx := g.spec20Only[g.rng.Intn(len(g.spec20Only))]
			g.removedByCat[c] = append(g.removedByCat[c], ModelInstance{
				SpecIndex: idx,
				Framework: g.specFramework[idx],
				AssetDir:  "models",
			})
		}
	}
	// The 2021 snapshot shares the enlarged spec table (2020-only specs are
	// simply unreferenced by 2021 apps).
	snap.Specs = g.allSpecs
	snap.SpecFramework = g.specFramework
	return snap, nil
}

// derive20 reconstructs the 2020 snapshot by reversing the churn.
func (g *generator) derive20(snap21 *Snapshot) (*Snapshot, error) {
	cfg := g.cfg
	snap := &Snapshot{
		Label:         "snapshot-2020",
		Date:          "2020-02-14",
		cfg:           cfg,
		fileCache:     map[int]*fileCacheEntry{},
		Specs:         snap21.Specs,
		SpecFramework: snap21.SpecFramework,
	}
	// Copy apps, dropping post-2020 model additions.
	for _, a21 := range snap21.Apps {
		a := *a21
		a.Models = nil
		a.Frameworks = nil
		added := map[int]bool{}
		for _, mi := range g.addedByApp[a21.Package] {
			added[mi] = true
		}
		for i, m := range a21.Models {
			if added[i] || m.Encrypted {
				continue
			}
			a.Models = append(a.Models, m)
			if !containsStr(a.Frameworks, m.Framework) {
				a.Frameworks = append(a.Frameworks, m.Framework)
			}
		}
		// Cloud API adoption was 2.33x lower in 2020.
		if len(a21.CloudAPIs) > 0 && g.rng.Float64() < 1/2.33 {
			a.CloudAPIs = a21.CloudAPIs
		} else {
			a.CloudAPIs = nil
		}
		a.UsesNNAPI = a21.UsesNNAPI && g.rng.Float64() < 0.5
		a.UsesXNNPACK = false
		a.UsesSNPE = false
		a.LazyModelDownload = a21.LazyModelDownload && g.rng.Float64() < 0.6
		snap.Apps = append(snap.Apps, &a)
	}
	// Re-add removed (2020-only) models to apps in their category.
	for cat, insts := range g.removedByCat {
		chart := snap.TopChart(cat, 0)
		if len(chart) == 0 {
			continue
		}
		for i, mi := range insts {
			app := chart[(i*3)%len(chart)]
			app.Models = append(app.Models, mi)
			if !containsStr(app.Frameworks, mi.Framework) {
				app.Frameworks = append(app.Frameworks, mi.Framework)
			}
		}
	}
	// Framework-only apps of 2020 (236 - 165 = 71 scaled).
	fwOnly := cfg.scaled(cfg.AppsWithFw20) - cfg.scaled(cfg.AppsWithModels20)
	fwNames := []string{"tflite", "caffe"}
	for _, a := range g.appsWithoutML(snap) {
		if fwOnly <= 0 {
			break
		}
		a.Frameworks = append(a.Frameworks, fwNames[g.rng.Intn(len(fwNames))])
		a.LazyModelDownload = true
		fwOnly--
	}
	return snap, nil
}

func (g *generator) appsWithoutML(s *Snapshot) []*App {
	var out []*App
	for _, a := range s.Apps {
		if !a.HasML() {
			out = append(out, a)
		}
	}
	return out
}

func (g *generator) assignCloudAPIs(s *Snapshot) {
	cfg := g.cfg
	googleTarget := cfg.scaled(cfg.CloudAppsGoogle21)
	awsTarget := cfg.scaled(cfg.CloudAppsAWS21)
	var googleAPIs, awsAPIs []CloudAPI
	for _, api := range cloudAPIs {
		if api.Provider == "google" {
			googleAPIs = append(googleAPIs, api)
		} else {
			awsAPIs = append(awsAPIs, api)
		}
	}
	pickAPI := func(apis []CloudAPI) string {
		total := 0
		for _, a := range apis {
			total += a.Weight
		}
		r := g.rng.Intn(total)
		for _, a := range apis {
			if r < a.Weight {
				return a.Name
			}
			r -= a.Weight
		}
		return apis[0].Name
	}
	// Cloud apps skew towards communication/social/business categories but
	// appear everywhere; draw from the general population.
	apps := s.Apps
	used := map[string]bool{}
	assign := func(n int, apis []CloudAPI) {
		for i := 0; i < n; i++ {
			var app *App
			for tries := 0; tries < 50; tries++ {
				cand := apps[g.rng.Intn(len(apps))]
				if !used[cand.Package] {
					app = cand
					break
				}
			}
			if app == nil {
				return
			}
			used[app.Package] = true
			app.CloudAPIs = append(app.CloudAPIs, pickAPI(apis))
			if g.rng.Float64() < 0.25 { // some apps call two APIs
				second := pickAPI(apis)
				if !containsStr(app.CloudAPIs, second) {
					app.CloudAPIs = append(app.CloudAPIs, second)
				}
			}
		}
	}
	assign(googleTarget, googleAPIs)
	assign(awsTarget, awsAPIs)
}

func (g *generator) assignAcceleration(s *Snapshot) {
	cfg := g.cfg
	var mlApps []*App
	for _, a := range s.Apps {
		if len(a.Models) > 0 {
			mlApps = append(mlApps, a)
		}
	}
	if len(mlApps) == 0 {
		return
	}
	mark := func(n int, f func(*App)) {
		for i := 0; i < n; i++ {
			f(mlApps[(i*7)%len(mlApps)])
		}
	}
	mark(cfg.scaled(cfg.NNAPIApps), func(a *App) { a.UsesNNAPI = true })
	mark(cfg.XNNPACKApps, func(a *App) { a.UsesXNNPACK = true }) // 1 app even at scale
	// The SNPE apps ship both a tflite and a dlc variant of the same model
	// ("they deploy both a TFLite and dlc variants of the same model").
	nSNPE := cfg.SNPEApps
	for i := 0; i < nSNPE && i < len(mlApps); i++ {
		a := mlApps[(i*11+3)%len(mlApps)]
		a.UsesSNPE = true
		if len(a.Models) > 0 {
			twin := a.Models[0]
			twin.Framework = "snpe"
			a.Models = append(a.Models, twin)
			if !containsStr(a.Frameworks, "snpe") {
				a.Frameworks = append(a.Frameworks, "snpe")
			}
		}
	}
}

func sanitizeCat(c Category) string {
	out := make([]rune, 0, len(c))
	for _, r := range c {
		switch {
		case r >= 'A' && r <= 'Z':
			out = append(out, r+('a'-'A'))
		case r == '_':
		default:
			out = append(out, r)
		}
	}
	return string(out)
}

func titleCase(c Category) string {
	s := string(c)
	out := make([]rune, 0, len(s))
	up := true
	for _, r := range s {
		switch {
		case r == '_':
			out = append(out, ' ')
			up = true
		case up:
			out = append(out, r)
			up = false
		default:
			out = append(out, r+('a'-'A'))
		}
	}
	return string(out)
}

func containsStr(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
