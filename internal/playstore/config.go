package playstore

import "github.com/gaugenn/gaugenn/internal/nn/zoo"

func paperTaskCountsForConfig() []int {
	out := make([]int, 0, len(zoo.PaperTaskCounts))
	for _, t := range zoo.AllTasks() {
		if c := zoo.PaperTaskCounts[t]; c > 0 {
			out = append(out, c)
		}
	}
	return out
}

func paperUnidentifiedForConfig() int { return zoo.PaperUnidentified }

// Config parameterises catalogue generation. The zero value is not usable;
// start from DefaultConfig.
type Config struct {
	// Seed drives every random decision; equal seeds generate identical
	// stores byte for byte.
	Seed int64
	// Scale multiplies every population count. 1.0 reproduces the paper's
	// 16.6k-app, 1666-model store; CI-sized studies use 0.02-0.1.
	Scale float64
	// AppsPerCategory is the chart depth (the store API returns "a maximum
	// of 500 apps" per category).
	AppsPerCategory int

	// Calibration constants (Table 2 and Sections 4-6 of the paper); they
	// are scaled by Scale at generation time.
	TotalModels21     int // 1666
	UniqueModels21    int // 318
	UniqueModels20    int // 129
	AppsWithModels21  int // 342
	AppsWithFw21      int // 377
	AppsWithModels20  int // 165
	AppsWithFw20      int // 236
	CloudAppsGoogle21 int // 452
	CloudAppsAWS21    int // 72
	NNAPIApps         int // 71
	XNNPACKApps       int // 1
	SNPEApps          int // 3

	// HintedNameFrac is the fraction of models whose file name leaks the
	// task (~67%, Section 4.4).
	HintedNameFrac float64
	// FineTunedFrac is the fraction of unique models derived from another
	// unique model by last-layers fine-tuning (9.02%, Section 4.5).
	FineTunedFrac float64
	// SmallDeltaFrac is the fraction of unique models differing from their
	// base in at most 3 layers (4.2%, Section 4.5).
	SmallDeltaFrac float64
	// FullQuantFrac is the fraction of unique models shipped fully
	// quantised (dequantize layers + int8 activations; 10.3%, Section 6.1).
	FullQuantFrac float64
	// WeightQuantFrac adds weight-only int8 models so int8-weight adoption
	// reaches ~20.27% (Section 6.1).
	WeightQuantFrac float64
	// MeanSparsity sets the average near-zero weight fraction (3.15%).
	MeanSparsity float64
}

// DefaultConfig returns the paper-calibrated configuration at the given
// scale.
func DefaultConfig(seed int64, scale float64) Config {
	if scale <= 0 {
		scale = 1
	}
	return Config{
		Seed:              seed,
		Scale:             scale,
		AppsPerCategory:   500,
		TotalModels21:     1666,
		UniqueModels21:    318,
		UniqueModels20:    129,
		AppsWithModels21:  342,
		AppsWithFw21:      377,
		AppsWithModels20:  165,
		AppsWithFw20:      236,
		CloudAppsGoogle21: 452,
		CloudAppsAWS21:    72,
		NNAPIApps:         71,
		XNNPACKApps:       1,
		SNPEApps:          3,
		HintedNameFrac:    0.67,
		FineTunedFrac:     0.0902,
		SmallDeltaFrac:    0.042,
		FullQuantFrac:     0.103,
		WeightQuantFrac:   0.10,
		MeanSparsity:      0.0315,
	}
}

// scaled applies the scale factor, keeping nonzero inputs at >= 1.
func (c Config) scaled(n int) int {
	if n == 0 {
		return 0
	}
	v := int(float64(n)*c.Scale + 0.5)
	if v < 1 {
		v = 1
	}
	return v
}

// scaledAllowZero applies the scale factor with plain rounding (small
// populations may vanish at small scales).
func (c Config) scaledAllowZero(n int) int {
	return int(float64(n)*c.Scale + 0.5)
}

// ExpectedModels21 returns the number of 2021 model instances the generator
// will produce at this scale. It can exceed scaled(TotalModels21) at small
// scales because every Table 3 task keeps at least one instance.
func (c Config) ExpectedModels21() int {
	n := 0
	for _, cnt := range paperTaskCountsForConfig() {
		n += c.scaled(cnt)
	}
	return n + c.scaled(paperUnidentifiedForConfig())
}
