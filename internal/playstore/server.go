package playstore

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"sync"
)

// Server exposes a snapshot over the store's device-facing HTTP API:
//
//	GET /fdfe/categories                         -> ["COMMUNICATION", ...]
//	GET /fdfe/topCharts?cat=C&n=500              -> chart entries
//	GET /fdfe/details?doc=pkg                    -> app metadata
//	GET /fdfe/purchase?doc=pkg                   -> base APK bytes
//	GET /fdfe/delivery?doc=pkg                   -> companion-file manifest
//	GET /fdfe/assetModules?doc=pkg&pack=name     -> asset-pack bytes
//
// Requests must carry a User-Agent and an X-DFE-Locale header, as gaugeNN
// "mimics the web API calls made from the Google Play store of a typical
// mobile device ... both the user-agent and locale headers are defined".
// The optional X-DFE-Device header names the requesting device model; the
// server records it so tests can verify that delivery is device-agnostic
// (the Section 4.2 null result).
type Server struct {
	snap *Snapshot

	mu            sync.Mutex
	deviceLog     []string
	requestCounts map[string]int
}

// NewServer wraps a snapshot.
func NewServer(snap *Snapshot) *Server {
	return &Server{snap: snap, requestCounts: map[string]int{}}
}

// DeviceLog returns the device models observed across requests.
func (s *Server) DeviceLog() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.deviceLog...)
}

// RequestCount returns how many requests hit the given endpoint path.
func (s *Server) RequestCount(path string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.requestCounts[path]
}

// ChartEntry is one row of a top-charts response.
type ChartEntry struct {
	Package   string  `json:"package"`
	Title     string  `json:"title"`
	Category  string  `json:"category"`
	Rank      int     `json:"rank"`
	Downloads int64   `json:"downloads"`
	Rating    float64 `json:"rating"`
}

// DeliveryManifest lists an app's companion files. Per the paper's finding,
// generated apps ship everything in the base APK, so both lists are empty —
// but the endpoint exists and the crawler must check it.
type DeliveryManifest struct {
	Package    string   `json:"package"`
	OBBs       []string `json:"obbs"`
	AssetPacks []string `json:"assetPacks"`
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Header.Get("User-Agent") == "" || r.Header.Get("X-DFE-Locale") == "" {
		http.Error(w, "store requires device user-agent and locale headers", http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	s.requestCounts[r.URL.Path]++
	if dev := r.Header.Get("X-DFE-Device"); dev != "" {
		s.deviceLog = append(s.deviceLog, dev)
	}
	s.mu.Unlock()

	switch r.URL.Path {
	case "/fdfe/categories":
		cats := Categories()
		names := make([]string, len(cats))
		for i, c := range cats {
			names[i] = string(c)
		}
		writeJSON(w, names)
	case "/fdfe/topCharts":
		s.handleTopCharts(w, r)
	case "/fdfe/details":
		s.handleDetails(w, r)
	case "/fdfe/purchase":
		s.handlePurchase(w, r)
	case "/fdfe/delivery":
		s.handleDelivery(w, r)
	case "/fdfe/assetModules":
		http.Error(w, "no asset packs for this app", http.StatusNotFound)
	default:
		http.NotFound(w, r)
	}
}

func (s *Server) handleTopCharts(w http.ResponseWriter, r *http.Request) {
	cat := Category(r.URL.Query().Get("cat"))
	if cat == "" {
		http.Error(w, "missing cat", http.StatusBadRequest)
		return
	}
	n := 500
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v <= 0 {
			http.Error(w, "bad n", http.StatusBadRequest)
			return
		}
		n = v
	}
	if n > 500 {
		n = 500 // the real store caps chart depth at 500
	}
	apps := s.snap.TopChart(cat, n)
	entries := make([]ChartEntry, len(apps))
	for i, a := range apps {
		entries[i] = ChartEntry{
			Package:   a.Package,
			Title:     a.Title,
			Category:  string(a.Category),
			Rank:      a.Rank,
			Downloads: a.Downloads,
			Rating:    a.Rating,
		}
	}
	writeJSON(w, entries)
}

func (s *Server) handleDetails(w http.ResponseWriter, r *http.Request) {
	app, ok := s.lookup(w, r)
	if !ok {
		return
	}
	writeJSON(w, ChartEntry{
		Package:   app.Package,
		Title:     app.Title,
		Category:  string(app.Category),
		Rank:      app.Rank,
		Downloads: app.Downloads,
		Rating:    app.Rating,
	})
}

func (s *Server) handlePurchase(w http.ResponseWriter, r *http.Request) {
	app, ok := s.lookup(w, r)
	if !ok {
		return
	}
	data, err := s.snap.BuildAPK(app)
	if err != nil {
		http.Error(w, fmt.Sprintf("packaging failed: %v", err), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/vnd.android.package-archive")
	w.Header().Set("Content-Length", strconv.Itoa(len(data)))
	w.Write(data)
}

func (s *Server) handleDelivery(w http.ResponseWriter, r *http.Request) {
	app, ok := s.lookup(w, r)
	if !ok {
		return
	}
	writeJSON(w, DeliveryManifest{Package: app.Package, OBBs: []string{}, AssetPacks: []string{}})
}

func (s *Server) lookup(w http.ResponseWriter, r *http.Request) (*App, bool) {
	pkg := r.URL.Query().Get("doc")
	if pkg == "" {
		http.Error(w, "missing doc", http.StatusBadRequest)
		return nil, false
	}
	app, ok := s.snap.AppByPackage(pkg)
	if !ok {
		http.Error(w, "unknown package", http.StatusNotFound)
		return nil, false
	}
	return app, true
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// Listen starts the server on a loopback port and returns its base URL and
// a shutdown function.
func (s *Server) Listen() (baseURL string, shutdown func() error, err error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, fmt.Errorf("playstore: %w", err)
	}
	srv := &http.Server{Handler: s}
	go srv.Serve(ln)
	return "http://" + ln.Addr().String(), func() error { return srv.Close() }, nil
}
