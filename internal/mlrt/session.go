package mlrt

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"
	"time"

	"github.com/gaugenn/gaugenn/internal/exec"
	"github.com/gaugenn/gaugenn/internal/nn/graph"
	"github.com/gaugenn/gaugenn/internal/soc"
)

// cpuLayerOverhead is the interpreter's per-op dispatch cost.
const cpuLayerOverhead = 12 * time.Microsecond

// fallbackBoundaryOverhead is paid when execution crosses between a
// delegate and the CPU (tensor handoff + synchronisation).
const fallbackBoundaryOverhead = 150 * time.Microsecond

// cpuOpEfficiency is the fraction of peak SIMD throughput each op class
// achieves on CPU: convolutions map well onto mobile hardware, depthwise
// and memory-shuffling ops poorly (Section 4.7's observations).
var cpuOpEfficiency = map[graph.OpClass]float64{
	graph.ClassConv:       0.75,
	graph.ClassDepthConv:  0.35,
	graph.ClassDense:      0.65,
	graph.ClassActivation: 0.25,
	graph.ClassPooling:    0.30,
	graph.ClassMath:       0.30,
	graph.ClassQuant:      0.40,
	graph.ClassResize:     0.30,
	graph.ClassSlice:      0.25,
	graph.ClassOther:      0.30,
}

// accelOpEfficiency: accelerators favour big regular GEMMs even more.
var accelOpEfficiency = map[graph.OpClass]float64{
	graph.ClassConv:       0.80,
	graph.ClassDepthConv:  0.40,
	graph.ClassDense:      0.70,
	graph.ClassActivation: 0.35,
	graph.ClassPooling:    0.35,
	graph.ClassMath:       0.35,
	graph.ClassQuant:      0.60,
	graph.ClassResize:     0.40,
	graph.ClassSlice:      0.30,
	graph.ClassOther:      0.30,
}

// planned is one layer's placement and cost basis.
type planned struct {
	work     soc.Work
	fallback bool // runs on CPU despite a non-CPU/delegate backend
}

// Session is a loaded model ready for repeated inference. The first
// inference is cold (cache/JIT warmup); the harness discards warmup runs
// "to remove cold cache outliers".
type Session struct {
	Engine  *Engine
	Graph   *graph.Graph
	Profile *graph.Profile
	Opts    Options

	plan        []planned
	fallbackOps int
	flops       int64
	peakMem     int64
	warm        bool

	// prog/inst are set when Opts.Execute selected the measured backend:
	// the compiled interpreter program and this session's run state.
	prog *exec.Program
	inst *exec.Instance
}

// Load prepares a session: profiles the graph, checks memory fit, places
// each layer on the backend or the CPU fallback and precomputes costs.
func (e *Engine) Load(g *graph.Graph, opts Options) (*Session, error) {
	opts = opts.withDefaults()
	prof, err := graph.ProfileGraph(g)
	if err != nil {
		return nil, fmt.Errorf("mlrt: %w", err)
	}
	// Memory fit: weights + batched activations must fit in RAM
	// (Section 6.2 anticipates OOM at scale for low-memory devices).
	need := prof.WeightBytes + prof.ActivationBytes*int64(opts.Batch)
	ram := int64(e.Device.RAMGB) * 1 << 30
	if ram > 0 && need > ram/2 {
		return nil, fmt.Errorf("mlrt: model needs %d MiB with batch %d, exceeding half of %s's %d GiB RAM",
			need>>20, opts.Batch, e.Device.Model, e.Device.RAMGB)
	}
	s := &Session{Engine: e, Graph: g, Profile: prof, Opts: opts}
	s.peakMem = need
	b := e.Backend
	driver := 1.0
	if b.UsesNNAPIDriver {
		driver = e.Device.SoC.NNAPIDriverQuality
	}
	batch := float64(opts.Batch)
	// Batching improves SIMD utilisation slightly — "throughput scales
	// almost linearly" with a small superlinear bonus until memory binds.
	batchEff := 1 + 0.05*math.Log2(batch)
	// SNPE quantises fp32 models internally for the DSP ("handling
	// quantisation in the proper precision internally"); models already
	// carrying int8 weights (including A16W8 hybrids) keep their declared
	// tensor sizes, which the profile has already accounted for.
	alreadyQuant := graph.CollectWeightStats(g).Int8WeightFraction() > 0.5
	quantised := b.Target == TargetDSP && !alreadyQuant
	for _, lp := range prof.Layers {
		fallback := b.Unsupported[lp.Op]
		eff := cpuOpEfficiency[lp.Class]
		if b.Target != TargetCPU && !fallback {
			eff = accelOpEfficiency[lp.Class]
		}
		speed := eff * batchEff
		if !fallback {
			speed *= b.SpeedFactor * driver
		}
		if speed > 1.2 {
			speed = 1.2
		}
		flops := int64(float64(lp.FLOPs) * batch)
		bytes := int64(float64(lp.InputBytes+lp.OutputBytes)*batch) + lp.WeightBytes
		if quantised && !fallback {
			bytes = bytes/4 + 1 // int8 tensors move a quarter of the fp32 bytes
		}
		overhead := cpuLayerOverhead
		if b.Target != TargetCPU && !fallback {
			overhead = 0 // ExecuteAccel applies the block's dispatch cost
		}
		if b.ExtraLayerOverhead > 0 && !fallback {
			overhead += b.ExtraLayerOverhead
		}
		if fallback {
			overhead += fallbackBoundaryOverhead
		}
		par := 0
		if lp.Op == graph.OpLSTM || lp.Op == graph.OpGRU {
			par = 1 // recurrent steps serialise
		}
		s.plan = append(s.plan, planned{
			work: soc.Work{
				FLOPs:       flops,
				Bytes:       bytes,
				Overhead:    overhead,
				Efficiency:  speed,
				Parallelism: par,
			},
			fallback: fallback,
		})
		if fallback {
			s.fallbackOps++
		}
		s.flops += flops
	}
	if opts.Execute {
		// Measured backend: compile the graph for the in-process
		// interpreter now so unsupported operators surface as a typed
		// errs.ErrUnsupportedOps at load, not a mid-run failure.
		prog, err := exec.Compile(g)
		if err != nil {
			return nil, err
		}
		s.prog = prog
		s.inst = prog.NewInstance()
	}
	return s, nil
}

// Executed reports whether the session runs measured inference through the
// internal/exec interpreter rather than the simulated device model.
func (s *Session) Executed() bool { return s.prog != nil }

// ExecStats returns the per-class roofline rows accumulated by the
// interpreter (nil for simulated sessions or before the first Infer).
func (s *Session) ExecStats() []exec.ClassStat {
	if s.inst == nil {
		return nil
	}
	return s.inst.Stats()
}

// inferExecuted runs Opts.Batch real inferences through the interpreter.
// Latency is host wall-clock time; the device's virtual clock advances by
// the measured duration so scheduling and thermal bookkeeping downstream
// stay coherent. Energy is an estimate — measured time times the SoC's
// base power plus one big core (the interpreter is single-threaded per
// instance), scaled by the backend's power factor; docs/exec.md spells
// out this contract. Batch seeds are fixed (0..Batch-1) so the output
// digest is a pure function of (model, batch): byte-identical across
// repeats, workers and pool sizes.
func (s *Session) inferExecuted() (Result, error) {
	dev := s.Engine.Device
	var agg Result
	agg.FLOPs = s.flops
	agg.PeakMemBytes = s.Profile.WeightBytes + s.prog.ArenaBytes()
	h := sha256.New()
	var total time.Duration
	for i := 0; i < s.Opts.Batch; i++ {
		total += s.inst.Run(uint64(i))
		d := s.inst.Digest()
		h.Write(d[:])
	}
	s.warm = true
	agg.Latency = total
	agg.OutputDigest = hex.EncodeToString(h.Sum(nil))
	watts := (dev.SoC.BasePowerWatts + dev.SoC.Islands[0].Type.ActiveWatts) * s.Engine.Backend.PowerFactor
	agg.EnergyJ = total.Seconds() * watts
	agg.AvgWatts = watts
	agg.CPUUtil = 1 // one interpreter thread saturating one core
	dev.Clock.Advance(total)
	return agg, nil
}

// Infer executes one (batched) inference, advancing the device's virtual
// clock and heating it. sink, when non-nil, receives rail power activity.
func (s *Session) Infer(sink soc.PowerSink) (Result, error) {
	if s.prog != nil {
		return s.inferExecuted()
	}
	dev := s.Engine.Device
	cfg := soc.CPUConfig{Threads: s.Opts.Threads, Affinity: s.Opts.Affinity}
	var agg Result
	agg.FLOPs = s.flops
	agg.FallbackOps = s.fallbackOps
	agg.PeakMemBytes = s.peakMem

	coldFactor := 1.0
	if !s.warm {
		coldFactor = 2.2 // cold caches, uninitialised delegates
		s.warm = true
	}

	// Execute contiguous segments per placement to model partition
	// crossings faithfully.
	i := 0
	for i < len(s.plan) {
		j := i
		for j < len(s.plan) && s.plan[j].fallback == s.plan[i].fallback {
			j++
		}
		seg := make([]soc.Work, 0, j-i)
		for _, p := range s.plan[i:j] {
			w := p.work
			if coldFactor > 1 {
				w.Overhead = time.Duration(float64(w.Overhead) * coldFactor)
				w.Efficiency /= coldFactor
			}
			seg = append(seg, w)
		}
		var st soc.RunStats
		var err error
		if s.plan[i].fallback || s.Engine.Backend.Target == TargetCPU {
			st, err = dev.ExecuteCPU(cfg, seg, sink)
		} else {
			acc := dev.SoC.GPU
			if s.Engine.Backend.Target == TargetDSP {
				acc = dev.SoC.DSP
			}
			st, err = dev.ExecuteAccel(acc, seg, sink)
		}
		if err != nil {
			return agg, err
		}
		agg.Latency += st.Latency
		agg.EnergyJ += st.EnergyJ * s.Engine.Backend.PowerFactor
		agg.Throttled = agg.Throttled || st.Throttled
		i = j
	}
	if agg.Latency > 0 {
		agg.AvgWatts = agg.EnergyJ / agg.Latency.Seconds()
		// Compute-bound time approximated from the roofline: overheads and
		// memory stalls are the remainder of each layer's latency.
		var computeNS float64
		for _, p := range s.plan {
			gf := 10.0 // nominal; relative utilisation only needs a shared basis
			computeNS += float64(p.work.FLOPs) / gf
		}
		util := computeNS / float64(agg.Latency)
		if util > 1 {
			util = 1
		}
		agg.CPUUtil = util
	}
	return agg, nil
}

// Warm marks the session warm without running (used by harness warmup
// accounting tests).
func (s *Session) Warm() { s.warm = true }

// IsWarm reports whether the next inference is a warm run.
func (s *Session) IsWarm() bool { return s.warm }
