package mlrt

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"github.com/gaugenn/gaugenn/internal/errs"
	"github.com/gaugenn/gaugenn/internal/nn/graph"
	"github.com/gaugenn/gaugenn/internal/nn/zoo"
	"github.com/gaugenn/gaugenn/internal/soc"
)

func dev(t *testing.T, model string) *soc.Device {
	t.Helper()
	d, err := soc.NewDevice(model)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func visionModel(t *testing.T, seed int64) *graph.Graph {
	t.Helper()
	g, err := zoo.Build(zoo.Spec{Task: zoo.TaskObjectDetection, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func textModel(t *testing.T, seed int64) *graph.Graph {
	t.Helper()
	g, err := zoo.Build(zoo.Spec{Task: zoo.TaskAutoComplete, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func infer(t *testing.T, device, backend string, g *graph.Graph, opts Options) Result {
	t.Helper()
	eng, err := NewEngine(dev(t, device), backend)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := eng.Load(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Infer(nil); err != nil { // warmup
		t.Fatal(err)
	}
	r, err := sess.Infer(nil)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestBackendsRegistry(t *testing.T) {
	names := Backends()
	want := []string{"cpu", "gpu", "nnapi", "snpe-cpu", "snpe-dsp", "snpe-gpu", "xnnpack"}
	if len(names) != len(want) {
		t.Fatalf("backends = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("backends = %v, want %v", names, want)
		}
	}
}

func TestEngineValidation(t *testing.T) {
	if _, err := NewEngine(dev(t, "Q845"), "warp-drive"); err == nil {
		t.Fatal("unknown backend must fail")
	}
	// SNPE requires Qualcomm: the A20's Exynos must refuse.
	if _, err := NewEngine(dev(t, "A20"), "snpe-dsp"); err == nil || !strings.Contains(err.Error(), "Qualcomm") {
		t.Fatalf("snpe on Exynos: %v", err)
	}
	// A20 has no DSP even for hypothetical paths; A70 (Qualcomm) has no DSP block.
	if _, err := NewEngine(dev(t, "A70"), "snpe-dsp"); err == nil {
		t.Fatal("A70 has no DSP block")
	}
	// GPU path works everywhere.
	if _, err := NewEngine(dev(t, "A20"), "gpu"); err != nil {
		t.Fatal(err)
	}
}

func TestWarmupEffect(t *testing.T) {
	eng, err := NewEngine(dev(t, "Q845"), "cpu")
	if err != nil {
		t.Fatal(err)
	}
	sess, err := eng.Load(visionModel(t, 1), Options{Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	if sess.IsWarm() {
		t.Fatal("fresh session should be cold")
	}
	cold, err := sess.Infer(nil)
	if err != nil {
		t.Fatal(err)
	}
	warmRun, err := sess.Infer(nil)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Latency < warmRun.Latency*3/2 {
		t.Fatalf("cold run (%v) should clearly exceed warm (%v)", cold.Latency, warmRun.Latency)
	}
}

func TestDeviceTierLatencyOrdering(t *testing.T) {
	g := visionModel(t, 2)
	lat := map[string]float64{}
	for _, m := range soc.AllDeviceModels() {
		r := infer(t, m, "cpu", g, Options{Threads: 4})
		lat[m] = r.Latency.Seconds()
	}
	if !(lat["A20"] > lat["A70"] && lat["A70"] > lat["S21"]) {
		t.Errorf("tier ordering: %v", lat)
	}
	if !(lat["Q845"] > lat["Q855"] && lat["Q855"] > lat["Q888"]) {
		t.Errorf("generation ordering: %v", lat)
	}
	// Paper ratios within generous bands.
	if r := lat["A20"] / lat["S21"]; r < 2.2 || r > 5.5 {
		t.Errorf("A20/S21 = %.2f, want ~3.4", r)
	}
	if r := lat["A70"] / lat["S21"]; r < 1.1 || r > 2.6 {
		t.Errorf("A70/S21 = %.2f, want ~1.51", r)
	}
}

func TestBackendSweepQ845(t *testing.T) {
	g := visionModel(t, 3)
	res := map[string]Result{}
	for _, b := range []string{"cpu", "xnnpack", "nnapi", "gpu", "snpe-cpu", "snpe-gpu", "snpe-dsp"} {
		res[b] = infer(t, "Q845", b, g, Options{Threads: 4})
	}
	cpu := res["cpu"].Latency.Seconds()
	// Fig 13: XNNPACK slightly faster; NNAPI clearly slower on Q845.
	if s := cpu / res["xnnpack"].Latency.Seconds(); s < 1.0 || s > 1.35 {
		t.Errorf("xnnpack speedup = %.2f, want ~1.03", s)
	}
	if s := cpu / res["nnapi"].Latency.Seconds(); s > 0.75 {
		t.Errorf("nnapi relative speed = %.2f, want ~0.49", s)
	}
	// Fig 14: DSP > GPU > CPU.
	if !(res["snpe-dsp"].Latency < res["snpe-gpu"].Latency && res["snpe-gpu"].Latency < res["cpu"].Latency) {
		t.Errorf("snpe ordering: dsp=%v gpu=%v cpu=%v", res["snpe-dsp"].Latency, res["snpe-gpu"].Latency, res["cpu"].Latency)
	}
	if s := cpu / res["snpe-dsp"].Latency.Seconds(); s < 3.0 || s > 9.0 {
		t.Errorf("snpe-dsp speedup = %.2f, want ~5.72", s)
	}
	if s := cpu / res["snpe-gpu"].Latency.Seconds(); s < 1.5 || s > 3.5 {
		t.Errorf("snpe-gpu speedup = %.2f, want ~2.28", s)
	}
	// SNPE GPU should beat the vanilla GPU delegate (~1.19x).
	if s := res["gpu"].Latency.Seconds() / res["snpe-gpu"].Latency.Seconds(); s < 1.0 || s > 1.5 {
		t.Errorf("snpe-gpu vs gpu = %.2f, want ~1.19", s)
	}
	// Energy: DSP is by far the most efficient.
	if res["snpe-dsp"].EnergyJ >= res["cpu"].EnergyJ/3 {
		t.Errorf("dsp energy %.4f should be far below cpu %.4f", res["snpe-dsp"].EnergyJ, res["cpu"].EnergyJ)
	}
}

func TestRecurrentFallback(t *testing.T) {
	g := textModel(t, 4)
	r := infer(t, "Q845", "gpu", g, Options{Threads: 4})
	if r.FallbackOps == 0 {
		t.Fatal("LSTM model on GPU should fall back for recurrent ops")
	}
	full := infer(t, "Q845", "cpu", g, Options{Threads: 4})
	if full.FallbackOps != 0 {
		t.Fatal("CPU backend never falls back")
	}
}

func TestBatchScaling(t *testing.T) {
	g := visionModel(t, 5)
	r1 := infer(t, "S21", "cpu", g, Options{Threads: 4, Batch: 1})
	r25 := infer(t, "S21", "cpu", g, Options{Threads: 4, Batch: 25})
	tput1 := 1.0 / r1.Latency.Seconds()
	tput25 := 25.0 / r25.Latency.Seconds()
	// Throughput must rise with batch ("throughput scales almost
	// linearly"), i.e. batched latency is sublinear in batch size.
	if tput25 <= tput1 {
		t.Fatalf("batch-25 throughput (%f) should exceed batch-1 (%f)", tput25, tput1)
	}
	if r25.Latency.Seconds() >= 25*r1.Latency.Seconds() {
		t.Fatal("batched latency should be sublinear")
	}
}

func TestBatchOOM(t *testing.T) {
	// A very large classifier at an absurd batch must exceed RAM limits.
	rng := rand.New(rand.NewSource(9))
	g, err := zoo.BuildArch(zoo.ArchMobileNetV2, "big", zoo.ArchOpts{Width: 2, Resolution: 224, Classes: 1000}, rng)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(dev(t, "A20"), "cpu")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Load(g, Options{Batch: 4096}); err == nil {
		t.Fatal("absurd batch should OOM on a 4 GB device")
	}
}

func TestNNAPIDriverQualityMatters(t *testing.T) {
	g := visionModel(t, 6)
	q845 := infer(t, "Q845", "nnapi", g, Options{Threads: 4})
	q888 := infer(t, "Q888", "nnapi", g, Options{Threads: 4})
	cpu845 := infer(t, "Q845", "cpu", g, Options{Threads: 4})
	cpu888 := infer(t, "Q888", "cpu", g, Options{Threads: 4})
	rel845 := cpu845.Latency.Seconds() / q845.Latency.Seconds()
	rel888 := cpu888.Latency.Seconds() / q888.Latency.Seconds()
	if rel888 <= rel845 {
		t.Fatalf("better NNAPI driver (Q888 %.2f) should beat Q845's (%.2f)", rel888, rel845)
	}
}

func TestEfficiencyMetric(t *testing.T) {
	r := Result{FLOPs: 2e9, EnergyJ: 2}
	if eff := r.EfficiencyMFLOPsW(); eff != 1000 {
		t.Fatalf("efficiency = %v, want 1000 MFLOP/sW", eff)
	}
	if (Result{FLOPs: 1}).EfficiencyMFLOPsW() != 0 {
		t.Fatal("zero energy should yield 0")
	}
	if (Result{EnergyJ: 0.5}).EnergymJ() != 500 {
		t.Fatal("mJ conversion")
	}
}

func TestDSPQuantisedMovesFewerBytes(t *testing.T) {
	g := visionModel(t, 7)
	dspRes := infer(t, "Q888", "snpe-dsp", g, Options{Threads: 4})
	gpuRes := infer(t, "Q888", "snpe-gpu", g, Options{Threads: 4})
	// Same model: DSP (int8) should win on latency given its higher
	// throughput and quarter-size tensors.
	if dspRes.Latency >= gpuRes.Latency {
		t.Fatalf("dsp %v should beat gpu %v", dspRes.Latency, gpuRes.Latency)
	}
}

func TestMemoryAndUtilisationReported(t *testing.T) {
	g := visionModel(t, 8)
	r := infer(t, "Q845", "cpu", g, Options{Threads: 4})
	if r.PeakMemBytes <= 0 {
		t.Fatal("peak memory missing")
	}
	if r.CPUUtil <= 0 || r.CPUUtil > 1 {
		t.Fatalf("cpu util = %v, want (0,1]", r.CPUUtil)
	}
	// Batched sessions need proportionally more working memory.
	rb := infer(t, "Q845", "cpu", g, Options{Threads: 4, Batch: 8})
	if rb.PeakMemBytes <= r.PeakMemBytes {
		t.Fatalf("batch-8 peak %d should exceed batch-1 peak %d", rb.PeakMemBytes, r.PeakMemBytes)
	}
}

func TestSupportsAndSupportedBackends(t *testing.T) {
	a20, err := soc.NewDevice("A20")
	if err != nil {
		t.Fatal(err)
	}
	if err := Supports(a20, "cpu"); err != nil {
		t.Fatalf("A20 must run plain CPU: %v", err)
	}
	if Supports(a20, "snpe-dsp") == nil {
		t.Fatal("A20 (Exynos) must not support SNPE")
	}
	if Supports(a20, "no-such-backend") == nil {
		t.Fatal("unknown backend must error")
	}
	got := SupportedBackends(a20)
	want := []string{"cpu", "gpu", "nnapi", "xnnpack"}
	if len(got) != len(want) {
		t.Fatalf("A20 backends = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("A20 backends = %v, want %v", got, want)
		}
	}
	// The Q888 HDK covers the full sweep of Figures 13/14.
	q888, err := soc.NewDevice("Q888")
	if err != nil {
		t.Fatal(err)
	}
	if all := SupportedBackends(q888); len(all) != len(Backends()) {
		t.Fatalf("Q888 should support every backend, got %v", all)
	}
}

// TestExecutedSession covers the measured backend behind Options.Execute:
// real latency, a digest that is a pure function of (model, batch), typed
// rejection of graphs the interpreter cannot run, and roofline stats.
func TestExecutedSession(t *testing.T) {
	g, err := zoo.Build(zoo.Spec{Task: zoo.TaskKeywordDetection, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(dev(t, "Q888"), "cpu")
	if err != nil {
		t.Fatal(err)
	}
	sess, err := eng.Load(g, Options{Batch: 2, Execute: true})
	if err != nil {
		t.Fatal(err)
	}
	if !sess.Executed() {
		t.Fatal("session must report executed mode")
	}
	before := eng.Device.Clock.Now()
	r1, err := sess.Infer(nil)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Latency <= 0 || r1.EnergyJ <= 0 {
		t.Fatalf("degenerate measured result: %+v", r1)
	}
	if r1.OutputDigest == "" {
		t.Fatal("executed result must carry an output digest")
	}
	if eng.Device.Clock.Now()-before != r1.Latency {
		t.Fatal("virtual clock must advance by the measured latency")
	}
	r2, err := sess.Infer(nil)
	if err != nil {
		t.Fatal(err)
	}
	if r2.OutputDigest != r1.OutputDigest {
		t.Fatalf("digest drifted between runs: %s vs %s", r1.OutputDigest, r2.OutputDigest)
	}
	if len(sess.ExecStats()) == 0 {
		t.Fatal("executed session must expose roofline stats")
	}

	// A fresh session over the same model and batch digests identically;
	// the simulated path carries no digest at all.
	fresh, err := eng.Load(g, Options{Batch: 2, Execute: true})
	if err != nil {
		t.Fatal(err)
	}
	rf, err := fresh.Infer(nil)
	if err != nil {
		t.Fatal(err)
	}
	if rf.OutputDigest != r1.OutputDigest {
		t.Fatal("digest must be a pure function of (model, batch)")
	}
	sim, err := eng.Load(g, Options{Batch: 2})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := sim.Infer(nil)
	if err != nil {
		t.Fatal(err)
	}
	if rs.OutputDigest != "" || sim.Executed() {
		t.Fatal("simulated session must not digest or report executed")
	}

	// Recurrent graphs fail at Load with the typed error.
	if _, err := eng.Load(textModel(t, 6), Options{Execute: true}); !errors.Is(err, errs.ErrUnsupportedOps) {
		t.Fatalf("Load = %v, want ErrUnsupportedOps", err)
	}
	if _, err := eng.Load(textModel(t, 6), Options{}); err != nil {
		t.Fatalf("simulated mode must accept recurrent graphs: %v", err)
	}
}
