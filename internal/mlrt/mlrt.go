// Package mlrt implements the inference runtimes gaugeNN benchmarks models
// under (Sections 5-6): the framework CPU interpreter with thread/affinity
// and batch knobs, the XNNPACK delegate, the NNAPI middleware path whose
// performance hinges on vendor driver quality, the GPU delegate, and
// Qualcomm's SNPE runtime targeting CPU/GPU/DSP (int8 on the DSP).
// Backends differ in kernel quality, operator support (unsupported
// operators fall back to the CPU with partition-crossing overhead — "the
// rudimentary support for operators across heterogeneous targets ... can
// hinder their widespread adoption") and power draw.
package mlrt

import (
	"fmt"
	"sort"
	"time"

	"github.com/gaugenn/gaugenn/internal/nn/graph"
	"github.com/gaugenn/gaugenn/internal/soc"
)

// Target selects the compute block a backend dispatches to.
type Target uint8

// Compute targets.
const (
	TargetCPU Target = iota
	TargetGPU
	TargetDSP
)

// Backend describes one runtime path.
type Backend struct {
	// Name is the identifier used across benches ("cpu", "xnnpack",
	// "nnapi", "gpu", "snpe-cpu", "snpe-gpu", "snpe-dsp").
	Name   string
	Target Target
	// SpeedFactor scales the target's effective throughput (kernel
	// quality relative to the baseline runtime for that target).
	SpeedFactor float64
	// PowerFactor scales the target's active power.
	PowerFactor float64
	// UsesNNAPIDriver routes through the vendor NNAPI driver, applying
	// the SoC's driver-quality factor.
	UsesNNAPIDriver bool
	// RequiresQualcomm gates SNPE ("it can only target Qualcomm SoCs,
	// trading off generality for performance").
	RequiresQualcomm bool
	// Unsupported lists operators this backend cannot execute; they fall
	// back to the baseline CPU path with a partition boundary penalty.
	Unsupported map[graph.OpType]bool
	// ExtraLayerOverhead is added per delegated layer (driver hops).
	ExtraLayerOverhead time.Duration
}

var recurrentOps = map[graph.OpType]bool{
	graph.OpLSTM:      true,
	graph.OpGRU:       true,
	graph.OpEmbedding: true,
}

var backends = map[string]Backend{
	"cpu": {Name: "cpu", Target: TargetCPU, SpeedFactor: 1, PowerFactor: 1},
	"xnnpack": {
		Name: "xnnpack", Target: TargetCPU, SpeedFactor: 1.07, PowerFactor: 0.97,
		Unsupported: recurrentOps,
	},
	"nnapi": {
		Name: "nnapi", Target: TargetCPU, SpeedFactor: 1, PowerFactor: 0.90,
		UsesNNAPIDriver: true, Unsupported: recurrentOps,
		ExtraLayerOverhead: 60 * time.Microsecond,
	},
	"gpu": {
		Name: "gpu", Target: TargetGPU, SpeedFactor: 1, PowerFactor: 1,
		Unsupported: recurrentOps,
	},
	"snpe-cpu": {
		Name: "snpe-cpu", Target: TargetCPU, SpeedFactor: 0.93, PowerFactor: 1.02,
		RequiresQualcomm: true,
	},
	"snpe-gpu": {
		Name: "snpe-gpu", Target: TargetGPU, SpeedFactor: 1.19, PowerFactor: 0.95,
		RequiresQualcomm: true, Unsupported: recurrentOps,
	},
	"snpe-dsp": {
		Name: "snpe-dsp", Target: TargetDSP, SpeedFactor: 1, PowerFactor: 1,
		RequiresQualcomm: true, Unsupported: recurrentOps,
	},
}

// Backends lists the available backend names, sorted.
func Backends() []string {
	out := make([]string, 0, len(backends))
	for n := range backends {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Supports reports whether the named backend can execute on the device
// (nil when it can). It applies the same gating as NewEngine — SNPE needs
// Qualcomm silicon, GPU/DSP paths need the block, NNAPI needs a vendor
// driver — without constructing an engine, so schedulers can prune a
// benchmark matrix before dispatch.
func Supports(dev *soc.Device, backendName string) error {
	_, err := NewEngine(dev, backendName)
	return err
}

// SupportedBackends returns the sorted subset of Backends() the device can
// execute — the per-device backend axis of the paper's benchmark matrix.
func SupportedBackends(dev *soc.Device) []string {
	var out []string
	for _, name := range Backends() {
		if Supports(dev, name) == nil {
			out = append(out, name)
		}
	}
	return out
}

// Engine binds a backend to a device.
type Engine struct {
	Device  *soc.Device
	Backend Backend
}

// NewEngine validates backend availability on the device: SNPE needs a
// Qualcomm SoC; GPU/DSP paths need the block to exist; NNAPI needs a
// vendor driver.
func NewEngine(dev *soc.Device, backendName string) (*Engine, error) {
	b, ok := backends[backendName]
	if !ok {
		return nil, fmt.Errorf("mlrt: unknown backend %q (have %v)", backendName, Backends())
	}
	if err := dev.Validate(); err != nil {
		return nil, err
	}
	if b.RequiresQualcomm && !dev.SoC.Qualcomm {
		return nil, fmt.Errorf("mlrt: %s requires a Qualcomm SoC; %s has %s", b.Name, dev.Model, dev.SoC.Name)
	}
	switch b.Target {
	case TargetGPU:
		if dev.SoC.GPU == nil {
			return nil, fmt.Errorf("mlrt: %s has no GPU block", dev.Model)
		}
	case TargetDSP:
		if dev.SoC.DSP == nil {
			return nil, fmt.Errorf("mlrt: %s has no DSP block", dev.Model)
		}
	}
	if b.UsesNNAPIDriver && dev.SoC.NNAPIDriverQuality <= 0 {
		return nil, fmt.Errorf("mlrt: %s ships no NNAPI driver", dev.Model)
	}
	return &Engine{Device: dev, Backend: b}, nil
}

// Options tune one loaded session.
type Options struct {
	// Threads is the CPU worker count (default 4, the paper's benchmark
	// setting).
	Threads int
	// Affinity pins threads to the top-N cores (0 = unpinned).
	Affinity int
	// Batch is the inference batch size (default 1).
	Batch int
	// Execute selects the measured backend: inference runs for real
	// through the internal/exec interpreter and Latency is wall-clock time
	// on the host, instead of the simulated device-clock estimate. Load
	// rejects graphs the interpreter cannot run with
	// errs.ErrUnsupportedOps. See docs/exec.md for what the knob changes.
	Execute bool
}

func (o Options) withDefaults() Options {
	if o.Threads <= 0 {
		o.Threads = 4
	}
	if o.Batch <= 0 {
		o.Batch = 1
	}
	return o
}

// Result is one inference's measurement.
type Result struct {
	Latency   time.Duration
	EnergyJ   float64
	AvgWatts  float64
	Throttled bool
	// FallbackOps counts layers that executed on the CPU because the
	// backend does not support their operator.
	FallbackOps int
	// FLOPs is the model's per-inference work (batch included), for
	// efficiency (MFLOP/sW) reporting.
	FLOPs int64
	// PeakMemBytes is the inference working set: weights plus the batched
	// activations (the "memory" column of the Section 3.3 measurements).
	PeakMemBytes int64
	// CPUUtil is the fraction of the run the CPU spent computing rather
	// than stalled on memory or dispatch (1.0 = fully compute-bound).
	CPUUtil float64
	// OutputDigest is the hex SHA-256 of every output tensor's bytes when
	// the session executed for real (Options.Execute); empty for simulated
	// runs. It is a pure function of (model, batch), so identical digests
	// across repeats, workers and pool sizes witness deterministic
	// execution.
	OutputDigest string
}

// EnergymJ returns the energy in millijoules, the paper's reporting unit.
func (r Result) EnergymJ() float64 { return r.EnergyJ * 1000 }

// EfficiencyMFLOPsW returns MFLOP/s per watt — "effectively the same as
// calculating FLOPs per Joule" (Section 5.2.1).
func (r Result) EfficiencyMFLOPsW() float64 {
	if r.EnergyJ <= 0 {
		return 0
	}
	return float64(r.FLOPs) / r.EnergyJ / 1e6
}
