// Package testutil holds small helpers shared by tests across packages.
// It must only ever be imported from _test.go files.
package testutil

import (
	"runtime"
	"testing"
	"time"
)

// goroutineSlack tolerates runtime helpers (timer goroutines, the test
// framework's own plumbing) that come and go independently of the code
// under test.
const goroutineSlack = 2

// NoLeakedGoroutines guards a whole test: it snapshots the goroutine
// census at the call and fails the test at cleanup if the census has not
// settled back (within slack) — a cancelled pipeline must drain its
// worker pools, servers, and single-flight waiters, not strand them.
//
//	func TestSomethingCancelled(t *testing.T) {
//		testutil.NoLeakedGoroutines(t)
//		...
//	}
func NoLeakedGoroutines(t testing.TB) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() { GoroutinesSettled(t, before) })
}

// GoroutinesSettled polls until the goroutine census drops back to
// before (within slack) and fails t if it does not within 10 seconds.
// Use it directly when one test runs several scenarios and each must
// settle on its own; NoLeakedGoroutines wraps it for whole-test guards.
func GoroutinesSettled(t testing.TB, before int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+goroutineSlack {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before+goroutineSlack {
		t.Fatalf("goroutines leaked: before=%d after=%d", before, n)
	}
}
