package store

import (
	"errors"
	"reflect"
	"testing"

	"github.com/gaugenn/gaugenn/internal/errs"
)

type sealFixture struct {
	Name string `json:"name"`
	N    int    `json:"n"`
}

func TestSealRoundTripAndDeterminism(t *testing.T) {
	v := sealFixture{Name: "m", N: 7}
	a, err := SealJSON(v)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SealJSON(v)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("equal values must seal to equal bytes")
	}
	var got sealFixture
	if err := OpenJSON(a, &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, v) {
		t.Fatalf("round trip lost data: %+v", got)
	}
}

func TestOpenJSONRejectsTampering(t *testing.T) {
	data, err := SealJSON(sealFixture{Name: "m", N: 7})
	if err != nil {
		t.Fatal(err)
	}
	for bit := 0; bit < len(data)*8; bit += 7 {
		tampered := append([]byte(nil), data...)
		tampered[bit/8] ^= 1 << (bit % 8)
		if string(tampered) == string(data) {
			continue
		}
		var got sealFixture
		if err := OpenJSON(tampered, &got); err == nil && !reflect.DeepEqual(got, sealFixture{Name: "m", N: 7}) {
			t.Fatalf("bit %d: tampered record opened to a different value: %q", bit, tampered)
		}
	}
}

func TestOpenJSONErrorsAreTyped(t *testing.T) {
	var got sealFixture
	err := OpenJSON([]byte(`{"sum":"00","body":{"name":"m","n":7}}`), &got)
	if !errors.Is(err, ErrSealBroken) || !errors.Is(err, errs.ErrStoreCorrupt) {
		t.Fatalf("err = %v, want ErrSealBroken wrapping errs.ErrStoreCorrupt", err)
	}
	if err := OpenJSON([]byte(`not json`), &got); !errors.Is(err, ErrSealBroken) {
		t.Fatalf("unsealed garbage: err = %v, want ErrSealBroken", err)
	}
}
