package store

import "github.com/gaugenn/gaugenn/internal/obs"

// Per-kind CAS traffic series. Children are resolved once at package
// init into plain maps keyed by kind, so the Put/Get hot paths do a map
// read of an interned constant string plus one atomic add — no label
// rendering, no registry lock.
var (
	metPuts       = perKind("gaugenn_store_puts_total", "Blobs written to the CAS, by kind.")
	metGets       = perKind("gaugenn_store_gets_total", "Blob reads that found their key, by kind.")
	metGetMisses  = perKind("gaugenn_store_get_misses_total", "Blob reads that missed, by kind.")
	metSealBroken = obs.Default().Counter("gaugenn_store_seal_failures_total",
		"Sealed records rejected because their digest no longer matched the body.")
)

// perKind registers one child per blob kind under name.
func perKind(name, help string) map[string]*obs.Counter {
	m := make(map[string]*obs.Counter, 5)
	for _, kind := range []string{KindPayload, KindAnalysis, KindReport, KindGraph, KindCorpus, KindIndex} {
		m[kind] = obs.Default().Counter(name, help, obs.Label{Name: "kind", Value: kind})
	}
	return m
}

// countKind bumps c's child for kind; unknown kinds (impossible past
// checkRef) are dropped rather than registered on the hot path.
func countKind(c map[string]*obs.Counter, kind string) {
	if m, ok := c[kind]; ok {
		m.Inc()
	}
}
