package store

// Sealed JSON records. Most store kinds are keyed by the hash of the
// artifact they *describe* (an APK, a model checksum), not of the record
// bytes themselves, so the key cannot authenticate the blob: a flipped
// bit that still parses would be silently trusted by every warm run.
// SealJSON embeds a digest of the record body at write time; OpenJSON
// refuses to decode a record whose body no longer matches it, surfacing
// ErrSealBroken (which is also errs.ErrStoreCorrupt) so callers degrade
// to recomputation exactly like a cache miss.

import (
	"crypto/md5"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"github.com/gaugenn/gaugenn/internal/errs"
)

// ErrSealBroken marks a sealed record whose digest no longer matches its
// body. It wraps errs.ErrStoreCorrupt for taxonomy-level matching.
var ErrSealBroken = fmt.Errorf("store: record seal broken: %w", errs.ErrStoreCorrupt)

type sealedWire struct {
	Sum  string          `json:"sum"`
	Body json.RawMessage `json:"body"`
}

func bodySum(body []byte) string {
	sum := md5.Sum(body)
	return hex.EncodeToString(sum[:])
}

// SealJSON marshals v and wraps it with a digest of the marshalled body.
// Equal values seal to equal bytes, preserving codec determinism.
func SealJSON(v any) ([]byte, error) {
	body, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	return json.Marshal(sealedWire{Sum: bodySum(body), Body: body})
}

// OpenJSON verifies a sealed record's digest and unmarshals its body into
// v. A record that is not sealed, or whose body was altered since sealing,
// fails with ErrSealBroken on the chain.
func OpenJSON(data []byte, v any) error {
	var s sealedWire
	if err := json.Unmarshal(data, &s); err != nil {
		metSealBroken.Inc()
		return fmt.Errorf("%w (envelope: %v)", ErrSealBroken, err)
	}
	if len(s.Body) == 0 || s.Sum != bodySum(s.Body) {
		metSealBroken.Inc()
		return ErrSealBroken
	}
	return json.Unmarshal(s.Body, v)
}
