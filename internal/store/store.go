// Package store implements gaugeNN's persistent content-addressed study
// store: a filesystem CAS holding the pipeline's derived artifacts —
// extraction reports keyed by APK payload hash, per-checksum analysis
// records, payload decode outcomes and corpus snapshots — plus an
// append-only manifest of persisted studies. It is the durability layer
// under the study engine's warm-start path (a re-run loads everything it
// has seen before instead of re-crawling/re-decoding it) and the data
// source of the `gaugenn serve` query API.
//
// The store is deliberately dumb: bytes in, bytes out, keys validated,
// writes atomic (temp file + rename) and idempotent (content-addressed
// keys mean an existing blob is never rewritten). Typed codecs live with
// the types they serialise (internal/extract, internal/analysis); this
// package carries no pipeline logic, only the error taxonomy (errs) and
// per-kind traffic counters (obs). See docs/persistence.md for the
// on-disk layout and invalidation rules.
package store

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"fmt"
	iofs "io/fs"
	"os"
	"path/filepath"
	"sync"
	"time"

	"errors"
)

// Blob kinds — each kind is one top-level CAS namespace (a directory).
const (
	// KindPayload records a decode outcome per model payload hash.
	KindPayload = "payload"
	// KindAnalysis records per-checksum analysis results.
	KindAnalysis = "analysis"
	// KindReport records whole extraction reports per APK payload hash.
	KindReport = "report"
	// KindGraph records decoded model graphs (binary codec) per checksum.
	KindGraph = "graph"
	// KindCorpus records serialised corpus snapshots by content hash.
	KindCorpus = "corpus"
	// KindIndex records columnar query indexes derived from corpus
	// snapshots, keyed by the source corpus blob's key.
	KindIndex = "index"
)

// manifestName is the append-only study log at the store root.
const manifestName = "manifest.jsonl"

// Store is a content-addressed blob store rooted at one directory. All
// methods are safe for concurrent use within one process; concurrent
// writers in separate processes are safe for blobs (atomic rename, equal
// content per key) but the manifest assumes a single writing process.
type Store struct {
	dir string
	fs  FS

	// manifestMu serialises manifest appends (read-check-append).
	manifestMu sync.Mutex
}

// Open creates (if needed) and opens a store rooted at dir on the real
// filesystem. OpenFS substitutes the IO layer.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &Store{dir: dir, fs: OSFS{}}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// HexKey renders raw hash bytes as a store key.
func HexKey(b []byte) string { return hex.EncodeToString(b) }

// validKey constrains keys to lowercase hex-ish names: no separators, no
// traversal, usable verbatim as file names on any platform.
func validKey(key string) bool {
	if len(key) < 4 || len(key) > 128 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func validKind(kind string) bool {
	switch kind {
	case KindPayload, KindAnalysis, KindReport, KindGraph, KindCorpus, KindIndex:
		return true
	}
	return false
}

// blobPath shards blobs by the first two key characters so no directory
// grows unboundedly (the git object-store layout).
func (s *Store) blobPath(kind, key string) string {
	return filepath.Join(s.dir, kind, key[:2], key)
}

func (s *Store) checkRef(kind, key string) error {
	if !validKind(kind) {
		return fmt.Errorf("store: unknown blob kind %q", kind)
	}
	if !validKey(key) {
		return fmt.Errorf("store: invalid key %q for kind %s", key, kind)
	}
	return nil
}

// contentKeyed reports whether a kind's key is the hash of the blob's own
// bytes. Such blobs are write-once — an existing blob is byte-identical by
// construction, so Put skips it. Every other kind is a *derived record*
// keyed by the hash of its input (payload outcome, analysis record,
// report, graph), whose encoding can legitimately change at the same key
// (codec version bumps): those are overwritten, so a recomputed artifact
// really is re-persisted under the current layout (the invalidation
// contract of docs/persistence.md).
func contentKeyed(kind string) bool { return kind == KindCorpus }

// Put stores a blob under (kind, key). Writes are atomic (temp file +
// rename), so readers never observe a partial blob; content-keyed kinds
// skip existing blobs, derived-record kinds replace them.
func (s *Store) Put(kind, key string, data []byte) error {
	if err := s.checkRef(kind, key); err != nil {
		return err
	}
	path := s.blobPath(kind, key)
	if contentKeyed(kind) {
		if _, err := s.fs.Stat(path); err == nil {
			return nil // already stored; the key is the hash of these bytes
		}
	}
	if err := s.fs.WriteFileAtomic(path, data); err != nil {
		return fmt.Errorf("store: writing %s/%s: %w", kind, key, err)
	}
	countKind(metPuts, kind)
	return nil
}

// Get loads the blob under (kind, key); ok is false when it is absent.
func (s *Store) Get(kind, key string) (data []byte, ok bool, err error) {
	if err := s.checkRef(kind, key); err != nil {
		return nil, false, err
	}
	data, err = s.fs.ReadFile(s.blobPath(kind, key))
	if errors.Is(err, iofs.ErrNotExist) {
		countKind(metGetMisses, kind)
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("store: reading %s/%s: %w", kind, key, err)
	}
	countKind(metGets, kind)
	return data, true, nil
}

// Has reports whether a blob exists under (kind, key).
func (s *Store) Has(kind, key string) bool {
	if s.checkRef(kind, key) != nil {
		return false
	}
	_, err := s.fs.Stat(s.blobPath(kind, key))
	return err == nil
}

// Count returns the number of blobs stored under kind.
func (s *Store) Count(kind string) (int, error) {
	if !validKind(kind) {
		return 0, fmt.Errorf("store: unknown blob kind %q", kind)
	}
	shards, err := s.fs.ReadDir(filepath.Join(s.dir, kind))
	if errors.Is(err, iofs.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("store: %w", err)
	}
	n := 0
	for _, sh := range shards {
		if !sh.IsDir() {
			continue
		}
		blobs, err := s.fs.ReadDir(filepath.Join(s.dir, kind, sh.Name()))
		if err != nil {
			return 0, fmt.Errorf("store: %w", err)
		}
		for _, b := range blobs {
			if !b.IsDir() && b.Name()[0] != '.' {
				n++
			}
		}
	}
	return n, nil
}

// ManifestEntry is one persisted study in the append-only manifest. A
// study is identified by its configuration (ID is a pure function of seed
// and scale), and references its corpus snapshots by CAS key — re-running
// an identical study reproduces identical keys, so the manifest records
// provenance without duplicating data.
type ManifestEntry struct {
	// ID identifies the study configuration ("seed42-scale0.05").
	ID string `json:"id"`
	// Seed and Scale reproduce the study's store generation.
	Seed  int64   `json:"seed"`
	Scale float64 `json:"scale"`
	// Snapshots maps snapshot label -> corpus blob key (KindCorpus).
	Snapshots map[string]string `json:"snapshots"`
	// Apps/Models record per-label dataset sizes for cheap listing.
	Apps   map[string]int `json:"apps,omitempty"`
	Models map[string]int `json:"models,omitempty"`
}

// AppendManifest appends one study entry as a JSON line. Appending an
// entry whose encoding is already present is a no-op, so warm re-runs of
// an identical study do not grow the log; the file itself is append-only
// (existing lines are never rewritten).
func (s *Store) AppendManifest(e ManifestEntry) error {
	if e.ID == "" {
		return fmt.Errorf("store: manifest entry without id")
	}
	line, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("store: encoding manifest entry: %w", err)
	}
	s.manifestMu.Lock()
	defer s.manifestMu.Unlock()
	existing, err := s.fs.ReadFile(s.manifestPath())
	if err != nil && !errors.Is(err, iofs.ErrNotExist) {
		return fmt.Errorf("store: reading manifest: %w", err)
	}
	for _, l := range bytes.Split(existing, []byte{'\n'}) {
		if bytes.Equal(bytes.TrimSpace(l), line) {
			return nil
		}
	}
	// A torn final line (crashed or fault-injected writer) must not glue
	// itself onto this entry: start a fresh line first. Manifest() skips
	// the resulting fragment; fsck trims it.
	var prefix []byte
	if n := len(existing); n > 0 && existing[n-1] != '\n' {
		prefix = []byte{'\n'}
	}
	if err := s.fs.Append(s.manifestPath(), append(prefix, append(line, '\n')...)); err != nil {
		return fmt.Errorf("store: appending manifest: %w", err)
	}
	return nil
}

// Manifest returns every manifest entry in append order. Lines that do
// not parse are skipped (a torn final line from a crashed writer must not
// poison the log).
func (s *Store) Manifest() ([]ManifestEntry, error) {
	raw, err := s.fs.ReadFile(s.manifestPath())
	if errors.Is(err, iofs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: reading manifest: %w", err)
	}
	var out []ManifestEntry
	for _, line := range bytes.Split(raw, []byte{'\n'}) {
		line = bytes.TrimSpace(line)
		if len(line) == 0 {
			continue
		}
		var e ManifestEntry
		if err := json.Unmarshal(line, &e); err != nil || e.ID == "" {
			continue
		}
		out = append(out, e)
	}
	return out, nil
}

// Studies returns the manifest deduplicated by study ID, keeping the
// latest entry per ID in first-appearance order — the listing the serve
// API exposes.
func (s *Store) Studies() ([]ManifestEntry, error) {
	entries, err := s.Manifest()
	if err != nil {
		return nil, err
	}
	latest := map[string]ManifestEntry{}
	var order []string
	for _, e := range entries {
		if _, seen := latest[e.ID]; !seen {
			order = append(order, e.ID)
		}
		latest[e.ID] = e
	}
	out := make([]ManifestEntry, 0, len(order))
	for _, id := range order {
		out = append(out, latest[id])
	}
	return out, nil
}

// Study returns the latest manifest entry for one study ID.
func (s *Store) Study(id string) (ManifestEntry, bool, error) {
	entries, err := s.Studies()
	if err != nil {
		return ManifestEntry{}, false, err
	}
	for _, e := range entries {
		if e.ID == id {
			return e, true, nil
		}
	}
	return ManifestEntry{}, false, nil
}

// ManifestInfo fingerprints the manifest file by (size, mtime) without
// reading it. Callers cache the parsed manifest keyed by this pair: the
// log is append-only, so any change moves the size. ok is false while no
// manifest exists yet (an empty store).
func (s *Store) ManifestInfo() (size int64, mtime time.Time, ok bool) {
	fi, err := s.fs.Stat(s.manifestPath())
	if err != nil {
		return 0, time.Time{}, false
	}
	return fi.Size(), fi.ModTime(), true
}

func (s *Store) manifestPath() string { return filepath.Join(s.dir, manifestName) }
