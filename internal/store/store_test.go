package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func open(t *testing.T) *Store {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	s := open(t)
	key := HexKey([]byte{0xde, 0xad, 0xbe, 0xef})
	if _, ok, err := s.Get(KindReport, key); err != nil || ok {
		t.Fatalf("empty store: ok=%v err=%v", ok, err)
	}
	data := []byte("payload bytes")
	if err := s.Put(KindReport, key, data); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.Get(KindReport, key)
	if err != nil || !ok || !bytes.Equal(got, data) {
		t.Fatalf("get: ok=%v err=%v data=%q", ok, err, got)
	}
	if !s.Has(KindReport, key) {
		t.Fatal("Has must see the stored blob")
	}
	if s.Has(KindAnalysis, key) {
		t.Fatal("kinds must not share a namespace")
	}
}

func TestPutContentKeyedSkipsExisting(t *testing.T) {
	s := open(t)
	key := HexKey([]byte{1, 2, 3, 4})
	// Corpus keys are hashes of the blob's own bytes: an existing blob is
	// byte-identical by construction, so Put must not rewrite it.
	if err := s.Put(KindCorpus, key, []byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(KindCorpus, key, []byte("second write ignored")); err != nil {
		t.Fatal(err)
	}
	got, _, err := s.Get(KindCorpus, key)
	if err != nil || string(got) != "first" {
		t.Fatalf("content-keyed put rewrote: %q err=%v", got, err)
	}
}

func TestPutDerivedRecordOverwrites(t *testing.T) {
	s := open(t)
	key := HexKey([]byte{1, 2, 3, 4})
	// Derived records (payload/analysis/report/graph) are keyed by their
	// *input's* hash; a codec version bump re-persists new bytes at the
	// same key, so Put must replace the stale blob.
	for _, kind := range []string{KindPayload, KindAnalysis, KindReport, KindGraph} {
		if err := s.Put(kind, key, []byte("v1 layout")); err != nil {
			t.Fatal(err)
		}
		if err := s.Put(kind, key, []byte("v2 layout")); err != nil {
			t.Fatal(err)
		}
		got, _, err := s.Get(kind, key)
		if err != nil || string(got) != "v2 layout" {
			t.Fatalf("%s: stale record survived re-persist: %q err=%v", kind, got, err)
		}
	}
}

func TestKeyAndKindValidation(t *testing.T) {
	s := open(t)
	bad := []string{"", "ab", "../../../etc/passwd", "ABCDEF", "zzzz", "a/b/c/d"}
	for _, key := range bad {
		if err := s.Put(KindReport, key, nil); err == nil {
			t.Fatalf("key %q must be rejected", key)
		}
	}
	if err := s.Put("secrets", HexKey([]byte{1, 2, 3, 4}), nil); err == nil {
		t.Fatal("unknown kind must be rejected")
	}
}

func TestCount(t *testing.T) {
	s := open(t)
	if n, err := s.Count(KindPayload); err != nil || n != 0 {
		t.Fatalf("empty count: %d err=%v", n, err)
	}
	for i := 0; i < 20; i++ {
		key := HexKey([]byte{byte(i), 0xaa, 0xbb, byte(i)})
		if err := s.Put(KindPayload, key, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if n, err := s.Count(KindPayload); err != nil || n != 20 {
		t.Fatalf("count: %d err=%v", n, err)
	}
}

func TestConcurrentPutsSameKey(t *testing.T) {
	s := open(t)
	key := HexKey([]byte{9, 9, 9, 9})
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := s.Put(KindCorpus, key, []byte("same bytes")); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	got, ok, err := s.Get(KindCorpus, key)
	if err != nil || !ok || string(got) != "same bytes" {
		t.Fatalf("racing puts corrupted blob: ok=%v err=%v data=%q", ok, err, got)
	}
	// No temp-file litter survives the races.
	shard := filepath.Dir(s.blobPath(KindCorpus, key))
	ents, err := os.ReadDir(shard)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("shard dir holds %d entries, want just the blob", len(ents))
	}
}

func TestManifestAppendDedupeAndList(t *testing.T) {
	s := open(t)
	e1 := ManifestEntry{
		ID: "seed42-scale0.05", Seed: 42, Scale: 0.05,
		Snapshots: map[string]string{"2020": "aa11", "2021": "bb22"},
		Apps:      map[string]int{"2020": 10, "2021": 12},
	}
	for i := 0; i < 3; i++ {
		if err := s.AppendManifest(e1); err != nil {
			t.Fatal(err)
		}
	}
	got, err := s.Manifest()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("identical appends must dedupe: %d entries", len(got))
	}
	// A changed entry for the same ID appends; Studies keeps the latest.
	e2 := e1
	e2.Snapshots = map[string]string{"2020": "aa11", "2021": "cc33"}
	if err := s.AppendManifest(e2); err != nil {
		t.Fatal(err)
	}
	all, err := s.Manifest()
	if err != nil || len(all) != 2 {
		t.Fatalf("manifest must be append-only: %d entries err=%v", len(all), err)
	}
	studies, err := s.Studies()
	if err != nil || len(studies) != 1 {
		t.Fatalf("studies: %d err=%v", len(studies), err)
	}
	if studies[0].Snapshots["2021"] != "cc33" {
		t.Fatalf("Studies must keep the latest entry per ID: %+v", studies[0])
	}
	st, ok, err := s.Study("seed42-scale0.05")
	if err != nil || !ok || st.Snapshots["2021"] != "cc33" {
		t.Fatalf("Study lookup: ok=%v err=%v %+v", ok, err, st)
	}
	if _, ok, _ := s.Study("nope"); ok {
		t.Fatal("unknown study must not resolve")
	}
}

func TestManifestSkipsTornLine(t *testing.T) {
	s := open(t)
	if err := s.AppendManifest(ManifestEntry{ID: "a", Seed: 1, Scale: 1}); err != nil {
		t.Fatal(err)
	}
	// Simulate a crashed writer: a torn trailing line.
	f, err := os.OpenFile(s.manifestPath(), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprint(f, `{"id":"torn","se`)
	f.Close()
	got, err := s.Manifest()
	if err != nil || len(got) != 1 || got[0].ID != "a" {
		t.Fatalf("torn line must be skipped: %v err=%v", got, err)
	}
}

func TestReopenSeesExistingBlobs(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := HexKey([]byte{5, 6, 7, 8})
	if err := s1.Put(KindAnalysis, key, []byte("persisted")); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, ok, err := s2.Get(KindAnalysis, key)
	if err != nil || !ok || string(got) != "persisted" {
		t.Fatalf("reopen lost blob: ok=%v err=%v %q", ok, err, got)
	}
}
