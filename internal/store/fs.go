package store

import (
	"fmt"
	"os"
	"path/filepath"
)

// FS is the store's filesystem seam: the five operations the CAS needs,
// at the granularity faults are injected at. Production uses OSFS; tests
// wrap it (internal/faults mirrors this shape structurally) to inject
// EIO, bit-flips, and torn writes without touching the real disk layout.
// Paths are absolute; implementations own durability semantics —
// WriteFileAtomic must never leave a partial file visible at name.
type FS interface {
	// ReadFile reads the whole file, os-style (fs.ErrNotExist when absent).
	ReadFile(name string) ([]byte, error)
	// WriteFileAtomic publishes data at name all-or-nothing, creating
	// parent directories as needed.
	WriteFileAtomic(name string, data []byte) error
	// Append appends data to name, creating it (and parents) if absent.
	// Unlike WriteFileAtomic it may tear on failure — callers of
	// append-only logs must tolerate a torn final record.
	Append(name string, data []byte) error
	// Stat mirrors os.Stat.
	Stat(name string) (os.FileInfo, error)
	// ReadDir mirrors os.ReadDir.
	ReadDir(name string) ([]os.DirEntry, error)
}

// OSFS is the real-disk FS.
type OSFS struct{}

func (OSFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (OSFS) WriteFileAtomic(name string, data []byte) error {
	dir := filepath.Dir(name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(name)+".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, name); err != nil {
		os.Remove(tmpName)
		return err
	}
	return nil
}

func (OSFS) Append(name string, data []byte) error {
	if err := os.MkdirAll(filepath.Dir(name), 0o755); err != nil {
		return err
	}
	f, err := os.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func (OSFS) Stat(name string) (os.FileInfo, error)      { return os.Stat(name) }
func (OSFS) ReadDir(name string) ([]os.DirEntry, error) { return os.ReadDir(name) }

// OpenFS opens a store rooted at dir over an explicit filesystem. The
// root directory is still created on the real disk (a store's existence
// is not a faultable event); all blob and manifest IO after that goes
// through fsys.
func OpenFS(dir string, fsys FS) (*Store, error) {
	s, err := Open(dir)
	if err != nil {
		return nil, err
	}
	if fsys == nil {
		return nil, fmt.Errorf("store: nil FS")
	}
	s.fs = fsys
	return s, nil
}
