package zoo

import (
	"fmt"
	"math/rand"

	"github.com/gaugenn/gaugenn/internal/nn/graph"
)

// Arch identifies an architecture family.
type Arch uint8

// Architecture families the paper observes in the wild (Section 4.5):
// MobileNet dominates; FSSD is the most popular detector; BlazeFace the
// most popular face detector.
const (
	ArchUnknown Arch = iota
	ArchMobileNetV1
	ArchMobileNetV2
	ArchFSSD
	ArchBlazeFace
	ArchUNet
	ArchCRNN
	ArchLandmarkNet
	ArchPoseNet
	ArchEncoderDecoder
	ArchEmbedLSTM
	ArchTextCNN
	ArchSeq2Seq
	ArchAudioCNN
	ArchSpeechRNN
	ArchKeywordCNN
	ArchSensorMLP
	ArchSensorGRU
	numArchs
)

var archNames = [...]string{
	ArchUnknown:        "unknown",
	ArchMobileNetV1:    "mobilenet_v1",
	ArchMobileNetV2:    "mobilenet_v2",
	ArchFSSD:           "fssd",
	ArchBlazeFace:      "blazeface",
	ArchUNet:           "unet",
	ArchCRNN:           "crnn",
	ArchLandmarkNet:    "landmarknet",
	ArchPoseNet:        "posenet",
	ArchEncoderDecoder: "encdec",
	ArchEmbedLSTM:      "embed_lstm",
	ArchTextCNN:        "text_cnn",
	ArchSeq2Seq:        "seq2seq",
	ArchAudioCNN:       "audio_cnn",
	ArchSpeechRNN:      "speech_rnn",
	ArchKeywordCNN:     "keyword_cnn",
	ArchSensorMLP:      "sensor_mlp",
	ArchSensorGRU:      "sensor_gru",
}

// String returns the family name used in generated model filenames.
func (a Arch) String() string {
	if int(a) < len(archNames) {
		return archNames[a]
	}
	return "unknown"
}

// ArchFromCode decodes a persisted numeric architecture code;
// out-of-range codes fold to ArchUnknown.
func ArchFromCode(code uint8) Arch {
	if a := Arch(code); a < numArchs {
		return a
	}
	return ArchUnknown
}

// ArchOpts scales an architecture. Width multiplies channel counts
// (MobileNet's α); Resolution sets the square input size for vision nets;
// Classes sizes the output head; Vocab sizes text models.
type ArchOpts struct {
	Width      float64
	Resolution int
	Classes    int
	Vocab      int
	TimeSteps  int
}

func (o ArchOpts) withDefaults() ArchOpts {
	if o.Width <= 0 {
		o.Width = 1
	}
	if o.Resolution <= 0 {
		o.Resolution = 128
	}
	if o.Classes <= 0 {
		o.Classes = 10
	}
	if o.Vocab <= 0 {
		o.Vocab = 4000
	}
	if o.TimeSteps <= 0 {
		o.TimeSteps = 16
	}
	return o
}

func (o ArchOpts) ch(base int) int {
	c := int(float64(base) * o.Width)
	if c < 4 {
		c = 4
	}
	return c
}

// BuildArch constructs a deterministic model of the given family. The same
// (arch, opts, seed) triple always yields byte-identical weights.
func BuildArch(arch Arch, name string, opts ArchOpts, rng *rand.Rand) (*graph.Graph, error) {
	opts = opts.withDefaults()
	switch arch {
	case ArchMobileNetV1:
		return buildMobileNetV1(name, opts, rng)
	case ArchMobileNetV2:
		return buildMobileNetV2(name, opts, rng)
	case ArchFSSD:
		return buildFSSD(name, opts, rng)
	case ArchBlazeFace:
		return buildBlazeFace(name, opts, rng)
	case ArchUNet:
		return buildUNet(name, opts, rng)
	case ArchCRNN:
		return buildCRNN(name, opts, rng)
	case ArchLandmarkNet:
		return buildLandmarkNet(name, opts, rng)
	case ArchPoseNet:
		return buildPoseNet(name, opts, rng)
	case ArchEncoderDecoder:
		return buildEncoderDecoder(name, opts, rng)
	case ArchEmbedLSTM:
		return buildEmbedLSTM(name, opts, rng)
	case ArchTextCNN:
		return buildTextCNN(name, opts, rng)
	case ArchSeq2Seq:
		return buildSeq2Seq(name, opts, rng)
	case ArchAudioCNN:
		return buildAudioCNN(name, opts, rng)
	case ArchSpeechRNN:
		return buildSpeechRNN(name, opts, rng)
	case ArchKeywordCNN:
		return buildKeywordCNN(name, opts, rng)
	case ArchSensorMLP:
		return buildSensorMLP(name, opts, rng)
	case ArchSensorGRU:
		return buildSensorGRU(name, opts, rng)
	default:
		return nil, fmt.Errorf("zoo: unknown architecture %d", arch)
	}
}

func buildMobileNetV1(name string, o ArchOpts, rng *rand.Rand) (*graph.Graph, error) {
	b := graph.NewBuilder(name, rng)
	b.Input("input", graph.Shape{1, o.Resolution, o.Resolution, 3}, graph.Float32)
	b.Conv("conv0", o.ch(16), 3, 2, graph.OpReLU6)
	cfg := []struct{ c, s int }{{32, 1}, {64, 2}, {64, 1}, {128, 2}, {128, 1}, {256, 2}}
	for i, st := range cfg {
		b.DWConv(fmt.Sprintf("dw%d", i+1), 3, st.s, graph.OpReLU6)
		b.Conv(fmt.Sprintf("pw%d", i+1), o.ch(st.c), 1, 1, graph.OpReLU6)
	}
	b.GlobalAvgPool("gap")
	b.Reshape("flatten", []int{1, -1})
	b.Dense("logits", o.Classes, graph.OpInvalid)
	b.Softmax("prob")
	return b.Finish()
}

func buildMobileNetV2(name string, o ArchOpts, rng *rand.Rand) (*graph.Graph, error) {
	b := graph.NewBuilder(name, rng)
	b.Input("input", graph.Shape{1, o.Resolution, o.Resolution, 3}, graph.Float32)
	b.Conv("conv0", o.ch(16), 3, 2, graph.OpReLU6)
	blocks := []struct{ c, s, expand int }{
		{16, 1, 1}, {24, 2, 4}, {24, 1, 4}, {48, 2, 4}, {48, 1, 4}, {96, 2, 4},
	}
	for i, blk := range blocks {
		in := b.Current()
		inShape := b.CurrentShape()
		exp := o.ch(blk.c * blk.expand)
		b.Conv(fmt.Sprintf("b%d_expand", i), exp, 1, 1, graph.OpReLU6)
		b.DWConv(fmt.Sprintf("b%d_dw", i), 3, blk.s, graph.OpReLU6)
		b.Conv(fmt.Sprintf("b%d_project", i), o.ch(blk.c), 1, 1, graph.OpInvalid)
		if blk.s == 1 && len(inShape) == 4 && inShape[3] == o.ch(blk.c) {
			b.Add(fmt.Sprintf("b%d_residual", i), in)
		}
	}
	b.Conv("head_conv", o.ch(192), 1, 1, graph.OpReLU6)
	b.GlobalAvgPool("gap")
	b.Reshape("flatten", []int{1, -1})
	b.Dense("logits", o.Classes, graph.OpInvalid)
	b.Softmax("prob")
	return b.Finish()
}

// buildFSSD follows Li & Zhou's feature-fusion SSD: a MobileNet-style
// backbone whose multi-scale feature maps are fused and fed to box and
// class heads. The paper finds FSSD to be the most popular detector in the
// wild, shipping even inside Google's own apps.
func buildFSSD(name string, o ArchOpts, rng *rand.Rand) (*graph.Graph, error) {
	b := graph.NewBuilder(name, rng)
	b.Input("input", graph.Shape{1, o.Resolution, o.Resolution, 3}, graph.Float32)
	b.Conv("conv0", o.ch(16), 3, 2, graph.OpReLU6)
	b.DWConv("dw1", 3, 1, graph.OpReLU6)
	b.Conv("pw1", o.ch(32), 1, 1, graph.OpReLU6)
	b.DWConv("dw2", 3, 2, graph.OpReLU6)
	b.Conv("pw2", o.ch(64), 1, 1, graph.OpReLU6)
	f1 := b.Current() // stride-4 feature map
	b.DWConv("dw3", 3, 2, graph.OpReLU6)
	b.Conv("pw3", o.ch(128), 1, 1, graph.OpReLU6)
	f2 := b.Current() // stride-8
	b.DWConv("dw4", 3, 2, graph.OpReLU6)
	b.Conv("pw4", o.ch(128), 1, 1, graph.OpReLU6)
	// Fusion: upsample deeper maps to f1's resolution and concatenate.
	fuseRes := o.Resolution / 4
	b.Resize("up4", fuseRes, fuseRes)
	up4 := b.Current()
	b.SetCurrent(f2)
	b.Resize("up3", fuseRes, fuseRes)
	up3 := b.Current()
	b.SetCurrent(f1)
	b.Concat("fusion", 3, up3, up4)
	b.BatchNorm("fusion_bn")
	b.Conv("fusion_conv", o.ch(96), 1, 1, graph.OpReLU)
	trunk := b.Current()
	// Pyramid heads: each scale predicts 4 box coords + classes per anchor.
	anchors := 3
	b.Conv("head0_feat", o.ch(96), 3, 1, graph.OpReLU)
	b.Conv("head0_box", anchors*(4+o.Classes), 1, 1, graph.OpInvalid)
	h0 := b.Current()
	b.SetCurrent(trunk)
	b.Conv("head1_down", o.ch(96), 3, 2, graph.OpReLU)
	b.Conv("head1_box", anchors*(4+o.Classes), 1, 1, graph.OpInvalid)
	h1 := b.Current()
	s0 := b.CurrentShape()
	_ = s0
	b.SetCurrent(h0)
	b.Reshape("head0_flat", []int{1, -1})
	h0f := b.Current()
	b.SetCurrent(h1)
	b.Reshape("head1_flat", []int{1, -1})
	b.Concat("predictions", 1, h0f)
	return b.Finish()
}

// buildBlazeFace is a compact single-shot face detector in the spirit of
// Bazarevsky et al.'s sub-millisecond BlazeFace.
func buildBlazeFace(name string, o ArchOpts, rng *rand.Rand) (*graph.Graph, error) {
	b := graph.NewBuilder(name, rng)
	res := o.Resolution
	if res > 128 {
		res = 128 // BlazeFace runs on small crops
	}
	b.Input("input", graph.Shape{1, res, res, 3}, graph.Float32)
	b.Conv("conv0", o.ch(24), 5, 2, graph.OpReLU)
	for i := 0; i < 3; i++ {
		in := b.Current()
		b.DWConv(fmt.Sprintf("blaze%d_dw", i), 3, 1, graph.OpInvalid)
		b.Conv(fmt.Sprintf("blaze%d_pw", i), o.ch(24), 1, 1, graph.OpInvalid)
		b.Add(fmt.Sprintf("blaze%d_res", i), in)
		b.Activation(fmt.Sprintf("blaze%d_act", i), graph.OpReLU)
	}
	b.DWConv("down_dw", 3, 2, graph.OpInvalid)
	b.Conv("down_pw", o.ch(48), 1, 1, graph.OpReLU)
	b.Conv("boxes", 2*(4+1), 1, 1, graph.OpInvalid)
	b.Reshape("flat", []int{1, -1})
	return b.Finish()
}

func buildUNet(name string, o ArchOpts, rng *rand.Rand) (*graph.Graph, error) {
	b := graph.NewBuilder(name, rng)
	b.Input("input", graph.Shape{1, o.Resolution, o.Resolution, 3}, graph.Float32)
	b.Conv("enc0", o.ch(16), 3, 1, graph.OpReLU)
	e0 := b.Current()
	b.MaxPool("pool0", 2, 2)
	b.Conv("enc1", o.ch(32), 3, 1, graph.OpReLU)
	e1 := b.Current()
	b.MaxPool("pool1", 2, 2)
	b.Conv("bottleneck", o.ch(64), 3, 1, graph.OpReLU)
	b.TransposeConv("up1", o.ch(32), 2, 2)
	b.Concat("skip1", 3, e1)
	b.Conv("dec1", o.ch(32), 3, 1, graph.OpReLU)
	b.TransposeConv("up0", o.ch(16), 2, 2)
	b.Concat("skip0", 3, e0)
	b.Conv("dec0", o.ch(16), 3, 1, graph.OpReLU)
	b.Conv("mask", 2, 1, 1, graph.OpInvalid)
	b.Activation("mask_prob", graph.OpSigmoid)
	return b.Finish()
}

// buildCRNN is the conv-recurrent text recogniser used for OCR and credit
// card scanning (the paper's PayCards example).
func buildCRNN(name string, o ArchOpts, rng *rand.Rand) (*graph.Graph, error) {
	b := graph.NewBuilder(name, rng)
	h := 32
	w := o.Resolution
	b.Input("input", graph.Shape{1, h, w, 1}, graph.Float32)
	b.Conv("conv0", o.ch(16), 3, 1, graph.OpReLU)
	b.MaxPool("pool0", 2, 2)
	b.Conv("conv1", o.ch(32), 3, 1, graph.OpReLU)
	b.MaxPool("pool1", 2, 2)
	b.Conv("conv2", o.ch(48), 3, 1, graph.OpReLU)
	shape := b.CurrentShape()
	// Collapse height into features: [1, W', H'*C].
	b.Reshape("to_seq", []int{1, shape[2], shape[1] * shape[3]})
	b.LSTM("lstm0", o.ch(64))
	b.LSTM("lstm1", o.ch(64))
	b.Dense("chars", 64, graph.OpInvalid)
	b.Softmax("prob")
	return b.Finish()
}

func buildLandmarkNet(name string, o ArchOpts, rng *rand.Rand) (*graph.Graph, error) {
	b := graph.NewBuilder(name, rng)
	b.Input("input", graph.Shape{1, o.Resolution, o.Resolution, 3}, graph.Float32)
	b.Conv("conv0", o.ch(16), 3, 2, graph.OpReLU)
	b.DWConv("dw0", 3, 1, graph.OpReLU)
	b.Conv("pw0", o.ch(32), 1, 1, graph.OpReLU)
	b.DWConv("dw1", 3, 2, graph.OpReLU)
	b.Conv("pw1", o.ch(64), 1, 1, graph.OpReLU)
	b.GlobalAvgPool("gap")
	b.Reshape("flatten", []int{1, -1})
	b.Dense("coords", 2*max(4, o.Classes), graph.OpInvalid)
	return b.Finish()
}

func buildPoseNet(name string, o ArchOpts, rng *rand.Rand) (*graph.Graph, error) {
	b := graph.NewBuilder(name, rng)
	b.Input("input", graph.Shape{1, o.Resolution, o.Resolution, 3}, graph.Float32)
	b.Conv("conv0", o.ch(16), 3, 2, graph.OpReLU)
	b.DWConv("dw0", 3, 1, graph.OpReLU)
	b.Conv("pw0", o.ch(32), 1, 1, graph.OpReLU)
	b.DWConv("dw1", 3, 2, graph.OpReLU)
	b.Conv("pw1", o.ch(64), 1, 1, graph.OpReLU)
	b.TransposeConv("up0", o.ch(32), 2, 2)
	b.Conv("heatmaps", 17, 1, 1, graph.OpInvalid) // 17 COCO keypoints
	b.Activation("heatmap_prob", graph.OpSigmoid)
	return b.Finish()
}

// buildEncoderDecoder is the generic image-to-image net behind style
// transfer, photo beauty and hair reconstruction deployments.
func buildEncoderDecoder(name string, o ArchOpts, rng *rand.Rand) (*graph.Graph, error) {
	b := graph.NewBuilder(name, rng)
	b.Input("input", graph.Shape{1, o.Resolution, o.Resolution, 3}, graph.Float32)
	b.Conv("enc0", o.ch(24), 3, 2, graph.OpReLU)
	b.Conv("enc1", o.ch(48), 3, 2, graph.OpReLU)
	for i := 0; i < 2; i++ {
		in := b.Current()
		b.Conv(fmt.Sprintf("res%d_a", i), o.ch(48), 3, 1, graph.OpReLU)
		b.Conv(fmt.Sprintf("res%d_b", i), o.ch(48), 3, 1, graph.OpInvalid)
		b.Add(fmt.Sprintf("res%d_add", i), in)
	}
	b.TransposeConv("dec1", o.ch(24), 2, 2)
	b.TransposeConv("dec0", o.ch(12), 2, 2)
	b.Conv("rgb", 3, 3, 1, graph.OpInvalid)
	b.Activation("out_act", graph.OpTanh)
	return b.Finish()
}

func buildEmbedLSTM(name string, o ArchOpts, rng *rand.Rand) (*graph.Graph, error) {
	b := graph.NewBuilder(name, rng)
	b.Input("tokens", graph.Shape{1, o.TimeSteps}, graph.Int32)
	b.Embedding("embed", o.Vocab, o.ch(64))
	b.LSTM("lstm0", o.ch(96))
	b.Slice("last_step", []int{0, o.TimeSteps - 1, 0}, []int{1, 1, o.ch(96)})
	b.Reshape("flat", []int{1, o.ch(96)})
	b.Dense("vocab_logits", o.Vocab, graph.OpInvalid)
	b.Softmax("next_word")
	return b.Finish()
}

func buildTextCNN(name string, o ArchOpts, rng *rand.Rand) (*graph.Graph, error) {
	b := graph.NewBuilder(name, rng)
	b.Input("tokens", graph.Shape{1, o.TimeSteps}, graph.Int32)
	b.Embedding("embed", o.Vocab, o.ch(32))
	b.Mean("mean_pool", []int{1}, false)
	b.Dense("hidden", o.ch(32), graph.OpReLU)
	b.Dense("logits", max(2, o.Classes), graph.OpInvalid)
	b.Softmax("prob")
	return b.Finish()
}

func buildSeq2Seq(name string, o ArchOpts, rng *rand.Rand) (*graph.Graph, error) {
	b := graph.NewBuilder(name, rng)
	b.Input("tokens", graph.Shape{1, o.TimeSteps}, graph.Int32)
	b.Embedding("embed", o.Vocab, o.ch(48))
	b.GRU("encoder", o.ch(64))
	b.GRU("decoder", o.ch(64))
	b.Dense("vocab_logits", o.Vocab, graph.OpInvalid)
	b.Softmax("prob")
	return b.Finish()
}

// buildAudioCNN classifies log-mel spectrogram patches, the shape of the
// ambient sound recognisers dominating the audio tasks of Table 3.
func buildAudioCNN(name string, o ArchOpts, rng *rand.Rand) (*graph.Graph, error) {
	b := graph.NewBuilder(name, rng)
	frames := maxInt(o.TimeSteps*8, 96)
	mels := 64
	b.Input("spectrogram", graph.Shape{1, frames, mels, 1}, graph.Float32)
	b.Conv("conv0", o.ch(16), 3, 2, graph.OpReLU)
	b.DWConv("dw0", 3, 1, graph.OpReLU)
	b.Conv("pw0", o.ch(32), 1, 1, graph.OpReLU)
	b.DWConv("dw1", 3, 2, graph.OpReLU)
	b.Conv("pw1", o.ch(64), 1, 1, graph.OpReLU)
	b.GlobalAvgPool("gap")
	b.Reshape("flatten", []int{1, -1})
	b.Dense("logits", max(8, o.Classes), graph.OpInvalid)
	b.Softmax("prob")
	return b.Finish()
}

func buildSpeechRNN(name string, o ArchOpts, rng *rand.Rand) (*graph.Graph, error) {
	b := graph.NewBuilder(name, rng)
	frames := maxInt(o.TimeSteps*8, 128)
	b.Input("features", graph.Shape{1, frames, 40}, graph.Float32)
	b.LSTM("lstm0", o.ch(96))
	b.LSTM("lstm1", o.ch(96))
	b.Dense("chars", 40, graph.OpInvalid)
	b.Softmax("prob")
	return b.Finish()
}

func buildKeywordCNN(name string, o ArchOpts, rng *rand.Rand) (*graph.Graph, error) {
	b := graph.NewBuilder(name, rng)
	b.Input("spectrogram", graph.Shape{1, 49, 40, 1}, graph.Float32)
	b.Conv("conv0", o.ch(16), 3, 2, graph.OpReLU)
	b.DWConv("dw0", 3, 1, graph.OpReLU)
	b.Conv("pw0", o.ch(24), 1, 1, graph.OpReLU)
	b.GlobalAvgPool("gap")
	b.Reshape("flatten", []int{1, -1})
	b.Dense("keywords", max(2, o.Classes), graph.OpInvalid)
	b.Softmax("prob")
	return b.Finish()
}

func buildSensorMLP(name string, o ArchOpts, rng *rand.Rand) (*graph.Graph, error) {
	b := graph.NewBuilder(name, rng)
	b.Input("imu", graph.Shape{1, 9}, graph.Float32)
	b.Dense("fc0", o.ch(32), graph.OpReLU)
	b.Dense("fc1", o.ch(16), graph.OpReLU)
	b.Dense("logits", max(2, o.Classes), graph.OpInvalid)
	b.Softmax("prob")
	return b.Finish()
}

func buildSensorGRU(name string, o ArchOpts, rng *rand.Rand) (*graph.Graph, error) {
	b := graph.NewBuilder(name, rng)
	b.Input("imu_seq", graph.Shape{1, maxInt(o.TimeSteps, 8), 6}, graph.Float32)
	b.GRU("gru0", o.ch(32))
	b.Mean("mean", []int{1}, false)
	b.Dense("logits", max(2, o.Classes), graph.OpInvalid)
	b.Softmax("prob")
	return b.Finish()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func maxInt(a, b int) int { return max(a, b) }
