package zoo

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"

	"github.com/gaugenn/gaugenn/internal/nn/graph"
)

// FineTune re-seeds the weights of the last k weighted layers of g in
// place, modelling transfer learning: "developers only fine-tune small
// portions of the network ... exploiting transfer learning from other
// (typically off-the-shelf) networks" (Section 4.5). Earlier layers keep
// their original bytes, so layer-level checksums still match the base
// model.
func FineTune(g *graph.Graph, rng *rand.Rand, k int) {
	if k <= 0 {
		return
	}
	retuned := 0
	for i := len(g.Layers) - 1; i >= 0 && retuned < k; i-- {
		l := &g.Layers[i]
		if len(l.Weights) == 0 {
			continue
		}
		for wi := range l.Weights {
			regenerate(&l.Weights[wi], rng)
		}
		retuned++
	}
}

func regenerate(w *graph.Weight, rng *rand.Rand) {
	switch w.DType {
	case graph.Float32:
		std := 0.05
		for off := 0; off+4 <= len(w.Data); off += 4 {
			binary.LittleEndian.PutUint32(w.Data[off:], math.Float32bits(float32(rng.NormFloat64()*std)))
		}
	default:
		rng.Read(w.Data)
	}
}

// Sparsify zeroes a fraction frac of each float32 weight tensor's elements,
// the magnitude-pruning prospect Section 6.1 quantifies (the in-the-wild
// population averages ~3.15% near-zero weights).
func Sparsify(g *graph.Graph, rng *rand.Rand, frac float64) {
	if frac <= 0 {
		return
	}
	for i := range g.Layers {
		for wi := range g.Layers[i].Weights {
			w := &g.Layers[i].Weights[wi]
			if w.DType != graph.Float32 {
				continue
			}
			for off := 0; off+4 <= len(w.Data); off += 4 {
				if rng.Float64() < frac {
					binary.LittleEndian.PutUint32(w.Data[off:], 0)
				}
			}
		}
	}
}

// WeightOnlyQuantize requantises every float32 weight tensor to int8 in
// place without touching the activation path: the model still computes in
// float (weights dequantise on load), so no dequantize layers appear. This
// is the compression-only quantisation that makes Section 6.1's int8-weight
// share exceed its dequantize-layer share.
func WeightOnlyQuantize(g *graph.Graph, scale float64) {
	if scale <= 0 {
		scale = 0.05
	}
	for i := range g.Layers {
		for wi := range g.Layers[i].Weights {
			w := &g.Layers[i].Weights[wi]
			if w.DType != graph.Float32 {
				continue
			}
			q := make([]byte, w.Shape.Elements())
			for j := int64(0); j < w.Shape.Elements(); j++ {
				bits := binary.LittleEndian.Uint32(w.Data[j*4:])
				v := float64(math.Float32frombits(bits)) / scale
				if v > 127 {
					v = 127
				}
				if v < -128 {
					v = -128
				}
				q[j] = byte(int8(v))
			}
			w.DType = graph.Int8
			w.Data = q
		}
	}
}

// HybridQuantizeA16W8 converts g in place to the hybrid scheme recent NPUs
// support (Hexagon 698, Arm Ethos): 8-bit weights with 16-bit activations —
// "these schemes enable a better compromise between faster low-precision
// compute and having enough representational power to achieve good
// accuracy. In spite of the new opportunities ... we also found no
// evidence of their adoption" (Section 6.1). The transform exists so the
// runtime can quantify the opportunity the wild is leaving unused.
func HybridQuantizeA16W8(g *graph.Graph, scale float64) error {
	if scale <= 0 {
		return fmt.Errorf("zoo: quantisation scale must be positive")
	}
	WeightOnlyQuantize(g, scale)
	rewrite := make(map[string]string, len(g.Inputs))
	var pre []graph.Layer
	for i, in := range g.Inputs {
		if in.DType != graph.Float32 {
			continue
		}
		out := fmt.Sprintf("%s_q16", in.Name)
		pre = append(pre, graph.Layer{
			Name:    fmt.Sprintf("quantize16_in%d", i),
			Op:      graph.OpQuantize,
			Inputs:  []string{in.Name},
			Outputs: []string{out},
			Attrs:   graph.Attrs{Scale: scale / 256, OutDType: graph.Int16, OutDTypeSet: true},
		})
		rewrite[in.Name] = out
	}
	for i := range g.Layers {
		for j, name := range g.Layers[i].Inputs {
			if q, ok := rewrite[name]; ok {
				g.Layers[i].Inputs[j] = q
			}
		}
	}
	g.Layers = append(pre, g.Layers...)
	for i := range g.Outputs {
		src := g.Outputs[i].Name
		out := fmt.Sprintf("%s_dq16", src)
		g.Layers = append(g.Layers, graph.Layer{
			Name:    fmt.Sprintf("dequantize16_out%d", i),
			Op:      graph.OpDequantize,
			Inputs:  []string{src},
			Outputs: []string{out},
			Attrs:   graph.Attrs{Scale: scale / 256, OutDType: graph.Float32, OutDTypeSet: true},
		})
		g.Outputs[i].Name = out
		g.Outputs[i].DType = graph.Float32
	}
	return nil
}

// QuantizeModel converts g in place to a post-training-quantised deployment:
// all float32 weights are requantised to int8 with the given scale, a
// quantize layer is inserted after each float graph input and a dequantize
// layer before each output, matching the dequantize-marker deployments
// Section 6.1 detects (10.3% of models).
func QuantizeModel(g *graph.Graph, scale float64) error {
	if scale <= 0 {
		return fmt.Errorf("zoo: quantisation scale must be positive")
	}
	WeightOnlyQuantize(g, scale)
	// Wrap inputs with quantize layers.
	rewrite := make(map[string]string, len(g.Inputs))
	var pre []graph.Layer
	for i, in := range g.Inputs {
		if in.DType != graph.Float32 {
			continue
		}
		out := fmt.Sprintf("%s_q", in.Name)
		pre = append(pre, graph.Layer{
			Name:    fmt.Sprintf("quantize_in%d", i),
			Op:      graph.OpQuantize,
			Inputs:  []string{in.Name},
			Outputs: []string{out},
			Attrs:   graph.Attrs{Scale: scale, OutDType: graph.Int8, OutDTypeSet: true},
		})
		rewrite[in.Name] = out
	}
	for i := range g.Layers {
		for j, name := range g.Layers[i].Inputs {
			if q, ok := rewrite[name]; ok {
				g.Layers[i].Inputs[j] = q
			}
		}
	}
	g.Layers = append(pre, g.Layers...)
	// Append dequantize layers producing the declared outputs.
	for i := range g.Outputs {
		src := g.Outputs[i].Name
		out := fmt.Sprintf("%s_dq", src)
		g.Layers = append(g.Layers, graph.Layer{
			Name:    fmt.Sprintf("dequantize_out%d", i),
			Op:      graph.OpDequantize,
			Inputs:  []string{src},
			Outputs: []string{out},
			Attrs:   graph.Attrs{Scale: scale, OutDType: graph.Float32, OutDTypeSet: true},
		})
		g.Outputs[i].Name = out
		g.Outputs[i].DType = graph.Float32
	}
	return nil
}
