// Package zoo generates the population of DNN models gaugeNN finds in the
// wild: the architecture families of Section 4.5 (MobileNet variants, FSSD,
// BlazeFace, CRNN text recognisers, LSTM autocompletion, audio CNNs, sensor
// networks), parameterised and seeded so identical specs reproduce
// byte-identical models. The catalogue mirrors the task mix of Table 3 and
// the FLOPs/parameter spread of Figure 7.
package zoo

import "github.com/gaugenn/gaugenn/internal/nn/graph"

// Task is the use-case a model serves, the classification target of the
// paper's three-researcher majority vote (Section 4.4, Table 3).
type Task uint8

// Tasks of Table 3 plus the extra vision tasks Figure 7 reports (landmark
// detection, style transfer, face recognition, hair reconstruction), which
// Table 3 folds into its "other" row.
const (
	TaskUnknown Task = iota
	// Vision.
	TaskObjectDetection
	TaskFaceDetection
	TaskContourDetection
	TaskTextRecognition
	TaskAugmentedReality
	TaskSemanticSegmentation
	TaskObjectRecognition
	TaskPoseEstimation
	TaskPhotoBeauty
	TaskImageClassification
	TaskNudityDetection
	TaskLandmarkDetection
	TaskStyleTransfer
	TaskFaceRecognition
	TaskHairReconstruction
	TaskOtherVision
	// NLP.
	TaskAutoComplete
	TaskSentimentPrediction
	TaskContentFilter
	TaskTextClassification
	TaskTranslation
	// Audio.
	TaskSoundRecognition
	TaskSpeechRecognition
	TaskKeywordDetection
	// Sensor.
	TaskMovementTracking
	TaskCrashDetection
	numTasks
)

var taskNames = [...]string{
	TaskUnknown:              "unknown",
	TaskObjectDetection:      "object detection",
	TaskFaceDetection:        "face detection",
	TaskContourDetection:     "contour detection",
	TaskTextRecognition:      "text recognition",
	TaskAugmentedReality:     "augmented reality",
	TaskSemanticSegmentation: "semantic segmentation",
	TaskObjectRecognition:    "object recognition",
	TaskPoseEstimation:       "pose estimation",
	TaskPhotoBeauty:          "photo beauty",
	TaskImageClassification:  "image classification",
	TaskNudityDetection:      "nudity detection",
	TaskLandmarkDetection:    "landmark detection",
	TaskStyleTransfer:        "style transfer",
	TaskFaceRecognition:      "face recognition",
	TaskHairReconstruction:   "hair reconstruction",
	TaskOtherVision:          "other",
	TaskAutoComplete:         "auto-complete",
	TaskSentimentPrediction:  "sentiment prediction",
	TaskContentFilter:        "content filter",
	TaskTextClassification:   "text classification",
	TaskTranslation:          "translation",
	TaskSoundRecognition:     "sound recognition",
	TaskSpeechRecognition:    "speech recognition",
	TaskKeywordDetection:     "keyword detection",
	TaskMovementTracking:     "movement tracking",
	TaskCrashDetection:       "crash detection",
}

// String returns the Table 3 display name of the task.
func (t Task) String() string {
	if int(t) < len(taskNames) {
		return taskNames[t]
	}
	return "unknown"
}

// Valid reports whether t is a known, non-unknown task.
func (t Task) Valid() bool { return t > TaskUnknown && t < numTasks }

// TaskFromCode decodes a persisted numeric task code; out-of-range codes
// (a record written by a future enum layout) fold to TaskUnknown.
func TaskFromCode(code uint8) Task {
	if t := Task(code); t < numTasks {
		return t
	}
	return TaskUnknown
}

// Modality returns the input modality the task operates on.
func (t Task) Modality() graph.Modality {
	switch t {
	case TaskAutoComplete, TaskSentimentPrediction, TaskContentFilter,
		TaskTextClassification, TaskTranslation:
		return graph.ModalityText
	case TaskSoundRecognition, TaskSpeechRecognition, TaskKeywordDetection:
		return graph.ModalityAudio
	case TaskMovementTracking, TaskCrashDetection:
		return graph.ModalitySensor
	case TaskUnknown:
		return graph.ModalityUnknown
	default:
		return graph.ModalityImage
	}
}

// TableRow maps the task onto its Table 3 row: the Figure 7-only vision
// tasks report under vision/"other".
func (t Task) TableRow() Task {
	switch t {
	case TaskLandmarkDetection, TaskStyleTransfer, TaskFaceRecognition, TaskHairReconstruction:
		return TaskOtherVision
	default:
		return t
	}
}

// AllTasks lists every concrete task in declaration order.
func AllTasks() []Task {
	out := make([]Task, 0, int(numTasks)-1)
	for t := Task(1); t < numTasks; t++ {
		out = append(out, t)
	}
	return out
}

// nameHints are the filename fragments the majority-vote classifier keys on
// (Section 4.4: ~67% of models carry a hinting name such as
// "hair_segmentation_mobilenet.tflite").
var nameHints = map[Task][]string{
	TaskObjectDetection:      {"object_detection", "ssd", "fssd", "detector"},
	TaskFaceDetection:        {"face_detection", "blazeface", "face_detector"},
	TaskContourDetection:     {"contour", "card_contour", "edge_contour"},
	TaskTextRecognition:      {"ocr", "text_recognition", "paycards", "card_recognizer"},
	TaskAugmentedReality:     {"ar_tracking", "augmented", "plane_tracker"},
	TaskSemanticSegmentation: {"segmentation", "segm", "portrait_seg"},
	TaskObjectRecognition:    {"object_recognition", "recognizer", "wine_recognition"},
	TaskPoseEstimation:       {"pose", "posenet", "skeleton"},
	TaskPhotoBeauty:          {"beauty", "beautify", "skin_smooth"},
	TaskImageClassification:  {"classifier", "mobilenet_v1", "mobilenet_v2", "imagenet"},
	TaskNudityDetection:      {"nsfw", "nudity"},
	TaskLandmarkDetection:    {"landmark", "face_mesh", "keypoints"},
	TaskStyleTransfer:        {"style_transfer", "stylize", "cartoon"},
	TaskFaceRecognition:      {"face_recognition", "facenet", "face_embedding"},
	TaskHairReconstruction:   {"hair_reconstruction", "hair_segmentation"},
	TaskOtherVision:          {"vision_misc", "filter_net"},
	TaskAutoComplete:         {"autocomplete", "next_word", "keyboard_lm"},
	TaskSentimentPrediction:  {"sentiment"},
	TaskContentFilter:        {"content_filter", "toxicity"},
	TaskTextClassification:   {"text_classification", "intent"},
	TaskTranslation:          {"translate", "nmt"},
	TaskSoundRecognition:     {"sound_recognition", "audio_event", "yamnet_like"},
	TaskSpeechRecognition:    {"speech_recognition", "asr"},
	TaskKeywordDetection:     {"keyword", "hotword", "wake_word"},
	TaskMovementTracking:     {"movement", "horse_tracker", "activity"},
	TaskCrashDetection:       {"crash_detection", "collision"},
}

// NameHints returns the filename fragments associated with a task.
func NameHints(t Task) []string { return nameHints[t] }
