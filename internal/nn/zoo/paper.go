package zoo

// PaperTaskCounts is the Table 3 task mix of the 2021 snapshot: the number
// of model *instances* (duplicates included) gaugeNN classified per task.
// The Figure 7-only tasks (landmark detection, style transfer, face
// recognition, hair reconstruction) carve up the vision "other" row (26
// models) so the population also covers Figure 7's task axis.
var PaperTaskCounts = map[Task]int{
	TaskObjectDetection:      788,
	TaskFaceDetection:        197,
	TaskContourDetection:     192,
	TaskTextRecognition:      185,
	TaskAugmentedReality:     51,
	TaskSemanticSegmentation: 14,
	TaskObjectRecognition:    14,
	TaskPoseEstimation:       8,
	TaskPhotoBeauty:          8,
	TaskImageClassification:  7,
	TaskNudityDetection:      5,
	TaskLandmarkDetection:    8,
	TaskStyleTransfer:        6,
	TaskFaceRecognition:      6,
	TaskHairReconstruction:   3,
	TaskOtherVision:          3,

	TaskAutoComplete:        9,
	TaskSentimentPrediction: 4,
	TaskContentFilter:       2,
	TaskTextClassification:  1,
	TaskTranslation:         1,

	TaskSoundRecognition:  12,
	TaskSpeechRecognition: 2,
	TaskKeywordDetection:  1,

	TaskMovementTracking: 3,
	TaskCrashDetection:   1,
}

// PaperUnidentified is the count of 2021-snapshot models the three-vote
// classification could not identify (1666 total − 1531 identified).
const PaperUnidentified = 135

// PaperTotalModels2021 and PaperUniqueModels2021 are Table 2's 2021 totals.
const (
	PaperTotalModels2021  = 1666
	PaperUniqueModels2021 = 318
	PaperTotalModels2020  = 821
	PaperUniqueModels2020 = 129
)

// IdentifiedTotal sums PaperTaskCounts.
func IdentifiedTotal() int {
	n := 0
	for _, c := range PaperTaskCounts {
		n += c
	}
	return n
}
