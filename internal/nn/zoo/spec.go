package zoo

import (
	"crypto/md5"
	"encoding/hex"
	"fmt"
	"math/rand"

	"github.com/gaugenn/gaugenn/internal/nn/graph"
)

// Spec fully determines one unique model in the wild population: the same
// Spec always builds a byte-identical graph, which is what makes checksum
// dedup (Section 4.5) meaningful on generated data.
type Spec struct {
	// Task the model serves; drives architecture choice and naming.
	Task Task
	// Arch family; if ArchUnknown, DefaultArchFor(Task) is used.
	Arch Arch
	// Opts scales the architecture.
	Opts ArchOpts
	// Seed drives weight generation (and fine-tuning when BaseSeed != 0).
	Seed int64
	// Hinted controls whether the file stem leaks the task (≈67% of models
	// in the wild carry a hinting name per Section 4.4).
	Hinted bool
	// Quantized produces an int8-weight model wrapped in quantize /
	// dequantize layers (post-training quantisation, Section 6.1).
	Quantized bool
	// WeightQuantized converts weights to int8 without the quantize /
	// dequantize activation wrapping — the weight-only compression variant
	// that explains why int8-weight adoption (20.27%) exceeds
	// dequantize-layer adoption (10.3%) in Section 6.1.
	WeightQuantized bool
	// SparsityFrac zeroes this fraction of float32 weights after building.
	SparsityFrac float64
	// BaseSeed, when non-zero, makes this model a fine-tuned derivative of
	// the Spec with Seed=BaseSeed: the last FineTuneLayers weighted layers
	// are re-trained (re-seeded from Seed).
	BaseSeed       int64
	FineTuneLayers int
	// Ambiguous strips classification signals (opaque name, generic head)
	// modelling the ~8% of models gaugeNN could not identify.
	Ambiguous bool
}

// DefaultArchFor returns the most common architecture family serving a task
// in the wild (Section 4.5: FSSD for detection, BlazeFace for faces,
// MobileNet variants spanning tasks).
func DefaultArchFor(t Task) Arch {
	switch t {
	case TaskObjectDetection:
		return ArchFSSD
	case TaskFaceDetection:
		return ArchBlazeFace
	case TaskContourDetection, TaskLandmarkDetection:
		return ArchLandmarkNet
	case TaskTextRecognition:
		return ArchCRNN
	case TaskAugmentedReality:
		return ArchMobileNetV1
	case TaskSemanticSegmentation, TaskHairReconstruction:
		return ArchUNet
	case TaskObjectRecognition, TaskImageClassification, TaskNudityDetection,
		TaskFaceRecognition, TaskOtherVision:
		return ArchMobileNetV2
	case TaskPoseEstimation:
		return ArchPoseNet
	case TaskPhotoBeauty, TaskStyleTransfer:
		return ArchEncoderDecoder
	case TaskAutoComplete:
		return ArchEmbedLSTM
	case TaskSentimentPrediction, TaskContentFilter, TaskTextClassification:
		return ArchTextCNN
	case TaskTranslation:
		return ArchSeq2Seq
	case TaskSoundRecognition:
		return ArchAudioCNN
	case TaskSpeechRecognition:
		return ArchSpeechRNN
	case TaskKeywordDetection:
		return ArchKeywordCNN
	case TaskMovementTracking:
		return ArchSensorGRU
	case TaskCrashDetection:
		return ArchSensorMLP
	default:
		return ArchMobileNetV1
	}
}

// DefaultOptsFor samples architecture scaling typical of the task, so that
// the generated population reproduces the Figure 7 cost ordering (image
// classification / hair reconstruction / segmentation heaviest in vision,
// auto-complete heaviest in NLP, sound recognition heaviest in audio).
func DefaultOptsFor(t Task, rng *rand.Rand) ArchOpts {
	pick := func(vals ...int) int { return vals[rng.Intn(len(vals))] }
	switch t {
	case TaskImageClassification, TaskObjectRecognition:
		return ArchOpts{Width: 0.75 + rng.Float64()*0.75, Resolution: pick(160, 192, 224), Classes: pick(100, 200, 400)}
	case TaskHairReconstruction:
		return ArchOpts{Width: 1 + rng.Float64(), Resolution: pick(192, 224)}
	case TaskSemanticSegmentation:
		return ArchOpts{Width: 0.5 + rng.Float64()*0.5, Resolution: pick(96, 128, 160)}
	case TaskPhotoBeauty, TaskStyleTransfer:
		return ArchOpts{Width: 0.75 + rng.Float64()*0.5, Resolution: pick(128, 192)}
	case TaskObjectDetection:
		return ArchOpts{Width: 0.5 + rng.Float64()*0.5, Resolution: pick(128, 160, 192), Classes: pick(10, 20, 40)}
	case TaskFaceDetection:
		return ArchOpts{Width: 0.5 + rng.Float64()*0.5, Resolution: 128}
	case TaskContourDetection, TaskLandmarkDetection:
		return ArchOpts{Width: 0.5 + rng.Float64()*0.5, Resolution: pick(96, 128), Classes: pick(16, 34, 68)}
	case TaskTextRecognition:
		return ArchOpts{Width: 0.5 + rng.Float64()*0.5, Resolution: pick(128, 192, 256)}
	case TaskAugmentedReality:
		return ArchOpts{Width: 0.25 + rng.Float64()*0.5, Resolution: pick(96, 128), Classes: 8}
	case TaskPoseEstimation:
		return ArchOpts{Width: 0.5 + rng.Float64()*0.5, Resolution: pick(128, 160)}
	case TaskNudityDetection:
		return ArchOpts{Width: 0.25 + rng.Float64()*0.25, Resolution: 96, Classes: 2}
	case TaskFaceRecognition:
		return ArchOpts{Width: 0.5 + rng.Float64()*0.5, Resolution: 112, Classes: 128}
	case TaskAutoComplete:
		return ArchOpts{Width: 1 + rng.Float64(), Vocab: pick(8000, 12000, 16000), TimeSteps: pick(8, 12, 16)}
	case TaskSentimentPrediction, TaskContentFilter, TaskTextClassification:
		return ArchOpts{Width: 0.5 + rng.Float64()*0.5, Vocab: pick(2000, 4000), TimeSteps: 32, Classes: pick(2, 3, 5)}
	case TaskTranslation:
		return ArchOpts{Width: 0.75 + rng.Float64()*0.5, Vocab: pick(6000, 8000), TimeSteps: 24}
	case TaskSoundRecognition:
		return ArchOpts{Width: 1 + rng.Float64(), TimeSteps: pick(16, 24, 32), Classes: pick(50, 100, 500)}
	case TaskSpeechRecognition:
		return ArchOpts{Width: 0.75 + rng.Float64()*0.5, TimeSteps: pick(16, 24)}
	case TaskKeywordDetection:
		return ArchOpts{Width: 0.25 + rng.Float64()*0.25, Classes: pick(2, 8, 12)}
	case TaskMovementTracking, TaskCrashDetection:
		return ArchOpts{Width: 0.5 + rng.Float64()*0.5, TimeSteps: pick(16, 32), Classes: pick(2, 4, 6)}
	default:
		return ArchOpts{Width: 0.25 + rng.Float64()*0.5, Resolution: pick(96, 128), Classes: pick(2, 10)}
	}
}

// FileStem returns the deterministic file stem (without extension) the model
// ships under. Hinted names leak the task and architecture (e.g.
// "hair_segmentation_mobilenet"); others are opaque ("model_ab12cd34").
func (s Spec) FileStem() string {
	arch := s.Arch
	if arch == ArchUnknown {
		arch = DefaultArchFor(s.Task)
	}
	if s.Hinted && !s.Ambiguous {
		hints := NameHints(s.Task)
		if len(hints) > 0 {
			hint := hints[int(uint64(s.Seed)%uint64(len(hints)))]
			return fmt.Sprintf("%s_%s", hint, arch)
		}
	}
	sum := md5.Sum([]byte(fmt.Sprintf("%d/%d/%d", s.Task, arch, s.Seed)))
	return "model_" + hex.EncodeToString(sum[:4])
}

// Build constructs the model graph for the spec.
func Build(s Spec) (*graph.Graph, error) {
	arch := s.Arch
	if arch == ArchUnknown {
		arch = DefaultArchFor(s.Task)
	}
	if s.Ambiguous {
		// Ambiguous models use a generic trunk whose head matches no task
		// signature; built on MobileNetV1 with an unusual class count.
		arch = ArchMobileNetV1
	}
	seed := s.Seed
	if s.BaseSeed != 0 {
		seed = s.BaseSeed
	}
	rng := rand.New(rand.NewSource(seed))
	opts := s.Opts
	if s.Ambiguous && opts.Classes == 0 {
		opts.Classes = 37 // deliberately untypical head size
	}
	g, err := BuildArch(arch, s.FileStem(), opts, rng)
	if err != nil {
		return nil, err
	}
	if s.BaseSeed != 0 {
		k := s.FineTuneLayers
		if k <= 0 {
			k = 2
		}
		FineTune(g, rand.New(rand.NewSource(s.Seed)), k)
	}
	if s.SparsityFrac > 0 {
		Sparsify(g, rand.New(rand.NewSource(seed+1)), s.SparsityFrac)
	}
	// The 0.01 quantisation step keeps the near-zero (exact-zero int8)
	// population small, so quantised models do not distort the Section 6.1
	// sparsity measurement.
	if s.Quantized {
		if err := QuantizeModel(g, 0.01); err != nil {
			return nil, err
		}
	} else if s.WeightQuantized {
		WeightOnlyQuantize(g, 0.01)
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("zoo: built invalid graph: %w", err)
	}
	return g, nil
}
