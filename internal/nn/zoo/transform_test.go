package zoo

import (
	"math/rand"
	"testing"

	"github.com/gaugenn/gaugenn/internal/nn/graph"
)

func baseModel(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := Build(Spec{Task: TaskObjectDetection, Seed: 404})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestHybridQuantizeA16W8(t *testing.T) {
	g := baseModel(t)
	params := g.ParamCount()
	if err := HybridQuantizeA16W8(g, 0.02); err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("hybrid model invalid: %v", err)
	}
	if g.ParamCount() != params {
		t.Fatal("quantisation must preserve parameter count")
	}
	ws := graph.CollectWeightStats(g)
	if ws.Int8WeightFraction() != 1 {
		t.Fatalf("int8 weight fraction = %v", ws.Int8WeightFraction())
	}
	if !ws.Int16Activations {
		t.Fatal("hybrid model must carry int16 activations")
	}
	if ws.Int8Activations {
		t.Fatal("hybrid model must not carry int8 activations")
	}
	// The model still profiles, and its activation bytes land between the
	// int8 and fp32 variants.
	p, err := graph.ProfileGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	fp32 := baseModel(t)
	pf, _ := graph.ProfileGraph(fp32)
	int8 := baseModel(t)
	if err := QuantizeModel(int8, 0.02); err != nil {
		t.Fatal(err)
	}
	pi, _ := graph.ProfileGraph(int8)
	if !(p.ActivationBytes < pf.ActivationBytes && p.ActivationBytes > pi.ActivationBytes) {
		t.Fatalf("A16W8 activation bytes %d should sit between int8 %d and fp32 %d",
			p.ActivationBytes, pi.ActivationBytes, pf.ActivationBytes)
	}
}

func TestHybridQuantizeRejectsBadScale(t *testing.T) {
	if err := HybridQuantizeA16W8(baseModel(t), 0); err == nil {
		t.Fatal("zero scale must fail")
	}
}

func TestFineTunePreservesTopology(t *testing.T) {
	g := baseModel(t)
	before := len(g.Layers)
	checks := graph.LayerChecksums(g)
	FineTune(g, rand.New(rand.NewSource(7)), 3)
	if len(g.Layers) != before {
		t.Fatal("fine-tuning must not change topology")
	}
	after := graph.LayerChecksums(g)
	changed := 0
	for i := range checks {
		if checks[i] != after[i] {
			changed++
		}
	}
	if changed != 3 {
		t.Fatalf("fine-tune changed %d layers, want 3", changed)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFineTuneZeroLayersNoop(t *testing.T) {
	g := baseModel(t)
	sum := graph.ModelChecksum(g)
	FineTune(g, rand.New(rand.NewSource(1)), 0)
	if graph.ModelChecksum(g) != sum {
		t.Fatal("k=0 must be a no-op")
	}
}

func TestSparsifySkipsNonFloat(t *testing.T) {
	g := baseModel(t)
	WeightOnlyQuantize(g, 0.01)
	before := graph.ModelChecksum(g)
	Sparsify(g, rand.New(rand.NewSource(2)), 0.9)
	if graph.ModelChecksum(g) != before {
		t.Fatal("sparsify must not touch int8 weights")
	}
}

func TestQuantizeModelPreservesIO(t *testing.T) {
	g := baseModel(t)
	inName := g.Inputs[0].Name
	if err := QuantizeModel(g, 0.02); err != nil {
		t.Fatal(err)
	}
	if g.Inputs[0].Name != inName {
		t.Fatal("graph input names must survive quantisation")
	}
	if g.Outputs[0].DType != graph.Float32 {
		t.Fatal("quantised model must still emit float32 outputs")
	}
}
