package zoo

import (
	"math/rand"
	"testing"

	"github.com/gaugenn/gaugenn/internal/nn/graph"
)

func TestAllArchitecturesBuildAndValidate(t *testing.T) {
	for a := Arch(1); a < numArchs; a++ {
		a := a
		t.Run(a.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(a)))
			g, err := BuildArch(a, "m_"+a.String(), ArchOpts{}, rng)
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			if err := g.Validate(); err != nil {
				t.Fatalf("validate: %v", err)
			}
			p, err := graph.ProfileGraph(g)
			if err != nil {
				t.Fatalf("profile: %v", err)
			}
			if p.FLOPs <= 0 {
				t.Fatalf("FLOPs = %d", p.FLOPs)
			}
			if p.Params <= 0 {
				t.Fatalf("Params = %d", p.Params)
			}
		})
	}
}

func TestBuildArchUnknownFails(t *testing.T) {
	if _, err := BuildArch(ArchUnknown, "x", ArchOpts{}, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("unknown arch must fail")
	}
}

func TestSpecDeterminism(t *testing.T) {
	s := Spec{Task: TaskFaceDetection, Seed: 99, Hinted: true}
	g1, err := Build(s)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := Build(s)
	if err != nil {
		t.Fatal(err)
	}
	if graph.ModelChecksum(g1) != graph.ModelChecksum(g2) {
		t.Fatal("same spec must build identical models")
	}
	s2 := s
	s2.Seed = 100
	g3, err := Build(s2)
	if err != nil {
		t.Fatal(err)
	}
	if graph.ModelChecksum(g1) == graph.ModelChecksum(g3) {
		t.Fatal("different seeds must differ")
	}
}

func TestSpecFileStem(t *testing.T) {
	hinted := Spec{Task: TaskHairReconstruction, Seed: 1, Hinted: true}
	stem := hinted.FileStem()
	if stem == "" {
		t.Fatal("empty stem")
	}
	found := false
	for _, h := range NameHints(TaskHairReconstruction) {
		if len(stem) >= len(h) && stem[:len(h)] == h {
			found = true
		}
	}
	if !found {
		t.Fatalf("hinted stem %q lacks task hint", stem)
	}
	opaque := Spec{Task: TaskHairReconstruction, Seed: 1}
	if s := opaque.FileStem(); len(s) < 6 || s[:6] != "model_" {
		t.Fatalf("opaque stem %q should be anonymised", s)
	}
}

func TestTaskModality(t *testing.T) {
	cases := map[Task]graph.Modality{
		TaskObjectDetection:  graph.ModalityImage,
		TaskAutoComplete:     graph.ModalityText,
		TaskSoundRecognition: graph.ModalityAudio,
		TaskCrashDetection:   graph.ModalitySensor,
	}
	for task, want := range cases {
		if task.Modality() != want {
			t.Errorf("%s modality = %s, want %s", task, task.Modality(), want)
		}
	}
}

func TestBuiltModelModalityMatchesTask(t *testing.T) {
	for _, task := range AllTasks() {
		rng := rand.New(rand.NewSource(int64(task) * 7))
		s := Spec{Task: task, Seed: int64(task) + 1, Opts: DefaultOptsFor(task, rng)}
		g, err := Build(s)
		if err != nil {
			t.Fatalf("%s: %v", task, err)
		}
		if got := g.InferModality(); got != task.Modality() {
			t.Errorf("%s: built model modality %s, want %s (input %v)",
				task, got, task.Modality(), g.Inputs[0].Shape)
		}
	}
}

func TestTableRowFoldsFigure7Tasks(t *testing.T) {
	for _, task := range []Task{TaskLandmarkDetection, TaskStyleTransfer, TaskFaceRecognition, TaskHairReconstruction} {
		if task.TableRow() != TaskOtherVision {
			t.Errorf("%s should fold into other", task)
		}
	}
	if TaskObjectDetection.TableRow() != TaskObjectDetection {
		t.Fatal("regular tasks map to themselves")
	}
}

func TestFineTuneSharesEarlyLayers(t *testing.T) {
	base := Spec{Task: TaskImageClassification, Seed: 10}
	bg, err := Build(base)
	if err != nil {
		t.Fatal(err)
	}
	ft := Spec{Task: TaskImageClassification, Seed: 11, BaseSeed: 10, FineTuneLayers: 2}
	fg, err := Build(ft)
	if err != nil {
		t.Fatal(err)
	}
	if graph.ModelChecksum(bg) == graph.ModelChecksum(fg) {
		t.Fatal("fine-tuned model must differ from base")
	}
	share := graph.SharedLayerFraction(fg, bg)
	if share < 0.2 {
		t.Fatalf("fine-tuned model shares %.2f of layers, want >= 0.2 (paper's relatedness bar)", share)
	}
	if d := graph.DifferingLayers(fg, bg); d > 3 {
		t.Fatalf("fine-tuned model differs in %d layers, want <= 3", d)
	}
}

func TestQuantizedSpec(t *testing.T) {
	s := Spec{Task: TaskObjectDetection, Seed: 5, Quantized: true}
	g, err := Build(s)
	if err != nil {
		t.Fatal(err)
	}
	ws := graph.CollectWeightStats(g)
	if ws.Int8WeightFraction() != 1 {
		t.Fatalf("int8 weight fraction = %v, want 1", ws.Int8WeightFraction())
	}
	if ws.DequantizeOps == 0 {
		t.Fatal("quantised model must carry dequantize layers")
	}
	if !ws.Int8Activations {
		t.Fatal("quantised model must carry int8 activations")
	}
	if _, err := graph.ProfileGraph(g); err != nil {
		t.Fatalf("quantised model should still profile: %v", err)
	}
}

func TestSparsifiedSpec(t *testing.T) {
	s := Spec{Task: TaskImageClassification, Seed: 20, SparsityFrac: 0.3}
	g, err := Build(s)
	if err != nil {
		t.Fatal(err)
	}
	ws := graph.CollectWeightStats(g)
	if sf := ws.SparsityFraction(); sf < 0.25 || sf > 0.35 {
		t.Fatalf("sparsity = %v, want ~0.3", sf)
	}
}

func TestQuantizeModelRejectsBadScale(t *testing.T) {
	g, err := Build(Spec{Task: TaskNudityDetection, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := QuantizeModel(g, 0); err == nil {
		t.Fatal("zero scale must fail")
	}
}

func TestAmbiguousSpecHasNoHints(t *testing.T) {
	s := Spec{Task: TaskObjectDetection, Seed: 9, Hinted: true, Ambiguous: true}
	stem := s.FileStem()
	if len(stem) < 6 || stem[:6] != "model_" {
		t.Fatalf("ambiguous model should get opaque name, got %q", stem)
	}
	g, err := Build(s)
	if err != nil {
		t.Fatal(err)
	}
	// Ambiguous models must not look like detectors structurally.
	if g.Outputs[0].Shape.Elements() < 2 {
		t.Fatal("ambiguous model should still be a classifier-shaped net")
	}
}

func TestFigure7CostOrdering(t *testing.T) {
	// Medians over a few seeds: classification must out-weigh face detection
	// (Fig 7: classification is among the heaviest, face detection among the
	// lightest); auto-complete must dominate sentiment in NLP.
	med := func(task Task) int64 {
		var flops []int64
		for seed := int64(0); seed < 3; seed++ {
			rng := rand.New(rand.NewSource(seed*31 + int64(task)))
			g, err := Build(Spec{Task: task, Seed: seed + 1, Opts: DefaultOptsFor(task, rng)})
			if err != nil {
				t.Fatalf("%s: %v", task, err)
			}
			p, err := graph.ProfileGraph(g)
			if err != nil {
				t.Fatal(err)
			}
			flops = append(flops, p.FLOPs)
		}
		return flops[1]
	}
	if med(TaskImageClassification) <= med(TaskFaceDetection) {
		t.Error("classification should cost more FLOPs than face detection")
	}
	if med(TaskAutoComplete) <= med(TaskSentimentPrediction) {
		t.Error("auto-complete should cost more FLOPs than sentiment prediction")
	}
	if med(TaskSoundRecognition) <= med(TaskKeywordDetection) {
		t.Error("sound recognition should cost more FLOPs than keyword detection")
	}
}

func TestPaperCountsConsistent(t *testing.T) {
	if got := IdentifiedTotal(); got != 1531 {
		t.Fatalf("identified total = %d, want 1531", got)
	}
	if IdentifiedTotal()+PaperUnidentified != PaperTotalModels2021 {
		t.Fatal("identified + unidentified must equal 1666")
	}
	// Vision instance share must exceed 89% of identified vision+rest per
	// the paper ("> 89% of all models" are vision among identified).
	vision := 0
	for task, c := range PaperTaskCounts {
		if task.Modality() == graph.ModalityImage {
			vision += c
		}
	}
	if frac := float64(vision) / 1531; frac < 0.89 {
		t.Fatalf("vision fraction = %v, want >= 0.89", frac)
	}
}

func TestArchAndTaskStrings(t *testing.T) {
	if ArchFSSD.String() != "fssd" || Arch(200).String() != "unknown" {
		t.Fatal("arch names")
	}
	if TaskAutoComplete.String() != "auto-complete" || Task(200).String() != "unknown" {
		t.Fatal("task names")
	}
	if !TaskObjectDetection.Valid() || TaskUnknown.Valid() {
		t.Fatal("task validity")
	}
	if len(AllTasks()) != int(numTasks)-1 {
		t.Fatal("AllTasks size")
	}
}
