package formats

import (
	"bytes"
	"fmt"

	"github.com/gaugenn/gaugenn/internal/nn/graph"
)

// tlvFormat factors the three remaining binary formats (TensorFlow frozen
// graphs, ONNX models and SNPE DLC containers): each wraps the common IR
// body in its own magic-framed TLV container with a format-specific
// producer record, which is what their real counterparts' sniffers key on.
type tlvFormat struct {
	name     string
	exts     []string
	magic    []byte
	producer string
	version  uint32
}

// Name implements Format.
func (f tlvFormat) Name() string { return f.name }

// Extensions implements Format.
func (f tlvFormat) Extensions() []string { return append([]string(nil), f.exts...) }

// Sniff implements Format.
func (f tlvFormat) Sniff(data []byte) bool { return bytes.HasPrefix(data, f.magic) }

// Encode implements Format.
func (f tlvFormat) Encode(g *graph.Graph, stem string) (FileSet, error) {
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("%s: refusing to encode invalid graph: %w", f.name, err)
	}
	var w bwriter
	w.buf = append(w.buf, f.magic...)
	w.u32(f.version)
	w.str(f.producer)
	var body bwriter
	writeGraphBody(&body, g)
	w.bytes(body.buf)
	return FileSet{stem + f.exts[0]: w.buf}, nil
}

// Decode implements Format.
func (f tlvFormat) Decode(files FileSet) (*graph.Graph, error) {
	data, err := singleFile(files, f)
	if err != nil {
		return nil, err
	}
	if !bytes.HasPrefix(data, f.magic) {
		return nil, fmt.Errorf("%w: %s magic missing", ErrNotValid, f.name)
	}
	r := &breader{buf: data, off: len(f.magic)}
	if v := r.u32(); v != f.version {
		return nil, fmt.Errorf("%w: unsupported %s version %d", ErrNotValid, f.name, v)
	}
	if p := r.str(); p != f.producer {
		return nil, fmt.Errorf("%w: unexpected %s producer %q", ErrNotValid, f.name, p)
	}
	body := r.bytesv()
	if r.err != nil {
		return nil, r.err
	}
	g, err := readGraphBody(&breader{buf: body})
	if err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNotValid, err)
	}
	return g, nil
}

// TF is the full TensorFlow frozen-graph format — a shrinking population in
// the wild (0.56× across the paper's snapshots) as TFLite displaces it.
var TF Format = tlvFormat{
	name:     "tf",
	exts:     []string{".pb", ".pbtxt", ".meta"},
	magic:    []byte{0x08, 0x01, 0x12, 'T', 'F', 'G', 'D'},
	producer: "tensorflow",
	version:  1,
}

// ONNX is the interchange format several frameworks export to.
var ONNX Format = tlvFormat{
	name:     "onnx",
	exts:     []string{".onnx", ".pb"},
	magic:    []byte("ONNX"),
	producer: "onnx-exporter",
	version:  7,
}

// SNPE is Qualcomm's Snapdragon Neural Processing Engine container (.dlc):
// the vendor-specific deployment route of Section 6.3, found in 3 apps —
// which ship it blindly to all devices alongside a TFLite fallback.
var SNPE Format = tlvFormat{
	name:     "snpe",
	exts:     []string{".dlc"},
	magic:    []byte("DLC1"),
	producer: "snpe-dlc-converter",
	version:  2,
}

func init() {
	Register(TF)
	Register(ONNX)
	Register(SNPE)
}
