package formats

import (
	"bufio"
	"bytes"
	"sync"
)

// scanBufSize is the line-buffer ceiling the text-format parsers (caffe
// prototxt, ncnn param) accept — large models emit long layer lines.
const scanBufSize = 1024 * 1024

// scanBufPool recycles the 1 MB bufio.Scanner buffers the text decoders
// need. Before pooling, every caffe/ncnn decode allocated a fresh megabyte
// of scratch, which dominated the extraction pipeline's transient
// allocations for those formats.
var scanBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, scanBufSize)
		return &b
	},
}

// newLineScanner returns a pooled-buffer line scanner over data plus the
// release function that must be called (once, after scanning finishes)
// to return the scratch buffer to the pool.
func newLineScanner(data []byte) (*bufio.Scanner, func()) {
	buf := scanBufPool.Get().(*[]byte)
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(*buf, scanBufSize)
	return sc, func() { scanBufPool.Put(buf) }
}
