package formats

import (
	"encoding/binary"
	"fmt"
	"math"

	"github.com/gaugenn/gaugenn/internal/nn/graph"
)

// bwriter accumulates little-endian length-prefixed records; the binary
// formats share it for their payload sections.
type bwriter struct {
	buf []byte
}

func (w *bwriter) u8(v uint8) { w.buf = append(w.buf, v) }

func (w *bwriter) bool(v bool) {
	if v {
		w.u8(1)
	} else {
		w.u8(0)
	}
}

func (w *bwriter) u32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }
func (w *bwriter) i64(v int64)  { w.buf = binary.LittleEndian.AppendUint64(w.buf, uint64(v)) }
func (w *bwriter) f64(v float64) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, math.Float64bits(v))
}
func (w *bwriter) str(s string) { w.u32(uint32(len(s))); w.buf = append(w.buf, s...) }
func (w *bwriter) bytes(b []byte) {
	w.u32(uint32(len(b)))
	w.buf = append(w.buf, b...)
}
func (w *bwriter) ints(v []int) {
	w.u32(uint32(len(v)))
	for _, x := range v {
		w.i64(int64(x))
	}
}

// breader is the matching decoder; every method reports malformed input via
// the sticky err field, and readers must check err before trusting values.
type breader struct {
	buf []byte
	off int
	err error
}

func (r *breader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: truncated %s at offset %d", ErrNotValid, what, r.off)
	}
}

func (r *breader) u8() uint8 {
	if r.err != nil || r.off+1 > len(r.buf) {
		r.fail("u8")
		return 0
	}
	v := r.buf[r.off]
	r.off++
	return v
}

func (r *breader) bool() bool { return r.u8() != 0 }

func (r *breader) u32() uint32 {
	if r.err != nil || r.off+4 > len(r.buf) {
		r.fail("u32")
		return 0
	}
	v := binary.LittleEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v
}

func (r *breader) i64() int64 {
	if r.err != nil || r.off+8 > len(r.buf) {
		r.fail("i64")
		return 0
	}
	v := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return int64(v)
}

func (r *breader) f64() float64 { return math.Float64frombits(uint64(r.i64())) }

func (r *breader) str() string {
	n := int(r.u32())
	if r.err != nil || n < 0 || r.off+n > len(r.buf) {
		r.fail("string")
		return ""
	}
	s := string(r.buf[r.off : r.off+n])
	r.off += n
	return s
}

// bytesv returns the next length-prefixed byte record as a subslice of the
// input buffer — zero-copy, so decoded graphs borrow their weight bytes
// from the model file (and, through the apk reader, from the APK buffer
// itself). Decoded weight data is treated as immutable everywhere; callers
// that retain a graph beyond the source buffer's lifetime must detach it
// first (graph.Graph.DetachWeights).
func (r *breader) bytesv() []byte {
	n := int(r.u32())
	if r.err != nil || n < 0 || r.off+n > len(r.buf) {
		r.fail("bytes")
		return nil
	}
	b := r.buf[r.off : r.off+n : r.off+n]
	r.off += n
	return b
}

func (r *breader) ints() []int {
	n := int(r.u32())
	if r.err != nil || n < 0 || n > (len(r.buf)-r.off)/8 {
		r.fail("int list")
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = int(r.i64())
	}
	return out
}

func writeAttrs(w *bwriter, a graph.Attrs) {
	w.i64(int64(a.KernelH))
	w.i64(int64(a.KernelW))
	w.i64(int64(a.StrideH))
	w.i64(int64(a.StrideW))
	w.bool(a.PadSame)
	w.i64(int64(a.PadH))
	w.i64(int64(a.PadW))
	w.i64(int64(a.Filters))
	w.i64(int64(a.Units))
	w.i64(int64(a.Axis))
	w.i64(int64(a.TargetH))
	w.i64(int64(a.TargetW))
	w.i64(int64(a.TimeSteps))
	w.i64(int64(a.VocabSize))
	w.u8(uint8(a.Fused))
	w.f64(a.Scale)
	w.i64(int64(a.ZeroPoint))
	w.ints(a.Begin)
	w.ints(a.Size)
	w.ints(a.NewShape)
	w.i64(int64(a.DepthMult))
	w.bool(a.KeepDims)
	w.ints(a.ReduceAxes)
	w.u8(uint8(a.OutDType))
	w.bool(a.OutDTypeSet)
	w.i64(int64(a.Dilation))
	w.i64(int64(a.Groups))
	w.bool(a.SqueezeBatch)
}

func readAttrs(r *breader) graph.Attrs {
	var a graph.Attrs
	a.KernelH = int(r.i64())
	a.KernelW = int(r.i64())
	a.StrideH = int(r.i64())
	a.StrideW = int(r.i64())
	a.PadSame = r.bool()
	a.PadH = int(r.i64())
	a.PadW = int(r.i64())
	a.Filters = int(r.i64())
	a.Units = int(r.i64())
	a.Axis = int(r.i64())
	a.TargetH = int(r.i64())
	a.TargetW = int(r.i64())
	a.TimeSteps = int(r.i64())
	a.VocabSize = int(r.i64())
	a.Fused = graph.OpType(r.u8())
	a.Scale = r.f64()
	a.ZeroPoint = int(r.i64())
	a.Begin = r.ints()
	a.Size = r.ints()
	a.NewShape = r.ints()
	a.DepthMult = int(r.i64())
	a.KeepDims = r.bool()
	a.ReduceAxes = r.ints()
	a.OutDType = graph.DType(r.u8())
	a.OutDTypeSet = r.bool()
	a.Dilation = int(r.i64())
	a.Groups = int(r.i64())
	a.SqueezeBatch = r.bool()
	return a
}

func writeTensor(w *bwriter, t graph.Tensor) {
	w.str(t.Name)
	w.ints([]int(t.Shape))
	w.u8(uint8(t.DType))
}

func readTensor(r *breader) graph.Tensor {
	var t graph.Tensor
	t.Name = r.str()
	t.Shape = graph.Shape(r.ints())
	t.DType = graph.DType(r.u8())
	return t
}

func writeWeight(w *bwriter, wt graph.Weight) {
	w.str(wt.Name)
	w.ints([]int(wt.Shape))
	w.u8(uint8(wt.DType))
	w.bytes(wt.Data)
}

func readWeight(r *breader) graph.Weight {
	var wt graph.Weight
	wt.Name = r.str()
	wt.Shape = graph.Shape(r.ints())
	wt.DType = graph.DType(r.u8())
	wt.Data = r.bytesv()
	return wt
}

// writeGraphBody serialises the full IR (with weights) into w.
func writeGraphBody(w *bwriter, g *graph.Graph) {
	w.str(g.Name)
	w.u32(uint32(len(g.Inputs)))
	for _, t := range g.Inputs {
		writeTensor(w, t)
	}
	w.u32(uint32(len(g.Outputs)))
	for _, t := range g.Outputs {
		writeTensor(w, t)
	}
	w.u32(uint32(len(g.Layers)))
	for i := range g.Layers {
		l := &g.Layers[i]
		w.str(l.Name)
		w.u8(uint8(l.Op))
		w.u32(uint32(len(l.Inputs)))
		for _, in := range l.Inputs {
			w.str(in)
		}
		w.u32(uint32(len(l.Outputs)))
		for _, out := range l.Outputs {
			w.str(out)
		}
		writeAttrs(w, l.Attrs)
		w.u32(uint32(len(l.Weights)))
		for _, wt := range l.Weights {
			writeWeight(w, wt)
		}
	}
}

// readGraphBody reverses writeGraphBody. The caller validates the result.
func readGraphBody(r *breader) (*graph.Graph, error) {
	g := &graph.Graph{}
	g.Name = r.str()
	nin := int(r.u32())
	if r.err != nil || nin > 1<<16 {
		return nil, fmt.Errorf("%w: implausible input count", ErrNotValid)
	}
	for i := 0; i < nin; i++ {
		g.Inputs = append(g.Inputs, readTensor(r))
	}
	nout := int(r.u32())
	if r.err != nil || nout > 1<<16 {
		return nil, fmt.Errorf("%w: implausible output count", ErrNotValid)
	}
	for i := 0; i < nout; i++ {
		g.Outputs = append(g.Outputs, readTensor(r))
	}
	nl := int(r.u32())
	if r.err != nil || nl > 1<<20 {
		return nil, fmt.Errorf("%w: implausible layer count", ErrNotValid)
	}
	for i := 0; i < nl; i++ {
		var l graph.Layer
		l.Name = r.str()
		l.Op = graph.OpType(r.u8())
		ni := int(r.u32())
		if r.err != nil || ni > 1<<12 {
			return nil, fmt.Errorf("%w: implausible layer fan-in", ErrNotValid)
		}
		for j := 0; j < ni; j++ {
			l.Inputs = append(l.Inputs, r.str())
		}
		no := int(r.u32())
		if r.err != nil || no > 1<<12 {
			return nil, fmt.Errorf("%w: implausible layer fan-out", ErrNotValid)
		}
		for j := 0; j < no; j++ {
			l.Outputs = append(l.Outputs, r.str())
		}
		l.Attrs = readAttrs(r)
		nw := int(r.u32())
		if r.err != nil || nw > 1<<12 {
			return nil, fmt.Errorf("%w: implausible weight count", ErrNotValid)
		}
		for j := 0; j < nw; j++ {
			l.Weights = append(l.Weights, readWeight(r))
		}
		g.Layers = append(g.Layers, l)
	}
	if r.err != nil {
		return nil, r.err
	}
	return g, nil
}
