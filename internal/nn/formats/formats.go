// Package formats implements the framework-specific model file formats
// gaugeNN extracts and validates in the wild: TFLite, caffe, ncnn,
// TensorFlow, SNPE DLC and ONNX. Each format serialises the common
// graph.Graph IR with its own framing, magic signatures and (for caffe and
// ncnn) multi-file layout, so that the extraction pipeline exercises real
// per-framework validation rules — "for TFLite ... FlatBuffer files include
// specific headers at certain positions of the binary file, thus we check
// for the existence of e.g. the string TFL3 there" (Section 3.1).
//
// Formats self-register in an init-time registry, after gopacket's layer
// registry pattern; Identify drives the signature-based validation step.
//
// The encodings are structurally analogous to the real formats, not
// byte-compatible with them (see DESIGN.md's substitution table).
package formats

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"github.com/gaugenn/gaugenn/internal/nn/graph"
)

// FileSet maps file names (with extension, no directory) to their contents.
// Single-file formats produce one entry; caffe produces a .prototxt plus a
// .caffemodel; ncnn a .param plus a .bin.
type FileSet map[string][]byte

// Format serialises and recognises one framework's model files.
type Format interface {
	// Name is the framework identifier ("tflite", "caffe", ...), matching
	// the framework axis of Figure 4.
	Name() string
	// Extensions lists the file extensions (with dot) this format ships
	// under, primary first.
	Extensions() []string
	// Encode serialises g into the format's file set using stem as the
	// base file name.
	Encode(g *graph.Graph, stem string) (FileSet, error)
	// Decode reconstructs the graph from a file set previously produced by
	// Encode (possibly renamed).
	Decode(files FileSet) (*graph.Graph, error)
	// Sniff reports whether data plausibly is this format's primary model
	// file. It must be cheap: gaugeNN uses it to discard the false
	// positives that generic extensions (.pb, .bin, .model) produce.
	Sniff(data []byte) bool
}

// ErrNotValid is wrapped by Decode implementations when the payload fails
// the format's signature or structural checks — the fate of encrypted and
// obfuscated models in the paper's pipeline.
var ErrNotValid = errors.New("formats: not a valid model file")

var (
	registryMu sync.RWMutex
	registry   = map[string]Format{}
	order      []string
)

// Register adds a format to the global registry. It panics on duplicate
// names, which would indicate an init-time programming error.
func Register(f Format) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[f.Name()]; dup {
		panic(fmt.Sprintf("formats: duplicate registration of %q", f.Name()))
	}
	registry[f.Name()] = f
	order = append(order, f.Name())
}

// ByName returns the registered format with the given name.
func ByName(name string) (Format, bool) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	f, ok := registry[name]
	return f, ok
}

// All returns every registered format in registration order.
func All() []Format {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]Format, 0, len(order))
	for _, n := range order {
		out = append(out, registry[n])
	}
	return out
}

// Names returns the registered format names in registration order.
func Names() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	return append([]string(nil), order...)
}

// Identify runs the validation step of Section 3.1: the file name must
// carry an extension some framework claims, and the payload must pass that
// framework's signature sniff. Generic extensions (.pb, .bin) are claimed
// by several frameworks, so every candidate format is sniffed.
func Identify(filename string, data []byte) (Format, bool) {
	ext := strings.ToLower(extensionOf(filename))
	if ext == "" {
		return nil, false
	}
	registryMu.RLock()
	defer registryMu.RUnlock()
	for _, n := range order {
		f := registry[n]
		for _, fe := range f.Extensions() {
			if fe == ext && f.Sniff(data) {
				return f, true
			}
		}
	}
	return nil, false
}

// CandidateExtension reports whether the file name carries any extension in
// the known-framework table (Table 5) — the cheap pre-screen gaugeNN runs
// before signature validation.
func CandidateExtension(filename string) bool {
	ext := strings.ToLower(extensionOf(filename))
	if ext == "" {
		return false
	}
	_, ok := knownExtensionOwners[ext]
	return ok
}

// KnownExtensions returns the Table 5 extension table: extension (with dot)
// to the frameworks that use it, sorted deterministically.
func KnownExtensions() map[string][]string {
	out := make(map[string][]string, len(knownExtensionOwners))
	for ext, owners := range knownExtensionOwners {
		cp := append([]string(nil), owners...)
		sort.Strings(cp)
		out[ext] = cp
	}
	return out
}

// extensionOf returns the extension including the dot, handling compound
// suffixes from Table 5 such as ".pth.tar" and ".cfg.ncnn".
func extensionOf(name string) string {
	lower := strings.ToLower(name)
	for _, compound := range []string{".pth.tar", ".cfg.ncnn", ".weights.ncnn"} {
		if strings.HasSuffix(lower, compound) {
			return compound
		}
	}
	if i := strings.LastIndex(lower, "."); i >= 0 {
		return lower[i:]
	}
	return ""
}

// knownExtensionOwners reproduces the appendix's Table 5 ("Frameworks and
// formats validated by gaugeNN").
var knownExtensionOwners = map[string][]string{
	".onnx":         {"ONNX"},
	".pb":           {"ONNX", "Keras", "Caffe2", "PyTorch", "TFLite", "TF"},
	".pbtxt":        {"ONNX", "Caffe", "Caffe2", "TF"},
	".prototxt":     {"ONNX", "Caffe", "Caffe2", "TF"},
	".mar":          {"MXNet"},
	".model":        {"MXNet", "Keras", "PyTorch", "Sklearn"},
	".json":         {"MXNet", "Keras", "TF"},
	".params":       {"MXNet"},
	".h5":           {"Keras", "PyTorch", "Chainer"},
	".hd5":          {"Keras", "Chainer"},
	".hdf5":         {"Keras", "Chainer"},
	".keras":        {"Keras"},
	".caffemodel":   {"Caffe"},
	".pt":           {"Caffe", "PyTorch"},
	".pth":          {"Keras", "PyTorch"},
	".pt1":          {"PyTorch"},
	".pkl":          {"PyTorch", "Sklearn"},
	".t7":           {"PyTorch", "Torch"},
	".dms":          {"PyTorch"},
	".pth.tar":      {"PyTorch"},
	".ckpt":         {"PyTorch", "TF"},
	".bin":          {"PyTorch", "TFLite", "Ncnn"},
	".tar":          {"PyTorch"},
	".dat":          {"Torch"},
	".dlc":          {"SNPE"},
	".feathermodel": {"FeatherCNN"},
	".tflite":       {"TFLite"},
	".lite":         {"TFLite"},
	".tfl":          {"TFLite"},
	".meta":         {"TF"},
	".index":        {"TF"},
	".joblib":       {"Sklearn"},
	".armnn":        {"armNN"},
	".mnn":          {"Mnn"},
	".param":        {"Ncnn"},
	".cfg.ncnn":     {"Ncnn"},
	".weights.ncnn": {"Ncnn"},
	".ncnn":         {"Ncnn"},
	".tmfile":       {"Tengine"},
	".bson":         {"Flux"},
	".npz":          {"Chainer"},
	".chainermodel": {"Chainer"},
}
