package formats

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"

	"github.com/gaugenn/gaugenn/internal/nn/graph"
)

// ncnnParamMagic is the first line of every ncnn .param file — the real
// format uses the same decimal magic.
const ncnnParamMagic = "7767517"

// ncnnBinMagic heads our .bin weight blob so orphaned binaries remain
// identifiable (real ncnn .bin files are raw; a tagged blob keeps the
// decode path honest without a side channel).
const ncnnBinMagic = "NCNNWB01"

// NCNN is Tencent's mobile inference format, found in 2.8% of the 2021
// models. A deployment is a text .param topology plus a .bin weight blob.
type NCNN struct{}

// Name implements Format.
func (NCNN) Name() string { return "ncnn" }

// Extensions implements Format.
func (NCNN) Extensions() []string {
	return []string{".param", ".bin", ".cfg.ncnn", ".weights.ncnn", ".ncnn"}
}

// Sniff implements Format: a .param starts with the 7767517 magic; a
// weight blob with the bin magic.
func (NCNN) Sniff(data []byte) bool {
	if bytes.HasPrefix(data, []byte(ncnnBinMagic)) {
		return true
	}
	head := data
	if len(head) > 32 {
		head = head[:32]
	}
	return strings.HasPrefix(strings.TrimSpace(string(head)), ncnnParamMagic)
}

// Encode implements Format: stem.param + stem.bin.
func (NCNN) Encode(g *graph.Graph, stem string) (FileSet, error) {
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("ncnn: refusing to encode invalid graph: %w", err)
	}
	var txt strings.Builder
	txt.WriteString(ncnnParamMagic + "\n")
	fmt.Fprintf(&txt, "%d %d\n", len(g.Layers), len(g.Inputs)+len(g.Outputs)+len(g.Layers))
	fmt.Fprintf(&txt, "#model %s\n", g.Name)
	for _, in := range g.Inputs {
		fmt.Fprintf(&txt, "#input %s %s %s\n", in.Name, in.Shape.String(), in.DType.String())
	}
	for _, out := range g.Outputs {
		fmt.Fprintf(&txt, "#output %s %s %s\n", out.Name, out.Shape.String(), out.DType.String())
	}
	for i := range g.Layers {
		l := &g.Layers[i]
		fmt.Fprintf(&txt, "%s %s %d %d", l.Op.String(), l.Name, len(l.Inputs), len(l.Outputs))
		for _, in := range l.Inputs {
			fmt.Fprintf(&txt, " %s", in)
		}
		for _, out := range l.Outputs {
			fmt.Fprintf(&txt, " %s", out)
		}
		for _, kv := range attrsToKV(l.Attrs) {
			fmt.Fprintf(&txt, " %s=%s", kv[0], kv[1])
		}
		txt.WriteString("\n")
	}

	var w bwriter
	w.buf = append(w.buf, ncnnBinMagic...)
	var n uint32
	for i := range g.Layers {
		n += uint32(len(g.Layers[i].Weights))
	}
	w.u32(n)
	for i := range g.Layers {
		for _, wt := range g.Layers[i].Weights {
			w.str(g.Layers[i].Name)
			writeWeight(&w, wt)
		}
	}
	return FileSet{
		stem + ".param": []byte(txt.String()),
		stem + ".bin":   w.buf,
	}, nil
}

// Decode implements Format.
func (NCNN) Decode(files FileSet) (*graph.Graph, error) {
	var param, bin []byte
	for name, data := range files {
		switch extensionOf(name) {
		case ".param", ".cfg.ncnn":
			param = data
		case ".bin", ".weights.ncnn":
			bin = data
		}
	}
	if param == nil {
		return nil, fmt.Errorf("%w: ncnn decode needs a .param", ErrNotValid)
	}
	g, err := parseNCNNParam(param)
	if err != nil {
		return nil, err
	}
	if bin != nil {
		if err := attachNCNNWeights(g, bin); err != nil {
			return nil, err
		}
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNotValid, err)
	}
	return g, nil
}

func parseNCNNParam(data []byte) (*graph.Graph, error) {
	sc, release := newLineScanner(data)
	defer release()
	if !sc.Scan() || strings.TrimSpace(sc.Text()) != ncnnParamMagic {
		return nil, fmt.Errorf("%w: ncnn param magic missing", ErrNotValid)
	}
	if !sc.Scan() {
		return nil, fmt.Errorf("%w: ncnn param truncated", ErrNotValid)
	}
	counts := strings.Fields(sc.Text())
	if len(counts) != 2 {
		return nil, fmt.Errorf("%w: bad ncnn count line", ErrNotValid)
	}
	wantLayers, err := strconv.Atoi(counts[0])
	if err != nil {
		return nil, fmt.Errorf("%w: bad layer count", ErrNotValid)
	}
	g := &graph.Graph{}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := parseNCNNDirective(g, line); err != nil {
				return nil, err
			}
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			return nil, fmt.Errorf("%w: short ncnn layer line %q", ErrNotValid, line)
		}
		op, err := graph.ParseOp(fields[0])
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrNotValid, err)
		}
		nin, err1 := strconv.Atoi(fields[2])
		nout, err2 := strconv.Atoi(fields[3])
		if err1 != nil || err2 != nil || nin < 0 || nout < 0 {
			return nil, fmt.Errorf("%w: bad ncnn io counts in %q", ErrNotValid, line)
		}
		if len(fields) < 4+nin+nout {
			return nil, fmt.Errorf("%w: ncnn layer line missing tensors %q", ErrNotValid, line)
		}
		l := graph.Layer{Name: fields[1], Op: op}
		l.Inputs = append(l.Inputs, fields[4:4+nin]...)
		l.Outputs = append(l.Outputs, fields[4+nin:4+nin+nout]...)
		kv := map[string]string{}
		for _, f := range fields[4+nin+nout:] {
			eq := strings.IndexByte(f, '=')
			if eq <= 0 {
				return nil, fmt.Errorf("%w: bad ncnn attr %q", ErrNotValid, f)
			}
			kv[f[:eq]] = f[eq+1:]
		}
		attrs, err := kvToAttrs(kv)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrNotValid, err)
		}
		l.Attrs = attrs
		g.Layers = append(g.Layers, l)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNotValid, err)
	}
	if len(g.Layers) != wantLayers {
		return nil, fmt.Errorf("%w: ncnn declares %d layers, found %d", ErrNotValid, wantLayers, len(g.Layers))
	}
	return g, nil
}

func parseNCNNDirective(g *graph.Graph, line string) error {
	fields := strings.Fields(line)
	switch fields[0] {
	case "#model":
		if len(fields) >= 2 {
			g.Name = fields[1]
		}
	case "#input", "#output":
		if len(fields) != 4 {
			return fmt.Errorf("%w: bad ncnn io directive %q", ErrNotValid, line)
		}
		shape, err := parseShape(fields[2])
		if err != nil {
			return err
		}
		dt, err := graph.ParseDType(fields[3])
		if err != nil {
			return fmt.Errorf("%w: %v", ErrNotValid, err)
		}
		t := graph.Tensor{Name: fields[1], Shape: shape, DType: dt}
		if fields[0] == "#input" {
			g.Inputs = append(g.Inputs, t)
		} else {
			g.Outputs = append(g.Outputs, t)
		}
	}
	return nil
}

func attachNCNNWeights(g *graph.Graph, data []byte) error {
	if !bytes.HasPrefix(data, []byte(ncnnBinMagic)) {
		return fmt.Errorf("%w: ncnn bin magic missing", ErrNotValid)
	}
	r := &breader{buf: data, off: len(ncnnBinMagic)}
	n := int(r.u32())
	if r.err != nil || n > 1<<20 {
		return fmt.Errorf("%w: implausible ncnn weight count", ErrNotValid)
	}
	byName := map[string]*graph.Layer{}
	for i := range g.Layers {
		byName[g.Layers[i].Name] = &g.Layers[i]
	}
	for i := 0; i < n; i++ {
		layerName := r.str()
		wt := readWeight(r)
		if r.err != nil {
			return r.err
		}
		l, ok := byName[layerName]
		if !ok {
			return fmt.Errorf("%w: ncnn weights for unknown layer %q", ErrNotValid, layerName)
		}
		l.Weights = append(l.Weights, wt)
	}
	return nil
}

func init() { Register(NCNN{}) }
