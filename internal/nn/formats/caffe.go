package formats

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"

	"github.com/gaugenn/gaugenn/internal/nn/graph"
)

// Caffe is the long-deprecated framework the paper is surprised to still
// find in 10.6% of 2021-snapshot models. Deployments ship two files: a
// human-readable .prototxt network definition and a binary .caffemodel
// weight blob — "most apps distribute the model weights in their apk,
// either in a single file ... or in separate files (e.g. caffe)" (§4.5).
type Caffe struct{}

// caffeModelMagic heads the .caffemodel weight blob.
const caffeModelMagic = "CAFFWGT1"

// Name implements Format.
func (Caffe) Name() string { return "caffe" }

// Extensions implements Format: the prototxt is the primary definition
// file; weights use .caffemodel.
func (Caffe) Extensions() []string { return []string{".prototxt", ".pbtxt", ".caffemodel"} }

// Sniff implements Format: a prototxt starts with a name/layer stanza; a
// caffemodel starts with the weight-blob magic.
func (Caffe) Sniff(data []byte) bool {
	if bytes.HasPrefix(data, []byte(caffeModelMagic)) {
		return true
	}
	head := data
	if len(head) > 256 {
		head = head[:256]
	}
	s := strings.TrimSpace(string(head))
	return strings.HasPrefix(s, "name:") && strings.Contains(s, "layer")
}

// Encode implements Format: writes stem.prototxt and stem.caffemodel.
func (Caffe) Encode(g *graph.Graph, stem string) (FileSet, error) {
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("caffe: refusing to encode invalid graph: %w", err)
	}
	var txt strings.Builder
	fmt.Fprintf(&txt, "name: %q\n", g.Name)
	for _, in := range g.Inputs {
		fmt.Fprintf(&txt, "input { name: %q shape: %q dtype: %q }\n",
			in.Name, in.Shape.String(), in.DType.String())
	}
	for _, out := range g.Outputs {
		fmt.Fprintf(&txt, "output { name: %q shape: %q dtype: %q }\n",
			out.Name, out.Shape.String(), out.DType.String())
	}
	for i := range g.Layers {
		l := &g.Layers[i]
		fmt.Fprintf(&txt, "layer {\n  name: %q\n  type: %q\n", l.Name, l.Op.String())
		for _, in := range l.Inputs {
			fmt.Fprintf(&txt, "  bottom: %q\n", in)
		}
		for _, out := range l.Outputs {
			fmt.Fprintf(&txt, "  top: %q\n", out)
		}
		for _, kv := range attrsToKV(l.Attrs) {
			fmt.Fprintf(&txt, "  param { key: %q value: %q }\n", kv[0], kv[1])
		}
		fmt.Fprintf(&txt, "}\n")
	}

	var w bwriter
	w.buf = append(w.buf, caffeModelMagic...)
	var nWeights uint32
	for i := range g.Layers {
		nWeights += uint32(len(g.Layers[i].Weights))
	}
	w.u32(nWeights)
	for i := range g.Layers {
		for _, wt := range g.Layers[i].Weights {
			w.str(g.Layers[i].Name)
			writeWeight(&w, wt)
		}
	}
	return FileSet{
		stem + ".prototxt":   []byte(txt.String()),
		stem + ".caffemodel": w.buf,
	}, nil
}

// Decode implements Format: it needs the prototxt; the caffemodel is
// optional (a prototxt alone decodes to a weightless skeleton, which then
// fails validation exactly like an orphaned definition file would).
func (Caffe) Decode(files FileSet) (*graph.Graph, error) {
	var proto, weights []byte
	for name, data := range files {
		switch extensionOf(name) {
		case ".prototxt", ".pbtxt":
			proto = data
		case ".caffemodel":
			weights = data
		}
	}
	if proto == nil {
		return nil, fmt.Errorf("%w: caffe decode needs a .prototxt", ErrNotValid)
	}
	g, err := parsePrototxt(proto)
	if err != nil {
		return nil, err
	}
	if weights != nil {
		if err := attachCaffeWeights(g, weights); err != nil {
			return nil, err
		}
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNotValid, err)
	}
	return g, nil
}

func parsePrototxt(data []byte) (*graph.Graph, error) {
	g := &graph.Graph{}
	sc, release := newLineScanner(data)
	defer release()
	var cur *graph.Layer
	kv := map[string]string{}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			continue
		case strings.HasPrefix(line, "name:") && cur == nil && g.Name == "":
			g.Name = unquote(strings.TrimSpace(strings.TrimPrefix(line, "name:")))
		case strings.HasPrefix(line, "input {"):
			t, err := parseIOLine(line)
			if err != nil {
				return nil, err
			}
			g.Inputs = append(g.Inputs, t)
		case strings.HasPrefix(line, "output {"):
			t, err := parseIOLine(line)
			if err != nil {
				return nil, err
			}
			g.Outputs = append(g.Outputs, t)
		case line == "layer {":
			cur = &graph.Layer{}
			kv = map[string]string{}
		case line == "}" && cur != nil:
			attrs, err := kvToAttrs(kv)
			if err != nil {
				return nil, fmt.Errorf("%w: layer %q: %v", ErrNotValid, cur.Name, err)
			}
			cur.Attrs = attrs
			g.Layers = append(g.Layers, *cur)
			cur = nil
		case cur != nil && strings.HasPrefix(line, "name:"):
			cur.Name = unquote(strings.TrimSpace(strings.TrimPrefix(line, "name:")))
		case cur != nil && strings.HasPrefix(line, "type:"):
			op, err := graph.ParseOp(unquote(strings.TrimSpace(strings.TrimPrefix(line, "type:"))))
			if err != nil {
				return nil, fmt.Errorf("%w: %v", ErrNotValid, err)
			}
			cur.Op = op
		case cur != nil && strings.HasPrefix(line, "bottom:"):
			cur.Inputs = append(cur.Inputs, unquote(strings.TrimSpace(strings.TrimPrefix(line, "bottom:"))))
		case cur != nil && strings.HasPrefix(line, "top:"):
			cur.Outputs = append(cur.Outputs, unquote(strings.TrimSpace(strings.TrimPrefix(line, "top:"))))
		case cur != nil && strings.HasPrefix(line, "param {"):
			k, v, err := parseParamLine(line)
			if err != nil {
				return nil, err
			}
			kv[k] = v
		default:
			// Unknown stanzas are skipped, as a lenient parser would.
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNotValid, err)
	}
	if cur != nil {
		return nil, fmt.Errorf("%w: unterminated layer stanza", ErrNotValid)
	}
	return g, nil
}

// parseIOLine parses `input { name: "x" shape: "1x2x3" dtype: "float32" }`.
func parseIOLine(line string) (graph.Tensor, error) {
	var t graph.Tensor
	fields := map[string]string{}
	rest := line
	for {
		qi := strings.IndexByte(rest, '"')
		if qi < 0 {
			break
		}
		qj := strings.IndexByte(rest[qi+1:], '"')
		if qj < 0 {
			return t, fmt.Errorf("%w: unbalanced quotes in %q", ErrNotValid, line)
		}
		val := rest[qi+1 : qi+1+qj]
		keyPart := strings.TrimSpace(rest[:qi])
		keyFields := strings.Fields(keyPart)
		if len(keyFields) == 0 {
			return t, fmt.Errorf("%w: malformed io line %q", ErrNotValid, line)
		}
		key := strings.TrimSuffix(keyFields[len(keyFields)-1], ":")
		fields[key] = val
		rest = rest[qi+1+qj+1:]
	}
	t.Name = fields["name"]
	if t.Name == "" {
		return t, fmt.Errorf("%w: io line missing name: %q", ErrNotValid, line)
	}
	shape, err := parseShape(fields["shape"])
	if err != nil {
		return t, err
	}
	t.Shape = shape
	dt, err := graph.ParseDType(fields["dtype"])
	if err != nil {
		return t, fmt.Errorf("%w: %v", ErrNotValid, err)
	}
	t.DType = dt
	return t, nil
}

func parseParamLine(line string) (string, string, error) {
	t, err := parseIOLineGeneric(line)
	if err != nil {
		return "", "", err
	}
	return t["key"], t["value"], nil
}

func parseIOLineGeneric(line string) (map[string]string, error) {
	fields := map[string]string{}
	rest := line
	for {
		qi := strings.IndexByte(rest, '"')
		if qi < 0 {
			break
		}
		qj := strings.IndexByte(rest[qi+1:], '"')
		if qj < 0 {
			return nil, fmt.Errorf("%w: unbalanced quotes in %q", ErrNotValid, line)
		}
		val := rest[qi+1 : qi+1+qj]
		keyPart := strings.TrimSpace(rest[:qi])
		keyFields := strings.Fields(keyPart)
		if len(keyFields) == 0 {
			return nil, fmt.Errorf("%w: malformed line %q", ErrNotValid, line)
		}
		key := strings.TrimSuffix(keyFields[len(keyFields)-1], ":")
		fields[key] = val
		rest = rest[qi+1+qj+1:]
	}
	return fields, nil
}

func parseShape(s string) (graph.Shape, error) {
	if s == "" || s == "scalar" {
		return graph.Shape{}, nil
	}
	parts := strings.Split(s, "x")
	out := make(graph.Shape, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("%w: bad shape %q", ErrNotValid, s)
		}
		out[i] = v
	}
	return out, nil
}

func unquote(s string) string {
	if len(s) >= 2 && s[0] == '"' && s[len(s)-1] == '"' {
		return s[1 : len(s)-1]
	}
	return s
}

func attachCaffeWeights(g *graph.Graph, data []byte) error {
	if !bytes.HasPrefix(data, []byte(caffeModelMagic)) {
		return fmt.Errorf("%w: caffemodel magic missing", ErrNotValid)
	}
	r := &breader{buf: data, off: len(caffeModelMagic)}
	n := int(r.u32())
	if r.err != nil || n > 1<<20 {
		return fmt.Errorf("%w: implausible weight count", ErrNotValid)
	}
	byName := map[string]*graph.Layer{}
	for i := range g.Layers {
		byName[g.Layers[i].Name] = &g.Layers[i]
	}
	for i := 0; i < n; i++ {
		layerName := r.str()
		wt := readWeight(r)
		if r.err != nil {
			return r.err
		}
		l, ok := byName[layerName]
		if !ok {
			return fmt.Errorf("%w: weights for unknown layer %q", ErrNotValid, layerName)
		}
		l.Weights = append(l.Weights, wt)
	}
	return nil
}

func init() { Register(Caffe{}) }
