package formats

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"

	"github.com/gaugenn/gaugenn/internal/nn/graph"
	"github.com/gaugenn/gaugenn/internal/nn/zoo"
)

// buildSample returns a representative model for round-trip testing.
func buildSample(t *testing.T, task zoo.Task, seed int64) *graph.Graph {
	t.Helper()
	g, err := zoo.Build(zoo.Spec{Task: task, Seed: seed, Hinted: true})
	if err != nil {
		t.Fatalf("zoo build: %v", err)
	}
	return g
}

func TestRegistryContainsAllFormats(t *testing.T) {
	want := []string{"tflite", "caffe", "ncnn", "tf", "onnx", "snpe"}
	names := Names()
	got := map[string]bool{}
	for _, n := range names {
		got[n] = true
	}
	for _, w := range want {
		if !got[w] {
			t.Errorf("format %q not registered (have %v)", w, names)
		}
	}
	if len(All()) != len(names) {
		t.Fatal("All and Names disagree")
	}
	if _, ok := ByName("tflite"); !ok {
		t.Fatal("ByName(tflite) failed")
	}
	if _, ok := ByName("bogus"); ok {
		t.Fatal("ByName(bogus) should fail")
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration should panic")
		}
	}()
	Register(TFLite{})
}

func TestRoundTripAllFormats(t *testing.T) {
	tasks := []zoo.Task{zoo.TaskObjectDetection, zoo.TaskAutoComplete, zoo.TaskSoundRecognition}
	for _, f := range All() {
		f := f
		for _, task := range tasks {
			t.Run(f.Name()+"/"+task.String(), func(t *testing.T) {
				g := buildSample(t, task, int64(task)*3+1)
				files, err := f.Encode(g, "m")
				if err != nil {
					t.Fatalf("encode: %v", err)
				}
				if len(files) == 0 {
					t.Fatal("no files produced")
				}
				got, err := f.Decode(files)
				if err != nil {
					t.Fatalf("decode: %v", err)
				}
				if got.Name != g.Name {
					t.Errorf("name %q != %q", got.Name, g.Name)
				}
				if graph.ModelChecksum(got) != graph.ModelChecksum(g) {
					t.Error("round trip changed model checksum")
				}
				if len(got.Layers) != len(g.Layers) {
					t.Errorf("layer count %d != %d", len(got.Layers), len(g.Layers))
				}
				// Profiles must agree: analysis runs on decoded graphs.
				p1, err := graph.ProfileGraph(g)
				if err != nil {
					t.Fatal(err)
				}
				p2, err := graph.ProfileGraph(got)
				if err != nil {
					t.Fatal(err)
				}
				if p1.FLOPs != p2.FLOPs || p1.Params != p2.Params {
					t.Errorf("profile mismatch: %d/%d vs %d/%d", p1.FLOPs, p1.Params, p2.FLOPs, p2.Params)
				}
			})
		}
	}
}

func TestSniffDistinguishesFormats(t *testing.T) {
	g := buildSample(t, zoo.TaskFaceDetection, 7)
	// Each format's primary file must sniff true for itself and false for
	// every other format.
	for _, f := range All() {
		files, err := f.Encode(g, "m")
		if err != nil {
			t.Fatal(err)
		}
		for name, data := range files {
			if !f.Sniff(data) {
				t.Errorf("%s does not sniff its own file %s", f.Name(), name)
			}
			for _, other := range All() {
				if other.Name() == f.Name() {
					continue
				}
				if other.Sniff(data) {
					t.Errorf("%s sniffs %s's file %s", other.Name(), f.Name(), name)
				}
			}
		}
	}
}

func TestIdentify(t *testing.T) {
	g := buildSample(t, zoo.TaskImageClassification, 9)
	tfl, _ := ByName("tflite")
	files, err := tfl.Encode(g, "classifier")
	if err != nil {
		t.Fatal(err)
	}
	data := files["classifier.tflite"]

	f, ok := Identify("assets/classifier.tflite", data)
	if !ok || f.Name() != "tflite" {
		t.Fatalf("Identify = %v %v", f, ok)
	}
	// A generic .bin extension with a tflite payload still identifies.
	f, ok = Identify("weights.bin", data)
	if !ok || f.Name() != "tflite" {
		t.Fatalf("Identify(.bin) = %v %v", f, ok)
	}
	// Wrong extension: .txt is not in the table.
	if _, ok := Identify("classifier.txt", data); ok {
		t.Fatal("unknown extension should not identify")
	}
	// Garbage payload with candidate extension: sniff must reject.
	if _, ok := Identify("model.tflite", []byte("not a model at all")); ok {
		t.Fatal("garbage should not identify")
	}
}

func TestIdentifyRejectsEncrypted(t *testing.T) {
	g := buildSample(t, zoo.TaskObjectDetection, 11)
	tfl, _ := ByName("tflite")
	files, err := tfl.Encode(g, "m")
	if err != nil {
		t.Fatal(err)
	}
	enc := append([]byte(nil), files["m.tflite"]...)
	for i := range enc {
		enc[i] ^= 0x5a // simple XOR "encryption"
	}
	if _, ok := Identify("m.tflite", enc); ok {
		t.Fatal("encrypted model must fail validation, as in the paper")
	}
}

func TestDecodeErrors(t *testing.T) {
	g := buildSample(t, zoo.TaskNudityDetection, 13)
	for _, f := range All() {
		f := f
		t.Run(f.Name(), func(t *testing.T) {
			files, err := f.Encode(g, "m")
			if err != nil {
				t.Fatal(err)
			}
			// Empty set.
			if _, err := f.Decode(FileSet{}); err == nil {
				t.Error("empty file set should fail")
			}
			// Truncation of every file must produce ErrNotValid (not panic).
			// Text files (.prototxt/.param) tolerate losing a trailing
			// newline, so the one-byte cut only applies to binary files.
			for name, data := range files {
				cuts := []int{1, len(data) / 2}
				if ext := extensionOf(name); ext != ".prototxt" && ext != ".param" {
					cuts = append(cuts, len(data)-1)
				}
				for _, cut := range cuts {
					if cut >= len(data) {
						continue
					}
					trunc := FileSet{}
					for n2, d2 := range files {
						if n2 == name {
							trunc[n2] = d2[:cut]
						} else {
							trunc[n2] = d2
						}
					}
					if _, err := f.Decode(trunc); err == nil {
						t.Errorf("truncating %s to %d bytes should fail", name, cut)
					}
				}
			}
		})
	}
}

func TestDecodeErrorIsErrNotValid(t *testing.T) {
	tfl, _ := ByName("tflite")
	_, err := tfl.Decode(FileSet{"m.tflite": []byte("garbage")})
	if err == nil {
		t.Fatal("garbage should fail")
	}
	if !errors.Is(err, ErrNotValid) {
		t.Fatalf("error should wrap ErrNotValid, got %v", err)
	}
}

func TestCaffeNeedsPrototxt(t *testing.T) {
	g := buildSample(t, zoo.TaskPhotoBeauty, 17)
	caffe, _ := ByName("caffe")
	files, err := caffe.Encode(g, "beauty")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 2 {
		t.Fatalf("caffe should produce 2 files, got %d", len(files))
	}
	// Weights alone cannot decode.
	only := FileSet{"beauty.caffemodel": files["beauty.caffemodel"]}
	if _, err := caffe.Decode(only); err == nil {
		t.Fatal("caffemodel without prototxt should fail")
	}
	// Prototxt alone decodes to a weightless skeleton that fails validation
	// (weighted layers declare weights in the caffemodel).
	onlyProto := FileSet{"beauty.prototxt": files["beauty.prototxt"]}
	if g2, err := caffe.Decode(onlyProto); err == nil {
		// Acceptable only if the graph truly has no weights.
		if g2.ParamCount() != g.ParamCount() {
			t.Log("prototxt-only decode yielded weightless skeleton")
		}
	}
}

func TestNCNNLayerCountMismatch(t *testing.T) {
	g := buildSample(t, zoo.TaskKeywordDetection, 19)
	nc, _ := ByName("ncnn")
	files, err := nc.Encode(g, "kw")
	if err != nil {
		t.Fatal(err)
	}
	param := string(files["kw.param"])
	// Corrupt the declared layer count.
	lines := strings.SplitN(param, "\n", 3)
	lines[1] = "999 999"
	files["kw.param"] = []byte(strings.Join(lines, "\n"))
	if _, err := nc.Decode(files); err == nil {
		t.Fatal("layer count mismatch should fail")
	}
}

func TestKnownExtensionsTable(t *testing.T) {
	exts := KnownExtensions()
	// Spot checks against Table 5.
	for _, ext := range []string{".tflite", ".dlc", ".caffemodel", ".param", ".onnx", ".pth.tar", ".feathermodel"} {
		if _, ok := exts[ext]; !ok {
			t.Errorf("extension %s missing from Table 5 table", ext)
		}
	}
	if owners := exts[".pb"]; len(owners) < 4 {
		t.Errorf(".pb should be claimed by many frameworks, got %v", owners)
	}
	if !CandidateExtension("model.tflite") || !CandidateExtension("x/y/net.PARAM") {
		t.Error("candidate extension detection failed")
	}
	if CandidateExtension("readme.md") || CandidateExtension("noext") {
		t.Error("non-candidates misdetected")
	}
	if !CandidateExtension("checkpoint.pth.tar") {
		t.Error("compound extension .pth.tar not detected")
	}
}

func TestAttrsKVRoundTrip(t *testing.T) {
	a := graph.Attrs{
		KernelH: 3, KernelW: 5, StrideH: 2, StrideW: 2, PadSame: true,
		Filters: 32, Units: 64, Axis: 3, TargetH: 14, TargetW: 14,
		TimeSteps: 10, VocabSize: 1000, Fused: graph.OpReLU6, Scale: 0.125,
		ZeroPoint: -3, Begin: []int{0, 1}, Size: []int{1, -1},
		NewShape: []int{1, -1}, DepthMult: 2, KeepDims: true,
		ReduceAxes: []int{1, 2}, OutDType: graph.Int8, OutDTypeSet: true,
		Dilation: 2, Groups: 4, SqueezeBatch: true,
	}
	kv := map[string]string{}
	for _, p := range attrsToKV(a) {
		kv[p[0]] = p[1]
	}
	got, err := kvToAttrs(kv)
	if err != nil {
		t.Fatal(err)
	}
	// Compare by re-flattening.
	kv2 := map[string]string{}
	for _, p := range attrsToKV(got) {
		kv2[p[0]] = p[1]
	}
	if len(kv) != len(kv2) {
		t.Fatalf("attr kv mismatch: %v vs %v", kv, kv2)
	}
	for k, v := range kv {
		if kv2[k] != v {
			t.Errorf("attr %s: %q != %q", k, kv2[k], v)
		}
	}
}

func TestKVToAttrsRejectsBadValues(t *testing.T) {
	if _, err := kvToAttrs(map[string]string{"filters": "many"}); err == nil {
		t.Fatal("bad int should fail")
	}
	if _, err := kvToAttrs(map[string]string{"fused": "not_an_op"}); err == nil {
		t.Fatal("bad op should fail")
	}
	if _, err := kvToAttrs(map[string]string{"scale": "x"}); err == nil {
		t.Fatal("bad float should fail")
	}
	if _, err := kvToAttrs(map[string]string{"out_dtype": "float99"}); err == nil {
		t.Fatal("bad dtype should fail")
	}
	if _, err := kvToAttrs(map[string]string{"begin": "1,two"}); err == nil {
		t.Fatal("bad list should fail")
	}
}

// Property: round trip preserves checksums for randomly drawn zoo specs.
func TestRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	tasks := zoo.AllTasks()
	fmts := All()
	for i := 0; i < 12; i++ {
		task := tasks[rng.Intn(len(tasks))]
		spec := zoo.Spec{
			Task:      task,
			Seed:      rng.Int63n(1 << 30),
			Hinted:    rng.Intn(2) == 0,
			Quantized: rng.Intn(4) == 0,
		}
		g, err := zoo.Build(spec)
		if err != nil {
			t.Fatalf("spec %+v: %v", spec, err)
		}
		f := fmts[rng.Intn(len(fmts))]
		files, err := f.Encode(g, "p")
		if err != nil {
			t.Fatalf("%s encode: %v", f.Name(), err)
		}
		got, err := f.Decode(files)
		if err != nil {
			t.Fatalf("%s decode: %v", f.Name(), err)
		}
		if graph.ModelChecksum(got) != graph.ModelChecksum(g) {
			t.Fatalf("%s: checksum not preserved for %+v", f.Name(), spec)
		}
	}
}

func TestTFLiteHeaderLayout(t *testing.T) {
	g := buildSample(t, zoo.TaskFaceDetection, 23)
	tfl, _ := ByName("tflite")
	files, err := tfl.Encode(g, "bf")
	if err != nil {
		t.Fatal(err)
	}
	data := files["bf.tflite"]
	if !bytes.Equal(data[4:8], []byte("TFL3")) {
		t.Fatalf("TFL3 must sit at offset 4, header = %x", data[:8])
	}
}

func TestExtensionOfCompound(t *testing.T) {
	cases := map[string]string{
		"model.tflite":      ".tflite",
		"w.pth.tar":         ".pth.tar",
		"net.cfg.ncnn":      ".cfg.ncnn",
		"net.weights.ncnn":  ".weights.ncnn",
		"UPPER.TFLITE":      ".tflite",
		"noext":             "",
		"dir/a.b/model.dlc": ".dlc",
	}
	for in, want := range cases {
		if got := extensionOf(in); got != want {
			t.Errorf("extensionOf(%q) = %q, want %q", in, got, want)
		}
	}
}
