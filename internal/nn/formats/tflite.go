package formats

import (
	"fmt"
	"sort"

	"github.com/gaugenn/gaugenn/internal/nn/graph"
)

// tfliteMagic sits at byte offset 4, exactly where gaugeNN's validation
// rule looks for it in real FlatBuffer files ("we check for the existence
// of e.g. the string 'TFL3' there", Section 3.1).
const tfliteMagic = "TFL3"

const tfliteMagicOffset = 4

// TFLite is the dominant in-the-wild format (86.2% of 2021-snapshot
// models). Its container is FlatBuffer-like: a root-offset word, the TFL3
// file identifier at offset 4, then a schema-versioned model table holding
// an operator-code table, a tensor table and a buffer section.
type TFLite struct{}

// Name implements Format.
func (TFLite) Name() string { return "tflite" }

// Extensions implements Format. TFLite ships under .tflite/.lite/.tfl and
// occasionally generic .bin/.pb names (Table 5).
func (TFLite) Extensions() []string { return []string{".tflite", ".lite", ".tfl", ".bin", ".pb"} }

// Sniff implements Format: the TFL3 identifier must sit at offset 4.
func (TFLite) Sniff(data []byte) bool {
	return len(data) > tfliteMagicOffset+len(tfliteMagic) &&
		string(data[tfliteMagicOffset:tfliteMagicOffset+len(tfliteMagic)]) == tfliteMagic
}

// Encode implements Format.
func (TFLite) Encode(g *graph.Graph, stem string) (FileSet, error) {
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("tflite: refusing to encode invalid graph: %w", err)
	}
	var w bwriter
	// FlatBuffer-like header: root table offset placeholder, then the file
	// identifier at offset 4.
	w.u32(0x0000001c)
	w.buf = append(w.buf, tfliteMagic...)
	w.u32(3) // schema version

	// Operator-code table: the distinct ops referenced by the model.
	seen := map[graph.OpType]uint32{}
	var codes []graph.OpType
	for i := range g.Layers {
		op := g.Layers[i].Op
		if _, ok := seen[op]; !ok {
			seen[op] = uint32(len(codes))
			codes = append(codes, op)
		}
	}
	w.u32(uint32(len(codes)))
	for _, op := range codes {
		w.str(op.String())
	}

	// Subgraph section: a single subgraph carrying the IR body, with layer
	// ops replaced by operator-code indices (resolved back on decode).
	var body bwriter
	writeGraphBody(&body, g)
	w.bytes(body.buf)

	// Trailing buffer count (real files keep weight buffers in a trailing
	// section; ours embeds them in the body and records the count).
	w.u32(uint32(len(g.Layers)))
	return FileSet{stem + ".tflite": w.buf}, nil
}

// Decode implements Format.
func (f TFLite) Decode(files FileSet) (*graph.Graph, error) {
	data, err := singleFile(files, f)
	if err != nil {
		return nil, err
	}
	r := &breader{buf: data}
	r.u32() // root offset
	if len(data) < r.off+len(tfliteMagic) ||
		string(data[r.off:r.off+len(tfliteMagic)]) != tfliteMagic {
		return nil, fmt.Errorf("%w: missing TFL3 identifier", ErrNotValid)
	}
	r.off += len(tfliteMagic)
	if v := r.u32(); v != 3 {
		return nil, fmt.Errorf("%w: unsupported tflite schema version %d", ErrNotValid, v)
	}
	ncodes := int(r.u32())
	if r.err != nil || ncodes > 1<<10 {
		return nil, fmt.Errorf("%w: implausible opcode table", ErrNotValid)
	}
	for i := 0; i < ncodes; i++ {
		if _, err := graph.ParseOp(r.str()); err != nil {
			return nil, fmt.Errorf("%w: unknown opcode in table: %v", ErrNotValid, err)
		}
	}
	body := r.bytesv()
	nbuf := r.u32()
	if r.err != nil {
		return nil, r.err
	}
	g, err := readGraphBody(&breader{buf: body})
	if err != nil {
		return nil, err
	}
	if int(nbuf) != len(g.Layers) {
		return nil, fmt.Errorf("%w: buffer section declares %d buffers for %d layers", ErrNotValid, nbuf, len(g.Layers))
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNotValid, err)
	}
	return g, nil
}

// singleFile extracts the lone payload from a single-file format's FileSet,
// preferring files by the format's extension priority order and breaking
// remaining ties by sniffing, then by name (deterministically).
func singleFile(files FileSet, f Format) ([]byte, error) {
	if len(files) == 0 {
		return nil, fmt.Errorf("%w: empty file set", ErrNotValid)
	}
	names := make([]string, 0, len(files))
	for n := range files {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, ext := range f.Extensions() {
		var fallback []byte
		for _, name := range names {
			if extensionOf(name) != ext {
				continue
			}
			if f.Sniff(files[name]) {
				return files[name], nil
			}
			if fallback == nil {
				fallback = files[name]
			}
		}
		if fallback != nil {
			return fallback, nil
		}
	}
	if len(files) == 1 {
		return files[names[0]], nil
	}
	return nil, fmt.Errorf("%w: no file matches %s extensions", ErrNotValid, f.Name())
}

func init() { Register(TFLite{}) }
