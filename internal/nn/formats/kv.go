package formats

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/gaugenn/gaugenn/internal/nn/graph"
)

// attrsToKV flattens non-zero layer attributes into ordered key/value
// string pairs for the text formats (caffe prototxt, ncnn param).
func attrsToKV(a graph.Attrs) [][2]string {
	var out [][2]string
	addInt := func(k string, v int) {
		if v != 0 {
			out = append(out, [2]string{k, strconv.Itoa(v)})
		}
	}
	addBool := func(k string, v bool) {
		if v {
			out = append(out, [2]string{k, "1"})
		}
	}
	addList := func(k string, v []int) {
		if len(v) == 0 {
			return
		}
		parts := make([]string, len(v))
		for i, x := range v {
			parts[i] = strconv.Itoa(x)
		}
		out = append(out, [2]string{k, strings.Join(parts, ",")})
	}
	addInt("kernel_h", a.KernelH)
	addInt("kernel_w", a.KernelW)
	addInt("stride_h", a.StrideH)
	addInt("stride_w", a.StrideW)
	addBool("pad_same", a.PadSame)
	addInt("pad_h", a.PadH)
	addInt("pad_w", a.PadW)
	addInt("filters", a.Filters)
	addInt("units", a.Units)
	addInt("axis", a.Axis)
	addInt("target_h", a.TargetH)
	addInt("target_w", a.TargetW)
	addInt("time_steps", a.TimeSteps)
	addInt("vocab", a.VocabSize)
	if a.Fused != graph.OpInvalid {
		out = append(out, [2]string{"fused", a.Fused.String()})
	}
	if a.Scale != 0 {
		out = append(out, [2]string{"scale", strconv.FormatFloat(a.Scale, 'g', -1, 64)})
	}
	addInt("zero_point", a.ZeroPoint)
	addList("begin", a.Begin)
	addList("size", a.Size)
	addList("new_shape", a.NewShape)
	addInt("depth_mult", a.DepthMult)
	addBool("keep_dims", a.KeepDims)
	addList("reduce_axes", a.ReduceAxes)
	if a.OutDTypeSet {
		out = append(out, [2]string{"out_dtype", a.OutDType.String()})
	}
	addInt("dilation", a.Dilation)
	addInt("groups", a.Groups)
	addBool("squeeze_batch", a.SqueezeBatch)
	return out
}

// kvToAttrs reverses attrsToKV.
func kvToAttrs(kv map[string]string) (graph.Attrs, error) {
	var a graph.Attrs
	var err error
	getInt := func(k string) int {
		v, ok := kv[k]
		if !ok {
			return 0
		}
		n, e := strconv.Atoi(v)
		if e != nil && err == nil {
			err = fmt.Errorf("bad int attr %s=%q", k, v)
		}
		return n
	}
	getBool := func(k string) bool { return kv[k] == "1" }
	getList := func(k string) []int {
		v, ok := kv[k]
		if !ok || v == "" {
			return nil
		}
		parts := strings.Split(v, ",")
		out := make([]int, len(parts))
		for i, p := range parts {
			n, e := strconv.Atoi(p)
			if e != nil && err == nil {
				err = fmt.Errorf("bad list attr %s=%q", k, v)
			}
			out[i] = n
		}
		return out
	}
	a.KernelH = getInt("kernel_h")
	a.KernelW = getInt("kernel_w")
	a.StrideH = getInt("stride_h")
	a.StrideW = getInt("stride_w")
	a.PadSame = getBool("pad_same")
	a.PadH = getInt("pad_h")
	a.PadW = getInt("pad_w")
	a.Filters = getInt("filters")
	a.Units = getInt("units")
	a.Axis = getInt("axis")
	a.TargetH = getInt("target_h")
	a.TargetW = getInt("target_w")
	a.TimeSteps = getInt("time_steps")
	a.VocabSize = getInt("vocab")
	if v, ok := kv["fused"]; ok {
		op, e := graph.ParseOp(v)
		if e != nil {
			return a, e
		}
		a.Fused = op
	}
	if v, ok := kv["scale"]; ok {
		f, e := strconv.ParseFloat(v, 64)
		if e != nil {
			return a, fmt.Errorf("bad scale %q", v)
		}
		a.Scale = f
	}
	a.ZeroPoint = getInt("zero_point")
	a.Begin = getList("begin")
	a.Size = getList("size")
	a.NewShape = getList("new_shape")
	a.DepthMult = getInt("depth_mult")
	a.KeepDims = getBool("keep_dims")
	a.ReduceAxes = getList("reduce_axes")
	if v, ok := kv["out_dtype"]; ok {
		dt, e := graph.ParseDType(v)
		if e != nil {
			return a, e
		}
		a.OutDType = dt
		a.OutDTypeSet = true
	}
	a.Dilation = getInt("dilation")
	a.Groups = getInt("groups")
	a.SqueezeBatch = getBool("squeeze_batch")
	return a, err
}
