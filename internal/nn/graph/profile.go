package graph

import "fmt"

// LayerProfile is the per-layer cost record collected during the trace-based
// forward pass: floating-point operations (2×MACs for linear-algebra ops),
// trainable parameters, and the activation/weight bytes moved. The byte
// counts feed the roofline latency model in internal/mlrt.
type LayerProfile struct {
	Name        string
	Op          OpType
	Class       OpClass
	FLOPs       int64
	Params      int64
	InputBytes  int64
	OutputBytes int64
	WeightBytes int64
	OutputShape Shape
}

// Profile is the whole-model cost record of Section 4.7 ("DNN #operations
// and #parameters"): total FLOPs and parameters plus the per-layer trace.
type Profile struct {
	ModelName string
	FLOPs     int64
	Params    int64
	// ActivationBytes is the sum of all intermediate tensor footprints; the
	// peak working set is approximated by PeakBytes.
	ActivationBytes int64
	PeakBytes       int64
	WeightBytes     int64
	Layers          []LayerProfile
}

// ProfileGraph performs the trace-based profiling pass: it infers shapes
// from the declared inputs and accumulates analytic FLOP counts per layer,
// exactly as gaugeNN "generate[s] a random input with the DNN-specified
// input dimensions and perform[s] a DNN inference ... measuring analytically
// the amount of operations being performed per layer".
func ProfileGraph(g *Graph) (*Profile, error) {
	env, err := g.InferShapes()
	if err != nil {
		return nil, err
	}
	p := &Profile{ModelName: g.Name, Layers: make([]LayerProfile, 0, len(g.Layers))}
	for i := range g.Layers {
		l := &g.Layers[i]
		lp, err := profileLayer(l, env)
		if err != nil {
			return nil, fmt.Errorf("graph %s: layer %q: %w", g.Name, l.Name, err)
		}
		p.FLOPs += lp.FLOPs
		p.Params += lp.Params
		p.ActivationBytes += lp.OutputBytes
		p.WeightBytes += lp.WeightBytes
		if ws := lp.InputBytes + lp.OutputBytes + lp.WeightBytes; ws > p.PeakBytes {
			p.PeakBytes = ws
		}
		p.Layers = append(p.Layers, lp)
	}
	return p, nil
}

func profileLayer(l *Layer, env map[string]Tensor) (LayerProfile, error) {
	lp := LayerProfile{Name: l.Name, Op: l.Op, Class: l.Op.Class(), Params: l.ParamCount(), WeightBytes: l.WeightBytes()}
	for _, in := range l.Inputs {
		t, ok := env[in]
		if !ok {
			return lp, fmt.Errorf("undefined tensor %q", in)
		}
		lp.InputBytes += t.Bytes()
	}
	var out Tensor
	for _, o := range l.Outputs {
		t, ok := env[o]
		if !ok {
			return lp, fmt.Errorf("unprofiled output tensor %q", o)
		}
		lp.OutputBytes += t.Bytes()
		out = t
	}
	lp.OutputShape = out.Shape
	in := env[l.Inputs[0]]
	outElems := out.Shape.Elements()
	a := l.Attrs

	switch l.Op {
	case OpConv2D:
		// 2 FLOPs per MAC: out elements × kernel volume × input channels.
		inC := int64(in.Shape[3])
		groups := int64(a.Groups)
		if groups <= 0 {
			groups = 1
		}
		lp.FLOPs = 2 * outElems * int64(a.KernelH) * int64(a.KernelW) * inC / groups
	case OpTransposeConv2D:
		inC := int64(in.Shape[3])
		lp.FLOPs = 2 * in.Shape.Elements() / inC * int64(a.KernelH) * int64(a.KernelW) * inC * int64(a.Filters) / int64(max(1, in.Shape[3]))
		// Conservative: same MACs as the forward conv producing the input.
		if lp.FLOPs <= 0 {
			lp.FLOPs = 2 * outElems * int64(a.KernelH) * int64(a.KernelW)
		}
	case OpDepthwiseConv2D:
		lp.FLOPs = 2 * outElems * int64(a.KernelH) * int64(a.KernelW)
	case OpDense:
		inF := in.Shape.Elements()
		if len(in.Shape) >= 2 && in.Shape[0] > 0 {
			inF /= int64(in.Shape[0])
		}
		batch := int64(1)
		if len(in.Shape) >= 1 && in.Shape[0] > 0 {
			batch = int64(in.Shape[0])
		}
		lp.FLOPs = 2 * batch * inF * int64(a.Units)
	case OpLSTM:
		inF := int64(in.Shape[2])
		u := int64(a.Units)
		t := int64(in.Shape[1])
		lp.FLOPs = 2 * 4 * t * (inF*u + u*u + u)
	case OpGRU:
		inF := int64(in.Shape[2])
		u := int64(a.Units)
		t := int64(in.Shape[1])
		lp.FLOPs = 2 * 3 * t * (inF*u + u*u + u)
	case OpEmbedding:
		lp.FLOPs = outElems // gather cost
	case OpMaxPool, OpAvgPool:
		lp.FLOPs = outElems * int64(a.KernelH) * int64(a.KernelW)
	case OpGlobalAvgPool:
		lp.FLOPs = in.Shape.Elements()
	case OpSoftmax:
		lp.FLOPs = 5 * outElems // exp + sum + div
	case OpSigmoid, OpTanh, OpHardSwish, OpLogistic:
		lp.FLOPs = 4 * outElems
	case OpReLU, OpReLU6, OpPRelu:
		lp.FLOPs = outElems
	case OpBatchNorm:
		lp.FLOPs = 2 * outElems
	case OpAdd, OpMul:
		lp.FLOPs = outElems
	case OpMean:
		lp.FLOPs = in.Shape.Elements()
	case OpResizeBilinear:
		lp.FLOPs = 7 * outElems
	case OpResizeNearest:
		lp.FLOPs = outElems
	case OpQuantize, OpDequantize:
		lp.FLOPs = 2 * outElems
	case OpConcat, OpReshape, OpSlice, OpStridedSlice, OpPad:
		lp.FLOPs = 0 // data movement only; captured by byte counters
	default:
		return lp, fmt.Errorf("profiling not implemented for op %s", l.Op)
	}
	return lp, nil
}

// ClassHistogram aggregates layer counts per Figure 6 bucket.
func (p *Profile) ClassHistogram() map[OpClass]int {
	h := make(map[OpClass]int)
	for _, lp := range p.Layers {
		h[lp.Class]++
	}
	return h
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
