// Package graph defines the intermediate representation gaugeNN uses for
// every extracted DNN model: a directed acyclic graph of layers with named
// tensors, typed weights, shape inference and trace-based FLOP/parameter
// accounting (Section 3.2 of the paper).
//
// Every framework-specific format in internal/nn/formats decodes into this
// IR, and every analysis and runtime backend consumes it, mirroring how
// gaugeNN normalises TFLite, caffe, ncnn, TF and SNPE models before
// benchmarking them.
package graph

import "fmt"

// DType identifies the element type of a tensor.
type DType uint8

// Supported element types. Float32 is the default for in-the-wild models;
// Int8/UInt8 appear in quantised deployments and Float16 in GPU delegates.
const (
	Float32 DType = iota
	Float16
	Int8
	UInt8
	Int16
	Int32
	Int64
	Bool
)

var dtypeNames = [...]string{
	Float32: "float32",
	Float16: "float16",
	Int8:    "int8",
	UInt8:   "uint8",
	Int16:   "int16",
	Int32:   "int32",
	Int64:   "int64",
	Bool:    "bool",
}

var dtypeSizes = [...]int{
	Float32: 4,
	Float16: 2,
	Int8:    1,
	UInt8:   1,
	Int16:   2,
	Int32:   4,
	Int64:   8,
	Bool:    1,
}

// String returns the lowercase name of the type.
func (d DType) String() string {
	if int(d) < len(dtypeNames) {
		return dtypeNames[d]
	}
	return fmt.Sprintf("dtype(%d)", uint8(d))
}

// Size returns the element size in bytes.
func (d DType) Size() int {
	if int(d) < len(dtypeSizes) {
		return dtypeSizes[d]
	}
	return 0
}

// Valid reports whether d is a known element type.
func (d DType) Valid() bool { return int(d) < len(dtypeNames) }

// ParseDType maps a lowercase name back to a DType.
func ParseDType(s string) (DType, error) {
	for i, n := range dtypeNames {
		if n == s {
			return DType(i), nil
		}
	}
	return 0, fmt.Errorf("graph: unknown dtype %q", s)
}
