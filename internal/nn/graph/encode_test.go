package graph

import (
	"bytes"
	"reflect"
	"testing"
)

// fullGraph populates every field the binary codec must carry, including
// every Attrs member.
func fullGraph() *Graph {
	return &Graph{
		Name:    "codec_fixture",
		Inputs:  []Tensor{{Name: "image", Shape: Shape{1, 8, 8, 3}, DType: Float32}},
		Outputs: []Tensor{{Name: "probs", Shape: Shape{1, 4}, DType: Float32}},
		Layers: []Layer{
			{
				Name: "conv", Op: OpConv2D,
				Inputs: []string{"image"}, Outputs: []string{"feat"},
				Attrs: Attrs{
					KernelH: 3, KernelW: 3, StrideH: 2, StrideW: 2,
					PadSame: true, PadH: 1, PadW: 1, Filters: 4, Units: 7,
					Axis: 3, TargetH: 16, TargetW: 16, TimeSteps: 5, VocabSize: 100,
					Fused: OpReLU, Scale: 0.125, ZeroPoint: -3,
					Begin: []int{0, 1}, Size: []int{2, 3}, NewShape: []int{1, 4},
					DepthMult: 2, KeepDims: true, ReduceAxes: []int{1, 2},
					OutDType: Int8, OutDTypeSet: true, Dilation: 2, Groups: 2,
					SqueezeBatch: true,
				},
				Weights: []Weight{{
					Name: "conv/w", Shape: Shape{3, 3, 3, 4}, DType: Float32,
					Data: bytes.Repeat([]byte{1, 2, 3, 4}, 108),
				}},
			},
			{
				Name: "head", Op: OpDense,
				Inputs: []string{"feat"}, Outputs: []string{"probs"},
				Attrs: Attrs{Units: 4},
				Weights: []Weight{{
					Name: "head/w", Shape: Shape{16}, DType: Int8,
					Data: bytes.Repeat([]byte{9}, 16),
				}},
			},
		},
	}
}

func TestEncodeBinaryRoundTrip(t *testing.T) {
	g := fullGraph()
	data := EncodeBinary(g)
	got, err := DecodeBinary(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(g, got) {
		t.Fatalf("round trip changed the graph:\n%+v\n%+v", g, got)
	}
	// Deterministic: re-encoding the decoded graph is byte-identical.
	if !bytes.Equal(data, EncodeBinary(got)) {
		t.Fatal("encode(decode(encode)) not byte-stable")
	}
	if ModelChecksum(g) != ModelChecksum(got) {
		t.Fatal("round trip changed the model checksum")
	}
}

// TestEncodeBinaryCoversAttrs pins the field counts the codec was written
// against: adding a field to these structs without extending the codec
// (and bumping binCodecVersion) must fail here, not silently drop data.
func TestEncodeBinaryCoversAttrs(t *testing.T) {
	for _, pin := range []struct {
		typ  reflect.Type
		want int
	}{
		{reflect.TypeOf(Attrs{}), 28},
		{reflect.TypeOf(Tensor{}), 3},
		{reflect.TypeOf(Weight{}), 4},
		{reflect.TypeOf(Layer{}), 6},
		{reflect.TypeOf(Graph{}), 4},
	} {
		if got := pin.typ.NumField(); got != pin.want {
			t.Errorf("%s has %d fields, codec covers %d — extend encode.go and bump binCodecVersion",
				pin.typ.Name(), got, pin.want)
		}
	}
}

func TestDecodeBinaryRejectsCorruption(t *testing.T) {
	data := EncodeBinary(fullGraph())
	if _, err := DecodeBinary(data[:len(data)/2]); err == nil {
		t.Fatal("truncated blob must not decode")
	}
	if _, err := DecodeBinary(append(append([]byte(nil), data...), 0xff)); err == nil {
		t.Fatal("trailing bytes must not decode")
	}
	bad := append([]byte(nil), data...)
	bad[0] = 99 // version byte
	if _, err := DecodeBinary(bad); err == nil {
		t.Fatal("future codec version must not decode")
	}
	if _, err := DecodeBinary(nil); err == nil {
		t.Fatal("empty blob must not decode")
	}
}
