package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randomNet builds a structurally random-but-valid conv net from three
// bounded knobs, for property testing the IR invariants.
func randomNet(seed int64, depth, width, res uint8) (*Graph, error) {
	d := int(depth%4) + 1
	w := int(width%24) + 4
	r := 16 << (res % 3) // 16, 32, 64
	b := NewBuilder("prop_net", rand.New(rand.NewSource(seed)))
	b.Input("input", Shape{1, r, r, 3}, Float32)
	for i := 0; i < d; i++ {
		stride := 1 + i%2
		b.Conv(name("conv", i), w, 3, stride, OpReLU)
		if i%2 == 1 {
			b.DWConv(name("dw", i), 3, 1, OpReLU6)
		}
	}
	b.GlobalAvgPool("gap")
	b.Reshape("flatten", []int{1, -1})
	b.Dense("fc", 5, OpInvalid)
	b.Softmax("prob")
	return b.Finish()
}

func name(prefix string, i int) string {
	return prefix + string(rune('a'+i))
}

// Property: every randomly built net validates, shape-infers, profiles
// with non-negative costs, and its profiled params match the weight sum.
func TestRandomNetInvariantsProperty(t *testing.T) {
	f := func(seed int64, depth, width, res uint8) bool {
		g, err := randomNet(seed, depth, width, res)
		if err != nil {
			return false
		}
		if g.Validate() != nil {
			return false
		}
		p, err := ProfileGraph(g)
		if err != nil {
			return false
		}
		if p.FLOPs <= 0 || p.Params <= 0 || p.ActivationBytes <= 0 {
			return false
		}
		if p.Params != g.ParamCount() {
			return false
		}
		for _, lp := range p.Layers {
			if lp.FLOPs < 0 || lp.InputBytes < 0 || lp.OutputBytes < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: checksums are stable under re-build and change under any
// single-byte weight mutation.
func TestChecksumSensitivityProperty(t *testing.T) {
	f := func(seed int64, depth, width, res uint8, flip uint16) bool {
		g1, err := randomNet(seed, depth, width, res)
		if err != nil {
			return false
		}
		g2, err := randomNet(seed, depth, width, res)
		if err != nil {
			return false
		}
		if ModelChecksum(g1) != ModelChecksum(g2) {
			return false
		}
		// Flip one weight byte somewhere.
		for i := range g2.Layers {
			for wi := range g2.Layers[i].Weights {
				data := g2.Layers[i].Weights[wi].Data
				if len(data) == 0 {
					continue
				}
				data[int(flip)%len(data)] ^= 0xFF
				return ModelChecksum(g1) != ModelChecksum(g2)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: shape inference output elements are positive for every layer
// of a valid net (no degenerate tensors survive inference).
func TestShapeInferencePositivityProperty(t *testing.T) {
	f := func(seed int64, depth, width, res uint8) bool {
		g, err := randomNet(seed, depth, width, res)
		if err != nil {
			return false
		}
		env, err := g.InferShapes()
		if err != nil {
			return false
		}
		for _, t := range env {
			if t.Shape.Elements() <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: weighted layer checksums are a subsequence of all layer
// checksums and only cover layers with weights.
func TestWeightedChecksumSubsetProperty(t *testing.T) {
	f := func(seed int64, depth, width, res uint8) bool {
		g, err := randomNet(seed, depth, width, res)
		if err != nil {
			return false
		}
		weighted := WeightedLayerChecksums(g)
		nWeighted := 0
		for i := range g.Layers {
			if len(g.Layers[i].Weights) > 0 {
				nWeighted++
			}
		}
		return len(weighted) == nWeighted
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
