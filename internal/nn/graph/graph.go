package graph

import (
	"fmt"
	"strings"
)

// Shape is a tensor shape. Image tensors use NHWC order; sequence tensors
// use [batch, time, features]; scalars are rank 0.
type Shape []int

// Elements returns the product of all dimensions (1 for rank 0). Unknown
// (-1) dimensions count as 1 so batch-agnostic models still profile.
func (s Shape) Elements() int64 {
	n := int64(1)
	for _, d := range s {
		if d > 0 {
			n *= int64(d)
		}
	}
	return n
}

// Clone returns a copy of the shape.
func (s Shape) Clone() Shape {
	out := make(Shape, len(s))
	copy(out, s)
	return out
}

// Equal reports element-wise equality.
func (s Shape) Equal(o Shape) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

// String renders the shape as "1x224x224x3".
func (s Shape) String() string {
	if len(s) == 0 {
		return "scalar"
	}
	parts := make([]string, len(s))
	for i, d := range s {
		parts[i] = fmt.Sprintf("%d", d)
	}
	return strings.Join(parts, "x")
}

// Tensor is a named, typed activation flowing along a graph edge.
type Tensor struct {
	Name  string
	Shape Shape
	DType DType
}

// Bytes returns the storage footprint of one instance of the tensor.
func (t Tensor) Bytes() int64 { return t.Shape.Elements() * int64(t.DType.Size()) }

// Weight is a trainable parameter tensor attached to a layer. Data holds the
// raw little-endian element bytes; len(Data) == Shape.Elements()*DType.Size()
// for well-formed weights.
type Weight struct {
	Name  string
	Shape Shape
	DType DType
	Data  []byte
}

// Elements returns the number of parameters in the weight.
func (w Weight) Elements() int64 { return w.Shape.Elements() }

// Attrs carries the per-layer hyperparameters shape inference and FLOP
// accounting need. Fields irrelevant to a given op are zero.
type Attrs struct {
	KernelH, KernelW int
	StrideH, StrideW int
	// PadSame selects TensorFlow-style SAME padding; otherwise VALID with
	// explicit PadH/PadW applied symmetrically.
	PadSame      bool
	PadH, PadW   int
	Filters      int // output channels for conv-like ops
	Units        int // output features for dense / recurrent ops
	Axis         int // concat axis
	TargetH      int // resize target
	TargetW      int
	TimeSteps    int     // recurrent sequence length
	VocabSize    int     // embedding rows
	Fused        OpType  // fused activation (OpInvalid when none)
	Scale        float64 // quantisation scale
	ZeroPoint    int     // quantisation zero point
	Begin, Size  []int   // slice parameters
	NewShape     []int   // reshape target
	DepthMult    int     // depthwise channel multiplier (defaults to 1)
	KeepDims     bool    // mean/reduce
	ReduceAxes   []int   // mean/reduce axes
	OutDType     DType   // quantize/dequantize output element type
	OutDTypeSet  bool    // distinguishes OutDType==Float32 from unset
	Dilation     int     // conv dilation (defaults to 1)
	Groups       int     // grouped convolution (defaults to 1)
	SqueezeBatch bool    // reshape helper used by some text models
}

// Layer is one node of the model DAG.
type Layer struct {
	Name    string
	Op      OpType
	Inputs  []string // names of consumed tensors
	Outputs []string // names of produced tensors
	Attrs   Attrs
	Weights []Weight
}

// ParamCount returns the number of trainable parameters in the layer.
func (l *Layer) ParamCount() int64 {
	var n int64
	for _, w := range l.Weights {
		n += w.Elements()
	}
	return n
}

// WeightBytes returns the total weight storage of the layer.
func (l *Layer) WeightBytes() int64 {
	var n int64
	for _, w := range l.Weights {
		n += int64(len(w.Data))
	}
	return n
}

// Graph is a complete model: a topologically ordered list of layers
// connecting named input tensors to named outputs.
type Graph struct {
	// Name is the model's file-stem in the wild (e.g.
	// "hair_segmentation_mobilenet"); the paper mines it for task hints.
	Name    string
	Inputs  []Tensor
	Outputs []Tensor
	Layers  []Layer
}

// FindLayer returns the layer with the given name, or nil.
func (g *Graph) FindLayer(name string) *Layer {
	for i := range g.Layers {
		if g.Layers[i].Name == name {
			return &g.Layers[i]
		}
	}
	return nil
}

// ParamCount returns the total trainable parameter count of the model,
// the quantity reported on the x-axis of the paper's Figure 7 (right).
func (g *Graph) ParamCount() int64 {
	var n int64
	for i := range g.Layers {
		n += g.Layers[i].ParamCount()
	}
	return n
}

// WeightBytes returns the total weight storage footprint.
func (g *Graph) WeightBytes() int64 {
	var n int64
	for i := range g.Layers {
		n += g.Layers[i].WeightBytes()
	}
	return n
}

// DetachWeights copies every weight's Data into freshly owned memory (one
// contiguous allocation for the whole model). Decoders borrow weight bytes
// from the source buffer (the model file, or the APK it was read from);
// any holder that retains a graph beyond that buffer's lifetime — e.g. the
// analysis cache under keepGraphs — must detach it first, or the retained
// graph pins the entire APK in memory.
func (g *Graph) DetachWeights() {
	var total int
	for i := range g.Layers {
		for _, w := range g.Layers[i].Weights {
			total += len(w.Data)
		}
	}
	if total == 0 {
		return
	}
	buf := make([]byte, 0, total)
	for i := range g.Layers {
		ws := g.Layers[i].Weights
		for j := range ws {
			start := len(buf)
			buf = append(buf, ws[j].Data...)
			ws[j].Data = buf[start:len(buf):len(buf)]
		}
	}
}

// Validate checks structural invariants: non-empty inputs/outputs, unique
// tensor producer names, topological ordering (every consumed tensor was
// produced earlier or is a graph input), valid op codes, well-sized weight
// buffers and declared graph outputs actually produced.
func (g *Graph) Validate() error {
	if g.Name == "" {
		return fmt.Errorf("graph: model has no name")
	}
	if len(g.Inputs) == 0 {
		return fmt.Errorf("graph %s: no inputs", g.Name)
	}
	if len(g.Outputs) == 0 {
		return fmt.Errorf("graph %s: no outputs", g.Name)
	}
	if len(g.Layers) == 0 {
		return fmt.Errorf("graph %s: no layers", g.Name)
	}
	available := make(map[string]bool, len(g.Inputs)+len(g.Layers))
	for _, in := range g.Inputs {
		if in.Name == "" {
			return fmt.Errorf("graph %s: unnamed input", g.Name)
		}
		if available[in.Name] {
			return fmt.Errorf("graph %s: duplicate input %q", g.Name, in.Name)
		}
		if !in.DType.Valid() {
			return fmt.Errorf("graph %s: input %q has invalid dtype", g.Name, in.Name)
		}
		available[in.Name] = true
	}
	layerNames := make(map[string]bool, len(g.Layers))
	for i := range g.Layers {
		l := &g.Layers[i]
		if l.Name == "" {
			return fmt.Errorf("graph %s: layer %d unnamed", g.Name, i)
		}
		if layerNames[l.Name] {
			return fmt.Errorf("graph %s: duplicate layer name %q", g.Name, l.Name)
		}
		layerNames[l.Name] = true
		if !l.Op.Valid() {
			return fmt.Errorf("graph %s: layer %q has invalid op", g.Name, l.Name)
		}
		if len(l.Inputs) == 0 {
			return fmt.Errorf("graph %s: layer %q consumes nothing", g.Name, l.Name)
		}
		if len(l.Outputs) == 0 {
			return fmt.Errorf("graph %s: layer %q produces nothing", g.Name, l.Name)
		}
		for _, in := range l.Inputs {
			if !available[in] {
				return fmt.Errorf("graph %s: layer %q consumes undefined tensor %q (not topologically ordered?)", g.Name, l.Name, in)
			}
		}
		for _, out := range l.Outputs {
			if available[out] {
				return fmt.Errorf("graph %s: tensor %q produced twice", g.Name, out)
			}
			available[out] = true
		}
		for _, w := range l.Weights {
			want := w.Shape.Elements() * int64(w.DType.Size())
			if int64(len(w.Data)) != want {
				return fmt.Errorf("graph %s: layer %q weight %q has %d bytes, want %d",
					g.Name, l.Name, w.Name, len(w.Data), want)
			}
		}
	}
	for _, out := range g.Outputs {
		if !available[out.Name] {
			return fmt.Errorf("graph %s: declared output %q never produced", g.Name, out.Name)
		}
	}
	return nil
}

// Modality is the input modality gaugeNN groups models by (Figure 6).
type Modality uint8

// Input modalities of Section 4.4.
const (
	ModalityUnknown Modality = iota
	ModalityImage
	ModalityText
	ModalityAudio
	ModalitySensor
)

var modalityNames = [...]string{"unknown", "image", "text", "audio", "sensor"}

// String returns the lowercase modality name.
func (m Modality) String() string {
	if int(m) < len(modalityNames) {
		return modalityNames[m]
	}
	return "unknown"
}

// InferModality classifies the model's input modality from its first input
// tensor, following the heuristics Section 4.4 describes: the input name is
// inspected first (gaugeNN's manual characterisation keyed on naming), then
// the shape — rank-4 float tensors are images; integer-typed inputs are
// token sequences (text); rank-2/3 float tensors with a long time dimension
// are audio; short float vectors are sensor streams.
func (g *Graph) InferModality() Modality {
	if len(g.Inputs) == 0 {
		return ModalityUnknown
	}
	in := g.Inputs[0]
	name := strings.ToLower(in.Name)
	switch {
	case containsAny(name, "spectrogram", "audio", "waveform", "mel", "mfcc"):
		return ModalityAudio
	case containsAny(name, "token", "word_ids", "text"):
		return ModalityText
	case containsAny(name, "imu", "accel", "gyro", "sensor"):
		return ModalitySensor
	case containsAny(name, "image", "frame", "pixels"):
		return ModalityImage
	}
	switch in.DType {
	case Int32, Int64:
		return ModalityText
	}
	switch len(in.Shape) {
	case 4:
		c := in.Shape[3]
		if c == 1 || c == 3 || c == 4 {
			return ModalityImage
		}
		return ModalityImage
	case 3:
		if in.Shape[1] >= 128 { // long time axis: spectrogram frames
			return ModalityAudio
		}
		return ModalitySensor
	case 2:
		if in.Shape[1] >= 1024 { // raw waveform
			return ModalityAudio
		}
		if in.Shape[1] <= 16 {
			return ModalitySensor
		}
		return ModalityText
	default:
		return ModalityUnknown
	}
}

func containsAny(s string, subs ...string) bool {
	for _, sub := range subs {
		if strings.Contains(s, sub) {
			return true
		}
	}
	return false
}
