package graph

import "fmt"

// InferShapes propagates tensor shapes from the graph inputs through every
// layer, returning a map from tensor name to its inferred Tensor. This is
// the "trace-based" forward pass of Section 4.7: gaugeNN feeds a random
// input of the declared dimensions and registers per-layer operations.
func (g *Graph) InferShapes() (map[string]Tensor, error) {
	env := make(map[string]Tensor, len(g.Inputs)+len(g.Layers))
	for _, in := range g.Inputs {
		env[in.Name] = in
	}
	for i := range g.Layers {
		l := &g.Layers[i]
		outs, err := inferLayer(l, env)
		if err != nil {
			return nil, fmt.Errorf("graph %s: layer %q (%s): %w", g.Name, l.Name, l.Op, err)
		}
		if len(outs) != len(l.Outputs) {
			return nil, fmt.Errorf("graph %s: layer %q produced %d tensors, declares %d",
				g.Name, l.Name, len(outs), len(l.Outputs))
		}
		for j, t := range outs {
			t.Name = l.Outputs[j]
			env[t.Name] = t
		}
	}
	return env, nil
}

func convSpatial(in, kernel, stride, pad, dilation int, same bool) (int, error) {
	if stride <= 0 {
		return 0, fmt.Errorf("stride must be positive, got %d", stride)
	}
	if same {
		return (in + stride - 1) / stride, nil
	}
	if dilation <= 0 {
		dilation = 1
	}
	// A dilated kernel spans (k-1)*d+1 input positions; SAME output size is
	// unaffected (padding absorbs the difference) but VALID shrinks by it.
	eff := (kernel-1)*dilation + 1
	out := (in+2*pad-eff)/stride + 1
	if out <= 0 {
		return 0, fmt.Errorf("kernel %d (dilation %d) with stride %d does not fit input %d (pad %d)", kernel, dilation, stride, in, pad)
	}
	return out, nil
}

func inferLayer(l *Layer, env map[string]Tensor) ([]Tensor, error) {
	ins := make([]Tensor, len(l.Inputs))
	for i, name := range l.Inputs {
		t, ok := env[name]
		if !ok {
			return nil, fmt.Errorf("undefined input tensor %q", name)
		}
		ins[i] = t
	}
	x := ins[0]
	a := l.Attrs

	switch l.Op {
	case OpConv2D, OpTransposeConv2D:
		if len(x.Shape) != 4 {
			return nil, fmt.Errorf("conv input must be rank 4, got %v", x.Shape)
		}
		if a.Filters <= 0 {
			return nil, fmt.Errorf("conv needs Filters > 0")
		}
		if l.Op == OpTransposeConv2D {
			// Transposed convolution upsamples by the stride.
			return []Tensor{{Shape: Shape{x.Shape[0], x.Shape[1] * a.StrideH, x.Shape[2] * a.StrideW, a.Filters}, DType: x.DType}}, nil
		}
		oh, err := convSpatial(x.Shape[1], a.KernelH, a.StrideH, a.PadH, a.Dilation, a.PadSame)
		if err != nil {
			return nil, err
		}
		ow, err := convSpatial(x.Shape[2], a.KernelW, a.StrideW, a.PadW, a.Dilation, a.PadSame)
		if err != nil {
			return nil, err
		}
		return []Tensor{{Shape: Shape{x.Shape[0], oh, ow, a.Filters}, DType: x.DType}}, nil

	case OpDepthwiseConv2D:
		if len(x.Shape) != 4 {
			return nil, fmt.Errorf("depthwise conv input must be rank 4, got %v", x.Shape)
		}
		mult := a.DepthMult
		if mult <= 0 {
			mult = 1
		}
		oh, err := convSpatial(x.Shape[1], a.KernelH, a.StrideH, a.PadH, a.Dilation, a.PadSame)
		if err != nil {
			return nil, err
		}
		ow, err := convSpatial(x.Shape[2], a.KernelW, a.StrideW, a.PadW, a.Dilation, a.PadSame)
		if err != nil {
			return nil, err
		}
		return []Tensor{{Shape: Shape{x.Shape[0], oh, ow, x.Shape[3] * mult}, DType: x.DType}}, nil

	case OpMaxPool, OpAvgPool:
		if len(x.Shape) != 4 {
			return nil, fmt.Errorf("pool input must be rank 4, got %v", x.Shape)
		}
		oh, err := convSpatial(x.Shape[1], a.KernelH, a.StrideH, a.PadH, 1, a.PadSame)
		if err != nil {
			return nil, err
		}
		ow, err := convSpatial(x.Shape[2], a.KernelW, a.StrideW, a.PadW, 1, a.PadSame)
		if err != nil {
			return nil, err
		}
		return []Tensor{{Shape: Shape{x.Shape[0], oh, ow, x.Shape[3]}, DType: x.DType}}, nil

	case OpGlobalAvgPool:
		if len(x.Shape) != 4 {
			return nil, fmt.Errorf("global pool input must be rank 4, got %v", x.Shape)
		}
		return []Tensor{{Shape: Shape{x.Shape[0], 1, 1, x.Shape[3]}, DType: x.DType}}, nil

	case OpDense:
		if a.Units <= 0 {
			return nil, fmt.Errorf("dense needs Units > 0")
		}
		batch := 1
		if len(x.Shape) >= 1 {
			batch = x.Shape[0]
		}
		return []Tensor{{Shape: Shape{batch, a.Units}, DType: x.DType}}, nil

	case OpReLU, OpReLU6, OpSigmoid, OpTanh, OpSoftmax, OpHardSwish, OpPRelu,
		OpLogistic, OpBatchNorm:
		return []Tensor{{Shape: x.Shape.Clone(), DType: x.DType}}, nil

	case OpAdd, OpMul:
		if len(ins) >= 2 && !ins[0].Shape.Equal(ins[1].Shape) {
			// Broadcasting a per-channel bias is permitted.
			if ins[1].Shape.Elements() != int64(lastDim(ins[0].Shape)) && ins[1].Shape.Elements() != 1 {
				return nil, fmt.Errorf("elementwise shape mismatch %v vs %v", ins[0].Shape, ins[1].Shape)
			}
		}
		return []Tensor{{Shape: x.Shape.Clone(), DType: x.DType}}, nil

	case OpConcat:
		if len(ins) < 2 {
			return nil, fmt.Errorf("concat needs at least 2 inputs")
		}
		axis := a.Axis
		if axis < 0 {
			axis += len(x.Shape)
		}
		if axis < 0 || axis >= len(x.Shape) {
			return nil, fmt.Errorf("concat axis %d out of range for rank %d", a.Axis, len(x.Shape))
		}
		out := x.Shape.Clone()
		for _, t := range ins[1:] {
			if len(t.Shape) != len(x.Shape) {
				return nil, fmt.Errorf("concat rank mismatch %v vs %v", x.Shape, t.Shape)
			}
			out[axis] += t.Shape[axis]
		}
		return []Tensor{{Shape: out, DType: x.DType}}, nil

	case OpReshape:
		if len(a.NewShape) == 0 {
			return nil, fmt.Errorf("reshape needs NewShape")
		}
		out := make(Shape, len(a.NewShape))
		known := int64(1)
		wildcard := -1
		for i, d := range a.NewShape {
			out[i] = d
			if d == -1 {
				if wildcard >= 0 {
					return nil, fmt.Errorf("reshape allows one wildcard dim")
				}
				wildcard = i
			} else {
				known *= int64(d)
			}
		}
		total := x.Shape.Elements()
		if wildcard >= 0 {
			if known == 0 || total%known != 0 {
				return nil, fmt.Errorf("reshape %v incompatible with %d elements", a.NewShape, total)
			}
			out[wildcard] = int(total / known)
		} else if known != total {
			return nil, fmt.Errorf("reshape %v has %d elements, input has %d", a.NewShape, known, total)
		}
		return []Tensor{{Shape: out, DType: x.DType}}, nil

	case OpSlice, OpStridedSlice:
		if len(a.Size) != len(x.Shape) {
			return nil, fmt.Errorf("slice size rank %d mismatches input rank %d", len(a.Size), len(x.Shape))
		}
		out := make(Shape, len(a.Size))
		for i, d := range a.Size {
			if d == -1 {
				begin := 0
				if i < len(a.Begin) {
					begin = a.Begin[i]
				}
				out[i] = x.Shape[i] - begin
			} else {
				out[i] = d
			}
			if out[i] <= 0 || out[i] > x.Shape[i] {
				return nil, fmt.Errorf("slice dim %d size %d invalid for input %d", i, out[i], x.Shape[i])
			}
		}
		return []Tensor{{Shape: out, DType: x.DType}}, nil

	case OpResizeBilinear, OpResizeNearest:
		if len(x.Shape) != 4 {
			return nil, fmt.Errorf("resize input must be rank 4, got %v", x.Shape)
		}
		if a.TargetH <= 0 || a.TargetW <= 0 {
			return nil, fmt.Errorf("resize needs positive target dims")
		}
		return []Tensor{{Shape: Shape{x.Shape[0], a.TargetH, a.TargetW, x.Shape[3]}, DType: x.DType}}, nil

	case OpQuantize, OpDequantize:
		dt := x.DType
		if a.OutDTypeSet {
			dt = a.OutDType
		} else if l.Op == OpQuantize {
			dt = Int8
		} else {
			dt = Float32
		}
		return []Tensor{{Shape: x.Shape.Clone(), DType: dt}}, nil

	case OpPad:
		// Symmetric zero padding. Rank 4 (NHWC) pads the spatial axes; rank 3
		// ([batch,time,feat]) pads time with PadH and features with PadW;
		// rank 2 ([batch,feat]) pads features with PadW. Other ranks only
		// pass through when no padding is requested — a silent pass-through
		// for a real pad would undersize every downstream arena buffer.
		out := x.Shape.Clone()
		switch len(out) {
		case 4:
			out[1] += 2 * a.PadH
			out[2] += 2 * a.PadW
		case 3:
			out[1] += 2 * a.PadH
			out[2] += 2 * a.PadW
		case 2:
			if a.PadH != 0 {
				return nil, fmt.Errorf("pad: rank-2 input %v has no height axis for PadH=%d", x.Shape, a.PadH)
			}
			out[1] += 2 * a.PadW
		default:
			if a.PadH != 0 || a.PadW != 0 {
				return nil, fmt.Errorf("pad: rank-%d input %v not supported (PadH=%d PadW=%d)", len(out), x.Shape, a.PadH, a.PadW)
			}
		}
		return []Tensor{{Shape: out, DType: x.DType}}, nil

	case OpMean:
		out := Shape{}
		drop := make(map[int]bool, len(a.ReduceAxes))
		for _, ax := range a.ReduceAxes {
			if ax < 0 {
				ax += len(x.Shape)
			}
			drop[ax] = true
		}
		for i, d := range x.Shape {
			if drop[i] {
				if a.KeepDims {
					out = append(out, 1)
				}
				continue
			}
			out = append(out, d)
		}
		if len(out) == 0 {
			out = Shape{1}
		}
		return []Tensor{{Shape: out, DType: x.DType}}, nil

	case OpLSTM, OpGRU:
		if a.Units <= 0 {
			return nil, fmt.Errorf("recurrent layer needs Units > 0")
		}
		if len(x.Shape) != 3 {
			return nil, fmt.Errorf("recurrent input must be rank 3 [batch,time,feat], got %v", x.Shape)
		}
		return []Tensor{{Shape: Shape{x.Shape[0], x.Shape[1], a.Units}, DType: x.DType}}, nil

	case OpEmbedding:
		if a.Units <= 0 || a.VocabSize <= 0 {
			return nil, fmt.Errorf("embedding needs Units and VocabSize")
		}
		out := x.Shape.Clone()
		out = append(out, a.Units)
		return []Tensor{{Shape: out, DType: Float32}}, nil

	default:
		return nil, fmt.Errorf("shape inference not implemented for op %s", l.Op)
	}
}

func lastDim(s Shape) int {
	if len(s) == 0 {
		return 1
	}
	return s[len(s)-1]
}
