package graph

import (
	"math/rand"
	"strings"
	"testing"
)

func testRNG() *rand.Rand { return rand.New(rand.NewSource(42)) }

// tinyCNN builds a minimal valid conv net used across tests.
func tinyCNN(t *testing.T) *Graph {
	t.Helper()
	g, err := NewBuilder("tiny_cnn", testRNG()).
		Input("input", Shape{1, 32, 32, 3}, Float32).
		Conv("conv1", 8, 3, 2, OpReLU).
		DWConv("dw1", 3, 1, OpReLU6).
		Conv("pw1", 16, 1, 1, OpReLU).
		GlobalAvgPool("gap").
		Reshape("flatten", []int{1, -1}).
		Dense("fc", 10, OpInvalid).
		Softmax("prob").
		Finish()
	if err != nil {
		t.Fatalf("tinyCNN: %v", err)
	}
	return g
}

func TestDTypeBasics(t *testing.T) {
	if Float32.Size() != 4 || Int8.Size() != 1 || Float16.Size() != 2 || Int64.Size() != 8 {
		t.Fatal("dtype sizes wrong")
	}
	if Float32.String() != "float32" {
		t.Fatalf("String() = %q", Float32.String())
	}
	dt, err := ParseDType("int8")
	if err != nil || dt != Int8 {
		t.Fatalf("ParseDType: %v %v", dt, err)
	}
	if _, err := ParseDType("bogus"); err == nil {
		t.Fatal("ParseDType should reject unknown names")
	}
	if DType(200).Size() != 0 || DType(200).Valid() {
		t.Fatal("invalid dtype must have zero size")
	}
}

func TestOpParseRoundTrip(t *testing.T) {
	for op := OpType(1); op < numOps; op++ {
		got, err := ParseOp(op.String())
		if err != nil {
			t.Fatalf("ParseOp(%q): %v", op.String(), err)
		}
		if got != op {
			t.Fatalf("round trip %s -> %s", op, got)
		}
	}
	if _, err := ParseOp("nonsense"); err == nil {
		t.Fatal("ParseOp should reject unknown ops")
	}
}

func TestOpClassBuckets(t *testing.T) {
	cases := map[OpType]OpClass{
		OpConv2D:          ClassConv,
		OpDepthwiseConv2D: ClassDepthConv,
		OpDense:           ClassDense,
		OpLSTM:            ClassDense,
		OpReLU:            ClassActivation,
		OpMaxPool:         ClassPooling,
		OpAdd:             ClassMath,
		OpQuantize:        ClassQuant,
		OpResizeBilinear:  ClassResize,
		OpReshape:         ClassSlice,
	}
	for op, want := range cases {
		if op.Class() != want {
			t.Errorf("%s.Class() = %s, want %s", op, op.Class(), want)
		}
	}
	if len(AllClasses()) != 10 {
		t.Fatalf("AllClasses() = %d buckets, want 10 (Figure 6)", len(AllClasses()))
	}
}

func TestShapeHelpers(t *testing.T) {
	s := Shape{1, 224, 224, 3}
	if s.Elements() != 150528 {
		t.Fatalf("Elements = %d", s.Elements())
	}
	if s.String() != "1x224x224x3" {
		t.Fatalf("String = %q", s.String())
	}
	if (Shape{}).String() != "scalar" {
		t.Fatal("empty shape should render as scalar")
	}
	if !s.Equal(s.Clone()) {
		t.Fatal("clone should equal original")
	}
	if s.Equal(Shape{1, 224, 224}) {
		t.Fatal("different ranks must not be equal")
	}
	// Unknown dims count as 1.
	if (Shape{-1, 10}).Elements() != 10 {
		t.Fatal("unknown dim should count as 1")
	}
}

func TestBuilderProducesValidGraph(t *testing.T) {
	g := tinyCNN(t)
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if len(g.Layers) != 7 {
		t.Fatalf("layer count = %d", len(g.Layers))
	}
	if g.ParamCount() == 0 {
		t.Fatal("model should have parameters")
	}
}

func TestValidateRejectsBrokenGraphs(t *testing.T) {
	base := tinyCNN(t)

	t.Run("no name", func(t *testing.T) {
		g := *base
		g.Name = ""
		if err := g.Validate(); err == nil {
			t.Fatal("want error")
		}
	})
	t.Run("undefined input tensor", func(t *testing.T) {
		g := *base
		layers := make([]Layer, len(base.Layers))
		copy(layers, base.Layers)
		layers[0].Inputs = []string{"ghost"}
		g.Layers = layers
		if err := g.Validate(); err == nil || !strings.Contains(err.Error(), "undefined tensor") {
			t.Fatalf("want undefined tensor error, got %v", err)
		}
	})
	t.Run("duplicate layer name", func(t *testing.T) {
		g := *base
		layers := make([]Layer, len(base.Layers))
		copy(layers, base.Layers)
		layers[1].Name = layers[0].Name
		g.Layers = layers
		if err := g.Validate(); err == nil || !strings.Contains(err.Error(), "duplicate layer") {
			t.Fatalf("want duplicate layer error, got %v", err)
		}
	})
	t.Run("bad weight size", func(t *testing.T) {
		g := *base
		layers := make([]Layer, len(base.Layers))
		copy(layers, base.Layers)
		w := layers[0].Weights[0]
		w.Data = w.Data[:len(w.Data)-1]
		layers[0].Weights = []Weight{w, layers[0].Weights[1]}
		g.Layers = layers
		if err := g.Validate(); err == nil || !strings.Contains(err.Error(), "bytes") {
			t.Fatalf("want weight size error, got %v", err)
		}
	})
	t.Run("missing output", func(t *testing.T) {
		g := *base
		g.Outputs = []Tensor{{Name: "nope"}}
		if err := g.Validate(); err == nil || !strings.Contains(err.Error(), "never produced") {
			t.Fatalf("want missing output error, got %v", err)
		}
	})
}

func TestInferShapesTinyCNN(t *testing.T) {
	g := tinyCNN(t)
	env, err := g.InferShapes()
	if err != nil {
		t.Fatal(err)
	}
	// conv1 stride 2 SAME: 32 -> 16, 8 filters.
	conv1Out := g.Layers[0].Outputs[0]
	if got := env[conv1Out].Shape; !got.Equal(Shape{1, 16, 16, 8}) {
		t.Fatalf("conv1 out = %v", got)
	}
	// final softmax over 10 classes.
	last := g.Layers[len(g.Layers)-1].Outputs[0]
	if got := env[last].Shape; !got.Equal(Shape{1, 10}) {
		t.Fatalf("softmax out = %v", got)
	}
}

func TestConvSpatialValidPadding(t *testing.T) {
	out, err := convSpatial(32, 3, 1, 0, 1, false)
	if err != nil || out != 30 {
		t.Fatalf("VALID conv: %d %v", out, err)
	}
	if _, err := convSpatial(2, 5, 1, 0, 1, false); err == nil {
		t.Fatal("kernel larger than input without padding must fail")
	}
	if _, err := convSpatial(8, 3, 0, 0, 1, true); err == nil {
		t.Fatal("zero stride must fail")
	}
}

func TestProfileTinyCNN(t *testing.T) {
	g := tinyCNN(t)
	p, err := ProfileGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	if p.FLOPs <= 0 || p.Params != g.ParamCount() {
		t.Fatalf("profile: %+v", p)
	}
	// conv1: out 1x16x16x8, kernel 3x3x3 => 2*16*16*8*9*3 = 110592.
	if p.Layers[0].FLOPs != 110592 {
		t.Fatalf("conv1 FLOPs = %d, want 110592", p.Layers[0].FLOPs)
	}
	// dw1: out 1x16x16x8, 3x3 kernel => 2*16*16*8*9 = 36864.
	if p.Layers[1].FLOPs != 36864 {
		t.Fatalf("dw1 FLOPs = %d, want 36864", p.Layers[1].FLOPs)
	}
	// dense: 16 -> 10 => 2*16*10 = 320.
	var denseFLOPs int64
	for _, lp := range p.Layers {
		if lp.Op == OpDense {
			denseFLOPs = lp.FLOPs
		}
	}
	if denseFLOPs != 320 {
		t.Fatalf("dense FLOPs = %d, want 320", denseFLOPs)
	}
}

func TestProfileClassHistogram(t *testing.T) {
	g := tinyCNN(t)
	p, err := ProfileGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	h := p.ClassHistogram()
	if h[ClassConv] != 2 || h[ClassDepthConv] != 1 || h[ClassDense] != 1 {
		t.Fatalf("histogram = %v", h)
	}
}

func TestChecksumStability(t *testing.T) {
	g1 := tinyCNN(t)
	g2 := tinyCNN(t) // same seed -> identical weights
	if ModelChecksum(g1) != ModelChecksum(g2) {
		t.Fatal("identical construction must yield identical checksum")
	}
	g3, err := NewBuilder("tiny_cnn", rand.New(rand.NewSource(43))).
		Input("input", Shape{1, 32, 32, 3}, Float32).
		Conv("conv1", 8, 3, 2, OpReLU).
		Finish()
	if err != nil {
		t.Fatal(err)
	}
	if ModelChecksum(g1) == ModelChecksum(g3) {
		t.Fatal("different models must differ in checksum")
	}
}

func TestSharedLayerFraction(t *testing.T) {
	g1 := tinyCNN(t)
	g2 := tinyCNN(t)
	if f := SharedLayerFraction(g1, g2); f != 1 {
		t.Fatalf("identical models share fraction %v, want 1", f)
	}
	// Fine-tune: replace the dense layer's weights.
	rng := rand.New(rand.NewSource(7))
	ft := tinyCNN(t)
	for i := range ft.Layers {
		if ft.Layers[i].Op == OpDense {
			for wi := range ft.Layers[i].Weights {
				rng.Read(ft.Layers[i].Weights[wi].Data)
			}
		}
	}
	f := SharedLayerFraction(ft, g1)
	if f <= 0.5 || f >= 1 {
		t.Fatalf("fine-tuned share = %v, want in (0.5,1)", f)
	}
	if d := DifferingLayers(ft, g1); d != 1 {
		t.Fatalf("DifferingLayers = %d, want 1", d)
	}
}

func TestDifferingLayersCountsExtra(t *testing.T) {
	g1 := tinyCNN(t)
	short, err := NewBuilder("short", testRNG()).
		Input("input", Shape{1, 32, 32, 3}, Float32).
		Conv("conv1", 8, 3, 2, OpReLU).
		Finish()
	if err != nil {
		t.Fatal(err)
	}
	if d := DifferingLayers(short, g1); d != len(g1.Layers)-1 {
		t.Fatalf("DifferingLayers(short, full) = %d, want %d", d, len(g1.Layers)-1)
	}
}

func TestCollectWeightStats(t *testing.T) {
	b := NewBuilder("sparse", testRNG())
	b.Sparsity = 0.5
	g, err := b.
		Input("input", Shape{1, 16, 16, 3}, Float32).
		Conv("conv", 32, 3, 1, OpInvalid).
		Finish()
	if err != nil {
		t.Fatal(err)
	}
	ws := CollectWeightStats(g)
	if ws.TotalParams != g.ParamCount() {
		t.Fatalf("TotalParams = %d, want %d", ws.TotalParams, g.ParamCount())
	}
	sf := ws.SparsityFraction()
	if sf < 0.4 || sf > 0.6 {
		t.Fatalf("sparsity = %v, want ~0.5", sf)
	}
	if ws.DTypeParams[Float32] != ws.TotalParams {
		t.Fatal("all weights should be float32")
	}
	if ws.Int8WeightFraction() != 0 {
		t.Fatal("no int8 weights expected")
	}
}

func TestWeightStatsOptimisationMarkers(t *testing.T) {
	b := NewBuilder("clustered", testRNG())
	b.LayerPrefix = "cluster_"
	g, err := b.
		Input("input", Shape{1, 8, 8, 3}, Float32).
		Conv("conv", 4, 3, 1, OpInvalid).
		Finish()
	if err != nil {
		t.Fatal(err)
	}
	ws := CollectWeightStats(g)
	if ws.ClusteredLayers != 1 {
		t.Fatalf("ClusteredLayers = %d", ws.ClusteredLayers)
	}

	// Quantised model: int8 weights plus quantize/dequantize pair.
	qb := NewBuilder("quant", testRNG())
	qb.WeightDType = Int8
	qg, err := qb.
		Input("input", Shape{1, 8, 8, 3}, Float32).
		Quantize("q", 0.02).
		Conv("conv", 4, 3, 1, OpInvalid).
		Dequantize("dq", 0.02).
		Finish()
	if err != nil {
		t.Fatal(err)
	}
	qws := CollectWeightStats(qg)
	if qws.DequantizeOps != 1 {
		t.Fatalf("DequantizeOps = %d", qws.DequantizeOps)
	}
	if !qws.Int8Activations {
		t.Fatal("quantize layer should mark int8 activations")
	}
	if qws.Int8WeightFraction() != 1 {
		t.Fatalf("Int8WeightFraction = %v, want 1", qws.Int8WeightFraction())
	}
}

func TestInferModality(t *testing.T) {
	cases := []struct {
		shape Shape
		dt    DType
		want  Modality
	}{
		{Shape{1, 224, 224, 3}, Float32, ModalityImage},
		{Shape{1, 64}, Int32, ModalityText},
		{Shape{1, 16000}, Float32, ModalityAudio},
		{Shape{1, 160, 64}, Float32, ModalityAudio},
		{Shape{1, 6}, Float32, ModalitySensor},
		{Shape{1, 9, 3}, Float32, ModalitySensor},
	}
	for _, c := range cases {
		g := &Graph{Name: "m", Inputs: []Tensor{{Name: "in", Shape: c.shape, DType: c.dt}}}
		if got := g.InferModality(); got != c.want {
			t.Errorf("shape %v dtype %s => %s, want %s", c.shape, c.dt, got, c.want)
		}
	}
	empty := &Graph{Name: "none"}
	if empty.InferModality() != ModalityUnknown {
		t.Fatal("no inputs should be unknown modality")
	}
}

func TestBuilderStickyError(t *testing.T) {
	b := NewBuilder("broken", testRNG()).
		Input("input", Shape{1, 8}, Float32).
		Conv("conv", 4, 3, 1, OpInvalid) // rank-2 input: error
	if _, err := b.Finish(); err == nil {
		t.Fatal("conv on rank-2 input must fail")
	}
	// Further calls must not panic and must preserve the first error.
	b.Dense("fc", 10, OpInvalid)
	if _, err := b.Finish(); err == nil || !strings.Contains(err.Error(), "Conv") {
		t.Fatalf("sticky error lost: %v", err)
	}
}

func TestBuilderBranches(t *testing.T) {
	b := NewBuilder("branchy", testRNG()).
		Input("input", Shape{1, 16, 16, 8}, Float32)
	trunk := b.Current()
	b.Conv("branch_a", 8, 3, 1, OpReLU)
	a := b.Current()
	b.SetCurrent(trunk).Conv("branch_b", 8, 3, 1, OpReLU)
	g, err := b.Concat("merge", 3, a).Conv("head", 4, 1, 1, OpInvalid).Finish()
	if err != nil {
		t.Fatal(err)
	}
	env, err := g.InferShapes()
	if err != nil {
		t.Fatal(err)
	}
	merge := g.FindLayer("merge")
	if merge == nil {
		t.Fatal("merge layer missing")
	}
	if got := env[merge.Outputs[0]].Shape; !got.Equal(Shape{1, 16, 16, 16}) {
		t.Fatalf("concat shape = %v", got)
	}
}

func TestRecurrentAndEmbedding(t *testing.T) {
	g, err := NewBuilder("text_model", testRNG()).
		Input("tokens", Shape{1, 12}, Int32).
		Embedding("embed", 5000, 64).
		LSTM("lstm", 128).
		Slice("last", []int{0, 11, 0}, []int{1, 1, 128}).
		Reshape("flat", []int{1, 128}).
		Dense("out", 5000, OpInvalid).
		Softmax("prob").
		Finish()
	if err != nil {
		t.Fatal(err)
	}
	p, err := ProfileGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	if p.Params < 5000*64 {
		t.Fatalf("params = %d, embedding alone should exceed 320k", p.Params)
	}
	if g.InferModality() != ModalityText {
		t.Fatal("token input should classify as text")
	}
}
