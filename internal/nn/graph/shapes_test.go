package graph

import "testing"

// TestInferLayerShapes is table-driven coverage for every operator the
// internal/exec interpreter can run: each case is one layer applied to
// known input shapes, checked against the exact output dims the exec arena
// planner will size buffers from.
func TestInferLayerShapes(t *testing.T) {
	cases := []struct {
		name    string
		op      OpType
		ins     []Tensor
		attrs   Attrs
		want    Shape
		wantErr bool
	}{
		{name: "conv same", op: OpConv2D,
			ins:   []Tensor{{Shape: Shape{1, 32, 32, 3}}},
			attrs: Attrs{KernelH: 3, KernelW: 3, StrideH: 2, StrideW: 2, PadSame: true, Filters: 8},
			want:  Shape{1, 16, 16, 8}},
		{name: "conv valid", op: OpConv2D,
			ins:   []Tensor{{Shape: Shape{1, 32, 32, 3}}},
			attrs: Attrs{KernelH: 3, KernelW: 3, StrideH: 1, StrideW: 1, Filters: 8},
			want:  Shape{1, 30, 30, 8}},
		{name: "conv valid dilated", op: OpConv2D,
			ins:   []Tensor{{Shape: Shape{1, 32, 32, 3}}},
			attrs: Attrs{KernelH: 3, KernelW: 3, StrideH: 1, StrideW: 1, Dilation: 2, Filters: 8},
			// Effective kernel (3-1)*2+1 = 5 → 32-5+1 = 28.
			want: Shape{1, 28, 28, 8}},
		{name: "conv explicit pad", op: OpConv2D,
			ins:   []Tensor{{Shape: Shape{1, 30, 30, 3}}},
			attrs: Attrs{KernelH: 3, KernelW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1, Filters: 4},
			want:  Shape{1, 30, 30, 4}},
		{name: "conv kernel too large", op: OpConv2D,
			ins:     []Tensor{{Shape: Shape{1, 4, 4, 3}}},
			attrs:   Attrs{KernelH: 9, KernelW: 9, StrideH: 1, StrideW: 1, Filters: 2},
			wantErr: true},
		{name: "transpose conv", op: OpTransposeConv2D,
			ins:   []Tensor{{Shape: Shape{1, 16, 16, 8}}},
			attrs: Attrs{KernelH: 2, KernelW: 2, StrideH: 2, StrideW: 2, Filters: 4},
			want:  Shape{1, 32, 32, 4}},
		{name: "depthwise", op: OpDepthwiseConv2D,
			ins:   []Tensor{{Shape: Shape{1, 16, 16, 8}}},
			attrs: Attrs{KernelH: 3, KernelW: 3, StrideH: 1, StrideW: 1, PadSame: true},
			want:  Shape{1, 16, 16, 8}},
		{name: "depthwise mult dilated", op: OpDepthwiseConv2D,
			ins:   []Tensor{{Shape: Shape{1, 16, 16, 8}}},
			attrs: Attrs{KernelH: 3, KernelW: 3, StrideH: 1, StrideW: 1, Dilation: 3, DepthMult: 2},
			// Effective kernel 7 → 16-7+1 = 10; channels 8×2.
			want: Shape{1, 10, 10, 16}},
		{name: "max pool", op: OpMaxPool,
			ins:   []Tensor{{Shape: Shape{1, 16, 16, 8}}},
			attrs: Attrs{KernelH: 2, KernelW: 2, StrideH: 2, StrideW: 2},
			want:  Shape{1, 8, 8, 8}},
		{name: "avg pool same", op: OpAvgPool,
			ins:   []Tensor{{Shape: Shape{1, 15, 15, 4}}},
			attrs: Attrs{KernelH: 3, KernelW: 3, StrideH: 2, StrideW: 2, PadSame: true},
			want:  Shape{1, 8, 8, 4}},
		{name: "global avg pool", op: OpGlobalAvgPool,
			ins:  []Tensor{{Shape: Shape{1, 7, 7, 320}}},
			want: Shape{1, 1, 1, 320}},
		{name: "dense", op: OpDense,
			ins:   []Tensor{{Shape: Shape{2, 128}}},
			attrs: Attrs{Units: 10},
			want:  Shape{2, 10}},
		{name: "relu", op: OpReLU, ins: []Tensor{{Shape: Shape{1, 8, 8, 4}}}, want: Shape{1, 8, 8, 4}},
		{name: "relu6", op: OpReLU6, ins: []Tensor{{Shape: Shape{1, 8}}}, want: Shape{1, 8}},
		{name: "sigmoid", op: OpSigmoid, ins: []Tensor{{Shape: Shape{1, 8}}}, want: Shape{1, 8}},
		{name: "logistic", op: OpLogistic, ins: []Tensor{{Shape: Shape{1, 8}}}, want: Shape{1, 8}},
		{name: "tanh", op: OpTanh, ins: []Tensor{{Shape: Shape{1, 8}}}, want: Shape{1, 8}},
		{name: "softmax", op: OpSoftmax, ins: []Tensor{{Shape: Shape{1, 10}}}, want: Shape{1, 10}},
		{name: "hard swish", op: OpHardSwish, ins: []Tensor{{Shape: Shape{1, 8, 8, 4}}}, want: Shape{1, 8, 8, 4}},
		{name: "prelu", op: OpPRelu, ins: []Tensor{{Shape: Shape{1, 8, 8, 4}}}, want: Shape{1, 8, 8, 4}},
		{name: "batch norm", op: OpBatchNorm, ins: []Tensor{{Shape: Shape{1, 8, 8, 4}}}, want: Shape{1, 8, 8, 4}},
		{name: "add", op: OpAdd,
			ins:  []Tensor{{Shape: Shape{1, 8, 8, 4}}, {Shape: Shape{1, 8, 8, 4}}},
			want: Shape{1, 8, 8, 4}},
		{name: "add channel broadcast", op: OpAdd,
			ins:  []Tensor{{Shape: Shape{1, 8, 8, 4}}, {Shape: Shape{4}}},
			want: Shape{1, 8, 8, 4}},
		{name: "add shape mismatch", op: OpAdd,
			ins:     []Tensor{{Shape: Shape{1, 8, 8, 4}}, {Shape: Shape{1, 8, 8, 3}}},
			wantErr: true},
		{name: "mul", op: OpMul,
			ins:  []Tensor{{Shape: Shape{1, 16}}, {Shape: Shape{1, 16}}},
			want: Shape{1, 16}},
		{name: "concat", op: OpConcat,
			ins:   []Tensor{{Shape: Shape{1, 4, 4, 8}}, {Shape: Shape{1, 4, 4, 16}}},
			attrs: Attrs{Axis: -1},
			want:  Shape{1, 4, 4, 24}},
		{name: "reshape", op: OpReshape,
			ins:   []Tensor{{Shape: Shape{1, 4, 4, 8}}},
			attrs: Attrs{NewShape: []int{1, -1}},
			want:  Shape{1, 128}},
		{name: "slice", op: OpSlice,
			ins:   []Tensor{{Shape: Shape{1, 10, 10, 4}}},
			attrs: Attrs{Begin: []int{0, 2, 2, 0}, Size: []int{1, 6, 6, -1}},
			want:  Shape{1, 6, 6, 4}},
		{name: "strided slice", op: OpStridedSlice,
			ins:   []Tensor{{Shape: Shape{1, 8, 8, 4}}},
			attrs: Attrs{Size: []int{1, 4, 4, 4}},
			want:  Shape{1, 4, 4, 4}},
		{name: "resize bilinear", op: OpResizeBilinear,
			ins:   []Tensor{{Shape: Shape{1, 8, 8, 4}}},
			attrs: Attrs{TargetH: 16, TargetW: 16},
			want:  Shape{1, 16, 16, 4}},
		{name: "resize nearest", op: OpResizeNearest,
			ins:   []Tensor{{Shape: Shape{1, 16, 16, 4}}},
			attrs: Attrs{TargetH: 8, TargetW: 8},
			want:  Shape{1, 8, 8, 4}},
		{name: "quantize", op: OpQuantize,
			ins:  []Tensor{{Shape: Shape{1, 8, 8, 4}, DType: Float32}},
			want: Shape{1, 8, 8, 4}},
		{name: "dequantize", op: OpDequantize,
			ins:  []Tensor{{Shape: Shape{1, 8, 8, 4}, DType: Int8}},
			want: Shape{1, 8, 8, 4}},
		{name: "pad nhwc", op: OpPad,
			ins:   []Tensor{{Shape: Shape{1, 8, 8, 4}}},
			attrs: Attrs{PadH: 1, PadW: 2},
			want:  Shape{1, 10, 12, 4}},
		{name: "pad rank3", op: OpPad,
			ins:   []Tensor{{Shape: Shape{1, 16, 8}}},
			attrs: Attrs{PadH: 2, PadW: 1},
			want:  Shape{1, 20, 10}},
		{name: "pad rank2 features", op: OpPad,
			ins:   []Tensor{{Shape: Shape{1, 16}}},
			attrs: Attrs{PadW: 3},
			want:  Shape{1, 22}},
		{name: "pad rank2 rejects PadH", op: OpPad,
			ins:     []Tensor{{Shape: Shape{1, 16}}},
			attrs:   Attrs{PadH: 1},
			wantErr: true},
		{name: "pad rank1 rejects padding", op: OpPad,
			ins:     []Tensor{{Shape: Shape{16}}},
			attrs:   Attrs{PadW: 1},
			wantErr: true},
		{name: "pad zero is identity", op: OpPad,
			ins:  []Tensor{{Shape: Shape{1, 8, 8, 4}}},
			want: Shape{1, 8, 8, 4}},
		{name: "mean spatial", op: OpMean,
			ins:   []Tensor{{Shape: Shape{1, 7, 7, 320}}},
			attrs: Attrs{ReduceAxes: []int{1, 2}},
			want:  Shape{1, 320}},
		{name: "mean keepdims", op: OpMean,
			ins:   []Tensor{{Shape: Shape{1, 7, 7, 320}}},
			attrs: Attrs{ReduceAxes: []int{1, 2}, KeepDims: true},
			want:  Shape{1, 1, 1, 320}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			env := map[string]Tensor{}
			l := &Layer{Name: "l", Op: tc.op, Outputs: []string{"out"}, Attrs: tc.attrs}
			for i, in := range tc.ins {
				in.Name = string(rune('a' + i))
				env[in.Name] = in
				l.Inputs = append(l.Inputs, in.Name)
			}
			outs, err := inferLayer(l, env)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("inferLayer = %v, want error", outs[0].Shape)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if !outs[0].Shape.Equal(tc.want) {
				t.Fatalf("shape = %v, want %v", outs[0].Shape, tc.want)
			}
		})
	}
}

// TestConvSpatialDilation pins the dilation arithmetic convSpatial feeds
// both shape inference and the exec arena planner.
func TestConvSpatialDilation(t *testing.T) {
	cases := []struct {
		in, k, stride, pad, dil int
		same                    bool
		want                    int
		wantErr                 bool
	}{
		{in: 32, k: 3, stride: 1, dil: 1, want: 30},
		{in: 32, k: 3, stride: 1, dil: 2, want: 28},
		{in: 32, k: 3, stride: 2, dil: 2, want: 14},
		{in: 32, k: 3, stride: 1, dil: 0, want: 30}, // unset dilation = 1
		{in: 32, k: 3, stride: 2, dil: 1, same: true, want: 16},
		{in: 32, k: 3, stride: 2, dil: 4, same: true, want: 16}, // SAME ignores dilation
		{in: 4, k: 3, stride: 1, dil: 4, wantErr: true},         // effective kernel 9 > 4
	}
	for _, tc := range cases {
		got, err := convSpatial(tc.in, tc.k, tc.stride, tc.pad, tc.dil, tc.same)
		if tc.wantErr {
			if err == nil {
				t.Errorf("convSpatial(%+v) = %d, want error", tc, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("convSpatial(%+v): %v", tc, err)
			continue
		}
		if got != tc.want {
			t.Errorf("convSpatial(%+v) = %d, want %d", tc, got, tc.want)
		}
	}
}
